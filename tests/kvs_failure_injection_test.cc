// Failure-injection suite for the KVS server: hostile and unlucky clients.
// Everything here must leave the server serving correct responses to a
// well-behaved client afterwards — the invariant is "no request sequence
// takes the store down or corrupts another connection's view".
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "kvs/server.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

class ChaosSocket {
 public:
  explicit ChaosSocket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~ChaosSocket() { close(); }
  ChaosSocket(const ChaosSocket&) = delete;
  ChaosSocket& operator=(const ChaosSocket&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  void send_raw(const std::string& data) {
    (void)::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  }

  std::string recv_until(const std::string& marker) {
    std::string out;
    char chunk[4096];
    while (out.find(marker) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig config;
    config.store.shards = 2;
    config.store.engine.slab.memory_limit_bytes = 4u << 20;
    server_ = std::make_unique<KvsServer>(
        config,
        [](std::uint64_t cap) {
          return std::make_unique<policy::LruCache>(cap);
        },
        clock_);
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  /// A healthy client must get clean answers after whatever chaos ran.
  void expect_server_healthy() {
    ChaosSocket probe(server_->port());
    ASSERT_TRUE(probe.connected());
    probe.send_raw("set health 0 0 2\r\nok\r\n");
    EXPECT_NE(probe.recv_until("\r\n").find("STORED"), std::string::npos);
    probe.send_raw("get health\r\n");
    const std::string reply = probe.recv_until("END\r\n");
    EXPECT_NE(reply.find("VALUE health 0 2"), std::string::npos);
    EXPECT_NE(reply.find("ok"), std::string::npos);
  }

  util::SteadyClock clock_;
  std::unique_ptr<KvsServer> server_;
};

TEST_F(FailureInjectionTest, ReconnectStorm) {
  // 200 connections that connect, maybe half-send something, and vanish.
  for (int i = 0; i < 200; ++i) {
    ChaosSocket sock(server_->port());
    ASSERT_TRUE(sock.connected()) << "connection " << i << " refused";
    switch (i % 4) {
      case 0: break;                           // connect and leave
      case 1: sock.send_raw("get"); break;     // half a command line
      case 2: sock.send_raw("set k 0 0 10\r\nabc"); break;  // partial payload
      default: sock.send_raw("version\r\n"); break;  // fire and forget
    }
  }
  expect_server_healthy();
}

TEST_F(FailureInjectionTest, InterleavedPartialPayloadsOnTwoSockets) {
  // Two clients dribble different sets concurrently; per-connection framing
  // must never leak bytes between them.
  ChaosSocket a(server_->port());
  ChaosSocket b(server_->port());
  a.send_raw("set alpha 0 0 6\r\naaa");
  b.send_raw("set beta 0 0 4\r\nbb");
  a.send_raw("aaa\r\n");
  b.send_raw("bb\r\n");
  EXPECT_NE(a.recv_until("\r\n").find("STORED"), std::string::npos);
  EXPECT_NE(b.recv_until("\r\n").find("STORED"), std::string::npos);

  ChaosSocket reader(server_->port());
  reader.send_raw("get alpha beta\r\n");
  const std::string reply = reader.recv_until("END\r\n");
  EXPECT_NE(reply.find("VALUE alpha 0 6"), std::string::npos);
  EXPECT_NE(reply.find("aaaaaa"), std::string::npos);
  EXPECT_NE(reply.find("VALUE beta 0 4"), std::string::npos);
  EXPECT_NE(reply.find("bbbb"), std::string::npos);
}

TEST_F(FailureInjectionTest, ZeroLengthValueRoundTrips) {
  ChaosSocket sock(server_->port());
  sock.send_raw("set empty 0 0 0\r\n\r\n");
  EXPECT_NE(sock.recv_until("\r\n").find("STORED"), std::string::npos);
  sock.send_raw("get empty\r\n");
  const std::string reply = sock.recv_until("END\r\n");
  EXPECT_NE(reply.find("VALUE empty 0 0"), std::string::npos);
}

TEST_F(FailureInjectionTest, VeryLongKeyHandledGracefully) {
  // memcached caps keys at 250 bytes; whatever the server's policy, the
  // connection must survive and honest requests must still work.
  ChaosSocket sock(server_->port());
  const std::string long_key(4096, 'k');
  // The rejected set leaves its would-be payload line behind, which is
  // answered with a second ERROR; read until the version reply regardless.
  sock.send_raw("set " + long_key + " 0 0 2\r\nhi\r\nversion\r\n");
  const std::string reply = sock.recv_until("VERSION");
  EXPECT_NE(reply.find("ERROR"), std::string::npos);
  EXPECT_NE(reply.find("VERSION"), std::string::npos);
  expect_server_healthy();
}

TEST_F(FailureInjectionTest, NegativeAndGarbageNumbersRejected) {
  ChaosSocket sock(server_->port());
  for (const char* line :
       {"set k 0 0 -5\r\n", "set k 0 0 zebra\r\n", "set k 0 zebra 5\r\n",
        "set k zebra 0 5\r\n", "set k 0 0\r\n", "set\r\n"}) {
    sock.send_raw(line);
    const std::string reply = sock.recv_until("\r\n");
    EXPECT_TRUE(reply.find("ERROR") != std::string::npos ||
                reply.find("CLIENT_ERROR") != std::string::npos)
        << "line '" << line << "' got: " << reply;
  }
  expect_server_healthy();
}

TEST_F(FailureInjectionTest, NoreplyFloodThenQuit) {
  ChaosSocket sock(server_->port());
  std::string burst;
  for (int i = 0; i < 500; ++i) {
    burst += "set flood" + std::to_string(i) + " 0 0 3 noreply\r\nxyz\r\n";
  }
  sock.send_raw(burst);
  sock.send_raw("get flood499\r\n");
  const std::string reply = sock.recv_until("END\r\n");
  EXPECT_NE(reply.find("VALUE flood499 0 3"), std::string::npos)
      << "noreply pipeline lost writes";
  expect_server_healthy();
}

TEST_F(FailureInjectionTest, DisconnectMidMultiGet) {
  {
    ChaosSocket sock(server_->port());
    sock.send_raw("set mg 0 0 2\r\nhi\r\n");
    (void)sock.recv_until("\r\n");
    std::string huge_get = "get";
    for (int i = 0; i < 2000; ++i) huge_get += " mg";
    huge_get += "\r\n";
    sock.send_raw(huge_get);
    // Read one chunk then slam the connection shut while the server is
    // mid-response.
    char c;
    (void)::recv(0, &c, 0, 0);  // no-op; just don't drain the socket
  }
  expect_server_healthy();
}

TEST_F(FailureInjectionTest, ParallelChaosAndHonestTraffic) {
  // Honest writers race 4 chaos threads that open/kill connections with
  // malformed fragments. Every honest write must be readable afterwards.
  std::atomic<bool> stop{false};
  std::vector<std::thread> chaos;
  for (int t = 0; t < 4; ++t) {
    chaos.emplace_back([this, &stop, t] {
      int i = 0;
      while (!stop.load()) {
        ChaosSocket sock(server_->port());
        if (!sock.connected()) continue;
        switch ((t + i++) % 3) {
          case 0: sock.send_raw("set x 0 0 100\r\nhalf"); break;
          case 1: sock.send_raw("\r\n\r\n\r\n"); break;
          default: sock.send_raw("get \r\n"); break;
        }
      }
    });
  }
  {
    ChaosSocket honest(server_->port());
    ASSERT_TRUE(honest.connected());
    for (int i = 0; i < 100; ++i) {
      const std::string key = "honest" + std::to_string(i);
      honest.send_raw("set " + key + " 0 0 5\r\nvalue\r\n");
      ASSERT_NE(honest.recv_until("\r\n").find("STORED"), std::string::npos)
          << "write " << i << " failed under chaos";
    }
    for (int i = 0; i < 100; ++i) {
      const std::string key = "honest" + std::to_string(i);
      honest.send_raw("get " + key + "\r\n");
      const std::string reply = honest.recv_until("END\r\n");
      ASSERT_NE(reply.find("VALUE " + key + " 0 5"), std::string::npos)
          << "read " << i << " failed under chaos";
    }
  }
  stop.store(true);
  for (auto& t : chaos) t.join();
  expect_server_healthy();
}

}  // namespace
}  // namespace camp::kvs
