#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "policy/lru.h"

namespace camp::sim {
namespace {

trace::TraceRecord rec(std::uint64_t key, std::uint32_t size,
                       std::uint32_t cost, std::uint32_t tid = 0) {
  return trace::TraceRecord{key, size, cost, tid};
}

TEST(Simulator, ColdRequestsExcluded) {
  policy::LruCache cache(1000);
  Simulator sim(cache);
  sim.process(rec(1, 100, 50));  // cold miss: not counted
  sim.process(rec(1, 100, 50));  // hit
  const auto& m = sim.metrics();
  EXPECT_EQ(m.requests, 2u);
  EXPECT_EQ(m.cold_requests, 1u);
  EXPECT_EQ(m.noncold_requests(), 1u);
  EXPECT_EQ(m.hits, 1u);
  EXPECT_EQ(m.noncold_misses, 0u);
  EXPECT_DOUBLE_EQ(m.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.cost_miss_ratio(), 0.0);
}

TEST(Simulator, NonColdMissCountsCost) {
  policy::LruCache cache(100);  // room for exactly one pair
  Simulator sim(cache);
  sim.process(rec(1, 100, 7));   // cold
  sim.process(rec(2, 100, 11));  // cold, evicts 1
  sim.process(rec(1, 100, 7));   // NON-cold miss
  const auto& m = sim.metrics();
  EXPECT_EQ(m.noncold_misses, 1u);
  EXPECT_EQ(m.noncold_cost_total, 7u);
  EXPECT_EQ(m.noncold_cost_missed, 7u);
  EXPECT_DOUBLE_EQ(m.miss_rate(), 1.0);
  EXPECT_DOUBLE_EQ(m.cost_miss_ratio(), 1.0);
}

TEST(Simulator, MissTriggersInsert) {
  policy::LruCache cache(1000);
  Simulator sim(cache);
  sim.process(rec(5, 200, 1));
  EXPECT_TRUE(cache.contains(5)) << "the generator inserts on a miss";
  EXPECT_EQ(cache.stats().puts, 1u);
}

TEST(Simulator, RunProcessesWholeTrace) {
  policy::LruCache cache(250);
  Simulator sim(cache);
  std::vector<trace::TraceRecord> rows;
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t k = 0; k < 5; ++k) rows.push_back(rec(k, 100, 10));
  }
  sim.run(rows);
  const auto& m = sim.metrics();
  EXPECT_EQ(m.requests, 50u);
  EXPECT_EQ(m.cold_requests, 5u);
  // Capacity 250 holds 2 pairs; cycling 5 keys through LRU gives 0 hits.
  EXPECT_EQ(m.hits, 0u);
  EXPECT_DOUBLE_EQ(m.miss_rate(), 1.0);
}

TEST(Simulator, HitsWhenCacheFits) {
  policy::LruCache cache(1000);
  Simulator sim(cache);
  std::vector<trace::TraceRecord> rows;
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t k = 0; k < 5; ++k) rows.push_back(rec(k, 100, 10));
  }
  sim.run(rows);
  EXPECT_DOUBLE_EQ(sim.metrics().miss_rate(), 0.0);
  EXPECT_EQ(sim.metrics().hits, 45u);
}

TEST(Simulator, OccupancyWiring) {
  policy::LruCache cache(300);
  OccupancyTracker tracker(/*tracked_trace_id=*/0, 300, /*interval=*/1);
  Simulator sim(cache, &tracker);
  sim.process(rec(1, 100, 1, /*tid=*/0));
  sim.process(rec(2, 100, 1, /*tid=*/1));
  EXPECT_EQ(tracker.tracked_bytes(), 100u) << "only trace 0 pairs tracked";
  // Evict 1 by inserting two more trace-1 pairs.
  sim.process(rec(3, 100, 1, 1));
  sim.process(rec(4, 100, 1, 1));
  EXPECT_EQ(tracker.tracked_bytes(), 0u);
  EXPECT_GT(tracker.drained_at(), 0u);
  EXPECT_EQ(tracker.samples().size(), 4u);
}

}  // namespace
}  // namespace camp::sim
