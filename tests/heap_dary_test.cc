#include "heap/dary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace camp::heap {
namespace {

using IntHeap = DaryHeap<int, std::less<int>, 8>;

TEST(DaryHeap, StartsEmpty) {
  IntHeap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
}

TEST(DaryHeap, PushPopSorted) {
  IntHeap h;
  for (int v : {5, 3, 8, 1, 9, 2, 7}) h.push(v);
  std::vector<int> popped;
  while (!h.empty()) {
    popped.push_back(h.top());
    h.pop();
  }
  EXPECT_EQ(popped, (std::vector<int>{1, 2, 3, 5, 7, 8, 9}));
}

TEST(DaryHeap, HandleStableAcrossMoves) {
  IntHeap h;
  const auto h5 = h.push(5);
  h.push(3);
  h.push(8);
  const auto h1 = h.push(1);
  EXPECT_EQ(h.value(h5), 5);
  EXPECT_EQ(h.value(h1), 1);
  EXPECT_EQ(h.top(), 1);
  h.pop();  // removes 1
  EXPECT_FALSE(h.is_valid(h1));
  EXPECT_TRUE(h.is_valid(h5));
  EXPECT_EQ(h.value(h5), 5);
}

TEST(DaryHeap, UpdateDecrease) {
  IntHeap h;
  h.push(10);
  const auto mid = h.push(20);
  h.push(30);
  h.update(mid, 1);
  EXPECT_EQ(h.top(), 1);
  EXPECT_EQ(h.top_handle(), mid);
}

TEST(DaryHeap, UpdateIncrease) {
  IntHeap h;
  const auto lo = h.push(1);
  h.push(10);
  h.push(20);
  h.update(lo, 100);
  EXPECT_EQ(h.top(), 10);
  EXPECT_EQ(h.value(lo), 100);
}

TEST(DaryHeap, EraseMiddle) {
  IntHeap h;
  h.push(4);
  const auto seven = h.push(7);
  h.push(2);
  h.erase(seven);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.top(), 2);
  h.pop();
  EXPECT_EQ(h.top(), 4);
}

TEST(DaryHeap, SlotReuseAfterErase) {
  IntHeap h;
  const auto a = h.push(1);
  h.erase(a);
  const auto b = h.push(2);  // may reuse slot
  EXPECT_TRUE(h.is_valid(b));
  EXPECT_EQ(h.value(b), 2);
}

TEST(DaryHeap, CountsNodeVisits) {
  IntHeap h;
  for (int i = 100; i > 0; --i) h.push(i);
  const auto visits_after_push = h.stats().nodes_visited;
  EXPECT_GT(visits_after_push, 0u);
  h.pop();
  EXPECT_GT(h.stats().nodes_visited, visits_after_push);
  EXPECT_EQ(h.stats().pushes, 100u);
  EXPECT_EQ(h.stats().pops, 1u);
}

TEST(DaryHeap, ClearResets) {
  IntHeap h;
  h.push(1);
  h.push(2);
  h.clear();
  EXPECT_TRUE(h.empty());
  const auto a = h.push(42);
  EXPECT_EQ(h.value(a), 42);
  EXPECT_EQ(h.top(), 42);
}

TEST(DaryHeap, DuplicateValues) {
  IntHeap h;
  for (int i = 0; i < 10; ++i) h.push(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(h.top(), 7);
    h.pop();
  }
  EXPECT_TRUE(h.empty());
}

TEST(DaryHeap, BinaryArityWorksToo) {
  DaryHeap<int, std::less<int>, 2> h;
  for (int v : {9, 4, 6, 1}) h.push(v);
  EXPECT_TRUE(h.check_invariants());
  EXPECT_EQ(h.top(), 1);
}

}  // namespace
}  // namespace camp::heap
