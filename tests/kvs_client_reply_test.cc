// KvsClient reply hardening: a mixed-version or byzantine peer whose VALUE
// lines carry oversized, negative or garbage numeric tokens must fail the
// parse loudly — the old bare std::stoul + static_cast silently truncated
// "4294967296" to 0 and accepted "-1" as 2^64-1. Each test stands up a
// canned one-connection fake server that speaks whatever bytes the test
// scripts, then drives a real KvsClient against it.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "kvs/client.h"
#include "kvs/protocol.h"

namespace camp::kvs {
namespace {

/// Accepts ONE connection, reads (and discards) one request chunk, writes
/// the scripted reply, then holds the connection open until destruction.
class CannedPeer {
 public:
  explicit CannedPeer(std::string reply) : reply_(std::move(reply)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    server_ = std::thread([this] {
      conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
      if (conn_fd_ < 0) return;
      char buf[4096];
      (void)!::recv(conn_fd_, buf, sizeof(buf), 0);  // the request; ignored
      (void)!::send(conn_fd_, reply_.data(), reply_.size(), MSG_NOSIGNAL);
      // Signal end-of-stream so a parser waiting for more bytes fails fast
      // instead of blocking the test.
      ::shutdown(conn_fd_, SHUT_WR);
    });
  }

  ~CannedPeer() {
    if (server_.joinable()) server_.join();
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  std::string reply_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread server_;
};

TEST(ClientReplyParse, OverflowingFlagsTokenThrows) {
  // 2^32 used to static_cast-truncate to flags 0 and be accepted.
  CannedPeer peer("VALUE k 4294967296 2\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.get("k"), std::runtime_error);
}

TEST(ClientReplyParse, NegativeBytesTokenThrows) {
  // std::stoul("-1") wraps to 2^64-1; read_bytes would then wait forever
  // for 16 exabytes (here: fail on the closed stream).
  CannedPeer peer("VALUE k 0 -1\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.get("k"), std::runtime_error);
}

TEST(ClientReplyParse, BytesPastProtocolCapThrows) {
  // All-digit and in-range for uint64, but past kMaxValueBytes: a lying
  // peer must not make the client allocate gigabytes.
  CannedPeer peer("VALUE k 0 999999999\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.get("k"), std::runtime_error);
}

TEST(ClientReplyParse, GarbageNumericTokenThrows) {
  // stoul("12x") silently parsed the "12" prefix.
  CannedPeer peer("VALUE k 12x 2\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.get("k"), std::runtime_error);
}

TEST(ClientReplyParse, TruncatedValueLineThrows) {
  CannedPeer peer("VALUE k\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.get("k"), std::runtime_error);
}

TEST(ClientReplyParse, PeerGetOverflowingCostThrows) {
  // peer_get's 5-token VALUE line: cost rides in the 4th slot and used to
  // truncate the same way.
  CannedPeer peer("VALUE k 0 2 4294967296 0\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.peer_get("k"), std::runtime_error);
}

TEST(ClientReplyParse, PeerGetNegativeTtlThrows) {
  CannedPeer peer("VALUE k 0 2 1 -5\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.peer_get("k"), std::runtime_error);
}

TEST(ClientReplyParse, PeerGetMissingTokensThrows) {
  // A plain-get-shaped VALUE line (3 tokens) answering a pget.
  CannedPeer peer("VALUE k 0 2\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.peer_get("k"), std::runtime_error);
}

TEST(ClientReplyParse, WellFormedRepliesStillParse) {
  // The strict parser must not reject legal replies.
  CannedPeer peer("VALUE k 7 2\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  const GetResult r = client.get("k");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.flags, 7u);
  EXPECT_EQ(r.value, "vv");
}

TEST(ClientReplyParse, WellFormedPeerGetStillParses) {
  CannedPeer peer("VALUE k 7 2 42 60\r\nvv\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  const StoredGetResult r = client.peer_get("k");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.flags, 7u);
  EXPECT_EQ(r.cost, 42u);
  EXPECT_EQ(r.remaining_ttl_s, 60u);
  EXPECT_EQ(r.stored, "vv");
  EXPECT_EQ(r.codec, Codec::kIdentity);
  EXPECT_EQ(r.raw_len, 2u);
}

TEST(ClientReplyParse, CompressedPeerGetParsesTrailingTokens) {
  // The 7-token form: codec 2 (RLE) payload of 3 stored bytes decoding to
  // 10 raw bytes. The client re-stores the payload verbatim; it does NOT
  // decode here, so the bytes only need to parse, not decompress.
  CannedPeer peer("VALUE k 7 3 42 60 2 10\r\nxyz\r\nEND\r\n");
  KvsClient client("127.0.0.1", peer.port());
  const StoredGetResult r = client.peer_get("k");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.stored, "xyz");
  EXPECT_EQ(r.codec, Codec::kRle);
  EXPECT_EQ(r.raw_len, 10u);
}

TEST(ClientReplyParse, PeerGetRejectsBadCodecTokens) {
  // Unknown codec tag.
  {
    CannedPeer peer("VALUE k 7 2 42 60 9 10\r\nvv\r\nEND\r\n");
    KvsClient client("127.0.0.1", peer.port());
    EXPECT_THROW((void)client.peer_get("k"), std::runtime_error);
  }
  // Codec 0 must not appear in the 7-token form (identity never carries
  // the extension on the wire).
  {
    CannedPeer peer("VALUE k 7 2 42 60 0 2\r\nvv\r\nEND\r\n");
    KvsClient client("127.0.0.1", peer.port());
    EXPECT_THROW((void)client.peer_get("k"), std::runtime_error);
  }
  // raw_len past the protocol cap.
  {
    CannedPeer peer("VALUE k 7 2 42 60 2 999999999\r\nvv\r\nEND\r\n");
    KvsClient client("127.0.0.1", peer.port());
    EXPECT_THROW((void)client.peer_get("k"), std::runtime_error);
  }
  // Six tokens: codec without raw_len.
  {
    CannedPeer peer("VALUE k 7 2 42 60 2\r\nvv\r\nEND\r\n");
    KvsClient client("127.0.0.1", peer.port());
    EXPECT_THROW((void)client.peer_get("k"), std::runtime_error);
  }
}

TEST(ClientReplyParse, PeerOpsRejectInjectionKeys) {
  // The peer ops splice the key into the request line: a key carrying a
  // space or CRLF would inject commands into the peer stream. They must be
  // rejected client-side, before any bytes go out.
  CannedPeer peer("END\r\n");
  KvsClient client("127.0.0.1", peer.port());
  EXPECT_THROW((void)client.peer_get("k 0 0 5\r\npdel victim"),
               std::invalid_argument);
  EXPECT_THROW((void)client.peer_del("a b"), std::invalid_argument);
  EXPECT_THROW(
      (void)client.peer_set(std::string(300, 'k'), "v", 0, 1),
      std::invalid_argument);
  // A legal key still goes through (and parses the canned miss).
  EXPECT_FALSE(client.peer_get("legal-key").hit);
}

TEST(ClientReplyParse, ParseReplyTokenContract) {
  EXPECT_EQ(parse_reply_token("0", 10, "t"), 0u);
  EXPECT_EQ(parse_reply_token("10", 10, "t"), 10u);
  EXPECT_EQ(parse_reply_token("18446744073709551615",
                              ~std::uint64_t{0}, "t"),
            ~std::uint64_t{0});
  EXPECT_THROW((void)parse_reply_token("", 10, "t"), std::runtime_error);
  EXPECT_THROW((void)parse_reply_token("11", 10, "t"), std::runtime_error);
  EXPECT_THROW((void)parse_reply_token("-1", 10, "t"), std::runtime_error);
  EXPECT_THROW((void)parse_reply_token("+1", 10, "t"), std::runtime_error);
  EXPECT_THROW((void)parse_reply_token("1 ", 10, "t"), std::runtime_error);
  EXPECT_THROW((void)parse_reply_token("0x1", 10, "t"), std::runtime_error);
  // 21 digits: past uint64 even though all-digit.
  EXPECT_THROW((void)parse_reply_token("184467440737095516150",
                                       ~std::uint64_t{0}, "t"),
               std::runtime_error);
}

}  // namespace
}  // namespace camp::kvs
