#include "util/sketch.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace camp::util {
namespace {

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch s(1024, 4, /*aging_period=*/0);  // 0 = never age
  for (int i = 0; i < 37; ++i) s.add(42);
  EXPECT_GE(s.estimate(42), 37u);
}

TEST(CountMin, ColdKeysNearZero) {
  CountMinSketch s(1 << 14, 4, 1u << 30);
  Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) s.add(rng.below(1000));
  // Keys never added should estimate (close to) zero: with 16K counters and
  // 2K increments, collisions across 4 rows are rare.
  int nonzero = 0;
  for (std::uint64_t k = 1'000'000; k < 1'000'100; ++k) {
    if (s.estimate(k) > 0) ++nonzero;
  }
  EXPECT_LE(nonzero, 5);
}

TEST(CountMin, SaturatesAt255) {
  CountMinSketch s(64, 2, 1u << 30);
  for (int i = 0; i < 1000; ++i) s.add(7);
  EXPECT_EQ(s.estimate(7), 255u);
}

TEST(CountMin, AgingHalves) {
  CountMinSketch s(256, 4, 1u << 30);
  for (int i = 0; i < 40; ++i) s.add(1);
  const auto before = s.estimate(1);
  s.age();
  EXPECT_EQ(s.estimate(1), before / 2);
  EXPECT_EQ(s.agings(), 1u);
}

TEST(CountMin, AutomaticAgingAtPeriod) {
  CountMinSketch s(256, 4, /*aging_period=*/100);
  for (int i = 0; i < 100; ++i) s.add(static_cast<std::uint64_t>(i));
  EXPECT_EQ(s.agings(), 1u) << "the 100th add triggers an aging pass";
}

TEST(CountMin, DistinguishesHotFromCold) {
  CountMinSketch s(1 << 12, 4, 1u << 30);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    s.add(17);                 // hot
    s.add(rng.below(100'000));  // cold noise
  }
  EXPECT_EQ(s.estimate(17), 255u);
  EXPECT_LT(s.estimate(55'555), 20u);
}

TEST(CountMin, WidthRoundsToPow2) {
  CountMinSketch s(1000, 3, 1);
  EXPECT_EQ(s.width(), 1024u);
  EXPECT_EQ(s.depth(), 3);
}

}  // namespace
}  // namespace camp::util
