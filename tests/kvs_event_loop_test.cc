// EventLoop / net_io unit tests plus the event-driven server's regression
// suite: the blocking-I/O bugs this layer replaced (EINTR treated as fatal,
// one stalled reader parking a whole worker) must stay fixed.
#include "kvs/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kvs/client.h"
#include "kvs/net_io.h"
#include "kvs/server.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

// ---- net_io: the EINTR/EAGAIN retry contract -------------------------------

TEST(NetIoTest, RetryEintrRetriesUntilSuccess) {
  int calls = 0;
  const ssize_t n = net::retry_eintr([&]() -> ssize_t {
    if (++calls < 3) {
      errno = EINTR;
      return -1;
    }
    return 42;
  });
  EXPECT_EQ(n, 42);
  EXPECT_EQ(calls, 3);
}

TEST(NetIoTest, RetryEintrPassesOtherErrorsThrough) {
  int calls = 0;
  errno = 0;
  const ssize_t n = net::retry_eintr([&]() -> ssize_t {
    ++calls;
    errno = ECONNRESET;
    return -1;
  });
  EXPECT_EQ(n, -1);
  EXPECT_EQ(errno, ECONNRESET);
  EXPECT_EQ(calls, 1);  // no retry on a real error
}

TEST(NetIoTest, RetryEintrReturnsZeroWithoutRetry) {
  int calls = 0;
  const ssize_t n = net::retry_eintr([&]() -> ssize_t {
    ++calls;
    return 0;  // EOF is a result, not an error
  });
  EXPECT_EQ(n, 0);
  EXPECT_EQ(calls, 1);
}

TEST(NetIoTest, ClassifyRecv) {
  EXPECT_EQ(net::classify_recv(17), net::IoStatus::kProgress);
  EXPECT_EQ(net::classify_recv(0), net::IoStatus::kClosed);
  errno = EAGAIN;
  EXPECT_EQ(net::classify_recv(-1), net::IoStatus::kWouldBlock);
  errno = ECONNRESET;
  EXPECT_EQ(net::classify_recv(-1), net::IoStatus::kError);
}

TEST(NetIoTest, ClassifySend) {
  EXPECT_EQ(net::classify_send(17), net::IoStatus::kProgress);
  errno = EWOULDBLOCK;
  EXPECT_EQ(net::classify_send(-1), net::IoStatus::kWouldBlock);
  errno = EPIPE;
  EXPECT_EQ(net::classify_send(-1), net::IoStatus::kError);
  EXPECT_EQ(net::classify_send(0), net::IoStatus::kError);
}

// ---- EventLoop -------------------------------------------------------------

class EventLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }

  EventLoop loop_;
  std::vector<EventLoop::Event> events_;
  int fds_[2] = {-1, -1};
};

TEST_F(EventLoopTest, ReportsReadableOnlyWhenDataArrives) {
  int tag = 0;
  loop_.add(fds_[0], /*want_read=*/true, /*want_write=*/false, &tag);
  loop_.wait(events_, 0);
  EXPECT_TRUE(events_.empty());  // nothing to read yet

  ASSERT_EQ(::write(fds_[1], "x", 1), 1);
  loop_.wait(events_, 1000);
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].tag, &tag);
  EXPECT_TRUE(events_[0].readable);
  EXPECT_FALSE(events_[0].writable);
}

TEST_F(EventLoopTest, ModifySwitchesInterestToWritable) {
  int tag = 0;
  loop_.add(fds_[0], /*want_read=*/true, /*want_write=*/false, &tag);
  loop_.modify(fds_[0], /*want_read=*/false, /*want_write=*/true, &tag);
  loop_.wait(events_, 1000);
  ASSERT_EQ(events_.size(), 1u);  // an idle socket is immediately writable
  EXPECT_TRUE(events_[0].writable);
  EXPECT_FALSE(events_[0].readable);
}

TEST_F(EventLoopTest, RemoveStopsReporting) {
  int tag = 0;
  loop_.add(fds_[0], /*want_read=*/true, /*want_write=*/false, &tag);
  ASSERT_EQ(::write(fds_[1], "x", 1), 1);
  loop_.remove(fds_[0]);
  loop_.wait(events_, 0);
  EXPECT_TRUE(events_.empty());
}

TEST_F(EventLoopTest, ReportsHangupWhenPeerCloses) {
  int tag = 0;
  loop_.add(fds_[0], /*want_read=*/true, /*want_write=*/false, &tag);
  ::close(fds_[1]);
  fds_[1] = -1;
  loop_.wait(events_, 1000);
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_TRUE(events_[0].hangup || events_[0].readable);
}

TEST_F(EventLoopTest, TimeoutReturnsEmpty) {
  const auto start = std::chrono::steady_clock::now();
  loop_.wait(events_, 50);
  EXPECT_TRUE(events_.empty());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(40));
}

TEST_F(EventLoopTest, WakeFromAnotherThreadUnblocksWait) {
  std::thread waker([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop_.wake();
  });
  const auto start = std::chrono::steady_clock::now();
  loop_.wait(events_, -1);  // would block forever without the wake
  EXPECT_TRUE(events_.empty());  // wakeups produce no Event
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
  waker.join();
}

TEST_F(EventLoopTest, CoalescedWakesDrainInOneWait) {
  for (int i = 0; i < 5; ++i) loop_.wake();
  loop_.wait(events_, 1000);
  EXPECT_TRUE(events_.empty());
  loop_.wait(events_, 0);  // counter was drained: no residual readiness
  EXPECT_TRUE(events_.empty());
}

TEST(EventLoopBackendTest, ReportsCompiledBackend) {
  EXPECT_STREQ(EventLoop::backend(), "epoll");
}

// ---- server regressions ----------------------------------------------------

ServerConfig server_config() {
  ServerConfig c;
  c.port = 0;  // ephemeral
  c.store.shards = 2;
  c.store.engine.slab.memory_limit_bytes = 4u << 20;
  c.store.engine.slab.slab_size_bytes = 1u << 20;
  return c;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

/// THE tentpole regression: with a single worker, one connection that
/// floods pipelined gets for a large value and never reads a byte of the
/// replies must not stall the worker — its other connections keep being
/// served. On the old blocking design the worker parked inside send_all on
/// the stalled socket and every sibling connection froze; this test then
/// timed out.
TEST(SlowReaderTest, SlowReaderDoesNotBlockPeers) {
  ServerConfig config = server_config();
  config.workers = 1;  // every connection below shares ONE worker
  const util::SteadyClock clock;
  KvsServer server(config, lru_factory(), clock);
  server.start();

  {
    KvsClient seeder("127.0.0.1", server.port());
    ASSERT_TRUE(seeder.set("big", std::string(200'000, 'x'), 0, 0));
  }

  // Flood pipelined "get big" requests without ever reading the replies,
  // until either our send buffer jams or we have queued far more reply
  // data than the server's write watermark can absorb.
  const int flooder = connect_raw(server.port());
  std::string burst;
  for (int i = 0; i < 64; ++i) burst += "get big\r\n";
  std::size_t sent = 0;
  while (sent < (4u << 20)) {
    const ssize_t n = ::send(flooder, burst.data(), burst.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      FAIL() << "flood send failed: " << std::strerror(errno);
    }
    sent += static_cast<std::size_t>(n);
  }
  // Let the worker ingest the flood and jam its reply path.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The stalled sibling must not delay this connection. Run the probe in a
  // worker future so a regression shows up as a clean timeout instead of a
  // hung test binary.
  auto probe = std::async(std::launch::async, [&server] {
    KvsClient client("127.0.0.1", server.port());
    for (int i = 0; i < 50; ++i) {
      const std::string key = "probe-" + std::to_string(i);
      if (!client.set(key, "value-" + key, 0, 0)) return false;
      if (client.get(key).value != "value-" + key) return false;
    }
    // STATS must also flow while the sibling is jammed, and must report
    // the event-driven backend.
    const auto stats = client.stats();
    return stats.at("io_backend") == std::string(EventLoop::backend()) &&
           stats.count("accept_failures") == 1;
  });
  ASSERT_EQ(probe.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "worker is stalled behind the slow reader";
  EXPECT_TRUE(probe.get());

  ::close(flooder);
  server.stop();
}

/// A peer that disappears mid-flood (reset, not orderly shutdown) must be
/// reaped without disturbing its worker siblings.
TEST(SlowReaderTest, AbortedSlowReaderIsReaped) {
  ServerConfig config = server_config();
  config.workers = 1;
  const util::SteadyClock clock;
  KvsServer server(config, lru_factory(), clock);
  server.start();
  {
    KvsClient seeder("127.0.0.1", server.port());
    ASSERT_TRUE(seeder.set("big", std::string(200'000, 'x'), 0, 0));
  }
  const int flooder = connect_raw(server.port());
  std::string burst;
  for (int i = 0; i < 64; ++i) burst += "get big\r\n";
  (void)::send(flooder, burst.data(), burst.size(),
               MSG_DONTWAIT | MSG_NOSIGNAL);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // RST the flooder: SO_LINGER 0 + close sends a reset instead of FIN.
  const linger hard{1, 0};
  ::setsockopt(flooder, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(flooder);

  KvsClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.set("after", "ok", 0, 0));
  EXPECT_EQ(client.get("after").value, "ok");
  server.stop();
}

// ---- EINTR end to end ------------------------------------------------------

std::atomic<int> g_usr1_count{0};
void on_usr1(int) { g_usr1_count.fetch_add(1, std::memory_order_relaxed); }

/// Big-value roundtrips under a SIGUSR1 storm with SA_RESTART disabled:
/// every blocking syscall in client and server is eligible to fail with
/// EINTR. The old code treated that as a fatal error ("connection closed" /
/// dropped connection); with retry_eintr every roundtrip must survive.
TEST(SignalStormTest, RoundtripsSurviveEintr) {
  struct sigaction sa {};
  sa.sa_handler = &on_usr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  const util::SteadyClock clock;
  KvsServer server(server_config(), lru_factory(), clock);
  server.start();

  std::atomic<bool> stop{false};
  const pthread_t target = ::pthread_self();
  std::thread storm([&] {
    while (!stop.load()) {
      // Alternate between this (client) thread and the whole process, so
      // the server's worker threads catch interrupts too.
      (void)::pthread_kill(target, SIGUSR1);
      (void)::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  {
    KvsClient client("127.0.0.1", server.port());
    const std::string big(150'000, 'p');
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(client.set("storm", big, 0, 0)) << "iteration " << i;
      ASSERT_EQ(client.get("storm").value.size(), big.size())
          << "iteration " << i;
    }
  }

  stop.store(true);
  storm.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
  EXPECT_GT(g_usr1_count.load(), 0) << "storm never actually delivered";
  server.stop();
}

}  // namespace
}  // namespace camp::kvs
