// Multi-client stress for the worker-pool server: 8 concurrent batched TCP
// clients against one KvsServer. Asserts per-client reply accounting
// (every non-noreply op is acked, batch results stay index-aligned), no
// lost acks server-side (engine op totals equal the ops the clients
// pushed), and a clean stop() while clients are mid-flight. Runs in the
// TSan CI matrix.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/camp.h"
#include "kvs/client.h"
#include "kvs/server.h"
#include "util/clock.h"
#include "util/rng.h"

namespace camp {
namespace {

constexpr std::size_t kClients = 8;

kvs::ServerConfig stress_config() {
  kvs::ServerConfig config;
  config.workers = 4;
  config.store.shards = 4;
  config.store.engine.slab.memory_limit_bytes = 64u << 20;
  return config;
}

kvs::PolicyFactory camp_policy() {
  return [](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    return core::make_camp(config);
  };
}

struct ClientTally {
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;          // acked sets
  std::uint64_t noreply_sets = 0;  // fire-and-forget sets
  std::uint64_t replies = 0;       // acked results observed
  std::uint64_t batches = 0;
};

/// One client's workload: `batches` random batches of 16 iqgets + 8 sets
/// (half of them noreply). Returns the tally; fails the test on any
/// mis-aligned or un-acked reply.
ClientTally run_client(std::uint16_t port, std::uint64_t seed,
                       int batches) {
  kvs::KvsClient client("127.0.0.1", port);
  util::Xoshiro256 rng(seed);
  ClientTally tally;
  for (int b = 0; b < batches; ++b) {
    kvs::KvsBatch batch;
    std::vector<bool> expect_ack;
    for (int i = 0; i < 16; ++i) {
      batch.add_iqget("stress-" + std::to_string(rng.below(2'000)));
      expect_ack.push_back(true);
      ++tally.gets;
    }
    for (int i = 0; i < 8; ++i) {
      const bool noreply = (i % 2) == 0;
      batch.add_set("stress-" + std::to_string(rng.below(2'000)),
                    std::string(64 + rng.below(512), 's'), 0,
                    static_cast<std::uint32_t>(1 + rng.below(10'000)), 0,
                    noreply);
      expect_ack.push_back(!noreply);
      if (noreply) {
        ++tally.noreply_sets;
      } else {
        ++tally.sets;
      }
    }
    const kvs::KvsBatchResult result = client.execute(batch);
    EXPECT_EQ(result.size(), batch.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].acked, expect_ack[i]) << "op " << i;
      if (result[i].acked) ++tally.replies;
      if (batch[i].type == kvs::KvsOpType::kSet && result[i].acked) {
        EXPECT_TRUE(result[i].ok) << "acked set must store";
      }
    }
    ++tally.batches;
  }
  return tally;
}

TEST(KvsMultiClientTest, EightBatchedClientsNoLostAcks) {
  kvs::ServerConfig config = stress_config();
  static const util::SteadyClock clock;
  kvs::KvsServer server(config, camp_policy(), clock);
  server.start();

  constexpr int kBatches = 40;
  std::vector<ClientTally> tallies(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        tallies[c] = run_client(server.port(), /*seed=*/c + 1, kBatches);
      });
    }
    for (auto& t : threads) t.join();
  }

  std::uint64_t gets = 0, sets = 0, noreply_sets = 0, replies = 0;
  for (const ClientTally& t : tallies) {
    // Per-client accounting: every batch returned, every acked op replied.
    EXPECT_EQ(t.batches, static_cast<std::uint64_t>(kBatches));
    EXPECT_EQ(t.replies, t.gets + t.sets);
    gets += t.gets;
    sets += t.sets;
    noreply_sets += t.noreply_sets;
    replies += t.replies;
  }
  EXPECT_EQ(gets, kClients * kBatches * 16u);
  EXPECT_EQ(replies, gets + sets);

  // Server-side totals: noreply sets were executed too, none were lost.
  const kvs::EngineStats stats = server.store().aggregated_stats();
  EXPECT_EQ(stats.gets, gets);
  EXPECT_EQ(stats.sets + stats.rejected_sets, sets + noreply_sets);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(KvsMultiClientTest, StopUnderLoadIsClean) {
  kvs::ServerConfig config = stress_config();
  static const util::SteadyClock clock;
  kvs::KvsServer server(config, camp_policy(), clock);
  server.start();

  std::atomic<bool> stop_requested{false};
  std::atomic<std::uint64_t> completed_batches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        kvs::KvsClient client("127.0.0.1", server.port());
        util::Xoshiro256 rng(100 + c);
        // Bounded loop: the stop() below aborts it early via the
        // connection teardown; without stop() it still terminates.
        for (int b = 0; b < 50'000 && !stop_requested.load(); ++b) {
          kvs::KvsBatch batch;
          for (int i = 0; i < 24; ++i) {
            batch.add_iqget("load-" + std::to_string(rng.below(1'000)));
          }
          batch.add_set("load-" + std::to_string(rng.below(1'000)),
                        std::string(256, 'x'), 0, 1, 0, /*noreply=*/true);
          (void)client.execute(batch);
          completed_batches.fetch_add(1);
        }
      } catch (const std::exception&) {
        // Expected once stop() tears the connection down mid-flight.
      }
    });
  }

  // Let the clients build up real in-flight load, then stop the server
  // while they are still writing.
  while (completed_batches.load() < kClients * 4) {
    std::this_thread::yield();
  }
  server.stop();
  stop_requested.store(true);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(server.running());
  EXPECT_GE(completed_batches.load(), kClients * 4);

  // The server must be fully torn down: a fresh one can start and serve.
  kvs::KvsServer again(stress_config(), camp_policy(), clock);
  again.start();
  kvs::KvsClient client("127.0.0.1", again.port());
  EXPECT_TRUE(client.set("after-restart", "v", 0, 1));
  again.stop();
}

}  // namespace
}  // namespace camp
