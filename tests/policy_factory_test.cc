#include "policy/policy_factory.h"

#include <gtest/gtest.h>

namespace camp::policy {
namespace {

TEST(Factory, BuildsEveryKnownSpec) {
  for (const std::string& spec : known_policy_specs()) {
    auto cache = make_policy(spec, 10'000);
    ASSERT_NE(cache, nullptr) << spec;
    EXPECT_EQ(cache->capacity_bytes(), 10'000u) << spec;
    // Smoke: the cache must actually cache.
    cache->put(1, 100, 200);
    cache->put(1, 100, 200);  // admit+ variants admit on the second attempt
    EXPECT_TRUE(cache->get(1)) << spec;
  }
}

TEST(Factory, CampPrecisionParsing) {
  auto p3 = make_policy("camp:p=3", 1000);
  EXPECT_EQ(p3->name(), "camp(p=3)");
  auto pinf = make_policy("camp:p=64", 1000);
  EXPECT_EQ(pinf->name(), "camp(p=inf)");
}

TEST(Factory, LruKParsing) {
  EXPECT_EQ(make_policy("lru-3", 1000)->name(), "lru-3");
}

TEST(Factory, GdsTieBreakVariant) {
  EXPECT_EQ(make_policy("gds:lru", 1000)->name(), "gds");
}

TEST(Factory, AdmissionWrapping) {
  auto cache = make_policy("admit+camp:p=5", 1000);
  EXPECT_EQ(cache->name(), "admit+camp(p=5)");
}

TEST(Factory, UnknownSpecThrows) {
  EXPECT_THROW(make_policy("nope", 100), std::invalid_argument);
  EXPECT_THROW(make_policy("camp:p=x", 100), std::invalid_argument);
  EXPECT_THROW(make_policy("lru-", 100), std::invalid_argument);
}

}  // namespace
}  // namespace camp::policy
