#include "policy/policy_factory.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/auto_tuner.h"

namespace camp::policy {
namespace {

// Every malformed spec must throw std::invalid_argument with a message
// naming both the problem and the full spec (operators read these from
// server startup failures).
void expect_rejected(const std::string& spec, const std::string& needle) {
  try {
    (void)make_policy(spec, 1000);
    FAIL() << "spec '" << spec << "' was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "spec '" << spec << "' threw '" << what << "' (wanted '" << needle
        << "')";
    EXPECT_NE(what.find(spec), std::string::npos)
        << "message '" << what << "' does not quote the spec";
  }
}

TEST(Factory, BuildsEveryKnownSpec) {
  for (const std::string& spec : known_policy_specs()) {
    auto cache = make_policy(spec, 10'000);
    ASSERT_NE(cache, nullptr) << spec;
    EXPECT_EQ(cache->capacity_bytes(), 10'000u) << spec;
    // Smoke: the cache must actually cache.
    cache->put(1, 100, 200);
    cache->put(1, 100, 200);  // admit+ variants admit on the second attempt
    EXPECT_TRUE(cache->get(1)) << spec;
  }
}

TEST(Factory, CampPrecisionParsing) {
  auto p3 = make_policy("camp:p=3", 1000);
  EXPECT_EQ(p3->name(), "camp(p=3)");
  auto pinf = make_policy("camp:p=64", 1000);
  EXPECT_EQ(pinf->name(), "camp(p=inf)");
}

TEST(Factory, LruKParsing) {
  EXPECT_EQ(make_policy("lru-3", 1000)->name(), "lru-3");
}

TEST(Factory, GdsTieBreakVariant) {
  EXPECT_EQ(make_policy("gds:lru", 1000)->name(), "gds");
}

TEST(Factory, AdmissionWrapping) {
  auto cache = make_policy("admit+camp:p=5", 1000);
  EXPECT_EQ(cache->name(), "admit+camp(p=5)");
}

TEST(Factory, UnknownSpecThrows) {
  EXPECT_THROW(make_policy("nope", 100), std::invalid_argument);
  EXPECT_THROW(make_policy("camp:p=x", 100), std::invalid_argument);
  EXPECT_THROW(make_policy("lru-", 100), std::invalid_argument);
}

TEST(Factory, CampSpecRejectsMalformedParameters) {
  expect_rejected("camp:p=0", "precision must be >= 1");
  expect_rejected("camp:p=-3", "precision must be >= 1");
  expect_rejected("camp:p=", "bad precision");
  expect_rejected("camp:p=5x", "bad precision");
  expect_rejected("camp:p=5 ", "bad precision");   // trailing garbage
  expect_rejected("camp:px=3", "unknown parameter 'px'");
  expect_rejected("camp:p", "malformed parameter");  // no '='
  expect_rejected("camp:=5", "malformed parameter");
  expect_rejected("camp:p=5:p=7", "duplicate parameter 'p'");
  expect_rejected("camp:p=auto:p=5", "duplicate parameter 'p'");
  expect_rejected("camp:p=5:junk", "malformed parameter");
  expect_rejected("camp:q=4", "unknown parameter 'q'");  // camp-mt only
  expect_rejected("camp-mt:p=0", "precision must be >= 1");
  expect_rejected("camp-mt:q=0", "must be >= 1");
  expect_rejected("camp-mt:q=4:q=8", "duplicate parameter 'q'");
  expect_rejected("camp-mt:p=auto", "only supported by 'camp'");
  expect_rejected("camp-f:p=auto", "only supported by 'camp'");
  expect_rejected("camp-f:candidates=1,2", "unknown parameter");
  expect_rejected("camp:candidates=1,2", "requires p=auto");
  expect_rejected("camp:p=auto:candidates=1,0", "precision must be >= 1");
  expect_rejected("camp:p=auto:candidates=", "bad precision");
  expect_rejected("camp:p=auto:candidates=1,,2", "bad precision");
}

TEST(Factory, CampAutoSpecBuilds) {
  auto cache = make_policy("camp:p=auto", 4096);
  ASSERT_NE(cache, nullptr);
  // Default tuner config starts at its initial precision.
  EXPECT_EQ(cache->name(),
            "camp-auto(p=" +
                std::to_string(core::AutoTunerConfig{}.initial_precision) +
                ")");

  // An explicit candidate list starts the duel at its first entry.
  auto narrowed = make_policy("camp:p=auto:candidates=3,7", 4096);
  EXPECT_EQ(narrowed->name(), "camp-auto(p=3)");
}

TEST(Factory, CampAutoFactorySharesOneTunerAcrossShards) {
  const auto factory = make_policy_factory("camp:p=auto");
  auto a = factory(1024);
  auto b = factory(1024);
  const auto* sa = dynamic_cast<const core::SelfTuningCampCache*>(a.get());
  const auto* sb = dynamic_cast<const core::SelfTuningCampCache*>(b.get());
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(&sa->tuner(), &sb->tuner());  // ONE duel for the logical cache

  // Static specs go through plain make_policy: distinct instances.
  const auto static_factory = make_policy_factory("camp:p=5");
  EXPECT_EQ(static_factory(1024)->name(), "camp(p=5)");
}

TEST(Factory, CampMtQueueParsing) {
  EXPECT_EQ(make_policy("camp-mt:p=3:q=2", 1000)->name(), "camp-mt(p=3,q=2)");
  EXPECT_EQ(make_policy("camp-mt:q=1", 1000)->name(), "camp-mt(p=5)");
}

}  // namespace
}  // namespace camp::policy
