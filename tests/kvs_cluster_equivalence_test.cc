// Cluster <-> simulator equivalence: the same deterministic trace driven
// through the networked cooperative cluster (ClusterClient over in-process
// CoopNodeClients, ManualClock) and through coop::CoopGroup must produce
// IDENTICAL local/remote/guard/miss counters — the wire deployment is the
// simulation substrate's semantics, not an approximation of them.
//
// Making the two systems bit-compatible pins down every accounting detail:
//   * placement: both route by cluster_route_key() on the same ring
//     geometry, so the sim is driven with the cluster's route hashes;
//   * sizes: the engine charges slab-chunk bytes per pair, so the sim is
//     driven with the SAME charged size (probed from a twin SlabAllocator)
//     and node capacity equal to the engine's policy budget;
//   * costs: fixed per key, so a promotion (which preserves the stored
//     cost) matches the sim's install (which uses the request's cost);
//   * guard: same byte budget, same lease, both measured in charged bytes
//     and get-requests;
//   * replication: with R = 2 the cluster's set fan-out writes the same
//     first-two-ring-nodes set (in the same order) as the sim's
//     install_replicas, so replica evictions and guard parks line up too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "coop/group.h"
#include "kvs/cluster.h"
#include "kvs/cluster_client.h"
#include "policy/policy_factory.h"
#include "slab/slab_allocator.h"
#include "util/clock.h"
#include "util/rng.h"

namespace camp::kvs {
namespace {

constexpr std::size_t kValueBytes = 1000;
constexpr std::uint64_t kSlabBytes = 64u << 10;
constexpr std::uint64_t kNodeSlabLimit = 8 * kSlabBytes;
constexpr double kPolicyFill = 0.85;  // EngineConfig default
constexpr std::uint64_t kLease = 3'000;
constexpr std::uint32_t kNodes = 3;

std::uint32_t cost_of(std::uint64_t key_id) {
  return 1 + static_cast<std::uint32_t>((key_id * 2654435761ull) % 9'999);
}

/// Built without the fused `"k" + to_string` temporary, which trips GCC
/// 12's bogus -Wrestrict at -O2 (same workaround as figures/registry.cc).
std::string key_name(std::uint64_t key_id) {
  std::string out = "k";
  out += std::to_string(key_id);
  return out;
}

/// The policy byte budget the engine derives from the slab limit.
std::uint64_t node_policy_capacity() {
  return static_cast<std::uint64_t>(static_cast<double>(kNodeSlabLimit) *
                                    kPolicyFill);
}

std::uint64_t guard_capacity() {
  return static_cast<std::uint64_t>(
      std::llround(0.25 * static_cast<double>(node_policy_capacity())));
}

class ClusterSimEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint32_t>> {};

TEST_P(ClusterSimEquivalence, IdenticalCountersIncludingAJoin) {
  const std::string policy_spec = std::get<0>(GetParam());
  const std::uint32_t replication = std::get<1>(GetParam());
  static const util::ManualClock clock;

  // --- the networked side -------------------------------------------------
  StoreConfig store_config;
  store_config.shards = 1;
  store_config.engine.slab.slab_size_bytes =
      static_cast<std::uint32_t>(kSlabBytes);
  store_config.engine.slab.memory_limit_bytes = kNodeSlabLimit;
  const PolicyFactory factory = [&policy_spec](std::uint64_t cap) {
    return policy::make_policy(policy_spec, cap);
  };
  ClusterConfig cluster_config;
  cluster_config.guard_capacity_bytes = guard_capacity();
  cluster_config.guard_lease_requests = kLease;
  cluster_config.replication = replication;

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster(cluster_config);
  std::vector<std::unique_ptr<CoopNodeClient>> node_clients;
  ClusterClient router(cluster_config.virtual_nodes, /*parallel=*/false,
                       replication);
  const auto add_cluster_node = [&] {
    stores.push_back(
        std::make_unique<KvsStore>(store_config, factory, clock));
    const ClusterNodeId id = cluster.join(*stores.back());
    node_clients.push_back(std::make_unique<CoopNodeClient>(cluster, id));
    router.add_node(id, *node_clients.back());
  };
  for (std::uint32_t n = 0; n < kNodes; ++n) add_cluster_node();

  // --- the simulation side ------------------------------------------------
  coop::CoopConfig group_config;
  group_config.nodes = kNodes;
  group_config.node_capacity_bytes = node_policy_capacity();
  group_config.policy_spec = policy_spec;
  group_config.virtual_nodes = cluster_config.virtual_nodes;
  group_config.replication = replication;
  group_config.guard_fraction =
      static_cast<double>(guard_capacity()) /
      static_cast<double>(node_policy_capacity());
  group_config.guard_lease_requests = kLease;
  coop::CoopGroup group(group_config);
  ASSERT_EQ(static_cast<std::uint64_t>(
                std::llround(group_config.guard_fraction *
                             static_cast<double>(
                                 group_config.node_capacity_bytes))),
            guard_capacity())
      << "guard budgets diverge before the trace even starts";

  // Probe the engine's slab geometry for the charged (chunk) size of each
  // key, so the sim is driven with identical byte accounting.
  slab::SlabAllocator probe(store_config.engine.slab);
  const auto charged_of = [&probe](const std::string& key) {
    const auto cls = probe.class_for(item_footprint(key.size(), kValueBytes));
    EXPECT_TRUE(cls.has_value());
    return static_cast<std::uint64_t>(probe.chunk_size_of_class(*cls));
  };

  // --- drive both with the same trace ------------------------------------
  const std::string payload(kValueBytes, 'v');
  util::Xoshiro256 rng(2014);
  constexpr int kOps = 24'000;
  for (int i = 0; i < kOps; ++i) {
    if (i == kOps / 2) {
      // Membership change, mirrored: remapped keys produce remote hits and
      // promotions on both sides.
      add_cluster_node();
      group.add_node();
    }
    // Skewed key mix: a hot core plus a long tail.
    const std::uint64_t key_id =
        rng.below(10) < 7 ? rng.below(350) : 350 + rng.below(1'400);
    const std::string key = key_name(key_id);
    const std::uint64_t route = cluster_route_key(key);
    const std::uint32_t cost = cost_of(key_id);
    const std::uint64_t charged = charged_of(key);

    const bool sim_served = group.request(route, charged, cost);

    KvsBatch get;
    get.add_get(key);
    const bool cluster_served = router.execute(get)[0].ok;
    if (!cluster_served) {
      KvsBatch set;
      set.add_set(key, payload, 0, cost);
      ASSERT_TRUE(router.execute(set)[0].ok)
          << "refill rejected for " << key << " at op " << i;
    }
    ASSERT_EQ(sim_served, cluster_served)
        << policy_spec << " r=" << replication << " diverged at op " << i
        << " key " << key;
  }

  // --- the ledgers must agree line by line --------------------------------
  const coop::CoopMetrics& sim = group.metrics();
  const ClusterCounters net = cluster.counters();
  EXPECT_EQ(net.requests, sim.requests);
  EXPECT_EQ(net.local_hits, sim.local_hits);
  EXPECT_EQ(net.remote_hits, sim.remote_hits);
  EXPECT_EQ(net.guard_hits, sim.guard_hits);
  EXPECT_EQ(net.misses, sim.misses);
  EXPECT_EQ(net.cold_misses, sim.cold_misses);
  EXPECT_EQ(net.guard_parked, sim.guard_parked);
  EXPECT_EQ(net.guard_expired, sim.guard_expired);
  EXPECT_EQ(net.guard_squeezed, sim.guard_squeezed);
  // The cluster meters transfers in bytes, the sim in abstract cost units;
  // with fixed-size values they are proportional.
  EXPECT_EQ(net.transfer_bytes, sim.remote_hits * kValueBytes);
  EXPECT_GT(net.remote_hits, 0u) << "the join produced no remote traffic";
  EXPECT_GT(net.guard_hits, 0u) << "the guard never reinstated anything";
  if (replication > 1) {
    // Every miss refill fanned out; the replica ledger must show it.
    EXPECT_GT(net.replica_writes + net.replica_write_failures, 0u);
  }
  EXPECT_TRUE(cluster.check_invariants());
  EXPECT_TRUE(group.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ClusterSimEquivalence,
    ::testing::Combine(::testing::Values("lru", "camp"),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace camp::kvs
