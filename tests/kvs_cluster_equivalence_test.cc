// Cluster <-> simulator equivalence: the same deterministic trace driven
// through the networked cooperative cluster (ClusterClient over in-process
// CoopNodeClients, ManualClock) and through coop::CoopGroup must produce
// IDENTICAL local/remote/guard/miss counters — the wire deployment is the
// simulation substrate's semantics, not an approximation of them.
//
// Making the two systems bit-compatible pins down every accounting detail:
//   * placement: both route by cluster_route_key() on the same ring
//     geometry, so the sim is driven with the cluster's route hashes;
//   * sizes: the engine charges slab-chunk bytes per pair, so the sim is
//     driven with the SAME charged size (probed from a twin SlabAllocator)
//     and node capacity equal to the engine's policy budget;
//   * costs: fixed per key, so a promotion (which preserves the stored
//     cost) matches the sim's install (which uses the request's cost);
//   * guard: same byte budget, same lease, both measured in charged bytes
//     and get-requests;
//   * replication: with R = 2 the cluster's set fan-out writes the same
//     first-two-ring-nodes set (in the same order) as the sim's
//     install_replicas, so replica evictions and guard parks line up too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "coop/group.h"
#include "kvs/cluster.h"
#include "kvs/compress.h"
#include "kvs/cluster_client.h"
#include "policy/policy_factory.h"
#include "slab/slab_allocator.h"
#include "util/clock.h"
#include "util/rng.h"

namespace camp::kvs {
namespace {

constexpr std::size_t kValueBytes = 1000;
constexpr std::uint64_t kSlabBytes = 64u << 10;
constexpr std::uint64_t kNodeSlabLimit = 8 * kSlabBytes;
constexpr double kPolicyFill = 0.85;  // EngineConfig default
constexpr std::uint64_t kLease = 3'000;
constexpr std::uint32_t kNodes = 3;

std::uint32_t cost_of(std::uint64_t key_id) {
  return 1 + static_cast<std::uint32_t>((key_id * 2654435761ull) % 9'999);
}

/// Built without the fused `"k" + to_string` temporary, which trips GCC
/// 12's bogus -Wrestrict at -O2 (same workaround as figures/registry.cc).
std::string key_name(std::uint64_t key_id) {
  std::string out = "k";
  out += std::to_string(key_id);
  return out;
}

/// The policy byte budget the engine derives from the slab limit.
std::uint64_t node_policy_capacity() {
  return static_cast<std::uint64_t>(static_cast<double>(kNodeSlabLimit) *
                                    kPolicyFill);
}

std::uint64_t guard_capacity() {
  return static_cast<std::uint64_t>(
      std::llround(0.25 * static_cast<double>(node_policy_capacity())));
}

class ClusterSimEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint32_t>> {};

TEST_P(ClusterSimEquivalence, IdenticalCountersIncludingAJoin) {
  const std::string policy_spec = std::get<0>(GetParam());
  const std::uint32_t replication = std::get<1>(GetParam());
  static const util::ManualClock clock;

  // --- the networked side -------------------------------------------------
  StoreConfig store_config;
  store_config.shards = 1;
  store_config.engine.slab.slab_size_bytes =
      static_cast<std::uint32_t>(kSlabBytes);
  store_config.engine.slab.memory_limit_bytes = kNodeSlabLimit;
  const PolicyFactory factory = [&policy_spec](std::uint64_t cap) {
    return policy::make_policy(policy_spec, cap);
  };
  ClusterConfig cluster_config;
  cluster_config.guard_capacity_bytes = guard_capacity();
  cluster_config.guard_lease_requests = kLease;
  cluster_config.replication = replication;

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster(cluster_config);
  std::vector<std::unique_ptr<CoopNodeClient>> node_clients;
  ClusterClient router(cluster_config.virtual_nodes, /*parallel=*/false,
                       replication);
  const auto add_cluster_node = [&] {
    stores.push_back(
        std::make_unique<KvsStore>(store_config, factory, clock));
    const ClusterNodeId id = cluster.join(*stores.back());
    node_clients.push_back(std::make_unique<CoopNodeClient>(cluster, id));
    router.add_node(id, *node_clients.back());
  };
  for (std::uint32_t n = 0; n < kNodes; ++n) add_cluster_node();

  // --- the simulation side ------------------------------------------------
  coop::CoopConfig group_config;
  group_config.nodes = kNodes;
  group_config.node_capacity_bytes = node_policy_capacity();
  group_config.policy_spec = policy_spec;
  group_config.virtual_nodes = cluster_config.virtual_nodes;
  group_config.replication = replication;
  group_config.guard_fraction =
      static_cast<double>(guard_capacity()) /
      static_cast<double>(node_policy_capacity());
  group_config.guard_lease_requests = kLease;
  coop::CoopGroup group(group_config);
  ASSERT_EQ(static_cast<std::uint64_t>(
                std::llround(group_config.guard_fraction *
                             static_cast<double>(
                                 group_config.node_capacity_bytes))),
            guard_capacity())
      << "guard budgets diverge before the trace even starts";

  // Probe the engine's slab geometry for the charged (chunk) size of each
  // key, so the sim is driven with identical byte accounting.
  slab::SlabAllocator probe(store_config.engine.slab);
  const auto charged_of = [&probe](const std::string& key) {
    const auto cls = probe.class_for(item_footprint(key.size(), kValueBytes));
    EXPECT_TRUE(cls.has_value());
    return static_cast<std::uint64_t>(probe.chunk_size_of_class(*cls));
  };

  // --- drive both with the same trace ------------------------------------
  const std::string payload(kValueBytes, 'v');
  util::Xoshiro256 rng(2014);
  constexpr int kOps = 24'000;
  for (int i = 0; i < kOps; ++i) {
    if (i == kOps / 2) {
      // Membership change, mirrored: remapped keys produce remote hits and
      // promotions on both sides.
      add_cluster_node();
      group.add_node();
    }
    // Skewed key mix: a hot core plus a long tail.
    const std::uint64_t key_id =
        rng.below(10) < 7 ? rng.below(350) : 350 + rng.below(1'400);
    const std::string key = key_name(key_id);
    const std::uint64_t route = cluster_route_key(key);
    const std::uint32_t cost = cost_of(key_id);
    const std::uint64_t charged = charged_of(key);

    const bool sim_served = group.request(route, charged, cost);

    KvsBatch get;
    get.add_get(key);
    const bool cluster_served = router.execute(get)[0].ok;
    if (!cluster_served) {
      KvsBatch set;
      set.add_set(key, payload, 0, cost);
      ASSERT_TRUE(router.execute(set)[0].ok)
          << "refill rejected for " << key << " at op " << i;
    }
    ASSERT_EQ(sim_served, cluster_served)
        << policy_spec << " r=" << replication << " diverged at op " << i
        << " key " << key;
  }

  // --- the ledgers must agree line by line --------------------------------
  const coop::CoopMetrics& sim = group.metrics();
  const ClusterCounters net = cluster.counters();
  EXPECT_EQ(net.requests, sim.requests);
  EXPECT_EQ(net.local_hits, sim.local_hits);
  EXPECT_EQ(net.remote_hits, sim.remote_hits);
  EXPECT_EQ(net.guard_hits, sim.guard_hits);
  EXPECT_EQ(net.misses, sim.misses);
  EXPECT_EQ(net.cold_misses, sim.cold_misses);
  EXPECT_EQ(net.guard_parked, sim.guard_parked);
  EXPECT_EQ(net.guard_expired, sim.guard_expired);
  EXPECT_EQ(net.guard_squeezed, sim.guard_squeezed);
  // The cluster meters transfers in bytes, the sim in abstract cost units;
  // with fixed-size values they are proportional.
  EXPECT_EQ(net.transfer_bytes, sim.remote_hits * kValueBytes);
  EXPECT_GT(net.remote_hits, 0u) << "the join produced no remote traffic";
  EXPECT_GT(net.guard_hits, 0u) << "the guard never reinstated anything";
  if (replication > 1) {
    // Every miss refill fanned out; the replica ledger must show it.
    EXPECT_GT(net.replica_writes + net.replica_write_failures, 0u);
  }
  EXPECT_TRUE(cluster.check_invariants());
  EXPECT_TRUE(group.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ClusterSimEquivalence,
    ::testing::Combine(::testing::Values("lru", "camp"),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Compression-on equivalence
// ---------------------------------------------------------------------------

/// Half pseudo-random, half run: RLE keeps the literal half and collapses
/// the run, so the stored form is ~0.5x the raw kValueBytes — large enough
/// to matter, deterministic, and identical for every key.
std::string compressible_payload() {
  util::Xoshiro256 rng(77);
  std::string payload(kValueBytes / 2, '\0');
  for (char& c : payload) c = static_cast<char>(rng.next() & 0xff);
  payload += std::string(kValueBytes - payload.size(), 'v');
  return payload;
}

class ClusterSimCompressionEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint32_t>> {};

TEST_P(ClusterSimCompressionEquivalence, CountersPinExactlyUnderCompression) {
  // The same lock-step schedule as above, with value compression ON at
  // every node. The sim has no codec — it only ever sees byte charges — so
  // equivalence holds exactly when the cluster charges the COMPRESSED
  // chunk size everywhere a size matters: local sets, promotions, guard
  // parks and squeezes, replica fan-out. Driving the sim with the stored
  // footprint and pinning every counter proves the whole pipeline charges
  // post-codec bytes, with no layer quietly falling back to raw sizes.
  const std::string policy_spec = std::get<0>(GetParam());
  const std::uint32_t replication = std::get<1>(GetParam());
  static const util::ManualClock clock;

  // Half the raw bytes per pair: halve the node budget so the policies
  // stay under comparable pressure (evictions, parks, squeezes all fire).
  const std::uint64_t node_slab_limit = 4 * kSlabBytes;
  const std::uint64_t policy_capacity = static_cast<std::uint64_t>(
      static_cast<double>(node_slab_limit) * kPolicyFill);
  const std::uint64_t guard_bytes = static_cast<std::uint64_t>(
      std::llround(0.25 * static_cast<double>(policy_capacity)));

  const std::string payload = compressible_payload();
  CompressionConfig compression;
  compression.enabled = true;
  const CompressResult comp = compress_value(payload, compression);
  ASSERT_EQ(comp.codec, Codec::kRle);
  const std::size_t stored_len = comp.data.size();
  ASSERT_LT(stored_len, payload.size() * 6 / 10)
      << "the payload must actually compress";

  StoreConfig store_config;
  store_config.shards = 1;
  store_config.engine.slab.slab_size_bytes =
      static_cast<std::uint32_t>(kSlabBytes);
  store_config.engine.slab.memory_limit_bytes = node_slab_limit;
  store_config.engine.compression.enabled = true;
  const PolicyFactory factory = [&policy_spec](std::uint64_t cap) {
    return policy::make_policy(policy_spec, cap);
  };
  ClusterConfig cluster_config;
  cluster_config.guard_capacity_bytes = guard_bytes;
  cluster_config.guard_lease_requests = kLease;
  cluster_config.replication = replication;

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster(cluster_config);
  std::vector<std::unique_ptr<CoopNodeClient>> node_clients;
  ClusterClient router(cluster_config.virtual_nodes, /*parallel=*/false,
                       replication);
  const auto add_cluster_node = [&] {
    stores.push_back(
        std::make_unique<KvsStore>(store_config, factory, clock));
    const ClusterNodeId id = cluster.join(*stores.back());
    node_clients.push_back(std::make_unique<CoopNodeClient>(cluster, id));
    router.add_node(id, *node_clients.back());
  };
  for (std::uint32_t n = 0; n < kNodes; ++n) add_cluster_node();

  coop::CoopConfig group_config;
  group_config.nodes = kNodes;
  group_config.node_capacity_bytes = policy_capacity;
  group_config.policy_spec = policy_spec;
  group_config.virtual_nodes = cluster_config.virtual_nodes;
  group_config.replication = replication;
  group_config.guard_fraction = static_cast<double>(guard_bytes) /
                                static_cast<double>(policy_capacity);
  group_config.guard_lease_requests = kLease;
  coop::CoopGroup group(group_config);

  // The sim's charge per pair is the chunk the engine picks for the
  // COMPRESSED form (stored bytes + the raw_len extension word).
  slab::SlabAllocator probe(store_config.engine.slab);
  const auto charged_of = [&](const std::string& key) {
    const auto cls =
        probe.class_for(item_footprint(key.size(), stored_len, comp.codec));
    EXPECT_TRUE(cls.has_value());
    return static_cast<std::uint64_t>(probe.chunk_size_of_class(*cls));
  };

  util::Xoshiro256 rng(2014);
  constexpr int kOps = 24'000;
  for (int i = 0; i < kOps; ++i) {
    if (i == kOps / 2) {
      add_cluster_node();
      group.add_node();
    }
    const std::uint64_t key_id =
        rng.below(10) < 7 ? rng.below(350) : 350 + rng.below(1'400);
    const std::string key = key_name(key_id);
    const std::uint64_t route = cluster_route_key(key);
    const std::uint32_t cost = cost_of(key_id);
    const std::uint64_t charged = charged_of(key);

    const bool sim_served = group.request(route, charged, cost);

    KvsBatch get;
    get.add_get(key);
    const bool cluster_served = router.execute(get)[0].ok;
    if (!cluster_served) {
      KvsBatch set;
      set.add_set(key, payload, 0, cost);
      ASSERT_TRUE(router.execute(set)[0].ok)
          << "refill rejected for " << key << " at op " << i;
    }
    ASSERT_EQ(sim_served, cluster_served)
        << policy_spec << " r=" << replication << " diverged at op " << i
        << " key " << key;
  }

  const coop::CoopMetrics& sim = group.metrics();
  const ClusterCounters net = cluster.counters();
  EXPECT_EQ(net.requests, sim.requests);
  EXPECT_EQ(net.local_hits, sim.local_hits);
  EXPECT_EQ(net.remote_hits, sim.remote_hits);
  EXPECT_EQ(net.guard_hits, sim.guard_hits);
  EXPECT_EQ(net.misses, sim.misses);
  EXPECT_EQ(net.cold_misses, sim.cold_misses);
  EXPECT_EQ(net.guard_parked, sim.guard_parked);
  EXPECT_EQ(net.guard_expired, sim.guard_expired);
  EXPECT_EQ(net.guard_squeezed, sim.guard_squeezed);
  // Peer transfers move the STORED form: the byte meter counts compressed
  // bytes, one stored_len per remote hit — not raw kValueBytes.
  EXPECT_EQ(net.transfer_bytes, sim.remote_hits * stored_len);
  EXPECT_GT(net.remote_hits, 0u) << "the join produced no remote traffic";
  EXPECT_GT(net.guard_hits, 0u) << "the guard never reinstated anything";
  EXPECT_GT(net.guard_parked, 0u);
  EXPECT_TRUE(cluster.check_invariants());
  EXPECT_TRUE(group.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ClusterSimCompressionEquivalence,
    ::testing::Combine(::testing::Values("lru", "camp"),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Repair-schedule equivalence: churn edition
// ---------------------------------------------------------------------------

/// A transport that can be killed and revived, so the CLIENT's view of a
/// node (reads fail over) is switched independently of the node itself —
/// the cluster twin of CoopGroup's route_down/route_up.
class FlakyTransport final : public KvsApi {
 public:
  explicit FlakyTransport(KvsApi& inner) : inner_(inner) {}
  KvsBatchResult execute(const KvsBatch& batch) override {
    if (dead_) throw std::runtime_error("FlakyTransport: node is down");
    return inner_.execute(batch);
  }
  void kill() { dead_ = true; }
  void revive() { dead_ = false; }

 private:
  KvsApi& inner_;
  bool dead_ = false;
};

class ClusterSimRepairEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ClusterSimRepairEquivalence, ChurnRepairLedgersMatchExactly) {
  // The full anti-entropy schedule — crash, sloppy writes + hints, sweep
  // ticks, a mid-outage join, heal + hint replay, a stale window where the
  // healed node is live but the client has not noticed (read repair) —
  // driven through both substrates. Every counter, INCLUDING the whole
  // RepairCounters ledger, must match field by field: the wire repair
  // subsystem is the simulator's semantics, not an approximation.
  const std::string policy_spec = GetParam();
  constexpr std::uint32_t kReplication = 2;
  static const util::ManualClock clock;

  StoreConfig store_config;
  store_config.shards = 1;
  store_config.engine.slab.slab_size_bytes =
      static_cast<std::uint32_t>(kSlabBytes);
  store_config.engine.slab.memory_limit_bytes = kNodeSlabLimit;
  const PolicyFactory factory = [&policy_spec](std::uint64_t cap) {
    return policy::make_policy(policy_spec, cap);
  };
  ClusterConfig cluster_config;
  cluster_config.guard_capacity_bytes = guard_capacity();
  cluster_config.guard_lease_requests = kLease;
  cluster_config.replication = kReplication;

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster(cluster_config);
  std::vector<std::unique_ptr<CoopNodeClient>> node_clients;
  std::vector<std::unique_ptr<FlakyTransport>> transports;
  ClusterClient router(cluster_config.virtual_nodes, /*parallel=*/false,
                       kReplication);
  const auto add_cluster_node = [&] {
    stores.push_back(
        std::make_unique<KvsStore>(store_config, factory, clock));
    const ClusterNodeId id = cluster.join(*stores.back());
    node_clients.push_back(std::make_unique<CoopNodeClient>(cluster, id));
    transports.push_back(
        std::make_unique<FlakyTransport>(*node_clients.back()));
    router.add_node(id, *transports.back());
  };
  for (std::uint32_t n = 0; n < kNodes; ++n) add_cluster_node();

  coop::CoopConfig group_config;
  group_config.nodes = kNodes;
  group_config.node_capacity_bytes = node_policy_capacity();
  group_config.policy_spec = policy_spec;
  group_config.virtual_nodes = cluster_config.virtual_nodes;
  group_config.replication = kReplication;
  group_config.guard_fraction =
      static_cast<double>(guard_capacity()) /
      static_cast<double>(node_policy_capacity());
  group_config.guard_lease_requests = kLease;
  coop::CoopGroup group(group_config);

  slab::SlabAllocator probe(store_config.engine.slab);
  const auto charged_of = [&probe](const std::string& key) {
    const auto cls = probe.class_for(item_footprint(key.size(), kValueBytes));
    EXPECT_TRUE(cls.has_value());
    return static_cast<std::uint64_t>(probe.chunk_size_of_class(*cls));
  };

  const std::string payload(kValueBytes, 'v');
  util::Xoshiro256 rng(2014);
  constexpr int kOps = 24'000;
  constexpr ClusterNodeId kVictim = 1;
  constexpr int kKill = kOps / 4;
  constexpr int kJoin = kOps / 2;
  constexpr int kHeal = 3 * kOps / 4;
  constexpr int kRevive = kHeal + 400;  // the read-repair (stale) window
  bool victim_unreachable = false;

  for (int i = 0; i < kOps; ++i) {
    // Membership / failure events, mirrored on both sides at the same op.
    if (i == kKill) {
      transports[kVictim]->kill();
      victim_unreachable = true;
      cluster.kill_node(kVictim);
      group.kill_node(kVictim);
      group.route_down(kVictim);
    }
    if (i == kJoin) {
      add_cluster_node();
      group.add_node();
    }
    if (i == kHeal) {
      // The node heals (and drains its hints) before the CLIENT notices:
      // until kRevive, reads still fail over — the read-repair window.
      cluster.heal_node(kVictim);
      group.heal_node(kVictim);
    }
    if (i == kRevive) {
      transports[kVictim]->revive();
      victim_unreachable = false;
      group.route_up(kVictim);
    }
    // Interleaved sweep ticks, compared re-copy for re-copy.
    if (i % 1'500 == 0 && i > 0) {
      ASSERT_EQ(cluster.repair_tick(), group.repair_tick())
          << policy_spec << " sweep diverged at op " << i;
    }

    const std::uint64_t key_id =
        rng.below(10) < 7 ? rng.below(350) : 350 + rng.below(1'400);
    const std::string key = key_name(key_id);
    const std::uint64_t route = cluster_route_key(key);
    const std::uint32_t cost = cost_of(key_id);
    const std::uint64_t charged = charged_of(key);

    const bool sim_served = group.request(route, charged, cost);

    KvsBatch get;
    get.add_get(key);
    const bool cluster_served = router.execute(get)[0].ok;
    if (!cluster_served) {
      // Refill. Mutations do not fail over, so when the key's home
      // transport is down the client coordinates the set at the first
      // reachable live replica instead (the sloppy plan is the same
      // whichever live node coordinates).
      const ClusterNodeId home = cluster.home_node(key);
      if (home == kVictim && victim_unreachable) {
        std::optional<ClusterNodeId> coordinator;
        for (const ClusterNodeId id : cluster.replica_nodes(key)) {
          if (id != kVictim && cluster.node_live(id)) {
            coordinator = id;
            break;
          }
        }
        ASSERT_TRUE(coordinator.has_value()) << "no reachable coordinator";
        ASSERT_TRUE(cluster.set(*coordinator, key, payload, 0, cost))
            << "refill rejected for " << key << " at op " << i;
      } else {
        KvsBatch set;
        set.add_set(key, payload, 0, cost);
        ASSERT_TRUE(router.execute(set)[0].ok)
            << "refill rejected for " << key << " at op " << i;
      }
    }
    ASSERT_EQ(sim_served, cluster_served)
        << policy_spec << " diverged at op " << i << " key " << key;
  }

  // A few more sweeps, still in lock-step. (These nodes hold far fewer
  // than 2x the key population, so the sweep cannot reach zero
  // under-replicated keys — every re-copy evicts some other pair. Exact
  // convergence under roomy stores is kvs_cluster_repair_test's job; here
  // the claim is that both substrates under-replicate IDENTICALLY.)
  for (int extra = 0; extra < 4; ++extra) {
    ASSERT_EQ(cluster.repair_tick(), group.repair_tick())
        << policy_spec << " post-run sweep " << extra << " diverged";
  }
  EXPECT_EQ(cluster.under_replicated_keys().size(),
            group.under_replicated_keys().size());

  const coop::CoopMetrics& sim = group.metrics();
  const ClusterCounters net = cluster.counters();
  EXPECT_EQ(net.requests, sim.requests);
  EXPECT_EQ(net.local_hits, sim.local_hits);
  EXPECT_EQ(net.remote_hits, sim.remote_hits);
  EXPECT_EQ(net.guard_hits, sim.guard_hits);
  EXPECT_EQ(net.misses, sim.misses);
  EXPECT_EQ(net.cold_misses, sim.cold_misses);
  EXPECT_EQ(net.guard_parked, sim.guard_parked);
  EXPECT_EQ(net.guard_expired, sim.guard_expired);
  EXPECT_EQ(net.guard_squeezed, sim.guard_squeezed);
  EXPECT_EQ(net.transfer_bytes, sim.remote_hits * kValueBytes);
  // The whole anti-entropy ledger, field by field.
  EXPECT_EQ(net.repair.read_repairs, sim.repair.read_repairs);
  EXPECT_EQ(net.repair.hints_queued, sim.repair.hints_queued);
  EXPECT_EQ(net.repair.hints_replayed, sim.repair.hints_replayed);
  EXPECT_EQ(net.repair.hints_dropped, sim.repair.hints_dropped);
  EXPECT_EQ(net.repair.hints_obsolete, sim.repair.hints_obsolete);
  EXPECT_EQ(net.repair.sweep_ticks, sim.repair.sweep_ticks);
  EXPECT_EQ(net.repair.sweep_keys_scanned, sim.repair.sweep_keys_scanned);
  EXPECT_EQ(net.repair.sweep_recopies, sim.repair.sweep_recopies);
  EXPECT_EQ(net.repair.sweep_failures, sim.repair.sweep_failures);
  EXPECT_EQ(cluster.hint_count(), group.hint_count());
  // The schedule exercised all three mechanisms — none of these are
  // vacuous zeros.
  EXPECT_GT(net.repair.read_repairs, 0u) << "stale window produced none";
  EXPECT_GT(net.repair.hints_queued, 0u);
  EXPECT_GT(net.repair.hints_replayed, 0u);
  EXPECT_GT(net.repair.sweep_recopies, 0u);
  EXPECT_TRUE(cluster.check_invariants());
  EXPECT_TRUE(group.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Policies, ClusterSimRepairEquivalence,
                         ::testing::Values("lru", "camp"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace camp::kvs
