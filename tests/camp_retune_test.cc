// Live precision retuning (policy::IRetunable): the rebuilt queue topology
// must be decision-equivalent to a cache constructed at the target
// precision — same eviction order, same accounting — and the structure
// invariants must hold immediately after every rebuild, on both the serial
// and the concurrent engine.
#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/camp.h"
#include "core/concurrent_camp.h"
#include "policy/cache_iface.h"
#include "util/rng.h"
#include "util/rounding.h"

namespace camp::core {
namespace {

using policy::Key;

CampConfig cfg(std::uint64_t capacity, int precision) {
  CampConfig c;
  c.capacity_bytes = capacity;
  c.precision = precision;
  return c;
}

ConcurrentCampConfig mt_cfg(std::uint64_t capacity, int precision,
                            std::uint32_t physical = 1) {
  ConcurrentCampConfig c;
  c.capacity_bytes = capacity;
  c.precision = precision;
  c.physical_queues = physical;
  return c;
}

/// Fixed per-key attributes, like the BG workloads: a key always has the
/// same size and cost, so seeding a second cache with a resident set is
/// well-defined.
std::uint64_t size_of(Key k) { return 16 + util::mix64(k * 2 + 1) % 700; }
std::uint64_t cost_of(Key k) { return 1 + util::mix64(k * 2 + 2) % 10'000; }

/// Drive `ops` randomized get/put requests (simulator protocol: get, on
/// miss put). Returns the order in which keys were last touched (every
/// touch refreshes a key's recency, mirroring the engine's seq).
template <typename Cache>
std::vector<Key> drive(Cache& cache, std::uint64_t seed, int ops,
                       Key key_space = 400) {
  std::vector<Key> touch_order;
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const Key k = rng.below(key_space);
    if (!cache.get(k)) {
      if (!cache.put(k, size_of(k), cost_of(k))) continue;
    }
    touch_order.push_back(k);
  }
  return touch_order;
}

/// Drain a cache via evict_one, returning the full eviction order.
template <typename Cache>
std::vector<Key> drain(Cache& cache) {
  std::vector<Key> order;
  cache.set_eviction_listener(
      [&](Key k, std::uint64_t) { order.push_back(k); });
  while (cache.evict_one()) {
  }
  cache.set_eviction_listener(nullptr);
  return order;
}

TEST(Retune, RejectsBadPrecisionAndNoOpsOnSame) {
  CampCache serial(cfg(4096, 5));
  EXPECT_THROW(serial.retune(0), std::invalid_argument);
  EXPECT_THROW(serial.retune(-3), std::invalid_argument);
  EXPECT_FALSE(serial.retune(5));  // already there
  EXPECT_EQ(serial.retune_count(), 0u);
  EXPECT_TRUE(serial.retune(2));
  EXPECT_EQ(serial.precision(), 2);
  EXPECT_EQ(serial.retune_count(), 1u);

  ConcurrentCampCache mt(mt_cfg(4096, 5));
  EXPECT_THROW(mt.retune(0), std::invalid_argument);
  EXPECT_FALSE(mt.retune(5));
  EXPECT_TRUE(mt.retune(2));
  EXPECT_EQ(mt.precision(), 2);
  EXPECT_EQ(mt.retune_count(), 1u);
}

TEST(Retune, AsRetunableSeesBothEngines) {
  CampCache serial(cfg(1024, 5));
  ConcurrentCampCache mt(mt_cfg(1024, 5));
  EXPECT_NE(policy::as_retunable(&serial), nullptr);
  EXPECT_NE(policy::as_retunable(&mt), nullptr);
}

TEST(Retune, BeforeTrafficMatchesConstructedAtTarget) {
  // retune on an empty cache must be indistinguishable from having
  // constructed at the target precision.
  for (const int target : {1, 2, 64}) {
    CampCache retuned(cfg(16 * 1024, 5));
    retuned.retune(target);
    CampCache constructed(cfg(16 * 1024, target));

    std::vector<Key> a_evictions, b_evictions;
    retuned.set_eviction_listener(
        [&](Key k, std::uint64_t) { a_evictions.push_back(k); });
    constructed.set_eviction_listener(
        [&](Key k, std::uint64_t) { b_evictions.push_back(k); });
    util::Xoshiro256 rng(7);
    for (int i = 0; i < 20'000; ++i) {
      const Key k = rng.below(400);
      const bool a = retuned.get(k);
      const bool b = constructed.get(k);
      ASSERT_EQ(a, b) << "hit/miss diverged at op " << i << " (p=" << target
                      << ")";
      if (!a) {
        ASSERT_EQ(retuned.put(k, size_of(k), cost_of(k)),
                  constructed.put(k, size_of(k), cost_of(k)));
      }
    }
    EXPECT_EQ(a_evictions, b_evictions);
    EXPECT_EQ(retuned.used_bytes(), constructed.used_bytes());
    EXPECT_EQ(retuned.inflation(), constructed.inflation());
  }
}

TEST(Retune, ChainedRetunesMatchSingleRetune) {
  // retune(p) then retune(p') must equal a single retune(p'): the
  // intermediate topology may not leak into future decisions.
  CampCache chained(cfg(16 * 1024, 5));
  CampCache direct(cfg(16 * 1024, 5));
  (void)drive(chained, 42, 10'000);
  (void)drive(direct, 42, 10'000);

  chained.retune(2);
  chained.retune(64);
  direct.retune(64);
  EXPECT_EQ(chained.retune_count(), 2u);
  EXPECT_EQ(direct.retune_count(), 1u);

  std::vector<Key> a_evictions, b_evictions;
  chained.set_eviction_listener(
      [&](Key k, std::uint64_t) { a_evictions.push_back(k); });
  direct.set_eviction_listener(
      [&](Key k, std::uint64_t) { b_evictions.push_back(k); });
  util::Xoshiro256 rng(43);
  for (int i = 0; i < 20'000; ++i) {
    const Key k = rng.below(400);
    const bool a = chained.get(k);
    const bool b = direct.get(k);
    ASSERT_EQ(a, b) << "hit/miss diverged at op " << i;
    if (!a) {
      ASSERT_EQ(chained.put(k, size_of(k), cost_of(k)),
                direct.put(k, size_of(k), cost_of(k)));
    }
  }
  EXPECT_EQ(a_evictions, b_evictions);
  EXPECT_EQ(chained.used_bytes(), direct.used_bytes());
}

TEST(Retune, MatchesFreshCacheSeededWithResidentSet) {
  // The documented equivalence: retune(p') behaves like a fresh cache at
  // p' seeded with the resident set in recency order (at a constant
  // inflation offset, which cannot change any comparison). Verified by
  // comparing the full drain order.
  for (const int target : {1, 2, 64}) {
    CampCache warmed(cfg(16 * 1024, 5));
    const std::vector<Key> touches = drive(warmed, 2014, 30'000);
    warmed.retune(target);

    // Resident keys in recency (last-touch) order.
    std::vector<Key> recency;
    std::vector<bool> seen(400, false);
    for (auto it = touches.rbegin(); it != touches.rend(); ++it) {
      if (seen[*it]) continue;
      seen[*it] = true;
      if (warmed.contains(*it)) recency.push_back(*it);
    }
    std::reverse(recency.begin(), recency.end());

    CampCache fresh(cfg(16 * 1024, target));
    // Align the adaptive ratio scaler first: the warmed cache's multiplier
    // reflects the historical max size (evicted pairs included), and the
    // equivalence is stated modulo identical scaler state. A put/erase of a
    // dummy pair at that size seeds it without touching the resident set.
    const Key dummy = 1'000'000;
    ASSERT_TRUE(
        fresh.put(dummy, warmed.introspect().scaling_multiplier, 1));
    fresh.erase(dummy);
    for (const Key k : recency) {
      ASSERT_TRUE(fresh.put(k, size_of(k), cost_of(k)));
    }
    ASSERT_EQ(fresh.item_count(), warmed.item_count());
    ASSERT_EQ(fresh.used_bytes(), warmed.used_bytes());
    EXPECT_EQ(drain(warmed), drain(fresh)) << "target precision " << target;
  }
}

TEST(Retune, InvariantsHoldAcrossRetuneCycle) {
  CampCache cache(cfg(16 * 1024, 5));
  std::uint64_t expected_retunes = 0;
  int last = 5;
  for (const int p : {1, 64, 2, 5, 1, 2}) {
    (void)drive(cache, static_cast<std::uint64_t>(p) * 31 + 1, 5'000);
    EXPECT_TRUE(cache.retune(p));
    ++expected_retunes;
    last = p;
    EXPECT_TRUE(cache.check_invariants()) << "after retune to " << p;
    EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
  EXPECT_EQ(cache.precision(), last);
  EXPECT_EQ(cache.introspect().retunes, expected_retunes);
  EXPECT_EQ(cache.retune_count(), expected_retunes);
  // The rebuild recycles queue objects: destroyed counts every rebuilt
  // queue, created counts every re-append group.
  EXPECT_GT(cache.introspect().queues_destroyed, 0u);
}

TEST(Retune, NameReportsCurrentPrecision) {
  CampCache serial(cfg(1024, 5));
  EXPECT_EQ(serial.name(), "camp(p=5)");
  serial.retune(2);
  EXPECT_EQ(serial.name(), "camp(p=2)");
  serial.retune(util::kPrecisionInfinity);
  EXPECT_EQ(serial.name(), "camp(p=inf)");

  ConcurrentCampCache mt(mt_cfg(1024, 5, 4));
  EXPECT_EQ(mt.name(), "camp-mt(p=5,q=4)");
  mt.retune(64);
  EXPECT_EQ(mt.name(), "camp-mt(p=inf,q=4)");
  mt.retune(3);
  EXPECT_EQ(mt.name(), "camp-mt(p=3,q=4)");
  const auto intro = mt.introspect();
  EXPECT_EQ(intro.precision, 3);
  EXPECT_EQ(intro.retunes, 2u);
}

// ---------------------------------------------------------------------------
// Concurrent engine: serial equivalence with interleaved retunes
// ---------------------------------------------------------------------------

class RetuneEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(RetuneEquivalence, ConcurrentMatchesSerialAcrossRetunes) {
  const auto [physical, seed] = GetParam();
  const std::uint64_t cap = 16 * 1024;
  CampCache serial(cfg(cap, 5));
  ConcurrentCampCache concurrent(mt_cfg(cap, 5, physical));

  std::vector<std::pair<Key, std::uint64_t>> a_ev, b_ev;
  serial.set_eviction_listener(
      [&](Key k, std::uint64_t s) { a_ev.emplace_back(k, s); });
  concurrent.set_eviction_listener(
      [&](Key k, std::uint64_t s) { b_ev.emplace_back(k, s); });

  const int precisions[] = {2, 64, 1, 5};
  int next_precision = 0;
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 20'000; ++i) {
    if (i > 0 && i % 4'000 == 0) {
      const int p = precisions[next_precision++ % 4];
      ASSERT_EQ(serial.retune(p), concurrent.retune(p)) << "op " << i;
    }
    const Key k = rng.below(400);
    const bool a = serial.get(k);
    const bool b = concurrent.get(k);
    ASSERT_EQ(a, b) << "hit/miss diverged at op " << i;
    if (!a) {
      ASSERT_EQ(serial.put(k, size_of(k), cost_of(k)),
                concurrent.put(k, size_of(k), cost_of(k)));
    }
    ASSERT_EQ(serial.used_bytes(), concurrent.used_bytes()) << "op " << i;
  }
  EXPECT_EQ(a_ev, b_ev);
  EXPECT_EQ(serial.precision(), concurrent.precision());
  EXPECT_EQ(serial.retune_count(), concurrent.retune_count());
  EXPECT_TRUE(concurrent.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Partitioning, RetuneEquivalence,
    ::testing::Combine(::testing::Values(1u, 4u),
                       ::testing::Values(7ull, 2024ull)),
    [](const auto& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Retune under load (the TSan target)
// ---------------------------------------------------------------------------

TEST(RetuneStress, RetuneUnderParallelChurn) {
  ConcurrentCampCache cache(mt_cfg(64 * 1024, 5, 4));
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 20'000;
  constexpr int kRetunes = 40;

  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = rng.below(2'000);
        const auto dice = rng.below(100);
        if (dice < 85) {
          if (!cache.get(k)) {
            cache.put(k, 16 + rng.below(900), 1 + rng.below(10'000));
          }
        } else if (dice < 95) {
          cache.put(k, 16 + rng.below(900), 1 + rng.below(10'000));
        } else {
          cache.erase(k);
        }
      }
    });
  }
  std::thread tuner([&cache, &done] {
    const int precisions[] = {1, 2, 5, 64};
    for (int i = 0; i < kRetunes && !done.load(); ++i) {
      EXPECT_TRUE(cache.retune(precisions[(i + 1) % 4]));
      EXPECT_TRUE(cache.check_invariants());
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  done.store(true);
  tuner.join();

  EXPECT_TRUE(cache.check_invariants());
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  const auto& stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.gets);
  EXPECT_GE(cache.retune_count(), 1u);
}

}  // namespace
}  // namespace camp::core
