// The paper's central approximation claim, as an executable property:
// "At the highest precision, CAMP's eviction decisions are essentially
// equivalent to those made by GDS" — with LRU tie-breaking on both sides
// and no rounding (precision = infinity), the two make *identical*
// decisions: same hits, same evictions in the same order, same residents.
#include <gtest/gtest.h>

#include <vector>

#include "core/camp.h"
#include "policy/gds.h"
#include "util/rng.h"

namespace camp {
namespace {

struct Eviction {
  policy::Key key;
  std::uint64_t size;
  bool operator==(const Eviction&) const = default;
};

class CampGdsEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CampGdsEquivalence, IdenticalDecisionsAtInfinitePrecision) {
  const std::uint64_t seed = GetParam();
  core::CampConfig camp_config;
  camp_config.capacity_bytes = 10'000;
  camp_config.precision = util::kPrecisionInfinity;
  core::CampCache camp_cache(camp_config);

  policy::GdsConfig gds_config;
  gds_config.capacity_bytes = 10'000;
  gds_config.precision = util::kPrecisionInfinity;
  gds_config.lru_tie_break = true;
  policy::GdsCache gds_cache(gds_config);

  std::vector<Eviction> camp_evictions, gds_evictions;
  camp_cache.set_eviction_listener([&](policy::Key k, std::uint64_t s) {
    camp_evictions.push_back({k, s});
  });
  gds_cache.set_eviction_listener([&](policy::Key k, std::uint64_t s) {
    gds_evictions.push_back({k, s});
  });

  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 20'000; ++i) {
    const policy::Key k = rng.below(200);
    const std::uint64_t size = 1 + rng.below(800);
    const std::uint64_t cost = 1 + rng.below(20'000);
    const bool camp_hit = camp_cache.get(k);
    const bool gds_hit = gds_cache.get(k);
    ASSERT_EQ(camp_hit, gds_hit) << "divergence at op " << i;
    if (!camp_hit) {
      ASSERT_EQ(camp_cache.put(k, size, cost), gds_cache.put(k, size, cost))
          << "op " << i;
    }
    ASSERT_EQ(camp_evictions.size(), gds_evictions.size()) << "op " << i;
  }
  EXPECT_EQ(camp_evictions, gds_evictions)
      << "eviction sequences must match exactly";
  EXPECT_EQ(camp_cache.item_count(), gds_cache.item_count());
  EXPECT_EQ(camp_cache.used_bytes(), gds_cache.used_bytes());
  EXPECT_EQ(camp_cache.stats().hits, gds_cache.stats().hits);
  EXPECT_EQ(camp_cache.inflation(), gds_cache.inflation());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampGdsEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(CampGdsEquivalence, SkewedWorkloadWithThreeCostTiers) {
  // Paper-flavoured: Zipf-ish reuse, costs from {1, 100, 10K} fixed per key.
  core::CampConfig camp_config;
  camp_config.capacity_bytes = 50'000;
  camp_config.precision = util::kPrecisionInfinity;
  core::CampCache camp_cache(camp_config);

  policy::GdsConfig gds_config;
  gds_config.capacity_bytes = 50'000;
  gds_config.lru_tie_break = true;
  policy::GdsCache gds_cache(gds_config);

  std::vector<Eviction> camp_ev, gds_ev;
  camp_cache.set_eviction_listener(
      [&](policy::Key k, std::uint64_t s) { camp_ev.push_back({k, s}); });
  gds_cache.set_eviction_listener(
      [&](policy::Key k, std::uint64_t s) { gds_ev.push_back({k, s}); });

  const std::uint32_t costs[3] = {1, 100, 10'000};
  util::Xoshiro256 rng(777);
  for (int i = 0; i < 30'000; ++i) {
    // Crude skew: 70% of requests to keys 0..99, rest to 100..999.
    const policy::Key k = rng.below(100) < 70 ? rng.below(100)
                                              : 100 + rng.below(900);
    const std::uint64_t size = 64 + (util::mix64(k) % 1000);
    const std::uint64_t cost = costs[util::mix64(k ^ 0xc0ffee) % 3];
    const bool ch = camp_cache.get(k);
    const bool gh = gds_cache.get(k);
    ASSERT_EQ(ch, gh) << "op " << i;
    if (!ch) {
      camp_cache.put(k, size, cost);
      gds_cache.put(k, size, cost);
    }
  }
  EXPECT_EQ(camp_ev, gds_ev);
  EXPECT_EQ(camp_cache.used_bytes(), gds_cache.used_bytes());
}

TEST(CampGdsApproximation, LowPrecisionStaysClose) {
  // At precision 5 decisions may differ, but the *cost* consequences stay
  // close (the paper's Figure 5a shows near-zero degradation). We assert a
  // generous envelope: missed cost within 25% of GDS's on a skewed stream.
  core::CampConfig camp_config;
  camp_config.capacity_bytes = 30'000;
  camp_config.precision = 5;
  core::CampCache camp_cache(camp_config);

  policy::GdsConfig gds_config;
  gds_config.capacity_bytes = 30'000;
  policy::GdsCache gds_cache(gds_config);

  std::uint64_t camp_missed_cost = 0, gds_missed_cost = 0;
  const std::uint32_t costs[3] = {1, 100, 10'000};
  util::Xoshiro256 rng(4242);
  for (int i = 0; i < 60'000; ++i) {
    const policy::Key k = rng.below(100) < 70 ? rng.below(150)
                                              : 150 + rng.below(1350);
    const std::uint64_t size = 64 + (util::mix64(k) % 1000);
    const std::uint64_t cost = costs[util::mix64(k ^ 0xc0ffee) % 3];
    if (!camp_cache.get(k)) {
      camp_missed_cost += cost;
      camp_cache.put(k, size, cost);
    }
    if (!gds_cache.get(k)) {
      gds_missed_cost += cost;
      gds_cache.put(k, size, cost);
    }
  }
  EXPECT_LT(static_cast<double>(camp_missed_cost),
            1.25 * static_cast<double>(gds_missed_cost));
  EXPECT_GT(static_cast<double>(camp_missed_cost),
            0.75 * static_cast<double>(gds_missed_cost));
}

}  // namespace
}  // namespace camp
