#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace camp::util {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ReservoirSampler, ExactWhenUnderCapacity) {
  ReservoirSampler r(100);
  Xoshiro256 rng(1);
  for (int i = 1; i <= 11; ++i) r.add(i, rng);
  EXPECT_EQ(r.size(), 11u);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 11.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 6.0);
}

TEST(ReservoirSampler, ApproximatesUniformPercentiles) {
  ReservoirSampler r(2000);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100'000; ++i) r.add(rng.uniform(), rng);
  EXPECT_EQ(r.seen(), 100'000u);
  EXPECT_NEAR(r.percentile(0.5), 0.5, 0.05);
  EXPECT_NEAR(r.percentile(0.9), 0.9, 0.05);
}

TEST(Log2Histogram, BucketsByMagnitude) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  ASSERT_GE(h.buckets().size(), 11u);
  EXPECT_EQ(h.buckets()[0], 2u);   // values 0 and 1
  EXPECT_EQ(h.buckets()[1], 2u);   // values 2 and 3
  EXPECT_EQ(h.buckets()[10], 1u);  // 1024
  EXPECT_EQ(Log2Histogram::bucket_floor(10), 1024u);
}

}  // namespace
}  // namespace camp::util
