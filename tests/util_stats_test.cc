#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace camp::util {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ReservoirSampler, ExactWhenUnderCapacity) {
  ReservoirSampler r(100);
  Xoshiro256 rng(1);
  for (int i = 1; i <= 11; ++i) r.add(i, rng);
  EXPECT_EQ(r.size(), 11u);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 11.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 6.0);
}

TEST(ReservoirSampler, ApproximatesUniformPercentiles) {
  ReservoirSampler r(2000);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100'000; ++i) r.add(rng.uniform(), rng);
  EXPECT_EQ(r.seen(), 100'000u);
  EXPECT_NEAR(r.percentile(0.5), 0.5, 0.05);
  EXPECT_NEAR(r.percentile(0.9), 0.9, 0.05);
}

TEST(LatencyHistogram, ExactBelowSubBucketRange) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.add(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.max_value(), 31u);
  // Values below 2^kSubBits are recorded exactly: every percentile is the
  // true order statistic (ceil-rank: p50 of 32 samples is the 16th
  // smallest, value 15).
  EXPECT_EQ(h.percentile(0.5), 15u);
  EXPECT_EQ(h.percentile(1.0), 31u);
  EXPECT_EQ(h.percentile(0.0), 0u);
}

TEST(LatencyHistogram, BoundedRelativeErrorAtAllMagnitudes) {
  LatencyHistogram h;
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 50'000; ++i) {
    // Six decades of "latencies": 1us .. ~1e6us.
    const auto v = 1 + rng.below(1'000'000);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact = static_cast<double>(
        values[static_cast<std::size_t>(q * (values.size() - 1))]);
    const auto approx = static_cast<double>(h.percentile(q));
    // 2^kSubBits = 32 linear sub-buckets per octave: <= ~1/32 relative
    // quantization error (a little slack for the rank-vs-index off-by-one).
    EXPECT_NEAR(approx, exact, exact / 16.0) << "q=" << q;
  }
}

TEST(LatencyHistogram, PercentileNeverExceedsMax) {
  LatencyHistogram h;
  h.add(1'000'003);
  h.add(17);
  EXPECT_EQ(h.percentile(1.0), 1'000'003u);
  EXPECT_EQ(h.percentile(0.999), 1'000'003u);
  EXPECT_EQ(h.percentile(0.25), 17u);
}

TEST(LatencyHistogram, EmptyIsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
  EXPECT_EQ(h.max_value(), 0u);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  Xoshiro256 rng(4);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.below(100'000);
    combined.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max_value(), combined.max_value());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q)) << "q=" << q;
  }
}

TEST(Log2Histogram, BucketsByMagnitude) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  ASSERT_GE(h.buckets().size(), 11u);
  EXPECT_EQ(h.buckets()[0], 2u);   // values 0 and 1
  EXPECT_EQ(h.buckets()[1], 2u);   // values 2 and 3
  EXPECT_EQ(h.buckets()[10], 1u);  // 1024
  EXPECT_EQ(Log2Histogram::bucket_floor(10), 1024u);
}

}  // namespace
}  // namespace camp::util
