// The cooperative cluster over real sockets: KvsServer nodes attached to a
// shared CoopCluster, driven by ClusterClient over pipelined TCP
// connections — including wire peer fetches (pget) and the multi-client
// parallel path the TSan job watches.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/cluster_client.h"
#include "kvs/compress.h"
#include "kvs/server.h"
#include "policy/policy_factory.h"
#include "util/clock.h"

namespace camp::kvs {
namespace {

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) { return policy::make_policy("lru", cap); };
}

ServerConfig small_server() {
  ServerConfig config;
  config.workers = 2;
  config.store.shards = 2;
  config.store.engine.slab.slab_size_bytes = 64u << 10;
  config.store.engine.slab.memory_limit_bytes = 1u << 20;
  return config;
}

ClusterConfig cluster_config(std::uint32_t replication = 1) {
  ClusterConfig config;
  config.guard_capacity_bytes = 256u << 10;
  config.guard_lease_requests = 100'000;
  config.replication = replication;
  return config;
}

/// N cluster-attached servers + a ClusterClient over TCP connections.
struct WireHarness {
  explicit WireHarness(std::size_t nodes, bool parallel_router,
                       bool wire_peer_fetch, std::uint32_t replication = 1)
      : cluster(cluster_config(replication)),
        router(cluster_config().virtual_nodes, parallel_router,
               replication) {
    static const util::SteadyClock clock;
    for (std::size_t i = 0; i < nodes; ++i) {
      servers.push_back(std::make_unique<KvsServer>(small_server(),
                                                    lru_factory(), clock));
      const ClusterNodeId id = cluster.join(servers.back()->store());
      servers.back()->attach_cluster(&cluster, id);
      servers.back()->start();
      if (wire_peer_fetch) {
        cluster.set_node_endpoint(id, "127.0.0.1", servers.back()->port());
      }
      conns.push_back(std::make_unique<KvsClient>("127.0.0.1",
                                                  servers.back()->port()));
      router.add_node(id, *conns.back());
      ids.push_back(id);
    }
  }

  ~WireHarness() {
    conns.clear();  // disconnect before the servers go down
    for (auto& server : servers) server->stop();
  }

  std::vector<std::unique_ptr<KvsServer>> servers;
  CoopCluster cluster;  // after servers: its dtor detaches hooks first
  std::vector<std::unique_ptr<KvsClient>> conns;
  ClusterClient router;
  std::vector<ClusterNodeId> ids;
};

TEST(ClusterServer, RoutedBatchesRoundTripOverTcp) {
  WireHarness h(3, /*parallel_router=*/false, /*wire_peer_fetch=*/false);
  KvsBatch sets;
  for (int i = 0; i < 64; ++i) {
    sets.add_set("key" + std::to_string(i), "value" + std::to_string(i), 0,
                 1 + i % 7);
  }
  const KvsBatchResult stored = h.router.execute(sets);
  EXPECT_EQ(stored.ok_count(), 64u);

  KvsBatch gets;
  for (int i = 0; i < 64; ++i) gets.add_get("key" + std::to_string(i));
  const KvsBatchResult got = h.router.execute(gets);
  ASSERT_EQ(got.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(got[i].ok) << "key" << i;
    EXPECT_EQ(got[i].value, "value" + std::to_string(i));
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.requests, 64u);
  EXPECT_EQ(c.local_hits, 64u);
  // Every key went to its ring home.
  std::size_t resident = 0;
  for (auto& server : h.servers) {
    resident += server->store().aggregated_stats().items;
  }
  EXPECT_EQ(resident, 64u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterServer, PeerFetchGoesOverTheWire) {
  // Single driving thread, so at most one peer fetch is outstanding
  // anywhere in the cluster — safe for synchronous wire fetches.
  WireHarness h(2, /*parallel_router=*/false, /*wire_peer_fetch=*/true);
  KvsBatch sets;
  for (int i = 0; i < 80; ++i) {
    sets.add_set("key" + std::to_string(i), std::string(64, 'w'), 0, 9);
  }
  ASSERT_EQ(h.router.execute(sets).ok_count(), 80u);

  // A new node joins over the wire too: keys remapped onto it must be
  // served by pget peer fetches from their old homes, then promoted.
  static const util::SteadyClock clock;
  h.servers.push_back(std::make_unique<KvsServer>(small_server(),
                                                  lru_factory(), clock));
  const ClusterNodeId added = h.cluster.join(h.servers.back()->store());
  h.servers.back()->attach_cluster(&h.cluster, added);
  h.servers.back()->start();
  h.cluster.set_node_endpoint(added, "127.0.0.1", h.servers.back()->port());
  h.conns.push_back(std::make_unique<KvsClient>("127.0.0.1",
                                                h.servers.back()->port()));
  h.router.add_node(added, *h.conns.back());
  h.ids.push_back(added);

  KvsBatch gets;
  for (int i = 0; i < 80; ++i) gets.add_get("key" + std::to_string(i));
  const KvsBatchResult got = h.router.execute(gets);
  for (int i = 0; i < 80; ++i) {
    EXPECT_TRUE(got[i].ok) << "key" << i;
    EXPECT_EQ(got[i].value, std::string(64, 'w'));
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_GT(c.remote_hits, 0u) << "no key remapped onto the new node?";
  EXPECT_EQ(c.promotions, c.remote_hits);
  EXPECT_EQ(c.transfer_bytes, c.remote_hits * 64u);
  EXPECT_EQ(c.local_hits + c.remote_hits, 80u);
  EXPECT_TRUE(h.cluster.check_invariants());

  // The cluster counters surface through any node's stats command.
  const auto stats = h.conns.front()->stats();
  ASSERT_TRUE(stats.contains("cluster_remote_hits"));
  EXPECT_EQ(stats.at("cluster_remote_hits"),
            std::to_string(c.remote_hits));
  EXPECT_EQ(stats.at("cluster_nodes"), "3");
}

TEST(ClusterServer, PeerOpsWorkAgainstAPlainServer) {
  // pget/pdel/pset are raw local ops — they work (and stay terminal) on a
  // server with no cluster attached.
  static const util::SteadyClock clock;
  KvsServer server(small_server(), lru_factory(), clock);
  server.start();
  KvsClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.set("k", "data", 5, 42));
  const StoredGetResult r = client.peer_get("k");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.stored, "data");
  EXPECT_EQ(r.codec, Codec::kIdentity);
  EXPECT_EQ(r.raw_len, 4u);
  EXPECT_EQ(r.flags, 5u);
  EXPECT_EQ(r.cost, 42u);
  EXPECT_FALSE(client.peer_get("missing").hit);
  EXPECT_TRUE(client.peer_del("k"));
  EXPECT_FALSE(client.peer_del("k"));
  // pset stores raw-locally, cost and flags intact.
  EXPECT_TRUE(client.peer_set("p", "replica-bytes", 3, 17));
  const StoredGetResult p = client.peer_get("p");
  EXPECT_TRUE(p.hit);
  EXPECT_EQ(p.stored, "replica-bytes");
  EXPECT_EQ(p.flags, 3u);
  EXPECT_EQ(p.cost, 17u);
  server.stop();
}

TEST(ClusterServer, CompressedValuesMoveOverTheWire) {
  // End-to-end over real sockets: a compression-ON server stores the
  // compressed form, serves gets transparently, exposes the stored form
  // (with codec + raw_len tokens) via pget, and a pset of those exact
  // bytes lands them verbatim on a compression-OFF server — the peer
  // transfer path never inflates or recompresses.
  static const util::SteadyClock clock;
  ServerConfig compressing = small_server();
  compressing.compression = true;
  KvsServer node_a(compressing, lru_factory(), clock);
  KvsServer node_b(small_server(), lru_factory(), clock);  // compression off
  node_a.start();
  node_b.start();
  {
    KvsClient a("127.0.0.1", node_a.port());
    KvsClient b("127.0.0.1", node_b.port());

    const std::string raw(4096, 'v');
    ASSERT_TRUE(a.set("zip", raw, 7, 42));
    // Client-visible read is transparent.
    EXPECT_EQ(a.get("zip").value, raw);

    // pget carries the stored form plus the codec/raw_len tokens.
    const StoredGetResult stored = a.peer_get("zip");
    ASSERT_TRUE(stored.hit);
    EXPECT_EQ(stored.codec, Codec::kRle);
    EXPECT_EQ(stored.raw_len, raw.size());
    ASSERT_LT(stored.stored.size(), raw.size() / 10);
    std::string decoded;
    ASSERT_TRUE(decompress_value(stored.codec, stored.stored,
                                 stored.raw_len, decoded));
    EXPECT_EQ(decoded, raw);

    // Replaying those exact bytes via pset onto the compression-OFF node
    // keeps them verbatim; its clients still read the raw value.
    ASSERT_TRUE(b.peer_set("zip", stored.stored, stored.flags, stored.cost,
                           /*exptime_s=*/0,
                           static_cast<std::uint32_t>(stored.codec),
                           stored.raw_len));
    EXPECT_EQ(b.get("zip").value, raw);
    const StoredGetResult relay = b.peer_get("zip");
    EXPECT_EQ(relay.codec, Codec::kRle);
    EXPECT_EQ(relay.stored, stored.stored);

    // A compressed pset that does not decode is rejected at the wire.
    EXPECT_FALSE(b.peer_set("bad", "\x80\x80\x80", 0, 1, /*exptime_s=*/0,
                            /*codec=*/2, /*raw_len=*/4096));
    EXPECT_FALSE(b.get("bad").hit);

    // The size ledger surfaces in STATS.
    const auto stats = a.stats();
    EXPECT_EQ(stats.at("compression_enabled"), "1");
    EXPECT_EQ(stats.at("stored_raw_bytes"), std::to_string(raw.size()));
    EXPECT_EQ(stats.at("stored_compressed_bytes"),
              std::to_string(stored.stored.size()));
  }
  node_a.stop();
  node_b.stop();
}

TEST(ClusterServer, ReplicatedWritesFanOutOverTheWire) {
  // R=2 with wire endpoints: the home server's fan-out lands the second
  // copy via pset on the replica's own TCP server. Single driving thread,
  // so at most one synchronous peer op is outstanding anywhere.
  WireHarness h(3, /*parallel_router=*/false, /*wire_peer_fetch=*/true,
                /*replication=*/2);
  constexpr int kKeys = 40;
  KvsBatch sets;
  for (int i = 0; i < kKeys; ++i) {
    sets.add_set("key" + std::to_string(i), "value" + std::to_string(i), 0,
                 1 + i % 7);
  }
  ASSERT_EQ(h.router.execute(sets).ok_count(), static_cast<std::size_t>(kKeys));

  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    const auto replicas = h.cluster.replica_nodes(key);
    ASSERT_EQ(replicas.size(), 2u);
    for (const ClusterNodeId id : replicas) {
      EXPECT_TRUE(h.servers[id]->store().contains(key))
          << key << " missing at wire replica node " << id;
    }
    EXPECT_EQ(h.cluster.directory_replica_count(key), 2u);
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.replica_writes, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(c.replica_write_failures, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());

  // The new counters surface through stats.
  const auto stats = h.conns.front()->stats();
  EXPECT_EQ(stats.at("cluster_replication"), "2");
  EXPECT_EQ(stats.at("cluster_replica_writes"), std::to_string(kKeys));
}

TEST(ClusterServer, RepairCountersSurfaceThroughStats) {
  // Every anti-entropy counter appears in the stats reply and moves when
  // the mechanism runs: kill one of the R=2 holders, let a sloppy write
  // queue a hint and a manual sweep re-copy, then heal and re-read.
  WireHarness h(3, /*parallel_router=*/false, /*wire_peer_fetch=*/false,
                /*replication=*/2);
  const auto stats0 = h.conns.front()->stats();
  for (const char* key :
       {"cluster_read_repairs", "cluster_hints_queued",
        "cluster_hints_replayed", "cluster_hints_dropped",
        "cluster_hints_obsolete", "cluster_sweep_ticks",
        "cluster_sweep_keys_scanned", "cluster_sweep_recopies",
        "cluster_sweep_failures"}) {
    ASSERT_TRUE(stats0.contains(key)) << key << " missing from stats";
    EXPECT_EQ(stats0.at(key), "0") << key;
  }

  KvsBatch sets;
  for (int i = 0; i < 40; ++i) {
    sets.add_set("key" + std::to_string(i), "v", 0, 1);
  }
  ASSERT_EQ(h.router.execute(sets).ok_count(), 40u);
  h.cluster.kill_node(h.ids[1]);
  // Writes planned around the dead node queue hints...
  for (int i = 40; i < 80; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(h.cluster.set(h.ids[0], key, "v", 0, 1));
  }
  // ...the sweep re-copies what the crash under-replicated...
  EXPECT_GT(h.cluster.repair_tick(), 0u);
  // ...and the heal drains the hint backlog.
  h.cluster.heal_node(h.ids[1]);

  const auto stats = h.conns.front()->stats();
  EXPECT_NE(stats.at("cluster_hints_queued"), "0");
  EXPECT_NE(stats.at("cluster_hints_replayed"), "0");
  EXPECT_NE(stats.at("cluster_sweep_recopies"), "0");
  EXPECT_EQ(stats.at("cluster_sweep_ticks"), "1");
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(stats.at("cluster_hints_queued"),
            std::to_string(c.repair.hints_queued));
  EXPECT_EQ(stats.at("cluster_sweep_recopies"),
            std::to_string(c.repair.sweep_recopies));
}

TEST(ClusterServer, RepairDriverTicksTheSweepInBackground) {
  // cluster_repair_interval_ms > 0: the server runs its own RepairDriver;
  // sweep_ticks climbs with no manual repair_tick() calls at all.
  static const util::SteadyClock clock;
  ServerConfig config = small_server();
  config.cluster_repair_interval_ms = 2;
  KvsServer server(config, lru_factory(), clock);
  // Declared AFTER the server, so the cluster's dtor detaches its hooks
  // while the store is still alive (same ordering as WireHarness).
  CoopCluster cluster(cluster_config(/*replication=*/2));
  const ClusterNodeId id = cluster.join(server.store());
  server.attach_cluster(&cluster, id);
  server.start();
  while (cluster.counters().repair.sweep_ticks < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  const std::uint64_t ticks = cluster.counters().repair.sweep_ticks;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(cluster.counters().repair.sweep_ticks, ticks)
      << "a sweep ticked after stop()";
}

TEST(ClusterServer, ParallelClientsSeeNoLostReplies) {
  // The TSan target: 4 nodes, 4 concurrent ClusterClients fanning
  // sub-batches out in parallel, in-process peer fetches, eviction hooks
  // firing under store shard locks. Every op must come back acked.
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kClients = 4;
  constexpr int kBatches = 40;
  constexpr std::size_t kBatchOps = 16;
  WireHarness h(kNodes, /*parallel_router=*/false,
                /*wire_peer_fetch=*/false);

  std::atomic<std::uint64_t> acked{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        // Per-thread transports: KvsClient connections are not shareable.
        std::vector<std::unique_ptr<KvsClient>> conns;
        ClusterClient router(cluster_config().virtual_nodes,
                             /*parallel=*/true);
        for (std::size_t n = 0; n < kNodes; ++n) {
          conns.push_back(std::make_unique<KvsClient>(
              "127.0.0.1", h.servers[n]->port()));
          router.add_node(h.ids[n], *conns.back());
        }
        for (int b = 0; b < kBatches; ++b) {
          KvsBatch batch;
          for (std::size_t i = 0; i < kBatchOps; ++i) {
            const std::string key =
                "key" + std::to_string((b * kBatchOps + i * 7) % 200);
            if (i % 3 == 0) {
              batch.add_set(key, std::string(512, 'a' + char(c)), 0, 3);
            } else {
              batch.add_get(key);
            }
          }
          const KvsBatchResult r = router.execute(batch);
          std::uint64_t local = 0;
          for (const KvsOpResult& op : r.results) local += op.acked ? 1 : 0;
          acked.fetch_add(local);
        }
      } catch (...) {
        failed.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(acked.load(),
            std::uint64_t{kClients} * kBatches * kBatchOps);
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.requests + c.sets,
            std::uint64_t{kClients} * kBatches * kBatchOps);
  // Quiesced now: the shared metadata must agree with the stores.
  EXPECT_TRUE(h.cluster.check_invariants());
}

}  // namespace
}  // namespace camp::kvs
