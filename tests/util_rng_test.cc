#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace camp::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowApproximatelyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(10))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 100);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Rng, BetweenInclusive) {
  Xoshiro256 rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.between(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Mix64, Bijectiveish) {
  // mix64 must not collide on small consecutive inputs (it is a bijection;
  // spot-check a window).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second);
  }
}

TEST(SplitMix, KnownFirstOutputsDiffer) {
  SplitMix64 a(0), b(1);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace camp::util
