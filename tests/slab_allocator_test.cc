#include "slab/slab_allocator.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace camp::slab {
namespace {

SlabConfig small_config() {
  SlabConfig c;
  c.memory_limit_bytes = 4u << 20;  // 4 slabs
  c.slab_size_bytes = 1u << 20;
  c.min_chunk_size = 120;
  c.growth_factor = 1.25;
  return c;
}

TEST(Slab, Validation) {
  SlabConfig bad = small_config();
  bad.min_chunk_size = 0;
  EXPECT_THROW(SlabAllocator{bad}, std::invalid_argument);
  bad = small_config();
  bad.growth_factor = 1.0;
  EXPECT_THROW(SlabAllocator{bad}, std::invalid_argument);
  bad = small_config();
  bad.memory_limit_bytes = 1000;
  EXPECT_THROW(SlabAllocator{bad}, std::invalid_argument);
}

TEST(Slab, ClassTableMatchesTwemcacheShape) {
  SlabAllocator alloc(small_config());
  // Class 0 chunk = 120 (aligned); classes grow by ~1.25; last class = 1 MiB.
  EXPECT_EQ(alloc.chunk_size_of_class(0), 120u);
  EXPECT_GT(alloc.class_count(), 30u) << "120 * 1.25^k reaches 1MiB in ~47 steps";
  const auto last =
      alloc.chunk_size_of_class(static_cast<std::uint32_t>(
          alloc.class_count() - 1));
  EXPECT_EQ(last, 1u << 20);
  // Monotone growth.
  for (std::uint32_t c = 1; c < alloc.class_count(); ++c) {
    EXPECT_GT(alloc.chunk_size_of_class(c), alloc.chunk_size_of_class(c - 1));
  }
}

TEST(Slab, ClassForPicksSmallestFit) {
  SlabAllocator alloc(small_config());
  EXPECT_EQ(alloc.class_for(1).value(), 0u);
  EXPECT_EQ(alloc.class_for(120).value(), 0u);
  EXPECT_EQ(alloc.class_for(121).value(), 1u);
  EXPECT_FALSE(alloc.class_for(0).has_value());
  EXPECT_EQ(alloc.class_for(1u << 20).value(),
            static_cast<std::uint32_t>(alloc.class_count() - 1));
  EXPECT_FALSE(alloc.class_for((1u << 20) + 1).has_value());
}

TEST(Slab, AllocateAndFreeRoundTrip) {
  SlabAllocator alloc(small_config());
  auto chunk = alloc.allocate(100);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->slab_class, 0u);
  EXPECT_EQ(chunk->size, 120u);
  ASSERT_NE(chunk->data, nullptr);
  chunk->data[0] = std::byte{0x42};  // memory is writable
  const auto stats = alloc.class_stats(0);
  EXPECT_EQ(stats.used_chunks, 1u);
  alloc.free(*chunk);
  EXPECT_EQ(alloc.class_stats(0).used_chunks, 0u);
}

TEST(Slab, DoubleFreeDetected) {
  SlabAllocator alloc(small_config());
  const auto chunk = alloc.allocate(100);
  ASSERT_TRUE(chunk.has_value());
  alloc.free(*chunk);
  EXPECT_THROW(alloc.free(*chunk), std::logic_error);
}

TEST(Slab, GrowsUntilBudgetThenFails) {
  SlabConfig c = small_config();
  c.memory_limit_bytes = 1u << 20;  // exactly one slab
  SlabAllocator alloc(c);
  const std::uint32_t per_slab = alloc.chunks_per_slab(0);
  EXPECT_EQ(per_slab, (1u << 20) / 120);
  std::vector<Chunk> held;
  for (std::uint32_t i = 0; i < per_slab; ++i) {
    auto chunk = alloc.allocate(100);
    ASSERT_TRUE(chunk.has_value()) << "chunk " << i;
    held.push_back(*chunk);
  }
  EXPECT_FALSE(alloc.allocate(100).has_value()) << "budget exhausted";
  alloc.free(held.back());
  EXPECT_TRUE(alloc.allocate(100).has_value()) << "freed chunk reusable";
}

TEST(Slab, ChunksDoNotOverlap) {
  SlabAllocator alloc(small_config());
  std::set<std::byte*> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto chunk = alloc.allocate(300);
    ASSERT_TRUE(chunk.has_value());
    EXPECT_TRUE(seen.insert(chunk->data).second) << "duplicate chunk ptr";
  }
}

TEST(Slab, CalcificationThenReassignment) {
  SlabConfig c = small_config();
  c.memory_limit_bytes = 1u << 20;  // one slab only
  SlabAllocator alloc(c);
  // Calcify: assign the only slab to class 0.
  auto chunk = alloc.allocate(100);
  ASSERT_TRUE(chunk.has_value());
  // A larger item's class cannot grow: allocation fails (calcification).
  EXPECT_FALSE(alloc.allocate(10'000).has_value());
  // Remedy: reassign the slab to the needy class.
  const auto needy = alloc.class_for(10'000).value();
  util::Xoshiro256 rng(1);
  std::vector<std::uint32_t> evicted_chunks;
  const bool ok = alloc.reassign_slab(needy, rng, [&](const Chunk& victim) {
    evicted_chunks.push_back(victim.chunk_index);
  });
  ASSERT_TRUE(ok);
  EXPECT_EQ(evicted_chunks.size(), 1u) << "one resident item invalidated";
  EXPECT_EQ(alloc.reassignments(), 1u);
  EXPECT_TRUE(alloc.allocate(10'000).has_value());
  // Old class now owns nothing.
  EXPECT_EQ(alloc.class_stats(0).slabs, 0u);
  EXPECT_EQ(alloc.class_stats(0).free_chunks, 0u);
}

TEST(Slab, ReassignFailsWhenNoOtherClassHasSlabs) {
  SlabConfig c = small_config();
  c.memory_limit_bytes = 1u << 20;
  SlabAllocator alloc(c);
  auto chunk = alloc.allocate(100);
  ASSERT_TRUE(chunk.has_value());
  util::Xoshiro256 rng(1);
  EXPECT_FALSE(alloc.reassign_slab(0, rng, nullptr))
      << "only class 0 owns a slab; nothing to steal";
}

TEST(Slab, FreeAfterReassignIsNoop) {
  SlabConfig c = small_config();
  c.memory_limit_bytes = 1u << 20;
  SlabAllocator alloc(c);
  const auto chunk = alloc.allocate(100);
  ASSERT_TRUE(chunk.has_value());
  util::Xoshiro256 rng(1);
  ASSERT_TRUE(alloc.reassign_slab(alloc.class_for(10'000).value(), rng,
                                  nullptr));
  // The owner might still hold the stale chunk handle; free must not corrupt.
  alloc.free(*chunk);
  EXPECT_TRUE(alloc.allocate(10'000).has_value());
}

}  // namespace
}  // namespace camp::slab
