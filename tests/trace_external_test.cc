#include "trace/external.h"

#include <gtest/gtest.h>

#include <sstream>

namespace camp::trace {
namespace {

constexpr const char* kSample =
    "0,keyA,8,100,3,get,0\n"
    "1,keyB,8,200,3,get,0\n"
    "2,keyA,8,100,4,set,500\n"
    "3,keyC,8,50,4,gets,0\n"
    "4,keyA,8,100,5,delete,0\n"
    "5,keyD,8,0,5,incr,0\n";

TEST(ExternalTrace, ParsesTwitterLayout) {
  std::istringstream in(kSample);
  ExternalTraceStats stats;
  const auto records = parse_twitter_csv(in, {}, &stats);
  ASSERT_EQ(records.size(), 4u);  // 2 gets + 1 set + 1 gets
  EXPECT_EQ(stats.lines, 6u);
  EXPECT_EQ(stats.parsed, 4u);
  EXPECT_EQ(stats.dropped_operation, 2u);  // delete + incr
  EXPECT_EQ(stats.dropped_malformed, 0u);
  // Sizes are key + value bytes.
  EXPECT_EQ(records[0].size, 108u);
  EXPECT_EQ(records[1].size, 208u);
  EXPECT_EQ(records[3].size, 58u);
  // Same string key -> same hashed id.
  EXPECT_EQ(records[0].key, records[2].key);
  EXPECT_NE(records[0].key, records[1].key);
}

TEST(ExternalTrace, WritesCanBeExcluded) {
  std::istringstream in(kSample);
  ExternalTraceOptions options;
  options.include_writes = false;
  ExternalTraceStats stats;
  const auto records = parse_twitter_csv(in, options, &stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(stats.dropped_operation, 3u);  // set joins delete + incr
}

TEST(ExternalTrace, MalformedRowsAreCountedNotFatal) {
  std::istringstream in(
      "garbage\n"
      "0,k,notanumber,100,3,get,0\n"
      "0,k,8,alsobad,3,get,0\n"
      "0,,8,100,3,get,0\n"
      "0,k,8,100,3,get,0\n");
  ExternalTraceStats stats;
  const auto records = parse_twitter_csv(in, {}, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.dropped_malformed, 4u);
}

TEST(ExternalTrace, SkipRowsAndLimit) {
  std::istringstream in(kSample);
  ExternalTraceOptions options;
  options.skip_rows = 1;  // drop the first get
  options.limit = 2;
  const auto records = parse_twitter_csv(in, options);
  ASSERT_EQ(records.size(), 2u);
}

TEST(ExternalTrace, CostModels) {
  const auto parse_with = [](CostAssignment cost) {
    std::istringstream in(kSample);
    ExternalTraceOptions options;
    options.cost = cost;
    return parse_twitter_csv(in, options);
  };
  for (const auto& r : parse_with(CostAssignment::kUnit)) {
    EXPECT_EQ(r.cost, 1u);
  }
  for (const auto& r : parse_with(CostAssignment::kSizeLinear)) {
    EXPECT_EQ(r.cost, std::max<std::uint32_t>(1, r.size / 64));
  }
  const auto tiered = parse_with(CostAssignment::kTieredChoice);
  for (const auto& r : tiered) {
    EXPECT_TRUE(r.cost == 1 || r.cost == 100 || r.cost == 10'000) << r.cost;
  }
  // Paper model: one key, one cost, for the whole trace.
  EXPECT_EQ(tiered[0].cost, tiered[2].cost) << "keyA must keep its cost";
}

TEST(ExternalTrace, TieredCostIsStableAndSeeded) {
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(tiered_cost(key, 42), tiered_cost(key, 42));
  }
  // A different seed must reshuffle at least some keys.
  int differs = 0;
  for (std::uint64_t key = 0; key < 200; ++key) {
    if (tiered_cost(key, 1) != tiered_cost(key, 2)) ++differs;
  }
  EXPECT_GT(differs, 50);
}

TEST(ExternalTrace, TieredCostRoughlyUniform) {
  int tiers[3] = {0, 0, 0};
  for (std::uint64_t key = 0; key < 30'000; ++key) {
    switch (tiered_cost(key, 7)) {
      case 1: ++tiers[0]; break;
      case 100: ++tiers[1]; break;
      default: ++tiers[2]; break;
    }
  }
  for (const int count : tiers) {
    EXPECT_GT(count, 8'000);
    EXPECT_LT(count, 12'000);
  }
}

TEST(ExternalTrace, HashKeyIsFnv1a) {
  // Reference vectors for 64-bit FNV-1a.
  EXPECT_EQ(hash_key(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(hash_key("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(hash_key("keyA"), hash_key("keyB"));
}

TEST(ExternalTrace, MissingFileThrows) {
  EXPECT_THROW(parse_twitter_csv_file("/no/such/file.csv"),
               std::runtime_error);
}

TEST(ExternalTrace, SizeClampsToAtLeastOne) {
  std::istringstream in("0,k,0,0,3,get,0\n");
  const auto records = parse_twitter_csv(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].size, 1u);
}

}  // namespace
}  // namespace camp::trace
