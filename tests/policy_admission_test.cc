#include "policy/admission.h"

#include <gtest/gtest.h>

#include <memory>

#include "policy/lru.h"

namespace camp::policy {
namespace {

AdmissionConfig doorkeeper_only() {
  AdmissionConfig c;
  c.bypass_ratio_numerator = 0;  // disable the cost bypass
  return c;
}

TEST(Admission, Validation) {
  EXPECT_THROW(AdmissionFilter(nullptr, AdmissionConfig{}),
               std::invalid_argument);
  AdmissionConfig bad;
  bad.doorkeeper_bits = 0;
  EXPECT_THROW(AdmissionFilter(std::make_unique<LruCache>(10), bad),
               std::invalid_argument);
}

TEST(Admission, FirstPutDeniedSecondAdmitted) {
  AdmissionFilter cache(std::make_unique<LruCache>(1000), doorkeeper_only());
  EXPECT_FALSE(cache.put(1, 100, 1));
  EXPECT_EQ(cache.denied_puts(), 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.put(1, 100, 1)) << "second attempt is admitted";
  EXPECT_TRUE(cache.contains(1));
}

TEST(Admission, HighCostBypassesDoorkeeper) {
  AdmissionConfig c;  // default bypass: cost >= size
  AdmissionFilter cache(std::make_unique<LruCache>(1000), c);
  EXPECT_TRUE(cache.put(1, 100, 100)) << "cost/size >= 1 admits immediately";
  EXPECT_FALSE(cache.put(2, 100, 1)) << "cheap pair must prove itself";
}

TEST(Admission, OneHitWondersStayOut) {
  AdmissionFilter cache(std::make_unique<LruCache>(10'000), doorkeeper_only());
  for (Key k = 0; k < 50; ++k) {
    cache.put(k, 100, 1);  // each key seen once
  }
  EXPECT_EQ(cache.item_count(), 0u);
  EXPECT_EQ(cache.denied_puts(), 50u);
}

TEST(Admission, WindowRotationForgets) {
  AdmissionConfig c = doorkeeper_only();
  c.window_ops = 4;
  AdmissionFilter cache(std::make_unique<LruCache>(1000), c);
  EXPECT_FALSE(cache.put(1, 10, 1));
  // Push enough other traffic to rotate both windows twice.
  for (Key k = 100; k < 120; ++k) cache.put(k, 10, 1);
  EXPECT_FALSE(cache.put(1, 10, 1))
      << "after both windows cleared, 1 must re-prove itself";
}

TEST(Admission, FrequencyModeNeedsNAttempts) {
  AdmissionConfig c = doorkeeper_only();
  c.min_attempts = 3;  // count-min mode: admit on the 3rd attempt
  AdmissionFilter cache(std::make_unique<LruCache>(1000), c);
  EXPECT_FALSE(cache.put(1, 100, 1));
  EXPECT_FALSE(cache.put(1, 100, 1));
  EXPECT_TRUE(cache.put(1, 100, 1)) << "third attempt must be admitted";
  EXPECT_TRUE(cache.contains(1));
}

TEST(Admission, FrequencyModeAges) {
  AdmissionConfig c = doorkeeper_only();
  c.min_attempts = 3;
  c.window_ops = 8;  // tiny aging period
  AdmissionFilter cache(std::make_unique<LruCache>(10'000), c);
  EXPECT_FALSE(cache.put(1, 10, 1));
  // Flood with other attempts so key 1's count halves away.
  for (Key k = 100; k < 140; ++k) cache.put(k, 10, 1);
  EXPECT_FALSE(cache.put(1, 10, 1))
      << "aged-out attempt should not count as the second";
}

TEST(Admission, MinAttemptsValidation) {
  AdmissionConfig c;
  c.min_attempts = 1;
  EXPECT_THROW(AdmissionFilter(std::make_unique<LruCache>(10), c),
               std::invalid_argument);
}

TEST(Admission, DelegatesEverythingElse) {
  AdmissionFilter cache(std::make_unique<LruCache>(500), doorkeeper_only());
  cache.put(1, 100, 1);
  cache.put(1, 100, 1);  // admitted now
  EXPECT_TRUE(cache.get(1));
  EXPECT_EQ(cache.capacity_bytes(), 500u);
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_EQ(cache.item_count(), 1u);
  EXPECT_EQ(cache.name(), "admit+lru");
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Admission, EvictionListenerPassesThrough) {
  AdmissionFilter cache(std::make_unique<LruCache>(150), doorkeeper_only());
  int evictions = 0;
  cache.set_eviction_listener([&](Key, std::uint64_t) { ++evictions; });
  cache.put(1, 100, 1);
  cache.put(1, 100, 1);  // resident
  cache.put(2, 100, 1);
  cache.put(2, 100, 1);  // forces eviction of 1
  EXPECT_EQ(evictions, 1);
}

}  // namespace
}  // namespace camp::policy
