#include "policy/two_q.h"

#include <gtest/gtest.h>

namespace camp::policy {
namespace {

TwoQConfig cfg(std::uint64_t cap) {
  TwoQConfig c;
  c.capacity_bytes = cap;
  return c;
}

TEST(TwoQ, Validation) {
  const TwoQConfig zero_capacity{};
  EXPECT_THROW(TwoQCache{zero_capacity}, std::invalid_argument);
  TwoQConfig bad = cfg(100);
  bad.kin_fraction = 0.0;
  EXPECT_THROW(TwoQCache{bad}, std::invalid_argument);
}

TEST(TwoQ, FirstInsertGoesToA1in) {
  TwoQCache cache(cfg(1000));
  cache.put(1, 100, 0);
  EXPECT_EQ(cache.a1in_bytes(), 100u);
  EXPECT_EQ(cache.am_bytes(), 0u);
}

TEST(TwoQ, GhostHitPromotesToAm) {
  TwoQCache cache(cfg(400));  // kin = 100 bytes
  cache.put(1, 100, 0);
  // Push 1 out of A1in by exceeding kin.
  cache.put(2, 100, 0);
  cache.put(3, 100, 0);
  cache.put(4, 100, 0);
  cache.put(5, 100, 0);  // forces demotions; 1 should be ghosted by now
  EXPECT_FALSE(cache.contains(1));
  EXPECT_GT(cache.ghost_count(), 0u);
  // Re-inserting 1 (after its re-reference missed) lands in Am.
  cache.put(1, 100, 0);
  EXPECT_EQ(cache.am_bytes(), 100u);
  EXPECT_TRUE(cache.contains(1));
}

TEST(TwoQ, OneHitWondersWashOut) {
  // A long scan of never-repeated keys must leave Am untouched.
  TwoQCache cache(cfg(1000));
  // Build a hot pair in Am via the ghost path.
  cache.put(1, 100, 0);
  for (Key k = 10; k < 20; ++k) cache.put(k, 100, 0);  // flush 1 to ghosts
  cache.put(1, 100, 0);  // promoted to Am
  ASSERT_GT(cache.am_bytes(), 0u);
  for (Key scan = 1000; scan < 1100; ++scan) cache.put(scan, 90, 0);
  EXPECT_TRUE(cache.contains(1)) << "scan traffic stays in A1in";
}

TEST(TwoQ, HitInAmRefreshesRecency) {
  TwoQCache cache(cfg(600));  // kin = 150, kout = 300 (3 ghost entries)
  cache.put(1, 100, 0);
  // Exactly one demotion: capacity holds 6 pairs; the 7th put pushes the
  // A1in head (pair 1) into the ghost list.
  for (Key k = 10; k < 16; ++k) cache.put(k, 100, 0);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_GE(cache.ghost_count(), 1u);
  cache.put(1, 100, 0);  // ghost hit -> lands in Am
  EXPECT_EQ(cache.am_bytes(), 100u);
  ASSERT_TRUE(cache.get(1));  // Am hit refreshes recency
  EXPECT_EQ(cache.am_bytes(), 100u);
  EXPECT_TRUE(cache.contains(1));
}

TEST(TwoQ, ByteAccounting) {
  TwoQCache cache(cfg(500));
  cache.put(1, 200, 0);
  cache.put(2, 200, 0);
  EXPECT_EQ(cache.used_bytes(), cache.a1in_bytes() + cache.am_bytes());
  EXPECT_LE(cache.used_bytes(), 500u);
  cache.erase(1);
  EXPECT_EQ(cache.used_bytes(), 200u);
}

TEST(TwoQ, RejectsOversized) {
  TwoQCache cache(cfg(100));
  EXPECT_FALSE(cache.put(1, 200, 0));
  EXPECT_EQ(cache.stats().rejected_puts, 1u);
}

}  // namespace
}  // namespace camp::policy
