// End-to-end integration tests: real TCP server + client over localhost.
#include "kvs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include <atomic>

#include "core/auto_tuner.h"
#include "core/camp.h"
#include "core/concurrent_camp.h"
#include "kvs/client.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

ServerConfig server_config() {
  ServerConfig c;
  c.port = 0;  // ephemeral
  c.store.shards = 2;
  c.store.engine.slab.memory_limit_bytes = 4u << 20;
  c.store.engine.slab.slab_size_bytes = 1u << 20;
  return c;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<KvsServer>(server_config(), lru_factory(),
                                          clock_);
    server_->start();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override { server_->stop(); }

  util::SteadyClock clock_;
  std::unique_ptr<KvsServer> server_;
};

TEST_F(ServerTest, SetGetDeleteOverTcp) {
  KvsClient client("127.0.0.1", server_->port());
  EXPECT_TRUE(client.set("greeting", "hello world", 9, 100));
  const GetResult r = client.get("greeting");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, "hello world");
  EXPECT_EQ(r.flags, 9u);
  EXPECT_TRUE(client.del("greeting"));
  EXPECT_FALSE(client.get("greeting").hit);
  EXPECT_FALSE(client.del("greeting"));
}

TEST_F(ServerTest, IqGetIqSetFlow) {
  KvsClient client("127.0.0.1", server_->port());
  EXPECT_FALSE(client.iqget("computed").hit);  // miss recorded server-side
  EXPECT_TRUE(client.iqset("computed", "result-bytes", 0));
  const GetResult r = client.get("computed");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, "result-bytes");
}

TEST_F(ServerTest, StatsAndVersion) {
  KvsClient client("127.0.0.1", server_->port());
  client.set("a", "1", 0, 0);
  (void)client.get("a");
  const auto stats = client.stats();
  EXPECT_EQ(stats.at("policy"), "lru");
  EXPECT_EQ(stats.at("items"), "1");
  EXPECT_EQ(stats.at("hits"), "1");
  EXPECT_NE(client.version().find("VERSION"), std::string::npos);
}

TEST_F(ServerTest, FlushAll) {
  KvsClient client("127.0.0.1", server_->port());
  client.set("a", "1", 0, 0);
  client.set("b", "2", 0, 0);
  client.flush_all();
  EXPECT_FALSE(client.get("a").hit);
  EXPECT_EQ(client.stats().at("items"), "0");
}

TEST_F(ServerTest, LargeBinaryValue) {
  KvsClient client("127.0.0.1", server_->port());
  std::string value(200'000, '\0');
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<char>(i * 31);
  }
  EXPECT_TRUE(client.set("big", value, 0, 0));
  EXPECT_EQ(client.get("big").value, value);
}

TEST_F(ServerTest, ManyConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      try {
        KvsClient client("127.0.0.1", server_->port());
        for (int i = 0; i < kOps; ++i) {
          const std::string key = "c" + std::to_string(c) + "-" +
                                  std::to_string(i % 50);
          if (i % 2 == 0) {
            if (!client.set(key, "v" + key, 0, 0)) failures.fetch_add(1);
          } else {
            const GetResult r = client.get(key);
            if (r.hit && r.value != "v" + key) failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, MultiGet) {
  KvsClient client("127.0.0.1", server_->port());
  client.set("a", "1", 1, 0);
  client.set("c", "3", 3, 0);
  const auto results = client.multi_get({"a", "b", "c"});
  ASSERT_EQ(results.size(), 2u) << "only hits are returned";
  EXPECT_EQ(results.at("a").value, "1");
  EXPECT_EQ(results.at("a").flags, 1u);
  EXPECT_EQ(results.at("c").value, "3");
  EXPECT_FALSE(results.contains("b"));
}

TEST_F(ServerTest, ExpiryOverTcp) {
  KvsClient client("127.0.0.1", server_->port());
  // exptime 0: never expires (SteadyClock backs this server, so we only
  // check the non-expiring path end-to-end; ManualClock expiry is covered
  // in the engine tests).
  EXPECT_TRUE(client.set("stay", "v", 0, 0, /*exptime_s=*/0));
  EXPECT_TRUE(client.get("stay").hit);
  // A very long TTL also survives the test's lifetime.
  EXPECT_TRUE(client.set("long", "v", 0, 0, /*exptime_s=*/3600));
  EXPECT_TRUE(client.get("long").hit);
}

TEST_F(ServerTest, ProtocolErrorsDoNotKillConnection) {
  KvsClient client("127.0.0.1", server_->port());
  // Raw bad command via a second throwaway client would need raw socket
  // access; instead verify good traffic still works after a bad key.
  EXPECT_TRUE(client.set("ok", "fine", 0, 0));
  EXPECT_TRUE(client.get("ok").hit);
}

TEST(ServerLifecycle, StartStopIsClean) {
  util::SteadyClock clock;
  for (int round = 0; round < 3; ++round) {
    KvsServer server(server_config(), lru_factory(), clock);
    server.start();
    {
      KvsClient client("127.0.0.1", server.port());
      EXPECT_TRUE(client.set("k", "v", 0, 0));
    }
    server.stop();
    EXPECT_FALSE(server.running());
  }
}

TEST(ServerLifecycle, StopUnblocksWorkerStalledOnReply) {
  // A client that requests far more reply bytes than the socket buffers
  // hold and never reads parks the worker inside a blocking send(); stop()
  // must shutdown() the connection to unblock it, or the join hangs.
  util::SteadyClock clock;
  KvsServer server(server_config(), lru_factory(), clock);
  server.start();
  {
    KvsClient seeder("127.0.0.1", server.port());
    ASSERT_TRUE(seeder.set("big", std::string(200'000, 'b'), 0, 0));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string flood;
  for (int i = 0; i < 100; ++i) flood += "get big\r\n";  // ~20 MB of replies
  ASSERT_EQ(::send(fd, flood.data(), flood.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(flood.size()));
  // Give the worker a moment to wedge in send(), then stop. The test
  // passing at all IS the assertion: a hung join would time the suite out.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  EXPECT_FALSE(server.running());
  ::close(fd);
}

TEST(ServerLifecycle, CampPolicyEndToEnd) {
  util::SteadyClock clock;
  ServerConfig config = server_config();
  KvsServer server(
      config,
      [](std::uint64_t cap) {
        core::CampConfig c;
        c.capacity_bytes = cap;
        c.precision = 5;
        return core::make_camp(c);
      },
      clock);
  server.start();
  KvsClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.set("expensive", "data", 0, 10'000));
  EXPECT_TRUE(client.get("expensive").hit);
  EXPECT_EQ(client.stats().at("policy"), "camp(p=5)");
  server.stop();
}

TEST(ServerLifecycle, StatsExposeAutotuneCounters) {
  // Store-level precision auto-tuning surfaces its whole decision ledger
  // through STATS: the live precision, the duel counters and one psel
  // gauge per candidate.
  util::SteadyClock clock;
  ServerConfig config = server_config();
  core::AutoTunerConfig tuning;
  tuning.candidates = {2, 5};
  tuning.initial_precision = 5;
  tuning.sample_shift = 0;  // sample everything: deterministic tiny test
  tuning.window_samples = 4;
  tuning.psel_threshold = 1;
  config.store.autotune = tuning;
  KvsServer server(
      config,
      [](std::uint64_t cap) {
        core::CampConfig c;
        c.capacity_bytes = cap;
        c.precision = 5;
        return core::make_camp(c);
      },
      clock);
  server.start();
  KvsClient client("127.0.0.1", server.port());
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(client.set("key" + std::to_string(i), "value", 0, 7));
  }
  const auto stats = client.stats();
  EXPECT_EQ(stats.at("policy"), "camp(p=5)");  // shard 0 name (pre-catchup ok)
  EXPECT_NE(stats.at("camp_precision_current"), "0");
  EXPECT_EQ(stats.at("autotune_sampled"), "16");
  EXPECT_GE(std::stoi(stats.at("autotune_windows")), 4);
  EXPECT_TRUE(stats.contains("autotune_retunes"));
  EXPECT_TRUE(stats.contains("autotune_psel_2"));
  EXPECT_TRUE(stats.contains("autotune_psel_5"));
  server.stop();
}

TEST(ServerLifecycle, ConcurrentCampPolicyEndToEnd) {
  // The Section 4.1 thread-safe engine behind the real TCP server: many
  // client connections (one server thread each) hammer one shard, so the
  // engine's internal locking is exercised end-to-end.
  util::SteadyClock clock;
  ServerConfig config = server_config();
  config.store.shards = 1;  // all connections share one engine instance
  KvsServer server(
      config,
      [](std::uint64_t cap) {
        core::ConcurrentCampConfig c;
        c.capacity_bytes = cap;
        c.precision = 5;
        return core::make_concurrent_camp(c);
      },
      clock);
  server.start();
  {
    KvsClient seed("127.0.0.1", server.port());
    EXPECT_TRUE(seed.set("expensive", "data", 0, 10'000));
    EXPECT_EQ(seed.stats().at("policy"), "camp-mt(p=5)");
  }
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      KvsClient client("127.0.0.1", server.port());
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string(t) + "_" +
                                std::to_string(i % 20);
        if (!client.set(key, "v", 0, 1 + i)) ++failures;
        (void)client.get(key);
        (void)client.get("expensive");
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  KvsClient check("127.0.0.1", server.port());
  EXPECT_TRUE(check.get("expensive").hit)
      << "the costly pair must survive the churn under CAMP";
  server.stop();
}

}  // namespace
}  // namespace camp::kvs
