#include "policy/greedy_dual.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace camp::policy {
namespace {

TEST(GreedyDual, EvictsCheapestFirst) {
  GreedyDualCache cache(300);
  cache.put(1, 100, 5);
  cache.put(2, 100, 500);
  cache.put(3, 100, 50);
  EXPECT_EQ(cache.peek_victim(), std::optional<Key>(1));
  cache.put(4, 100, 50);
  EXPECT_FALSE(cache.contains(1));
}

TEST(GreedyDual, IgnoresSizeInPriority) {
  // Both pairs cost 10; the bigger one is NOT preferentially evicted
  // (unlike GDS) — recency/insert order decides via L.
  GreedyDualCache cache(1000);
  cache.put(1, 700, 10);
  cache.put(2, 100, 10);
  cache.put(3, 300, 10);  // over budget; equal H -> ties; some pair goes
  EXPECT_EQ(cache.item_count(), 2u);
}

TEST(GreedyDual, HitRefreshes) {
  GreedyDualCache cache(200);
  cache.put(1, 100, 10);
  cache.put(2, 100, 10);
  ASSERT_TRUE(cache.get(1));
  cache.put(3, 100, 10);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(GreedyDual, ZeroCostClampedToOne) {
  GreedyDualCache cache(100);
  cache.put(1, 50, 0);
  EXPECT_TRUE(cache.contains(1));
  cache.put(2, 60, 5);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
}

TEST(GreedyDual, InflationMonotone) {
  GreedyDualCache cache(400);
  util::SplitMix64 rng(11);
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const Key k = rng.next() % 30;
    if (!cache.get(k)) cache.put(k, 50, 1 + rng.next() % 100);
    ASSERT_GE(cache.inflation(), last);
    last = cache.inflation();
  }
}

TEST(GreedyDual, MatchesGdsOnUniformSizes) {
  // With uniform sizes Greedy Dual and GDS agree up to ratio scaling; check
  // that the same pairs survive a deterministic sequence.
  GreedyDualCache gd(500);
  for (Key k = 0; k < 5; ++k) gd.put(k, 100, 1 + 10 * k);
  // cap 500, all fit. Insert one more expensive pair: cheapest (k=0) goes.
  gd.put(99, 100, 1000);
  EXPECT_FALSE(gd.contains(0));
  EXPECT_TRUE(gd.contains(4));
}

}  // namespace
}  // namespace camp::policy
