#include "policy/belady.h"

#include <gtest/gtest.h>

#include <vector>

#include "policy/lru.h"
#include "util/rng.h"

namespace camp::policy {
namespace {

// Helper: run the standard simulator loop against the future sequence.
std::uint64_t run_misses(ICache& cache, const std::vector<Key>& seq,
                         std::uint64_t size) {
  std::uint64_t misses = 0;
  for (const Key k : seq) {
    if (!cache.get(k)) {
      ++misses;
      cache.put(k, size, 1);
    }
  }
  return misses;
}

TEST(Belady, Validation) {
  EXPECT_THROW(BeladyCache(0, {}), std::invalid_argument);
}

TEST(Belady, ClassicTextbookSequence) {
  // Capacity for 3 unit pages; the canonical example where MIN beats LRU.
  const std::vector<Key> seq = {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
  BeladyCache belady(3, seq);
  LruCache lru(3);
  const auto belady_misses = run_misses(belady, seq, 1);
  const auto lru_misses = run_misses(lru, seq, 1);
  EXPECT_LE(belady_misses, lru_misses);
  // Known optimal for this sequence with 3 frames is 7 faults.
  EXPECT_EQ(belady_misses, 7u);
  EXPECT_EQ(lru_misses, 10u);
}

TEST(Belady, NeverReusedPairsNotCached) {
  const std::vector<Key> seq = {1, 2, 3};
  BeladyCache cache(10, seq);
  EXPECT_FALSE(cache.get(1));
  EXPECT_FALSE(cache.put(1, 1, 1)) << "1 never recurs: clairvoyantly skipped";
  EXPECT_EQ(cache.item_count(), 0u);
}

TEST(Belady, EvictsFarthestNextUse) {
  //            0  1  2  3  4  5
  const std::vector<Key> seq = {1, 2, 3, 1, 2, 3};
  BeladyCache cache(2, seq);  // room for two unit pairs
  EXPECT_FALSE(cache.get(1));
  cache.put(1, 1, 1);  // next use 3
  EXPECT_FALSE(cache.get(2));
  cache.put(2, 1, 1);  // next use 4
  EXPECT_FALSE(cache.get(3));
  cache.put(3, 1, 1);  // next use 5; farthest resident is... 2 (use 4)?
  // MIN evicts the one whose next use is farthest: that is 2 (pos 4) vs 1
  // (pos 3): evict 2.
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.get(1));
  EXPECT_FALSE(cache.get(2));
}

TEST(Belady, LowerBoundsLruOnRandomStreams) {
  util::SplitMix64 seeds(0x5eed);
  for (int round = 0; round < 5; ++round) {
    std::vector<Key> seq;
    util::SplitMix64 rng(seeds.next());
    for (int i = 0; i < 5000; ++i) seq.push_back(rng.next() % 80);
    BeladyCache belady(20, seq);
    LruCache lru(20);
    EXPECT_LE(run_misses(belady, seq, 1), run_misses(lru, seq, 1))
        << "round " << round;
  }
}

TEST(Belady, CursorAdvances) {
  const std::vector<Key> seq = {7, 7, 7};
  BeladyCache cache(5, seq);
  EXPECT_EQ(cache.cursor(), 0u);
  cache.get(7);
  EXPECT_EQ(cache.cursor(), 1u);
  cache.put(7, 1, 1);
  cache.get(7);
  EXPECT_EQ(cache.cursor(), 2u);
}

}  // namespace
}  // namespace camp::policy
