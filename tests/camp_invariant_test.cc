// Property tests: structural invariants of the CAMP data structures under
// randomized workloads, across precisions, arities and workload shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "core/camp.h"
#include "util/rng.h"

namespace camp::core {
namespace {

struct WorkloadShape {
  std::uint64_t key_space;
  std::uint64_t max_size;
  std::uint64_t max_cost;
  const char* label;
};

class CampInvariants
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CampInvariants, HoldUnderRandomWorkload) {
  const auto [precision, seed] = GetParam();
  CampConfig config;
  config.capacity_bytes = 5000;
  config.precision = precision;
  CampCache cache(config);
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 3000; ++i) {
    const policy::Key k = rng.below(100);
    const auto dice = rng.below(100);
    if (dice < 70) {
      if (!cache.get(k)) {
        cache.put(k, 1 + rng.below(500), rng.below(20'000));
      }
    } else if (dice < 85) {
      cache.put(k, 1 + rng.below(500), rng.below(20'000));
    } else {
      cache.erase(k);
    }
    if (i % 64 == 0) {
      ASSERT_TRUE(cache.check_invariants())
          << "precision=" << precision << " seed=" << seed << " op=" << i;
    }
  }
  ASSERT_TRUE(cache.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionSeeds, CampInvariants,
    ::testing::Combine(::testing::Values(1, 2, 5, 10, util::kPrecisionInfinity),
                       ::testing::Values<std::uint64_t>(1, 7, 42)));

template <int Arity>
void run_arity_invariants(std::uint64_t seed) {
  CampConfig config;
  config.capacity_bytes = 4000;
  config.precision = 5;
  BasicCampCache<Arity> cache(config);
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 2000; ++i) {
    const policy::Key k = rng.below(80);
    if (!cache.get(k)) cache.put(k, 1 + rng.below(300), 1 + rng.below(9999));
    if (i % 128 == 0) {
      ASSERT_TRUE(cache.check_invariants()) << "op " << i;
    }
  }
  ASSERT_TRUE(cache.check_invariants());
}

TEST(CampArity, TwoAry) { run_arity_invariants<2>(3); }
TEST(CampArity, FourAry) { run_arity_invariants<4>(3); }
TEST(CampArity, EightAry) { run_arity_invariants<8>(3); }
TEST(CampArity, SixteenAry) { run_arity_invariants<16>(3); }

TEST(CampArity, AllAritiesMakeIdenticalDecisions) {
  // Heap arity is a performance knob; evictions must not depend on it.
  CampConfig config;
  config.capacity_bytes = 3000;
  config.precision = 4;
  BasicCampCache<2> c2(config);
  BasicCampCache<8> c8(config);
  BasicCampCache<16> c16(config);
  util::Xoshiro256 rng(17);
  for (int i = 0; i < 5000; ++i) {
    const policy::Key k = rng.below(60);
    const std::uint64_t size = 1 + rng.below(400);
    const std::uint64_t cost = 1 + rng.below(10'000);
    const bool h2 = c2.get(k);
    const bool h8 = c8.get(k);
    const bool h16 = c16.get(k);
    ASSERT_EQ(h2, h8) << "op " << i;
    ASSERT_EQ(h8, h16) << "op " << i;
    if (!h2) {
      c2.put(k, size, cost);
      c8.put(k, size, cost);
      c16.put(k, size, cost);
    }
  }
  EXPECT_EQ(c2.item_count(), c8.item_count());
  EXPECT_EQ(c2.used_bytes(), c8.used_bytes());
  EXPECT_EQ(c8.stats().evictions, c16.stats().evictions);
}

TEST(CampBound, QueueCountWithinPropositionTwo) {
  // Number of non-empty queues <= (ceil(log2(U+1)) - p + 1) * 2^p where U
  // is the largest scaled (pre-rounding) ratio observed.
  for (int precision : {1, 2, 3, 5, 8}) {
    CampConfig config;
    config.capacity_bytes = 1 << 20;
    config.precision = precision;
    CampCache cache(config);
    util::Xoshiro256 rng(23 + static_cast<std::uint64_t>(precision));
    for (int i = 0; i < 5000; ++i) {
      const policy::Key k = rng.below(2000);
      if (!cache.get(k)) {
        cache.put(k, 1 + rng.below(4096), 1 + rng.below(100'000));
      }
    }
    const auto intro = cache.introspect();
    ASSERT_GT(intro.max_scaled_ratio, 0u);
    EXPECT_LE(intro.nonempty_queues,
              util::distinct_rounded_values_bound(intro.max_scaled_ratio,
                                                  precision))
        << "precision=" << precision;
  }
}

TEST(CampBound, LowerPrecisionNeverMoreQueues) {
  // Rounding coarser can only merge queues (on the same request stream).
  std::vector<std::size_t> queue_counts;
  for (int precision : {1, 3, 6, 10}) {
    CampConfig config;
    config.capacity_bytes = 1 << 18;
    config.precision = precision;
    CampCache cache(config);
    util::Xoshiro256 rng(31);
    for (int i = 0; i < 4000; ++i) {
      const policy::Key k = rng.below(500);
      if (!cache.get(k)) {
        cache.put(k, 1 + rng.below(2048), 1 + rng.below(50'000));
      }
    }
    queue_counts.push_back(cache.queue_count());
  }
  for (std::size_t i = 1; i < queue_counts.size(); ++i) {
    EXPECT_LE(queue_counts[i - 1], queue_counts[i] * 2)
        << "coarser precision should not explode queue count";
  }
}

TEST(Camp, RecomputeRatioOnHitKnob) {
  // With the knob off, a pair's queue is frozen at insert time even after
  // the scaling multiplier grows.
  CampConfig frozen;
  frozen.capacity_bytes = 1 << 20;
  frozen.precision = util::kPrecisionInfinity;
  frozen.recompute_ratio_on_hit = false;
  CampCache cache(frozen);
  cache.put(1, 100, 10);  // multiplier 100 -> ratio 10
  const auto r_before = cache.ratio_of(1);
  cache.put(2, 10'000, 10);  // multiplier grows to 10'000
  ASSERT_TRUE(cache.get(1));
  EXPECT_EQ(cache.ratio_of(1), r_before);

  CampConfig live = frozen;
  live.recompute_ratio_on_hit = true;
  CampCache cache2(live);
  cache2.put(1, 100, 10);
  const auto r2_before = cache2.ratio_of(1);
  cache2.put(2, 10'000, 10);
  ASSERT_TRUE(cache2.get(1));
  EXPECT_GT(cache2.ratio_of(1), r2_before)
      << "recomputed ratio uses the grown multiplier";
}

}  // namespace
}  // namespace camp::core
