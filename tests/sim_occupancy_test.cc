#include "sim/occupancy.h"

#include <gtest/gtest.h>

namespace camp::sim {
namespace {

TEST(Occupancy, TracksOnlyTargetTrace) {
  OccupancyTracker t(1, 1000, 10);
  t.on_insert(1, 200, /*trace_id=*/1);
  t.on_insert(2, 300, /*trace_id=*/2);
  EXPECT_EQ(t.tracked_bytes(), 200u);
  EXPECT_DOUBLE_EQ(t.current_fraction(), 0.2);
}

TEST(Occupancy, OverwriteReplacesBytes) {
  OccupancyTracker t(0, 1000, 10);
  t.on_insert(1, 200, 0);
  t.on_insert(1, 500, 0);
  EXPECT_EQ(t.tracked_bytes(), 500u);
}

TEST(Occupancy, EvictIgnoresForeignKeys) {
  OccupancyTracker t(0, 1000, 10);
  t.on_insert(1, 200, 0);
  t.on_evict(999);
  EXPECT_EQ(t.tracked_bytes(), 200u);
  t.on_evict(1);
  EXPECT_EQ(t.tracked_bytes(), 0u);
}

TEST(Occupancy, SamplesAtInterval) {
  OccupancyTracker t(0, 100, 5);
  t.on_insert(1, 50, 0);
  for (std::uint64_t i = 1; i <= 20; ++i) t.on_request_done(i);
  ASSERT_EQ(t.samples().size(), 4u);  // at 5, 10, 15, 20
  EXPECT_EQ(t.samples()[0].request_index, 5u);
  EXPECT_DOUBLE_EQ(t.samples()[0].fraction, 0.5);
}

TEST(Occupancy, DrainedAtRecordsFirstEmptying) {
  OccupancyTracker t(0, 100, 1);
  t.on_insert(1, 50, 0);
  t.on_request_done(1);
  t.on_request_done(2);
  t.on_evict(1);
  EXPECT_EQ(t.drained_at(), 2u);
  // Re-populating and draining again must not overwrite the first record.
  t.on_insert(2, 10, 0);
  t.on_request_done(3);
  t.on_evict(2);
  EXPECT_EQ(t.drained_at(), 2u);
}

TEST(Occupancy, ZeroIntervalClamped) {
  OccupancyTracker t(0, 100, 0);
  t.on_request_done(1);
  EXPECT_EQ(t.samples().size(), 1u);
}

}  // namespace
}  // namespace camp::sim
