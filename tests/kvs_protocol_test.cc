#include "kvs/protocol.h"

#include <gtest/gtest.h>

namespace camp::kvs {
namespace {

TEST(Protocol, ParseGet) {
  const auto cmd = parse_command("get mykey");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->type, CommandType::kGet);
  EXPECT_EQ(cmd->key, "mykey");
}

TEST(Protocol, ParseIqGet) {
  const auto cmd = parse_command("iqget profile:42");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->type, CommandType::kIqGet);
  EXPECT_EQ(cmd->key, "profile:42");
}

TEST(Protocol, ParseSetBasic) {
  const auto cmd = parse_command("set k 7 0 5");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->type, CommandType::kSet);
  EXPECT_EQ(cmd->key, "k");
  EXPECT_EQ(cmd->flags, 7u);
  EXPECT_EQ(cmd->value_bytes, 5u);
  EXPECT_EQ(cmd->cost, 0u);
  EXPECT_FALSE(cmd->noreply);
}

TEST(Protocol, ParseSetWithCostAndNoreply) {
  const auto cmd = parse_command("set k 0 0 10 12345 noreply");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->cost, 12345u);
  EXPECT_TRUE(cmd->noreply);
}

TEST(Protocol, ParseIqSetRejectsCostToken) {
  // iqset's cost comes from the miss->set delta, never from the client.
  EXPECT_FALSE(parse_command("iqset k 0 0 10 999").has_value());
  const auto ok = parse_command("iqset k 0 0 10 noreply");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->type, CommandType::kIqSet);
  EXPECT_TRUE(ok->noreply);
}

TEST(Protocol, ParseDelete) {
  auto cmd = parse_command("delete gone");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->type, CommandType::kDelete);
  cmd = parse_command("delete gone noreply");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_TRUE(cmd->noreply);
}

TEST(Protocol, ParseAdmin) {
  EXPECT_EQ(parse_command("stats")->type, CommandType::kStats);
  EXPECT_EQ(parse_command("flush_all")->type, CommandType::kFlushAll);
  EXPECT_EQ(parse_command("version")->type, CommandType::kVersion);
  EXPECT_EQ(parse_command("quit")->type, CommandType::kQuit);
}

TEST(Protocol, ParseMultiGet) {
  const auto cmd = parse_command("get a b c");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->type, CommandType::kGet);
  EXPECT_EQ(cmd->key, "a");
  ASSERT_EQ(cmd->extra_keys.size(), 2u);
  EXPECT_EQ(cmd->extra_keys[0], "b");
  EXPECT_EQ(cmd->extra_keys[1], "c");
  // iqget stays single-key (a lease per key).
  EXPECT_FALSE(parse_command("iqget a b").has_value());
}

TEST(Protocol, ParseExptime) {
  const auto cmd = parse_command("set k 0 300 5");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->exptime, 300u);
}

TEST(Protocol, RejectsMalformed) {
  EXPECT_FALSE(parse_command("").has_value());
  EXPECT_FALSE(parse_command("get").has_value());
  EXPECT_FALSE(parse_command("get ok bad\rkey").has_value());
  EXPECT_FALSE(parse_command("set k 0 0").has_value());
  EXPECT_FALSE(parse_command("set k x 0 5").has_value());
  EXPECT_FALSE(parse_command("set k 0 0 5 bogus").has_value());
  EXPECT_FALSE(parse_command("frobnicate k").has_value());
  EXPECT_FALSE(parse_command("stats extra").has_value());
}

TEST(Protocol, RejectsBadKeys) {
  EXPECT_FALSE(parse_command("get " + std::string(251, 'x')).has_value());
  const auto ok = parse_command("get " + std::string(250, 'x'));
  EXPECT_TRUE(ok.has_value());
}

TEST(Protocol, ToleratesExtraSpaces) {
  const auto cmd = parse_command("get   spaced");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->key, "spaced");
}

TEST(Protocol, MultiGetWithDuplicateKeys) {
  // Duplicates are preserved, not deduplicated: the batch layer maps VALUE
  // lines back onto op indices in request order, so every occurrence must
  // survive parsing.
  const auto cmd = parse_command("get a b a a");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->key, "a");
  ASSERT_EQ(cmd->extra_keys.size(), 3u);
  EXPECT_EQ(cmd->extra_keys[0], "b");
  EXPECT_EQ(cmd->extra_keys[1], "a");
  EXPECT_EQ(cmd->extra_keys[2], "a");
}

TEST(Protocol, NoreplyOnDelete) {
  const auto cmd = parse_command("delete victim noreply");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->type, CommandType::kDelete);
  EXPECT_EQ(cmd->key, "victim");
  EXPECT_TRUE(cmd->noreply);
  // Only the literal token counts, and only in the third position.
  EXPECT_FALSE(parse_command("delete victim noreplyx").has_value());
  EXPECT_FALSE(parse_command("delete noreply victim extra").has_value());
}

TEST(Protocol, OversizedValueBytesRejected) {
  // At the limit: accepted.
  const auto ok =
      parse_command("set k 0 0 " + std::to_string(kMaxValueBytes));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->value_bytes, kMaxValueBytes);
  // One past the limit: protocol error instead of buffering 4 GiB.
  EXPECT_FALSE(
      parse_command("set k 0 0 " + std::to_string(kMaxValueBytes + 1))
          .has_value());
  // Doesn't even fit in uint32: from_chars overflow must not wrap.
  EXPECT_FALSE(parse_command("set k 0 0 4294967296").has_value());
  EXPECT_FALSE(parse_command("set k 0 0 99999999999999999999").has_value());
}

TEST(Protocol, MalformedTrailingCostTokens) {
  EXPECT_FALSE(parse_command("set k 0 0 5 12x34").has_value());
  EXPECT_FALSE(parse_command("set k 0 0 5 -7").has_value());
  EXPECT_FALSE(parse_command("set k 0 0 5 10 10").has_value());
  EXPECT_FALSE(parse_command("set k 0 0 5 10 noreply extra").has_value());
  EXPECT_FALSE(parse_command("set k 0 0 5 noreply 10").has_value());
  // A well-formed cost + noreply still parses.
  const auto ok = parse_command("set k 0 0 5 10 noreply");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->cost, 10u);
  EXPECT_TRUE(ok->noreply);
}

TEST(Protocol, ParsePeerOps) {
  auto pget = parse_command("pget mykey");
  ASSERT_TRUE(pget.has_value());
  EXPECT_EQ(pget->type, CommandType::kPGet);
  EXPECT_EQ(pget->key, "mykey");

  auto pdel = parse_command("pdel mykey");
  ASSERT_TRUE(pdel.has_value());
  EXPECT_EQ(pdel->type, CommandType::kPDel);
  EXPECT_EQ(pdel->key, "mykey");

  // Single-key only, valid keys only — peer ops are machine-generated.
  EXPECT_FALSE(parse_command("pget a b").has_value());
  EXPECT_FALSE(parse_command("pget").has_value());
  EXPECT_FALSE(parse_command("pdel " + std::string(300, 'k')).has_value());

  // pset: the replica-write storage op, same shape as set (optional cost).
  auto pset = parse_command("pset mykey 3 60 5 42");
  ASSERT_TRUE(pset.has_value());
  EXPECT_EQ(pset->type, CommandType::kPSet);
  EXPECT_EQ(pset->key, "mykey");
  EXPECT_EQ(pset->flags, 3u);
  EXPECT_EQ(pset->exptime, 60u);
  EXPECT_EQ(pset->value_bytes, 5u);
  EXPECT_EQ(pset->cost, 42u);
  EXPECT_FALSE(parse_command("pset mykey 3 60").has_value());
  EXPECT_FALSE(parse_command("pset mykey 3 60 99999999999").has_value());
}

TEST(Protocol, FormatValueWithCost) {
  // The pget reply carries the stored cost (memcached's optional 4th VALUE
  // token, the cas slot) and the remaining TTL seconds (0 = never).
  EXPECT_EQ(format_value_with_cost("k", 3, 77, 0, "hello"),
            "VALUE k 3 5 77 0\r\nhello\r\n");
  EXPECT_EQ(format_value_with_cost("k", 3, 77, 12, "hello"),
            "VALUE k 3 5 77 12\r\nhello\r\n");
}

TEST(Protocol, FormatValue) {
  EXPECT_EQ(format_value("k", 3, "hello"), "VALUE k 3 5\r\nhello\r\n");
  EXPECT_EQ(format_end(), "END\r\n");
  EXPECT_EQ(format_stored(true), "STORED\r\n");
  EXPECT_EQ(format_stored(false), "NOT_STORED\r\n");
  EXPECT_EQ(format_deleted(true), "DELETED\r\n");
  EXPECT_EQ(format_deleted(false), "NOT_FOUND\r\n");
  EXPECT_EQ(format_error(), "ERROR\r\n");
  EXPECT_EQ(format_stat("hits", "42"), "STAT hits 42\r\n");
}

}  // namespace
}  // namespace camp::kvs
