// Cross-policy conformance suite: every eviction policy reachable through
// the factory must honour the ICache contract under randomized workloads —
// byte budgets, count consistency, listener accounting, overwrite/erase
// semantics. Catches contract drift that per-policy unit tests miss.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "policy/policy_factory.h"
#include "util/rng.h"

namespace camp::policy {
namespace {

class PolicyConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyConformance, ByteBudgetNeverExceeded) {
  auto cache = make_policy(GetParam(), 8000);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.below(200);
    if (!cache->get(k)) {
      cache->put(k, 1 + rng.below(900), rng.below(10'000));
    }
    ASSERT_LE(cache->used_bytes(), cache->capacity_bytes()) << "op " << i;
  }
}

TEST_P(PolicyConformance, ListenerAccountsEveryByte) {
  auto cache = make_policy(GetParam(), 4000);
  // bytes tracked externally: inserts add, listener + erase subtract;
  // must equal used_bytes at every step.
  std::map<Key, std::uint64_t> resident;
  std::uint64_t bytes = 0;
  cache->set_eviction_listener([&](Key k, std::uint64_t size) {
    const auto it = resident.find(k);
    ASSERT_NE(it, resident.end()) << "listener fired for unknown key " << k;
    ASSERT_EQ(it->second, size) << "listener size mismatch for " << k;
    bytes -= size;
    resident.erase(it);
  });
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 4000; ++i) {
    const Key k = rng.below(100);
    const auto dice = rng.below(10);
    if (dice < 7) {
      const std::uint64_t size = 1 + rng.below(500);
      // A rejected put leaves any previous value in place; only update the
      // model when the put is admitted (overwrite-erase fires no event).
      if (cache->put(k, size, 1 + rng.below(1000))) {
        if (const auto it = resident.find(k); it != resident.end()) {
          bytes -= it->second;
          resident.erase(it);
        }
        resident[k] = size;
        bytes += size;
      }
    } else if (dice < 9) {
      if (const auto it = resident.find(k); it != resident.end()) {
        bytes -= it->second;
        resident.erase(it);
      }
      cache->erase(k);
    } else {
      cache->get(k);
    }
    ASSERT_EQ(bytes, cache->used_bytes()) << GetParam() << " op " << i;
    ASSERT_EQ(resident.size(), cache->item_count()) << GetParam() << " op "
                                                    << i;
  }
}

TEST_P(PolicyConformance, ContainsAgreesWithGet) {
  auto cache = make_policy(GetParam(), 6000);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.below(150);
    const bool resident = cache->contains(k);
    const bool hit = cache->get(k);
    ASSERT_EQ(resident, hit) << GetParam() << " op " << i;
    if (!hit) cache->put(k, 1 + rng.below(400), 1 + rng.below(100));
  }
}

TEST_P(PolicyConformance, EraseIsIdempotentAndSilent) {
  auto cache = make_policy(GetParam(), 2000);
  int evictions = 0;
  cache->set_eviction_listener([&](Key, std::uint64_t) { ++evictions; });
  cache->put(1, 100, 10);
  cache->put(1, 100, 10);  // admission variants admit by now
  cache->erase(1);
  cache->erase(1);
  cache->erase(42);  // never existed
  EXPECT_EQ(evictions, 0) << "erase must not fire the eviction listener";
  EXPECT_FALSE(cache->contains(1));
}

TEST_P(PolicyConformance, StatsCountersAreConsistent) {
  auto cache = make_policy(GetParam(), 5000);
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.below(80);
    if (!cache->get(k)) cache->put(k, 1 + rng.below(300), 1);
  }
  const CacheStats& stats = cache->stats();
  EXPECT_EQ(stats.gets, 2000u);
  EXPECT_EQ(stats.hits + stats.misses, stats.gets);
  EXPECT_LE(stats.hit_rate(), 1.0);
  EXPECT_GE(stats.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.hit_rate() + stats.miss_rate(), 1.0);
}

TEST_P(PolicyConformance, SurvivesSingleByteCapacity) {
  auto cache = make_policy(GetParam(), 1);
  EXPECT_FALSE(cache->put(1, 2, 1)) << "bigger than the whole cache";
  cache->put(1, 1, 1);  // may or may not admit; must not crash
  cache->get(1);
  cache->erase(1);
  EXPECT_LE(cache->used_bytes(), 1u);
}

TEST_P(PolicyConformance, HotKeyStaysUnderChurn) {
  // A key touched on every second request must survive in every policy
  // (it is maximally recent, frequent, and its cost is the highest).
  auto cache = make_policy(GetParam(), 3000);
  // Admission-wrapped policies deny first-seen keys; an immediate second
  // put re-proves the key. A plain double-put would break 2Q's ghost
  // promotion (the overwrite lands back in A1in), so only admission
  // variants get the extra attempt.
  const bool wrapped = GetParam().rfind("admit+", 0) == 0;
  const auto install = [&] {
    if (!cache->put(999, 100, 1'000'000) && wrapped) {
      cache->put(999, 100, 1'000'000);
    }
  };
  install();
  util::Xoshiro256 rng(5);
  int lost = 0;
  for (int i = 0; i < 4000; ++i) {
    if (i % 2 == 0) {
      if (!cache->get(999)) {
        ++lost;
        install();
      }
    } else {
      const Key k = rng.below(500);
      if (!cache->get(k)) cache->put(k, 1 + rng.below(200), 1);
    }
  }
  EXPECT_LE(lost, 3) << GetParam()
                     << ": a hot, expensive key should essentially never "
                        "be evicted";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyConformance,
    ::testing::Values("lru", "camp", "camp:p=1", "camp:p=64", "camp-f",
                      "camp-f:p=1", "camp-mt", "camp-mt:q=4", "gds",
                      "gds:lru", "gdsf", "greedy-dual", "arc", "2q", "lru-2",
                      "lru-3", "gd-wheel", "clock", "sampled-lru",
                      "sampled-gds", "admit+camp", "admit+lru",
                      "admit+gdsf"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '=' || c == '+' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace camp::policy
