// The batched KvsApi: KvsBatch/execute semantics on the in-process
// transport, the batch wire encoding (one contiguous buffer per batch —
// one write() per batch over TCP, asserted via KvsClient::write_count),
// the incremental server-side CommandDecoder, and transport equivalence
// between inproc and TCP.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kvs/client.h"
#include "kvs/inproc.h"
#include "kvs/protocol.h"
#include "kvs/server.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

StoreConfig small_store() {
  StoreConfig c;
  c.shards = 2;
  c.engine.slab.memory_limit_bytes = 4u << 20;
  c.engine.slab.slab_size_bytes = 1u << 20;
  return c;
}

// ---- in-process transport ---------------------------------------------------

TEST(KvsBatch, InprocMixedOpsAlignWithResults) {
  util::SteadyClock clock;
  KvsStore store(small_store(), lru_factory(), clock);
  InprocClient client(store);

  KvsBatch batch;
  batch.add_set("a", "alpha", 1, 10)
      .add_set("b", "beta", 2, 20)
      .add_get("a")
      .add_get("missing")
      .add_del("b")
      .add_get("b");
  const KvsBatchResult r = client.execute(batch);
  ASSERT_EQ(r.size(), 6u);
  EXPECT_TRUE(r[0].ok);   // set a
  EXPECT_TRUE(r[1].ok);   // set b
  EXPECT_TRUE(r[2].ok);   // get a hits
  EXPECT_EQ(r[2].value, "alpha");
  EXPECT_EQ(r[2].flags, 1u);
  EXPECT_FALSE(r[3].ok);  // miss
  EXPECT_TRUE(r[4].ok);   // delete b
  EXPECT_FALSE(r[5].ok);  // b is gone — ops run in order
}

TEST(KvsBatch, InprocIqFlow) {
  util::SteadyClock clock;
  KvsStore store(small_store(), lru_factory(), clock);
  InprocClient client(store);

  KvsBatch batch;
  batch.add_iqget("computed").add_iqset("computed", "result", 0).add_iqget(
      "computed");
  const KvsBatchResult r = client.execute(batch);
  EXPECT_FALSE(r[0].ok);  // miss records the cost-capture timestamp
  EXPECT_TRUE(r[1].ok);
  EXPECT_TRUE(r[2].ok);
  EXPECT_EQ(r[2].value, "result");
}

TEST(KvsBatch, SingleOpWrappersRideTheBatchPath) {
  util::SteadyClock clock;
  KvsStore store(small_store(), lru_factory(), clock);
  InprocClient client(store);
  KvsApi& api = client;  // wrappers live on the interface, not the transport

  EXPECT_TRUE(api.set("k", "v", 3, 7));
  const GetResult g = api.get("k");
  EXPECT_TRUE(g.hit);
  EXPECT_EQ(g.value, "v");
  EXPECT_EQ(g.flags, 3u);
  EXPECT_TRUE(api.del("k"));
  EXPECT_FALSE(api.get("k").hit);
}

// ---- wire encoding ----------------------------------------------------------

TEST(KvsBatch, EncodeCoalescesConsecutiveGetsIntoMultiGet) {
  KvsBatch batch;
  batch.add_get("a").add_get("b").add_get("c");
  const BatchWire wire = encode_batch(batch);
  EXPECT_EQ(wire.request, "get a b c\r\n");
  ASSERT_EQ(wire.expects.size(), 1u);
  EXPECT_EQ(wire.expects[0].kind, BatchWire::Expect::Kind::kValues);
  EXPECT_EQ(wire.expects[0].op_indices, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(KvsBatch, EncodeDoesNotCoalesceAcrossMutations) {
  // get a / set a / get a: merging the two gets would let the first read
  // observe the in-between mutation.
  KvsBatch batch;
  batch.add_get("a").add_set("a", "v2", 0, 0).add_get("a");
  const BatchWire wire = encode_batch(batch);
  EXPECT_EQ(wire.request, "get a\r\nset a 0 0 2\r\nv2\r\nget a\r\n");
  ASSERT_EQ(wire.expects.size(), 3u);
}

TEST(KvsBatch, EncodeMixedBatchIsOneBufferWithNoreply) {
  KvsBatch batch;
  batch.add_set("x", "pay", 5, 123, /*exptime_s=*/60, /*noreply=*/true)
      .add_del("y", /*noreply=*/true)
      .add_iqget("z");
  const BatchWire wire = encode_batch(batch);
  EXPECT_EQ(wire.request,
            "set x 5 60 3 123 noreply\r\npay\r\n"
            "delete y noreply\r\n"
            "iqget z\r\n");
  // Only the iqget solicits a reply.
  ASSERT_EQ(wire.expects.size(), 1u);
  EXPECT_EQ(wire.expects[0].kind, BatchWire::Expect::Kind::kValues);
  EXPECT_EQ(wire.expects[0].op_indices, (std::vector<std::size_t>{2}));
}

// ---- server-side incremental decoding ---------------------------------------

TEST(CommandDecoder, DrainsAPipelinedBurst) {
  CommandDecoder decoder;
  decoder.feed("set a 0 0 1\r\nA\r\nget a b\r\ndelete a noreply\r\n");
  DecodedCommand dc;
  ASSERT_EQ(decoder.next(dc), CommandDecoder::Status::kCommand);
  EXPECT_EQ(dc.cmd.type, CommandType::kSet);
  EXPECT_EQ(dc.payload, "A");
  ASSERT_EQ(decoder.next(dc), CommandDecoder::Status::kCommand);
  EXPECT_EQ(dc.cmd.type, CommandType::kGet);
  ASSERT_EQ(dc.cmd.extra_keys.size(), 1u);
  ASSERT_EQ(decoder.next(dc), CommandDecoder::Status::kCommand);
  EXPECT_EQ(dc.cmd.type, CommandType::kDelete);
  EXPECT_TRUE(dc.cmd.noreply);
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(CommandDecoder, ReassemblesSplitPayload) {
  CommandDecoder decoder;
  DecodedCommand dc;
  decoder.feed("set k 0 0 6\r\na\r");
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kNeedMore);
  decoder.feed("\nb\rc");  // 6-byte payload containing CRLF
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kNeedMore);
  decoder.feed("\r\n");
  ASSERT_EQ(decoder.next(dc), CommandDecoder::Status::kCommand);
  EXPECT_EQ(dc.payload, std::string("a\r\nb\rc", 6));
}

TEST(CommandDecoder, ProtocolErrorConsumesOneLineAndRecovers) {
  CommandDecoder decoder;
  decoder.feed("frobnicate\r\nversion\r\n");
  DecodedCommand dc;
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kProtocolError);
  ASSERT_EQ(decoder.next(dc), CommandDecoder::Status::kCommand);
  EXPECT_EQ(dc.cmd.type, CommandType::kVersion);
}

TEST(CommandDecoder, OversizedStorageHeaderIsFatal) {
  // A numeric declared length past the cap means a (potentially huge)
  // payload follows that could never be re-framed — the stream must die
  // instead of misreading the payload as commands.
  DecodedCommand dc;
  CommandDecoder overflow;
  overflow.feed("set k 0 0 4294967296\r\nwould-be-payload\r\n");
  EXPECT_EQ(overflow.next(dc), CommandDecoder::Status::kFatalError);

  CommandDecoder oversized;
  oversized.feed("set k 0 0 " + std::to_string(kMaxValueBytes + 1) + "\r\n");
  EXPECT_EQ(oversized.next(dc), CommandDecoder::Status::kFatalError);

  // Non-numeric garbage in the size slot carries no payload threat, and a
  // malformed non-storage line never did: both stay recoverable.
  CommandDecoder garbage;
  garbage.feed("set k 0 0 zebra\r\nversion\r\n");
  EXPECT_EQ(garbage.next(dc), CommandDecoder::Status::kProtocolError);
  EXPECT_EQ(garbage.next(dc), CommandDecoder::Status::kCommand);

  CommandDecoder bad_get;
  bad_get.feed("get\r\nversion\r\n");
  EXPECT_EQ(bad_get.next(dc), CommandDecoder::Status::kProtocolError);
  EXPECT_EQ(bad_get.next(dc), CommandDecoder::Status::kCommand);
}

TEST(CommandDecoder, RejectedStorageLineSwallowsItsPayload) {
  // "10 10" is a malformed cost tail, but the declared size (5) is
  // credible: the decoder must discard the 5-byte payload instead of
  // misreading "hello" as a command, memcached's "bad data chunk" rule.
  CommandDecoder decoder;
  DecodedCommand dc;
  decoder.feed("set k 0 0 5 10 10\r\nhel");
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kProtocolError);
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kNeedMore);
  decoder.feed("lo\r\nversion\r\n");  // rest of payload, then a real command
  ASSERT_EQ(decoder.next(dc), CommandDecoder::Status::kCommand);
  EXPECT_EQ(dc.cmd.type, CommandType::kVersion);
}

TEST(CommandDecoder, EndlessLineWithoutCrlfIsFatal) {
  CommandDecoder decoder;
  DecodedCommand dc;
  decoder.feed(std::string(kMaxCommandLineBytes, 'x'));
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kNeedMore);
  decoder.feed("xxxx");  // past the cap, still no CRLF
  EXPECT_EQ(decoder.next(dc), CommandDecoder::Status::kFatalError);
}

// ---- TCP transport ----------------------------------------------------------

class BatchTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig config;
    config.workers = 2;
    config.policy_shards = 2;
    config.store = small_store();
    server_ = std::make_unique<KvsServer>(config, lru_factory(), clock_);
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  util::SteadyClock clock_;
  std::unique_ptr<KvsServer> server_;
};

TEST_F(BatchTcpTest, MultiGetBatchIssuesOneWrite) {
  KvsClient client("127.0.0.1", server_->port());
  std::vector<std::string> keys, values;
  for (int i = 0; i < 8; ++i) {
    keys.push_back("k" + std::to_string(i));
    values.push_back("v" + std::to_string(i));
  }
  for (std::size_t i = 0; i < 8; i += 2) {  // seed the even keys
    ASSERT_TRUE(client.set(keys[i], values[i],
                           static_cast<std::uint32_t>(i), 0));
  }

  KvsBatch batch;
  for (const std::string& key : keys) batch.add_get(key);
  const std::uint64_t writes_before = client.write_count();
  const KvsBatchResult r = client.execute(batch);
  EXPECT_EQ(client.write_count() - writes_before, 1u)
      << "a batched multi-get must cost exactly one write()";

  for (std::size_t i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(r[i].ok);
      EXPECT_EQ(r[i].value, values[i]);
      EXPECT_EQ(r[i].flags, static_cast<std::uint32_t>(i));
    } else {
      EXPECT_FALSE(r[i].ok);
    }
  }
}

TEST_F(BatchTcpTest, MixedBatchIsOneWriteIncludingNoreplyMutations) {
  KvsClient client("127.0.0.1", server_->port());
  KvsBatch batch;
  batch.add_set("a", "alpha", 0, 0, 0, /*noreply=*/true)
      .add_set("b", "beta", 0, 0, 0, /*noreply=*/true)
      .add_get("a")
      .add_get("b")
      .add_del("a", /*noreply=*/true)
      .add_get("a");
  const std::uint64_t writes_before = client.write_count();
  const KvsBatchResult r = client.execute(batch);
  EXPECT_EQ(client.write_count() - writes_before, 1u);

  EXPECT_TRUE(r[0].ok);
  EXPECT_FALSE(r[0].acked);  // noreply: assumed, not confirmed
  EXPECT_TRUE(r[1].ok);
  EXPECT_FALSE(r[1].acked);
  EXPECT_TRUE(r[2].ok);      // ops executed in order: the sets landed first
  EXPECT_EQ(r[2].value, "alpha");
  EXPECT_TRUE(r[3].ok);
  EXPECT_EQ(r[3].value, "beta");
  EXPECT_FALSE(r[5].ok) << "noreply delete must have executed before";
}

TEST_F(BatchTcpTest, DuplicateKeysInOneMultiGet) {
  KvsClient client("127.0.0.1", server_->port());
  ASSERT_TRUE(client.set("dup", "d", 0, 0));
  KvsBatch batch;
  batch.add_get("dup").add_get("gone").add_get("dup");
  const KvsBatchResult r = client.execute(batch);
  EXPECT_TRUE(r[0].ok);
  EXPECT_EQ(r[0].value, "d");
  EXPECT_FALSE(r[1].ok);
  EXPECT_TRUE(r[2].ok);
  EXPECT_EQ(r[2].value, "d");
}

TEST_F(BatchTcpTest, TcpMatchesInprocSemantics) {
  KvsClient tcp("127.0.0.1", server_->port());
  util::SteadyClock clock;
  KvsStore store(small_store(), lru_factory(), clock);
  InprocClient inproc(store);

  KvsBatch batch;
  batch.add_set("x", "1", 0, 5)
      .add_iqget("y")
      .add_iqset("y", "2", 0)
      .add_get("x")
      .add_get("y")
      .add_del("x")
      .add_get("x");
  const KvsBatchResult a = tcp.execute(batch);
  const KvsBatchResult b = inproc.execute(batch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok) << "op " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "op " << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << "op " << i;
  }
}

TEST_F(BatchTcpTest, LargeBatchRoundTrip) {
  KvsClient client("127.0.0.1", server_->port());
  constexpr int kOps = 200;
  KvsBatch sets;
  for (int i = 0; i < kOps; ++i) {
    sets.add_set("big" + std::to_string(i), std::string(64, 'x'), 0, 0, 0,
                 /*noreply=*/true);
  }
  const std::uint64_t writes_before = client.write_count();
  (void)client.execute(sets);
  EXPECT_EQ(client.write_count() - writes_before, 1u);

  KvsBatch gets;
  for (int i = 0; i < kOps; ++i) gets.add_get("big" + std::to_string(i));
  const KvsBatchResult r = client.execute(gets);
  EXPECT_EQ(r.ok_count(), static_cast<std::size_t>(kOps));
}

TEST(KvsBatch, EncodeSplitsMultiGetAtTheCommandLineCap) {
  // 400 gets of 250-byte keys (~100 KB of line) must split into several
  // multi-get lines, each under kMaxCommandLineBytes — the server's
  // decoder fatally rejects longer lines.
  KvsBatch batch;
  std::vector<std::string> keys;
  for (int i = 0; i < 400; ++i) {
    std::string key = std::to_string(i);
    key.append(250 - key.size(), 'k');
    batch.add_get(key);
    keys.push_back(std::move(key));
  }
  const BatchWire wire = encode_batch(batch);
  EXPECT_GE(wire.expects.size(), 2u) << "the run must have been split";
  std::size_t covered = 0;
  std::size_t line_start = 0;
  for (const BatchWire::Expect& expect : wire.expects) {
    covered += expect.op_indices.size();
    const std::size_t eol = wire.request.find("\r\n", line_start);
    ASSERT_NE(eol, std::string::npos);
    EXPECT_LE(eol - line_start, kMaxCommandLineBytes);
    line_start = eol + 2;
  }
  EXPECT_EQ(covered, batch.size()) << "every op still has a reply slot";
}

TEST(KvsBatch, EncodeRejectsInvalidKeys) {
  // A key the server's parser rejects would elicit a wire-side ERROR that a
  // noreply op has no reply slot for, desyncing the whole stream — so the
  // encoder refuses locally.
  KvsBatch spaced;
  spaced.add_del("bad key", /*noreply=*/true);
  EXPECT_THROW((void)encode_batch(spaced), std::invalid_argument);

  KvsBatch oversized_key;
  oversized_key.add_get(std::string(251, 'k'));
  EXPECT_THROW((void)encode_batch(oversized_key), std::invalid_argument);

  KvsBatch control_chars;
  control_chars.add_set("evil\r\nkey", "v", 0, 0);
  EXPECT_THROW((void)encode_batch(control_chars), std::invalid_argument);
}

TEST_F(BatchTcpTest, OversizedValueRejectedClientSideBeforeAnyWrite) {
  // The server drops any connection declaring > kMaxValueBytes, so the
  // encoder must refuse locally — and the connection must stay usable.
  KvsClient client("127.0.0.1", server_->port());
  KvsBatch batch;
  batch.add_set("too-big", std::string(kMaxValueBytes + 1, 'x'), 0, 0);
  const std::uint64_t writes_before = client.write_count();
  EXPECT_THROW((void)client.execute(batch), std::length_error);
  EXPECT_EQ(client.write_count(), writes_before) << "nothing hit the wire";
  EXPECT_TRUE(client.set("still-fine", "v", 0, 0));
}

TEST_F(BatchTcpTest, HugeRepliedBatchDoesNotDeadlock) {
  // Every set solicits a STORED reply: the request exceeds the kernel send
  // buffer while replies stream back, so the client's send path must drain
  // replies while writing or both blocking writers wedge.
  KvsClient client("127.0.0.1", server_->port());
  constexpr int kOps = 20'000;
  KvsBatch batch;
  batch.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    batch.add_set("h" + std::to_string(i % 500), std::string(32, 'h'), 0, 0);
  }
  const KvsBatchResult r = client.execute(batch);
  EXPECT_EQ(r.ok_count(), static_cast<std::size_t>(kOps));
  for (const KvsOpResult& result : r.results) EXPECT_TRUE(result.acked);
}

TEST_F(BatchTcpTest, SplitMultiGetRoundTripStillOneWrite) {
  // Long keys force the encoder to split the get run into several wire
  // lines; the whole batch is still one buffer — and one write().
  KvsClient client("127.0.0.1", server_->port());
  std::vector<std::string> keys;
  for (int i = 0; i < 400; ++i) {
    std::string key = std::to_string(i);
    key.append(250 - key.size(), 'k');
    keys.push_back(std::move(key));
  }
  for (std::size_t i = 0; i < keys.size(); i += 50) {
    ASSERT_TRUE(client.set(keys[i], "hit" + std::to_string(i), 0, 0));
  }
  KvsBatch batch;
  for (const std::string& key : keys) batch.add_get(key);
  const std::uint64_t writes_before = client.write_count();
  const KvsBatchResult r = client.execute(batch);
  EXPECT_EQ(client.write_count() - writes_before, 1u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 50 == 0) {
      EXPECT_TRUE(r[i].ok);
      EXPECT_EQ(r[i].value, "hit" + std::to_string(i));
    } else {
      EXPECT_FALSE(r[i].ok);
    }
  }
}

TEST_F(BatchTcpTest, WorkerPoolReportedInStats) {
  KvsClient client("127.0.0.1", server_->port());
  const auto stats = client.stats();
  EXPECT_EQ(stats.at("workers"), "2");
  EXPECT_EQ(stats.at("store_shards"), "2");
  // policy_shards = 2 wraps each engine's LRU in a ShardedCache.
  EXPECT_EQ(stats.at("policy"), "sharded(2xlru)");
}

}  // namespace
}  // namespace camp::kvs
