#include "sim/parallel_simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/camp.h"
#include "core/concurrent_camp.h"
#include "sim/simulator.h"
#include "trace/workloads.h"

namespace camp::sim {
namespace {

std::vector<trace::TraceRecord> small_trace(std::uint64_t seed) {
  trace::TraceGenerator gen(trace::bg_default(/*keys=*/2'000,
                                              /*requests=*/40'000, seed));
  return gen.generate();
}

core::ConcurrentCampCache make_cache(std::uint64_t cap) {
  core::ConcurrentCampConfig config;
  config.capacity_bytes = cap;
  config.precision = 5;
  return core::ConcurrentCampCache(config);
}

TEST(ParallelReplay, SingleThreadMatchesSerialSimulator) {
  const auto records = small_trace(3);
  auto concurrent = make_cache(200'000);
  const auto result = replay_parallel(concurrent, records, 1);

  core::CampConfig serial_cfg;
  serial_cfg.capacity_bytes = 200'000;
  serial_cfg.precision = 5;
  core::CampCache serial(serial_cfg);
  Simulator simulator(serial);
  simulator.run(records);

  // One worker replays in trace order against a decision-identical engine:
  // totals must agree exactly.
  EXPECT_EQ(result.metrics.requests, simulator.metrics().requests);
  EXPECT_EQ(result.metrics.cold_requests,
            simulator.metrics().cold_requests);
  EXPECT_EQ(result.metrics.hits, simulator.metrics().hits);
  EXPECT_EQ(result.metrics.noncold_misses,
            simulator.metrics().noncold_misses);
  EXPECT_EQ(result.metrics.noncold_cost_missed,
            simulator.metrics().noncold_cost_missed);
}

TEST(ParallelReplay, MultiThreadTotalsAreCoherent) {
  const auto records = small_trace(5);
  auto cache = make_cache(100'000);
  const auto result = replay_parallel(cache, records, 4);

  EXPECT_EQ(result.metrics.requests, records.size());
  EXPECT_EQ(result.per_thread.size(), 4u);
  // Cold accounting is deterministic: exactly one cold request per key.
  std::unordered_set<policy::Key> keys;
  for (const auto& r : records) keys.insert(r.key);
  EXPECT_EQ(result.metrics.cold_requests, keys.size());
  // Interleaving may shift individual hits, but the rates stay in range.
  EXPECT_GT(result.metrics.hits, 0u);
  EXPECT_LE(result.metrics.miss_rate(), 1.0);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.requests_per_second(), 0.0);
  EXPECT_TRUE(cache.check_invariants());
}

TEST(ParallelReplay, MultiThreadRatesTrackSerialRates) {
  // Nondeterministic interleaving must not change aggregate quality much:
  // the 4-thread cost-miss ratio stays within 20% (relative) of serial.
  const auto records = small_trace(7);
  auto mt = make_cache(150'000);
  const auto parallel = replay_parallel(mt, records, 4);

  auto st = make_cache(150'000);
  const auto serial = replay_parallel(st, records, 1);

  const double s = serial.metrics.cost_miss_ratio();
  const double p = parallel.metrics.cost_miss_ratio();
  ASSERT_GT(s, 0.0);
  EXPECT_LT(std::abs(p - s) / s, 0.20)
      << "parallel " << p << " vs serial " << s;
}

TEST(ParallelReplay, ZeroThreadsClampsToOne) {
  const auto records = small_trace(9);
  auto cache = make_cache(100'000);
  const auto result = replay_parallel(cache, records, 0);
  EXPECT_EQ(result.per_thread.size(), 1u);
  EXPECT_EQ(result.metrics.requests, records.size());
}

TEST(ParallelReplay, EmptyTraceIsHarmless) {
  auto cache = make_cache(1'000);
  const auto result = replay_parallel(cache, {}, 4);
  EXPECT_EQ(result.metrics.requests, 0u);
  EXPECT_EQ(result.metrics.miss_rate(), 0.0);
}

}  // namespace
}  // namespace camp::sim
