#include "sim/sweep.h"

#include <gtest/gtest.h>

#include "core/camp.h"
#include "policy/lru.h"
#include "trace/workloads.h"

namespace camp::sim {
namespace {

TEST(Sweep, CapacityForRatio) {
  EXPECT_EQ(capacity_for_ratio(0.5, 1000), 500u);
  EXPECT_EQ(capacity_for_ratio(0.0, 1000), 1u) << "clamped to 1";
  EXPECT_EQ(capacity_for_ratio(1.0, 1000), 1000u);
}

TEST(Sweep, RunsEveryRatio) {
  const auto config = trace::bg_default(500, 20'000, 41);
  trace::TraceGenerator gen(config);
  const auto rows = gen.generate();
  SweepConfig sweep;
  sweep.cache_ratios = {0.05, 0.25, 0.75};
  sweep.unique_bytes = gen.unique_bytes();
  const auto points = run_ratio_sweep(rows, sweep, "lru", [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  });
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    EXPECT_EQ(p.policy, "lru");
    EXPECT_GT(p.metrics.requests, 0u);
  }
  // More cache -> monotonically no-worse miss rate for LRU on a fixed trace.
  EXPECT_GE(points[0].metrics.miss_rate(), points[1].metrics.miss_rate());
  EXPECT_GE(points[1].metrics.miss_rate(), points[2].metrics.miss_rate());
}

TEST(Sweep, CampBeatsLruOnCostMissRatio) {
  // The paper's headline comparison at a mid cache ratio.
  const auto config = trace::bg_default(800, 40'000, 43);
  trace::TraceGenerator gen(config);
  const auto rows = gen.generate();
  SweepConfig sweep;
  sweep.cache_ratios = {0.1};
  sweep.unique_bytes = gen.unique_bytes();

  const auto lru = run_ratio_sweep(rows, sweep, "lru", [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  });
  const auto camp =
      run_ratio_sweep(rows, sweep, "camp", [](std::uint64_t cap) {
        core::CampConfig c;
        c.capacity_bytes = cap;
        c.precision = 5;
        return core::make_camp(c);
      });
  EXPECT_LT(camp[0].metrics.cost_miss_ratio(),
            lru[0].metrics.cost_miss_ratio())
      << "CAMP must beat LRU on cost-miss ratio for the 3-tier trace";
}

}  // namespace
}  // namespace camp::sim
