#include "policy/gdsf.h"

#include <gtest/gtest.h>

#include <vector>

#include "policy/gds.h"
#include "util/rng.h"

namespace camp::policy {
namespace {

GdsfConfig cfg(std::uint64_t cap) {
  GdsfConfig c;
  c.capacity_bytes = cap;
  return c;
}

TEST(Gdsf, RejectsBadConfig) {
  const GdsfConfig zero_capacity{};
  EXPECT_THROW(GdsfCache{zero_capacity}, std::invalid_argument);
  GdsfConfig bad_precision;
  bad_precision.capacity_bytes = 10;
  bad_precision.precision = 0;
  EXPECT_THROW(GdsfCache{bad_precision}, std::invalid_argument);
  GdsfConfig bad_freq;
  bad_freq.capacity_bytes = 10;
  bad_freq.max_frequency = 0;
  EXPECT_THROW(GdsfCache{bad_freq}, std::invalid_argument);
}

TEST(Gdsf, EvictsSmallestPriority) {
  GdsfCache cache(cfg(300));
  cache.put(1, 100, 1);
  cache.put(2, 100, 10'000);
  cache.put(3, 100, 100);
  EXPECT_EQ(cache.peek_victim(), std::optional<Key>(1));
  cache.put(4, 100, 100);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Gdsf, FrequencyCountsHits) {
  GdsfCache cache(cfg(1000));
  cache.put(1, 100, 10);
  EXPECT_EQ(cache.frequency_of(1), 1u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(cache.get(1));
  EXPECT_EQ(cache.frequency_of(1), 5u);
  EXPECT_EQ(cache.frequency_of(999), 0u);  // absent key
}

TEST(Gdsf, PopularCheapBeatsUnpopularExpensive) {
  // The scenario GDSF handles and GDS does not: a cheap pair hit many times
  // outranks a moderately expensive pair that is never re-referenced.
  GdsfCache cache(cfg(200));
  cache.put(1, 100, 10);   // cheap but will become popular
  cache.put(2, 100, 30);   // 3x the cost, never touched again
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(cache.get(1));  // freq(1) = 9
  cache.put(3, 100, 10);   // forces one eviction
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Gdsf, GdsDisagreesOnTheSameSequence) {
  // Differential check: a sequence where frequency accumulation flips the
  // victim. Three residents (costs 10/50/20, equal sizes); key 1 is hit 4
  // times. Under GDS, every hit re-prices 1 at L + 10 where L stays at the
  // third pair's priority, so H(1)=30 stays below H(2)=50 no matter how many
  // hits land. Under GDSF, hits accumulate: H(1)=L+freq*10 climbs past
  // H(2). Two churn inserts then evict key 1 under GDS but key 2 under GDSF.
  const auto drive = [](auto& cache) {
    cache.put(1, 100, 10);
    cache.put(2, 100, 50);
    cache.put(3, 100, 20);
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(cache.get(1));
    cache.put(4, 100, 1000);  // evicts 3 (lowest H) in both policies
    cache.put(5, 100, 1000);  // the discriminating eviction
  };
  GdsConfig gds_cfg;
  gds_cfg.capacity_bytes = 300;
  GdsCache gds(gds_cfg);
  drive(gds);
  EXPECT_FALSE(gds.contains(1)) << "GDS: hit refresh does not stack";
  EXPECT_TRUE(gds.contains(2));

  GdsfCache gdsf(cfg(300));
  drive(gdsf);
  EXPECT_TRUE(gdsf.contains(1)) << "GDSF: frequency lifts the popular pair";
  EXPECT_FALSE(gdsf.contains(2));
}

TEST(Gdsf, FrequencyResetsOnReinsertAfterEviction) {
  GdsfCache cache(cfg(200));
  cache.put(1, 100, 10);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cache.get(1));
  cache.erase(1);
  cache.put(1, 100, 10);
  EXPECT_EQ(cache.frequency_of(1), 1u);
}

TEST(Gdsf, FrequencyCapHolds) {
  GdsfConfig c = cfg(1000);
  c.max_frequency = 4;
  GdsfCache cache(c);
  cache.put(1, 100, 10);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(cache.get(1));
  EXPECT_EQ(cache.frequency_of(1), 4u);
}

TEST(Gdsf, OverwriteResetsFrequency) {
  GdsfCache cache(cfg(1000));
  cache.put(1, 100, 10);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(cache.get(1));
  cache.put(1, 120, 20);  // overwrite: new value, frequency starts over
  EXPECT_EQ(cache.frequency_of(1), 1u);
  EXPECT_EQ(cache.used_bytes(), 120u);
  EXPECT_EQ(cache.item_count(), 1u);
}

TEST(Gdsf, InflationMonotone) {
  GdsfCache cache(cfg(500));
  util::SplitMix64 rng(3);
  std::uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.next() % 40;
    if (!cache.get(k)) {
      cache.put(k, 50 + rng.next() % 100, 1 + rng.next() % 999);
    }
    ASSERT_GE(cache.inflation(), last);
    last = cache.inflation();
  }
}

TEST(Gdsf, PropositionOneStyleBoundHolds) {
  // L <= H(p) for all resident pairs at all times (the Greedy Dual family
  // invariant; frequency only raises H further above L).
  GdsfCache cache(cfg(800));
  util::SplitMix64 rng(5);
  std::vector<Key> keys;
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.next() % 60;
    if (!cache.get(k)) {
      cache.put(k, 40 + rng.next() % 200, 1 + rng.next() % 5000);
      keys.push_back(k);
    }
    for (const Key kk : keys) {
      if (cache.contains(kk)) {
        ASSERT_GE(cache.priority_of(kk), cache.inflation());
      }
    }
    if (keys.size() > 64) keys.erase(keys.begin(), keys.begin() + 32);
  }
}

TEST(Gdsf, AccountingStaysExact) {
  GdsfCache cache(cfg(10'000));
  util::SplitMix64 rng(11);
  std::uint64_t listener_freed = 0;
  cache.set_eviction_listener(
      [&](Key, std::uint64_t size) { listener_freed += size; });
  std::uint64_t put_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.next() % 300;
    if (!cache.get(k)) {
      const std::uint64_t size = 16 + rng.next() % 512;
      if (cache.put(k, size, 1 + rng.next() % 100)) put_bytes += size;
    }
  }
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  // Bytes in == bytes resident + bytes evicted + bytes erased (none here;
  // overwrites route through erase() which is not listener-visible, so
  // account for them via stats).
  EXPECT_GT(listener_freed, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(Gdsf, UniformCostAndSizeDegeneratesTowardLfu) {
  // With equal cost and size everywhere, H = L + freq/1: eviction order is
  // driven by frequency — the LFU-with-aging character of GDSF.
  GdsfCache cache(cfg(300));
  cache.put(1, 100, 10);
  cache.put(2, 100, 10);
  cache.put(3, 100, 10);
  ASSERT_TRUE(cache.get(2));
  ASSERT_TRUE(cache.get(2));
  ASSERT_TRUE(cache.get(3));
  // 1 has freq 1 and the lowest H: it is the victim.
  EXPECT_EQ(cache.peek_victim(), std::optional<Key>(1));
  cache.put(4, 100, 10);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Gdsf, NameReflectsPrecision) {
  EXPECT_EQ(GdsfCache(cfg(10)).name(), "gdsf");
  GdsfConfig c = cfg(1 << 16);
  c.precision = 3;
  EXPECT_EQ(GdsfCache(c).name(), "gdsf(p=3)");
}

TEST(Gdsf, FactoryWorks) {
  auto cache = make_gdsf(cfg(100));
  EXPECT_TRUE(cache->put(1, 50, 5));
  EXPECT_TRUE(cache->get(1));
  EXPECT_EQ(cache->name(), "gdsf");
}

}  // namespace
}  // namespace camp::policy
