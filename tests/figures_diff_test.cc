// The baseline diff core: exact comparison for deterministic counters,
// banded tolerance for wall-clock metrics, and hard failures for schema
// drift (missing/extra rows). camp_bench_diff and the CI figures-smoke
// gate are thin wrappers over this.
#include <string>

#include <gtest/gtest.h>

#include "figures/diff.h"
#include "figures/emit.h"
#include "figures/figure_runner.h"

namespace camp::figures {
namespace {

std::string tiny_csv(const char* figure) {
  FigureOptions options;
  options.scale = Scale::tiny();
  return to_csv(FigureRunner(options).run(figure));
}

TEST(FiguresDiffTest, ParsesEmittedCsvRoundTrip) {
  const std::string csv = tiny_csv("fig4");
  const auto rows = parse_metric_csv(csv);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().figure, "fig4");
  EXPECT_EQ(rows.front().x_label, "ratio");
  EXPECT_EQ(rows.front().scale, "tiny");
  EXPECT_EQ(rows.front().seed, std::to_string(kCanonicalSeed));
}

TEST(FiguresDiffTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_metric_csv(""), std::runtime_error);
  EXPECT_THROW(parse_metric_csv("wrong,header\n"), std::runtime_error);
  const std::string good = std::string(csv_header()) + "\n";
  EXPECT_NO_THROW(parse_metric_csv(good));
  EXPECT_THROW(parse_metric_csv(good + "a,b,c\n"), std::runtime_error);
  EXPECT_THROW(
      parse_metric_csv(good + "f,p,x,1,m,not-a-number,2014,tiny\n"),
      std::runtime_error);
}

TEST(FiguresDiffTest, ParserRejectsDuplicateRowKeys) {
  // A duplicated (point, metric) key would make the diff join silently
  // drop one copy — it must be rejected at parse time instead.
  const std::string csv = std::string(csv_header()) +
                          "\n"
                          "f,p,ratio,0.25,queues,40,2014,tiny\n"
                          "f,p,ratio,0.25,queues,41,2014,tiny\n";
  EXPECT_THROW(parse_metric_csv(csv), std::runtime_error);
}

TEST(FiguresDiffTest, IdenticalRunsDiffClean) {
  const auto a = parse_metric_csv(tiny_csv("fig9"));
  const auto b = parse_metric_csv(tiny_csv("fig9"));
  const DiffReport report = diff_metrics(a, b, DiffConfig{});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, a.size());
}

TEST(FiguresDiffTest, PerturbedExactMetricFailsTheDiff) {
  auto baseline = parse_metric_csv(tiny_csv("fig9"));
  auto candidate = baseline;
  // Perturb one deterministic counter by ~1%: far beyond the exact
  // tolerance, the build must fail.
  bool perturbed = false;
  for (MetricRow& row : candidate) {
    if (row.metric == "cost_miss_ratio" && row.value > 0.0) {
      row.value *= 1.01;
      row.value_text = format_value(row.value);
      perturbed = true;
      break;
    }
  }
  ASSERT_TRUE(perturbed);
  const DiffReport report =
      diff_metrics(baseline, candidate, DiffConfig{});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, DiffIssue::Kind::kOutOfTolerance);
  EXPECT_FALSE(report.ok());
}

TEST(FiguresDiffTest, FormattingNoiseDoesNotFailExactMetrics) {
  auto baseline = parse_metric_csv(tiny_csv("fig4"));
  auto candidate = baseline;
  for (MetricRow& row : candidate) {
    if (row.metric == "cost_miss_ratio") {
      row.value_text += "0";  // "0.5" -> "0.50": same value, new spelling
    }
  }
  EXPECT_TRUE(diff_metrics(baseline, candidate, DiffConfig{}).ok());
}

TEST(FiguresDiffTest, BandedMetricToleratesDriftWithinTheBand) {
  MetricRow base;
  base.figure = "fig9_scaling";
  base.policy = "batched/clients=8";
  base.x_label = "shards";
  base.x = "4";
  base.metric = "ops_per_sec";
  base.value = 100'000.0;
  base.value_text = "100000";
  MetricRow cand = base;
  cand.value = 120'000.0;  // +20%: inside the 40% band
  cand.value_text = "120000";
  EXPECT_TRUE(diff_metrics({base}, {cand}, DiffConfig{}).ok());

  cand.value = 250'000.0;  // +150%: outside
  cand.value_text = "250000";
  const DiffReport report = diff_metrics({base}, {cand}, DiffConfig{});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].tolerance, 0.40);
}

TEST(FiguresDiffTest, MissingAndExtraRowsAreSchemaDrift) {
  const auto baseline = parse_metric_csv(tiny_csv("table1"));
  auto candidate = baseline;
  candidate.pop_back();
  DiffReport report = diff_metrics(baseline, candidate, DiffConfig{});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, DiffIssue::Kind::kMissingInCandidate);

  candidate = baseline;
  MetricRow extra = baseline.front();
  extra.metric = "brand_new_metric";
  candidate.push_back(extra);
  report = diff_metrics(baseline, candidate, DiffConfig{});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, DiffIssue::Kind::kMissingInBaseline);

  DiffConfig allow_extra;
  allow_extra.require_same_rows = false;
  EXPECT_TRUE(diff_metrics(baseline, candidate, allow_extra).ok());
}

TEST(FiguresDiffTest, PerMetricOverridesWin) {
  MetricRow base;
  base.figure = "f";
  base.policy = "p";
  base.x_label = "ratio";
  base.x = "0.25";
  base.metric = "queues";
  base.value = 40.0;
  base.value_text = "40";
  MetricRow cand = base;
  cand.value = 42.0;
  cand.value_text = "42";
  EXPECT_FALSE(diff_metrics({base}, {cand}, DiffConfig{}).ok());

  DiffConfig loose;
  loose.metric_tolerance["queues"] = 0.10;
  EXPECT_TRUE(diff_metrics({base}, {cand}, loose).ok());
}

}  // namespace
}  // namespace camp::figures
