// Anti-entropy repair for the replicated cluster (kvs/repair.h +
// CoopCluster churn): hint-queue semantics, the shared sloppy-write and
// key-repair planners, the RepairDriver thread, and the full
// kill -> sloppy writes + hints -> sweep -> heal + replay cycle, including
// read repair on the failover path and the bounded-sweep cursor.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "kvs/cluster.h"
#include "kvs/cluster_client.h"
#include "kvs/repair.h"
#include "policy/policy_factory.h"
#include "util/clock.h"

namespace camp::kvs {
namespace {

const util::ManualClock& test_clock() {
  static const util::ManualClock clock;
  return clock;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) { return policy::make_policy("lru", cap); };
}

StoreConfig roomy_store(std::uint64_t limit = 1u << 20) {
  StoreConfig config;
  config.shards = 1;
  config.engine.slab.slab_size_bytes = 64u << 10;
  config.engine.slab.memory_limit_bytes = limit;
  return config;
}

ClusterConfig repair_config(std::uint32_t replication = 2) {
  ClusterConfig config;
  config.replication = replication;
  config.write_ack = WriteAckPolicy::kAckHome;
  config.guard_capacity_bytes = 256u << 10;
  config.guard_lease_requests = 100'000;
  return config;
}

/// Built without the fused `"key" + to_string` temporary, which trips GCC
/// 12's bogus -Wrestrict at -O2 (same workaround as figures/registry.cc).
std::string key_name(int i) {
  std::string out = "key";
  out += std::to_string(i);
  return out;
}

/// N stores joined to one CoopCluster; tests drive the cluster API
/// directly (as the routed servers would) so churn stays deterministic.
struct RepairHarness {
  explicit RepairHarness(std::size_t nodes, ClusterConfig config)
      : cluster(config) {
    for (std::size_t i = 0; i < nodes; ++i) {
      stores.push_back(std::make_unique<KvsStore>(roomy_store(),
                                                  lru_factory(),
                                                  test_clock()));
      ids.push_back(cluster.join(*stores.back()));
    }
  }

  /// First live node in `key`'s ring preference order — where a routed
  /// client's write lands once its preferred transports are down.
  ClusterNodeId live_coordinator(const std::string& key) const {
    for (const ClusterNodeId id : cluster.replica_nodes(key)) {
      if (cluster.node_live(id)) return id;
    }
    for (const ClusterNodeId id : ids) {
      if (cluster.node_live(id)) return id;
    }
    throw std::runtime_error("no live node");
  }

  bool set(const std::string& key, const std::string& value,
           std::uint32_t cost = 1) {
    return cluster.set(live_coordinator(key), key, value, 0, cost);
  }

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster;
  std::vector<ClusterNodeId> ids;
};

// ---------------------------------------------------------------------------
// HintQueue
// ---------------------------------------------------------------------------

TEST(HintQueue, QueuesDedupsAndDrainsFifo) {
  HintQueue<std::string> q;
  q.set_budget(1u << 10);
  RepairCounters c;
  q.push(1, "a", 40, c);
  q.push(1, "b", 40, c);
  q.push(2, "a", 40, c);
  q.push(1, "a", 40, c);  // duplicate (target, key): silent no-op
  EXPECT_EQ(c.hints_queued, 3u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.used_bytes(), 120u);
  EXPECT_TRUE(q.contains(1, "a"));
  EXPECT_FALSE(q.contains(3, "a"));

  const std::vector<std::string> drained = q.drain(1);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], "a");  // oldest first
  EXPECT_EQ(drained[1], "b");
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.used_bytes(), 40u);
  EXPECT_TRUE(q.drain(1).empty());
  // A drained hint can be queued again.
  q.push(1, "a", 40, c);
  EXPECT_EQ(c.hints_queued, 4u);
}

TEST(HintQueue, BudgetSqueezesOldestAndDropsOversize) {
  HintQueue<std::string> q;
  q.set_budget(100);
  RepairCounters c;
  q.push(1, "a", 40, c);
  q.push(1, "b", 40, c);  // 80/100 used
  q.push(1, "d", 40, c);  // squeezes "a" out
  EXPECT_EQ(c.hints_dropped, 1u);
  EXPECT_FALSE(q.contains(1, "a"));
  EXPECT_TRUE(q.contains(1, "b"));
  EXPECT_TRUE(q.contains(1, "d"));

  q.push(1, "huge", 101, c);  // can never fit: dropped outright
  EXPECT_EQ(c.hints_dropped, 2u);
  EXPECT_EQ(q.size(), 2u);

  HintQueue<std::string> off;  // budget 0 = hinted handoff disabled
  off.push(1, "a", 10, c);
  EXPECT_EQ(c.hints_dropped, 3u);
  EXPECT_EQ(off.size(), 0u);
}

TEST(HintQueue, EraseKeyAndEraseTarget) {
  HintQueue<std::uint64_t> q;  // the simulator instantiation
  q.set_budget(1u << 10);
  RepairCounters c;
  q.push(1, 7, 40, c);
  q.push(2, 7, 40, c);
  q.push(1, 8, 40, c);
  EXPECT_EQ(q.erase_key(7), 2u);  // cluster-wide delete cancels both
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.erase_target(1), 1u);  // decommission cancels the rest
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.used_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Planners
// ---------------------------------------------------------------------------

TEST(RepairPlanners, SloppyWriteMatchesStrictListWhenAllLive) {
  const std::vector<std::uint32_t> ring{3, 1, 2, 0};
  const auto plan =
      plan_sloppy_write(ring, 2, [](std::uint32_t) { return true; });
  EXPECT_EQ(plan.targets, (std::vector<std::uint32_t>{3, 1}));
  EXPECT_TRUE(plan.hinted.empty());
}

TEST(RepairPlanners, SloppyWriteSlidesPastDeadPreferredNodes) {
  const std::vector<std::uint32_t> ring{3, 1, 2, 0};
  // Home (3) is dead: the write slides to the next live nodes and hints 3.
  const auto plan =
      plan_sloppy_write(ring, 2, [](std::uint32_t id) { return id != 3; });
  EXPECT_EQ(plan.targets, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(plan.hinted, (std::vector<std::uint32_t>{3}));
  // Both preferred nodes dead: both hinted, quorum from the tail.
  const auto worse = plan_sloppy_write(
      ring, 2, [](std::uint32_t id) { return id != 3 && id != 1; });
  EXPECT_EQ(worse.targets, (std::vector<std::uint32_t>{2, 0}));
  EXPECT_EQ(worse.hinted, (std::vector<std::uint32_t>{3, 1}));
  // Fewer live nodes than R: the plan is every live node.
  const auto degraded =
      plan_sloppy_write(ring, 3, [](std::uint32_t id) { return id == 2; });
  EXPECT_EQ(degraded.targets, (std::vector<std::uint32_t>{2}));
}

TEST(RepairPlanners, KeyRepairTargetsSkipHoldersAndDeadNodes) {
  const std::vector<std::uint32_t> ring{3, 1, 2, 0};
  // Key held live only at 2; want 2 copies; node 3 is dead.
  const auto targets = plan_key_repair_targets(
      ring, /*want=*/2, /*live_copies=*/1,
      [](std::uint32_t id) { return id != 3; },
      [](std::uint32_t id) { return id == 2; });
  EXPECT_EQ(targets, (std::vector<std::uint32_t>{1}));
  // Already at target replication: nothing to do.
  EXPECT_TRUE(plan_key_repair_targets(
                  ring, 2, 2, [](std::uint32_t) { return true; },
                  [](std::uint32_t) { return false; })
                  .empty());
}

// ---------------------------------------------------------------------------
// RepairDriver
// ---------------------------------------------------------------------------

TEST(RepairDriver, FiresTicksUntilStopped) {
  std::atomic<int> ticks{0};
  RepairDriver driver([&ticks] { ticks.fetch_add(1); },
                      std::chrono::milliseconds(2));
  while (ticks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  driver.stop();
  const int after_stop = ticks.load();
  EXPECT_EQ(driver.ticks_fired(), static_cast<std::uint64_t>(after_stop));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ticks.load(), after_stop) << "a tick fired after stop()";
  driver.stop();  // idempotent
}

// ---------------------------------------------------------------------------
// Kill / sloppy writes / hints
// ---------------------------------------------------------------------------

TEST(ClusterChurn, KillLosesDataWithoutGuardParks) {
  RepairHarness h(3, repair_config(2));
  constexpr int kKeys = 60;
  for (int i = 0; i < kKeys; ++i) ASSERT_TRUE(h.set(key_name(i), "v"));

  const ClusterNodeId victim = h.ids[1];
  h.cluster.kill_node(victim);
  h.cluster.kill_node(victim);  // idempotent
  EXPECT_FALSE(h.cluster.node_live(victim));
  EXPECT_EQ(h.stores[victim]->aggregated_stats().items, 0u)
      << "a crash must wipe the store";
  // A crash preserves NOTHING: no guard parks, no stale-drop accounting.
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.guard_parked, 0u);
  EXPECT_EQ(c.stale_directory_drops, 0u);
  // Serving as the dead node throws instead of reading the flushed store.
  EXPECT_THROW((void)h.cluster.get(victim, key_name(0)), std::runtime_error);
  EXPECT_THROW((void)h.cluster.set(victim, "k", "v", 0, 1),
               std::runtime_error);
  // The node stays on the ring: homes did not move.
  EXPECT_EQ(h.cluster.node_count(), 3u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterChurn, WritesSlideAroundDeadNodeAndQueueHints) {
  RepairHarness h(3, repair_config(2));
  const ClusterNodeId victim = h.ids[0];
  h.cluster.kill_node(victim);

  constexpr int kKeys = 90;
  std::size_t displaced = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = key_name(i);
    ASSERT_TRUE(h.set(key, "v"));
    const auto preferred = h.cluster.replica_nodes(key);
    const bool prefers_victim =
        std::find(preferred.begin(), preferred.end(), victim) !=
        preferred.end();
    if (prefers_victim) ++displaced;
    // Every write still lands R live copies; none on the dead node.
    EXPECT_EQ(h.cluster.directory_replica_count(key), 2u) << key;
    EXPECT_FALSE(h.stores[victim]->contains(key));
  }
  ASSERT_GT(displaced, 0u) << "no key preferred the dead node?";
  const ClusterCounters c = h.cluster.counters();
  // One hint per DISPLACED key; re-writing the same key dedups.
  EXPECT_EQ(c.repair.hints_queued, displaced);
  ASSERT_TRUE(h.set(key_name(0), "v2"));
  EXPECT_EQ(h.cluster.counters().repair.hints_queued, displaced);
  EXPECT_EQ(h.cluster.hint_count(), displaced);
  // Nothing is under-replicated: the sloppy quorum kept every key at R.
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterChurn, DeleteCancelsHintsAsObsolete) {
  RepairHarness h(3, repair_config(2));
  const ClusterNodeId victim = h.ids[0];
  h.cluster.kill_node(victim);
  // Find a key whose preferred set includes the victim.
  std::string hinted_key;
  for (int i = 0; i < 10'000 && hinted_key.empty(); ++i) {
    const std::string key = "probe" + std::to_string(i);
    const auto preferred = h.cluster.replica_nodes(key);
    if (std::find(preferred.begin(), preferred.end(), victim) !=
        preferred.end()) {
      hinted_key = key;
    }
  }
  ASSERT_FALSE(hinted_key.empty());
  ASSERT_TRUE(h.set(hinted_key, "v"));
  ASSERT_EQ(h.cluster.hint_count(), 1u);
  ASSERT_TRUE(h.cluster.del(h.live_coordinator(hinted_key), hinted_key));
  EXPECT_EQ(h.cluster.hint_count(), 0u);
  EXPECT_EQ(h.cluster.counters().repair.hints_obsolete, 1u);
}

// ---------------------------------------------------------------------------
// Anti-entropy sweep
// ---------------------------------------------------------------------------

TEST(ClusterSweep, ConvergesBackToFullReplicationAfterAKill) {
  RepairHarness h(3, repair_config(2));
  constexpr int kKeys = 120;
  // Write-only workload (no reads), so holder counts are EXACT: first half
  // before the crash, second half after it (sloppy writes).
  for (int i = 0; i < kKeys / 2; ++i) ASSERT_TRUE(h.set(key_name(i), "v"));
  const ClusterNodeId victim = h.ids[2];
  h.cluster.kill_node(victim);
  for (int i = kKeys / 2; i < kKeys; ++i) ASSERT_TRUE(h.set(key_name(i), "v"));

  const std::vector<std::string> before = h.cluster.under_replicated_keys();
  ASSERT_GT(before.size(), 0u) << "the crash left nothing under-replicated?";

  // Sweep to quiescence: with everything quiesced one unbounded tick must
  // finish the job, and the next tick must be a no-op.
  const std::size_t recopies = h.cluster.repair_tick();
  EXPECT_EQ(recopies, before.size())
      << "each under-replicated key needed exactly one re-copy";
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
  EXPECT_EQ(h.cluster.repair_tick(), 0u);

  // EXACT convergence: every key holds min(replication, live) = 2 live
  // copies, none on the dead node.
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = key_name(i);
    EXPECT_EQ(h.cluster.directory_replica_count(key), 2u) << key;
    EXPECT_FALSE(h.stores[victim]->contains(key)) << key;
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.repair.sweep_recopies, before.size());
  EXPECT_EQ(c.repair.sweep_failures, 0u);
  EXPECT_EQ(c.repair.sweep_ticks, 2u);
  EXPECT_EQ(c.repair.sweep_keys_scanned, before.size());
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterSweep, BoundedTicksResumeFromTheCursor) {
  RepairHarness h(3, repair_config(2));
  constexpr int kKeys = 80;
  for (int i = 0; i < kKeys; ++i) ASSERT_TRUE(h.set(key_name(i), "v"));
  h.cluster.kill_node(h.ids[0]);
  const std::size_t broken = h.cluster.under_replicated_keys().size();
  ASSERT_GT(broken, 3u);

  // max_keys=3 per tick: every tick repairs at most 3 keys and the cursor
  // carries the sweep forward, so ceil(broken/3) ticks finish the job.
  std::size_t total = 0;
  std::size_t ticks = 0;
  while (total < broken) {
    const std::size_t got = h.cluster.repair_tick(/*max_keys=*/3);
    ASSERT_LE(got, 3u);
    ASSERT_GT(got, 0u) << "a bounded tick stalled before convergence";
    total += got;
    ++ticks;
  }
  EXPECT_EQ(total, broken);
  EXPECT_EQ(ticks, (broken + 2) / 3);
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
  EXPECT_EQ(h.cluster.repair_tick(/*max_keys=*/3), 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterSweep, NothingToRepairWhenOnlyOneNodeIsLive) {
  // want = min(R, live) = 1: a lone survivor cannot re-replicate, so the
  // sweep must not spin or count failures.
  RepairHarness h(2, repair_config(2));
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(h.set(key_name(i), "v"));
  h.cluster.kill_node(h.ids[1]);
  EXPECT_EQ(h.cluster.repair_tick(), 0u);
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
  EXPECT_EQ(h.cluster.counters().repair.sweep_failures, 0u);
}

// ---------------------------------------------------------------------------
// Heal + hint replay
// ---------------------------------------------------------------------------

TEST(ClusterHeal, ReplaysEveryHintExactlyOnce) {
  RepairHarness h(3, repair_config(2));
  const ClusterNodeId victim = h.ids[1];
  h.cluster.kill_node(victim);
  constexpr int kKeys = 90;
  std::vector<std::string> hinted_keys;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = key_name(i);
    ASSERT_TRUE(h.set(key, "v"));
    const auto preferred = h.cluster.replica_nodes(key);
    if (std::find(preferred.begin(), preferred.end(), victim) !=
        preferred.end()) {
      hinted_keys.push_back(key);
    }
  }
  ASSERT_GT(hinted_keys.size(), 0u);
  const ClusterCounters before = h.cluster.counters();
  ASSERT_EQ(before.repair.hints_queued, hinted_keys.size());
  ASSERT_EQ(before.repair.hints_dropped, 0u) << "budget too small for test";

  h.cluster.heal_node(victim);
  h.cluster.heal_node(victim);  // idempotent

  // Exact replay: every hint landed, none twice, none dropped.
  const ClusterCounters after = h.cluster.counters();
  EXPECT_EQ(after.repair.hints_replayed, hinted_keys.size());
  EXPECT_EQ(after.repair.hints_obsolete, 0u);
  EXPECT_EQ(after.repair.hints_dropped, 0u);
  EXPECT_EQ(h.cluster.hint_count(), 0u);
  EXPECT_EQ(h.cluster.hint_used_bytes(), 0u);
  for (const std::string& key : hinted_keys) {
    EXPECT_TRUE(h.stores[victim]->contains(key)) << key;
  }
  // The replays restored the preferred placement: directory agrees.
  EXPECT_EQ(h.stores[victim]->aggregated_stats().items, hinted_keys.size());
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterHeal, HealThenSweepRestoresATwoNodeCluster) {
  // Two nodes, R=2: the heal replays the hints for everything written
  // while the victim was down, and the sweep then re-copies the keys the
  // CRASH itself under-replicated — together they restore R=2 everywhere.
  RepairHarness h(2, repair_config(2));
  const ClusterNodeId victim = h.ids[1];
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(h.set(key_name(i), "v"));
  h.cluster.kill_node(victim);
  for (int i = 30; i < 60; ++i) ASSERT_TRUE(h.set(key_name(i), "v"));
  const std::uint64_t queued = h.cluster.counters().repair.hints_queued;
  ASSERT_GT(queued, 0u);

  h.cluster.heal_node(victim);
  // With only 2 nodes every hinted key's surviving copy is at the other
  // node, so the heal itself replays everything; a subsequent sweep then
  // re-copies the keys the CRASH under-replicated (the first 30's copies
  // died with the victim).
  const std::size_t swept = h.cluster.repair_tick();
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.repair.hints_replayed + c.repair.hints_obsolete, queued);
  EXPECT_GT(swept, 0u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(h.cluster.directory_replica_count(key_name(i)), 2u)
        << key_name(i);
  }
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterHeal, HintWithNoSurvivingSourceRetiresAsObsolete) {
  // A hint is a (target, key) pointer, not a value: if every live holder
  // of the key is gone by drain time, the hint retires as obsolete rather
  // than resurrecting bytes from the flushed store.
  RepairHarness h(3, repair_config(2));
  const ClusterNodeId victim = h.ids[0];
  h.cluster.kill_node(victim);
  std::string hinted_key;
  for (int i = 0; i < 10'000 && hinted_key.empty(); ++i) {
    const std::string key = "probe" + std::to_string(i);
    const auto preferred = h.cluster.replica_nodes(key);
    if (std::find(preferred.begin(), preferred.end(), victim) !=
        preferred.end()) {
      hinted_key = key;
    }
  }
  ASSERT_FALSE(hinted_key.empty());
  ASSERT_TRUE(h.set(hinted_key, "v"));
  ASSERT_EQ(h.cluster.hint_count(), 1u);
  // Crash both surviving holders: the key's data is gone for good.
  h.cluster.kill_node(h.ids[1]);
  h.cluster.kill_node(h.ids[2]);
  h.cluster.heal_node(victim);
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.repair.hints_replayed, 0u);
  EXPECT_EQ(c.repair.hints_obsolete, 1u);
  EXPECT_FALSE(h.stores[victim]->contains(hinted_key));
}

TEST(ClusterHeal, TinyBudgetDropsOldestHintsButReplaysTheRest) {
  ClusterConfig config = repair_config(2);
  // Room for roughly two hints (32 overhead + ~5 key bytes each).
  config.repair.hint_budget_bytes = 80;
  RepairHarness h(3, config);
  const ClusterNodeId victim = h.ids[0];
  h.cluster.kill_node(victim);
  std::vector<std::string> displaced;
  for (int i = 0; i < 200 && displaced.size() < 6; ++i) {
    const std::string key = key_name(i);
    const auto preferred = h.cluster.replica_nodes(key);
    if (std::find(preferred.begin(), preferred.end(), victim) ==
        preferred.end()) {
      continue;
    }
    ASSERT_TRUE(h.set(key, "v"));
    displaced.push_back(key);
  }
  ASSERT_EQ(displaced.size(), 6u);
  const ClusterCounters mid = h.cluster.counters();
  EXPECT_GT(mid.repair.hints_dropped, 0u) << "the budget never squeezed";
  EXPECT_LE(h.cluster.hint_used_bytes(), 80u);
  const std::size_t retained = h.cluster.hint_count();

  h.cluster.heal_node(victim);
  const ClusterCounters after = h.cluster.counters();
  EXPECT_EQ(after.repair.hints_replayed, retained)
      << "the surviving (newest) hints must all replay";
  // The dropped keys are still repairable by the sweep.
  (void)h.cluster.repair_tick();
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
}

// ---------------------------------------------------------------------------
// Read repair
// ---------------------------------------------------------------------------

TEST(ClusterReadRepair, FailoverReadReRegistersAtRecoveredHome) {
  RepairHarness h(3, repair_config(2));
  // Find a key homed at node 0 (so its replica lives elsewhere).
  std::string key;
  for (int i = 0; i < 10'000 && key.empty(); ++i) {
    const std::string probe = "probe" + std::to_string(i);
    if (h.cluster.home_node(probe) == h.ids[0]) key = probe;
  }
  ASSERT_FALSE(key.empty());
  ASSERT_TRUE(h.set(key, "payload", /*cost=*/7));
  const ClusterNodeId home = h.ids[0];
  const ClusterNodeId replica = h.cluster.replica_nodes(key)[1];

  // Crash the home and bring it straight back: live again, but empty —
  // the stale window where the client still reads the replica.
  h.cluster.kill_node(home);
  h.cluster.heal_node(home);
  ASSERT_FALSE(h.stores[home]->contains(key));

  const GetResult r = h.cluster.get(replica, key);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, "payload");
  // The read repaired the home: value, cost and directory all restored.
  EXPECT_EQ(h.cluster.counters().repair.read_repairs, 1u);
  EXPECT_TRUE(h.stores[home]->contains(key));
  EXPECT_EQ(h.cluster.directory_replica_count(key), 2u);
  const GetResult repaired = h.cluster.get(home, key);
  EXPECT_TRUE(repaired.hit);
  EXPECT_EQ(repaired.cost, 7u);
  // A second failover read finds the home already repaired: no double fire.
  (void)h.cluster.get(replica, key);
  EXPECT_EQ(h.cluster.counters().repair.read_repairs, 1u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterReadRepair, DoesNotFireWhenDisabledOrHomeDead) {
  ClusterConfig config = repair_config(2);
  config.repair.read_repair = false;
  RepairHarness h(3, config);
  std::string key;
  for (int i = 0; i < 10'000 && key.empty(); ++i) {
    const std::string probe = "probe" + std::to_string(i);
    if (h.cluster.home_node(probe) == h.ids[0]) key = probe;
  }
  ASSERT_FALSE(key.empty());
  ASSERT_TRUE(h.set(key, "v"));
  const ClusterNodeId replica = h.cluster.replica_nodes(key)[1];
  h.cluster.kill_node(h.ids[0]);
  h.cluster.heal_node(h.ids[0]);
  EXPECT_TRUE(h.cluster.get(replica, key).hit);
  EXPECT_EQ(h.cluster.counters().repair.read_repairs, 0u);
  EXPECT_FALSE(h.stores[h.ids[0]]->contains(key));
}

// ---------------------------------------------------------------------------
// End-to-end: routed churn through ClusterClient
// ---------------------------------------------------------------------------

/// A transport whose node can be killed AND revived — the client-side
/// (transport) view of a crash, independent of the cluster-side kill.
class RevivableTransport final : public KvsApi {
 public:
  explicit RevivableTransport(KvsApi& inner) : inner_(inner) {}
  KvsBatchResult execute(const KvsBatch& batch) override {
    if (dead_.load()) {
      throw std::runtime_error("RevivableTransport: node is down");
    }
    return inner_.execute(batch);
  }
  void kill() { dead_.store(true); }
  void revive() { dead_.store(false); }

 private:
  KvsApi& inner_;
  std::atomic<bool> dead_{false};
};

TEST(ClusterChurnEndToEnd, KillSweepHealKeepsEveryKeyServable) {
  // The full cycle through a routed client: crash one of 3 nodes
  // mid-workload, serve through failover, sweep back to R=2, heal the
  // node, replay its hints, revive the transport — and every key written
  // at ANY point must still be a hit with no key left under-replicated.
  RepairHarness h(3, repair_config(2));
  ClusterClient router(repair_config().virtual_nodes, /*parallel=*/false,
                       /*replication=*/2);
  std::vector<std::unique_ptr<CoopNodeClient>> node_clients;
  std::vector<std::unique_ptr<RevivableTransport>> transports;
  for (const ClusterNodeId id : h.ids) {
    node_clients.push_back(std::make_unique<CoopNodeClient>(h.cluster, id));
    transports.push_back(
        std::make_unique<RevivableTransport>(*node_clients.back()));
    router.add_node(id, *transports.back());
  }
  constexpr int kKeys = 150;
  const ClusterNodeId victim = h.ids[1];
  bool victim_transport_dead = false;
  const auto routed_set = [&](const std::string& key) {
    // Mutations do not fail over; a routed client whose home TRANSPORT is
    // down (regardless of whether the node behind it healed yet) writes
    // through the next reachable node — the sloppy quorum handles
    // placement. Mirror that here.
    const ClusterNodeId home = h.cluster.home_node(key);
    if (home != victim || !victim_transport_dead) {
      KvsBatch batch;
      batch.add_set(key, "v", 0, 1);
      ASSERT_TRUE(router.execute(batch)[0].ok) << key;
    } else {
      // Coordinate at the first REACHABLE live replica instead.
      for (const ClusterNodeId id : h.cluster.replica_nodes(key)) {
        if (id != victim && h.cluster.node_live(id)) {
          ASSERT_TRUE(h.cluster.set(id, key, "v", 0, 1)) << key;
          return;
        }
      }
      FAIL() << "no reachable coordinator for " << key;
    }
  };

  for (int i = 0; i < kKeys; ++i) {
    if (i == kKeys / 3) {
      transports[1]->kill();
      victim_transport_dead = true;
      h.cluster.kill_node(victim);
    }
    if (i == 2 * kKeys / 3) {
      // Heal mid-workload; the transport stays dead a while longer (the
      // stale window), so failover reads below exercise read repair.
      h.cluster.heal_node(victim);
    }
    routed_set(key_name(i));
    // Interleaved read of an older key: must always hit, via failover
    // when its home is the victim.
    KvsBatch get;
    get.add_get(key_name(i / 2));
    EXPECT_TRUE(router.execute(get)[0].ok) << "lost " << key_name(i / 2);
    if (i == kKeys / 2) {
      EXPECT_GT(h.cluster.repair_tick(), 0u);
    }
  }
  transports[1]->revive();
  victim_transport_dead = false;

  // Quiesce: sweep until nothing is under-replicated.
  while (h.cluster.repair_tick() > 0) {
  }
  EXPECT_TRUE(h.cluster.under_replicated_keys().empty());
  const ClusterCounters c = h.cluster.counters();
  EXPECT_GT(router.failover_reads(), 0u);
  EXPECT_GT(c.repair.hints_queued, 0u);
  EXPECT_GT(c.repair.sweep_recopies, 0u);
  EXPECT_EQ(c.repair.hints_replayed + c.repair.hints_obsolete,
            c.repair.hints_queued - c.repair.hints_dropped -
                h.cluster.hint_count());
  EXPECT_EQ(c.misses, 0u) << "churn lost a written key";
  // Every key is a hit from the fully healed cluster, at full replication.
  for (int i = 0; i < kKeys; ++i) {
    KvsBatch get;
    get.add_get(key_name(i));
    EXPECT_TRUE(router.execute(get)[0].ok) << key_name(i);
    // At LEAST R copies — a key can exceed R when a sloppy write landed
    // off-prefix and the hint replay later restored the preferred node.
    EXPECT_GE(h.cluster.directory_replica_count(key_name(i)), 2u);
  }
  EXPECT_TRUE(h.cluster.check_invariants());
}

}  // namespace
}  // namespace camp::kvs
