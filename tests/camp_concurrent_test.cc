// Tests for the thread-safe CAMP engine (core/concurrent_camp.h): exact
// single-threaded equivalence with BasicCampCache, structural invariants
// under multi-threaded stress, and the Section 4.1 contention-avoidance
// behaviours (shared fast path, physical sub-queues).
#include "core/concurrent_camp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/camp.h"
#include "util/rng.h"

namespace camp::core {
namespace {

using policy::Key;

ConcurrentCampConfig mt_cfg(std::uint64_t cap, int precision = 5,
                            std::uint32_t physical = 1) {
  ConcurrentCampConfig c;
  c.capacity_bytes = cap;
  c.precision = precision;
  c.physical_queues = physical;
  return c;
}

TEST(ConcurrentCamp, RejectsBadConfig) {
  EXPECT_THROW(ConcurrentCampCache{ConcurrentCampConfig{}},
               std::invalid_argument);
  EXPECT_THROW(ConcurrentCampCache{mt_cfg(100, 0)}, std::invalid_argument);
  EXPECT_THROW(ConcurrentCampCache{mt_cfg(100, 5, 3)},
               std::invalid_argument);  // not a power of two
  EXPECT_THROW(ConcurrentCampCache{mt_cfg(100, 5, 512)},
               std::invalid_argument);  // above the cap
  ConcurrentCampConfig bad_stripes = mt_cfg(100);
  bad_stripes.index_stripes = 12;
  EXPECT_THROW(ConcurrentCampCache{bad_stripes}, std::invalid_argument);
}

TEST(ConcurrentCamp, BasicHitMissEvict) {
  ConcurrentCampCache cache(mt_cfg(300));
  EXPECT_FALSE(cache.get(1));
  EXPECT_TRUE(cache.put(1, 100, 10));
  EXPECT_TRUE(cache.get(1));
  EXPECT_TRUE(cache.contains(1));
  cache.put(2, 100, 1000);
  cache.put(3, 100, 1000);
  cache.put(4, 100, 1000);  // evicts the cheapest pair, key 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.item_count(), 3u);
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ConcurrentCamp, NameEncodesConfig) {
  EXPECT_EQ(ConcurrentCampCache(mt_cfg(100)).name(), "camp-mt(p=5)");
  EXPECT_EQ(ConcurrentCampCache(mt_cfg(100, 64)).name(), "camp-mt(p=inf)");
  EXPECT_EQ(ConcurrentCampCache(mt_cfg(100, 5, 4)).name(),
            "camp-mt(p=5,q=4)");
}

// ---------------------------------------------------------------------------
// Single-threaded equivalence with the serial engine
// ---------------------------------------------------------------------------

struct SerialDriver {
  // Runs the same randomized workload against a serial and a concurrent
  // instance and compares the externally observable streams.
  static void compare(int precision, std::uint32_t physical,
                      std::uint64_t seed) {
    const std::uint64_t cap = 16 * 1024;
    CampConfig serial_cfg;
    serial_cfg.capacity_bytes = cap;
    serial_cfg.precision = precision;
    CampCache serial(serial_cfg);
    ConcurrentCampCache concurrent(mt_cfg(cap, precision, physical));

    std::vector<std::pair<Key, std::uint64_t>> serial_evictions;
    std::vector<std::pair<Key, std::uint64_t>> concurrent_evictions;
    serial.set_eviction_listener([&](Key k, std::uint64_t s) {
      serial_evictions.emplace_back(k, s);
    });
    concurrent.set_eviction_listener([&](Key k, std::uint64_t s) {
      concurrent_evictions.emplace_back(k, s);
    });

    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 20'000; ++i) {
      const Key k = rng.below(400);
      const auto dice = rng.below(100);
      if (dice < 80) {
        const bool a = serial.get(k);
        const bool b = concurrent.get(k);
        ASSERT_EQ(a, b) << "hit/miss diverged at op " << i;
        if (!a) {
          const std::uint64_t size = 16 + rng.below(700);
          const std::uint64_t cost = 1 + rng.below(10'000);
          ASSERT_EQ(serial.put(k, size, cost), concurrent.put(k, size, cost));
        }
      } else if (dice < 90) {
        const std::uint64_t size = 16 + rng.below(700);
        const std::uint64_t cost = 1 + rng.below(10'000);
        ASSERT_EQ(serial.put(k, size, cost), concurrent.put(k, size, cost));
      } else {
        serial.erase(k);
        concurrent.erase(k);
      }
      ASSERT_EQ(serial.used_bytes(), concurrent.used_bytes()) << "op " << i;
      ASSERT_EQ(serial_evictions.size(), concurrent_evictions.size())
          << "op " << i;
    }
    ASSERT_EQ(serial_evictions, concurrent_evictions)
        << "eviction sequences diverged (seed " << seed << ")";
    ASSERT_EQ(serial.item_count(), concurrent.item_count());
    ASSERT_EQ(serial.inflation(), concurrent.inflation());
    ASSERT_TRUE(concurrent.check_invariants());
  }
};

class ConcurrentCampEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(ConcurrentCampEquivalence, MatchesSerialDecisionForDecision) {
  const auto [precision, physical] = GetParam();
  for (const std::uint64_t seed : {7ull, 99ull, 2024ull}) {
    SerialDriver::compare(precision, physical, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionAndPartitioning, ConcurrentCampEquivalence,
    ::testing::Combine(::testing::Values(1, 5, 64),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Multi-threaded stress
// ---------------------------------------------------------------------------

class ConcurrentCampStress : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ConcurrentCampStress, InvariantsHoldAfterParallelChurn) {
  ConcurrentCampCache cache(mt_cfg(64 * 1024, 5, GetParam()));
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 30'000;
  std::atomic<std::uint64_t> listener_calls{0};
  cache.set_eviction_listener(
      [&](Key, std::uint64_t) { listener_calls.fetch_add(1); });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = rng.below(2'000);
        const auto dice = rng.below(100);
        if (dice < 85) {
          if (!cache.get(k)) {
            cache.put(k, 16 + rng.below(900), 1 + rng.below(10'000));
          }
        } else if (dice < 95) {
          cache.put(k, 16 + rng.below(900), 1 + rng.below(10'000));
        } else {
          cache.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_TRUE(cache.check_invariants());
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  const auto& stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.gets);
  EXPECT_EQ(stats.evictions, listener_calls.load());
  const auto intro = cache.introspect();
  EXPECT_GT(intro.shared_fast_hits, 0u)
      << "hit path never took the lock-free/shared route";
}

INSTANTIATE_TEST_SUITE_P(PhysicalQueues, ConcurrentCampStress,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param);
                         });

TEST(ConcurrentCamp, ParallelReadersOnDistinctQueuesProceed) {
  // Two keys with wildly different cost-to-size ratios live in different
  // LRU queues; hammering them from two threads must complete and the vast
  // majority of hits should use the shared fast path (Section 4.1 feature 2).
  ConcurrentCampCache cache(mt_cfg(1 << 20));
  ASSERT_TRUE(cache.put(1, 1000, 1));
  ASSERT_TRUE(cache.put(2, 10, 10'000));
  // A third pair keeps the heap minimum away from both hot queues so the
  // sole-entry fast path never needs the exclusive side.
  ASSERT_TRUE(cache.put(3, 1000, 1));

  constexpr int kHits = 50'000;
  std::thread a([&] {
    for (int i = 0; i < kHits; ++i) ASSERT_TRUE(cache.get(1));
  });
  std::thread b([&] {
    for (int i = 0; i < kHits; ++i) ASSERT_TRUE(cache.get(2));
  });
  a.join();
  b.join();
  const auto intro = cache.introspect();
  EXPECT_EQ(cache.stats().hits, 2u * kHits);
  EXPECT_GT(intro.shared_fast_hits, 2u * kHits * 9 / 10);
  EXPECT_TRUE(cache.check_invariants());
}

TEST(ConcurrentCamp, EvictOneDrainsToEmpty) {
  ConcurrentCampCache cache(mt_cfg(4096));
  for (Key k = 0; k < 20; ++k) cache.put(k, 100, 1 + k);
  std::size_t evicted = 0;
  while (cache.evict_one()) ++evicted;
  EXPECT_EQ(evicted, 20u);
  EXPECT_EQ(cache.item_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.evict_one());
}

TEST(ConcurrentCamp, OverwriteUpdatesAccounting) {
  ConcurrentCampCache cache(mt_cfg(4096));
  cache.put(1, 100, 10);
  cache.put(1, 300, 20);
  EXPECT_EQ(cache.used_bytes(), 300u);
  EXPECT_EQ(cache.item_count(), 1u);
  EXPECT_TRUE(cache.check_invariants());
}

TEST(ConcurrentCamp, RejectsOversizedAndZero) {
  ConcurrentCampCache cache(mt_cfg(100));
  EXPECT_FALSE(cache.put(1, 0, 10));
  EXPECT_FALSE(cache.put(1, 101, 10));
  EXPECT_EQ(cache.stats().rejected_puts, 2u);
  EXPECT_EQ(cache.item_count(), 0u);
}

TEST(ConcurrentCamp, IntrospectionTracksQueues) {
  ConcurrentCampCache cache(mt_cfg(1 << 16, 64));
  cache.put(1, 100, 100);    // ratio 100
  cache.put(2, 100, 10000);  // ratio 10000
  cache.put(3, 100, 100);    // joins key 1's queue
  const auto intro = cache.introspect();
  EXPECT_EQ(intro.nonempty_queues, 2u);
  EXPECT_EQ(intro.queues_created, 2u);
  EXPECT_EQ(intro.queues_destroyed, 0u);
}

TEST(ConcurrentCamp, ConcurrentStatsReadersDoNotRace) {
  // Regression: stats() used to fill ONE shared snapshot field under a
  // dedicated mutex and return a reference to it, so a reader could observe
  // another reader's half-written refill after its own lock was released.
  // It now folds the atomic counters into a thread-local per-instance
  // buffer (the ShardedCache::stats() contract). Run under TSan in CI.
  ConcurrentCampCache cache(mt_cfg(1u << 20));
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kOps = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&cache, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 7);
      for (int i = 0; i < kOps; ++i) {
        const Key k = rng.below(500);
        if (!cache.get(k)) cache.put(k, 64, 1);
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < kOps; ++i) {
        const policy::CacheStats& s = cache.stats();
        EXPECT_LE(s.hits, s.gets);  // monotone on a coherent snapshot
        const policy::CacheStats owned = cache.stats_snapshot();
        EXPECT_LE(owned.hits, owned.gets);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.stats_snapshot().gets,
            static_cast<std::uint64_t>(kWriters) * kOps);
}

TEST(ConcurrentCamp, StatsReferencesFromTwoInstancesDoNotAlias) {
  ConcurrentCampCache a(mt_cfg(10'000));
  ConcurrentCampCache b(mt_cfg(10'000));
  a.put(1, 100, 1);
  (void)a.get(1);
  (void)a.get(2);  // a: 2 gets
  (void)b.get(7);  // b: 1 get
  const policy::CacheStats& sa = a.stats();
  const policy::CacheStats& sb = b.stats();
  EXPECT_NE(&sa, &sb) << "per-instance buffers must not alias";
  EXPECT_EQ(sa.gets, 2u) << "a's snapshot must survive b.stats()";
  EXPECT_EQ(sb.gets, 1u);
}

TEST(ConcurrentCamp, PhysicalQueuesSplitHotRatios) {
  // With q=8, pairs sharing one rounded ratio spread across up to 8
  // physical queues (more heap nodes, less lock contention).
  ConcurrentCampCache cache(mt_cfg(1 << 20, 5, 8));
  for (Key k = 0; k < 64; ++k) cache.put(k, 100, 100);  // one logical ratio
  const auto intro = cache.introspect();
  EXPECT_GT(intro.nonempty_queues, 1u);
  EXPECT_LE(intro.nonempty_queues, 8u);
  EXPECT_TRUE(cache.check_invariants());
}

}  // namespace
}  // namespace camp::core
