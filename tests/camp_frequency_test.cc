// CAMP-F: the frequency-aware extension (GDSF scoring on CAMP's multi-
// queue machinery). The headline property mirrors the paper's central
// CAMP ≡ GDS claim one level up: at precision infinity, CAMP-F makes
// exactly the decisions of GDSF with LRU tie-breaks.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "core/camp.h"
#include "policy/gdsf.h"
#include "util/rng.h"

namespace camp::core {
namespace {

using policy::Key;

CampConfig f_cfg(std::uint64_t cap, int precision = 5) {
  CampConfig c;
  c.capacity_bytes = cap;
  c.precision = precision;
  c.frequency_aware = true;
  return c;
}

TEST(CampF, NameAndFactory) {
  EXPECT_EQ(CampCache(f_cfg(100)).name(), "camp-f(p=5)");
  EXPECT_EQ(CampCache(f_cfg(100, 64)).name(), "camp-f(p=inf)");
  CampConfig plain;
  plain.capacity_bytes = 100;
  EXPECT_EQ(CampCache(plain).name(), "camp(p=5)");
}

TEST(CampF, FrequencyCountsHits) {
  CampCache cache(f_cfg(1000));
  cache.put(1, 100, 10);
  EXPECT_EQ(cache.frequency_of(1), 1u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(cache.get(1));
  EXPECT_EQ(cache.frequency_of(1), 5u);
  cache.put(1, 100, 10);  // overwrite resets
  EXPECT_EQ(cache.frequency_of(1), 1u);
}

TEST(CampF, PlainCampIgnoresFrequency) {
  CampConfig plain;
  plain.capacity_bytes = 1000;
  CampCache cache(plain);
  cache.put(1, 100, 10);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(cache.get(1));
  EXPECT_EQ(cache.frequency_of(1), 1u) << "freq must stay untouched";
}

TEST(CampF, PopularCheapBeatsUnpopularExpensive) {
  // The GDSF scenario CAMP cannot express: hits accumulate, so a popular
  // cheap pair outranks a moderately expensive untouched one.
  CampCache cache(f_cfg(300, util::kPrecisionInfinity));
  cache.put(1, 100, 10);
  cache.put(2, 100, 50);
  cache.put(3, 100, 20);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(cache.get(1));
  cache.put(4, 100, 1000);  // evicts 3
  cache.put(5, 100, 1000);  // the discriminating eviction: 2 goes, 1 stays
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(CampF, HitsMigrateAcrossQueues) {
  // Rising frequency moves a pair to higher-ratio queues; the queue for
  // its old ratio disappears when it empties.
  CampCache cache(f_cfg(1 << 16, util::kPrecisionInfinity));
  cache.put(1, 100, 100);
  const std::uint64_t ratio_before = cache.ratio_of(1);
  ASSERT_TRUE(cache.get(1));
  EXPECT_GT(cache.ratio_of(1), ratio_before) << "freq must raise the ratio";
  EXPECT_TRUE(cache.check_invariants());
}

TEST(CampF, RoundingStillBoundsQueues) {
  // Even with frequencies fanning out the ratio set, precision-1 rounding
  // keeps the queue count tiny on a churning workload.
  CampCache cache(f_cfg(32'000, 1));
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 30'000; ++i) {
    const Key k = rng.below(400);
    if (!cache.get(k)) cache.put(k, 16 + rng.below(500), 1 + rng.below(9999));
    if (i % 5'000 == 4'999) {
      ASSERT_TRUE(cache.check_invariants());
    }
  }
  const auto intro = cache.introspect();
  EXPECT_LE(intro.nonempty_queues, 64u)
      << "p=1 must coarsen freq*cost/size into few queues";
}

// ---------------------------------------------------------------------------
// The equivalence property: CAMP-F(p=inf) == GDSF(lru tie-break)
// ---------------------------------------------------------------------------

class CampFGdsfEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CampFGdsfEquivalence, IdenticalDecisionsAtInfinitePrecision) {
  const std::uint64_t cap = 24'000;
  CampCache camp_f(f_cfg(cap, util::kPrecisionInfinity));
  policy::GdsfConfig gdsf_cfg;
  gdsf_cfg.capacity_bytes = cap;
  gdsf_cfg.lru_tie_break = true;
  policy::GdsfCache gdsf(gdsf_cfg);

  std::vector<std::pair<Key, std::uint64_t>> camp_evictions, gdsf_evictions;
  camp_f.set_eviction_listener([&](Key k, std::uint64_t s) {
    camp_evictions.emplace_back(k, s);
  });
  gdsf.set_eviction_listener([&](Key k, std::uint64_t s) {
    gdsf_evictions.emplace_back(k, s);
  });

  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 25'000; ++i) {
    const Key k = rng.below(500);
    const auto dice = rng.below(100);
    if (dice < 85) {
      const bool a = camp_f.get(k);
      const bool b = gdsf.get(k);
      ASSERT_EQ(a, b) << "hit/miss diverged at op " << i;
      if (!a) {
        const std::uint64_t size = 16 + rng.below(600);
        const std::uint64_t cost = 1 + rng.below(10'000);
        camp_f.put(k, size, cost);
        gdsf.put(k, size, cost);
      }
    } else if (dice < 95) {
      const std::uint64_t size = 16 + rng.below(600);
      const std::uint64_t cost = 1 + rng.below(10'000);
      camp_f.put(k, size, cost);
      gdsf.put(k, size, cost);
    } else {
      camp_f.erase(k);
      gdsf.erase(k);
    }
    ASSERT_EQ(camp_f.used_bytes(), gdsf.used_bytes()) << "op " << i;
    ASSERT_EQ(camp_evictions.size(), gdsf_evictions.size()) << "op " << i;
  }
  ASSERT_EQ(camp_evictions, gdsf_evictions)
      << "eviction sequences diverged (seed " << GetParam() << ")";
  EXPECT_EQ(camp_f.item_count(), gdsf.item_count());
  EXPECT_EQ(camp_f.inflation(), gdsf.inflation());
  EXPECT_TRUE(camp_f.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampFGdsfEquivalence,
                         ::testing::Values(11ull, 47ull, 2014ull, 9999ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(CampF, LowPrecisionStaysCloseToGdsf) {
  // With rounding on, decisions may differ but quality must stay close:
  // cost-miss within 10% (relative) of exact GDSF on a skewed workload.
  const std::uint64_t cap = 20'000;
  CampCache camp_f(f_cfg(cap, 5));
  policy::GdsfConfig gdsf_cfg;
  gdsf_cfg.capacity_bytes = cap;
  policy::GdsfCache gdsf(gdsf_cfg);

  util::Xoshiro256 rng(5);
  std::unordered_set<Key> seen;
  std::uint64_t cost_total = 0, camp_missed = 0, gdsf_missed = 0;
  for (int i = 0; i < 60'000; ++i) {
    const double u = rng.uniform();
    const Key k = static_cast<Key>(u * u * 600);
    const std::uint64_t size = 50 + (k % 300);
    const std::uint64_t cost = (k % 3 == 0) ? 10'000 : 1 + (k % 100);
    const bool cold = seen.insert(k).second;
    if (!cold) cost_total += cost;
    if (!camp_f.get(k)) {
      if (!cold) camp_missed += cost;
      camp_f.put(k, size, cost);
    }
    if (!gdsf.get(k)) {
      if (!cold) gdsf_missed += cost;
      gdsf.put(k, size, cost);
    }
  }
  ASSERT_GT(cost_total, 0u);
  const double camp_ratio =
      static_cast<double>(camp_missed) / static_cast<double>(cost_total);
  const double gdsf_ratio =
      static_cast<double>(gdsf_missed) / static_cast<double>(cost_total);
  EXPECT_LT(std::abs(camp_ratio - gdsf_ratio),
            0.10 * gdsf_ratio + 1e-9)
      << "camp-f " << camp_ratio << " vs gdsf " << gdsf_ratio;
}

}  // namespace
}  // namespace camp::core
