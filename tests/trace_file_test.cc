#include "trace/trace_file.h"

#include <gtest/gtest.h>

#include <sstream>

namespace camp::trace {
namespace {

std::vector<TraceRecord> sample_records() {
  return {
      {1, 100, 1, 0},
      {0xffffffffffffffffull, 0xffffffffu, 0xffffffffu, 7},
      {42, 2048, 10'000, 3},
  };
}

TEST(TraceFile, BinaryRoundTrip) {
  const auto records = sample_records();
  std::stringstream buf;
  write_binary(buf, records);
  const auto loaded = read_binary(buf);
  EXPECT_EQ(loaded, records);
}

TEST(TraceFile, BinaryEmptyTrace) {
  std::stringstream buf;
  write_binary(buf, {});
  EXPECT_TRUE(read_binary(buf).empty());
}

TEST(TraceFile, BinaryBadMagic) {
  std::stringstream buf("NOTATRACEFILE");
  EXPECT_THROW(read_binary(buf), std::runtime_error);
}

TEST(TraceFile, BinaryTruncated) {
  const auto records = sample_records();
  std::stringstream buf;
  write_binary(buf, records);
  std::string data = buf.str();
  data.resize(data.size() - 5);
  std::stringstream cut(data);
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

TEST(TraceFile, CsvRoundTrip) {
  const auto records = sample_records();
  std::stringstream buf;
  write_csv(buf, records);
  const auto loaded = read_csv(buf);
  EXPECT_EQ(loaded, records);
}

TEST(TraceFile, CsvHeaderRequired) {
  std::stringstream buf("1,2,3,4\n");
  EXPECT_THROW(read_csv(buf), std::runtime_error);
}

TEST(TraceFile, CsvMalformedRow) {
  std::stringstream buf("key,size,cost,trace_id\n1,2\n");
  EXPECT_THROW(read_csv(buf), std::runtime_error);
}

TEST(TraceFile, FileRoundTrip) {
  const auto records = sample_records();
  const std::string path = ::testing::TempDir() + "/camp_trace_test.bin";
  write_binary_file(path, records);
  EXPECT_EQ(read_binary_file(path), records);
}

TEST(TraceFile, MissingFileThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/camp.bin"), std::runtime_error);
}

}  // namespace
}  // namespace camp::trace
