// In-process tests for the networked cooperative cluster (kvs/cluster.h +
// kvs/cluster_client.h): batch routing and stitching, the four-step coop
// read path (local / peer fetch / guard / miss), membership churn, the
// value-carrying last-replica guard, and deterministic counters.
#include "kvs/cluster.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kvs/cluster_client.h"
#include "policy/policy_factory.h"
#include "util/clock.h"

namespace camp::kvs {
namespace {

const util::ManualClock& test_clock() {
  static const util::ManualClock clock;
  return clock;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) { return policy::make_policy("lru", cap); };
}

/// One 64 KiB slab per node; ~4 KiB values land in a 4546-byte chunk class,
/// so the policy (85% fill) caps a node at 12 resident pairs — small enough
/// to force evictions on demand.
StoreConfig small_store() {
  StoreConfig config;
  config.shards = 1;
  config.engine.slab.slab_size_bytes = 64u << 10;
  config.engine.slab.memory_limit_bytes = 64u << 10;
  return config;
}

ClusterConfig guarded_config(std::uint64_t guard_bytes = 1u << 20,
                             std::uint64_t lease = 10'000) {
  ClusterConfig config;
  config.guard_capacity_bytes = guard_bytes;
  config.guard_lease_requests = lease;
  return config;
}

std::string value_of(std::size_t bytes, char fill) {
  return std::string(bytes, fill);
}

/// A cluster harness: N stores joined to one CoopCluster, fronted by
/// CoopNodeClients and a sequential ClusterClient.
struct Harness {
  explicit Harness(std::size_t nodes,
                   ClusterConfig config = guarded_config(),
                   StoreConfig store_config = small_store())
      : cluster(config), router(config.virtual_nodes, /*parallel=*/false) {
    for (std::size_t i = 0; i < nodes; ++i) add_node(store_config);
  }

  ClusterNodeId add_node(StoreConfig store_config = small_store()) {
    stores.push_back(std::make_unique<KvsStore>(store_config, lru_factory(),
                                                test_clock()));
    const ClusterNodeId id = cluster.join(*stores.back());
    node_clients.push_back(std::make_unique<CoopNodeClient>(cluster, id));
    router.add_node(id, *node_clients.back());
    ids.push_back(id);
    return id;
  }

  bool set(const std::string& key, const std::string& value,
           std::uint32_t cost = 1) {
    KvsBatch batch;
    batch.add_set(key, value, 0, cost);
    return router.execute(batch)[0].ok;
  }

  GetResult get(const std::string& key) {
    KvsBatch batch;
    batch.add_get(key);
    const KvsBatchResult r = router.execute(batch);
    return r[0].to_get_result();
  }

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster;
  std::vector<std::unique_ptr<CoopNodeClient>> node_clients;
  ClusterClient router;
  std::vector<ClusterNodeId> ids;
};

TEST(ClusterConfigTest, Validates) {
  ClusterConfig bad;
  bad.virtual_nodes = 0;
  EXPECT_THROW(CoopCluster{bad}, std::invalid_argument);
  bad = guarded_config();
  bad.guard_lease_requests = 0;
  EXPECT_THROW(CoopCluster{bad}, std::invalid_argument);
  bad.preserve_last_replica = false;  // lease irrelevant when guard is off
  EXPECT_NO_THROW(CoopCluster{bad});
}

TEST(ClusterClientTest, ThrowsWithoutNodes) {
  ClusterClient router(64, false);
  KvsBatch batch;
  batch.add_get("k");
  EXPECT_THROW((void)router.execute(batch), std::logic_error);
}

TEST(ClusterClientTest, AgreesWithClusterOnPlacement) {
  Harness h(4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(h.router.home_node(key), h.cluster.home_node(key));
  }
}

TEST(ClusterClientTest, StitchesMixedBatchIntoOpOrder) {
  Harness h(4);
  ASSERT_TRUE(h.set("a", "va"));
  ASSERT_TRUE(h.set("b", "vb"));
  KvsBatch batch;
  batch.add_get("a")
      .add_get("missing")
      .add_set("c", "vc", 0, 2)
      .add_get("b")
      .add_del("a")
      .add_get("c");
  const KvsBatchResult r = h.router.execute(batch);
  ASSERT_EQ(r.size(), 6u);
  EXPECT_TRUE(r[0].ok);
  EXPECT_EQ(r[0].value, "va");
  EXPECT_FALSE(r[1].ok);
  EXPECT_TRUE(r[2].ok);
  EXPECT_TRUE(r[3].ok);
  EXPECT_EQ(r[3].value, "vb");
  EXPECT_TRUE(r[4].ok);   // delete of a resident key
  EXPECT_TRUE(r[5].ok);   // the set earlier in the SAME batch is visible
  EXPECT_EQ(r[5].value, "vc");
  EXPECT_FALSE(h.get("a").hit);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, SetsLandOnTheirHomeNode) {
  Harness h(4);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(h.set(key, "v"));
    const ClusterNodeId home = h.cluster.home_node(key);
    std::size_t holders = 0;
    for (const auto& store : h.stores) holders += store->contains(key);
    EXPECT_EQ(holders, 1u);
    EXPECT_EQ(h.stores[home]->contains(key), true)
        << "key " << key << " not at home node " << home;
  }
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, RemoteHitAfterJoinPromotesToNewHome) {
  Harness h(2);
  // 200-byte values: every key's footprint lands in ONE slab class
  // regardless of key length, so the single-slab store never reassigns.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.set("key" + std::to_string(i), value_of(200, 'v'), 7));
  }
  const ClusterNodeId added = h.add_node();
  // Find keys whose home moved onto the new (empty) node.
  std::vector<std::string> moved;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (h.cluster.home_node(key) == added) moved.push_back(key);
  }
  ASSERT_FALSE(moved.empty());
  const GetResult r = h.get(moved.front());
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, value_of(200, 'v'));
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.remote_hits, 1u);
  EXPECT_EQ(c.promotions, 1u);
  EXPECT_EQ(c.transfer_bytes, 200u);
  // Promotion copied the pair home: the next get is a local hit and the
  // directory tracks both replicas.
  EXPECT_TRUE(h.stores[added]->contains(moved.front()));
  EXPECT_EQ(h.cluster.directory_replica_count(moved.front()), 2u);
  EXPECT_TRUE(h.get(moved.front()).hit);
  EXPECT_EQ(h.cluster.counters().local_hits, 1u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, PromotionCanBeDisabled) {
  ClusterConfig config = guarded_config();
  config.promote_on_remote_hit = false;
  Harness h(2, config);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(h.set("key" + std::to_string(i), "v"));
  }
  const ClusterNodeId added = h.add_node();
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (h.cluster.home_node(key) != added) continue;
    EXPECT_TRUE(h.get(key).hit);
    EXPECT_FALSE(h.stores[added]->contains(key));
  }
  EXPECT_EQ(h.cluster.counters().promotions, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, EvictedLastReplicaParksAndReinstates) {
  // Single node: every eviction drops the cluster's only copy, so the
  // guard must catch it with its value bytes intact.
  Harness h(1);
  const std::string payload = value_of(4000, 'p');
  ASSERT_TRUE(h.set("victim", payload, 9));
  // 12 resident pairs max: 20 more sets evict "victim" (LRU order).
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.set("filler" + std::to_string(i), value_of(4000, 'f')));
  }
  ASSERT_FALSE(h.stores[0]->contains("victim"));
  ASSERT_TRUE(h.cluster.guard_contains("victim"));
  ASSERT_GT(h.cluster.counters().guard_parked, 0u);

  const GetResult r = h.get("victim");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, payload);
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.guard_hits, 1u);
  EXPECT_EQ(c.misses, 0u);
  // Reinstated at the home node, no longer parked.
  EXPECT_TRUE(h.stores[0]->contains("victim"));
  EXPECT_FALSE(h.cluster.guard_contains("victim"));
  // Cost survived the park/reinstate round trip.
  EXPECT_EQ(h.get("victim").flags, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, GuardLeaseExpiresColdParkedPairs) {
  ClusterConfig config = guarded_config(1u << 20, /*lease=*/10);
  Harness h(1, config);
  ASSERT_TRUE(h.set("cold", value_of(4000, 'c')));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.set("filler" + std::to_string(i), value_of(4000, 'f')));
  }
  ASSERT_TRUE(h.cluster.guard_contains("cold"));
  // Burn through the lease with unrelated requests.
  for (int i = 0; i < 12; ++i) (void)h.get("filler19");
  EXPECT_FALSE(h.cluster.guard_contains("cold"));
  EXPECT_FALSE(h.get("cold").hit);
  const ClusterCounters c = h.cluster.counters();
  EXPECT_GT(c.guard_expired, 0u);
  EXPECT_EQ(c.guard_hits, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, GuardByteBudgetSqueezesOldestFirst) {
  // Guard holds at most two 4546-byte chunks.
  ClusterConfig config = guarded_config(2 * 4546);
  Harness h(1, config);
  ASSERT_TRUE(h.set("old", value_of(4000, 'o')));
  ASSERT_TRUE(h.set("mid", value_of(4000, 'm')));
  ASSERT_TRUE(h.set("new", value_of(4000, 'n')));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.set("filler" + std::to_string(i), value_of(4000, 'f')));
  }
  // All three were parked at some point, but the budget keeps only two —
  // and fillers kept parking, so the earliest entries were squeezed.
  EXPECT_LE(h.cluster.guard_item_count(), 2u);
  EXPECT_LE(h.cluster.guard_used_bytes(), config.guard_capacity_bytes);
  EXPECT_GT(h.cluster.counters().guard_squeezed, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, PromotionAndGuardPreserveTtl) {
  // A lease-bound pair must not become immortal by traveling through a
  // peer fetch + promotion or a guard park + reinstatement.
  util::ManualClock clock;
  // Both stores outlive the cluster (its destructor detaches their hooks).
  std::vector<std::unique_ptr<KvsStore>> stores;
  stores.push_back(
      std::make_unique<KvsStore>(small_store(), lru_factory(), clock));
  stores.push_back(
      std::make_unique<KvsStore>(small_store(), lru_factory(), clock));
  CoopCluster cluster(guarded_config());
  const ClusterNodeId a = cluster.join(*stores[0]);
  ASSERT_TRUE(
      cluster.set(a, "leased", value_of(200, 'l'), 0, 5, /*exptime_s=*/60));

  // Join an empty node; pick a key homed there after remapping.
  const ClusterNodeId b = cluster.join(*stores[1]);
  if (cluster.home_node("leased") == b) {
    // Promote via the coop path at the new home.
    const GetResult r = cluster.get(b, "leased");
    ASSERT_TRUE(r.hit);
    EXPECT_GT(r.remaining_ttl_s, 0u);
    EXPECT_LE(r.remaining_ttl_s, 60u);
    // The promoted copy expires too: past the lease, BOTH replicas lapse.
    clock.advance_ns(61ull * 1'000'000'000ull);
    EXPECT_FALSE(cluster.get(b, "leased").hit);
  } else {
    // Key stayed home; still verify the lease is honored end to end.
    clock.advance_ns(61ull * 1'000'000'000ull);
    EXPECT_FALSE(cluster.get(a, "leased").hit);
  }

  // Guard path: evict a leased last replica, reinstate it, and confirm the
  // reinstated copy still expires.
  ASSERT_TRUE(
      cluster.set(a, "parked", value_of(4000, 'p'), 0, 5, /*exptime_s=*/60));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.set(a, "filler" + std::to_string(i),
                            value_of(4000, 'f'), 0, 1));
  }
  if (cluster.guard_contains("parked")) {
    const ClusterNodeId home = cluster.home_node("parked");
    const GetResult r = cluster.get(home, "parked");
    ASSERT_TRUE(r.hit);
    EXPECT_GT(r.remaining_ttl_s, 0u);
    clock.advance_ns(61ull * 1'000'000'000ull);
    EXPECT_FALSE(cluster.get(home, "parked").hit);
  }
}

TEST(ClusterTest, DeleteFansOutToEveryReplicaAndTheGuard) {
  Harness h(2);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(h.set("key" + std::to_string(i), "v"));
  }
  const ClusterNodeId added = h.add_node();
  // Promote one moved key so it has two replicas.
  std::string moved;
  for (int i = 0; i < 60; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (h.cluster.home_node(key) == added) {
      moved = key;
      break;
    }
  }
  ASSERT_FALSE(moved.empty());
  ASSERT_TRUE(h.get(moved).hit);
  ASSERT_EQ(h.cluster.directory_replica_count(moved), 2u);

  KvsBatch batch;
  batch.add_del(moved);
  EXPECT_TRUE(h.router.execute(batch)[0].ok);
  EXPECT_EQ(h.cluster.directory_replica_count(moved), 0u);
  for (const auto& store : h.stores) EXPECT_FALSE(store->contains(moved));
  EXPECT_FALSE(h.get(moved).hit);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, DecommissionDrainsLastReplicasIntoTheGuard) {
  Harness h(3);
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(h.set("key" + std::to_string(i), value_of(200, 'v'), 5));
  }
  const ClusterNodeId victim = h.ids.front();
  std::vector<std::string> on_victim;
  for (int i = 0; i < 90; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (h.cluster.home_node(key) == victim) on_victim.push_back(key);
  }
  ASSERT_FALSE(on_victim.empty());

  h.router.remove_node(victim);
  h.cluster.leave(victim);

  EXPECT_EQ(h.cluster.node_count(), 2u);
  EXPECT_EQ(h.stores[0]->aggregated_stats().items, 0u)  // flushed
      << "decommissioned store still holds pairs";
  for (const std::string& key : on_victim) {
    EXPECT_TRUE(h.cluster.guard_contains(key))
        << "last replica of " << key << " vanished in the decommission";
    EXPECT_EQ(h.cluster.directory_replica_count(key), 0u);
  }
  EXPECT_TRUE(h.cluster.check_invariants());

  // Drained pairs are servable: the guard reinstates them at their new
  // home without a recompute.
  const GetResult r = h.get(on_victim.front());
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, value_of(200, 'v'));
  EXPECT_EQ(h.cluster.counters().guard_hits, 1u);
  EXPECT_EQ(h.cluster.counters().misses, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, FlushNodeDropsGuardEntriesHomedThere) {
  // Regression: flush_all on a cluster-attached node wiped the store and
  // directory but left parked last-replica guard entries behind — a
  // post-flush get then served pre-flush bytes straight out of the guard.
  Harness h(1);
  ASSERT_TRUE(h.set("victim", value_of(4000, 'p'), 9));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.set("filler" + std::to_string(i), value_of(4000, 'f')));
  }
  ASSERT_TRUE(h.cluster.guard_contains("victim"));

  h.cluster.flush_node(h.ids[0]);
  EXPECT_FALSE(h.cluster.guard_contains("victim"))
      << "flush left a pre-flush value parked in the guard";
  EXPECT_EQ(h.cluster.guard_item_count(), 0u);  // single node homes all keys
  const GetResult r = h.get("victim");
  EXPECT_FALSE(r.hit) << "flushed pair served from the guard";
  EXPECT_EQ(h.cluster.counters().guard_hits, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, FlushNodeKeepsGuardEntriesHomedElsewhere) {
  // Flushing one node is that node's wipe, not the cluster's: parked last
  // replicas of keys homed at OTHER nodes must keep serving.
  Harness h(2);
  // Park one key per node by filling each home with same-homed keys.
  std::vector<std::string> victims(2);
  for (std::size_t node = 0; node < 2; ++node) {
    int placed = 0;
    for (int i = 0; placed < 21 && i < 10'000; ++i) {
      const std::string key =
          "n" + std::to_string(node) + "k" + std::to_string(i);
      if (h.cluster.home_node(key) != h.ids[node]) continue;
      ASSERT_TRUE(h.set(key, value_of(4000, 'v'), 5));
      if (placed == 0) victims[node] = key;
      ++placed;
    }
    ASSERT_TRUE(h.cluster.guard_contains(victims[node]))
        << "filling node " << node << " never parked its first key";
  }

  h.cluster.flush_node(h.ids[0]);
  EXPECT_FALSE(h.cluster.guard_contains(victims[0]));
  EXPECT_TRUE(h.cluster.guard_contains(victims[1]))
      << "flushing node 0 dropped a guard entry homed at node 1";
  EXPECT_FALSE(h.get(victims[0]).hit);
  const GetResult r = h.get(victims[1]);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, value_of(4000, 'v'));
  EXPECT_EQ(h.cluster.counters().guard_hits, 1u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, LeaveRejectsUnknownAndFinalNode) {
  Harness h(2);
  EXPECT_THROW(h.cluster.leave(99), std::invalid_argument);
  h.cluster.leave(h.ids[0]);
  EXPECT_THROW(h.cluster.leave(h.ids[1]), std::invalid_argument);
}

TEST(ClusterTest, JoinRegistersPreSeededResidents) {
  Harness h(1);
  // Seed a store OUTSIDE the cluster, then join it: its residents must be
  // peer-fetchable immediately.
  auto seeded = std::make_unique<KvsStore>(small_store(), lru_factory(),
                                           test_clock());
  ASSERT_TRUE(seeded->set("warm", "bytes", 0, 3));
  h.stores.push_back(std::move(seeded));
  const ClusterNodeId id = h.cluster.join(*h.stores.back());
  h.node_clients.push_back(
      std::make_unique<CoopNodeClient>(h.cluster, id));
  h.router.add_node(id, *h.node_clients.back());
  EXPECT_EQ(h.cluster.directory_replica_count("warm"), 1u);
  const GetResult r = h.get("warm");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, "bytes");
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterTest, CountersAreDeterministicAcrossRuns) {
  const auto run = [] {
    Harness h(3);
    for (int i = 0; i < 400; ++i) {
      const std::string key = "key" + std::to_string(i % 60);
      KvsBatch batch;
      batch.add_get(key);
      if (!h.router.execute(batch)[0].ok) {
        EXPECT_TRUE(h.set(key, value_of(3000, 'v'), 1 + i % 9));
      }
      if (i == 150) h.add_node();
      if (i == 300) {
        h.router.remove_node(h.ids[1]);
        h.cluster.leave(h.ids[1]);
      }
    }
    EXPECT_TRUE(h.cluster.check_invariants());
    const ClusterCounters c = h.cluster.counters();
    return std::vector<std::uint64_t>{
        c.requests,     c.local_hits,   c.remote_hits,    c.guard_hits,
        c.misses,       c.cold_misses,  c.transfer_bytes, c.promotions,
        c.guard_parked, c.guard_expired, c.guard_squeezed, c.sets};
  };
  EXPECT_EQ(run(), run());
}

TEST(ClusterTest, FourStepsAccountEveryRequest) {
  Harness h(4);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i % 80);
    if (!h.get(key).hit) {
      ASSERT_TRUE(h.set(key, value_of(2500, 'v')));
    }
    if (i == 250) h.add_node();
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.requests, c.local_hits + c.remote_hits + c.guard_hits +
                            c.misses + c.cold_misses);
  EXPECT_TRUE(h.cluster.check_invariants());
}

}  // namespace
}  // namespace camp::kvs
