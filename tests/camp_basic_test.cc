// Behavioral unit tests for the CAMP cache: GDS semantics (Algorithm 1),
// queue management, and the worked example from the paper's Figures 1-3.
#include "core/camp.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace camp::core {
namespace {

CampConfig cfg(std::uint64_t capacity, int precision = 5) {
  CampConfig c;
  c.capacity_bytes = capacity;
  c.precision = precision;
  return c;
}

TEST(Camp, RejectsBadConfig) {
  EXPECT_THROW(CampCache(cfg(0)), std::invalid_argument);
  EXPECT_THROW(CampCache(cfg(100, 0)), std::invalid_argument);
}

TEST(Camp, MissThenInsertThenHit) {
  CampCache cache(cfg(1000));
  EXPECT_FALSE(cache.get(1));
  EXPECT_TRUE(cache.put(1, 100, 10));
  EXPECT_TRUE(cache.get(1));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.item_count(), 1u);
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Camp, RejectsOversizedAndZeroSized) {
  CampCache cache(cfg(1000));
  EXPECT_FALSE(cache.put(1, 1001, 1));
  EXPECT_FALSE(cache.put(2, 0, 1));
  EXPECT_EQ(cache.stats().rejected_puts, 2u);
  EXPECT_EQ(cache.item_count(), 0u);
}

TEST(Camp, EvictsLowestPriorityFirst) {
  // Equal sizes; costs differ wildly. The cheap pair must go first.
  CampCache cache(cfg(300, util::kPrecisionInfinity));
  cache.put(1, 100, 1);       // cheap
  cache.put(2, 100, 10'000);  // expensive
  cache.put(3, 100, 100);     // middling
  ASSERT_EQ(cache.item_count(), 3u);
  EXPECT_EQ(cache.peek_victim(), std::optional<policy::Key>(1));
  cache.put(4, 100, 100);  // forces one eviction
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Camp, SizeMattersEqualCost) {
  // Equal costs; priorities follow cost/size, so the big pair is cheapest
  // per byte and goes first.
  CampCache cache(cfg(1000, util::kPrecisionInfinity));
  cache.put(1, 500, 100);  // ratio 100/500
  cache.put(2, 100, 100);  // ratio 100/100
  cache.put(3, 300, 100);
  cache.put(4, 200, 100);  // 1100 > 1000 -> evict
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Camp, LruTieBreakWithinQueue) {
  // Same cost and size -> same queue; LRU order must break the tie.
  CampCache cache(cfg(300));
  cache.put(1, 100, 50);
  cache.put(2, 100, 50);
  cache.put(3, 100, 50);
  ASSERT_TRUE(cache.get(1));  // 1 becomes MRU; 2 is now the LRU victim
  cache.put(4, 100, 50);
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Camp, HitRefreshesPriority) {
  CampCache cache(cfg(200, util::kPrecisionInfinity));
  cache.put(1, 100, 10);
  cache.put(2, 100, 10);
  const auto h_before = cache.priority_of(1);
  // Touch 1 repeatedly while 2 idles; 1's H is L + ratio each time.
  ASSERT_TRUE(cache.get(1));
  EXPECT_GE(cache.priority_of(1), h_before);
  cache.put(3, 100, 10);  // evicts 2, the least recently used
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Camp, InflationNeverDecreases) {
  CampCache cache(cfg(300));
  std::uint64_t last = 0;
  util::SplitMix64 rng(3);
  for (int i = 0; i < 500; ++i) {
    const policy::Key k = rng.next() % 20;
    if (!cache.get(k)) {
      cache.put(k, 50 + rng.next() % 50, 1 + rng.next() % 100);
    }
    EXPECT_GE(cache.inflation(), last);
    last = cache.inflation();
  }
}

TEST(Camp, PropositionOneBounds) {
  // L <= H(p) <= L + ratio(p) for every resident pair (checked inside
  // check_invariants; exercise a workload and assert).
  CampCache cache(cfg(500));
  util::SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const policy::Key k = rng.next() % 30;
    if (!cache.get(k)) {
      cache.put(k, 20 + rng.next() % 100, 1 + rng.next() % 10'000);
    }
  }
  EXPECT_TRUE(cache.check_invariants());
}

TEST(Camp, QueuesGroupByRoundedRatio) {
  CampCache cache(cfg(10'000, 5));
  // Two pairs with identical ratio share a queue.
  cache.put(1, 100, 10);
  cache.put(2, 100, 10);
  EXPECT_EQ(cache.queue_count(), 1u);
  EXPECT_EQ(cache.ratio_of(1), cache.ratio_of(2));
  // A wildly different ratio opens a second queue.
  cache.put(3, 100, 10'000);
  EXPECT_EQ(cache.queue_count(), 2u);
}

TEST(Camp, QueueDestroyedWhenEmptied) {
  CampCache cache(cfg(200));
  cache.put(1, 100, 1);
  cache.put(2, 100, 10'000);
  EXPECT_EQ(cache.queue_count(), 2u);
  cache.erase(1);
  EXPECT_EQ(cache.queue_count(), 1u);
  const auto intro = cache.introspect();
  EXPECT_EQ(intro.queues_created, 2u);
  EXPECT_EQ(intro.queues_destroyed, 1u);
}

TEST(Camp, OverwriteReplacesSizeAndCost) {
  CampCache cache(cfg(1000));
  cache.put(1, 100, 10);
  EXPECT_TRUE(cache.put(1, 400, 20));
  EXPECT_EQ(cache.item_count(), 1u);
  EXPECT_EQ(cache.used_bytes(), 400u);
}

TEST(Camp, EraseIsNotAnEviction) {
  CampCache cache(cfg(1000));
  cache.put(1, 100, 10);
  int evictions = 0;
  cache.set_eviction_listener(
      [&](policy::Key, std::uint64_t) { ++evictions; });
  cache.erase(1);
  EXPECT_EQ(evictions, 0);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(Camp, EvictionListenerFires) {
  CampCache cache(cfg(200));
  std::vector<std::pair<policy::Key, std::uint64_t>> evicted;
  cache.set_eviction_listener([&](policy::Key k, std::uint64_t s) {
    evicted.emplace_back(k, s);
  });
  cache.put(1, 150, 1);
  cache.put(2, 150, 1);  // evicts 1
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, 1u);
  EXPECT_EQ(evicted[0].second, 150u);
}

TEST(Camp, AgedExpensivePairEventuallyEvicted) {
  // The paper: "CAMP is robust enough to prevent an aged expensive
  // key-value pair from occupying memory indefinitely." A pair with a
  // cost-to-size ratio c times the churn's ratio survives roughly c
  // evictions (L must inflate past its H), then goes.
  CampCache cache(cfg(1000, 5));
  cache.put(999, 100, 2'000);  // 2000x the churn cost, never touched again
  util::SplitMix64 rng(9);
  int evicted_at = -1;
  for (int i = 0; i < 100'000 && evicted_at < 0; ++i) {
    const policy::Key k = rng.next() % 50;
    if (!cache.get(k)) cache.put(k, 100, 1);
    if (!cache.contains(999)) evicted_at = i;
  }
  EXPECT_GE(evicted_at, 0) << "expensive pair should age out as L inflates";
  EXPECT_GT(evicted_at, 500) << "but not before its cost premium is spent";
}

TEST(Camp, NameReflectsPrecision) {
  EXPECT_EQ(CampCache(cfg(10, 5)).name(), "camp(p=5)");
  EXPECT_EQ(CampCache(cfg(10, util::kPrecisionInfinity)).name(),
            "camp(p=inf)");
}

TEST(Camp, FactoryBuildsWorkingCache) {
  auto cache = make_camp(cfg(500));
  EXPECT_TRUE(cache->put(1, 100, 5));
  EXPECT_TRUE(cache->get(1));
  EXPECT_EQ(cache->capacity_bytes(), 500u);
}

TEST(Camp, PaperFigure3HitExample) {
  // Reconstructs the shape of the Figure 3 walk-through: a hit moves the
  // pair to the back of its queue and its H becomes L_min + ratio.
  CampCache cache(cfg(10'000, util::kPrecisionInfinity));
  // Build two queues: ratio-1 pairs (cheap) and ratio-2 pairs.
  cache.put(10, 100, 1);  // with max_size=100: ratio = 1*100/100 = 1
  cache.put(11, 100, 1);
  cache.put(20, 100, 2);  // ratio 2
  cache.put(21, 100, 2);
  ASSERT_EQ(cache.queue_count(), 2u);
  const auto h_g_before = cache.priority_of(20);  // head of ratio-2 queue
  ASSERT_TRUE(cache.get(20));                     // hit "g"
  // L is the global min priority (head of ratio-1 queue = 1); g's new
  // H = L + 2.
  EXPECT_EQ(cache.priority_of(20), cache.priority_of(10) + 2);
  EXPECT_GE(cache.priority_of(20), h_g_before);
  // g is now behind its queue-mate 21.
  cache.put(99, 100 * 98, 2);  // big insert forces evictions of lowest H
  EXPECT_TRUE(cache.check_invariants());
}

}  // namespace
}  // namespace camp::core
