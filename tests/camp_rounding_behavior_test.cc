// Tests for CAMP's precision/rounding behaviour at the cache level: queue
// counts shrink with coarser precision, adaptive rescaling only affects
// future roundings, and the paper's "adapts to new maximum sizes" rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/camp.h"
#include "util/rng.h"

namespace camp::core {
namespace {

CampConfig cfg(std::uint64_t cap, int precision) {
  CampConfig c;
  c.capacity_bytes = cap;
  c.precision = precision;
  return c;
}

std::size_t queues_after_workload(int precision, std::uint64_t seed) {
  CampCache cache(cfg(1 << 20, precision));
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 20'000; ++i) {
    const policy::Key k = rng.below(3000);
    if (!cache.get(k)) {
      const std::uint64_t size = 64 + (util::mix64(k) % 4000);
      const std::uint64_t cost = 1 + (util::mix64(k ^ 0xabc) % 50'000);
      cache.put(k, size, cost);
    }
  }
  return cache.queue_count();
}

TEST(CampRounding, QueueCountGrowsWithPrecision) {
  // Figure 5b / 8c shape: few queues at precision 1, many at infinity.
  const std::size_t q1 = queues_after_workload(1, 5);
  const std::size_t q3 = queues_after_workload(3, 5);
  const std::size_t q6 = queues_after_workload(6, 5);
  const std::size_t qi = queues_after_workload(util::kPrecisionInfinity, 5);
  EXPECT_LE(q1, q3);
  EXPECT_LE(q3, q6);
  EXPECT_LE(q6, qi);
  EXPECT_LT(q1, qi) << "rounding must actually merge queues";
  EXPECT_GE(q1, 1u);
}

TEST(CampRounding, PrecisionOneStillBeatsSingleQueue) {
  // Even at the lowest precision CAMP keeps multiple queues on a workload
  // with order-of-magnitude cost spread (paper: "Even for a very low level
  // of precision, CAMP has at least five non-empty queues").
  CampCache cache(cfg(1 << 20, 1));
  util::Xoshiro256 rng(7);
  const std::uint32_t costs[3] = {1, 100, 10'000};
  for (int i = 0; i < 20'000; ++i) {
    const policy::Key k = rng.below(2000);
    if (!cache.get(k)) {
      const std::uint64_t size = 64 + (util::mix64(k) % 2000);
      cache.put(k, size, costs[util::mix64(k ^ 1) % 3]);
    }
  }
  EXPECT_GE(cache.queue_count(), 3u);
}

TEST(CampRounding, ResidentsNotRescaledOnMultiplierGrowth) {
  // "we do not update the rounded priorities of all the key-value pairs in
  // the KVS when a new lower bound ... is determined"
  CampCache cache(cfg(1 << 20, util::kPrecisionInfinity));
  cache.put(1, 100, 10);  // multiplier = 100, ratio = 10
  const std::uint64_t ratio_before = cache.ratio_of(1);
  EXPECT_EQ(ratio_before, 10u);
  cache.put(2, 100'000, 10);  // multiplier jumps to 100'000
  // Pair 1 was not touched: still in its old queue.
  EXPECT_EQ(cache.ratio_of(1), ratio_before);
  // Pair 2's ratio uses the new multiplier: 10 * 100000 / 100000 = 10.
  EXPECT_EQ(cache.ratio_of(2), 10u);
  // A *new* pair with pair-1's shape gets the new scaling.
  cache.put(3, 100, 10);  // 10 * 100000 / 100 = 10'000
  EXPECT_EQ(cache.ratio_of(3), 10'000u);
}

TEST(CampRounding, IntrospectionTracksMaxScaledRatio) {
  CampCache cache(cfg(1 << 20, 5));
  cache.put(1, 1000, 1);
  cache.put(2, 10, 10'000);  // ratio = 10'000 * 1000 / 10 = 1'000'000
  const auto intro = cache.introspect();
  EXPECT_GE(intro.max_scaled_ratio, 1'000'000u);
  EXPECT_EQ(intro.scaling_multiplier, 1000u);
}

TEST(CampRounding, CostMissRatioStableAcrossPrecisions) {
  // Figure 5a's headline: "almost no variation in cost-miss ratios for
  // different precisions". Run the same skewed stream at p=1..inf and check
  // the spread of missed cost is modest.
  std::vector<double> missed;
  for (int precision : {1, 2, 4, 6, 8, util::kPrecisionInfinity}) {
    CampCache cache(cfg(40'000, precision));
    util::Xoshiro256 rng(99);
    const std::uint32_t costs[3] = {1, 100, 10'000};
    std::uint64_t missed_cost = 0;
    for (int i = 0; i < 50'000; ++i) {
      const policy::Key k = rng.below(100) < 70 ? rng.below(120)
                                                : 120 + rng.below(1080);
      const std::uint64_t size = 64 + (util::mix64(k) % 1500);
      const std::uint64_t cost = costs[util::mix64(k ^ 3) % 3];
      if (!cache.get(k)) {
        missed_cost += cost;
        cache.put(k, size, cost);
      }
    }
    missed.push_back(static_cast<double>(missed_cost));
  }
  const double lo = *std::min_element(missed.begin(), missed.end());
  const double hi = *std::max_element(missed.begin(), missed.end());
  EXPECT_LT(hi / lo, 1.15) << "cost-miss outcomes should be nearly flat "
                              "across precisions";
}

}  // namespace
}  // namespace camp::core
