// Replication-factor-R writes for the networked cooperative cluster:
// set/iqset fan-out to the first R distinct ring nodes, write-ack policies
// (home-ack vs all-ack), ClusterClient read failover to a surviving
// replica when a node's transport dies mid-workload, the lying-transport
// scatter guard, and a parallel replicated stress run (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "kvs/cluster.h"
#include "kvs/cluster_client.h"
#include "policy/policy_factory.h"
#include "util/clock.h"

namespace camp::kvs {
namespace {

const util::ManualClock& test_clock() {
  static const util::ManualClock clock;
  return clock;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) { return policy::make_policy("lru", cap); };
}

StoreConfig roomy_store(std::uint64_t limit = 1u << 20) {
  StoreConfig config;
  config.shards = 1;
  config.engine.slab.slab_size_bytes = 64u << 10;
  config.engine.slab.memory_limit_bytes = limit;
  return config;
}

ClusterConfig replicated_config(std::uint32_t replication,
                                WriteAckPolicy ack = WriteAckPolicy::kAckHome) {
  ClusterConfig config;
  config.replication = replication;
  config.write_ack = ack;
  config.guard_capacity_bytes = 256u << 10;
  config.guard_lease_requests = 100'000;
  return config;
}

/// A transport wrapper whose node can be "killed": every execute then
/// throws the transport error a dead TCP connection would.
class KillableTransport final : public KvsApi {
 public:
  explicit KillableTransport(KvsApi& inner) : inner_(inner) {}

  KvsBatchResult execute(const KvsBatch& batch) override {
    if (dead_.load()) {
      throw std::runtime_error("KillableTransport: node is down");
    }
    return inner_.execute(batch);
  }

  void kill() { dead_.store(true); }

 private:
  KvsApi& inner_;
  std::atomic<bool> dead_{false};
};

/// N stores joined to one CoopCluster, fronted by CoopNodeClients wrapped
/// in KillableTransports, routed by a replication-aware ClusterClient.
struct ReplicatedHarness {
  explicit ReplicatedHarness(std::size_t nodes, ClusterConfig config,
                             StoreConfig store_config = roomy_store())
      : cluster(config),
        router(config.virtual_nodes, /*parallel=*/false,
               config.replication) {
    for (std::size_t i = 0; i < nodes; ++i) add_node(store_config);
  }

  ClusterNodeId add_node(StoreConfig store_config = roomy_store()) {
    stores.push_back(std::make_unique<KvsStore>(store_config, lru_factory(),
                                                test_clock()));
    const ClusterNodeId id = cluster.join(*stores.back());
    node_clients.push_back(std::make_unique<CoopNodeClient>(cluster, id));
    transports.push_back(
        std::make_unique<KillableTransport>(*node_clients.back()));
    router.add_node(id, *transports.back());
    ids.push_back(id);
    return id;
  }

  bool set(const std::string& key, const std::string& value,
           std::uint32_t cost = 1) {
    KvsBatch batch;
    batch.add_set(key, value, 0, cost);
    return router.execute(batch)[0].ok;
  }

  GetResult get(const std::string& key) {
    KvsBatch batch;
    batch.add_get(key);
    return router.execute(batch)[0].to_get_result();
  }

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster;
  std::vector<std::unique_ptr<CoopNodeClient>> node_clients;
  std::vector<std::unique_ptr<KillableTransport>> transports;
  ClusterClient router;
  std::vector<ClusterNodeId> ids;
};

TEST(ClusterReplicationConfig, Validates) {
  ClusterConfig bad;
  bad.replication = 0;
  EXPECT_THROW(CoopCluster{bad}, std::invalid_argument);
  ClusterConfig two = replicated_config(2);
  EXPECT_NO_THROW(CoopCluster{two});
}

TEST(ClusterReplication, SetFansOutToRDistinctRingNodes) {
  ReplicatedHarness h(3, replicated_config(2));
  constexpr int kKeys = 60;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(h.set(key, "v" + std::to_string(i)));
    const std::vector<ClusterNodeId> replicas = h.cluster.replica_nodes(key);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(replicas.front(), h.cluster.home_node(key));
    EXPECT_NE(replicas[0], replicas[1]);
    for (const ClusterNodeId id : replicas) {
      EXPECT_TRUE(h.stores[id]->contains(key))
          << key << " missing at replica node " << id;
    }
    EXPECT_EQ(h.cluster.directory_replica_count(key), 2u);
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.sets, std::uint64_t{kKeys});
  EXPECT_EQ(c.replica_writes, std::uint64_t{kKeys});
  EXPECT_EQ(c.replica_write_failures, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterReplication, ReplicationClampsToNodeCount) {
  ReplicatedHarness h(2, replicated_config(5));
  ASSERT_TRUE(h.set("k", "v"));
  EXPECT_EQ(h.cluster.replica_nodes("k").size(), 2u);
  EXPECT_EQ(h.cluster.directory_replica_count("k"), 2u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterReplication, ReadsStayHomeNoPeerTraffic) {
  // With a copy at the home node, replicated reads never touch peers: the
  // extra replicas are availability, not read load.
  ReplicatedHarness h(3, replicated_config(2));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(h.set("key" + std::to_string(i), "v"));
  }
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(h.get("key" + std::to_string(i)).hit);
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.local_hits, 40u);
  EXPECT_EQ(c.remote_hits, 0u);
  EXPECT_EQ(h.router.failover_reads(), 0u);
}

TEST(ClusterReplication, IqsetReplicatesWithHomeOnlyCostCapture) {
  ReplicatedHarness h(3, replicated_config(2));
  KvsBatch batch;
  batch.add_iqset("iq-key", "iq-value", 7);
  ASSERT_TRUE(h.router.execute(batch)[0].ok);
  EXPECT_EQ(h.cluster.directory_replica_count("iq-key"), 2u);
  for (const ClusterNodeId id : h.cluster.replica_nodes("iq-key")) {
    EXPECT_TRUE(h.stores[id]->contains("iq-key"));
  }
  EXPECT_EQ(h.cluster.counters().replica_writes, 1u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

/// Finds a key homed at a LARGE node whose second replica is the given
/// small node, with a value too big for the small node's slab geometry.
std::string key_with_replica_at(const CoopCluster& cluster,
                                ClusterNodeId small) {
  for (int i = 0; i < 10'000; ++i) {
    const std::string key = "probe" + std::to_string(i);
    const auto replicas = cluster.replica_nodes(key);
    if (replicas.size() == 2 && replicas[0] != small &&
        replicas[1] == small) {
      return key;
    }
  }
  return {};
}

TEST(ClusterReplication, AckHomeToleratesAFailedReplicaWrite) {
  ReplicatedHarness h(0, replicated_config(2, WriteAckPolicy::kAckHome));
  h.add_node(roomy_store());
  // A node whose largest slab class cannot hold a 5000-byte value: replica
  // writes of such values are rejected there.
  StoreConfig tiny;
  tiny.shards = 1;
  tiny.engine.slab.slab_size_bytes = 4096;
  tiny.engine.slab.memory_limit_bytes = 4096;
  const ClusterNodeId small = h.add_node(tiny);

  const std::string key = key_with_replica_at(h.cluster, small);
  ASSERT_FALSE(key.empty());
  EXPECT_TRUE(h.set(key, std::string(5000, 'x')));  // home ack suffices
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.replica_write_failures, 1u);
  EXPECT_EQ(c.replica_writes, 0u);
  EXPECT_EQ(h.cluster.directory_replica_count(key), 1u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterReplication, AckAllFailsWhenAReplicaWriteFails) {
  ReplicatedHarness h(0, replicated_config(2, WriteAckPolicy::kAckAll));
  h.add_node(roomy_store());
  StoreConfig tiny;
  tiny.shards = 1;
  tiny.engine.slab.slab_size_bytes = 4096;
  tiny.engine.slab.memory_limit_bytes = 4096;
  const ClusterNodeId small = h.add_node(tiny);

  const std::string key = key_with_replica_at(h.cluster, small);
  ASSERT_FALSE(key.empty());
  EXPECT_FALSE(h.set(key, std::string(5000, 'x')));
  EXPECT_EQ(h.cluster.counters().replica_write_failures, 1u);
  // A value both nodes can hold acks under all-ack too.
  EXPECT_TRUE(h.set(key, std::string(100, 'y')));
  EXPECT_EQ(h.cluster.directory_replica_count(key), 2u);
}

TEST(ClusterReplication, NodeLossReadsFailOverToSurvivingReplica) {
  // The node-loss scenario: one of the R=2 replica holders dies
  // mid-workload. Every read must still hit — answered by the surviving
  // replica as a LOCAL hit, with no guard involvement and no miss spike.
  ReplicatedHarness h(3, replicated_config(2));
  constexpr int kKeys = 120;
  const std::string payload(200, 'v');
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(h.set("key" + std::to_string(i), payload));
  }
  // Warm pass: everything is a local hit at its home.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(h.get("key" + std::to_string(i)).hit);
  }
  const ClusterCounters before = h.cluster.counters();
  ASSERT_EQ(before.misses, 0u);

  const ClusterNodeId victim = h.ids[1];
  std::size_t homed_at_victim = 0;
  bool killed = false;
  for (int i = 0; i < kKeys; ++i) {
    // Kill the node mid-workload, not between passes.
    if (i == kKeys / 3) {
      h.transports[1]->kill();
      killed = true;
    }
    const std::string key = "key" + std::to_string(i);
    const GetResult r = h.get(key);
    EXPECT_TRUE(r.hit) << key << " lost after node " << victim << " died";
    EXPECT_EQ(r.value, payload);
    if (killed && h.cluster.home_node(key) == victim) ++homed_at_victim;
  }
  ASSERT_GT(homed_at_victim, 0u) << "no key exercised the failover path";
  EXPECT_EQ(h.router.failover_reads(), homed_at_victim);

  const ClusterCounters after = h.cluster.counters();
  EXPECT_EQ(after.misses, before.misses) << "node loss caused a miss spike";
  EXPECT_EQ(after.guard_hits, before.guard_hits)
      << "failover reads leaned on the guard";
  // The surviving replicas answered as plain local hits.
  EXPECT_EQ(after.local_hits, before.local_hits + kKeys);
}

TEST(ClusterReplication, DecommissionParksOnlyLastReplicas) {
  // leave() must guard-park a pair only when the LAST replica drains —
  // with R=2 every key has a second copy elsewhere, so a decommission
  // parks nothing and every key stays servable without a recompute.
  ReplicatedHarness h(3, replicated_config(2));
  constexpr int kKeys = 60;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(h.set("key" + std::to_string(i), "v" + std::to_string(i)));
    ASSERT_EQ(h.cluster.directory_replica_count("key" + std::to_string(i)),
              2u);
  }
  const ClusterNodeId victim = h.ids.front();
  h.router.remove_node(victim);
  h.cluster.leave(victim);

  EXPECT_EQ(h.cluster.guard_item_count(), 0u)
      << "a doubly-held key guard-parked on decommission";
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_GE(h.cluster.directory_replica_count(key), 1u);
    const GetResult r = h.get(key);
    EXPECT_TRUE(r.hit) << key << " lost in the decommission";
    EXPECT_EQ(r.value, "v" + std::to_string(i));
  }
  const ClusterCounters c = h.cluster.counters();
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.guard_hits, 0u);
  EXPECT_TRUE(h.cluster.check_invariants());
}

TEST(ClusterReplication, MutationsDoNotFailOver) {
  ReplicatedHarness h(2, replicated_config(2));
  ASSERT_TRUE(h.set("stable", "v"));
  // Find the node that homes "stable" and kill its transport: a set must
  // propagate the transport error (its outcome elsewhere is unknowable),
  // while a get of the same key fails over.
  const ClusterNodeId home = h.cluster.home_node("stable");
  const std::size_t slot =
      static_cast<std::size_t>(home == h.ids[0] ? 0 : 1);
  h.transports[slot]->kill();
  KvsBatch set;
  set.add_set("stable", "new-value", 0, 1);
  EXPECT_THROW((void)h.router.execute(set), std::runtime_error);
  EXPECT_TRUE(h.get("stable").hit);
  EXPECT_GT(h.router.failover_reads(), 0u);
}

// ---------------------------------------------------------------------------
// Lying transports (the scatter bounds-check bugfix)
// ---------------------------------------------------------------------------

/// A transport that answers every batch with a fixed number of results,
/// regardless of how many ops were asked.
class LyingTransport final : public KvsApi {
 public:
  explicit LyingTransport(std::size_t results) : results_(results) {}

  KvsBatchResult execute(const KvsBatch&) override {
    KvsBatchResult out;
    out.results.resize(results_);
    for (KvsOpResult& r : out.results) r.ok = true;
    return out;
  }

 private:
  std::size_t results_;
};

TEST(ClusterClientScatter, ShortReplyVectorThrowsInsteadOfUb) {
  LyingTransport liar(/*results=*/1);
  ClusterClient router(64, /*parallel=*/false);
  router.add_node(0, liar);
  KvsBatch batch;
  batch.add_get("a").add_get("b").add_get("c");
  try {
    (void)router.execute(batch);
    FAIL() << "short reply vector must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("returned 1 results for 3 ops"),
              std::string::npos)
        << e.what();
  }
}

TEST(ClusterClientScatter, OversizedReplyVectorThrowsToo) {
  LyingTransport liar(/*results=*/7);
  ClusterClient router(64, /*parallel=*/true);
  router.add_node(0, liar);
  KvsBatch batch;
  batch.add_get("a");
  EXPECT_THROW((void)router.execute(batch), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Parallel replicated stress (the TSan target)
// ---------------------------------------------------------------------------

TEST(ClusterReplicationStress, ParallelReplicatedClientsStayConsistent) {
  // 3 nodes, R=2, 4 concurrent ClusterClients fanning sub-batches out in
  // parallel while every set ALSO fans out to a second node's store —
  // replica writes, eviction hooks and directory updates all interleave
  // under the store shard locks. Every op must come back acked and the
  // shared metadata must agree with the stores once quiesced.
  constexpr std::size_t kNodes = 3;
  constexpr std::size_t kClients = 4;
  constexpr int kBatches = 40;
  constexpr std::size_t kBatchOps = 16;

  StoreConfig store_config;
  store_config.shards = 2;
  store_config.engine.slab.slab_size_bytes = 64u << 10;
  store_config.engine.slab.memory_limit_bytes = 256u << 10;

  std::vector<std::unique_ptr<KvsStore>> stores;
  CoopCluster cluster(replicated_config(2));
  std::vector<ClusterNodeId> ids;
  for (std::size_t n = 0; n < kNodes; ++n) {
    stores.push_back(std::make_unique<KvsStore>(store_config, lru_factory(),
                                                test_clock()));
    ids.push_back(cluster.join(*stores.back()));
  }

  std::atomic<std::uint64_t> acked{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        // Per-thread transports; the cluster itself is the shared state.
        std::vector<std::unique_ptr<CoopNodeClient>> nodes;
        ClusterClient router(64, /*parallel=*/true, /*replication=*/2);
        for (std::size_t n = 0; n < kNodes; ++n) {
          nodes.push_back(std::make_unique<CoopNodeClient>(cluster, ids[n]));
          router.add_node(ids[n], *nodes.back());
        }
        for (int b = 0; b < kBatches; ++b) {
          KvsBatch batch;
          for (std::size_t i = 0; i < kBatchOps; ++i) {
            const std::string key =
                "key" + std::to_string((b * kBatchOps + i * 7) % 150);
            if (i % 3 == 0) {
              batch.add_set(key, std::string(512, 'a' + char(c)), 0, 3);
            } else {
              batch.add_get(key);
            }
          }
          const KvsBatchResult r = router.execute(batch);
          std::uint64_t local = 0;
          for (const KvsOpResult& op : r.results) local += op.acked ? 1 : 0;
          acked.fetch_add(local);
        }
      } catch (...) {
        failed.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(acked.load(), std::uint64_t{kClients} * kBatches * kBatchOps);
  const ClusterCounters c = cluster.counters();
  EXPECT_EQ(c.requests + c.sets,
            std::uint64_t{kClients} * kBatches * kBatchOps);
  EXPECT_GT(c.replica_writes, 0u);
  EXPECT_TRUE(cluster.check_invariants());
}

}  // namespace
}  // namespace camp::kvs
