#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace camp::util {
namespace {

TEST(Zipf, SolverHitsPaperSkew) {
  // The paper's BG traces: ~70% of requests to 20% of keys.
  const std::uint64_t n = 10'000;
  const double s = ZipfianGenerator::solve_exponent(n, 0.2, 0.7);
  ZipfianGenerator gen(n, s);
  EXPECT_NEAR(gen.mass_of_top(0.2), 0.7, 0.01);
}

TEST(Zipf, UniformWhenExponentZero) {
  ZipfianGenerator gen(1000, 0.0);
  EXPECT_NEAR(gen.mass_of_top(0.2), 0.2, 1e-9);
}

TEST(Zipf, MassMonotoneInExponent) {
  const std::uint64_t n = 5000;
  double prev = 0.0;
  for (double s : {0.0, 0.3, 0.6, 0.9, 1.2, 1.5}) {
    ZipfianGenerator gen(n, s);
    const double mass = gen.mass_of_top(0.2);
    EXPECT_GE(mass, prev);
    prev = mass;
  }
}

TEST(Zipf, SamplesMatchAnalyticMass) {
  const std::uint64_t n = 1000;
  const double s = ZipfianGenerator::solve_exponent(n, 0.2, 0.7);
  ZipfianGenerator gen(n, s);
  Xoshiro256 rng(99);
  const int draws = 200'000;
  int top = 0;
  const auto cutoff = static_cast<std::uint64_t>(0.2 * n);
  for (int i = 0; i < draws; ++i) {
    if (gen.sample(rng) < cutoff) ++top;
  }
  EXPECT_NEAR(static_cast<double>(top) / draws, 0.7, 0.02);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfianGenerator gen(100, 1.0);
  Xoshiro256 rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++counts[static_cast<std::size_t>(gen.sample(rng))];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, Deterministic) {
  ZipfianGenerator gen(500, 0.8);
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.sample(a), gen.sample(b));
  }
}

TEST(Zipf, RejectsZeroKeys) {
  EXPECT_THROW(ZipfianGenerator(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace camp::util
