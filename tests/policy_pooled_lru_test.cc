#include "policy/pooled_lru.h"

#include <gtest/gtest.h>

#include <vector>

namespace camp::policy {
namespace {

PoolAssigner three_tier() {
  return assign_by_cost_value({{1, 0}, {100, 1}, {10'000, 2}});
}

TEST(PooledLru, PartitionHelpers) {
  const auto uniform = uniform_pools(1000, 3);
  ASSERT_EQ(uniform.size(), 3u);
  EXPECT_EQ(uniform[0].capacity_bytes, 333u);
  EXPECT_EQ(uniform[2].capacity_bytes, 334u);  // remainder lands in the last

  const auto weighted = weighted_pools(10'101, {1.0, 100.0, 10'000.0});
  ASSERT_EQ(weighted.size(), 3u);
  EXPECT_GE(weighted[0].capacity_bytes, 1u);
  EXPECT_GT(weighted[2].capacity_bytes, weighted[1].capacity_bytes);
  std::uint64_t total = 0;
  for (const auto& p : weighted) total += p.capacity_bytes;
  EXPECT_EQ(total, 10'101u);
}

TEST(PooledLru, PartitionValidation) {
  EXPECT_THROW(uniform_pools(100, 0), std::invalid_argument);
  EXPECT_THROW(weighted_pools(100, {}), std::invalid_argument);
  EXPECT_THROW(weighted_pools(100, {0.0, 0.0}), std::invalid_argument);
}

TEST(PooledLru, IsolatesPools) {
  // Cheap churn must not evict the expensive pool's residents.
  PooledLruCache cache(uniform_pools(600, 3), three_tier());
  cache.put(1000, 100, 10'000);  // expensive pool
  for (Key k = 0; k < 50; ++k) cache.put(k, 100, 1);  // cheap churn
  EXPECT_TRUE(cache.contains(1000));
  EXPECT_LE(cache.pool_stats(0).used_bytes, 200u);
}

TEST(PooledLru, EvictsWithinPoolByLru) {
  PooledLruCache cache(uniform_pools(300, 3), three_tier());
  cache.put(1, 50, 1);
  cache.put(2, 50, 1);  // pool 0 capacity is 100 -> full
  ASSERT_TRUE(cache.get(1));
  cache.put(3, 50, 1);  // evicts 2 (LRU within pool 0)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(PooledLru, RejectsPairBiggerThanItsPool) {
  // The calcification-style failure: the pair would fit in total memory but
  // not in its statically assigned pool.
  PooledLruCache cache(uniform_pools(300, 3), three_tier());
  EXPECT_FALSE(cache.put(1, 150, 1));  // pool 0 holds only 100 bytes
  EXPECT_EQ(cache.stats().rejected_puts, 1u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(PooledLru, AssignByCostRange) {
  const auto assigner = assign_by_cost_range({100, 10'000});
  EXPECT_EQ(assigner(0, 0, 1), 0u);
  EXPECT_EQ(assigner(0, 0, 99), 0u);
  EXPECT_EQ(assigner(0, 0, 100), 1u);
  EXPECT_EQ(assigner(0, 0, 9'999), 1u);
  EXPECT_EQ(assigner(0, 0, 10'000), 2u);
  EXPECT_EQ(assigner(0, 0, 1'000'000), 2u);
}

TEST(PooledLru, UnknownCostFallsBack) {
  const auto assigner = assign_by_cost_value({{1, 0}, {100, 1}});
  EXPECT_EQ(assigner(0, 0, 55), 1u) << "unknown cost -> last pool";
}

TEST(PooledLru, PerPoolStats) {
  PooledLruCache cache(uniform_pools(600, 3), three_tier());
  cache.put(1, 50, 1);
  cache.put(2, 50, 10'000);
  ASSERT_TRUE(cache.get(1));
  ASSERT_TRUE(cache.get(2));
  EXPECT_EQ(cache.pool_stats(0).hits, 1u);
  EXPECT_EQ(cache.pool_stats(2).hits, 1u);
  EXPECT_EQ(cache.pool_stats(0).items, 1u);
  EXPECT_EQ(cache.pool_stats(1).items, 0u);
}

TEST(PooledLru, CapacityIsSumOfPools) {
  PooledLruCache cache(uniform_pools(999, 3), three_tier());
  EXPECT_EQ(cache.capacity_bytes(), 999u);
  EXPECT_EQ(cache.pool_count(), 3u);
}

TEST(PooledLru, Validation) {
  EXPECT_THROW(PooledLruCache({}, three_tier()), std::invalid_argument);
  EXPECT_THROW(PooledLruCache(uniform_pools(100, 2), PoolAssigner{}),
               std::invalid_argument);
}

TEST(PooledLru, BadAssignerIndexThrows) {
  PooledLruCache cache(uniform_pools(100, 2),
                       [](Key, std::uint64_t, std::uint64_t) -> std::size_t {
                         return 99;
                       });
  EXPECT_THROW(cache.put(1, 10, 1), std::out_of_range);
}

}  // namespace
}  // namespace camp::policy
