#include "kvs/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kvs/inproc.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

StoreConfig store_config(std::size_t shards = 4) {
  StoreConfig c;
  c.shards = shards;
  c.engine.slab.memory_limit_bytes = 8u << 20;
  c.engine.slab.slab_size_bytes = 1u << 20;
  return c;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

TEST(Store, Validation) {
  util::ManualClock clock;
  StoreConfig bad = store_config(0);
  EXPECT_THROW(KvsStore(bad, lru_factory(), clock), std::invalid_argument);
}

TEST(Store, BasicOperations) {
  util::ManualClock clock;
  KvsStore store(store_config(), lru_factory(), clock);
  ASSERT_TRUE(store.set("a", "1", 0, 1));
  ASSERT_TRUE(store.set("b", "2", 0, 1));
  EXPECT_EQ(store.get("a").value, "1");
  EXPECT_EQ(store.get("b").value, "2");
  EXPECT_TRUE(store.del("a"));
  EXPECT_FALSE(store.get("a").hit);
  EXPECT_EQ(store.shard_count(), 4u);
}

TEST(Store, KeysSpreadAcrossShards) {
  util::ManualClock clock;
  KvsStore store(store_config(4), lru_factory(), clock);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store.set("key" + std::to_string(i), "v", 0, 1));
  }
  const auto stats = store.aggregated_stats();
  EXPECT_EQ(stats.items, 400u);
  EXPECT_EQ(stats.sets, 400u);
}

TEST(Store, AggregatedStats) {
  util::ManualClock clock;
  KvsStore store(store_config(), lru_factory(), clock);
  store.set("x", "val", 0, 1);
  (void)store.get("x");
  (void)store.get("missing");
  const auto stats = store.aggregated_stats();
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(store.policy_name(), "lru");
}

TEST(Store, FlushAllShards) {
  util::ManualClock clock;
  KvsStore store(store_config(), lru_factory(), clock);
  for (int i = 0; i < 50; ++i) {
    store.set("k" + std::to_string(i), "v", 0, 1);
  }
  store.flush_all();
  EXPECT_EQ(store.aggregated_stats().items, 0u);
}

TEST(Store, ConcurrentMixedWorkload) {
  util::SteadyClock clock;
  KvsStore store(store_config(8), lru_factory(), clock);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5'000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failures, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "k" + std::to_string((t * 31 + i * 7) % 1000);
        if (i % 3 == 0) {
          if (!store.set(key, "value-" + key, 0, 1)) failures.fetch_add(1);
        } else if (i % 7 == 0) {
          store.del(key);
        } else {
          const GetResult r = store.get(key);
          if (r.hit && r.value != "value-" + key) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << "no torn values, no failed sets";
  const auto stats = store.aggregated_stats();
  EXPECT_EQ(stats.gets + stats.sets + stats.deletes,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(Store, InprocClientRoundTrip) {
  util::ManualClock clock;
  KvsStore store(store_config(), lru_factory(), clock);
  InprocClient client(store);
  ASSERT_TRUE(client.set("k", "v", 3, 10));
  const GetResult r = client.get("k");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, "v");
  EXPECT_EQ(r.flags, 3u);
  EXPECT_FALSE(client.iqget("miss").hit);
  clock.advance_ns(2000);
  EXPECT_TRUE(client.iqset("miss", "computed", 0));
  EXPECT_TRUE(client.get("miss").hit);
  EXPECT_TRUE(client.del("k"));
}

}  // namespace
}  // namespace camp::kvs
