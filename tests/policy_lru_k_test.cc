#include "policy/lru_k.h"

#include <gtest/gtest.h>

namespace camp::policy {
namespace {

TEST(LruK, Validation) {
  EXPECT_THROW(LruKCache(0, 2), std::invalid_argument);
  EXPECT_THROW(LruKCache(100, 0), std::invalid_argument);
}

TEST(LruK, KEqualsOneBehavesLikeLru) {
  LruKCache cache(300, 1);
  cache.put(1, 100, 0);
  cache.put(2, 100, 0);
  cache.put(3, 100, 0);
  ASSERT_TRUE(cache.get(1));
  cache.put(4, 100, 0);  // evicts 2 (oldest last access)
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
}

TEST(LruK, SingleReferencePagesEvictFirst) {
  // LRU-2: pairs with fewer than 2 references have infinite backward
  // distance and are preferred victims over twice-referenced pairs.
  LruKCache cache(300, 2);
  cache.put(1, 100, 0);
  ASSERT_TRUE(cache.get(1));  // 1 now has 2 references
  cache.put(2, 100, 0);       // 2 has 1 reference
  cache.put(3, 100, 0);       // 3 has 1 reference
  cache.put(4, 100, 0);       // evict: 2 (inf distance, older than 3)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruK, ScanResistance) {
  // A one-pass scan of cold keys must not flush the hot twice-referenced
  // working set (the motivating property of LRU-2 over LRU).
  LruKCache cache(1000, 2);
  for (Key k = 0; k < 5; ++k) {
    cache.put(k, 100, 0);
    ASSERT_TRUE(cache.get(k));  // hot set, 2+ refs each
  }
  for (Key scan = 100; scan < 140; ++scan) {
    cache.put(scan, 100, 0);  // single-reference scan traffic
  }
  int hot_survivors = 0;
  for (Key k = 0; k < 5; ++k) hot_survivors += cache.contains(k) ? 1 : 0;
  EXPECT_EQ(hot_survivors, 5) << "scan traffic should evict itself";
}

TEST(LruK, KthReferenceOrdering) {
  LruKCache cache(200, 2);  // room for exactly two pairs
  cache.put(1, 100, 0);
  cache.put(2, 100, 0);
  ASSERT_TRUE(cache.get(1));  // 1: refs at t1,t3 -> 2nd-last = t1
  ASSERT_TRUE(cache.get(2));  // 2: refs at t2,t4 -> 2nd-last = t2
  ASSERT_TRUE(cache.get(1));  // 1: refs at t3,t5 -> 2nd-last = t3 > t2
  cache.put(3, 100, 0);       // evict pair with oldest kth-last: 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruK, EraseAndStats) {
  LruKCache cache(200, 2);
  cache.put(1, 100, 0);
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.name(), "lru-2");
}

}  // namespace
}  // namespace camp::policy
