#include "intrusive/list.h"

#include <gtest/gtest.h>

#include <vector>

namespace camp::intrusive {
namespace {

struct Node {
  Node() = default;
  explicit Node(int node_id) : id(node_id) {}
  int id = 0;
  ListHook hook;
};

using NodeList = List<Node, &Node::hook>;

std::vector<int> ids(NodeList& list) {
  std::vector<int> out;
  for (Node& n : list) out.push_back(n.id);
  return out;
}

TEST(IntrusiveList, StartsEmpty) {
  NodeList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveList, PushBackOrder) {
  NodeList list;
  Node a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(ids(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.front()->id, 1);
  EXPECT_EQ(list.back()->id, 3);
}

TEST(IntrusiveList, PushFront) {
  NodeList list;
  Node a{1}, b{2};
  list.push_front(a);
  list.push_front(b);
  EXPECT_EQ(ids(list), (std::vector<int>{2, 1}));
}

TEST(IntrusiveList, RemoveMiddle) {
  NodeList list;
  Node a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.remove(b);
  EXPECT_EQ(ids(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(b.hook.is_linked());
}

TEST(IntrusiveList, MoveToBackIsLruTouch) {
  NodeList list;
  Node a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.move_to_back(a);
  EXPECT_EQ(ids(list), (std::vector<int>{2, 3, 1}));
  list.move_to_back(a);  // already MRU: no change
  EXPECT_EQ(ids(list), (std::vector<int>{2, 3, 1}));
}

TEST(IntrusiveList, PopFront) {
  NodeList list;
  Node a{1}, b{2};
  list.push_back(a);
  list.push_back(b);
  Node* popped = list.pop_front();
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->id, 1);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_FALSE(popped->hook.is_linked());
}

TEST(IntrusiveList, ClearUnlinksAll) {
  NodeList list;
  Node a{1}, b{2};
  list.push_back(a);
  list.push_back(b);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(a.hook.is_linked());
  EXPECT_FALSE(b.hook.is_linked());
  // Nodes are reusable after clear.
  list.push_back(b);
  EXPECT_EQ(ids(list), (std::vector<int>{2}));
}

TEST(IntrusiveList, SingleElement) {
  NodeList list;
  Node a{1};
  list.push_back(a);
  EXPECT_EQ(list.front(), list.back());
  list.move_to_back(a);
  EXPECT_EQ(list.front()->id, 1);
  list.remove(a);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, HookOffsetWorksWithNonFirstMember) {
  // The hook is not at offset 0 in Node; owner recovery must still work.
  NodeList list;
  Node a{42};
  list.push_back(a);
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.front()->id, 42);
}

TEST(IntrusiveList, StressInterleaved) {
  NodeList list;
  std::vector<Node> nodes(100);
  for (int i = 0; i < 100; ++i) nodes[static_cast<std::size_t>(i)].id = i;
  for (auto& n : nodes) list.push_back(n);
  // Remove evens.
  for (int i = 0; i < 100; i += 2) {
    list.remove(nodes[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(list.size(), 50u);
  // Touch every odd node; order must rotate consistently.
  for (int i = 1; i < 100; i += 2) {
    list.move_to_back(nodes[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(list.front()->id, 1);
  EXPECT_EQ(list.back()->id, 99);
}

}  // namespace
}  // namespace camp::intrusive
