// Determinism contract of the figure pipeline: with timing off, a figure
// run is a pure function of (figure, scale, seed) — two consecutive runs
// are byte-identical, and the seed actually threads through to the traces
// (a different seed produces different data, so nothing falls back to
// hidden global state).
#include <string>

#include <gtest/gtest.h>

#include "figures/emit.h"
#include "figures/figure_runner.h"

namespace camp::figures {
namespace {

FigureRunner runner_with_seed(std::uint64_t seed) {
  FigureOptions options;
  options.scale = Scale::tiny();
  options.seed = seed;
  return FigureRunner(options);
}

TEST(FiguresRepeatabilityTest, TwoRunsAreByteIdentical) {
  // Covers the simulator sweeps, the precision grids, the occupancy
  // timeline, and both KVS replays (single- and multi-client, sharded).
  for (const char* figure :
       {"fig4", "fig5a", "fig6cd", "fig8ab", "fig9", "fig9_scaling"}) {
    const std::string a = to_csv(runner_with_seed(kCanonicalSeed).run(figure));
    const std::string b = to_csv(runner_with_seed(kCanonicalSeed).run(figure));
    EXPECT_EQ(a, b) << figure;
    EXPECT_FALSE(a.empty());
  }
}

TEST(FiguresRepeatabilityTest, SeedThreadsThroughToTheTraces) {
  const std::string canonical =
      to_csv(runner_with_seed(kCanonicalSeed).run("fig4"));
  const std::string reseeded = to_csv(runner_with_seed(777).run("fig4"));
  EXPECT_NE(canonical, reseeded)
      << "a different base seed must change the generated trace";
}

TEST(FiguresRepeatabilityTest, SharedTraceIsMemoisedByExplicitSeed) {
  const Scale scale = Scale::tiny();
  const TraceBundle& a =
      shared_trace(TraceKind::kDefault, scale, seed_for(TraceKind::kDefault,
                                                        kCanonicalSeed));
  const TraceBundle& b =
      shared_trace(TraceKind::kDefault, scale, seed_for(TraceKind::kDefault,
                                                        kCanonicalSeed));
  EXPECT_EQ(&a, &b) << "same (kind, scale, seed) must share one bundle";
  const TraceBundle& c = shared_trace(TraceKind::kDefault, scale, 999);
  EXPECT_NE(&a, &c) << "a different seed must be a different bundle";
  EXPECT_EQ(a.seed, seed_for(TraceKind::kDefault, kCanonicalSeed));
}

TEST(FiguresRepeatabilityTest, EveryRegisteredFigureRunsAtTinyScale) {
  const FigureRunner runner = runner_with_seed(kCanonicalSeed);
  for (const FigureSpec& spec : all_figures()) {
    const FigureResult result = runner.run(spec);
    EXPECT_FALSE(result.rows.empty()) << spec.id();
    EXPECT_EQ(result.scale, "tiny") << spec.id();
  }
}

}  // namespace
}  // namespace camp::figures
