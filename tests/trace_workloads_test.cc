#include "trace/workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace camp::trace {
namespace {

TEST(Workloads, DeterministicGeneration) {
  const auto config = bg_default(1000, 5000, 7);
  TraceGenerator a(config), b(config);
  EXPECT_EQ(a.generate(), b.generate());
}

TEST(Workloads, DifferentSeedsDiffer) {
  auto c1 = bg_default(1000, 2000, 1);
  auto c2 = bg_default(1000, 2000, 2);
  EXPECT_NE(TraceGenerator(c1).generate(), TraceGenerator(c2).generate());
}

TEST(Workloads, PerKeyAttributesStable) {
  // The paper: "Once a cost is assigned to a key-value pair, it remains in
  // effect for the entire trace." Same for sizes.
  const auto config = bg_default(500, 20'000, 3);
  TraceGenerator gen(config);
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      seen;
  for (const TraceRecord& r : gen.generate()) {
    const auto [it, inserted] = seen.try_emplace(r.key, r.size, r.cost);
    if (!inserted) {
      ASSERT_EQ(it->second.first, r.size) << "size changed for " << r.key;
      ASSERT_EQ(it->second.second, r.cost) << "cost changed for " << r.key;
    }
  }
}

TEST(Workloads, SeventyTwentySkew) {
  const auto config = bg_default(2000, 100'000, 11);
  TraceGenerator gen(config);
  std::map<std::uint64_t, std::uint64_t> counts;
  for (const TraceRecord& r : gen.generate()) ++counts[r.key];
  // Take the hottest 20% of referenced keys and sum their share.
  std::vector<std::uint64_t> freq;
  freq.reserve(counts.size());
  for (const auto& [k, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  const std::size_t top = static_cast<std::size_t>(0.2 * 2000);
  std::uint64_t head = 0, total = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    total += freq[i];
    if (i < top) head += freq[i];
  }
  EXPECT_NEAR(static_cast<double>(head) / static_cast<double>(total), 0.7,
              0.03);
}

TEST(Workloads, SyntheticCostsAreTheThreeTiers) {
  const auto config = bg_default(1000, 30'000, 13);
  TraceGenerator gen(config);
  std::set<std::uint32_t> costs;
  for (const TraceRecord& r : gen.generate()) costs.insert(r.cost);
  for (const std::uint32_t c : costs) {
    EXPECT_TRUE(c == 1 || c == 100 || c == 10'000) << c;
  }
  EXPECT_EQ(costs.size(), 3u) << "all three tiers should appear";
}

TEST(Workloads, VariableSizeFixedCostPreset) {
  const auto config = bg_variable_size_fixed_cost(1000, 10'000, 17);
  TraceGenerator gen(config);
  std::set<std::uint32_t> sizes;
  for (const TraceRecord& r : gen.generate()) {
    EXPECT_EQ(r.cost, 1u);
    sizes.insert(r.size);
    EXPECT_GE(r.size, 64u);
    EXPECT_LE(r.size, 256u * 1024);
  }
  EXPECT_GT(sizes.size(), 100u) << "sizes should vary widely";
}

TEST(Workloads, EqualSizeVariableCostPreset) {
  const auto config = bg_equal_size_variable_cost(1000, 10'000, 19);
  TraceGenerator gen(config);
  std::set<std::uint32_t> costs;
  for (const TraceRecord& r : gen.generate()) {
    EXPECT_EQ(r.size, 4096u);
    costs.insert(r.cost);
  }
  EXPECT_GT(costs.size(), 100u)
      << "Section 3.2: many more distinct cost values";
}

TEST(Workloads, UniqueBytesMatchesEnumeration) {
  const auto config = bg_default(200, 100, 23);
  TraceGenerator gen(config);
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < 200; ++k) total += gen.size_of(k);
  EXPECT_EQ(gen.unique_bytes(), total);
  EXPECT_GT(total, 0u);
}

TEST(Workloads, PhasedTracesDisjointKeys) {
  auto base = bg_default(300, 1000, 29);
  const auto rows = generate_phased(base, 4);
  EXPECT_EQ(rows.size(), 4000u);
  std::map<std::uint32_t, std::set<std::uint64_t>> keys_by_phase;
  for (const TraceRecord& r : rows) keys_by_phase[r.trace_id].insert(r.key);
  ASSERT_EQ(keys_by_phase.size(), 4u);
  for (auto a = keys_by_phase.begin(); a != keys_by_phase.end(); ++a) {
    for (auto b = std::next(a); b != keys_by_phase.end(); ++b) {
      std::vector<std::uint64_t> overlap;
      std::set_intersection(a->second.begin(), a->second.end(),
                            b->second.begin(), b->second.end(),
                            std::back_inserter(overlap));
      EXPECT_TRUE(overlap.empty())
          << "phases " << a->first << " and " << b->first << " share keys";
    }
  }
  // Phases are contiguous: trace_id never decreases.
  std::uint32_t last = 0;
  for (const TraceRecord& r : rows) {
    EXPECT_GE(r.trace_id, last);
    last = r.trace_id;
  }
}

TEST(Workloads, RejectsZeroKeys) {
  WorkloadConfig c;
  c.num_keys = 0;
  EXPECT_THROW(TraceGenerator{c}, std::invalid_argument);
}

}  // namespace
}  // namespace camp::trace
