#include "policy/clock.h"

#include <gtest/gtest.h>

namespace camp::policy {
namespace {

TEST(Clock, Validation) {
  EXPECT_THROW(ClockCache(0), std::invalid_argument);
}

TEST(Clock, SecondChanceProtectsReferenced) {
  ClockCache cache(300);
  cache.put(1, 100, 0);
  cache.put(2, 100, 0);
  cache.put(3, 100, 0);
  ASSERT_TRUE(cache.get(1));  // sets 1's reference bit
  cache.put(4, 100, 0);       // hand: 1 referenced -> spared; 2 evicted
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Clock, UnreferencedEvictedInRingOrder) {
  ClockCache cache(300);
  cache.put(1, 100, 0);
  cache.put(2, 100, 0);
  cache.put(3, 100, 0);
  cache.put(4, 100, 0);  // nobody referenced: 1 goes (oldest in ring)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Clock, FullLapClearsAllBits) {
  ClockCache cache(300);
  cache.put(1, 100, 0);
  cache.put(2, 100, 0);
  cache.put(3, 100, 0);
  ASSERT_TRUE(cache.get(1));
  ASSERT_TRUE(cache.get(2));
  ASSERT_TRUE(cache.get(3));
  // All referenced: the sweep clears 1,2,3 then evicts 1 on the second lap.
  cache.put(4, 100, 0);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_GE(cache.hand_steps(), 4u);
}

TEST(Clock, EvictOneOnDemand) {
  ClockCache cache(300);
  EXPECT_FALSE(cache.evict_one()) << "empty cache has no victim";
  cache.put(1, 100, 0);
  EXPECT_TRUE(cache.evict_one());
  EXPECT_EQ(cache.item_count(), 0u);
}

TEST(Clock, CostOblivious) {
  ClockCache cache(200);
  cache.put(1, 100, 1'000'000);
  cache.put(2, 100, 1);
  cache.put(3, 100, 1);  // evicts 1 despite its cost
  EXPECT_FALSE(cache.contains(1));
}

}  // namespace
}  // namespace camp::policy
