#include "kvs/sharded_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/camp.h"
#include "policy/lru.h"
#include "util/rng.h"

namespace camp::kvs {
namespace {

ShardedCache::ShardFactory camp_factory() {
  return [](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    return core::make_camp(config);
  };
}

TEST(ShardedCache, Validation) {
  EXPECT_THROW(ShardedCache(1000, 0, camp_factory()), std::invalid_argument);
  EXPECT_THROW(ShardedCache(2, 4, camp_factory()), std::invalid_argument);
}

TEST(ShardedCache, CapacitySplitAcrossShards) {
  ShardedCache cache(1001, 4, camp_factory());
  EXPECT_EQ(cache.capacity_bytes(), 1001u);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.name(), "sharded(4xcamp(p=5))");
}

TEST(ShardedCache, CapacityRemainderIsDistributedEvenly) {
  // 1003 = 4 * 250 + 3: the three remainder bytes go to the first three
  // shards, so nothing is dropped and no shard is more than one byte
  // larger than another.
  ShardedCache cache(1003, 4, camp_factory());
  std::uint64_t sum = 0, min_cap = ~0ull, max_cap = 0;
  for (std::size_t i = 0; i < cache.shard_count(); ++i) {
    const std::uint64_t cap = cache.shard_capacity_bytes(i);
    sum += cap;
    min_cap = std::min(min_cap, cap);
    max_cap = std::max(max_cap, cap);
  }
  EXPECT_EQ(sum, 1003u) << "shard capacities must sum to the full budget";
  EXPECT_LE(max_cap - min_cap, 1u);
  EXPECT_EQ(cache.shard_capacity_bytes(0), 251u);
  EXPECT_EQ(cache.shard_capacity_bytes(3), 250u);
  EXPECT_EQ(cache.capacity_bytes(), 1003u);

  // An exact split stays exact.
  ShardedCache even(1000, 4, camp_factory());
  for (std::size_t i = 0; i < even.shard_count(); ++i) {
    EXPECT_EQ(even.shard_capacity_bytes(i), 250u);
  }
}

TEST(ShardedCache, BasicSemantics) {
  ShardedCache cache(10'000, 4, camp_factory());
  EXPECT_FALSE(cache.get(1));
  EXPECT_TRUE(cache.put(1, 100, 5));
  EXPECT_TRUE(cache.get(1));
  EXPECT_TRUE(cache.contains(1));
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().gets, 2u);
}

TEST(ShardedCache, EvictionListenerForwarded) {
  ShardedCache cache(400, 2, [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  });
  std::atomic<int> evictions{0};
  cache.set_eviction_listener(
      [&](policy::Key, std::uint64_t) { evictions.fetch_add(1); });
  // Each shard holds 200 bytes; same-shard keys force shard-local eviction.
  for (policy::Key k = 0; k < 50; ++k) cache.put(k, 150, 1);
  EXPECT_GT(evictions.load(), 0);
}

TEST(ShardedCache, ConcurrentThroughputIsCorrect) {
  ShardedCache cache(1u << 20, 8, camp_factory());
  constexpr int kThreads = 8;
  constexpr int kOps = 20'000;
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &hits, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        const policy::Key k = rng.below(2000);
        if (cache.get(k)) {
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.put(k, 64 + rng.below(512), 1 + rng.below(1000));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.gets, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(stats.hits, hits.load());
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
}

TEST(ShardedCache, ConcurrentStatsReadersDoNotRace) {
  // stats() aggregates under the shard locks into a thread-local snapshot:
  // concurrent readers share no aggregation buffer. Run under TSan in CI.
  ShardedCache cache(1u << 20, 4, camp_factory());
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kOps = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&cache, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      for (int i = 0; i < kOps; ++i) {
        const policy::Key k = rng.below(500);
        if (!cache.get(k)) cache.put(k, 64, 1);
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < kOps; ++i) {
        const policy::CacheStats& s = cache.stats();
        // Monotone invariant on a coherent snapshot.
        EXPECT_LE(s.hits, s.gets);
        const policy::CacheStats owned = cache.stats_snapshot();
        EXPECT_LE(owned.hits, owned.gets);
      }
    });
  }
  for (auto& t : threads) t.join();
  const policy::CacheStats final_stats = cache.stats_snapshot();
  EXPECT_EQ(final_stats.gets,
            static_cast<std::uint64_t>(kWriters) * kOps);
}

TEST(ShardedCache, StatsReferencesFromTwoInstancesDoNotAlias) {
  ShardedCache a(10'000, 2, camp_factory());
  ShardedCache b(10'000, 2, camp_factory());
  a.put(1, 100, 1);
  (void)a.get(1);
  (void)a.get(2);  // a: 2 gets
  (void)b.get(7);  // b: 1 get
  const policy::CacheStats& sa = a.stats();
  const policy::CacheStats& sb = b.stats();
  EXPECT_NE(&sa, &sb) << "per-instance buffers must not alias";
  EXPECT_EQ(sa.gets, 2u) << "a's snapshot must survive b.stats()";
  EXPECT_EQ(sb.gets, 1u);
}

TEST(ShardedCache, ListenerInstallDuringTraffic) {
  // Regression: set_eviction_listener (and the capacity/name accessors)
  // used to reach shard->cache WITHOUT the shard mutex, racing the install
  // against workers mid-put on the policy's unguarded listener field. They
  // now take each shard lock (caught by the thread-safety annotations).
  // Run under TSan in CI.
  ShardedCache cache(64 * 100, 4, camp_factory());  // small: evicts early
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> listener_fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&cache, &stop, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const policy::Key k = rng.below(5'000);
        if (!cache.get(k)) cache.put(k, 64, 1);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    cache.set_eviction_listener(
        [&listener_fires](policy::Key, std::uint64_t) {
          listener_fires.fetch_add(1, std::memory_order_relaxed);
        });
    (void)cache.capacity_bytes();
    (void)cache.name();
    (void)cache.shard_capacity_bytes(0);
    cache.set_eviction_listener(nullptr);
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  // The traffic overwhelms the tiny capacity, so at least some installs
  // must have observed evictions.
  SUCCEED();
}

TEST(ShardedCache, SameKeyAlwaysSameShard) {
  ShardedCache cache(10'000, 4, camp_factory());
  ASSERT_TRUE(cache.put(42, 100, 5));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cache.get(42)) << "key must be routed consistently";
  }
}

}  // namespace
}  // namespace camp::kvs
