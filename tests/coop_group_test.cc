// Integration tests for the cooperative caching group: request routing,
// peer fetches, the last-replica guard's preserve-then-expire contract, and
// node churn.
#include "coop/group.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace camp::coop {
namespace {

using policy::Key;

CoopConfig base_cfg(std::uint32_t nodes, std::uint64_t node_cap) {
  CoopConfig c;
  c.nodes = nodes;
  c.node_capacity_bytes = node_cap;
  return c;
}

TEST(CoopGroup, RejectsBadConfig) {
  EXPECT_THROW(CoopGroup{CoopConfig{}}, std::invalid_argument);
  EXPECT_THROW(CoopGroup{base_cfg(0, 100)}, std::invalid_argument);
  CoopConfig bad = base_cfg(2, 100);
  bad.guard_fraction = 1.5;
  EXPECT_THROW(CoopGroup{bad}, std::invalid_argument);
  bad = base_cfg(2, 100);
  bad.guard_lease_requests = 0;
  EXPECT_THROW(CoopGroup{bad}, std::invalid_argument);
  bad.preserve_last_replica = false;  // lease irrelevant when guard is off
  EXPECT_NO_THROW(CoopGroup{bad});
}

TEST(CoopGroup, FirstRequestIsAColdMissSecondIsALocalHit) {
  CoopGroup group(base_cfg(4, 10'000));
  EXPECT_FALSE(group.request(1, 100, 50));
  EXPECT_TRUE(group.request(1, 100, 50));
  const CoopMetrics& m = group.metrics();
  EXPECT_EQ(m.cold_misses, 1u);
  EXPECT_EQ(m.local_hits, 1u);
  EXPECT_EQ(m.misses, 0u);
  EXPECT_EQ(m.requests, 2u);
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, KeysRouteToTheirHomeNode) {
  CoopGroup group(base_cfg(4, 1 << 20));
  for (Key k = 0; k < 200; ++k) group.request(k, 100, 10);
  for (Key k = 0; k < 200; ++k) {
    EXPECT_TRUE(group.directory().holds(k, group.home_node(k)))
        << "key " << k << " not at its home";
  }
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, RemoteHitAfterTopologyChange) {
  // Install keys with 2 nodes, then add nodes so some keys' home moves.
  // The next request for a moved key must be a remote hit (peer fetch),
  // charged transfer cost, and promoted to the new home.
  CoopConfig cfg = base_cfg(2, 1 << 20);
  cfg.remote_transfer_cost = 3;
  CoopGroup group(cfg);
  for (Key k = 0; k < 400; ++k) group.request(k, 100, 1000);
  const auto before = group.metrics();
  group.add_node();
  group.add_node();
  std::uint64_t moved = 0;
  for (Key k = 0; k < 400; ++k) {
    const auto home = group.home_node(k);
    if (!group.directory().holds(k, home)) ++moved;
    EXPECT_TRUE(group.request(k, 100, 1000)) << "key " << k << " lost";
  }
  ASSERT_GT(moved, 0u) << "adding 2 nodes must remap some keys";
  const auto& m = group.metrics();
  EXPECT_EQ(m.remote_hits - before.remote_hits, moved);
  EXPECT_EQ(m.transfer_cost - before.transfer_cost, moved * 3);
  EXPECT_EQ(m.misses, before.misses) << "no recompute should have happened";
  // Promotion: moved keys now also live at their new home.
  for (Key k = 0; k < 400; ++k) {
    EXPECT_TRUE(group.directory().holds(k, group.home_node(k)));
  }
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, PromotionCanBeDisabled) {
  CoopConfig cfg = base_cfg(2, 1 << 20);
  cfg.promote_on_remote_hit = false;
  CoopGroup group(cfg);
  for (Key k = 0; k < 200; ++k) group.request(k, 100, 10);
  group.add_node();
  for (Key k = 0; k < 200; ++k) group.request(k, 100, 10);
  // Without promotion, every moved key's replica count stays 1.
  for (Key k = 0; k < 200; ++k) {
    EXPECT_EQ(group.directory().replica_count(k), 1u) << "key " << k;
  }
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, LastReplicaParksInGuardAndReinstates) {
  // One node, tiny cache: evictions park last replicas. Re-requesting a
  // parked key within the lease must be a guard hit (no recompute).
  CoopConfig cfg = base_cfg(1, 1000);
  cfg.guard_fraction = 0.5;  // 500-byte guard
  cfg.guard_lease_requests = 1'000;
  CoopGroup group(cfg);
  // Fill: key 1 (cheap) will be evicted by the expensive keys that follow.
  group.request(1, 400, 1);
  group.request(2, 400, 10'000);
  group.request(3, 400, 10'000);  // evicts key 1 -> guard
  ASSERT_EQ(group.directory().replica_count(1), 0u);
  ASSERT_GE(group.metrics().guard_parked, 1u);
  ASSERT_GT(group.guard_item_count(), 0u);

  const auto misses_before = group.metrics().misses;
  EXPECT_TRUE(group.request(1, 400, 1)) << "guard must serve the request";
  EXPECT_EQ(group.metrics().guard_hits, 1u);
  EXPECT_EQ(group.metrics().misses, misses_before) << "no recompute";
  EXPECT_TRUE(group.directory().holds(1, group.home_node(1)))
      << "reinstated at home";
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, GuardLeaseExpiresColdLastReplicas) {
  // The paper's challenge: a preserved last replica that is never accessed
  // again must not occupy memory indefinitely.
  CoopConfig cfg = base_cfg(1, 1000);
  cfg.guard_fraction = 1.0;
  cfg.guard_lease_requests = 50;
  CoopGroup group(cfg);
  group.request(1, 400, 1);
  group.request(2, 400, 10'000);
  group.request(3, 400, 10'000);  // key 1 parks
  ASSERT_GT(group.guard_item_count(), 0u);
  // Churn unrelated keys past the lease.
  for (int i = 0; i < 60; ++i) group.request(1000 + (i % 2), 100, 10);
  EXPECT_EQ(group.guard_item_count(), 0u) << "lease must have lapsed";
  EXPECT_GE(group.metrics().guard_expired, 1u);
  // Re-request: a real (non-cold) miss now.
  const auto misses_before = group.metrics().misses;
  EXPECT_FALSE(group.request(1, 400, 1));
  EXPECT_EQ(group.metrics().misses, misses_before + 1);
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, GuardByteBudgetSqueezesOldestFirst) {
  CoopConfig cfg = base_cfg(1, 600);
  cfg.guard_fraction = 0.5;          // 300 bytes: one 300-byte entry max
  cfg.guard_lease_requests = 10'000;
  CoopGroup group(cfg);
  group.request(1, 300, 1);
  group.request(2, 300, 2);
  group.request(3, 600, 10'000);  // evicts 1 and 2; only one fits the guard
  EXPECT_EQ(group.metrics().guard_parked, 2u);
  EXPECT_EQ(group.metrics().guard_squeezed, 1u) << "oldest park displaced";
  EXPECT_EQ(group.guard_item_count(), 1u);
  EXPECT_LE(group.guard_used_bytes(), 300u);
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, GuardCanBeDisabled) {
  CoopConfig cfg = base_cfg(1, 1000);
  cfg.preserve_last_replica = false;
  CoopGroup group(cfg);
  group.request(1, 400, 1);
  group.request(2, 400, 10'000);
  group.request(3, 400, 10'000);
  EXPECT_EQ(group.guard_item_count(), 0u);
  EXPECT_EQ(group.metrics().guard_parked, 0u);
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, RemoveNodeDrainsThroughTheGuard) {
  CoopConfig cfg = base_cfg(3, 1 << 20);
  cfg.guard_fraction = 1.0;
  CoopGroup group(cfg);
  for (Key k = 0; k < 300; ++k) group.request(k, 100, 100);
  const auto node_to_remove = group.home_node(0);
  group.remove_node(node_to_remove);
  EXPECT_EQ(group.node_count(), 2u);
  // Keys whose only copy lived on the removed node are parked, not lost.
  EXPECT_GT(group.guard_item_count(), 0u);
  EXPECT_TRUE(group.check_invariants());
  // A parked key is served from the guard without recompute.
  const auto misses_before = group.metrics().misses;
  EXPECT_TRUE(group.request(0, 100, 100));
  EXPECT_EQ(group.metrics().misses, misses_before);
}

// Decommission-consistency regression (the satellite audit): removing a
// node mid-workload must leave NO pair that is both still directory-tracked
// and physically gone, and every last replica the victim held must land in
// the guard — the directory's orphan list and the guard's intake have to
// agree exactly.
TEST(CoopGroup, DecommissionMidWorkloadLosesNothing) {
  CoopConfig cfg = base_cfg(4, 200'000);
  cfg.guard_fraction = 1.0;  // ample: no squeeze may excuse a missing park
  CoopGroup group(cfg);
  util::Xoshiro256 rng(2014);
  for (int i = 0; i < 20'000; ++i) {
    group.request(rng.below(800), 64 + rng.below(400), 1 + rng.below(1000));
  }
  const CoopGroup::NodeId victim = 2;
  // The keys whose ONLY copy lives on the victim: exactly these must flow
  // into the guard.
  std::vector<Key> expected_orphans;
  for (const auto& [key, holders] : group.directory().snapshot()) {
    if (holders.size() == 1 && holders.front() == victim) {
      expected_orphans.push_back(key);
    }
  }
  ASSERT_FALSE(expected_orphans.empty()) << "workload never used the victim";
  const std::uint64_t parked_before = group.metrics().guard_parked;

  group.remove_node(victim);

  for (const Key key : expected_orphans) {
    EXPECT_TRUE(group.guard_contains(key))
        << "last replica of key " << key << " vanished in the decommission";
    EXPECT_EQ(group.directory().replica_count(key), 0u);
  }
  // Guard intake matches the orphan set exactly — no phantom parks.
  EXPECT_EQ(group.metrics().guard_parked - parked_before,
            expected_orphans.size());
  // No pair is both directory-tracked and gone (check_invariants verifies
  // every directory entry against the surviving caches).
  EXPECT_TRUE(group.check_invariants());
  // ... and the drained pairs are servable: a re-request is a guard hit,
  // not a recompute.
  const std::uint64_t misses_before = group.metrics().misses;
  EXPECT_TRUE(group.request(expected_orphans.front(), 100, 100));
  EXPECT_EQ(group.metrics().misses, misses_before);
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, RemovingUnknownOrFinalNodeThrows) {
  CoopGroup group(base_cfg(2, 1000));
  EXPECT_THROW(group.remove_node(99), std::invalid_argument);
  group.remove_node(0);
  EXPECT_THROW(group.remove_node(1), std::invalid_argument);
}

TEST(CoopGroup, CooperationBeatsIsolatedNodesOnCost) {
  // The cooperative win: after a topology change, keys whose home moved are
  // served by a peer fetch at transfer cost 1 instead of a recompute at
  // cost 10'000. "No cooperation" is proxied by pricing the peer fetch at
  // the full recompute cost, so the ratio difference isolates the benefit.
  const auto drive = [](CoopGroup& group) {
    for (Key k = 0; k < 400; ++k) group.request(k, 100, 10'000);  // warm-up
    group.add_node();  // remaps a slice of the keyspace
    for (Key k = 0; k < 400; ++k) group.request(k, 100, 10'000);
  };
  CoopConfig coop_cfg = base_cfg(2, 1 << 20);
  coop_cfg.remote_transfer_cost = 1;
  CoopGroup coop(coop_cfg);
  drive(coop);

  CoopConfig solo_cfg = base_cfg(2, 1 << 20);
  solo_cfg.remote_transfer_cost = 10'000;
  CoopGroup solo(solo_cfg);
  drive(solo);

  ASSERT_GT(coop.metrics().remote_hits, 0u) << "no keys moved; vacuous test";
  EXPECT_LT(coop.metrics().cost_miss_ratio(),
            solo.metrics().cost_miss_ratio());
  EXPECT_TRUE(coop.check_invariants());
}

TEST(CoopGroup, RandomizedChurnKeepsInvariants) {
  CoopConfig cfg = base_cfg(4, 8'000);
  cfg.guard_fraction = 0.25;
  cfg.guard_lease_requests = 2'000;
  CoopGroup group(cfg);
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 30'000; ++i) {
    const Key k = rng.below(800);
    group.request(k, 16 + rng.below(600), 1 + rng.below(10'000));
    if (i % 10'000 == 9'999) {
      ASSERT_TRUE(group.check_invariants()) << "op " << i;
    }
  }
  // Topology churn under load.
  group.add_node();
  for (int i = 0; i < 5'000; ++i) {
    group.request(rng.below(800), 100, 1 + rng.below(100));
  }
  ASSERT_TRUE(group.check_invariants());
  const auto any_node = group.home_node(1);
  group.remove_node(any_node);
  for (int i = 0; i < 5'000; ++i) {
    group.request(rng.below(800), 100, 1 + rng.below(100));
  }
  EXPECT_TRUE(group.check_invariants());
  const auto& m = group.metrics();
  EXPECT_EQ(m.local_hits + m.remote_hits + m.guard_hits + m.misses +
                m.cold_misses,
            m.requests);
}

TEST(CoopGroup, ReplicationInstallsAtDistinctNodes) {
  CoopConfig cfg = base_cfg(4, 1 << 20);
  cfg.replication = 2;
  CoopGroup group(cfg);
  for (Key k = 0; k < 200; ++k) group.request(k, 100, 10);
  for (Key k = 0; k < 200; ++k) {
    EXPECT_EQ(group.directory().replica_count(k), 2u) << "key " << k;
    EXPECT_TRUE(group.directory().holds(k, group.home_node(k)));
  }
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, ReplicationClampedToGroupSize) {
  CoopConfig cfg = base_cfg(2, 1 << 20);
  cfg.replication = 5;
  CoopGroup group(cfg);
  group.request(1, 100, 10);
  EXPECT_EQ(group.directory().replica_count(1), 2u);
  EXPECT_THROW([] {
    CoopConfig bad;
    bad.nodes = 2;
    bad.node_capacity_bytes = 100;
    bad.replication = 0;
    CoopGroup{bad};
  }(),
               std::invalid_argument);
}

TEST(CoopGroup, ReplicaSurvivesNodeLoss) {
  // With replication 2, decommissioning a key's home must leave the pair
  // servable from its secondary as a remote hit — no recompute, no guard.
  CoopConfig cfg = base_cfg(4, 1 << 20);
  cfg.replication = 2;
  CoopGroup group(cfg);
  for (Key k = 0; k < 200; ++k) group.request(k, 100, 10'000);
  const auto victim = group.home_node(7);
  group.remove_node(victim);
  const auto misses_before = group.metrics().misses;
  const auto parked_before = group.metrics().guard_parked;
  EXPECT_TRUE(group.request(7, 100, 10'000));
  EXPECT_EQ(group.metrics().misses, misses_before) << "recompute happened";
  // Key 7 had a second replica, so it never went through the guard.
  EXPECT_GE(group.metrics().guard_parked, parked_before);
  EXPECT_TRUE(group.check_invariants());
}

TEST(CoopGroup, ReplicationReducesGuardTraffic) {
  // Doubly-replicated pairs only park when BOTH copies are gone; under node
  // churn the guard sees strictly less traffic than with replication 1.
  const auto drive = [](CoopGroup& group) {
    util::Xoshiro256 rng(9);
    for (int i = 0; i < 10'000; ++i) {
      group.request(rng.below(300), 100, 100);
    }
    group.remove_node(0);
    util::Xoshiro256 rng2(10);
    for (int i = 0; i < 5'000; ++i) {
      group.request(rng2.below(300), 100, 100);
    }
  };
  CoopConfig r1 = base_cfg(4, 1 << 20);
  CoopGroup group_r1(r1);
  drive(group_r1);
  CoopConfig r2 = base_cfg(4, 1 << 20);
  r2.replication = 2;
  CoopGroup group_r2(r2);
  drive(group_r2);
  EXPECT_LT(group_r2.metrics().guard_parked, group_r1.metrics().guard_parked);
  EXPECT_TRUE(group_r2.check_invariants());
}

TEST(CoopGroup, PerNodePolicyIsConfigurable) {
  CoopConfig cfg = base_cfg(2, 10'000);
  cfg.policy_spec = "lru";
  CoopGroup group(cfg);
  group.request(1, 100, 10);
  EXPECT_EQ(group.node_stats(group.home_node(1)).puts, 1u);
  CoopConfig bad = cfg;
  bad.policy_spec = "no-such-policy";
  EXPECT_THROW(CoopGroup{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace camp::coop
