// Differential property test for hash partitioning: the SAME random
// batched op stream (fixed seeds) executed against 1, 4 and 7 shards must
// produce identical per-key results and identical aggregate hit/miss
// totals — sharding is a concurrency layout, never a semantic change.
//
// Two layers are pinned:
//   * policy level: ShardedCache{1,4,7} vs the raw LruCache it wraps, with
//     capacity comfortably above the working set (eviction order across
//     shard splits is legitimately different, so the equivalence is about
//     routing, not victim choice);
//   * store level: KvsStore (slab-backed engines) at 1/4/7 shards driven
//     through the batched InprocClient transport.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kvs/api.h"
#include "kvs/inproc.h"
#include "kvs/sharded_cache.h"
#include "kvs/store.h"
#include "policy/lru.h"
#include "util/clock.h"
#include "util/rng.h"

namespace camp {
namespace {

// ---- policy level ---------------------------------------------------------

struct PolicyOp {
  enum class Kind { kGet, kPut, kErase, kContains } kind;
  policy::Key key;
  std::uint64_t size = 0;
  std::uint64_t cost = 0;
};

std::vector<PolicyOp> random_policy_ops(std::uint64_t seed, std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<PolicyOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PolicyOp op;
    const std::uint64_t roll = rng.below(10);
    op.key = rng.below(600);
    if (roll < 5) {
      op.kind = PolicyOp::Kind::kGet;
    } else if (roll < 8) {
      op.kind = PolicyOp::Kind::kPut;
      op.size = 64 + rng.below(2048);
      op.cost = 1 + rng.below(10'000);
    } else if (roll < 9) {
      op.kind = PolicyOp::Kind::kErase;
    } else {
      op.kind = PolicyOp::Kind::kContains;
    }
    ops.push_back(op);
  }
  return ops;
}

/// Replay `ops` and record every boolean outcome in order.
std::vector<bool> replay_policy_ops(policy::ICache& cache,
                                    const std::vector<PolicyOp>& ops) {
  std::vector<bool> outcomes;
  outcomes.reserve(ops.size());
  for (const PolicyOp& op : ops) {
    switch (op.kind) {
      case PolicyOp::Kind::kGet:
        outcomes.push_back(cache.get(op.key));
        break;
      case PolicyOp::Kind::kPut:
        outcomes.push_back(cache.put(op.key, op.size, op.cost));
        break;
      case PolicyOp::Kind::kErase:
        cache.erase(op.key);
        outcomes.push_back(true);
        break;
      case PolicyOp::Kind::kContains:
        outcomes.push_back(cache.contains(op.key));
        break;
    }
  }
  return outcomes;
}

kvs::ShardedCache::ShardFactory lru_shard_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

TEST(KvsShardEquivalenceTest, ShardedCacheMatchesSingleLruUnderAllSplits) {
  // 600 keys x <= 2 KiB: far below 64 MiB, so no shard ever evicts and the
  // op outcomes are purely a function of routing correctness.
  constexpr std::uint64_t kCapacity = 64u << 20;
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    const auto ops = random_policy_ops(seed, 20'000);

    policy::LruCache reference(kCapacity);
    const auto want = replay_policy_ops(reference, ops);

    for (const std::size_t shards : {1u, 4u, 7u}) {
      kvs::ShardedCache cache(kCapacity, shards, lru_shard_factory());
      const auto got = replay_policy_ops(cache, ops);
      EXPECT_EQ(want, got) << "seed=" << seed << " shards=" << shards;

      const policy::CacheStats reference_stats = reference.stats();
      const policy::CacheStats stats = cache.stats_snapshot();
      EXPECT_EQ(stats.gets, reference_stats.gets) << "shards=" << shards;
      EXPECT_EQ(stats.hits, reference_stats.hits) << "shards=" << shards;
      EXPECT_EQ(stats.misses, reference_stats.misses)
          << "shards=" << shards;
      EXPECT_EQ(stats.evictions, 0u) << "shards=" << shards;
      EXPECT_EQ(cache.item_count(), reference.item_count())
          << "shards=" << shards;
      EXPECT_EQ(cache.used_bytes(), reference.used_bytes())
          << "shards=" << shards;
    }
  }
}

// ---- store level ----------------------------------------------------------

kvs::KvsBatch random_batch(util::Xoshiro256& rng, std::size_t ops) {
  kvs::KvsBatch batch;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::string key = "key-" + std::to_string(rng.below(400));
    const std::uint64_t roll = rng.below(10);
    if (roll < 5) {
      batch.add_iqget(key);
    } else if (roll < 6) {
      batch.add_get(key);
    } else if (roll < 9) {
      batch.add_set(key, std::string(64 + rng.below(1024), 'v'),
                    static_cast<std::uint32_t>(rng.below(16)),
                    static_cast<std::uint32_t>(1 + rng.below(10'000)));
    } else {
      batch.add_del(key);
    }
  }
  return batch;
}

struct StoreReplay {
  std::vector<bool> oks;
  std::vector<std::string> values;
  kvs::EngineStats stats;
};

StoreReplay replay_store(std::size_t shards, std::uint64_t seed) {
  static const util::ManualClock clock;
  kvs::StoreConfig config;
  config.shards = shards;
  config.engine.slab.memory_limit_bytes = 256u << 20;  // never evicts
  kvs::KvsStore store(config, [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  }, clock);
  kvs::InprocClient client(store);

  util::Xoshiro256 rng(seed);
  StoreReplay replay;
  for (int b = 0; b < 60; ++b) {
    const kvs::KvsBatch batch = random_batch(rng, 32);
    const kvs::KvsBatchResult result = client.execute(batch);
    EXPECT_EQ(result.size(), batch.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      replay.oks.push_back(result[i].ok);
      replay.values.push_back(result[i].value);
    }
  }
  replay.stats = store.aggregated_stats();
  return replay;
}

TEST(KvsShardEquivalenceTest, StoreBatchesMatchSingleShardEngine) {
  for (const std::uint64_t seed : {3u, 2014u}) {
    const StoreReplay want = replay_store(/*shards=*/1, seed);
    ASSERT_GT(want.stats.gets, 0u);
    ASSERT_GT(want.stats.hits, 0u) << "stream must exercise hits";
    ASSERT_GT(want.stats.sets, 0u);

    for (const std::size_t shards : {4u, 7u}) {
      const StoreReplay got = replay_store(shards, seed);
      EXPECT_EQ(want.oks, got.oks) << "shards=" << shards;
      EXPECT_EQ(want.values, got.values) << "shards=" << shards;
      EXPECT_EQ(want.stats.gets, got.stats.gets) << "shards=" << shards;
      EXPECT_EQ(want.stats.hits, got.stats.hits) << "shards=" << shards;
      EXPECT_EQ(want.stats.sets, got.stats.sets) << "shards=" << shards;
      EXPECT_EQ(want.stats.deletes, got.stats.deletes)
          << "shards=" << shards;
      EXPECT_EQ(want.stats.items, got.stats.items) << "shards=" << shards;
      EXPECT_EQ(want.stats.value_bytes, got.stats.value_bytes)
          << "shards=" << shards;
      EXPECT_EQ(got.stats.rejected_sets, 0u) << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace camp
