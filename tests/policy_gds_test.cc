#include "policy/gds.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace camp::policy {
namespace {

GdsConfig cfg(std::uint64_t cap) {
  GdsConfig c;
  c.capacity_bytes = cap;
  return c;
}

TEST(Gds, RejectsBadConfig) {
  const GdsConfig zero_capacity{};
  EXPECT_THROW(GdsCache{zero_capacity}, std::invalid_argument);
  GdsConfig bad;
  bad.capacity_bytes = 10;
  bad.precision = 0;
  EXPECT_THROW(GdsCache{bad}, std::invalid_argument);
}

TEST(Gds, EvictsSmallestPriority) {
  GdsCache cache(cfg(300));
  cache.put(1, 100, 1);
  cache.put(2, 100, 10'000);
  cache.put(3, 100, 100);
  EXPECT_EQ(cache.peek_victim(), std::optional<Key>(1));
  cache.put(4, 100, 100);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Gds, CostToSizeRatioDecides) {
  GdsCache cache(cfg(1000));
  // Same cost: larger pair has the lower ratio and goes first.
  cache.put(1, 800, 100);
  cache.put(2, 100, 100);
  cache.put(3, 200, 100);  // 1100 > 1000
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Gds, HitDelaysEviction) {
  GdsCache cache(cfg(300));
  cache.put(1, 100, 10);
  cache.put(2, 100, 10);
  cache.put(3, 100, 10);
  // Inflate L by churning; then hit 1 so its H refreshes.
  ASSERT_TRUE(cache.get(1));
  cache.put(4, 100, 10);  // someone must go; with LRU-ish H refresh, not 1
  EXPECT_TRUE(cache.contains(1));
}

TEST(Gds, InflationMonotone) {
  GdsCache cache(cfg(500));
  util::SplitMix64 rng(3);
  std::uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.next() % 40;
    if (!cache.get(k)) cache.put(k, 50 + rng.next() % 100, 1 + rng.next() % 999);
    ASSERT_GE(cache.inflation(), last);
    last = cache.inflation();
  }
}

TEST(Gds, PropositionOneBound) {
  // L <= H(p) for all resident pairs at all times.
  GdsCache cache(cfg(800));
  util::SplitMix64 rng(5);
  std::vector<Key> keys;
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.next() % 60;
    if (!cache.get(k)) {
      cache.put(k, 40 + rng.next() % 200, 1 + rng.next() % 5000);
      keys.push_back(k);
    }
    for (const Key kk : keys) {
      if (cache.contains(kk)) {
        ASSERT_GE(cache.priority_of(kk), cache.inflation());
      }
    }
    if (keys.size() > 64) keys.erase(keys.begin(), keys.begin() + 32);
  }
}

TEST(Gds, HeapStatsAccumulate) {
  GdsCache cache(cfg(500));
  for (Key k = 0; k < 20; ++k) cache.put(k, 40, 10);
  const auto& stats = cache.heap_stats();
  EXPECT_GE(stats.pushes, 20u);
  EXPECT_GT(stats.nodes_visited, 0u);
  // Every hit costs an erase + push (the per-hit PQ traffic CAMP avoids).
  const auto erases_before = stats.erases;
  ASSERT_TRUE(cache.get(15));
  EXPECT_EQ(cache.heap_stats().erases, erases_before + 1);
}

TEST(Gds, RoundedVariantCoarsensPriorities) {
  GdsConfig rounded;
  rounded.capacity_bytes = 1 << 16;
  rounded.precision = 2;
  GdsCache cache(rounded);
  cache.put(1, 100, 999);
  cache.put(2, 100, 1000);
  // 999 and 1000 round to nearby coarse values; priorities must be close.
  const auto d = cache.priority_of(2) > cache.priority_of(1)
                     ? cache.priority_of(2) - cache.priority_of(1)
                     : cache.priority_of(1) - cache.priority_of(2);
  EXPECT_LE(d, 256u);
  EXPECT_EQ(cache.name(), "gds(p=2)");
}

TEST(Gds, NameDefault) { EXPECT_EQ(GdsCache(cfg(10)).name(), "gds"); }

TEST(Gds, FactoryWorks) {
  auto cache = make_gds(cfg(100));
  EXPECT_TRUE(cache->put(1, 50, 5));
  EXPECT_TRUE(cache->get(1));
}

}  // namespace
}  // namespace camp::policy
