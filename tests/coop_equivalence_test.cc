// Differential tests anchoring the cooperative group to the single-cache
// semantics it generalizes: a 1-node group with the guard disabled must be
// observationally identical to driving the same policy cache directly.
#include <gtest/gtest.h>

#include <vector>

#include "coop/group.h"
#include "policy/policy_factory.h"
#include "util/rng.h"

namespace camp::coop {
namespace {

using policy::Key;

struct Op {
  Key key;
  std::uint64_t size;
  std::uint64_t cost;
};

std::vector<Op> random_ops(std::uint64_t seed, int count) {
  util::Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ops.push_back(Op{rng.below(300), 16 + rng.below(500),
                     1 + rng.below(10'000)});
  }
  return ops;
}

class CoopSingleNodeEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CoopSingleNodeEquivalence, MatchesPlainCache) {
  const std::uint64_t cap = 20'000;
  CoopConfig cfg;
  cfg.nodes = 1;
  cfg.node_capacity_bytes = cap;
  cfg.policy_spec = GetParam();
  cfg.preserve_last_replica = false;
  CoopGroup group(cfg);

  auto plain = policy::make_policy(GetParam(), cap);

  std::uint64_t plain_noncold = 0, plain_misses = 0, plain_cold = 0;
  std::uint64_t plain_noncold_cost = 0, plain_missed_cost = 0;
  std::unordered_set<Key> seen;

  for (const Op& op : random_ops(31, 30'000)) {
    const bool cold = seen.insert(op.key).second;
    const bool plain_hit = plain->get(op.key);
    if (!plain_hit) plain->put(op.key, op.size, op.cost);
    if (!cold) {
      ++plain_noncold;
      plain_noncold_cost += op.cost;
      if (!plain_hit) {
        ++plain_misses;
        plain_missed_cost += op.cost;
      }
    } else {
      ++plain_cold;
    }
    const bool group_hit = group.request(op.key, op.size, op.cost);
    ASSERT_EQ(plain_hit, group_hit) << "hit/miss diverged";
  }

  const CoopMetrics& m = group.metrics();
  EXPECT_EQ(m.cold_misses, plain_cold);
  EXPECT_EQ(m.misses, plain_misses);
  EXPECT_EQ(m.remote_hits, 0u);
  EXPECT_EQ(m.guard_hits, 0u);
  EXPECT_EQ(m.noncold_cost, plain_noncold_cost);
  EXPECT_EQ(m.missed_cost, plain_missed_cost);
  EXPECT_EQ(m.transfer_cost, 0u);
  EXPECT_DOUBLE_EQ(m.cost_miss_ratio(),
                   plain_noncold_cost == 0
                       ? 0.0
                       : static_cast<double>(plain_missed_cost) /
                             static_cast<double>(plain_noncold_cost));
  EXPECT_EQ(group.node_used_bytes(0), plain->used_bytes());
  EXPECT_EQ(group.node_stats(0).evictions, plain->stats().evictions);
  EXPECT_TRUE(group.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Policies, CoopSingleNodeEquivalence,
                         ::testing::Values("lru", "camp", "gds:lru", "gdsf"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == ':' || c == '=' || c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CoopGuardEquivalence, GuardOnlyAddsHitsNeverChangesResidents) {
  // With the guard enabled, every extra hit the group reports must be a
  // guard hit: the node caches themselves behave identically because the
  // guard reinstates through the normal put path only on access.
  const std::uint64_t cap = 8'000;
  const auto ops = random_ops(77, 20'000);

  CoopConfig off;
  off.nodes = 1;
  off.node_capacity_bytes = cap;
  off.preserve_last_replica = false;
  CoopGroup group_off(off);

  CoopConfig on = off;
  on.preserve_last_replica = true;
  on.guard_fraction = 0.25;
  on.guard_lease_requests = 5'000;
  CoopGroup group_on(on);

  for (const Op& op : ops) {
    group_off.request(op.key, op.size, op.cost);
    group_on.request(op.key, op.size, op.cost);
  }
  const CoopMetrics& moff = group_off.metrics();
  const CoopMetrics& mon = group_on.metrics();
  EXPECT_GT(mon.guard_hits, 0u) << "guard never fired; weak scenario";
  EXPECT_LT(mon.misses, moff.misses)
      << "guard hits must convert misses into hits";
  EXPECT_LE(mon.missed_cost, moff.missed_cost);
  EXPECT_TRUE(group_on.check_invariants());
}

}  // namespace
}  // namespace camp::coop
