// Golden-file schema test: the FigureRunner's CSV output for a tiny
// fixed-seed trace must be BYTE-IDENTICAL to the checked-in golden files.
// A schema change (column order, number formatting, metric set, row order)
// fails here until tests/golden/ is regenerated deliberately — see the
// README's "Regenerating the paper figures" section.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "figures/emit.h"
#include "figures/figure_runner.h"

namespace camp::figures {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(CAMP_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "cannot open golden file " << path;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

FigureRunner tiny_runner() {
  FigureOptions options;
  options.scale = Scale::tiny();
  options.seed = kCanonicalSeed;
  return FigureRunner(options);
}

TEST(FiguresCsvTest, HeaderIsStable) {
  EXPECT_STREQ(csv_header(), "figure,policy,x_label,x,metric,value,seed,scale");
}

TEST(FiguresCsvTest, Fig4MatchesGolden) {
  const std::string csv = to_csv(tiny_runner().run("fig4"));
  EXPECT_EQ(csv, read_golden("fig4_tiny.csv"))
      << "fig4 CSV drifted from tests/golden/fig4_tiny.csv — if the change "
         "is intentional, regenerate the golden file (see README)";
}

TEST(FiguresCsvTest, Fig9MatchesGolden) {
  const std::string csv = to_csv(tiny_runner().run("fig9"));
  EXPECT_EQ(csv, read_golden("fig9_tiny.csv"))
      << "fig9 CSV drifted from tests/golden/fig9_tiny.csv — if the change "
         "is intentional, regenerate the golden file (see README)";
}

TEST(FiguresCsvTest, Table1MatchesGolden) {
  const std::string csv = to_csv(tiny_runner().run("table1"));
  EXPECT_EQ(csv, read_golden("table1_tiny.csv"));
}

TEST(FiguresCsvTest, EveryRowHasTheSchemaColumnCount) {
  const std::string csv = to_csv(tiny_runner().run("fig5cd"));
  std::stringstream stream(csv);
  std::string line;
  while (std::getline(stream, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 7) << line;
  }
}

TEST(FiguresCsvTest, JsonEmitterCoversTheSameRows) {
  const FigureResult result = tiny_runner().run("table1");
  const std::string json = to_json(result);
  std::size_t metric_count = 0;
  for (const FigureRow& row : result.rows) metric_count += row.metrics.size();
  std::size_t objects = 0;
  for (std::size_t pos = json.find("{\"figure\""); pos != std::string::npos;
       pos = json.find("{\"figure\"", pos + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, metric_count);
}

TEST(FiguresGnuplotTest, ScriptPlotsEveryMetricWithOneSeriesPerPolicy) {
  const FigureResult result = tiny_runner().run("table1");
  const std::string gp = to_gnuplot(result);

  // Reads the sibling CSV with a comma separator and an x label.
  EXPECT_NE(gp.find("set datafile separator ','"), std::string::npos);
  EXPECT_NE(gp.find(result.figure + ".csv"), std::string::npos);

  // One plot block (output + title + ylabel) per distinct metric, and each
  // block selects rows by policy AND metric via strcol filters.
  std::vector<std::string> policies;
  std::vector<std::string> metrics;
  auto note = [](std::vector<std::string>& seen, const std::string& v) {
    if (std::find(seen.begin(), seen.end(), v) == seen.end())
      seen.push_back(v);
  };
  for (const FigureRow& row : result.rows) {
    note(policies, row.point.policy);
    for (const auto& [metric, value] : row.metrics) {
      (void)value;
      note(metrics, metric);
    }
  }
  ASSERT_FALSE(policies.empty());
  ASSERT_FALSE(metrics.empty());
  std::size_t outputs = 0;
  for (std::size_t pos = gp.find("set output '"); pos != std::string::npos;
       pos = gp.find("set output '", pos + 1)) {
    ++outputs;
  }
  EXPECT_EQ(outputs, metrics.size());
  for (const std::string& metric : metrics) {
    EXPECT_NE(gp.find("strcol(5) eq '" + metric + "'"), std::string::npos)
        << metric;
  }
  for (const std::string& policy : policies) {
    EXPECT_NE(gp.find("strcol(2) eq '" + policy + "'"), std::string::npos)
        << policy;
  }

  // Deterministic, like the CSV emitter.
  EXPECT_EQ(gp, to_gnuplot(result));
}

}  // namespace
}  // namespace camp::figures
