// Codec layer (kvs/compress.h): round-trips across value shapes, the
// incompressible bail-out, and — because decompress_value eats wire bytes
// from peers — hardened rejection of malformed encodings. The fuzz-style
// corpus hammers both directions with deterministic pseudo-random inputs:
// every compress output must decode back exactly, and no mutated encoding
// may decode to the wrong length or crash.
#include "kvs/compress.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "kvs/protocol.h"
#include "util/rng.h"

namespace camp::kvs {
namespace {

CompressionConfig enabled_config() {
  CompressionConfig config;
  config.enabled = true;
  return config;
}

/// A "small structured value": 8-byte LE counters clustered near a base —
/// the shape BDI exists for.
std::string structured_value(std::size_t words, std::uint64_t base,
                             std::uint32_t spread) {
  util::Xoshiro256 rng(0xbd1bd1);
  std::string raw(words * 8, '\0');
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t w = base + rng.next() % spread;
    std::memcpy(raw.data() + i * 8, &w, 8);  // host LE on every CI target
  }
  return raw;
}

std::string random_value(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::string raw(n, '\0');
  for (char& c : raw) c = static_cast<char>(rng.next() & 0xff);
  return raw;
}

TEST(Compress, DisabledConfigAlwaysIdentity) {
  CompressionConfig off;  // default
  EXPECT_EQ(compress_value(std::string(4096, 'a'), off).codec,
            Codec::kIdentity);
}

TEST(Compress, EmptyAndTinyValuesStayIdentity) {
  const CompressionConfig config = enabled_config();
  EXPECT_EQ(compress_value("", config).codec, Codec::kIdentity);
  EXPECT_EQ(compress_value("x", config).codec, Codec::kIdentity);
  // One byte under the threshold: still identity, by the min_value_bytes
  // rule, even though 63 'a's would RLE beautifully.
  EXPECT_EQ(
      compress_value(std::string(config.min_value_bytes - 1, 'a'), config)
          .codec,
      Codec::kIdentity);
  // At the threshold the codecs engage.
  EXPECT_NE(
      compress_value(std::string(config.min_value_bytes, 'a'), config).codec,
      Codec::kIdentity);
}

TEST(Compress, RunsCompressViaRle) {
  const CompressionConfig config = enabled_config();
  const std::string raw(100'000, 'v');
  const CompressResult comp = compress_value(raw, config);
  EXPECT_EQ(comp.codec, Codec::kRle);
  // 128 repeats per 2-byte frame: ~n/64.
  EXPECT_LT(comp.data.size(), raw.size() / 50);
  std::string out;
  ASSERT_TRUE(decompress_value(comp.codec, comp.data, raw.size(), out));
  EXPECT_EQ(out, raw);
}

TEST(Compress, StructuredValuesCompressViaBdi) {
  const CompressionConfig config = enabled_config();
  // 64 counters within 2^15 of one base: 2-byte deltas, ~4x.
  const std::string raw = structured_value(64, 0x1122334455667788ull, 30'000);
  const CompressResult comp = compress_value(raw, config);
  EXPECT_EQ(comp.codec, Codec::kBdi);
  EXPECT_LT(comp.data.size(), raw.size() / 2);
  std::string out;
  ASSERT_TRUE(decompress_value(comp.codec, comp.data, raw.size(), out));
  EXPECT_EQ(out, raw);
}

TEST(Compress, BdiRespectsSizeCeiling) {
  CompressionConfig config = enabled_config();
  config.bdi_max_bytes = 256;
  // Structured but past the BDI ceiling. The base's bytes are all distinct
  // and the spread never carries past the low two bytes, so the raw bytes
  // hold no runs for RLE to win on: with BDI skipped, the value bails.
  const std::string raw = structured_value(64, 0x1122334455667788ull, 30'000);
  ASSERT_GT(raw.size(), config.bdi_max_bytes);
  EXPECT_EQ(compress_value(raw, config).codec, Codec::kIdentity);
  // The same value under the default ceiling compresses.
  EXPECT_EQ(compress_value(raw, enabled_config()).codec, Codec::kBdi);
}

TEST(Compress, IncompressibleValueBailsToIdentity) {
  const CompressionConfig config = enabled_config();
  // Uniform random bytes: no runs, no shared base. Must bail, never grow.
  EXPECT_EQ(compress_value(random_value(4096, 0xfeed), config).codec,
            Codec::kIdentity);
}

TEST(Compress, ProtocolCapSizedValueRoundTrips) {
  const CompressionConfig config = enabled_config();
  // The largest value the protocol admits (64 MiB), highly compressible —
  // exercises the length bookkeeping at the extreme without a slow input.
  std::string raw(kMaxValueBytes, 'z');
  // Break up some runs so both literal and repeat paths run at scale.
  for (std::size_t i = 0; i < raw.size(); i += 4093) {
    raw[i] = static_cast<char>('a' + (i % 23));
  }
  const CompressResult comp = compress_value(raw, config);
  ASSERT_EQ(comp.codec, Codec::kRle);
  std::string out;
  ASSERT_TRUE(decompress_value(comp.codec, comp.data, raw.size(), out));
  EXPECT_EQ(out, raw);
}

TEST(Compress, IdentityDecodeChecksLength) {
  std::string out;
  EXPECT_TRUE(decompress_value(Codec::kIdentity, "abcd", 4, out));
  EXPECT_EQ(out, "abcd");
  EXPECT_FALSE(decompress_value(Codec::kIdentity, "abcd", 5, out));
  EXPECT_FALSE(decompress_value(Codec::kIdentity, "abcd", 3, out));
}

TEST(Compress, MalformedEncodingsAreRejected) {
  const CompressionConfig config = enabled_config();
  std::string out;

  // Truncated RLE stream: a repeat control with no byte after it.
  EXPECT_FALSE(decompress_value(Codec::kRle, std::string(1, '\x81'), 2, out));
  // The reserved 128 control byte.
  EXPECT_FALSE(decompress_value(Codec::kRle, std::string(1, '\x80'), 1, out));
  // A literal control promising more bytes than the stream holds.
  EXPECT_FALSE(decompress_value(Codec::kRle, std::string("\x05" "ab"), 6,
                                out));
  // Valid stream, wrong declared raw_len.
  const CompressResult rle = compress_value(std::string(256, 'q'), config);
  ASSERT_EQ(rle.codec, Codec::kRle);
  EXPECT_FALSE(decompress_value(Codec::kRle, rle.data, 255, out));
  EXPECT_FALSE(decompress_value(Codec::kRle, rle.data, 257, out));

  // BDI: empty stream, bad width tag, truncated delta array, trailing
  // garbage, wrong raw_len.
  EXPECT_FALSE(decompress_value(Codec::kBdi, "", 16, out));
  const std::string structured =
      structured_value(32, 0xaabbccdd0000ull, 1000);
  const CompressResult bdi = compress_value(structured, config);
  ASSERT_EQ(bdi.codec, Codec::kBdi);
  std::string bad = bdi.data;
  bad[0] = 3;  // widths are 1/2/4 only
  EXPECT_FALSE(decompress_value(Codec::kBdi, bad, structured.size(), out));
  EXPECT_FALSE(decompress_value(
      Codec::kBdi, std::string_view(bdi.data).substr(0, bdi.data.size() - 1),
      structured.size(), out));
  EXPECT_FALSE(decompress_value(Codec::kBdi, bdi.data + "x",
                                structured.size(), out));
  EXPECT_FALSE(
      decompress_value(Codec::kBdi, bdi.data, structured.size() - 8, out));
}

TEST(Compress, FuzzCorpusRoundTripsAndRejectsMutations) {
  const CompressionConfig config = enabled_config();
  util::Xoshiro256 rng(0xc0ffee);
  int compressed_seen = 0;
  for (int iter = 0; iter < 400; ++iter) {
    // Mix value shapes: runs, structured words, random, and hybrids.
    std::string raw;
    const std::size_t len = 1 + rng.next() % 3000;
    switch (iter % 4) {
      case 0:
        raw.assign(len, static_cast<char>('a' + iter % 26));
        break;
      case 1:
        raw = structured_value(1 + len / 8, rng.next(), 1 + iter * 7u);
        break;
      case 2:
        raw = random_value(len, rng.next());
        break;
      default:
        raw = random_value(len / 2, rng.next()) +
              std::string(len / 2 + 1, 'r');
        break;
    }
    const CompressResult comp = compress_value(raw, config);
    std::string out;
    if (comp.codec == Codec::kIdentity) {
      ASSERT_TRUE(decompress_value(comp.codec, raw, raw.size(), out));
      ASSERT_EQ(out, raw);
      continue;
    }
    ++compressed_seen;
    ASSERT_LT(comp.data.size(), raw.size());
    ASSERT_TRUE(decompress_value(comp.codec, comp.data, raw.size(), out));
    ASSERT_EQ(out, raw);

    // Mutate one byte / truncate / extend: must either fail closed or
    // still produce exactly raw_len bytes — never crash, never over-read.
    std::string mutated = comp.data;
    mutated[rng.next() % mutated.size()] ^= static_cast<char>(
        1 + rng.next() % 255);
    if (decompress_value(comp.codec, mutated, raw.size(), out)) {
      ASSERT_EQ(out.size(), raw.size());
    }
    if (comp.data.size() > 1) {
      ASSERT_FALSE(decompress_value(
          comp.codec,
          std::string_view(comp.data).substr(0, comp.data.size() / 2),
          raw.size(), out))
          << "a truncated encoding must not decode to the full length";
    }
  }
  // The corpus must actually exercise the codecs, not bail throughout.
  EXPECT_GT(compressed_seen, 100);
}

}  // namespace
}  // namespace camp::kvs
