#include "policy/arc.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace camp::policy {
namespace {

TEST(Arc, Validation) {
  EXPECT_THROW(ArcCache(0), std::invalid_argument);
}

TEST(Arc, FirstTouchGoesToT1SecondToT2) {
  ArcCache cache(1000);
  cache.put(1, 100, 0);
  EXPECT_EQ(cache.t1_bytes(), 100u);
  EXPECT_EQ(cache.t2_bytes(), 0u);
  ASSERT_TRUE(cache.get(1));
  EXPECT_EQ(cache.t1_bytes(), 0u);
  EXPECT_EQ(cache.t2_bytes(), 100u);
}

TEST(Arc, ScanResistance) {
  // Hot pairs promoted to T2 survive a one-pass scan through T1.
  ArcCache cache(1000);
  for (Key k = 0; k < 5; ++k) {
    cache.put(k, 100, 0);
    ASSERT_TRUE(cache.get(k));  // into T2
  }
  for (Key scan = 100; scan < 150; ++scan) cache.put(scan, 100, 0);
  int survivors = 0;
  for (Key k = 0; k < 5; ++k) survivors += cache.contains(k) ? 1 : 0;
  EXPECT_GE(survivors, 4) << "T2 should shield the hot set from the scan";
}

TEST(Arc, GhostHitAdaptsTarget) {
  ArcCache cache(600);
  // Fill T1 and push some pairs into B1 ghosts.
  for (Key k = 0; k < 10; ++k) cache.put(k, 100, 0);
  const auto p_before = cache.target_t1_bytes();
  // Key 0 is long evicted; its ghost should sit in B1. Re-inserting it is a
  // B1 hit which grows p (favour recency).
  cache.put(0, 100, 0);
  EXPECT_GE(cache.target_t1_bytes(), p_before);
}

TEST(Arc, ByteBudgetRespected) {
  ArcCache cache(1000);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.below(100);
    if (!cache.get(k)) cache.put(k, 50 + rng.below(200), 0);
    ASSERT_LE(cache.used_bytes(), 1000u) << "op " << i;
    ASSERT_EQ(cache.used_bytes(), cache.t1_bytes() + cache.t2_bytes());
  }
}

TEST(Arc, EraseKeepsAccountingStraight) {
  ArcCache cache(500);
  cache.put(1, 200, 0);
  ASSERT_TRUE(cache.get(1));  // to T2
  cache.erase(1);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.t2_bytes(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Arc, CostOblivious) {
  // ARC treats a 10K-cost pair exactly like a cost-1 pair — the contrast
  // with CAMP the paper draws.
  ArcCache cache(200);
  cache.put(1, 100, 10'000);
  cache.put(2, 100, 1);
  cache.put(3, 100, 1);  // evicts by recency structure, not cost
  EXPECT_FALSE(cache.contains(1));
}

TEST(Arc, StableUnderChurn) {
  ArcCache cache(2000);
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const Key k = rng.below(300);
    if (!cache.get(k)) cache.put(k, 20 + rng.below(150), 0);
  }
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_LE(cache.used_bytes(), 2000u);
  EXPECT_LE(cache.target_t1_bytes(), 2000u);
}

}  // namespace
}  // namespace camp::policy
