#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/rounding.h"

namespace camp::util {
namespace {

TEST(AtomicRatioScaler, MatchesSerialScalerExactly) {
  AdaptiveRatioScaler serial;
  AtomicRatioScaler atomic;
  Xoshiro256 rng(13);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t size = 1 + rng.below(100'000);
    const std::uint64_t cost = 1 + rng.below(1'000'000);
    ASSERT_EQ(serial.observe_size(size), atomic.observe_size(size));
    ASSERT_EQ(serial.max_size(), atomic.max_size());
    ASSERT_EQ(serial.scale(cost, size), atomic.scale(cost, size));
    for (const int p : {1, 4, 8, kPrecisionInfinity}) {
      ASSERT_EQ(serial.scale_and_round(cost, size, p),
                atomic.scale_and_round(cost, size, p));
    }
  }
}

TEST(AtomicRatioScaler, ObserveIsMonotoneUnderContention) {
  AtomicRatioScaler scaler;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&scaler, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      std::uint64_t local_max = 0;
      for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t size = 1 + rng.below(1u << 20);
        local_max = std::max(local_max, size);
        scaler.observe_size(size);
        // The global max can never fall below anything this thread saw.
        ASSERT_GE(scaler.max_size(), local_max);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GE(scaler.max_size(), 1u);
}

TEST(AtomicRatioScaler, ScaleClampsToOne) {
  AtomicRatioScaler scaler;
  scaler.observe_size(1);
  // cost * max_size / size rounds to zero -> clamp to 1 so every pair has
  // a positive priority increment.
  EXPECT_EQ(scaler.scale(1, 1'000'000), 1u);
}

TEST(AtomicRatioScaler, ObserveReportsGrowth) {
  AtomicRatioScaler scaler;
  EXPECT_TRUE(scaler.observe_size(100));
  EXPECT_FALSE(scaler.observe_size(100));
  EXPECT_FALSE(scaler.observe_size(50));
  EXPECT_TRUE(scaler.observe_size(101));
  EXPECT_EQ(scaler.max_size(), 101u);
}

}  // namespace
}  // namespace camp::util
