#include "slab/buddy_allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace camp::slab {
namespace {

BuddyConfig tiny() {
  BuddyConfig c;
  c.arena_bytes = 1024;
  c.min_block_bytes = 64;
  return c;
}

TEST(Buddy, Validation) {
  BuddyConfig bad = tiny();
  bad.min_block_bytes = 100;  // not pow2
  EXPECT_THROW(BuddyAllocator{bad}, std::invalid_argument);
  bad = tiny();
  bad.arena_bytes = 32;
  EXPECT_THROW(BuddyAllocator{bad}, std::invalid_argument);
}

TEST(Buddy, AllocatesSmallestFittingBlock) {
  BuddyAllocator alloc(tiny());
  const auto block = alloc.allocate(65);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->size, 128u) << "65 bytes needs an order-1 (128B) block";
  EXPECT_EQ(block->order, 1u);
}

TEST(Buddy, ExhaustsArena) {
  BuddyAllocator alloc(tiny());  // 1024 bytes = 16 x 64B
  std::vector<BuddyBlock> held;
  for (int i = 0; i < 16; ++i) {
    auto b = alloc.allocate(64);
    ASSERT_TRUE(b.has_value()) << i;
    held.push_back(*b);
  }
  EXPECT_FALSE(alloc.allocate(64).has_value());
  alloc.free(held[3]);
  EXPECT_TRUE(alloc.allocate(64).has_value());
}

TEST(Buddy, CoalescesBuddies) {
  BuddyAllocator alloc(tiny());
  const auto a = alloc.allocate(64);
  const auto b = alloc.allocate(64);
  ASSERT_TRUE(a && b);
  alloc.free(*a);
  alloc.free(*b);
  // After freeing both halves everything coalesces back to one 1024 block.
  const auto big = alloc.allocate(1024);
  EXPECT_TRUE(big.has_value()) << "full arena should be allocatable again";
  EXPECT_GT(alloc.stats().merges, 0u);
}

TEST(Buddy, RejectsOversizedAndZero) {
  BuddyAllocator alloc(tiny());
  EXPECT_FALSE(alloc.allocate(0).has_value());
  EXPECT_FALSE(alloc.allocate(2048).has_value());
  EXPECT_EQ(alloc.max_allocation(), 1024u);
}

TEST(Buddy, FragmentationBlocksLargeAllocation) {
  BuddyAllocator alloc(tiny());
  // Hold every other 64B block: half the arena free but no big block.
  std::vector<BuddyBlock> all;
  for (int i = 0; i < 16; ++i) all.push_back(*alloc.allocate(64));
  for (int i = 0; i < 16; i += 2) alloc.free(all[static_cast<std::size_t>(i)]);
  EXPECT_FALSE(alloc.allocate(512).has_value())
      << "free space exists but is fragmented";
  // Free the interleaved blocks: coalescing must restore the full arena.
  for (int i = 1; i < 16; i += 2) alloc.free(all[static_cast<std::size_t>(i)]);
  EXPECT_TRUE(alloc.allocate(1024).has_value());
}

TEST(Buddy, StatsTrackLiveBytes) {
  BuddyAllocator alloc(tiny());
  const auto a = alloc.allocate(64);
  const auto b = alloc.allocate(200);  // 256B block
  EXPECT_EQ(alloc.stats().live_blocks, 2u);
  EXPECT_EQ(alloc.stats().allocated_bytes, 64u + 256u);
  alloc.free(*a);
  alloc.free(*b);
  EXPECT_EQ(alloc.stats().live_blocks, 0u);
  EXPECT_EQ(alloc.stats().allocated_bytes, 0u);
}

TEST(Buddy, RandomizedAllocFreeNeverCorrupts) {
  BuddyConfig c;
  c.arena_bytes = 64 * 1024;
  c.min_block_bytes = 64;
  BuddyAllocator alloc(c);
  util::Xoshiro256 rng(7);
  std::vector<BuddyBlock> live;
  for (int op = 0; op < 5000; ++op) {
    if (rng.below(2) == 0 || live.empty()) {
      const auto size = 1 + rng.below(4096);
      if (auto b = alloc.allocate(size)) {
        // Write a byte to catch overlapping blocks via later checks.
        b->data[0] = std::byte{static_cast<unsigned char>(op)};
        live.push_back(*b);
      }
    } else {
      const auto idx = static_cast<std::size_t>(rng.below(live.size()));
      alloc.free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  // Free everything: arena must coalesce to a single max block.
  for (const auto& b : live) alloc.free(b);
  EXPECT_TRUE(alloc.allocate(alloc.max_allocation()).has_value());
}

}  // namespace
}  // namespace camp::slab
