// The runtime half of the lock-discipline story (util/lock_rank.h): debug
// builds rank-check every util::Mutex/SharedMutex acquisition on a
// per-thread stack and abort on the first hierarchy violation; release
// builds compile the checker out entirely. Both branches are tested — this
// file compiles to the matching half under either build type.
#include "util/lock_rank.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/mutex.h"

namespace camp::util {
namespace {

#if !defined(NDEBUG)

// ---------------------------------------------------------------------------
// Debug: the checker is live.
// ---------------------------------------------------------------------------

TEST(LockRankTest, AscendingChainPasses) {
  // The canonical deepest chain in the repository: a store shard's eviction
  // hook descending through a sharded CAMP policy into the cluster's leaf
  // mutex (see util/lock_rank.h for the hierarchy).
  Mutex worker(LockRank::kServerWorker);
  Mutex store_shard(LockRank::kStoreShard);
  Mutex policy_shard(LockRank::kPolicyShard);
  SharedMutex structure(LockRank::kCampStructure);
  Mutex stripe(LockRank::kCampIndexStripe);
  Mutex queue(LockRank::kCampQueue);
  Mutex heap(LockRank::kCampHeap);
  Mutex listener(LockRank::kCampListener);
  Mutex leaf(LockRank::kClusterLeaf);

  MutexLock l0(worker);
  MutexLock l1(store_shard);
  MutexLock l2(policy_shard);
  WriterLock l3(structure);
  MutexLock l4(stripe);
  MutexLock l5(queue);
  MutexLock l6(heap);
  MutexLock l7(listener);
  MutexLock l8(leaf);
  EXPECT_EQ(lock_rank::held_count(), 9u);
}

TEST(LockRankTest, SharedModeRanksLikeExclusive) {
  SharedMutex structure(LockRank::kCampStructure);
  Mutex queue(LockRank::kCampQueue);
  ReaderLock shared(structure);
  MutexLock inner(queue);  // shared holds constrain nesting the same way
  EXPECT_EQ(lock_rank::held_count(), 2u);
}

TEST(LockRankTest, PolicyShardMaySelfNest) {
  // Nested ShardedCaches are real: policy_shards wraps a sharded inner
  // factory, and the outer shard lock is held across inner-shard calls.
  Mutex outer(LockRank::kPolicyShard);
  Mutex inner(LockRank::kPolicyShard);
  MutexLock l1(outer);
  MutexLock l2(inner);
  EXPECT_EQ(lock_rank::held_count(), 2u);
}

TEST(LockRankTest, OutOfOrderReleaseIsTolerated) {
  // Releasing an outer lock before an inner one is legal (only acquisition
  // order is constrained); the stack search handles it.
  Mutex shard(LockRank::kStoreShard);
  Mutex leaf(LockRank::kClusterLeaf);
  shard.lock();
  leaf.lock();
  shard.unlock();
  EXPECT_EQ(lock_rank::held_count(), 1u);
  leaf.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankTest, RanksArePerThread) {
  Mutex leaf(LockRank::kClusterLeaf);
  MutexLock hold(leaf);
  // Another thread starts with an empty stack: holding the highest rank
  // here must not constrain it.
  std::thread t([] {
    Mutex shard(LockRank::kStoreShard);
    MutexLock lock(shard);
    EXPECT_EQ(lock_rank::held_count(), 1u);
  });
  t.join();
  EXPECT_EQ(lock_rank::held_count(), 1u);
}

TEST(LockRankDeathTest, InversionDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex leaf(LockRank::kClusterLeaf);
  Mutex shard(LockRank::kStoreShard);
  EXPECT_DEATH(
      {
        MutexLock outer(leaf);
        MutexLock inner(shard);  // cluster leaf -> store shard: inverted
      },
      "rank inversion");
}

TEST(LockRankDeathTest, EqualRankDiesWithoutSelfNestingAllowance) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex a(LockRank::kStoreShard);
  Mutex b(LockRank::kStoreShard);
  EXPECT_DEATH(
      {
        MutexLock l1(a);
        MutexLock l2(b);  // two store shards at once: deadlock-prone
      },
      "rank inversion");
}

TEST(LockRankDeathTest, SharedAcquisitionChecksToo) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex leaf(LockRank::kClusterLeaf);
  SharedMutex structure(LockRank::kCampStructure);
  EXPECT_DEATH(
      {
        MutexLock outer(leaf);
        ReaderLock inner(structure);  // shared mode is no escape hatch
      },
      "rank inversion");
}

TEST(LockRankDeathTest, ReleasingUnheldRankDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(lock_rank::released(LockRank::kCampHeap), "not held");
}

#else  // defined(NDEBUG)

// ---------------------------------------------------------------------------
// Release: the checker is compiled out to zero cost.
// ---------------------------------------------------------------------------

TEST(LockRankTest, CheckerCompiledOutInRelease) {
  // The wrappers carry no rank bookkeeping: layout-identical to the std
  // types they wrap.
  static_assert(sizeof(Mutex) == sizeof(std::mutex));
  static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex));

  // An inversion that would abort a debug build runs silently.
  Mutex leaf(LockRank::kClusterLeaf);
  Mutex shard(LockRank::kStoreShard);
  {
    MutexLock outer(leaf);
    MutexLock inner(shard);
    EXPECT_EQ(lock_rank::held_count(), 0u);  // no-op stub
  }
  SUCCEED();
}

#endif  // NDEBUG

}  // namespace
}  // namespace camp::util
