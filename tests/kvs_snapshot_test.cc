#include "kvs/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>

#include "core/camp.h"
#include "policy/lru.h"
#include "util/rng.h"

namespace camp::kvs {
namespace {

StoreConfig small_config(std::uint64_t bytes = 4u << 20,
                         std::size_t shards = 2) {
  StoreConfig config;
  config.shards = shards;
  config.engine.slab.memory_limit_bytes = bytes;
  return config;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

PolicyFactory camp_factory() {
  return [](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    return core::make_camp(config);
  };
}

/// Canonical dump for comparisons: key -> (raw value, flags, cost, ttl).
/// Decompresses each item's stored form, so two stores agree exactly when
/// their client-visible contents agree — whatever codec either one used.
using Dump = std::map<std::string,
                      std::tuple<std::string, std::uint32_t, std::uint32_t,
                                 std::uint32_t>>;
Dump dump(const KvsStore& store) {
  Dump out;
  store.for_each_item([&](const ItemView& item) {
    std::string value;
    ASSERT_TRUE(
        decompress_value(item.codec, item.stored, item.raw_len, value));
    out.emplace(std::string(item.key),
                std::make_tuple(std::move(value), item.flags, item.cost,
                                item.remaining_ttl_s));
  });
  return out;
}

TEST(Snapshot, RoundTripPreservesEverything) {
  util::ManualClock clock;
  KvsStore source(small_config(), camp_factory(), clock);
  ASSERT_TRUE(source.set("cheap", "small value", 7, 1));
  ASSERT_TRUE(source.set("pricey", std::string(3000, 'x'), 0, 10'000));
  ASSERT_TRUE(source.set("ttl", "leased", 1, 100, /*exptime_s=*/60));

  std::stringstream buffer;
  EXPECT_EQ(save_snapshot(buffer, source), 3u);

  KvsStore restored(small_config(), camp_factory(), clock);
  const SnapshotStats stats = load_snapshot(buffer, restored);
  EXPECT_EQ(stats.items_written, 3u);
  EXPECT_EQ(stats.items_loaded, 3u);
  EXPECT_EQ(stats.items_rejected, 0u);
  EXPECT_EQ(dump(source), dump(restored));

  const GetResult pricey = restored.get("pricey");
  ASSERT_TRUE(pricey.hit);
  EXPECT_EQ(pricey.value.size(), 3000u);
  EXPECT_EQ(restored.get("cheap").flags, 7u);
}

TEST(Snapshot, TtlSurvivesAndStillExpires) {
  util::ManualClock clock;
  KvsStore source(small_config(), lru_factory(), clock);
  ASSERT_TRUE(source.set("lease", "v", 0, 1, /*exptime_s=*/10));

  std::stringstream buffer;
  save_snapshot(buffer, source);
  KvsStore restored(small_config(), lru_factory(), clock);
  load_snapshot(buffer, restored);

  EXPECT_TRUE(restored.get("lease").hit);
  clock.advance_ns(11ull * 1'000'000'000ull);
  EXPECT_FALSE(restored.get("lease").hit) << "snapshot must not grant "
                                             "immortality to leased pairs";
}

TEST(Snapshot, ExpiredPairsAreNotWritten) {
  util::ManualClock clock;
  KvsStore source(small_config(), lru_factory(), clock);
  ASSERT_TRUE(source.set("gone", "v", 0, 1, /*exptime_s=*/1));
  ASSERT_TRUE(source.set("kept", "v", 0, 1));
  clock.advance_ns(2ull * 1'000'000'000ull);

  std::stringstream buffer;
  EXPECT_EQ(save_snapshot(buffer, source), 1u);
  KvsStore restored(small_config(), lru_factory(), clock);
  const SnapshotStats stats = load_snapshot(buffer, restored);
  EXPECT_EQ(stats.items_loaded, 1u);
  EXPECT_TRUE(restored.get("kept").hit);
  EXPECT_FALSE(restored.get("gone").hit);
}

TEST(Snapshot, LoadIntoSmallerStoreHonoursLimits) {
  util::ManualClock clock;
  KvsStore source(small_config(16u << 20, 1), lru_factory(), clock);
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_TRUE(source.set("bulk" + std::to_string(i),
                           std::string(4'000, 'b'), 0, 1));
  }
  std::stringstream buffer;
  const auto written = save_snapshot(buffer, source);
  ASSERT_GT(written, 100u);

  // A store a fraction of the size: the load must complete, admitting what
  // fits and evicting/rejecting the rest — never overflowing.
  KvsStore tiny(small_config(2u << 20, 1), lru_factory(), clock);
  const SnapshotStats stats = load_snapshot(buffer, tiny);
  EXPECT_EQ(stats.items_written, written);
  EXPECT_EQ(stats.items_loaded + stats.items_rejected, written);
  EXPECT_LT(tiny.aggregated_stats().items, written);
  EXPECT_GT(tiny.aggregated_stats().items, 0u);
}

TEST(Snapshot, RejectsGarbageAndTruncation) {
  util::ManualClock clock;
  KvsStore store(small_config(), lru_factory(), clock);
  {
    std::stringstream garbage("definitely not a snapshot");
    EXPECT_THROW(load_snapshot(garbage, store), std::runtime_error);
  }
  {
    // Valid header, truncated body.
    KvsStore source(small_config(), lru_factory(), clock);
    ASSERT_TRUE(source.set("k", "a long enough value", 0, 1));
    std::stringstream buffer;
    save_snapshot(buffer, source);
    const std::string full = buffer.str();
    std::stringstream cut(full.substr(0, full.size() - 5));
    EXPECT_THROW(load_snapshot(cut, store), std::runtime_error);
  }
}

TEST(Snapshot, EmptyStoreRoundTrips) {
  util::ManualClock clock;
  KvsStore source(small_config(), lru_factory(), clock);
  std::stringstream buffer;
  EXPECT_EQ(save_snapshot(buffer, source), 0u);
  KvsStore restored(small_config(), lru_factory(), clock);
  const SnapshotStats stats = load_snapshot(buffer, restored);
  EXPECT_EQ(stats.items_loaded, 0u);
  EXPECT_EQ(restored.aggregated_stats().items, 0u);
}

TEST(Snapshot, FileRoundTrip) {
  util::ManualClock clock;
  KvsStore source(small_config(), camp_factory(), clock);
  ASSERT_TRUE(source.set("disk", "persisted", 3, 500));
  const std::string path = ::testing::TempDir() + "camp_snapshot_test.bin";
  EXPECT_EQ(save_snapshot_file(path, source), 1u);
  KvsStore restored(small_config(), camp_factory(), clock);
  EXPECT_EQ(load_snapshot_file(path, restored).items_loaded, 1u);
  EXPECT_EQ(restored.get("disk").value, "persisted");
  EXPECT_THROW(load_snapshot_file("/no/such/snapshot.bin", restored),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Snapshot, MixedCodecsRestoreVerbatim) {
  // A compressed store holds pairs under all three codecs at once (runs ->
  // RLE, clustered counters -> BDI, random -> identity bail). The snapshot
  // must persist each STORED form with its tag and restore it verbatim —
  // no decompress/recompress round-trip — so the restored store's stored
  // forms (not just its values) match the source byte for byte.
  util::ManualClock clock;
  StoreConfig config = small_config();
  config.engine.compression.enabled = true;
  KvsStore source(config, camp_factory(), clock);

  ASSERT_TRUE(source.set("rle", std::string(5'000, 'z'), 1, 10));
  std::string structured(512, '\0');
  for (std::size_t i = 0; i < structured.size(); i += 8) {
    const std::uint64_t word = 0x0102030405060708ull + i;
    std::memcpy(structured.data() + i, &word, 8);
  }
  ASSERT_TRUE(source.set("bdi", structured, 2, 20));
  util::Xoshiro256 rng(0x5eedf00d);
  std::string random(512, '\0');
  for (char& c : random) c = static_cast<char>(rng.next() & 0xff);
  ASSERT_TRUE(source.set("raw", random, 3, 30, /*exptime_s=*/120));

  std::map<std::string, std::pair<std::string, Codec>> source_stored;
  source.for_each_item([&](const ItemView& item) {
    source_stored.emplace(std::string(item.key),
                          std::make_pair(std::string(item.stored),
                                         item.codec));
  });
  ASSERT_EQ(source_stored.at("rle").second, Codec::kRle);
  ASSERT_EQ(source_stored.at("bdi").second, Codec::kBdi);
  ASSERT_EQ(source_stored.at("raw").second, Codec::kIdentity);

  std::stringstream buffer;
  EXPECT_EQ(save_snapshot(buffer, source), 3u);
  // Restore into a compression-OFF store: the compressed forms must still
  // land verbatim (set_stored keeps non-identity payloads as-is).
  KvsStore restored(small_config(), camp_factory(), clock);
  const SnapshotStats stats = load_snapshot(buffer, restored);
  EXPECT_EQ(stats.items_loaded, 3u);
  EXPECT_EQ(dump(source), dump(restored));
  restored.for_each_item([&](const ItemView& item) {
    const auto& [stored, codec] = source_stored.at(std::string(item.key));
    EXPECT_EQ(item.codec, codec);
    EXPECT_EQ(item.stored, stored) << "stored form must restore verbatim";
  });
  // Client-visible reads come back decompressed, TTL intact.
  EXPECT_EQ(restored.get("rle").value, std::string(5'000, 'z'));
  EXPECT_EQ(restored.get("bdi").value, structured);
  clock.advance_ns(121ull * 1'000'000'000ull);
  EXPECT_FALSE(restored.get("raw").hit);
}

TEST(Snapshot, RejectsCorruptCompressedItem) {
  util::ManualClock clock;
  StoreConfig config = small_config();
  config.engine.compression.enabled = true;
  KvsStore source(config, camp_factory(), clock);
  ASSERT_TRUE(source.set("zip", std::string(4'096, 'q'), 0, 1));
  std::stringstream buffer;
  save_snapshot(buffer, source);
  std::string bytes = buffer.str();
  // Smash the final RLE control byte (stream tail is ...[control][byte])
  // into the reserved 0x80: the payload no longer decodes, and the load
  // must throw rather than plant a pair that poisons every future read.
  ASSERT_GE(bytes.size(), 2u);
  bytes[bytes.size() - 2] = '\x80';
  std::stringstream corrupt(bytes);
  KvsStore restored(config, camp_factory(), clock);
  EXPECT_THROW(load_snapshot(corrupt, restored), std::runtime_error);
}

TEST(Snapshot, LoadsV1FormatAsIdentity) {
  // Hand-build a CAMPSNP1 stream (the pre-compression format: value_len in
  // the second field, no stored_len/codec) — old files keep loading, and
  // their values replay through set() under the target's own config.
  const std::string key = "legacy";
  const std::string value = "pre-compression bytes";
  std::string bytes(kSnapshotMagicV1, sizeof(kSnapshotMagicV1));
  const auto put32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<char>(v >> (8 * i)));
    }
  };
  for (int i = 0; i < 8; ++i) bytes.push_back(i == 0 ? 1 : 0);  // count u64
  put32(static_cast<std::uint32_t>(key.size()));
  put32(static_cast<std::uint32_t>(value.size()));
  put32(9);   // flags
  put32(77);  // cost
  put32(0);   // ttl
  bytes += key;
  bytes += value;

  util::ManualClock clock;
  KvsStore restored(small_config(), camp_factory(), clock);
  std::stringstream in(bytes);
  EXPECT_EQ(load_snapshot(in, restored).items_loaded, 1u);
  const GetResult r = restored.get("legacy");
  ASSERT_TRUE(r.hit);
  EXPECT_EQ(r.value, value);
  EXPECT_EQ(r.flags, 9u);
  EXPECT_EQ(r.cost, 77u);
}

TEST(Snapshot, WarmRestartKeepsCostlyPairsWorking) {
  // The point of the feature: after a "restart", the expensive pair is
  // still served from memory and CAMP still knows it is expensive (a
  // churn burst evicts the cheap pairs first, as live traffic would).
  // The store spans several slabs so the churn class recycles its own
  // chunks through policy evictions; a single-slab store would fall back
  // to random slab reassignment, which no policy can veto.
  util::ManualClock clock;
  KvsStore source(small_config(8u << 20, 1), camp_factory(), clock);
  ASSERT_TRUE(source.set("model", std::string(8'000, 'm'), 0, 50'000));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(source.set("row" + std::to_string(i),
                           std::string(1'000, 'r'), 0, 1));
  }
  std::stringstream buffer;
  save_snapshot(buffer, source);

  KvsStore restarted(small_config(8u << 20, 1), camp_factory(), clock);
  load_snapshot(buffer, restarted);
  ASSERT_TRUE(restarted.get("model").hit);
  // Churn far past the memory limit with cheap pairs.
  for (int i = 0; i < 20'000; ++i) {
    restarted.set("churn" + std::to_string(i), std::string(1'000, 'c'), 0, 1);
  }
  ASSERT_GT(restarted.aggregated_policy_stats().evictions, 0u)
      << "churn never pressured the cache; weak scenario";
  EXPECT_TRUE(restarted.get("model").hit)
      << "the restored cost must still shield the expensive pair";
}

}  // namespace
}  // namespace camp::kvs
