#include "policy/gd_wheel.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace camp::policy {
namespace {

GdWheelConfig cfg(std::uint64_t cap) {
  GdWheelConfig c;
  c.capacity_bytes = cap;
  return c;
}

TEST(GdWheel, Validation) {
  const GdWheelConfig zero_capacity{};
  EXPECT_THROW(GdWheelCache{zero_capacity}, std::invalid_argument);
  GdWheelConfig bad = cfg(100);
  bad.slots_per_wheel = 1;
  EXPECT_THROW(GdWheelCache{bad}, std::invalid_argument);
  bad = cfg(100);
  bad.num_levels = 3;
  EXPECT_THROW(GdWheelCache{bad}, std::invalid_argument);
  bad = cfg(100);
  bad.ratio_multiplier = 0;
  EXPECT_THROW(GdWheelCache{bad}, std::invalid_argument);
}

TEST(GdWheel, EvictsCheapestSlotFirst) {
  GdWheelConfig c = cfg(300);
  c.ratio_multiplier = 100;  // ratio = cost * 100 / size
  GdWheelCache cache(c);
  cache.put(1, 100, 1);    // ratio 1
  cache.put(2, 100, 200);  // ratio 200
  cache.put(3, 100, 50);   // ratio 50
  cache.put(4, 100, 50);   // evict the ratio-1 pair
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(GdWheel, HitMovesPairForward) {
  GdWheelConfig c = cfg(200);
  c.ratio_multiplier = 100;
  GdWheelCache cache(c);
  cache.put(1, 100, 10);
  cache.put(2, 100, 10);
  ASSERT_TRUE(cache.get(1));  // 1 re-placed ahead of the hand
  cache.put(3, 100, 10);      // 2 is now the nearest victim
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(GdWheel, Level1MigrationHappens) {
  GdWheelConfig c = cfg(400);
  c.slots_per_wheel = 4;  // tiny wheel: level-0 span 4, level-1 span 16
  c.ratio_multiplier = 1;
  GdWheelCache cache(c);
  cache.put(1, 100, 1);    // ratio clamps to 1: level 0
  cache.put(2, 100, 600);  // ratio 6: level 1
  cache.put(3, 100, 900);  // ratio 9: level 1
  // Force evictions past the level-0 contents: 1 is evicted from level 0,
  // then the level-1 blocks must migrate down to satisfy the rest.
  cache.put(4, 350, 1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(4));
  const auto intro = cache.introspect();
  EXPECT_GE(intro.migrations, 1u);
  EXPECT_GE(intro.migrated_items, 1u);
}

TEST(GdWheel, OverflowClampCounted) {
  GdWheelConfig c = cfg(1000);
  c.slots_per_wheel = 2;  // span = 4 priorities total
  c.ratio_multiplier = 1000;
  GdWheelCache cache(c);
  cache.put(1, 10, 1000);  // ratio 100'000 >> span -> overflow
  EXPECT_GE(cache.introspect().overflow_clamps, 1u);
  EXPECT_TRUE(cache.contains(1));
  // Evicting everything must drain overflow too.
  cache.put(2, 995, 1);
  EXPECT_LE(cache.item_count(), 2u);
}

TEST(GdWheel, ByteBudgetRespected) {
  GdWheelCache cache(cfg(2000));
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.below(200);
    if (!cache.get(k)) {
      cache.put(k, 20 + rng.below(300), 1 + rng.below(10'000));
    }
    ASSERT_LE(cache.used_bytes(), 2000u) << "op " << i;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(GdWheel, SingleLevelWheelWorks) {
  GdWheelConfig c = cfg(500);
  c.num_levels = 1;
  c.slots_per_wheel = 8;
  GdWheelCache cache(c);
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.below(50);
    if (!cache.get(k)) cache.put(k, 10 + rng.below(100), 1 + rng.below(100));
  }
  EXPECT_LE(cache.used_bytes(), 500u);
}

TEST(GdWheel, EraseUnlinksCleanly) {
  GdWheelCache cache(cfg(500));
  cache.put(1, 100, 50);
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  cache.put(1, 100, 50);  // reinsert fine
  EXPECT_TRUE(cache.contains(1));
}

}  // namespace
}  // namespace camp::policy
