#include "trace/profiler.h"

#include <gtest/gtest.h>

#include "trace/workloads.h"

namespace camp::trace {
namespace {

std::vector<TraceRecord> tiny_trace() {
  // key, size, cost, trace_id
  return {
      {1, 100, 1, 0},    {2, 200, 100, 0},  {3, 300, 10'000, 0},
      {1, 100, 1, 0},    {1, 100, 1, 0},    {2, 200, 100, 0},
      {4, 400, 100, 0},
  };
}

TEST(Profiler, ByCostValueGroups) {
  const auto profiler = TraceProfiler::by_cost_value(tiny_trace());
  ASSERT_EQ(profiler.groups().size(), 3u);
  const auto& g1 = profiler.groups()[0];
  EXPECT_EQ(g1.cost_value, 1u);
  EXPECT_EQ(g1.requests, 3u);
  EXPECT_EQ(g1.cost_mass, 3u);
  EXPECT_EQ(g1.unique_keys, 1u);
  EXPECT_EQ(g1.unique_bytes, 100u);
  const auto& g2 = profiler.groups()[1];
  EXPECT_EQ(g2.cost_value, 100u);
  EXPECT_EQ(g2.requests, 3u);
  EXPECT_EQ(g2.unique_keys, 2u);
  EXPECT_EQ(g2.unique_bytes, 600u);
  const auto& g3 = profiler.groups()[2];
  EXPECT_EQ(g3.cost_value, 10'000u);
  EXPECT_EQ(g3.requests, 1u);
}

TEST(Profiler, Totals) {
  const auto profiler = TraceProfiler::by_cost_value(tiny_trace());
  EXPECT_EQ(profiler.total_requests(), 7u);
  EXPECT_EQ(profiler.unique_keys(), 4u);
  EXPECT_EQ(profiler.unique_bytes(), 1000u);
  EXPECT_EQ(profiler.total_cost_mass(), 3u + 300u + 10'000u);
}

TEST(Profiler, CostMassWeights) {
  const auto profiler = TraceProfiler::by_cost_value(tiny_trace());
  const auto w = profiler.cost_mass_weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], 300.0);
  EXPECT_DOUBLE_EQ(w[2], 10'000.0);
}

TEST(Profiler, ByCostRangeGroups) {
  const auto profiler =
      TraceProfiler::by_cost_range(tiny_trace(), {100, 10'000});
  ASSERT_EQ(profiler.groups().size(), 3u);
  EXPECT_EQ(profiler.groups()[0].requests, 3u);  // cost 1 (x3)
  EXPECT_EQ(profiler.groups()[1].requests, 3u);  // cost 100 (x3)
  EXPECT_EQ(profiler.groups()[2].requests, 1u);  // cost 10'000
  const auto w = profiler.min_cost_weights();
  EXPECT_DOUBLE_EQ(w[0], 1.0) << "zero lower bound substitutes 1";
  EXPECT_DOUBLE_EQ(w[1], 100.0);
  EXPECT_DOUBLE_EQ(w[2], 10'000.0);
}

TEST(Profiler, CostToGroupMapping) {
  const auto profiler = TraceProfiler::by_cost_value(tiny_trace());
  const auto mapping = profiler.cost_to_group();
  EXPECT_EQ(mapping.at(1), 0u);
  EXPECT_EQ(mapping.at(100), 1u);
  EXPECT_EQ(mapping.at(10'000), 2u);
}

TEST(Profiler, BgTraceHasBalancedTiers) {
  // The paper: the three {1,100,10K} pools have "approximately the same
  // number of key-value pairs, frequency and size".
  const auto config = bg_default(3000, 60'000, 31);
  TraceGenerator gen(config);
  const auto rows = gen.generate();
  const auto profiler = TraceProfiler::by_cost_value(rows);
  ASSERT_EQ(profiler.groups().size(), 3u);
  const double third =
      static_cast<double>(profiler.total_requests()) / 3.0;
  for (const auto& g : profiler.groups()) {
    EXPECT_NEAR(static_cast<double>(g.requests), third, third * 0.25)
        << "cost tier " << g.cost_value;
  }
}

TEST(Profiler, EmptyTrace) {
  const auto profiler = TraceProfiler::by_cost_value({});
  EXPECT_TRUE(profiler.groups().empty());
  EXPECT_EQ(profiler.unique_bytes(), 0u);
  EXPECT_EQ(profiler.total_requests(), 0u);
}

}  // namespace
}  // namespace camp::trace
