#include "coop/directory.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.h"

namespace camp::coop {
namespace {

TEST(ReplicaDirectory, AddRemoveRoundTrip) {
  ReplicaDirectory dir;
  dir.add(1, 10);
  EXPECT_TRUE(dir.holds(1, 10));
  EXPECT_EQ(dir.replica_count(1), 1u);
  EXPECT_TRUE(dir.is_last_replica(1, 10));
  EXPECT_TRUE(dir.remove(1, 10)) << "removing the only copy drops the last";
  EXPECT_FALSE(dir.holds(1, 10));
  EXPECT_EQ(dir.tracked_keys(), 0u);
}

TEST(ReplicaDirectory, DuplicateAddIsNoOp) {
  ReplicaDirectory dir;
  dir.add(1, 10);
  dir.add(1, 10);
  EXPECT_EQ(dir.replica_count(1), 1u);
  EXPECT_EQ(dir.total_replicas(), 1u);
}

TEST(ReplicaDirectory, LastReplicaSemantics) {
  ReplicaDirectory dir;
  dir.add(1, 10);
  dir.add(1, 11);
  EXPECT_FALSE(dir.is_last_replica(1, 10));
  EXPECT_FALSE(dir.remove(1, 11)) << "a second copy remains";
  EXPECT_TRUE(dir.is_last_replica(1, 10));
  EXPECT_TRUE(dir.remove(1, 10));
}

TEST(ReplicaDirectory, RemoveUntrackedIsSilent) {
  ReplicaDirectory dir;
  EXPECT_FALSE(dir.remove(1, 10));
  dir.add(1, 10);
  EXPECT_FALSE(dir.remove(1, 99));  // wrong node
  EXPECT_EQ(dir.replica_count(1), 1u);
}

TEST(ReplicaDirectory, AnyHolderRespectsExclusion) {
  ReplicaDirectory dir;
  dir.add(1, 10);
  EXPECT_EQ(dir.any_holder(1), std::optional<std::uint32_t>(10));
  EXPECT_EQ(dir.any_holder(1, 10), std::nullopt);
  dir.add(1, 11);
  const auto other = dir.any_holder(1, 10);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(*other, 11u);
  EXPECT_EQ(dir.any_holder(2), std::nullopt);
}

TEST(ReplicaDirectory, RemoveNodeReportsOrphans) {
  ReplicaDirectory dir;
  dir.add(1, 10);             // orphaned when 10 leaves
  dir.add(2, 10);
  dir.add(2, 11);             // survives on 11
  dir.add(3, 11);             // untouched
  auto orphans = dir.remove_node(10);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], 1u);
  EXPECT_EQ(dir.replica_count(2), 1u);
  EXPECT_TRUE(dir.is_last_replica(2, 11));
  EXPECT_EQ(dir.total_replicas(), 2u);
}

TEST(ReplicaDirectory, MatchesSetModelUnderRandomOps) {
  // Property check against a brute-force model: map<key, set<node>>.
  ReplicaDirectory dir;
  std::map<std::uint64_t, std::set<std::uint32_t>> model;
  util::Xoshiro256 rng(17);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.below(50);
    const std::uint32_t node = static_cast<std::uint32_t>(rng.below(6));
    switch (rng.below(3)) {
      case 0: {
        dir.add(key, node);
        model[key].insert(node);
        break;
      }
      case 1: {
        const bool was_last =
            model.contains(key) && model[key] == std::set<std::uint32_t>{node};
        ASSERT_EQ(dir.remove(key, node), was_last) << "op " << i;
        if (model.contains(key)) {
          model[key].erase(node);
          if (model[key].empty()) model.erase(key);
        }
        break;
      }
      default: {
        const auto it = model.find(key);
        const std::size_t expected = it == model.end() ? 0 : it->second.size();
        ASSERT_EQ(dir.replica_count(key), expected) << "op " << i;
        ASSERT_EQ(dir.holds(key, node),
                  it != model.end() && it->second.contains(node))
            << "op " << i;
        break;
      }
    }
  }
  std::size_t model_total = 0;
  for (const auto& [k, nodes] : model) model_total += nodes.size();
  EXPECT_EQ(dir.total_replicas(), model_total);
  EXPECT_EQ(dir.tracked_keys(), model.size());
}

}  // namespace
}  // namespace camp::coop
