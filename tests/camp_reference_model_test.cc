// Differential testing of CampCache against a deliberately naive executable
// specification of "GDS with MSY-rounded ratios and LRU tie-breaking":
// a linear-scan model with no heaps, no queues, no cleverness. If the two
// ever disagree on a hit, an eviction victim, or a byte count, CAMP's data
// structures have drifted from the algorithm.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "core/camp.h"
#include "util/rng.h"

namespace camp::core {
namespace {

/// The spec: Algorithm 1 with rounded ratios, implemented by brute force.
class ReferenceGds {
 public:
  ReferenceGds(std::uint64_t capacity, int precision)
      : capacity_(capacity), precision_(precision) {}

  bool get(policy::Key key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    // L <- min H over the *other* resident pairs.
    std::uint64_t min_h = ~0ull;
    bool found_other = false;
    for (const auto& [k, e] : entries_) {
      if (k == key) continue;
      min_h = std::min(min_h, e.h);
      found_other = true;
    }
    if (found_other && min_h > inflation_) inflation_ = min_h;
    Entry& e = it->second;
    e.ratio = scaler_.scale_and_round(e.cost, e.size, precision_);
    e.h = inflation_ + e.ratio;
    e.seq = ++seq_;
    return true;
  }

  bool put(policy::Key key, std::uint64_t size, std::uint64_t cost) {
    if (size == 0 || size > capacity_) return false;
    erase(key);
    scaler_.observe_size(size);
    const std::uint64_t ratio =
        scaler_.scale_and_round(cost, size, precision_);
    while (used_ + size > capacity_) evict_one();
    Entry e;
    e.size = size;
    e.cost = cost;
    e.ratio = ratio;
    e.h = inflation_ + ratio;
    e.seq = ++seq_;
    entries_[key] = e;
    used_ += size;
    return true;
  }

  void erase(policy::Key key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return;
    used_ -= it->second.size;
    entries_.erase(it);
  }

  [[nodiscard]] bool contains(policy::Key key) const {
    return entries_.contains(key);
  }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t inflation() const { return inflation_; }
  [[nodiscard]] const std::vector<policy::Key>& evictions() const {
    return evictions_;
  }

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t ratio = 0;
    std::uint64_t h = 0;
    std::uint64_t seq = 0;
  };

  void evict_one() {
    // Victim: lexicographically smallest (h, seq) — minimum priority with
    // LRU tie-breaking. Linear scan IS the spec.
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const auto& [vk, ve] = *victim;
      const auto& [k, e] = *it;
      if (std::tie(e.h, e.seq) < std::tie(ve.h, ve.seq)) victim = it;
    }
    if (victim->second.h > inflation_) inflation_ = victim->second.h;
    used_ -= victim->second.size;
    evictions_.push_back(victim->first);
    entries_.erase(victim);
  }

  std::uint64_t capacity_;
  int precision_;
  util::AdaptiveRatioScaler scaler_;
  std::map<policy::Key, Entry> entries_;
  std::uint64_t used_ = 0;
  std::uint64_t inflation_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<policy::Key> evictions_;
};

class CampVsReference
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CampVsReference, IdenticalBehaviour) {
  const auto [precision, seed] = GetParam();
  constexpr std::uint64_t kCapacity = 6000;

  CampConfig config;
  config.capacity_bytes = kCapacity;
  config.precision = precision;
  CampCache cache(config);
  ReferenceGds reference(kCapacity, precision);

  std::vector<policy::Key> camp_evictions;
  cache.set_eviction_listener([&](policy::Key k, std::uint64_t) {
    camp_evictions.push_back(k);
  });

  util::Xoshiro256 rng(seed);
  for (int op = 0; op < 8000; ++op) {
    const policy::Key k = rng.below(120);
    const auto dice = rng.below(100);
    if (dice < 80) {
      const bool camp_hit = cache.get(k);
      const bool ref_hit = reference.get(k);
      ASSERT_EQ(camp_hit, ref_hit)
          << "op " << op << " precision " << precision << " seed " << seed;
      if (!camp_hit) {
        const std::uint64_t size = 1 + rng.below(700);
        const std::uint64_t cost = rng.below(30'000);
        ASSERT_EQ(cache.put(k, size, cost), reference.put(k, size, cost))
            << "op " << op;
      }
    } else if (dice < 92) {
      const std::uint64_t size = 1 + rng.below(700);
      const std::uint64_t cost = rng.below(30'000);
      ASSERT_EQ(cache.put(k, size, cost), reference.put(k, size, cost))
          << "op " << op;
    } else {
      cache.erase(k);
      reference.erase(k);
    }
    ASSERT_EQ(cache.used_bytes(), reference.used()) << "op " << op;
    ASSERT_EQ(cache.inflation(), reference.inflation()) << "op " << op;
    ASSERT_EQ(camp_evictions, reference.evictions()) << "op " << op;
  }
  EXPECT_GT(camp_evictions.size(), 100u) << "the test must exercise eviction";
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionSeeds, CampVsReference,
    ::testing::Combine(::testing::Values(1, 3, 5, 10,
                                         util::kPrecisionInfinity),
                       ::testing::Values<std::uint64_t>(2, 17, 99, 1234)));

}  // namespace
}  // namespace camp::core
