// Engine-boundary tests for transparent value compression: the engine
// compresses on store, decompresses on read, and charges the POLICY the
// compressed chunk size — which is the whole point (more pairs fit under
// one byte budget). Also covers the stored-form surfaces (get_stored /
// set_stored / for_each_item / the eviction hook) and the hardened
// corrupt-stored-bytes read path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/camp.h"
#include "kvs/compress.h"
#include "kvs/engine.h"
#include "kvs/item.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

EngineConfig engine_config(bool compression,
                           std::uint64_t bytes = 2u << 20) {
  EngineConfig c;
  c.slab.memory_limit_bytes = bytes;
  c.slab.slab_size_bytes = 1u << 20;
  c.compression.enabled = compression;
  return c;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

PolicyFactory camp_factory(int precision = 5) {
  return [precision](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    return core::make_camp(config);
  };
}

const std::string kRunny(4096, 'v');  // massively RLE-compressible

TEST(CompressionEngine, RoundTripIsTransparent) {
  util::ManualClock clock;
  KvsEngine engine(engine_config(true), lru_factory(), clock);
  ASSERT_TRUE(engine.set("k", kRunny, 7, 3));
  const GetResult r = engine.get("k");
  ASSERT_TRUE(r.hit);
  EXPECT_EQ(r.value, kRunny);
  EXPECT_EQ(r.flags, 7u);

  // The resident form is compressed: raw accounting vs stored accounting.
  const EngineStats& s = engine.stats();
  EXPECT_EQ(s.value_bytes, kRunny.size());
  EXPECT_LT(s.stored_bytes, kRunny.size() / 10);
  EXPECT_EQ(s.compress_bails, 0u);
}

TEST(CompressionEngine, ChargesThePolicyTheCompressedSize) {
  util::ManualClock clock;
  KvsEngine on(engine_config(true), lru_factory(), clock);
  KvsEngine off(engine_config(false), lru_factory(), clock);
  ASSERT_TRUE(on.set("k", kRunny, 0, 1));
  ASSERT_TRUE(off.set("k", kRunny, 0, 1));
  // Same value, same budget: the compressed engine charges a far smaller
  // chunk (slab classes are picked by STORED footprint).
  EXPECT_LT(on.policy_used_bytes(), off.policy_used_bytes() / 8);
}

TEST(CompressionEngine, CompressionOffStoresIdentity) {
  util::ManualClock clock;
  KvsEngine engine(engine_config(false), lru_factory(), clock);
  ASSERT_TRUE(engine.set("k", kRunny, 0, 1));
  const StoredGetResult r = engine.get_stored("k");
  ASSERT_TRUE(r.hit);
  EXPECT_EQ(r.codec, Codec::kIdentity);
  EXPECT_EQ(r.stored, kRunny);
  EXPECT_EQ(r.raw_len, kRunny.size());
  EXPECT_EQ(engine.stats().stored_bytes, engine.stats().value_bytes);
}

TEST(CompressionEngine, IncompressibleValueCountsABail) {
  util::ManualClock clock;
  KvsEngine engine(engine_config(true), lru_factory(), clock);
  util::Xoshiro256 rng(0xabad1dea);
  std::string random(1024, '\0');
  for (char& c : random) c = static_cast<char>(rng.next() & 0xff);
  ASSERT_TRUE(engine.set("r", random, 0, 1));
  EXPECT_EQ(engine.stats().compress_bails, 1u);
  EXPECT_EQ(engine.get_stored("r").codec, Codec::kIdentity);
  EXPECT_EQ(engine.get("r").value, random);
  // Tiny values skip compression without counting a bail (they never
  // attempted it).
  ASSERT_TRUE(engine.set("tiny", "ab", 0, 1));
  EXPECT_EQ(engine.stats().compress_bails, 1u);
}

TEST(CompressionEngine, GetStoredReturnsTheCompressedForm) {
  util::ManualClock clock;
  KvsEngine engine(engine_config(true), lru_factory(), clock);
  ASSERT_TRUE(engine.set("k", kRunny, 5, 9));
  const StoredGetResult r = engine.get_stored("k");
  ASSERT_TRUE(r.hit);
  EXPECT_EQ(r.codec, Codec::kRle);
  EXPECT_EQ(r.raw_len, kRunny.size());
  EXPECT_LT(r.stored.size(), kRunny.size() / 10);
  EXPECT_EQ(r.flags, 5u);
  EXPECT_EQ(r.cost, 9u);
  std::string decoded;
  ASSERT_TRUE(decompress_value(r.codec, r.stored, r.raw_len, decoded));
  EXPECT_EQ(decoded, kRunny);
  // get_stored is a real read: hit accounting matches get().
  EXPECT_EQ(engine.stats().gets, 1u);
  EXPECT_EQ(engine.stats().hits, 1u);
}

TEST(CompressionEngine, SetStoredKeepsCompressedBytesVerbatim) {
  util::ManualClock clock;
  // The RECEIVING engine has compression OFF — a peer transfer must still
  // land the compressed payload as-is (stored_len is what it is, no
  // recompress, no inflate).
  KvsEngine engine(engine_config(false), lru_factory(), clock);
  const CompressResult comp = compress_value(kRunny, {.enabled = true});
  ASSERT_EQ(comp.codec, Codec::kRle);
  ASSERT_TRUE(engine.set_stored("k", comp.data,
                                static_cast<std::uint32_t>(kRunny.size()),
                                comp.codec, 1, 2));
  const StoredGetResult stored = engine.get_stored("k");
  EXPECT_EQ(stored.codec, Codec::kRle);
  EXPECT_EQ(stored.stored, comp.data);
  EXPECT_EQ(engine.get("k").value, kRunny);
}

TEST(CompressionEngine, SetStoredIdentityAppliesLocalConfig) {
  util::ManualClock clock;
  // Identity set_stored delegates to set(): an engine with compression ON
  // compresses a raw peer payload exactly like a client set.
  KvsEngine engine(engine_config(true), lru_factory(), clock);
  ASSERT_TRUE(engine.set_stored("k", kRunny,
                                static_cast<std::uint32_t>(kRunny.size()),
                                Codec::kIdentity, 0, 1));
  EXPECT_EQ(engine.get_stored("k").codec, Codec::kRle);
  EXPECT_EQ(engine.get("k").value, kRunny);
}

TEST(CompressionEngine, CorruptStoredBytesFailClosedOnRead) {
  util::ManualClock clock;
  KvsEngine engine(engine_config(false), lru_factory(), clock);
  // set_stored trusts its caller (wire/snapshot entry points validate by
  // decoding) — feed it garbage directly to exercise the read-side guard.
  ASSERT_TRUE(engine.set_stored("bad", "\x80\x80\x80", 4096, Codec::kRle, 0,
                                1));
  EXPECT_EQ(engine.stats().items, 1u);
  const GetResult r = engine.get("bad");
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(engine.stats().decompress_failures, 1u);
  // The poisoned pair was dropped, not left to fail every future read.
  EXPECT_EQ(engine.stats().items, 0u);
  EXPECT_FALSE(engine.contains("bad"));
}

TEST(CompressionEngine, ForEachItemExposesBothSizes) {
  util::ManualClock clock;
  KvsEngine engine(engine_config(true), lru_factory(), clock);
  ASSERT_TRUE(engine.set("zip", kRunny, 0, 1));
  std::size_t seen = 0;
  engine.for_each_item([&](const ItemView& item) {
    ++seen;
    EXPECT_EQ(item.key, "zip");
    EXPECT_EQ(item.codec, Codec::kRle);
    EXPECT_EQ(item.raw_len, kRunny.size());
    EXPECT_LT(item.stored.size(), kRunny.size() / 10);
    EXPECT_EQ(item.charged_bytes,
              engine.allocator().chunk_size_of_class(
                  engine.allocator()
                      .class_for(item_footprint(3, item.stored.size(),
                                                item.codec))
                      .value()));
  });
  EXPECT_EQ(seen, 1u);
}

TEST(CompressionEngine, EvictionHookReportsRawAndChargedBytes) {
  util::ManualClock clock;
  // Small budget so the second set evicts the first.
  EngineConfig config = engine_config(true, 1u << 20);
  config.slab.slab_size_bytes = 512u << 10;
  KvsEngine engine(config, lru_factory(), clock);
  // The hook's views die with the call; copy what the assertions need.
  struct Evicted {
    std::string key;
    std::string stored;
    std::uint32_t raw_len = 0;
    Codec codec = Codec::kIdentity;
    std::uint64_t charged_bytes = 0;
  };
  std::vector<Evicted> evicted;
  engine.set_eviction_hook([&](const EvictedItem& item) {
    evicted.push_back(Evicted{std::string(item.key),
                              std::string(item.stored), item.raw_len,
                              item.codec, item.charged_bytes});
  });
  const std::string big(400u << 10, 'e');  // compresses to ~6 KiB
  ASSERT_TRUE(engine.set("first", big, 0, 1));
  // Fill with incompressible values until "first" goes (LRU order).
  util::Xoshiro256 rng(0x5eed);
  std::string random(200u << 10, '\0');
  int i = 0;
  while (evicted.empty() && i < 64) {
    for (char& c : random) c = static_cast<char>(rng.next() & 0xff);
    ASSERT_TRUE(engine.set("filler" + std::to_string(i++), random, 0, 1));
  }
  ASSERT_FALSE(evicted.empty());
  const Evicted& first = evicted.front();
  ASSERT_EQ(first.key, "first");
  ASSERT_EQ(first.codec, Codec::kRle);
  EXPECT_EQ(first.raw_len, big.size());
  // Charged bytes follow the STORED footprint, far below the raw size.
  EXPECT_LT(first.charged_bytes, big.size() / 10);
  EXPECT_GE(first.charged_bytes, first.stored.size());
  std::string decoded;
  ASSERT_TRUE(
      decompress_value(first.codec, first.stored, first.raw_len, decoded));
  EXPECT_EQ(decoded, big);
}

TEST(CompressionEngine, SameBudgetHoldsMoreCompressibleValues) {
  // The acceptance-shaped property at engine scope: under one byte budget,
  // a compressible working set sees strictly more hits with compression on.
  util::ManualClock clock;
  const std::uint64_t budget = 2u << 20;
  KvsEngine on(engine_config(true, budget), camp_factory(), clock);
  KvsEngine off(engine_config(false, budget), camp_factory(), clock);
  const std::string payload(16 << 10, 'p');  // ~16 KiB, ~128x compressible
  constexpr int kKeys = 512;                 // raw working set: 8 MiB
  for (auto* engine : {&on, &off}) {
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(
          engine->set("key" + std::to_string(i), payload, 0, 1 + i % 5));
    }
  }
  std::uint64_t hits_on = 0;
  std::uint64_t hits_off = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    hits_on += on.get(key).hit ? 1 : 0;
    hits_off += off.get(key).hit ? 1 : 0;
  }
  EXPECT_EQ(hits_on, static_cast<std::uint64_t>(kKeys))
      << "the compressed working set fits the budget outright";
  EXPECT_LT(hits_off, hits_on / 4);
}

TEST(CompressionEngine, OverwriteAcrossCodecsKeepsAccountingExact) {
  util::ManualClock clock;
  KvsEngine engine(engine_config(true), lru_factory(), clock);
  util::Xoshiro256 rng(0x0eed);
  std::string random(2048, '\0');
  for (char& c : random) c = static_cast<char>(rng.next() & 0xff);

  ASSERT_TRUE(engine.set("k", kRunny, 0, 1));        // RLE
  ASSERT_TRUE(engine.set("k", random, 0, 1));        // identity (bail)
  ASSERT_TRUE(engine.set("k", std::string(600, 'w'), 0, 1));  // RLE again
  ASSERT_TRUE(engine.del("k"));
  EXPECT_EQ(engine.stats().items, 0u);
  EXPECT_EQ(engine.stats().value_bytes, 0u);
  EXPECT_EQ(engine.stats().stored_bytes, 0u);
  EXPECT_EQ(engine.policy_used_bytes(), 0u);
}

}  // namespace
}  // namespace camp::kvs
