// Robustness tests driving the server with a raw socket: malformed
// commands, split packets, pipelined requests — things the friendly
// KvsClient never sends.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "kvs/server.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

class RawSocket {
 public:
  explicit RawSocket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_raw(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  std::string recv_until(const std::string& marker) {
    std::string out;
    char chunk[4096];
    while (out.find(marker) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

class RawProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig config;
    config.store.shards = 1;
    config.store.engine.slab.memory_limit_bytes = 2u << 20;
    server_ = std::make_unique<KvsServer>(
        config,
        [](std::uint64_t cap) {
          return std::make_unique<policy::LruCache>(cap);
        },
        clock_);
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  util::SteadyClock clock_;
  std::unique_ptr<KvsServer> server_;
};

TEST_F(RawProtocolTest, GarbageGetsError) {
  RawSocket sock(server_->port());
  sock.send_raw("frobnicate the cache\r\n");
  EXPECT_NE(sock.recv_until("\r\n").find("ERROR"), std::string::npos);
  // Connection must survive; a valid command still works.
  sock.send_raw("version\r\n");
  EXPECT_NE(sock.recv_until("\r\n").find("VERSION"), std::string::npos);
}

TEST_F(RawProtocolTest, SplitPacketsReassembled) {
  RawSocket sock(server_->port());
  // Send a set command byte-dribbled across many packets.
  const std::string request = "set dribble 0 0 5\r\nhello\r\n";
  for (const char c : request) sock.send_raw(std::string(1, c));
  EXPECT_NE(sock.recv_until("\r\n").find("STORED"), std::string::npos);
  sock.send_raw("get dribble\r\n");
  const std::string reply = sock.recv_until("END\r\n");
  EXPECT_NE(reply.find("VALUE dribble 0 5"), std::string::npos);
  EXPECT_NE(reply.find("hello"), std::string::npos);
}

TEST_F(RawProtocolTest, PipelinedCommands) {
  RawSocket sock(server_->port());
  sock.send_raw(
      "set a 0 0 1\r\nA\r\n"
      "set b 0 0 1\r\nB\r\n"
      "get a b\r\n");
  const std::string reply = sock.recv_until("END\r\n");
  EXPECT_NE(reply.find("STORED"), std::string::npos);
  EXPECT_NE(reply.find("VALUE a 0 1"), std::string::npos);
  EXPECT_NE(reply.find("VALUE b 0 1"), std::string::npos);
}

TEST_F(RawProtocolTest, NoreplySuppressesResponse) {
  RawSocket sock(server_->port());
  sock.send_raw("set quiet 0 0 2 noreply\r\nhi\r\nget quiet\r\n");
  const std::string reply = sock.recv_until("END\r\n");
  EXPECT_EQ(reply.find("STORED"), std::string::npos)
      << "noreply must not produce STORED";
  EXPECT_NE(reply.find("VALUE quiet 0 2"), std::string::npos);
}

TEST_F(RawProtocolTest, PayloadWithCrLfInside) {
  RawSocket sock(server_->port());
  // 6-byte binary payload containing CRLF; framing must rely on the byte
  // count, not on line scanning.
  sock.send_raw(std::string("set bin 0 0 6\r\n") + std::string("a\r\nb\rc", 6) +
                "\r\n");
  EXPECT_NE(sock.recv_until("\r\n").find("STORED"), std::string::npos);
  sock.send_raw("get bin\r\n");
  const std::string reply = sock.recv_until("END\r\n");
  EXPECT_NE(reply.find("VALUE bin 0 6"), std::string::npos);
}

TEST_F(RawProtocolTest, OversizedDeclaredLengthRejectedGracefully) {
  RawSocket sock(server_->port());
  // Declared bytes exceed the largest slab chunk: NOT_STORED, connection
  // stays up.
  const std::string big(3u << 20, 'x');
  sock.send_raw("set huge 0 0 " + std::to_string(big.size()) + "\r\n" + big +
                "\r\n");
  EXPECT_NE(sock.recv_until("\r\n").find("NOT_STORED"), std::string::npos);
  sock.send_raw("version\r\n");
  EXPECT_NE(sock.recv_until("\r\n").find("VERSION"), std::string::npos);
}

TEST_F(RawProtocolTest, MalformedStorageHeaderClosesConnection) {
  // A set whose byte count cannot be parsed (u32 overflow) leaves the
  // stream unframeable: the server answers ERROR and drops the connection
  // instead of misparsing the payload as commands.
  RawSocket sock(server_->port());
  sock.send_raw("set huge 0 0 4294967296\r\n");
  const std::string reply = sock.recv_until("\r\n");
  EXPECT_NE(reply.find("ERROR"), std::string::npos);
  // The connection is gone: recv drains to EOF with no further replies.
  EXPECT_EQ(sock.recv_until("VERSION").find("VERSION"), std::string::npos);
  // The server itself survives and serves fresh connections.
  RawSocket sock2(server_->port());
  sock2.send_raw("version\r\n");
  EXPECT_NE(sock2.recv_until("\r\n").find("VERSION"), std::string::npos);
}

TEST_F(RawProtocolTest, AbruptDisconnectDuringPayload) {
  {
    RawSocket sock(server_->port());
    sock.send_raw("set ghost 0 0 100\r\npartial");
    // Destructor closes mid-payload.
  }
  // Server must survive and keep serving.
  RawSocket sock2(server_->port());
  sock2.send_raw("get ghost\r\n");
  const std::string reply = sock2.recv_until("END\r\n");
  EXPECT_EQ(reply.find("VALUE"), std::string::npos)
      << "half-written item must not be visible";
}

}  // namespace
}  // namespace camp::kvs
