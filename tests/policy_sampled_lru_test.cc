#include "policy/sampled_lru.h"

#include <gtest/gtest.h>

#include "policy/lru.h"
#include "util/rng.h"

namespace camp::policy {
namespace {

SampledLruConfig cfg(std::uint64_t cap, bool cost_aware = false) {
  SampledLruConfig c;
  c.capacity_bytes = cap;
  c.cost_aware = cost_aware;
  return c;
}

TEST(SampledLru, Validation) {
  const SampledLruConfig zero{};
  EXPECT_THROW(SampledLruCache{zero}, std::invalid_argument);
  SampledLruConfig bad = cfg(100);
  bad.sample_size = 0;
  EXPECT_THROW(SampledLruCache{bad}, std::invalid_argument);
}

TEST(SampledLru, ApproximatesLruMissRate) {
  // On a skewed stream, sampled LRU's miss rate should be within a few
  // points of exact LRU (Redis's design premise).
  SampledLruCache sampled(cfg(5000));
  LruCache exact(5000);
  util::Xoshiro256 rng(7);
  std::uint64_t sampled_misses = 0, exact_misses = 0;
  for (int i = 0; i < 50'000; ++i) {
    const Key k = rng.below(100) < 70 ? rng.below(50) : 50 + rng.below(450);
    if (!sampled.get(k)) {
      ++sampled_misses;
      sampled.put(k, 50, 1);
    }
    if (!exact.get(k)) {
      ++exact_misses;
      exact.put(k, 50, 1);
    }
  }
  const double ratio = static_cast<double>(sampled_misses) /
                       static_cast<double>(exact_misses);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.35) << "5-sample LRU should track exact LRU closely";
}

TEST(SampledLru, OldKeysEventuallyEvicted) {
  SampledLruCache cache(cfg(1000));
  cache.put(999, 100, 1);
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.below(50);
    if (!cache.get(k)) cache.put(k, 100, 1);
  }
  EXPECT_FALSE(cache.contains(999)) << "idle key must age out via sampling";
}

TEST(SampledLru, CostAwareShieldsExpensivePairs) {
  SampledLruCache cache(cfg(1000, /*cost_aware=*/true));
  cache.put(999, 100, 100'000);  // expensive
  util::Xoshiro256 rng(11);
  int survived = 0;
  for (int i = 0; i < 500; ++i) {
    const Key k = rng.below(30);
    if (!cache.get(k)) cache.put(k, 100, 1);
    survived += cache.contains(999) ? 1 : 0;
  }
  EXPECT_GT(survived, 400)
      << "idle*size/cost scoring should protect the expensive pair far "
         "longer than plain sampled LRU would";
  EXPECT_EQ(cache.name(), "sampled-gds");
}

TEST(SampledLru, SwapRemoveKeepsSamplingSound) {
  SampledLruCache cache(cfg(10'000));
  // Heavy interleaved insert/erase churn exercises the dense-array slots.
  util::Xoshiro256 rng(13);
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.below(200);
    const auto dice = rng.below(3);
    if (dice == 0) {
      cache.put(k, 1 + rng.below(100), 1);
    } else if (dice == 1) {
      cache.erase(k);
    } else {
      cache.get(k);
    }
  }
  // Evict everything through the sampler; counts must stay consistent.
  while (cache.evict_one()) {
  }
  EXPECT_EQ(cache.item_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

}  // namespace
}  // namespace camp::policy
