#include "sim/hierarchy.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/camp.h"
#include "policy/lru.h"

namespace camp::sim {
namespace {

trace::TraceRecord rec(std::uint64_t key, std::uint32_t size,
                       std::uint32_t cost) {
  return trace::TraceRecord{key, size, cost, 0};
}

std::unique_ptr<policy::ICache> lru(std::uint64_t cap) {
  return std::make_unique<policy::LruCache>(cap);
}

TEST(Hierarchy, Validation) {
  EXPECT_THROW(HierarchicalCache(nullptr, lru(10), {}),
               std::invalid_argument);
  EXPECT_THROW(HierarchicalCache(lru(10), nullptr, {}),
               std::invalid_argument);
}

TEST(Hierarchy, L1HitFastPath) {
  HierarchicalCache h(lru(1000), lru(1000), HierarchyConfig{});
  h.process(rec(1, 100, 500));  // cold miss, lands in L1
  h.process(rec(1, 100, 500));  // L1 hit
  EXPECT_EQ(h.metrics().l1_hits, 1u);
  EXPECT_EQ(h.metrics().l2_hits, 0u);
}

TEST(Hierarchy, DemotionToL2AndPromotionBack) {
  HierarchyConfig config;
  HierarchicalCache h(lru(200), lru(1000), config);
  h.process(rec(1, 100, 500));  // in L1
  h.process(rec(2, 100, 1));    // in L1 (full now)
  h.process(rec(3, 100, 1));    // evicts 1 from L1 -> demoted to L2
  EXPECT_TRUE(h.l2().contains(1)) << "L1 victim must be demoted";
  h.process(rec(1, 100, 500));  // L2 hit, promoted back to L1
  EXPECT_EQ(h.metrics().l2_hits, 1u);
  EXPECT_TRUE(h.l1().contains(1));
  EXPECT_FALSE(h.l2().contains(1)) << "promotion removes the L2 copy";
}

TEST(Hierarchy, NoDemotionWhenDisabled) {
  HierarchyConfig config;
  config.demote_l1_victims = false;
  HierarchicalCache h(lru(200), lru(1000), config);
  h.process(rec(1, 100, 1));
  h.process(rec(2, 100, 1));
  h.process(rec(3, 100, 1));  // evicts 1; NOT demoted
  EXPECT_FALSE(h.l2().contains(1));
}

TEST(Hierarchy, ServiceCostModel) {
  HierarchyConfig config;
  config.l1_latency = 2;
  config.l2_latency = 50;
  HierarchicalCache h(lru(200), lru(1000), config);
  h.process(rec(1, 100, 700));  // full miss: 700 + 2
  h.process(rec(1, 100, 700));  // L1 hit: +2
  EXPECT_EQ(h.metrics().total_service_cost, 700u + 2u + 2u);
}

TEST(Hierarchy, CampAtBothLevelsKeepsExpensivePairsReachable) {
  // Expensive pairs pushed out of a small CAMP L1 must survive in L2 and be
  // served from there instead of recomputed.
  auto make_camp_level = [](std::uint64_t cap) {
    core::CampConfig c;
    c.capacity_bytes = cap;
    c.precision = 5;
    return core::make_camp(c);
  };
  HierarchicalCache h(make_camp_level(300), make_camp_level(3000),
                      HierarchyConfig{});
  h.process(rec(99, 100, 10'000));  // expensive pair
  // Cheap churn floods L1.
  for (std::uint64_t k = 0; k < 30; ++k) h.process(rec(k, 100, 1));
  // The expensive pair should be served without paying its cost again.
  const auto missed_before = h.metrics().noncold_cost_missed;
  h.process(rec(99, 100, 10'000));
  EXPECT_EQ(h.metrics().noncold_cost_missed, missed_before)
      << "pair 99 must hit somewhere in the hierarchy";
}

TEST(Hierarchy, MetricsExcludeCold) {
  HierarchicalCache h(lru(100), lru(100), HierarchyConfig{});
  h.process(rec(1, 50, 9));
  EXPECT_EQ(h.metrics().cold_requests, 1u);
  EXPECT_DOUBLE_EQ(h.metrics().miss_rate(), 0.0);
}

}  // namespace
}  // namespace camp::sim
