#include "coop/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

namespace camp::coop {
namespace {

TEST(HashRing, RejectsZeroVirtualNodes) {
  EXPECT_THROW(HashRing{0}, std::invalid_argument);
}

TEST(HashRing, EmptyRingThrows) {
  HashRing ring;
  EXPECT_THROW((void)ring.node_for(1), std::logic_error);
  EXPECT_TRUE(ring.nodes_for(1, 2).empty());
}

TEST(HashRing, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.add_node(7);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(ring.node_for(k), 7u);
}

TEST(HashRing, AddIsIdempotent) {
  HashRing ring;
  ring.add_node(1);
  ring.add_node(1);
  EXPECT_EQ(ring.node_count(), 1u);
  ring.remove_node(1);
  EXPECT_EQ(ring.node_count(), 0u);
  ring.remove_node(1);  // no-op
}

TEST(HashRing, BalancesKeysAcrossNodes) {
  HashRing ring(128);
  constexpr std::uint32_t kNodes = 8;
  for (std::uint32_t n = 0; n < kNodes; ++n) ring.add_node(n);
  std::map<std::uint32_t, int> counts;
  constexpr int kKeys = 40'000;
  for (std::uint64_t k = 0; k < kKeys; ++k) ++counts[ring.node_for(k)];
  ASSERT_EQ(counts.size(), kNodes);
  for (const auto& [node, count] : counts) {
    // Perfect balance would be kKeys / kNodes = 5000; accept a generous
    // +/-50% band (128 virtual points keep the spread far tighter).
    EXPECT_GT(count, kKeys / kNodes / 2) << "node " << node << " starved";
    EXPECT_LT(count, kKeys / kNodes * 3 / 2) << "node " << node << " hot";
  }
}

TEST(HashRing, RemovalOnlyRemapsTheRemovedNodesKeys) {
  HashRing ring;
  for (std::uint32_t n = 0; n < 5; ++n) ring.add_node(n);
  std::map<std::uint64_t, std::uint32_t> before;
  for (std::uint64_t k = 0; k < 10'000; ++k) before[k] = ring.node_for(k);
  ring.remove_node(2);
  int moved_wrongly = 0;
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    const std::uint32_t now = ring.node_for(k);
    if (before[k] == 2) {
      EXPECT_NE(now, 2u);
    } else if (now != before[k]) {
      ++moved_wrongly;  // consistent hashing: keys on surviving nodes stay
    }
  }
  EXPECT_EQ(moved_wrongly, 0)
      << "keys not owned by the removed node must not move";
}

TEST(HashRing, AdditionStealsOnlyASlice) {
  HashRing ring;
  for (std::uint32_t n = 0; n < 4; ++n) ring.add_node(n);
  std::map<std::uint64_t, std::uint32_t> before;
  constexpr int kKeys = 10'000;
  for (std::uint64_t k = 0; k < kKeys; ++k) before[k] = ring.node_for(k);
  ring.add_node(99);
  int moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint32_t now = ring.node_for(k);
    if (now != before[k]) {
      EXPECT_EQ(now, 99u) << "a key may only move to the new node";
      ++moved;
    }
  }
  // The new node should take roughly 1/5th of the keyspace.
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(HashRing, NodesForReturnsDistinctNodes) {
  HashRing ring;
  for (std::uint32_t n = 0; n < 4; ++n) ring.add_node(n);
  for (std::uint64_t k = 0; k < 500; ++k) {
    const auto replicas = ring.nodes_for(k, 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_NE(replicas[0], replicas[1]);
    EXPECT_NE(replicas[0], replicas[2]);
    EXPECT_NE(replicas[1], replicas[2]);
    // The primary replica matches node_for.
    EXPECT_EQ(replicas[0], ring.node_for(k));
  }
}

TEST(HashRing, NodesForClampsToRingSize) {
  HashRing ring;
  ring.add_node(0);
  ring.add_node(1);
  const auto replicas = ring.nodes_for(42, 5);
  EXPECT_EQ(replicas.size(), 2u);
}

// Regression for the nodes_for wrap-around path: with 2 nodes at a single
// virtual point each, the ring holds just 2 points, so roughly half of all
// key hashes land PAST the last point — lower_bound returns end() and the
// walk must wrap to begin(). Before the wrap was exercised, a full-coverage
// query (replicas == nodes) could silently come back short.
TEST(HashRing, NodesForWrapsAroundTheRingEnd) {
  HashRing ring(/*virtual_nodes=*/1);
  ring.add_node(10);
  ring.add_node(20);
  int full = 0;
  for (std::uint64_t k = 0; k < 256; ++k) {
    const auto replicas = ring.nodes_for(k, 2);
    ASSERT_EQ(replicas.size(), 2u) << "key " << k << " lost a replica";
    EXPECT_NE(replicas[0], replicas[1]);
    EXPECT_EQ(replicas[0], ring.node_for(k));
    if (replicas[0] != replicas[1]) ++full;
  }
  EXPECT_EQ(full, 256);
}

// Sparse ring (few virtual points), replicas far beyond the node count:
// the walk must terminate after one lap with every node exactly once.
TEST(HashRing, ReplicasBeyondNodeCountOnSparseRing) {
  HashRing ring(/*virtual_nodes=*/1);
  for (const std::uint32_t n : {3u, 900u, 77u}) ring.add_node(n);
  for (std::uint64_t k = 0; k < 64; ++k) {
    const auto replicas = ring.nodes_for(k, 1000);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<std::uint32_t> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

// The seen-set rewrite must preserve the walk's clockwise order: the first
// replica is node_for, and re-running the same query is stable.
TEST(HashRing, NodesForIsDeterministicAndOrdered) {
  HashRing ring(8);
  for (std::uint32_t n = 0; n < 16; ++n) ring.add_node(n);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const auto a = ring.nodes_for(k, 16);
    const auto b = ring.nodes_for(k, 16);
    ASSERT_EQ(a.size(), 16u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.front(), ring.node_for(k));
  }
}

}  // namespace
}  // namespace camp::coop
