#include "kvs/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/camp.h"
#include "policy/lru.h"

namespace camp::kvs {
namespace {

EngineConfig small_engine() {
  EngineConfig c;
  c.slab.memory_limit_bytes = 2u << 20;  // 2 slabs
  c.slab.slab_size_bytes = 1u << 20;
  return c;
}

PolicyFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

PolicyFactory camp_factory(int precision = 5) {
  return [precision](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    return core::make_camp(config);
  };
}

TEST(Engine, SetGetRoundTrip) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  ASSERT_TRUE(engine.set("hello", "world", 7, 10));
  const GetResult r = engine.get("hello");
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, "world");
  EXPECT_EQ(r.flags, 7u);
  EXPECT_EQ(engine.stats().items, 1u);
  EXPECT_EQ(engine.stats().value_bytes, 5u);
}

TEST(Engine, MissReturnsEmpty) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  EXPECT_FALSE(engine.get("absent").hit);
  EXPECT_EQ(engine.stats().gets, 1u);
  EXPECT_EQ(engine.stats().hits, 0u);
}

TEST(Engine, OverwriteReplacesValue) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  ASSERT_TRUE(engine.set("k", "v1", 0, 1));
  ASSERT_TRUE(engine.set("k", "v2-longer", 0, 1));
  EXPECT_EQ(engine.get("k").value, "v2-longer");
  EXPECT_EQ(engine.stats().items, 1u);
  EXPECT_EQ(engine.stats().value_bytes, 9u);
}

TEST(Engine, DeleteRemoves) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  ASSERT_TRUE(engine.set("k", "v", 0, 1));
  EXPECT_TRUE(engine.del("k"));
  EXPECT_FALSE(engine.get("k").hit);
  EXPECT_FALSE(engine.del("k"));
  EXPECT_EQ(engine.stats().items, 0u);
}

TEST(Engine, RejectsBadKeys) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  EXPECT_FALSE(engine.set("", "v", 0, 1));
  EXPECT_FALSE(engine.set(std::string(300, 'k'), "v", 0, 1));
  EXPECT_EQ(engine.stats().rejected_sets, 2u);
}

// write_item's key_len is a uint16_t; the layout guard must refuse any key
// past kMaxKeyLength instead of silently truncating the length field into
// a chunk layout that aliases other bytes. The engine rejects such keys
// before the cast — but the guard has to hold even for a direct caller.
TEST(Engine, WriteItemRefusesOversizedKeys) {
  std::vector<std::byte> chunk(kItemHeaderSize + 2048);
  const std::string max_key(kMaxKeyLength, 'k');
  EXPECT_NO_THROW(write_item(chunk.data(), max_key, "v", 0, 1));
  const ItemHeader header = read_item_header(chunk.data());
  EXPECT_EQ(header.key_len, kMaxKeyLength);
  EXPECT_EQ(item_key(chunk.data(), header), max_key);

  const std::string oversized(kMaxKeyLength + 1, 'k');
  EXPECT_THROW(write_item(chunk.data(), oversized, "v", 0, 1),
               std::length_error);
}

// The boundary key length round-trips through the full engine path.
TEST(Engine, MaxLengthKeyRoundTrips) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  const std::string key(kMaxKeyLength, 'k');
  ASSERT_TRUE(engine.set(key, "payload", 3, 9));
  const GetResult r = engine.get(key);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, "payload");
  EXPECT_FALSE(engine.set(key + "x", "payload", 3, 9));
  EXPECT_EQ(engine.stats().rejected_sets, 1u);
}

TEST(Engine, RejectsValueBiggerThanSlab) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  const std::string huge(2u << 20, 'x');
  EXPECT_FALSE(engine.set("big", huge, 0, 1));
}

TEST(Engine, IqCostCapture) {
  util::ManualClock clock;
  EngineConfig config = small_engine();
  config.cost_time_divisor_ns = 1000;  // microseconds
  KvsEngine engine(config, camp_factory(), clock);
  // iqget miss at t=0; value computed for 5000 ns; iqset at t=5000.
  EXPECT_FALSE(engine.iqget("k").hit);
  clock.advance_ns(5000);
  ASSERT_TRUE(engine.iqset("k", "value", 0));
  // The pair's cost should be 5000/1000 = 5 cost units. We can't read the
  // cost directly, but a subsequent get must hit and the engine must not
  // have clamped oddly (smoke via stats).
  EXPECT_TRUE(engine.get("k").hit);
  // A plain iqset with no recorded miss gets cost 1 and still stores.
  ASSERT_TRUE(engine.iqset("unseen", "v", 0));
  EXPECT_TRUE(engine.get("unseen").hit);
}

TEST(Engine, EvictionUnderPressure) {
  util::ManualClock clock;
  EngineConfig config;
  config.slab.memory_limit_bytes = 1u << 20;  // one slab
  config.slab.slab_size_bytes = 1u << 20;
  KvsEngine engine(config, lru_factory(), clock);
  // Fill with ~1KB values until evictions start.
  const std::string value(1024, 'v');
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine.set("key" + std::to_string(i), value, 0, 1))
        << "set " << i << " must succeed via policy eviction";
  }
  EXPECT_GT(engine.policy_stats().evictions, 0u);
  EXPECT_LT(engine.stats().items, 2000u);
  // Recent keys resident, oldest gone (LRU).
  EXPECT_TRUE(engine.contains("key1999"));
  EXPECT_FALSE(engine.contains("key0"));
}

TEST(Engine, CampPolicyKeepsExpensivePairs) {
  util::ManualClock clock;
  EngineConfig config;
  config.slab.memory_limit_bytes = 1u << 20;
  config.slab.slab_size_bytes = 1u << 20;
  KvsEngine engine(config, camp_factory(), clock);
  const std::string value(1024, 'v');
  ASSERT_TRUE(engine.set("expensive", value, 0, 1'000'000));
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine.set("cheap" + std::to_string(i), value, 0, 1));
  }
  EXPECT_TRUE(engine.contains("expensive"))
      << "CAMP must shield the high-cost pair from cheap churn";
}

TEST(Engine, SlabReassignmentOnClassStarvation) {
  util::ManualClock clock;
  EngineConfig config;
  config.slab.memory_limit_bytes = 1u << 20;  // single slab: guaranteed clash
  config.slab.slab_size_bytes = 1u << 20;
  config.policy_fill_fraction = 1.0;
  KvsEngine engine(config, lru_factory(), clock);
  const std::string small_value(50, 's');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.set("s" + std::to_string(i), small_value, 0, 1));
  }
  // A large value needs a different class; the only slab belongs to the
  // small class -> reassignment must kick in.
  const std::string big_value(64 * 1024, 'b');
  EXPECT_TRUE(engine.set("big", big_value, 0, 1));
  EXPECT_GE(engine.stats().slab_reassignments, 1u);
  EXPECT_TRUE(engine.contains("big"));
}

TEST(Engine, FlushAllEmpties) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.set("k" + std::to_string(i), "v", 0, 1));
  }
  engine.flush_all();
  EXPECT_EQ(engine.stats().items, 0u);
  EXPECT_EQ(engine.stats().value_bytes, 0u);
  EXPECT_FALSE(engine.get("k3").hit);
  // Engine still usable.
  EXPECT_TRUE(engine.set("fresh", "v", 0, 1));
}

TEST(Engine, ExpiryLazyRemoval) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  ASSERT_TRUE(engine.set("ttl", "v", 0, 1, /*exptime_s=*/10));
  clock.advance_ns(9'999'999'999ull);  // 9.999s: still fresh
  EXPECT_TRUE(engine.get("ttl").hit);
  clock.advance_ns(2'000'000'000ull);  // past 10s
  EXPECT_FALSE(engine.get("ttl").hit) << "expired pair reads as a miss";
  EXPECT_EQ(engine.stats().expired, 1u);
  EXPECT_EQ(engine.stats().items, 0u) << "expired pair lazily removed";
  // The chunk was freed: a fresh set of the same shape succeeds.
  EXPECT_TRUE(engine.set("ttl", "v2", 0, 1));
  EXPECT_EQ(engine.get("ttl").value, "v2");
}

TEST(Engine, ZeroExptimeNeverExpires) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  ASSERT_TRUE(engine.set("forever", "v", 0, 1, 0));
  clock.advance_ns(~0ull / 2);
  EXPECT_TRUE(engine.get("forever").hit);
}

TEST(Engine, OverwriteResetsExpiry) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  ASSERT_TRUE(engine.set("k", "v", 0, 1, /*exptime_s=*/1));
  ASSERT_TRUE(engine.set("k", "v", 0, 1, /*exptime_s=*/0));
  clock.advance_ns(5'000'000'000ull);
  EXPECT_TRUE(engine.get("k").hit) << "overwrite replaced the TTL";
}

TEST(Engine, BinaryValueSafety) {
  util::ManualClock clock;
  KvsEngine engine(small_engine(), lru_factory(), clock);
  std::string binary("\x00\x01\xff\r\n\x7f", 6);
  ASSERT_TRUE(engine.set("bin", binary, 0, 1));
  EXPECT_EQ(engine.get("bin").value, binary);
}

}  // namespace
}  // namespace camp::kvs
