#include "policy/lru.h"

#include <gtest/gtest.h>

namespace camp::policy {
namespace {

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.put(1, 100, 0);
  cache.put(2, 100, 0);
  cache.put(3, 100, 0);
  EXPECT_EQ(cache.peek_victim(), std::optional<Key>(1));
  ASSERT_TRUE(cache.get(1));  // 1 -> MRU
  cache.put(4, 100, 0);       // evicts 2
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Lru, IgnoresCost) {
  LruCache cache(200);
  cache.put(1, 100, 1'000'000);  // hugely expensive
  cache.put(2, 100, 1);
  cache.put(3, 100, 1);  // evicts 1 regardless of its cost
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lru, VariableSizesEvictUntilFit) {
  LruCache cache(1000);
  cache.put(1, 400, 0);
  cache.put(2, 400, 0);
  cache.put(3, 900, 0);  // must evict both 1 and 2
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.used_bytes(), 900u);
}

TEST(Lru, OverwriteUpdatesBytes) {
  LruCache cache(1000);
  cache.put(1, 100, 0);
  cache.put(1, 600, 0);
  EXPECT_EQ(cache.used_bytes(), 600u);
  EXPECT_EQ(cache.item_count(), 1u);
}

TEST(Lru, RejectsTooBig) {
  LruCache cache(100);
  EXPECT_FALSE(cache.put(1, 101, 0));
  EXPECT_FALSE(cache.put(1, 0, 0));
  EXPECT_EQ(cache.stats().rejected_puts, 2u);
}

TEST(Lru, GetMissCounts) {
  LruCache cache(100);
  EXPECT_FALSE(cache.get(9));
  EXPECT_EQ(cache.stats().gets, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hit_rate(), 0.0);
}

TEST(Lru, EraseRemovesWithoutEviction) {
  LruCache cache(100);
  cache.put(1, 50, 0);
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.erase(1);  // idempotent
}

TEST(Lru, ListenerReceivesVictims) {
  LruCache cache(100);
  std::vector<Key> victims;
  cache.set_eviction_listener(
      [&](Key k, std::uint64_t) { victims.push_back(k); });
  cache.put(1, 60, 0);
  cache.put(2, 60, 0);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 1u);
}

}  // namespace
}  // namespace camp::policy
