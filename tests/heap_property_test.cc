// Randomized differential tests: DaryHeap (several arities) and PairingHeap
// against a reference multiset-based priority queue, exercising push / pop /
// update / erase interleavings.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "heap/dary_heap.h"
#include "heap/pairing_heap.h"
#include "util/rng.h"

namespace camp::heap {
namespace {

// Reference model: id -> value plus ordered (value, id) set.
class ReferencePq {
 public:
  void push(int id, std::uint64_t value) {
    values_[id] = value;
    ordered_.insert({value, id});
  }
  void update(int id, std::uint64_t value) {
    ordered_.erase({values_.at(id), id});
    values_[id] = value;
    ordered_.insert({value, id});
  }
  void erase(int id) {
    ordered_.erase({values_.at(id), id});
    values_.erase(id);
  }
  [[nodiscard]] std::uint64_t min_value() const {
    return ordered_.begin()->first;
  }
  [[nodiscard]] bool empty() const { return ordered_.empty(); }
  [[nodiscard]] std::size_t size() const { return ordered_.size(); }

 private:
  std::map<int, std::uint64_t> values_;
  std::set<std::pair<std::uint64_t, int>> ordered_;
};

template <class Heap>
void run_differential(std::uint64_t seed, int operations) {
  Heap heap;
  ReferencePq ref;
  util::Xoshiro256 rng(seed);
  std::map<int, typename Heap::Handle> handles;
  int next_id = 0;

  for (int op = 0; op < operations; ++op) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 40 || handles.empty()) {
      const std::uint64_t v = rng.below(1000);
      const int id = next_id++;
      handles[id] = heap.push(v);
      ref.push(id, v);
    } else if (dice < 60) {
      // update a random live element
      auto it = handles.begin();
      std::advance(it, static_cast<long>(rng.below(handles.size())));
      const std::uint64_t v = rng.below(1000);
      heap.update(it->second, v);
      ref.update(it->first, v);
    } else if (dice < 80) {
      auto it = handles.begin();
      std::advance(it, static_cast<long>(rng.below(handles.size())));
      heap.erase(it->second);
      ref.erase(it->first);
      handles.erase(it);
    } else {
      // pop-min: values must agree (ids may differ on ties)
      ASSERT_FALSE(heap.empty());
      ASSERT_EQ(heap.top(), ref.min_value());
      // find which id the heap evicts is unspecified on ties; remove the
      // matching (value) element from the reference by scanning handles.
      const std::uint64_t v = heap.top();
      heap.pop();
      // remove one ref element with value v
      for (auto it = handles.begin(); it != handles.end(); ++it) {
        bool heap_still_has = heap.is_valid_handle(it->second);
        if (!heap_still_has) {
          ASSERT_EQ(v, v);
          ref.erase(it->first);
          handles.erase(it);
          break;
        }
      }
    }
    ASSERT_EQ(heap.size(), ref.size());
    if (!heap.empty()) {
      ASSERT_EQ(heap.top(), ref.min_value()) << "op " << op;
    }
  }
}

// Adapters: give both heaps a uniform face for the test driver.
template <int Arity>
class DaryAdapter {
 public:
  using Handle = typename DaryHeap<std::uint64_t, std::less<>, Arity>::Handle;
  Handle push(std::uint64_t v) { return heap_.push(v); }
  void update(Handle h, std::uint64_t v) { heap_.update(h, v); }
  void erase(Handle h) { heap_.erase(h); }
  void pop() { heap_.pop(); }
  [[nodiscard]] std::uint64_t top() const { return heap_.top(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool is_valid_handle(Handle h) const {
    return heap_.is_valid(h);
  }
  [[nodiscard]] bool check() { return heap_.check_invariants(); }

 private:
  DaryHeap<std::uint64_t, std::less<>, Arity> heap_;
};

class PairingAdapter {
 public:
  using Handle = PairingHeap<std::uint64_t>::Handle;
  Handle push(std::uint64_t v) {
    auto h = heap_.push(v);
    live_.insert(h);
    return h;
  }
  void update(Handle h, std::uint64_t v) { heap_.update(h, v); }
  void erase(Handle h) {
    live_.erase(h);
    heap_.erase(h);
  }
  void pop() {
    live_.erase(heap_.top_handle());
    heap_.pop();
  }
  [[nodiscard]] std::uint64_t top() const { return heap_.top(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool is_valid_handle(Handle h) const {
    return live_.contains(h);
  }

 private:
  PairingHeap<std::uint64_t> heap_;
  std::set<Handle> live_;
};

class HeapDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapDifferential, Dary2) {
  run_differential<DaryAdapter<2>>(GetParam(), 3000);
}
TEST_P(HeapDifferential, Dary4) {
  run_differential<DaryAdapter<4>>(GetParam(), 3000);
}
TEST_P(HeapDifferential, Dary8) {
  run_differential<DaryAdapter<8>>(GetParam(), 3000);
}
TEST_P(HeapDifferential, Dary16) {
  run_differential<DaryAdapter<16>>(GetParam(), 3000);
}
TEST_P(HeapDifferential, Pairing) {
  run_differential<PairingAdapter>(GetParam(), 3000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(DaryHeapInvariants, HoldUnderRandomOps) {
  DaryAdapter<8> h;
  util::Xoshiro256 rng(99);
  std::vector<DaryAdapter<8>::Handle> handles;
  for (int i = 0; i < 2000; ++i) {
    const auto dice = rng.below(10);
    if (dice < 5 || handles.empty()) {
      handles.push_back(h.push(rng.below(500)));
    } else if (dice < 8) {
      const auto idx = static_cast<std::size_t>(rng.below(handles.size()));
      if (h.is_valid_handle(handles[idx])) {
        h.update(handles[idx], rng.below(500));
      }
    } else if (!h.empty()) {
      h.pop();
    }
    ASSERT_TRUE(h.check()) << "after op " << i;
  }
}

}  // namespace
}  // namespace camp::heap
