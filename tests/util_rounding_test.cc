// Unit + property tests for the MSY rounding scheme and the adaptive scaler.
#include "util/rounding.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "util/bitops.h"
#include "util/rng.h"

namespace camp::util {
namespace {

// ---- Table 1 of the paper: rounding with (binary) precision 4 ---------------

TEST(MsyRound, PaperTable1Examples) {
  // 101101011 -> 101100000
  EXPECT_EQ(msy_round(0b101101011, 4), 0b101100000u);
  // 001010011 -> 001010000
  EXPECT_EQ(msy_round(0b001010011, 4), 0b001010000u);
  // 000001010 -> 000001010 (bit width <= precision: unchanged)
  EXPECT_EQ(msy_round(0b000001010, 4), 0b000001010u);
  // 000000111 -> 000000111
  EXPECT_EQ(msy_round(0b000000111, 4), 0b000000111u);
}

TEST(MsyRound, RegularRoundingTable1Comparison) {
  // "Regular rounding" zeroes a fixed number of low bits: it loses the small
  // values entirely (too little information for small values).
  EXPECT_EQ(truncate_low_bits(0b101101011, 5), 0b101100000u);
  EXPECT_EQ(truncate_low_bits(0b001010011, 4), 0b001010000u);
  EXPECT_EQ(truncate_low_bits(0b000001010, 4), 0u);
  EXPECT_EQ(truncate_low_bits(0b000000111, 4), 0u);
}

TEST(MsyRound, ZeroAndSmallValues) {
  EXPECT_EQ(msy_round(0, 4), 0u);
  for (std::uint64_t x = 1; x <= 16; ++x) {
    EXPECT_EQ(msy_round(x, 5), x) << "values under 2^p are exact";
  }
}

TEST(MsyRound, PrecisionOneKeepsOnlyTopBit) {
  EXPECT_EQ(msy_round(0b1111, 1), 0b1000u);
  EXPECT_EQ(msy_round(1, 1), 1u);
  EXPECT_EQ(msy_round((1ull << 63) | 12345, 1), 1ull << 63);
}

TEST(MsyRound, InfinityPrecisionIsIdentity) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng.next();
    EXPECT_EQ(msy_round(x, kPrecisionInfinity), x);
  }
}

TEST(MsyRound, Idempotent) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng.next() >> (i % 40);
    for (int p = 1; p <= 12; ++p) {
      const std::uint64_t once = msy_round(x, p);
      EXPECT_EQ(msy_round(once, p), once);
    }
  }
}

TEST(MsyRound, Monotone) {
  // x <= y implies round(x) <= round(y).
  SplitMix64 rng(13);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t x = rng.next() >> 20;
    std::uint64_t y = rng.next() >> 20;
    if (x > y) std::swap(x, y);
    for (int p : {1, 3, 5, 8}) {
      EXPECT_LE(msy_round(x, p), msy_round(y, p))
          << "x=" << x << " y=" << y << " p=" << p;
    }
  }
}

// ---- precision-boundary properties (retune's candidate extremes) ------------

TEST(MsyRound, PrecisionOneYieldsPowersOfTwo) {
  // p=1 keeps only the top set bit, so every rounded value is a power of
  // two — the coarsest candidate the auto-tuner duels with.
  SplitMix64 rng(19);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = (rng.next() >> (i % 48)) | 1;
    const std::uint64_t r = msy_round(x, 1);
    EXPECT_EQ(r & (r - 1), 0u) << "x=" << x << " r=" << r;
    EXPECT_NE(r, 0u);
  }
}

TEST(MsyRound, KeepsExactlyTopPrecisionBits) {
  // For values wider than p bits, rounding zeroes everything below the top
  // p bits and changes nothing else (p=2 spelled out, then swept).
  EXPECT_EQ(msy_round(0b111, 2), 0b110u);
  EXPECT_EQ(msy_round(0b1011, 2), 0b1000u);
  EXPECT_EQ(msy_round(0b110101, 2), 0b110000u);
  SplitMix64 rng(23);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.next() | (1ull << 63);  // full width
    for (int p : {1, 2, 5, 13}) {
      const std::uint64_t keep_mask = ~((1ull << (64 - p)) - 1);
      EXPECT_EQ(msy_round(x, p), x & keep_mask) << "x=" << x << " p=" << p;
    }
  }
}

TEST(MsyRound, AnyPrecisionAtOrAboveInfinityIsIdentity) {
  SplitMix64 rng(29);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng.next();
    for (int p : {kPrecisionInfinity, kPrecisionInfinity + 1, 1000}) {
      EXPECT_EQ(msy_round(x, p), x);
    }
  }
}

TEST(MsyRound, MonotoneInPrecision) {
  // For a fixed value, raising p only refines the result upward toward x:
  // round(x, p) <= round(x, p+1) <= x. This is what makes a retune across
  // the candidate set a pure coarsening/refinement of the queue topology.
  SplitMix64 rng(31);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.next() >> (i % 40);
    std::uint64_t prev = msy_round(x, 1);
    for (int p = 2; p <= kPrecisionInfinity; ++p) {
      const std::uint64_t cur = msy_round(x, p);
      EXPECT_LE(prev, cur) << "x=" << x << " p=" << p;
      EXPECT_LE(cur, x);
      prev = cur;
    }
    EXPECT_EQ(prev, x) << "p=64 must recover the exact value";
  }
}

// ---- Proposition 3: relative error bound eps = 2^(1-p) ----------------------

class MsyErrorBound : public ::testing::TestWithParam<int> {};

TEST_P(MsyErrorBound, RelativeErrorWithinEpsilon) {
  const int p = GetParam();
  const double eps = msy_relative_error_bound(p);
  SplitMix64 rng(17 + static_cast<std::uint64_t>(p));
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = (rng.next() >> (i % 32)) | 1;  // x >= 1
    const std::uint64_t rounded = msy_round(x, p);
    ASSERT_GT(rounded, 0u);
    ASSERT_LE(rounded, x) << "rounding only clears bits";
    // x <= (1 + eps) * rounded
    EXPECT_LE(static_cast<double>(x),
              (1.0 + eps) * static_cast<double>(rounded) * (1 + 1e-15))
        << "x=" << x << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, MsyErrorBound,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 16));

// ---- Proposition 2: number of distinct rounded values -----------------------

class MsyDistinctValues
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MsyDistinctValues, BoundHolds) {
  const auto [p, max_value] = GetParam();
  std::set<std::uint64_t> distinct;
  for (std::uint64_t x = 1; x <= max_value; ++x) {
    distinct.insert(msy_round(x, p));
  }
  EXPECT_LE(distinct.size(), distinct_rounded_values_bound(max_value, p))
      << "p=" << p << " U=" << max_value;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MsyDistinctValues,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values<std::uint64_t>(7, 64, 1000, 4096,
                                                        65535)));

TEST(DistinctBound, CollapsesToIdentityForHighPrecision) {
  EXPECT_EQ(distinct_rounded_values_bound(100, 7), 100u);
  EXPECT_EQ(distinct_rounded_values_bound(127, 7), 127u);
}

// ---- AdaptiveRatioScaler -----------------------------------------------------

TEST(AdaptiveRatioScaler, ScalesByMaxSize) {
  AdaptiveRatioScaler scaler;
  EXPECT_TRUE(scaler.observe_size(1000));
  // ratio = cost * max_size / size
  EXPECT_EQ(scaler.scale(10, 1000), 10u);   // 10 * 1000 / 1000
  EXPECT_EQ(scaler.scale(10, 100), 100u);   // 10 * 1000 / 100
  EXPECT_EQ(scaler.scale(1, 1000), 1u);     // smallest possible ratio -> 1
}

TEST(AdaptiveRatioScaler, RoundsToNearest) {
  AdaptiveRatioScaler scaler;
  scaler.observe_size(10);
  EXPECT_EQ(scaler.scale(1, 3), 3u);  // 10/3 = 3.33 -> 3
  EXPECT_EQ(scaler.scale(1, 4), 3u);  // 10/4 = 2.5  -> 3 (round half up)
  EXPECT_EQ(scaler.scale(1, 7), 1u);  // 10/7 = 1.43 -> 1
}

TEST(AdaptiveRatioScaler, ClampsToOne) {
  AdaptiveRatioScaler scaler;
  scaler.observe_size(4);
  EXPECT_EQ(scaler.scale(0, 4), 1u) << "zero cost still gets a queue";
  EXPECT_EQ(scaler.scale(1, 400), 1u) << "sub-1 ratios clamp to 1";
}

TEST(AdaptiveRatioScaler, MultiplierOnlyGrows) {
  AdaptiveRatioScaler scaler;
  EXPECT_TRUE(scaler.observe_size(100));
  EXPECT_FALSE(scaler.observe_size(50));
  EXPECT_EQ(scaler.max_size(), 100u);
  EXPECT_TRUE(scaler.observe_size(200));
  EXPECT_EQ(scaler.max_size(), 200u);
}

TEST(AdaptiveRatioScaler, OrderPreservedAcrossScaling) {
  // If ratio(a) < ratio(b) exactly, scaled values must not invert (they may
  // tie due to rounding).
  AdaptiveRatioScaler scaler;
  scaler.observe_size(1 << 20);
  const std::uint64_t a = scaler.scale(100, 2048);  // ratio 0.049
  const std::uint64_t b = scaler.scale(100, 1024);  // ratio 0.098
  const std::uint64_t c = scaler.scale(10'000, 1024);
  EXPECT_LE(a, b);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace camp::util
