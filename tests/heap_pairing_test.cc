#include "heap/pairing_heap.h"

#include <gtest/gtest.h>

#include <vector>

namespace camp::heap {
namespace {

using IntHeap = PairingHeap<int>;

TEST(PairingHeap, PushPopSorted) {
  IntHeap h;
  for (int v : {5, 3, 8, 1, 9, 2, 7}) h.push(v);
  std::vector<int> popped;
  while (!h.empty()) {
    popped.push_back(h.top());
    h.pop();
  }
  EXPECT_EQ(popped, (std::vector<int>{1, 2, 3, 5, 7, 8, 9}));
}

TEST(PairingHeap, DecreaseKey) {
  IntHeap h;
  h.push(10);
  auto* mid = h.push(20);
  h.push(30);
  h.update(mid, 5);
  EXPECT_EQ(h.top(), 5);
  EXPECT_EQ(h.top_handle(), mid);
}

TEST(PairingHeap, IncreaseKey) {
  IntHeap h;
  auto* lo = h.push(1);
  h.push(10);
  h.push(20);
  h.update(lo, 100);
  EXPECT_EQ(h.top(), 10);
  EXPECT_EQ(h.value(lo), 100);
  // lo must still be reachable and pop last.
  std::vector<int> popped;
  while (!h.empty()) {
    popped.push_back(h.top());
    h.pop();
  }
  EXPECT_EQ(popped, (std::vector<int>{10, 20, 100}));
}

TEST(PairingHeap, EraseRoot) {
  IntHeap h;
  auto* a = h.push(1);
  h.push(5);
  h.push(3);
  h.erase(a);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.top(), 3);
}

TEST(PairingHeap, EraseInner) {
  IntHeap h;
  h.push(1);
  auto* b = h.push(5);
  h.push(3);
  h.push(7);
  h.erase(b);
  std::vector<int> popped;
  while (!h.empty()) {
    popped.push_back(h.top());
    h.pop();
  }
  EXPECT_EQ(popped, (std::vector<int>{1, 3, 7}));
}

TEST(PairingHeap, UpdateRootIncrease) {
  IntHeap h;
  auto* a = h.push(1);
  h.push(2);
  h.push(3);
  h.update(a, 10);
  EXPECT_EQ(h.top(), 2);
}

TEST(PairingHeap, SingleElementUpdate) {
  IntHeap h;
  auto* a = h.push(5);
  h.update(a, 3);
  EXPECT_EQ(h.top(), 3);
  h.update(a, 9);
  EXPECT_EQ(h.top(), 9);
  h.pop();
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeap, ManyAscendingThenDescending) {
  IntHeap h;
  for (int i = 0; i < 1000; ++i) h.push(i);
  for (int i = 2000; i > 1000; --i) h.push(i);
  int prev = -1;
  while (!h.empty()) {
    EXPECT_GE(h.top(), prev);
    prev = h.top();
    h.pop();
  }
}

TEST(PairingHeap, StatsCount) {
  IntHeap h;
  h.push(3);
  h.push(1);
  h.pop();
  EXPECT_EQ(h.stats().pushes, 2u);
  EXPECT_EQ(h.stats().pops, 1u);
  EXPECT_GT(h.stats().nodes_visited, 0u);
}

}  // namespace
}  // namespace camp::heap
