// Self-tuning CAMP (core/auto_tuner.h): config validation, the sampled
// shadow duel's exact decision rules (winner/tie/psel/migration), the
// replayable trace ledger, thread-safe sharing across shards, and the
// store-level plumbing. The determinism tests pin the property the design
// leans on: the psel trace is a pure function of the observed
// (key, size, cost) stream — identical across runs AND shard counts.
#include "core/auto_tuner.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/camp.h"
#include "kvs/sharded_cache.h"
#include "kvs/store.h"
#include "policy/policy_factory.h"
#include "trace/workloads.h"
#include "util/clock.h"
#include "util/rounding.h"

namespace camp::core {
namespace {

// A tiny duel config where every key is sampled and windows close fast, so
// unit tests can script exact window/psel/migration sequences.
AutoTunerConfig scripted(std::vector<int> candidates, int initial,
                         std::uint32_t window, std::int32_t threshold) {
  AutoTunerConfig c;
  c.candidates = std::move(candidates);
  c.initial_precision = initial;
  c.sample_shift = 0;  // sample everything
  c.window_samples = window;
  c.psel_threshold = threshold;
  return c;
}

TEST(AutoTunerConfig, ValidateRejectsNonsense) {
  EXPECT_NO_THROW(AutoTunerConfig{}.validate());

  AutoTunerConfig c;
  c.candidates.clear();
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = AutoTunerConfig{};
  c.candidates = {1, 0};
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = AutoTunerConfig{};
  c.candidates = {2, 5, 2};
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = AutoTunerConfig{};
  c.initial_precision = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = AutoTunerConfig{};
  c.sample_shift = 33;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = AutoTunerConfig{};
  c.window_samples = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = AutoTunerConfig{};
  c.psel_threshold = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(AutoTuner, SamplingIsAPureFunctionOfKeyAndSalt) {
  AutoTunerConfig config;
  config.sample_shift = 3;  // expect ~1/8 of keys
  const AutoTuner a(config, 1 << 20);
  const AutoTuner b(config, 1 << 10);  // capacity must not matter

  int sampled = 0;
  for (policy::Key k = 0; k < 8192; ++k) {
    EXPECT_EQ(a.is_sampled(k), b.is_sampled(k));
    sampled += a.is_sampled(k) ? 1 : 0;
  }
  // Loose bounds around 8192/8 = 1024: mix64 is a good scrambler.
  EXPECT_GT(sampled, 700);
  EXPECT_LT(sampled, 1400);

  config.salt ^= 0x1234567;
  const AutoTuner salted(config, 1 << 20);
  bool any_difference = false;
  for (policy::Key k = 0; k < 8192 && !any_difference; ++k) {
    any_difference = a.is_sampled(k) != salted.is_sampled(k);
  }
  EXPECT_TRUE(any_difference);
}

TEST(AutoTuner, CountsOpsAndSampledSeparately) {
  AutoTunerConfig config;
  config.sample_shift = 2;
  AutoTuner tuner(config, 1 << 20);
  std::uint64_t expect_sampled = 0;
  for (policy::Key k = 0; k < 1000; ++k) {
    if (tuner.is_sampled(k)) ++expect_sampled;
    tuner.observe(k, 64, 1);
  }
  EXPECT_EQ(tuner.counters().ops, 1000u);
  EXPECT_EQ(tuner.counters().sampled, expect_sampled);
  EXPECT_GT(expect_sampled, 0u);
  EXPECT_LT(expect_sampled, 1000u);
}

TEST(AutoTuner, WindowTiePrefersTheIncumbent) {
  // Identical shadow streams give every candidate the same missed cost:
  // the tie must go to the incumbent (index 1 here), never migrate, and
  // decay everyone else's psel.
  AutoTuner tuner(scripted({1, 5, 64}, /*initial=*/5, /*window=*/4,
                           /*threshold=*/2),
                  1 << 20);
  for (policy::Key k = 1; k <= 4; ++k) {
    EXPECT_EQ(tuner.observe(k, 64, 10), std::nullopt);
  }
  const AutoTunerCounters& c = tuner.counters();
  EXPECT_EQ(c.windows, 1u);
  EXPECT_EQ(c.retunes, 0u);
  EXPECT_EQ(c.window_wins, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(c.psel, (std::vector<std::int64_t>{0, 1, 0}));
  EXPECT_EQ(tuner.trace(), "w1:p5;");
  EXPECT_EQ(tuner.current_precision(), 5);
}

TEST(AutoTuner, MigratesAtThresholdAndResetsPsel) {
  // One challenger, an initial setting outside the candidate set: the
  // challenger wins every window and must migrate exactly when its psel
  // reaches the threshold — on the access that closes window 3.
  AutoTuner tuner(scripted({2}, /*initial=*/5, /*window=*/2, /*threshold=*/3),
                  1 << 20);
  for (policy::Key k = 1; k <= 5; ++k) {
    EXPECT_EQ(tuner.observe(k, 64, 10), std::nullopt);
  }
  EXPECT_EQ(tuner.observe(6, 64, 10), std::optional<int>(2));

  EXPECT_EQ(tuner.current_precision(), 2);
  const AutoTunerCounters& c = tuner.counters();
  EXPECT_EQ(c.windows, 3u);
  EXPECT_EQ(c.retunes, 1u);
  EXPECT_EQ(c.psel, (std::vector<std::int64_t>{0}));  // reset on migration
  ASSERT_EQ(tuner.decisions().size(), 1u);
  EXPECT_EQ(tuner.decisions()[0].sampled_ops, 6u);
  EXPECT_EQ(tuner.decisions()[0].from, 5);
  EXPECT_EQ(tuner.decisions()[0].to, 2);
  EXPECT_EQ(tuner.trace(), "w1:p2;w2:p2;w3:p2;w3>p2;");

  // Once migrated, the winner IS the incumbent: windows keep closing but
  // no further migration fires.
  EXPECT_EQ(tuner.observe(7, 64, 10), std::nullopt);
  EXPECT_EQ(tuner.observe(8, 64, 10), std::nullopt);
  EXPECT_EQ(tuner.counters().windows, 4u);
  EXPECT_EQ(tuner.counters().retunes, 1u);
  EXPECT_EQ(tuner.trace(), "w1:p2;w2:p2;w3:p2;w3>p2;w4:p2;");
}

TEST(AutoTuner, ZeroSizedPairsAreChargedButNotAdmitted) {
  // size == 0 means "metadata unavailable": the window is still charged
  // (the access missed) but the shadow cannot admit the pair, so the same
  // key misses again.
  AutoTuner tuner(scripted({5}, 5, /*window=*/8, /*threshold=*/2), 1 << 20);
  tuner.observe(42, 0, 7);
  tuner.observe(42, 0, 7);
  EXPECT_EQ(tuner.counters().shadow_misses[0], 2u);
  EXPECT_EQ(tuner.counters().shadow_hits[0], 0u);

  // A real pair is admitted and hits on re-reference.
  tuner.observe(43, 64, 7);
  tuner.observe(43, 64, 7);
  EXPECT_EQ(tuner.counters().shadow_hits[0], 1u);
}

TEST(AutoTuner, ShadowsPreferKeepingExpensiveKeys) {
  // The shadows are real CAMP caches: with equal sizes, a precision-64
  // shadow keeps the high-cost key under pressure. This pins that the duel
  // is fed by genuine cost-aware decisions, not hit counting.
  AutoTunerConfig config = scripted({util::kPrecisionInfinity}, 5,
                                    /*window=*/1024, /*threshold=*/4);
  config.shadow_capacity_bytes = 2 * 64;  // room for two pairs
  AutoTuner tuner(config, 1 << 20);
  tuner.observe(1, 64, 10'000);  // expensive resident
  for (policy::Key k = 100; k < 120; ++k) {
    tuner.observe(k, 64, 1);  // cheap churn evicts other cheap keys
  }
  tuner.observe(1, 64, 10'000);
  EXPECT_GE(tuner.counters().shadow_hits[0], 1u);
}

TEST(SharedAutoTuner, RegisterAfterTrafficThrows) {
  SharedAutoTuner shared(scripted({2}, 5, 4, 1));
  shared.register_capacity(1 << 20);
  shared.register_capacity(1 << 20);  // pre-traffic: fine
  shared.observe(1, 64, 1);
  EXPECT_THROW(shared.register_capacity(1 << 20), std::logic_error);
}

TEST(SharedAutoTuner, EpochBumpsOncePerMigration) {
  // threshold=1, window=1, single challenger: the very first sampled
  // access migrates 5 -> 2 and bumps the epoch exactly once.
  SharedAutoTuner shared(scripted({2}, 5, /*window=*/1, /*threshold=*/1));
  shared.register_capacity(1 << 20);
  EXPECT_EQ(shared.epoch(), 0u);
  shared.observe(1, 64, 1);
  EXPECT_EQ(shared.epoch(), 1u);
  EXPECT_EQ(shared.current_precision(), 2);
  shared.observe(2, 64, 1);  // winner == incumbent now: no bump
  EXPECT_EQ(shared.epoch(), 1u);
  EXPECT_EQ(shared.counters().retunes, 1u);
}

TEST(SelfTuningCampCache, AppliesMigrationLazilyAndRenames) {
  CampConfig config;
  config.capacity_bytes = 1 << 20;
  auto cache = make_self_tuning_camp(
      config, scripted({2}, /*initial=*/5, /*window=*/4, /*threshold=*/1));
  auto* self = dynamic_cast<SelfTuningCampCache*>(cache.get());
  ASSERT_NE(self, nullptr);
  EXPECT_EQ(cache->name(), "camp-auto(p=5)");
  EXPECT_EQ(self->precision(), 5);

  // Four puts close window 1 and migrate the tuner; the LIVE cache only
  // catches up on the next operation (observe and mutate phases are
  // strictly ordered).
  for (policy::Key k = 1; k <= 4; ++k) {
    cache->put(k, 64, 1);
  }
  EXPECT_EQ(self->tuner().counters().retunes, 1u);
  EXPECT_EQ(self->precision(), 5);  // not applied yet
  EXPECT_TRUE(cache->get(1));       // applies the pending retune
  EXPECT_EQ(self->precision(), 2);
  EXPECT_EQ(cache->name(), "camp-auto(p=2)");
  EXPECT_GE(self->retune_count(), 1u);
  // The resident set survived the in-place rebuild.
  for (policy::Key k = 1; k <= 4; ++k) {
    EXPECT_TRUE(cache->contains(k));
  }
}

// ---------------------------------------------------------------------------
// Determinism: the psel trace is a pure function of the observed stream.
// ---------------------------------------------------------------------------

struct DuelLedger {
  std::string trace;
  std::uint64_t sampled = 0;
  std::uint64_t windows = 0;
  std::uint64_t retunes = 0;
  std::vector<std::int64_t> psel;
  int precision = 0;
};

// Drives `records` through a ShardedCache built from the "camp:p=auto"
// shared-tuner factory with `shards` policy shards, using the simulator
// protocol (get; on miss, put), and returns the duel's ledger.
DuelLedger run_sharded_duel(const std::vector<trace::TraceRecord>& records,
                            std::size_t shards) {
  const auto factory = policy::make_policy_factory("camp:p=auto");
  kvs::ShardedCache cache(8u << 20, shards, factory);
  // A 1-byte probe shard gives the test a handle on the shared tuner; it
  // must be built before traffic starts (register_capacity would throw
  // later), and its byte vanishes in the >> sample_shift shadow scaling.
  const auto probe = factory(1);
  const auto* self = dynamic_cast<const SelfTuningCampCache*>(probe.get());
  EXPECT_NE(self, nullptr);

  for (const trace::TraceRecord& r : records) {
    if (!cache.get(r.key)) {
      cache.put(r.key, r.size, r.cost);
    }
  }
  const SharedAutoTuner& tuner = self->tuner();
  DuelLedger ledger;
  ledger.trace = tuner.trace();
  const AutoTunerCounters counters = tuner.counters();
  ledger.sampled = counters.sampled;
  ledger.windows = counters.windows;
  ledger.retunes = counters.retunes;
  ledger.psel = counters.psel;
  ledger.precision = tuner.current_precision();
  return ledger;
}

TEST(AutoTunerDeterminism, TraceIsIdenticalAcrossRunsAndShardCounts) {
  trace::WorkloadConfig workload = trace::bg_default(2'000, 30'000, 7);
  const std::vector<trace::TraceRecord> records =
      trace::TraceGenerator(workload).generate();

  const DuelLedger one = run_sharded_duel(records, 1);
  const DuelLedger one_again = run_sharded_duel(records, 1);
  const DuelLedger four = run_sharded_duel(records, 4);

  // The duel actually ran (windows closed on sampled traffic).
  EXPECT_GT(one.sampled, 0u);
  EXPECT_GT(one.windows, 0u);

  // Run-to-run: byte-identical ledger.
  EXPECT_EQ(one.trace, one_again.trace);
  EXPECT_EQ(one.psel, one_again.psel);
  EXPECT_EQ(one.sampled, one_again.sampled);

  // Shard-count invariance: hits and misses land on different shards, but
  // the observed (key, size, cost) stream — and so the whole duel — is
  // identical.
  EXPECT_EQ(one.trace, four.trace);
  EXPECT_EQ(one.psel, four.psel);
  EXPECT_EQ(one.sampled, four.sampled);
  EXPECT_EQ(one.windows, four.windows);
  EXPECT_EQ(one.retunes, four.retunes);
  EXPECT_EQ(one.precision, four.precision);
}

// ---------------------------------------------------------------------------
// Adaptation quality: auto tracks the best static setting per phase.
// ---------------------------------------------------------------------------

struct PhaseCosts {
  std::vector<double> cost_miss_ratio;  // one per phase
};

// Simulator protocol with per-phase non-cold cost accounting (cold misses
// are compulsory for every policy, so they are excluded — same rule as
// sim/simulator.cc).
PhaseCosts drive_phases(policy::ICache& cache,
                        const std::vector<std::vector<trace::TraceRecord>>&
                            phases) {
  PhaseCosts out;
  std::unordered_set<policy::Key> seen;
  for (const auto& records : phases) {
    double total = 0;
    double missed = 0;
    for (const trace::TraceRecord& r : records) {
      const bool cold = seen.insert(r.key).second;
      if (!cold) total += r.cost;
      if (!cache.get(r.key)) {
        if (!cold) missed += r.cost;
        cache.put(r.key, r.size, r.cost);
      }
    }
    out.cost_miss_ratio.push_back(total > 0 ? missed / total : 0.0);
  }
  return out;
}

TEST(AutoTunerAdaptation, MatchesBestStaticPerPhase) {
  // Three phases over disjoint key spaces, differing only in cost model —
  // the same shape as the fig_autotune figure, scaled down for CI. The
  // best static precision shifts between phases; camp-auto must be within
  // tolerance of the per-phase winner in at least 2 of 3 phases.
  constexpr std::uint64_t kKeys = 2'000;
  constexpr std::uint64_t kRequests = 25'000;
  const std::vector<trace::CostModel> cost_models = {
      trace::CostModel::choice({1, 100, 10'000}),
      trace::CostModel::fixed(1),
      trace::CostModel::log_normal(4.6, 2.0, 1, 100'000),
  };
  std::vector<std::vector<trace::TraceRecord>> phases;
  std::uint64_t unique_bytes = 0;
  for (std::size_t phase = 0; phase < cost_models.size(); ++phase) {
    trace::WorkloadConfig w = trace::bg_default(kKeys, kRequests, 2014);
    w.cost_model = cost_models[phase];
    w.seed += phase * 1'000'003;
    w.trace_id = static_cast<std::uint32_t>(phase);
    w.key_namespace = phase * (kKeys + 1);
    trace::TraceGenerator gen(w);
    if (phase == 0) unique_bytes = gen.unique_bytes();
    phases.push_back(gen.generate());
  }
  const auto capacity =
      static_cast<std::uint64_t>(0.2 * static_cast<double>(unique_bytes));

  const std::vector<int> statics = {1, 2, 5, util::kPrecisionInfinity};
  std::vector<PhaseCosts> static_costs;
  for (const int p : statics) {
    CampConfig config;
    config.capacity_bytes = capacity;
    config.precision = p;
    CampCache cache(config);
    static_costs.push_back(drive_phases(cache, phases));
  }

  CampConfig config;
  config.capacity_bytes = capacity;
  AutoTunerConfig tuner_config;  // default candidates {1, 2, 5, inf}
  tuner_config.sample_shift = 4;    // denser sampling at this small scale
  tuner_config.window_samples = 128;
  auto auto_cache = make_self_tuning_camp(config, tuner_config);
  const PhaseCosts auto_costs = drive_phases(*auto_cache, phases);

  const auto* self =
      dynamic_cast<const SelfTuningCampCache*>(auto_cache.get());
  ASSERT_NE(self, nullptr);
  EXPECT_GT(self->tuner().counters().windows, 0u);

  int phases_matched = 0;
  for (std::size_t phase = 0; phase < phases.size(); ++phase) {
    double best = static_costs[0].cost_miss_ratio[phase];
    for (const PhaseCosts& s : static_costs) {
      best = std::min(best, s.cost_miss_ratio[phase]);
    }
    const double a = auto_costs.cost_miss_ratio[phase];
    if (a <= best * 1.05 + 0.005) ++phases_matched;
  }
  EXPECT_GE(phases_matched, 2)
      << "auto: " << auto_costs.cost_miss_ratio[0] << " "
      << auto_costs.cost_miss_ratio[1] << " "
      << auto_costs.cost_miss_ratio[2];
}

// ---------------------------------------------------------------------------
// Store-level plumbing (kvs::KvsStore autotune).
// ---------------------------------------------------------------------------

kvs::StoreConfig autotune_store_config(std::size_t shards) {
  kvs::StoreConfig c;
  c.shards = shards;
  c.engine.slab.memory_limit_bytes = 8u << 20;
  c.engine.slab.slab_size_bytes = 1u << 20;
  c.autotune = scripted({2}, /*initial=*/5, /*window=*/4, /*threshold=*/1);
  return c;
}

kvs::PolicyFactory camp_factory(int precision) {
  return [precision](std::uint64_t cap) {
    CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    return make_camp(config);
  };
}

TEST(StoreAutotune, AccessorsRequireAutotune) {
  util::ManualClock clock;
  kvs::StoreConfig plain = autotune_store_config(2);
  plain.autotune.reset();
  kvs::KvsStore store(plain, camp_factory(5), clock);
  EXPECT_FALSE(store.autotune_enabled());
  EXPECT_THROW((void)store.autotune_counters(), std::logic_error);
  EXPECT_THROW((void)store.autotune_precision(), std::logic_error);
  EXPECT_THROW((void)store.autotune_candidates(), std::logic_error);
}

TEST(StoreAutotune, DuelMigratesEveryShardPolicy) {
  util::ManualClock clock;
  kvs::KvsStore store(autotune_store_config(2), camp_factory(5), clock);
  EXPECT_TRUE(store.autotune_enabled());
  EXPECT_EQ(store.autotune_candidates(), std::vector<int>{2});
  ASSERT_EQ(store.policy_precision(), std::optional<int>(5));

  // Every successful set observes once; window=4, threshold=1, single
  // challenger: the duel migrates to p=2 within the first window and each
  // shard retunes lazily as its own traffic arrives.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store.set("key" + std::to_string(i), "value", 0, 3));
  }
  const AutoTunerCounters counters = store.autotune_counters();
  EXPECT_EQ(counters.ops, 64u);
  EXPECT_EQ(counters.retunes, 1u);
  EXPECT_EQ(store.autotune_precision(), 2);
  // 64 keys over 2 shards: both shards saw post-migration traffic, so the
  // live policies have caught up.
  EXPECT_EQ(store.policy_precision(), std::optional<int>(2));
  EXPECT_EQ(store.policy_name(), "camp(p=2)");

  // Hits feed the duel too.
  EXPECT_TRUE(store.get("key0").hit);
  EXPECT_EQ(store.autotune_counters().ops, 65u);
}

TEST(StoreAutotune, NonRetunablePolicyStillDuelsWithoutRetuning) {
  // The tuner runs regardless; retune application is a no-op for policies
  // that are not IRetunable (policy_precision reports nullopt).
  util::ManualClock clock;
  kvs::StoreConfig config = autotune_store_config(2);
  kvs::KvsStore store(config, policy::make_policy_factory("lru"), clock);
  EXPECT_TRUE(store.autotune_enabled());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store.set("key" + std::to_string(i), "value", 0, 3));
  }
  EXPECT_GE(store.autotune_counters().retunes, 1u);
  EXPECT_EQ(store.policy_precision(), std::nullopt);
}

}  // namespace
}  // namespace camp::core
