// Figures 9a/9b/9c: the implementation experiment. A real KVS server
// (slab-allocated storage + LRU or CAMP policy) is driven over localhost
// TCP by a trace-replaying client using iqget/set, mirroring the paper's
// IQ Twemcache + Whalin client setup.
//
//   9a: cost-miss ratio vs cache size ratio  (CAMP much lower at small caches)
//   9b: run time vs cache size ratio         (CAMP ~ LRU, both decrease)
//   9c: miss rate vs cache size ratio        (both decrease; CAMP close to LRU)
//
// The replayed trace uses the paper's synthetic {1,100,10K} costs. Run time
// here includes protocol parsing, TCP round trips and value copies — the
// same cost components the paper's Figure 9b measures (absolute values are
// hardware-specific; the shape is the reproduction target).
//
// fig9_scaling benches the batched-API redesign: the same replay driven in
// `unbatched` mode (one round trip per op, the historical client) and
// `batched` mode (KvsBatch of 32 iqgets per write, misses refilled with a
// noreply set batch) against 1, 4 and hardware_concurrency store shards,
// fronted by the shard-per-core worker-pool server. The reported
// `ops_per_sec` separates transport amortization (batched vs unbatched)
// from lock contention (shard count).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/camp.h"
#include "kvs/client.h"
#include "kvs/server.h"
#include "policy/lru.h"
#include "trace/workloads.h"

namespace {

using namespace camp;

struct Fig9Trace {
  std::vector<trace::TraceRecord> records;
  std::uint64_t unique_bytes = 0;
};

const Fig9Trace& fig9_trace() {
  static const Fig9Trace t = [] {
    const char* env = std::getenv("CAMP_PAPER_SCALE");
    const bool paper = env != nullptr && env[0] == '1';
    const std::uint64_t keys = paper ? 60'000 : 12'000;
    const std::uint64_t requests = paper ? 1'000'000 : 60'000;
    // KVS-sized values (<= 8 KiB) so the slab-class spread stays modest
    // relative to the smallest cache sizes in the sweep.
    auto config = trace::bg_default(keys, requests, 914);
    config.size_model =
        trace::SizeModel::log_normal(6.9, 0.7, 128, 8 * 1024);
    trace::TraceGenerator gen(config);
    Fig9Trace out;
    out.records = gen.generate();
    out.unique_bytes = gen.unique_bytes();
    return out;
  }();
  return t;
}

kvs::PolicyFactory policy_factory(const std::string& name) {
  if (name == "lru") {
    return [](std::uint64_t cap) {
      return std::make_unique<policy::LruCache>(cap);
    };
  }
  return [](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;  // the paper's Figure 9 setting
    return core::make_camp(config);
  };
}

kvs::ServerConfig server_config(double ratio, std::size_t shards) {
  const Fig9Trace& t = fig9_trace();
  kvs::ServerConfig config;
  config.store.shards = shards;
  config.workers = shards;  // shard-per-core worker pool
  config.store.engine.slab.slab_size_bytes = 64u << 10;
  config.store.engine.slab.memory_limit_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(ratio * static_cast<double>(t.unique_bytes)),
      8ull * shards * config.store.engine.slab.slab_size_bytes);
  return config;
}

// Reusable value payload: item value bytes are opaque to the policies.
const std::string& payload() {
  static const std::string p(256u << 10, 'v');
  return p;
}

void run_point(benchmark::State& state, const std::string& policy,
               double ratio) {
  const Fig9Trace& t = fig9_trace();
  static util::SteadyClock clock;
  const kvs::ServerConfig config = server_config(ratio, /*shards=*/1);

  for (auto _ : state) {
    kvs::KvsServer server(config, policy_factory(policy), clock);
    server.start();
    kvs::KvsClient client("127.0.0.1", server.port());

    std::unordered_set<std::uint64_t> seen;
    std::uint64_t noncold = 0, noncold_misses = 0;
    std::uint64_t cost_total = 0, cost_missed = 0;

    for (const trace::TraceRecord& r : t.records) {
      const std::string key = "k" + std::to_string(r.key);
      const bool cold = seen.insert(r.key).second;
      if (!cold) {
        ++noncold;
        cost_total += r.cost;
      }
      const kvs::GetResult result = client.iqget(key);
      if (!result.hit) {
        if (!cold) {
          ++noncold_misses;
          cost_missed += r.cost;
        }
        client.set(key, std::string_view(payload()).substr(0, r.size), 0,
                   r.cost);
      }
    }
    state.counters["cost_miss_ratio"] =
        cost_total == 0 ? 0.0
                        : static_cast<double>(cost_missed) /
                              static_cast<double>(cost_total);
    state.counters["miss_rate"] =
        noncold == 0 ? 0.0
                     : static_cast<double>(noncold_misses) /
                           static_cast<double>(noncold);
    state.counters["requests"] = static_cast<double>(t.records.size());
    const auto stats = server.store().aggregated_stats();
    state.counters["slab_reassignments"] =
        static_cast<double>(stats.slab_reassignments);
    server.stop();
  }
}

// One scaling point: replay the trace through `shards` store shards either
// one op per round trip (unbatched) or kBatchSize iqgets per write with
// noreply set refills (batched). Reports throughput, so the batched versus
// unbatched gap is the transport amortization the API redesign buys.
void run_scaling_point(benchmark::State& state, bool batched,
                       std::size_t shards) {
  constexpr std::size_t kBatchSize = 32;
  const Fig9Trace& t = fig9_trace();
  static util::SteadyClock clock;
  const kvs::ServerConfig config = server_config(/*ratio=*/0.25, shards);

  std::uint64_t total_ops = 0;
  for (auto _ : state) {
    kvs::KvsServer server(config, policy_factory("camp"), clock);
    server.start();
    kvs::KvsClient client("127.0.0.1", server.port());
    std::uint64_t ops = 0;

    if (!batched) {
      for (const trace::TraceRecord& r : t.records) {
        const std::string key = "k" + std::to_string(r.key);
        const kvs::GetResult result = client.iqget(key);
        ++ops;
        if (!result.hit) {
          client.set(key, std::string_view(payload()).substr(0, r.size), 0,
                     r.cost);
          ++ops;
        }
      }
    } else {
      for (std::size_t base = 0; base < t.records.size();
           base += kBatchSize) {
        const std::size_t n =
            std::min(kBatchSize, t.records.size() - base);
        kvs::KvsBatch gets;
        gets.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          gets.add_iqget("k" + std::to_string(t.records[base + i].key));
        }
        const kvs::KvsBatchResult got = client.execute(gets);
        ops += n;
        kvs::KvsBatch refill;
        for (std::size_t i = 0; i < n; ++i) {
          if (got[i].ok) continue;
          const trace::TraceRecord& r = t.records[base + i];
          refill.add_set("k" + std::to_string(r.key),
                         std::string_view(payload()).substr(0, r.size), 0,
                         r.cost, 0, /*noreply=*/true);
        }
        if (!refill.empty()) {
          (void)client.execute(refill);
          ops += refill.size();
        }
      }
    }
    total_ops += ops;
    server.stop();
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = batched ? kBatchSize : 1.0;
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<double> ratios{0.01, 0.05, 0.1, 0.25, 0.5, 0.75};
  for (const std::string policy : {"lru", "camp"}) {
    for (const double ratio : ratios) {
      benchmark::RegisterBenchmark(
          ("fig9/" + policy + "/ratio=" + std::to_string(ratio)).c_str(),
          [policy, ratio](benchmark::State& st) {
            run_point(st, policy, ratio);
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond)
          ->MeasureProcessCPUTime()
          ->UseRealTime();
    }
  }

  // Batched vs unbatched throughput per shard count (1, 4, cores).
  std::set<std::size_t> shard_counts{1, 4};
  shard_counts.insert(std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency())));
  for (const bool batched : {false, true}) {
    for (const std::size_t shards : shard_counts) {
      const std::string name = std::string("fig9_scaling/") +
                               (batched ? "batched" : "unbatched") +
                               "/shards=" + std::to_string(shards);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [batched, shards](benchmark::State& st) {
            run_scaling_point(st, batched, shards);
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond)
          ->MeasureProcessCPUTime()
          ->UseRealTime();
    }
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
