// Figures 9a/9b/9c: the implementation experiment. The KVS engine
// (slab-allocated storage + LRU or CAMP policy) replays the paper's
// {1,100,10K}-cost trace using iqget/set, mirroring the paper's IQ
// Twemcache setup:
//
//   9a: cost-miss ratio vs cache size ratio  (CAMP much lower at small caches)
//   9b: run time vs cache size ratio         (CAMP ~ LRU, both decrease)
//   9c: miss rate vs cache size ratio        (both decrease; CAMP close to LRU)
//
// fig9_scaling benches the batched-API redesign as a clients x shards
// matrix: the same replay in `unbatched` mode (one op per round trip) and
// `batched` mode (KvsBatch of 32 iqgets per write, misses refilled with a
// noreply set batch) for 1/4/8 concurrent clients against 1/4/8 store
// shards. Because bench adapters run with timing enabled, each point also
// drives a REAL worker-pool TCP server with that many concurrent batched
// clients and reports `ops_per_sec` — transport amortization (batched vs
// unbatched) separated from lock contention (shard count).
//
// Both computations live in the fig9 / fig9_scaling FigureSpecs
// (src/figures/registry.cc); camp_figures emits their deterministic
// counters for the committed baselines.
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig9", "fig9_scaling"}, argc, argv);
}
