// Figure 5b: number of non-empty LRU queues maintained by CAMP as a
// function of precision (three-tier {1,100,10K} cost trace).
//
// Expected shape: grows with precision, saturating quickly — the 3-tier
// trace has a limited set of distinct cost-to-size ratios; even precision 1
// keeps several queues (vs LRU's single queue).
#include "bench_common.h"

namespace {

using namespace camp;

void run_point(benchmark::State& state, int precision) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.25, bundle.unique_bytes);
  for (auto _ : state) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    core::CampCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    const auto intro = cache.introspect();
    state.counters["queues"] = static_cast<double>(intro.nonempty_queues);
    state.counters["queues_created"] =
        static_cast<double>(intro.queues_created);
    state.counters["prop2_bound"] = static_cast<double>(
        util::distinct_rounded_values_bound(intro.max_scaled_ratio,
                                            precision));
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<int> precisions{1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                    camp::util::kPrecisionInfinity};
  for (const int p : precisions) {
    const std::string pname =
        p >= camp::util::kPrecisionInfinity ? "inf" : std::to_string(p);
    benchmark::RegisterBenchmark(
        ("fig5b/precision=" + pname).c_str(),
        [p](benchmark::State& st) { run_point(st, p); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
