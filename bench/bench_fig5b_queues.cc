// Figure 5b: number of non-empty LRU queues maintained by CAMP as a
// function of precision (three-tier {1,100,10K} cost trace), with the
// Proposition 2 bound reported alongside.
//
// Expected shape: grows with precision, saturating quickly — the 3-tier
// trace has a limited set of distinct cost-to-size ratios; even precision 1
// keeps several queues (vs LRU's single queue).
//
// The computation lives in the fig5b FigureSpec (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig5b"}, argc, argv);
}
