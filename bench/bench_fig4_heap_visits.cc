// Figure 4: number of visited heap nodes as a function of the cache size
// ratio, GDS (per-item binary heap, updated every hit) vs CAMP (8-ary heap
// over queue heads only).
//
// Expected shape: the GDS curve INCREASES with cache size (more resident
// items -> deeper heap) while the CAMP curve DECREASES (queue count is
// constant but a bigger cache absorbs more hits without head changes).
//
// The computation lives in the fig4 FigureSpec (src/figures/registry.cc);
// this binary only adapts it to google-benchmark.
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig4"}, argc, argv);
}
