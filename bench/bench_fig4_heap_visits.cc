// Figure 4: number of visited heap nodes as a function of the cache size
// ratio, GDS (per-item binary heap, updated every hit) vs CAMP (8-ary heap
// over queue heads only).
//
// Expected shape: the GDS curve INCREASES with cache size (more resident
// items -> deeper heap) while the CAMP curve DECREASES (queue count is
// constant but a bigger cache absorbs more hits without head changes).
#include "bench_common.h"

#include "sim/simulator.h"

namespace {

using namespace camp;

void run_gds_point(benchmark::State& state, double ratio) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    policy::GdsConfig config;
    config.capacity_bytes = cap;
    policy::GdsCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    state.counters["heap_node_visits"] =
        static_cast<double>(cache.heap_stats().nodes_visited);
    state.counters["heap_operations"] =
        static_cast<double>(cache.heap_stats().total_operations());
    bench::report_point(state, simulator.metrics());
  }
}

void run_camp_point(benchmark::State& state, double ratio) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    core::CampCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    const auto intro = cache.introspect();
    state.counters["heap_node_visits"] =
        static_cast<double>(intro.heap.nodes_visited);
    state.counters["heap_operations"] =
        static_cast<double>(intro.heap.total_operations());
    state.counters["queues"] = static_cast<double>(intro.nonempty_queues);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const double ratio : camp::bench::paper_cache_ratios()) {
    benchmark::RegisterBenchmark(
        ("fig4/gds/ratio=" + std::to_string(ratio)).c_str(),
        [ratio](benchmark::State& st) { run_gds_point(st, ratio); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("fig4/camp/ratio=" + std::to_string(ratio)).c_str(),
        [ratio](benchmark::State& st) { run_camp_point(st, ratio); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
