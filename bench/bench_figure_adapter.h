// Thin google-benchmark adapter over the FigureSpec registry: a bench
// binary names the figures it fronts, and every registry point becomes one
// benchmark case ("<figure>/<policy>/<x_label>=<x>") whose counters are
// the figure's metric columns. The computation lives in
// src/figures/registry.cc — the binaries carry no trace or sweep setup of
// their own.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <initializer_list>
#include <string>

#include "bench_common.h"
#include "figures/figure_spec.h"

namespace camp::bench {

inline void run_figure_point(benchmark::State& state,
                             const figures::FigureSpec& spec,
                             const figures::FigurePointSpec& point,
                             const figures::FigureOptions& options) {
  for (auto _ : state) {
    const auto rows = spec.run_point(point, options);
    // Timeline figures fan out into many rows; the first row is the
    // summary the counters report.
    if (rows.empty()) continue;
    for (const auto& [metric, value] : rows.front().metrics) {
      state.counters[metric] = value;
    }
  }
}

inline std::string point_case_name(const figures::FigureSpec& spec,
                                   const figures::FigurePointSpec& point) {
  char x[32];
  std::snprintf(x, sizeof(x), "%g", point.x);
  return spec.id() + "/" + point.policy + "/" + point.x_label + "=" + x;
}

/// Register every point of every named figure and run the benchmark loop.
inline int run_figure_bench(std::initializer_list<const char*> figure_ids,
                            int argc, char** argv) {
  const figures::FigureOptions options = figure_options();
  for (const char* id : figure_ids) {
    const figures::FigureSpec* spec = figures::find_figure(id);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown figure '%s'\n", id);
      return 1;
    }
    for (const figures::FigurePointSpec& point : spec->points(options)) {
      benchmark::RegisterBenchmark(
          point_case_name(*spec, point).c_str(),
          [spec, point, options](benchmark::State& st) {
            run_figure_point(st, *spec, point, options);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace camp::bench
