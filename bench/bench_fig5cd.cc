// Figures 5c/5d: cost-miss ratio (5c) and miss rate (5d) as a function of
// the cache size ratio for LRU, Pooled LRU (uniform and cost-proportional
// partitions) and CAMP (precision 5), on the three-tier {1,100,10K} cost
// trace. One sweep serves both figures — every point carries both metrics
// as counters, so this single binary replaces the former
// bench_fig5c_costmiss / bench_fig5d_missrate pair.
//
// Expected shape: 5c — CAMP lowest everywhere; cost-proportional Pooled
// LRU approaches CAMP at large cache sizes; uniform Pooled LRU tracks LRU.
// 5d — cost-proportional Pooled LRU pays for its cost-miss win with a much
// worse miss rate (it starves the cheap pools); CAMP stays close to LRU.
//
// The computation lives in the fig5cd FigureSpec (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig5cd"}, argc, argv);
}
