// Ablation benches for the design choices called out in DESIGN.md:
//
//   1. Heap arity for CAMP's head heap (paper picks 8-ary per Larkin et al.)
//   2. Priority-queue implementation under GDS (implicit d-ary vs pairing)
//   3. Rounding scheme (MSY vs fixed-bit truncation) plugged into CAMP
//   4. Admission control on/off around CAMP (Section 6 future work)
//   5. Sharding (Section 4.1): multi-threaded hit throughput, 1..16 shards
//   6. Allocator: slab vs buddy under a KVS-like size mix
//   7. Lock granularity (Section 4.1): one big lock around serial CAMP vs
//      the fine-grained concurrent engine, with 1..8 physical sub-queues
#include "bench_common.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/camp.h"
#include "core/concurrent_camp.h"
#include "heap/pairing_heap.h"
#include "sim/parallel_simulator.h"
#include "kvs/sharded_cache.h"
#include "policy/admission.h"
#include "policy/gds.h"
#include "slab/buddy_allocator.h"
#include "slab/slab_allocator.h"
#include "util/rounding.h"

namespace {

using namespace camp;

// ---- 1. heap arity -----------------------------------------------------------

template <int Arity>
void run_camp_arity(benchmark::State& state) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  for (auto _ : state) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    core::BasicCampCache<Arity> cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    state.counters["heap_node_visits"] =
        static_cast<double>(cache.introspect().heap.nodes_visited);
    state.counters["cost_miss_ratio"] =
        simulator.metrics().cost_miss_ratio();
  }
}

// ---- 2. GDS priority queue: implicit binary heap vs pairing heap --------------

void run_gds_pairing(benchmark::State& state) {
  // A GDS variant on a pairing heap, inlined here (the production GdsCache
  // uses the implicit binary heap).
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  struct Pri {
    std::uint64_t h;
    policy::Key key;
    bool operator>(const Pri& o) const { return h > o.h; }
  };
  struct PriLess {
    bool operator()(const Pri& a, const Pri& b) const { return a.h < b.h; }
  };
  for (auto _ : state) {
    heap::PairingHeap<Pri, PriLess> heap;
    std::unordered_map<policy::Key,
                       std::pair<heap::PairingHeap<Pri, PriLess>::Handle,
                                 std::pair<std::uint64_t, std::uint64_t>>>
        index;  // key -> (handle, (size, ratio))
    util::AdaptiveRatioScaler scaler;
    std::uint64_t used = 0, inflation = 0, visits_proxy = 0;
    std::unordered_set<policy::Key> seen;
    std::uint64_t noncold = 0, noncold_miss = 0;
    for (const trace::TraceRecord& r : bundle.records) {
      const bool cold = seen.insert(r.key).second;
      if (!cold) ++noncold;
      const auto it = index.find(r.key);
      if (it != index.end()) {
        // hit: L <- min over others; refresh priority
        heap.erase(it->second.first);
        if (!heap.empty()) inflation = std::max(inflation, heap.top().h);
        const std::uint64_t h = inflation + it->second.second.second;
        it->second.first = heap.push(Pri{h, r.key});
        continue;
      }
      if (!cold) ++noncold_miss;
      scaler.observe_size(r.size);
      const std::uint64_t ratio = scaler.scale(r.cost, r.size);
      while (used + r.size > cap && !heap.empty()) {
        const Pri top = heap.top();
        inflation = std::max(inflation, top.h);
        const auto vit = index.find(top.key);
        used -= vit->second.second.first;
        heap.pop();
        index.erase(vit);
      }
      const std::uint64_t h = inflation + ratio;
      index[r.key] = {heap.push(Pri{h, r.key}), {r.size, ratio}};
      used += r.size;
    }
    visits_proxy = heap.stats().nodes_visited;
    state.counters["heap_node_visits"] = static_cast<double>(visits_proxy);
    state.counters["miss_rate"] =
        noncold == 0 ? 0.0
                     : static_cast<double>(noncold_miss) /
                           static_cast<double>(noncold);
  }
}

void run_gds_implicit(benchmark::State& state) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  for (auto _ : state) {
    policy::GdsConfig config;
    config.capacity_bytes = cap;
    policy::GdsCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    state.counters["heap_node_visits"] =
        static_cast<double>(cache.heap_stats().nodes_visited);
    state.counters["miss_rate"] = simulator.metrics().miss_rate();
  }
}

// ---- 3. rounding scheme: MSY vs fixed truncation inside GDS priorities --------

void run_rounding_scheme(benchmark::State& state, bool msy) {
  // GDS with precision-5 MSY rounding vs GDS with fixed 5-bit truncation;
  // the MSY variant must not degrade cost-miss while truncation hurts small
  // ratios (Table 1's point at cache scale).
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  for (auto _ : state) {
    std::unordered_set<policy::Key> seen;
    std::uint64_t noncold_cost = 0, missed_cost = 0;
    policy::GdsConfig config;
    config.capacity_bytes = cap;
    config.precision = msy ? 5 : util::kPrecisionInfinity;
    policy::GdsCache cache(config);
    for (const trace::TraceRecord& r : bundle.records) {
      const bool cold = seen.insert(r.key).second;
      if (!cold) noncold_cost += r.cost;
      if (!cache.get(r.key)) {
        if (!cold) missed_cost += r.cost;
        // Truncation variant: pre-truncate the cost so the effective ratio
        // loses its low bits regardless of magnitude.
        const std::uint64_t cost =
            msy ? r.cost : std::max<std::uint64_t>(
                               1, util::truncate_low_bits(r.cost, 7));
        cache.put(r.key, r.size, cost);
      }
    }
    state.counters["cost_miss_ratio"] =
        noncold_cost == 0 ? 0.0
                          : static_cast<double>(missed_cost) /
                                static_cast<double>(noncold_cost);
  }
}

// ---- 4. admission control on/off ----------------------------------------------

void run_admission(benchmark::State& state, bool enabled) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.05, bundle.unique_bytes);
  for (auto _ : state) {
    std::unique_ptr<policy::ICache> cache = bench::camp_factory(5)(cap);
    if (enabled) {
      policy::AdmissionConfig config;  // doorkeeper + cost bypass defaults
      cache = std::make_unique<policy::AdmissionFilter>(std::move(cache),
                                                        config);
    }
    sim::Simulator simulator(*cache);
    simulator.run(bundle.records);
    state.counters["cost_miss_ratio"] =
        simulator.metrics().cost_miss_ratio();
    state.counters["miss_rate"] = simulator.metrics().miss_rate();
  }
}

// ---- 5. sharding: concurrent hit throughput ------------------------------------

void run_sharded(benchmark::State& state, std::size_t shards, int threads) {
  const std::uint64_t cap = 64u << 20;
  for (auto _ : state) {
    kvs::ShardedCache cache(cap, shards, [](std::uint64_t c) {
      core::CampConfig config;
      config.capacity_bytes = c;
      config.precision = 5;
      return core::make_camp(config);
    });
    std::atomic<std::uint64_t> ops{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&cache, &ops, t] {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
        std::uint64_t local = 0;
        for (int i = 0; i < 100'000; ++i) {
          const policy::Key k = rng.below(50'000);
          if (!cache.get(k)) {
            cache.put(k, 64 + rng.below(1024), 1 + rng.below(10'000));
          }
          ++local;
        }
        ops.fetch_add(local);
      });
    }
    for (auto& w : workers) w.join();
    state.SetItemsProcessed(static_cast<std::int64_t>(ops.load()));
  }
}

// ---- 7. lock granularity: big-lock CAMP vs concurrent engine --------------------

void run_mt_workload(benchmark::State& state, policy::ICache& cache,
                     int threads) {
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, &ops, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      std::uint64_t local = 0;
      for (int i = 0; i < 100'000; ++i) {
        const policy::Key k = rng.below(50'000);
        if (!cache.get(k)) {
          cache.put(k, 64 + rng.below(1024), 1 + rng.below(10'000));
        }
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(ops.load()));
}

/// Serial CAMP behind one global mutex: the baseline Section 4.1 argues
/// against.
class BigLockCamp final : public policy::ICache {
 public:
  explicit BigLockCamp(std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    inner_ = std::make_unique<core::CampCache>(config);
  }
  bool get(policy::Key key) override {
    std::lock_guard g(mutex_);
    return inner_->get(key);
  }
  bool put(policy::Key key, std::uint64_t size, std::uint64_t cost) override {
    std::lock_guard g(mutex_);
    return inner_->put(key, size, cost);
  }
  bool contains(policy::Key key) const override {
    std::lock_guard g(mutex_);
    return inner_->contains(key);
  }
  void erase(policy::Key key) override {
    std::lock_guard g(mutex_);
    inner_->erase(key);
  }
  bool evict_one() override {
    std::lock_guard g(mutex_);
    return inner_->evict_one();
  }
  std::uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  std::uint64_t used_bytes() const override {
    std::lock_guard g(mutex_);
    return inner_->used_bytes();
  }
  std::size_t item_count() const override {
    std::lock_guard g(mutex_);
    return inner_->item_count();
  }
  const policy::CacheStats& stats() const override { return inner_->stats(); }
  std::string name() const override { return "big-lock-camp"; }
  void set_eviction_listener(policy::EvictionListener listener) override {
    inner_->set_eviction_listener(std::move(listener));
  }

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<core::CampCache> inner_;
};

void run_lock_granularity(benchmark::State& state, std::uint32_t physical,
                          int threads) {
  const std::uint64_t cap = 64u << 20;
  for (auto _ : state) {
    if (physical == 0) {
      BigLockCamp cache(cap);
      run_mt_workload(state, cache, threads);
    } else {
      core::ConcurrentCampConfig config;
      config.capacity_bytes = cap;
      config.precision = 5;
      config.physical_queues = physical;
      core::ConcurrentCampCache cache(config);
      run_mt_workload(state, cache, threads);
      state.counters["shared_fast_hits"] =
          static_cast<double>(cache.introspect().shared_fast_hits);
    }
  }
}

// ---- 8. CAMP-F precision sweep ---------------------------------------------------
// Figure 5a's question asked of the frequency-aware extension: does the
// rounding that bounds the queue count cost any decision quality when the
// ratio now carries a hit counter?

void run_campf_precision(benchmark::State& state, int precision) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  for (auto _ : state) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    config.frequency_aware = true;
    core::CampCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    state.counters["cost_miss_ratio"] =
        simulator.metrics().cost_miss_ratio();
    state.counters["queues"] =
        static_cast<double>(cache.introspect().nonempty_queues);
  }
}

// ---- 7b. parallel trace replay against the concurrent engine --------------------

void run_parallel_replay(benchmark::State& state, unsigned threads) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  for (auto _ : state) {
    core::ConcurrentCampConfig config;
    config.capacity_bytes = cap;
    config.precision = 5;
    core::ConcurrentCampCache cache(config);
    const auto result =
        sim::replay_parallel(cache, bundle.records, threads);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(result.metrics.requests));
    state.counters["cost_miss_ratio"] = result.metrics.cost_miss_ratio();
    state.counters["miss_rate"] = result.metrics.miss_rate();
    state.counters["replay_mreq_s"] =
        result.requests_per_second() / 1e6;
  }
}

// ---- 6. allocator: slab vs buddy -----------------------------------------------

void run_slab_alloc(benchmark::State& state) {
  slab::SlabConfig config;
  config.memory_limit_bytes = 64u << 20;
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    slab::SlabAllocator alloc(config);
    std::vector<slab::Chunk> live;
    std::uint64_t failures = 0;
    for (int i = 0; i < 200'000; ++i) {
      if (rng.below(2) == 0 || live.empty()) {
        const auto size = 64 + rng.below(16'384);
        if (auto c = alloc.allocate(size)) {
          live.push_back(*c);
        } else {
          ++failures;
          if (!live.empty()) {
            alloc.free(live.back());
            live.pop_back();
          }
        }
      } else {
        const auto idx = static_cast<std::size_t>(rng.below(live.size()));
        alloc.free(live[idx]);
        live[idx] = live.back();
        live.pop_back();
      }
    }
    state.counters["alloc_failures"] = static_cast<double>(failures);
  }
}

void run_buddy_alloc(benchmark::State& state) {
  slab::BuddyConfig config;
  config.arena_bytes = 64u << 20;
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    slab::BuddyAllocator alloc(config);
    std::vector<slab::BuddyBlock> live;
    std::uint64_t failures = 0;
    for (int i = 0; i < 200'000; ++i) {
      if (rng.below(2) == 0 || live.empty()) {
        const auto size = 64 + rng.below(16'384);
        if (auto b = alloc.allocate(size)) {
          live.push_back(*b);
        } else {
          ++failures;
          if (!live.empty()) {
            alloc.free(live.back());
            live.pop_back();
          }
        }
      } else {
        const auto idx = static_cast<std::size_t>(rng.below(live.size()));
        alloc.free(live[idx]);
        live[idx] = live.back();
        live.pop_back();
      }
    }
    state.counters["alloc_failures"] = static_cast<double>(failures);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("ablation/arity/2", run_camp_arity<2>)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/arity/4", run_camp_arity<4>)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/arity/8", run_camp_arity<8>)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/arity/16", run_camp_arity<16>)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("ablation/gds-pq/implicit-binary",
                               run_gds_implicit)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/gds-pq/pairing", run_gds_pairing)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark(
      "ablation/rounding/msy-p5",
      [](benchmark::State& st) { run_rounding_scheme(st, true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "ablation/rounding/fixed-truncation",
      [](benchmark::State& st) { run_rounding_scheme(st, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark(
      "ablation/admission/off",
      [](benchmark::State& st) { run_admission(st, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "ablation/admission/on",
      [](benchmark::State& st) { run_admission(st, true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  for (const std::size_t shards : {1u, 2u, 4u, 8u, 16u}) {
    benchmark::RegisterBenchmark(
        ("ablation/sharding/shards=" + std::to_string(shards) + "/threads=8").c_str(),
        [shards](benchmark::State& st) {
          run_sharded(st, shards, 8);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::RegisterBenchmark(
      "ablation/lock-granularity/big-lock/threads=8",
      [](benchmark::State& st) { run_lock_granularity(st, 0, 8); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  for (const std::uint32_t physical : {1u, 4u, 8u}) {
    benchmark::RegisterBenchmark(
        ("ablation/lock-granularity/camp-mt-q" + std::to_string(physical) +
         "/threads=8")
            .c_str(),
        [physical](benchmark::State& st) {
          run_lock_granularity(st, physical, 8);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  for (const int precision : {1, 3, 5, 10, 64}) {
    benchmark::RegisterBenchmark(
        ("ablation/campf-precision/p=" +
         (precision == 64 ? std::string("inf") : std::to_string(precision)))
            .c_str(),
        [precision](benchmark::State& st) {
          run_campf_precision(st, precision);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    benchmark::RegisterBenchmark(
        ("ablation/parallel-replay/camp-mt/threads=" +
         std::to_string(threads))
            .c_str(),
        [threads](benchmark::State& st) {
          run_parallel_replay(st, threads);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::RegisterBenchmark("ablation/allocator/slab", run_slab_alloc)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/allocator/buddy", run_buddy_alloc)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
