// fig_autotune: self-tuning precision vs the static settings across three
// cost-model phases (three-tier choice, fixed, continuous lognormal) over
// disjoint key spaces. The duel's decision counters (windows, sampled ops,
// migrations, final precision) are reported alongside the per-phase
// cost-miss ratios — all deterministic, so the baseline diff is exact.
//
// Expected shape: camp-auto tracks the best static candidate within a few
// percent in every phase (and may beat them all where the optimum shifts
// mid-run), while the statics each lose at least one phase.
//
// The computation lives in the fig_autotune FigureSpec
// (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig_autotune"}, argc, argv);
}
