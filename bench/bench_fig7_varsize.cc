// Figure 7: miss rate as a function of the cache size ratio with variable
// sized key-value pairs and constant cost (cost = 1 for every pair).
//
// Expected shape: CAMP keeps small pairs resident (cost/size favours them)
// and beats LRU on miss rate; Pooled LRU collapses to a single pool and
// equals LRU, so only LRU is plotted. With unit costs the cost-miss ratio
// IS the miss rate.
#include "bench_common.h"

namespace {

using namespace camp;

void run_point(benchmark::State& state, const sim::CacheFactory& factory,
               double ratio) {
  const auto& bundle = bench::varsize_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    auto cache = factory(cap);
    sim::Simulator simulator(*cache);
    simulator.run(bundle.records);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  struct Series {
    std::string name;
    camp::sim::CacheFactory factory;
  };
  const std::vector<Series> series{
      {"lru", camp::bench::lru_factory()},
      {"camp-p5", camp::bench::camp_factory(5)},
      {"gds", camp::bench::gds_factory()},
  };
  for (const auto& s : series) {
    for (const double ratio : camp::bench::paper_cache_ratios()) {
      benchmark::RegisterBenchmark(
          ("fig7/" + s.name + "/ratio=" + std::to_string(ratio)).c_str(),
          [factory = s.factory, ratio](benchmark::State& st) {
            run_point(st, factory, ratio);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
