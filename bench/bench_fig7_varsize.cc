// Figure 7: miss rate as a function of the cache size ratio with variable
// sized key-value pairs and constant cost (cost = 1 for every pair).
//
// Expected shape: CAMP keeps small pairs resident (cost/size favours them)
// and beats LRU on miss rate; Pooled LRU collapses to a single pool and
// equals LRU, so only LRU is plotted. With unit costs the cost-miss ratio
// IS the miss rate.
//
// The computation lives in the fig7 FigureSpec (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig7"}, argc, argv);
}
