// fig_latency: the event-driven server's latency profile as a connections
// x batch-size matrix. Each point replays the KVS trace against a REAL
// epoll KvsServer with `conns` closed-loop TCP connections issuing
// `batch`-op pipelined batches; client-side per-op-type LatencyHistograms
// (HDR-style log-linear, util/stats.h) yield get/set p50/p99/p999/max in
// microseconds plus aggregate ops_per_sec.
//
// Because bench adapters run with timing enabled, the wall-clock
// percentile metrics are always emitted here; the committed baseline
// (bench/baselines/fig_latency.csv) holds only the deterministic in-proc
// counters, so perf diffs band the percentiles instead of byte-comparing
// them. The computation lives in the fig_latency FigureSpec
// (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig_latency"}, argc, argv);
}
