// Figure 5c: cost-miss ratio as a function of the cache size ratio for
// LRU, Pooled LRU (uniform and cost-proportional partitions) and CAMP
// (precision 5), on the three-tier {1,100,10K} cost trace.
//
// Expected shape: CAMP lowest everywhere; cost-proportional Pooled LRU
// approaches CAMP at large cache sizes; uniform Pooled LRU tracks LRU.
#include "bench_common.h"

namespace {

using namespace camp;

void run_point(benchmark::State& state, const sim::CacheFactory& factory,
               double ratio) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    auto cache = factory(cap);
    sim::Simulator simulator(*cache);
    simulator.run(bundle.records);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using camp::bench::default_trace;
  const auto& bundle = default_trace();
  struct Series {
    std::string name;
    camp::sim::CacheFactory factory;
  };
  const std::vector<Series> series{
      {"lru", camp::bench::lru_factory()},
      {"pooled-uniform", camp::bench::pooled_uniform_factory(bundle.records)},
      {"pooled-cost", camp::bench::pooled_cost_factory(bundle.records)},
      {"camp-p5", camp::bench::camp_factory(5)},
  };
  for (const auto& s : series) {
    for (const double ratio : camp::bench::paper_cache_ratios()) {
      benchmark::RegisterBenchmark(
          ("fig5c/" + s.name + "/ratio=" + std::to_string(ratio)).c_str(),
          [factory = s.factory, ratio](benchmark::State& st) {
            run_point(st, factory, ratio);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
