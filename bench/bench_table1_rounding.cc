// Table 1: regular rounding vs CAMP's MSY rounding at binary precision 4.
// Prints the paper's table rows (from the table1 FigureSpec, the same
// numbers camp_figures emits), then times the rounding kernels.
#include <benchmark/benchmark.h>

#include <bitset>
#include <cstdio>

#include "figures/figure_runner.h"
#include "util/rng.h"
#include "util/rounding.h"

namespace {

void print_table1() {
  const camp::figures::FigureRunner runner(camp::figures::FigureOptions{});
  const camp::figures::FigureResult result = runner.run("table1");
  std::printf("\nTable 1: rounding with (binary) precision 4\n");
  std::printf("%-12s %-22s %-22s\n", "input", "regular rounding",
              "CAMP (MSY) rounding");
  for (const camp::figures::FigureRow& row : result.rows) {
    const auto input = static_cast<std::uint64_t>(row.point.x);
    std::uint64_t regular = 0, msy = 0;
    for (const auto& [metric, value] : row.metrics) {
      if (metric == "regular") regular = static_cast<std::uint64_t>(value);
      if (metric == "msy") msy = static_cast<std::uint64_t>(value);
    }
    std::printf("%-12s %-22s %-22s\n",
                std::bitset<9>(input).to_string().c_str(),
                std::bitset<9>(regular).to_string().c_str(),
                std::bitset<9>(msy).to_string().c_str());
  }
  std::printf("\n");
}

void BM_MsyRound(benchmark::State& state) {
  const int precision = static_cast<int>(state.range(0));
  camp::util::SplitMix64 rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= camp::util::msy_round(rng.next() >> 13, precision);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MsyRound)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_RegularTruncation(benchmark::State& state) {
  camp::util::SplitMix64 rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= camp::util::truncate_low_bits(rng.next() >> 13, 5);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RegularTruncation);

void BM_AdaptiveScaler(benchmark::State& state) {
  camp::util::AdaptiveRatioScaler scaler;
  scaler.observe_size(1 << 20);
  camp::util::SplitMix64 rng(2);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const std::uint64_t cost = 1 + (rng.next() % 10'000);
    const std::uint64_t size = 64 + (rng.next() % 65'536);
    sink ^= scaler.scale_and_round(cost, size, 5);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AdaptiveScaler);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
