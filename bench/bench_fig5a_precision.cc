// Figure 5a: cost-miss ratio as a function of CAMP's precision, for three
// cache size ratios; "infinity" (= standard GDS decisions, precision 64)
// included.
//
// Expected shape: essentially flat in precision — rounding does not hurt.
//
// The computation lives in the fig5a FigureSpec (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig5a"}, argc, argv);
}
