// Figure 5a: cost-miss ratio as a function of CAMP's precision, for three
// cache size ratios; "infinity" (= standard GDS decisions) included.
//
// Expected shape: essentially flat in precision — rounding does not hurt.
#include "bench_common.h"

namespace {

using namespace camp;

void run_point(benchmark::State& state, double ratio, int precision) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    core::CampCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    state.counters["queues"] =
        static_cast<double>(cache.introspect().nonempty_queues);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<double> ratios{0.05, 0.25, 0.75};  // three cache sizes
  const std::vector<int> precisions{1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                    camp::util::kPrecisionInfinity};
  for (const double ratio : ratios) {
    for (const int p : precisions) {
      const std::string pname =
          p >= camp::util::kPrecisionInfinity ? "inf" : std::to_string(p);
      benchmark::RegisterBenchmark(
          ("fig5a/ratio=" + std::to_string(ratio) + "/precision=" + pname).c_str(),
          [ratio, p](benchmark::State& st) { run_point(st, ratio, p); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
