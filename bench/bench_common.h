// Shared support for the figure-reproduction benches — now a thin adapter
// over the src/figures layer, which owns the trace bundles, the policy
// factories, and the per-figure computations (the copy-pasted setup that
// used to live here).
//
// Scale: by default traces are generated at 1/10th of the paper's 4M rows
// so the whole bench suite finishes in minutes. Set CAMP_PAPER_SCALE=1 to
// run the paper's full scale (4M rows per trace, 10 phase traces, ...).
//
// Determinism: every trace accessor takes an EXPLICIT seed (defaulting to
// the canonical paper seed) and forwards to figures::shared_trace, which
// is keyed by (kind, scale, seed) — no hidden global state feeds the
// generators, so bench runs and `camp_figures` runs see byte-identical
// traces (asserted by tests/figures_repeatability_test.cc).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "figures/factories.h"
#include "figures/figure_spec.h"
#include "figures/traces.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace camp::bench {

using figures::TraceBundle;

struct Scale {
  std::uint64_t num_keys;
  std::uint64_t num_requests;
  bool paper_scale;
};

inline Scale scale() {
  const figures::Scale s = figures::Scale::from_env();
  return Scale{s.num_keys, s.num_requests, s.name == "paper"};
}

/// Figure options matching the bench environment (scale from
/// CAMP_PAPER_SCALE, canonical seed, wall-clock metrics enabled — benches
/// measure time by construction).
inline figures::FigureOptions figure_options() {
  figures::FigureOptions options;
  options.scale = figures::Scale::from_env();
  options.seed = figures::kCanonicalSeed;
  options.timing = true;
  return options;
}

/// The paper's default x-axis: cache size ratios.
inline std::vector<double> paper_cache_ratios() {
  return figures::paper_cache_ratios();
}

// ---- memoised trace bundles (explicit seeds, shared with camp_figures) ----

inline const TraceBundle& default_trace(
    std::uint64_t seed = figures::seed_for(figures::TraceKind::kDefault,
                                           figures::kCanonicalSeed)) {
  return figures::shared_trace(figures::TraceKind::kDefault,
                               figures::Scale::from_env(), seed);
}

inline const TraceBundle& varsize_trace(
    std::uint64_t seed = figures::seed_for(figures::TraceKind::kVarSize,
                                           figures::kCanonicalSeed)) {
  return figures::shared_trace(figures::TraceKind::kVarSize,
                               figures::Scale::from_env(), seed);
}

inline const TraceBundle& equisize_trace(
    std::uint64_t seed = figures::seed_for(figures::TraceKind::kEquiSize,
                                           figures::kCanonicalSeed)) {
  return figures::shared_trace(figures::TraceKind::kEquiSize,
                               figures::Scale::from_env(), seed);
}

/// Ten back-to-back phase traces with disjoint key spaces (Section 3.1).
/// unique_bytes is ONE phase's footprint (the paper's cache size ratio is
/// relative to a single trace's footprint).
inline const TraceBundle& phased_trace(
    std::uint64_t seed = figures::seed_for(figures::TraceKind::kPhased,
                                           figures::kCanonicalSeed)) {
  return figures::shared_trace(figures::TraceKind::kPhased,
                               figures::Scale::from_env(), seed);
}

// ---- policy factories (re-exported from the figures layer) ----------------

inline sim::CacheFactory lru_factory() { return figures::lru_factory(); }

inline sim::CacheFactory camp_factory(int precision) {
  return figures::camp_factory(precision);
}

inline sim::CacheFactory gds_factory() { return figures::gds_factory(); }

inline sim::CacheFactory pooled_cost_factory(
    const std::vector<trace::TraceRecord>& records) {
  return figures::pooled_cost_factory(records);
}

inline sim::CacheFactory pooled_uniform_factory(
    const std::vector<trace::TraceRecord>& records) {
  return figures::pooled_uniform_factory(records);
}

inline sim::CacheFactory pooled_range_factory() {
  return figures::pooled_range_factory();
}

/// Run one simulation and report the paper metrics as counters.
inline void report_point(benchmark::State& state, const sim::Metrics& m) {
  state.counters["cost_miss_ratio"] = m.cost_miss_ratio();
  state.counters["miss_rate"] = m.miss_rate();
  state.counters["requests"] = static_cast<double>(m.requests);
}

}  // namespace camp::bench
