// Shared support for the figure-reproduction benches.
//
// Scale: by default traces are generated at 1/10th of the paper's 4M rows
// so the whole bench suite finishes in minutes. Set CAMP_PAPER_SCALE=1 to
// run the paper's full scale (4M rows per trace, 10 phase traces, ...).
//
// Every bench registers google-benchmark cases named
// "<figure>/<policy>/<x-axis-point>" that run the simulation once
// (Iterations(1)) and report the paper's metrics as counters
// (cost_miss_ratio, miss_rate, queues, heap_visits, ...).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/camp.h"
#include "policy/gds.h"
#include "policy/lru.h"
#include "policy/pooled_lru.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/profiler.h"
#include "trace/workloads.h"

namespace camp::bench {

struct Scale {
  std::uint64_t num_keys;
  std::uint64_t num_requests;
  bool paper_scale;
};

inline Scale scale() {
  const char* env = std::getenv("CAMP_PAPER_SCALE");
  const bool paper = env != nullptr && env[0] == '1';
  if (paper) return Scale{400'000, 4'000'000, true};
  return Scale{40'000, 400'000, false};
}

/// The paper's default x-axis: cache size ratios.
inline std::vector<double> paper_cache_ratios() {
  return {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75};
}

/// Memoised trace bundles so several benchmark cases share one generation.
struct TraceBundle {
  std::vector<trace::TraceRecord> records;
  std::uint64_t unique_bytes = 0;
};

inline const TraceBundle& default_trace() {
  static const TraceBundle bundle = [] {
    const Scale s = scale();
    trace::TraceGenerator gen(trace::bg_default(s.num_keys, s.num_requests,
                                                /*seed=*/2014));
    TraceBundle b;
    b.records = gen.generate();
    b.unique_bytes = gen.unique_bytes();
    return b;
  }();
  return bundle;
}

inline const TraceBundle& varsize_trace() {
  static const TraceBundle bundle = [] {
    const Scale s = scale();
    trace::TraceGenerator gen(trace::bg_variable_size_fixed_cost(
        s.num_keys, s.num_requests, /*seed=*/2015));
    TraceBundle b;
    b.records = gen.generate();
    b.unique_bytes = gen.unique_bytes();
    return b;
  }();
  return bundle;
}

inline const TraceBundle& equisize_trace() {
  static const TraceBundle bundle = [] {
    const Scale s = scale();
    trace::TraceGenerator gen(trace::bg_equal_size_variable_cost(
        s.num_keys, s.num_requests, /*seed=*/2016));
    TraceBundle b;
    b.records = gen.generate();
    b.unique_bytes = gen.unique_bytes();
    return b;
  }();
  return bundle;
}

/// Ten back-to-back phase traces with disjoint key spaces (Section 3.1).
inline const TraceBundle& phased_trace() {
  static const TraceBundle bundle = [] {
    const Scale s = scale();
    auto base = trace::bg_default(s.num_keys, s.num_requests, /*seed=*/2017);
    TraceBundle b;
    b.records = trace::generate_phased(base, 10);
    // Unique bytes of ONE phase: the paper's cache size ratio is relative
    // to a single trace's footprint.
    trace::TraceGenerator gen(base);
    b.unique_bytes = gen.unique_bytes();
    return b;
  }();
  return bundle;
}

// ---- policy factories -----------------------------------------------------------

inline sim::CacheFactory lru_factory() {
  return [](std::uint64_t cap) {
    return std::make_unique<policy::LruCache>(cap);
  };
}

inline sim::CacheFactory camp_factory(int precision) {
  return [precision](std::uint64_t cap) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    return core::make_camp(config);
  };
}

inline sim::CacheFactory gds_factory() {
  return [](std::uint64_t cap) {
    policy::GdsConfig config;
    config.capacity_bytes = cap;
    return policy::make_gds(config);
  };
}

/// The paper's cost-proportional Pooled LRU built from an offline profile
/// (pools by exact cost value, capacity proportional to request cost mass).
inline sim::CacheFactory pooled_cost_factory(
    const std::vector<trace::TraceRecord>& records) {
  const auto profiler = trace::TraceProfiler::by_cost_value(records);
  const auto weights = profiler.cost_mass_weights();
  const auto mapping = profiler.cost_to_group();
  return [weights, mapping](std::uint64_t cap) {
    return std::make_unique<policy::PooledLruCache>(
        policy::weighted_pools(cap, weights),
        policy::assign_by_cost_value(mapping));
  };
}

/// Uniform-partition Pooled LRU (the paper's other plan).
inline sim::CacheFactory pooled_uniform_factory(
    const std::vector<trace::TraceRecord>& records) {
  const auto profiler = trace::TraceProfiler::by_cost_value(records);
  const std::size_t pools = profiler.groups().size();
  const auto mapping = profiler.cost_to_group();
  return [pools, mapping](std::uint64_t cap) {
    return std::make_unique<policy::PooledLruCache>(
        policy::uniform_pools(cap, pools),
        policy::assign_by_cost_value(mapping));
  };
}

/// Section 3.2's range-based Pooled LRU: ranges [1,100), [100,10K), [10K,+inf),
/// capacities proportional to each range's lowest cost value.
inline sim::CacheFactory pooled_range_factory() {
  const std::vector<std::uint64_t> boundaries{100, 10'000};
  return [boundaries](std::uint64_t cap) {
    return std::make_unique<policy::PooledLruCache>(
        policy::weighted_pools(cap, {1.0, 100.0, 10'000.0}),
        policy::assign_by_cost_range(boundaries));
  };
}

/// Run one simulation and report the paper metrics as counters.
inline void report_point(benchmark::State& state, const sim::Metrics& m) {
  state.counters["cost_miss_ratio"] = m.cost_miss_ratio();
  state.counters["miss_rate"] = m.miss_rate();
  state.counters["requests"] = static_cast<double>(m.requests);
}

}  // namespace camp::bench
