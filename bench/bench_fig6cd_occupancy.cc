// Figures 6c/6d: fraction of cache memory occupied by Trace-File-1 pairs as
// later phase traces run, for cache size ratios 0.25 and 0.75.
//
// Expected shape: LRU drains TF1 fastest; Pooled LRU drops it in steps;
// CAMP drains most of TF1 quickly but keeps a sliver of the
// highest-ratio pairs (<2% at ratio 0.25; <0.6% long-lived at 0.75).
//
// The fig6cd FigureSpec (src/figures/registry.cc) computes the drain
// timeline; the counters here summarise the drain point, and the full
// requests_after_tf2_start timeline is emitted by `camp_figures --figure
// fig6cd` as CSV.
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig6cd"}, argc, argv);
}
