// Figures 6c/6d: fraction of cache memory occupied by Trace-File-1 pairs as
// later phase traces run, for cache size ratios 0.25 and 0.75.
//
// The timeline (x = requests after the start of TF2, y = TF1 fraction) is
// printed as CSV to stdout; counters summarise the drain point.
//
// Expected shape: LRU drains TF1 fastest; Pooled LRU drops it in steps;
// CAMP drains most of TF1 quickly but keeps a sliver of the
// highest-ratio pairs (<2% at ratio 0.25; <0.6% long-lived at 0.75).
#include "bench_common.h"

#include <cstdio>

namespace {

using namespace camp;

void run_point(benchmark::State& state, const std::string& name,
               const sim::CacheFactory& factory, double ratio) {
  const auto& bundle = bench::phased_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  const std::uint64_t phase_len = bundle.records.size() / 10;
  for (auto _ : state) {
    auto cache = factory(cap);
    sim::OccupancyTracker tracker(/*tracked_trace_id=*/0, cap,
                                  /*sample_interval=*/phase_len / 40);
    sim::Simulator simulator(*cache, &tracker);
    simulator.run(bundle.records);
    // Print the timeline relative to the start of TF2 (phase_len requests).
    std::printf("# fig6cd timeline policy=%s ratio=%.2f\n", name.c_str(),
                ratio);
    std::printf("requests_after_tf2_start,tf1_fraction\n");
    for (const auto& sample : tracker.samples()) {
      if (sample.request_index < phase_len) continue;
      std::printf("%llu,%.6f\n",
                  static_cast<unsigned long long>(sample.request_index -
                                                  phase_len),
                  sample.fraction);
    }
    state.counters["drained_at_request"] =
        static_cast<double>(tracker.drained_at());
    state.counters["final_tf1_fraction"] = tracker.current_fraction();
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto& bundle = camp::bench::phased_trace();
  struct Series {
    std::string name;
    camp::sim::CacheFactory factory;
  };
  const std::vector<Series> series{
      {"lru", camp::bench::lru_factory()},
      {"pooled-cost", camp::bench::pooled_cost_factory(bundle.records)},
      {"camp-p5", camp::bench::camp_factory(5)},
  };
  for (const auto& s : series) {
    for (const double ratio : {0.25, 0.75}) {
      benchmark::RegisterBenchmark(
          ("fig6cd/" + s.name + "/ratio=" + std::to_string(ratio)).c_str(),
          [s, ratio](benchmark::State& st) {
            run_point(st, s.name, s.factory, ratio);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
