// Figures 6a/6b: cost-miss ratio and miss rate as a function of the cache
// size ratio under evolving access patterns — ten back-to-back traces over
// disjoint key spaces ("once the simulator switches from TF1 to TF2, none
// of the objects referenced by TF1 are referenced again").
//
// Expected shape: same ordering as Figures 5c/5d — CAMP adapts and keeps
// its cost-miss advantage despite the adversarial phase shifts.
//
// The computation lives in the fig6ab FigureSpec (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig6ab"}, argc, argv);
}
