// Figures 6a/6b: cost-miss ratio and miss rate as a function of the cache
// size ratio under evolving access patterns — ten back-to-back traces over
// disjoint key spaces ("once the simulator switches from TF1 to TF2, none
// of the objects referenced by TF1 are referenced again").
//
// Expected shape: same ordering as Figures 5c/5d — CAMP adapts and keeps
// its cost-miss advantage despite the adversarial phase shifts.
#include "bench_common.h"

namespace {

using namespace camp;

void run_point(benchmark::State& state, const sim::CacheFactory& factory,
               double ratio) {
  const auto& bundle = bench::phased_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    auto cache = factory(cap);
    sim::Simulator simulator(*cache);
    simulator.run(bundle.records);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto& bundle = camp::bench::phased_trace();
  struct Series {
    std::string name;
    camp::sim::CacheFactory factory;
  };
  const std::vector<Series> series{
      {"lru", camp::bench::lru_factory()},
      {"pooled-cost", camp::bench::pooled_cost_factory(bundle.records)},
      {"camp-p5", camp::bench::camp_factory(5)},
  };
  const std::vector<double> ratios{0.05, 0.1, 0.25, 0.5, 0.75, 1.0};
  for (const auto& s : series) {
    for (const double ratio : ratios) {
      benchmark::RegisterBenchmark(
          ("fig6ab/" + s.name + "/ratio=" + std::to_string(ratio)).c_str(),
          [factory = s.factory, ratio](benchmark::State& st) {
            run_point(st, factory, ratio);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
