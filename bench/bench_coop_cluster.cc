// fig_coop_cluster: the networked cooperative-cache cluster as a nodes x
// clients matrix. Each point replays the paper's KVS trace through a
// cluster of KvsStore nodes behind a consistent-hash ClusterClient — the
// KOSAR-style deployment of Section 6's decentralized-CAMP challenge — and
// reports the coop ledger (local/remote/guard hit ratios, transfer bytes,
// guard park/expire/squeeze counts). The `churn` series adds a mid-run
// node join (remote fetches + promotions heal the remapped slice) and a
// decommission (last replicas drain into the guard).
//
// Because bench adapters run with timing enabled, static points also drive
// N REAL cluster-attached worker-pool TCP servers with that many
// concurrent ClusterClients and report `ops_per_sec`.
//
// The computation lives in the fig_coop_cluster FigureSpec
// (src/figures/registry.cc); camp_figures emits its deterministic counters
// for the committed baselines.
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig_coop_cluster"}, argc, argv);
}
