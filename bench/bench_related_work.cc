// Quantitative backing for the related-work discussion (paper Section 5):
// the recency/frequency-only adaptive policies (LRU-K, 2Q, ARC, CLOCK)
// against the cost/size-aware family (GDS, GDSF, GD-Wheel, CAMP) across
// cache sizes on the three-tier trace.
//
// The paper's argument, reproduced as numbers: adaptive recency policies
// improve hit rate for uniform-cost pages but cannot see cost, so their
// cost-miss ratio stays a multiple of CAMP's; the GDS family closes that
// gap, and CAMP delivers it at LRU-grade update cost.
#include "bench_common.h"

#include "policy/policy_factory.h"

namespace {

using namespace camp;

void run_policy_at_ratio(benchmark::State& state, const std::string& spec,
                         double ratio) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap = sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    auto cache = policy::make_policy(spec, cap);
    sim::Simulator simulator(*cache);
    simulator.run(bundle.records);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> specs{"lru",  "clock", "lru-2",
                                       "2q",   "arc",   "gd-wheel",
                                       "gdsf", "gds",   "camp",
                                       "camp-f"};
  for (const double ratio : {0.05, 0.1, 0.25, 0.5}) {
    for (const std::string& spec : specs) {
      benchmark::RegisterBenchmark(
          ("related-work/" + spec + "/ratio=" + std::to_string(ratio))
              .c_str(),
          [spec, ratio](benchmark::State& st) {
            run_policy_at_ratio(st, spec, ratio);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
