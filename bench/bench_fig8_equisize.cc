// Figures 8a/8b: equi-sized key-value pairs with many distinct cost values
// (Section 3.2) — cost-miss ratio and miss rate vs cache size ratio for
// LRU, range-partitioned Pooled LRU, and CAMP.
//
// Expected shape: CAMP's cost-miss ratio is superior everywhere; its miss
// rate is slightly worse than LRU at small caches (it shields expensive
// pairs); range-based Pooled LRU wins on cost-miss at small ratios but
// falls behind both at large ratios.
#include "bench_common.h"

namespace {

using namespace camp;

void run_point(benchmark::State& state, const sim::CacheFactory& factory,
               double ratio) {
  const auto& bundle = bench::equisize_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(ratio, bundle.unique_bytes);
  for (auto _ : state) {
    auto cache = factory(cap);
    sim::Simulator simulator(*cache);
    simulator.run(bundle.records);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  struct Series {
    std::string name;
    camp::sim::CacheFactory factory;
  };
  const std::vector<Series> series{
      {"lru", camp::bench::lru_factory()},
      {"pooled-range", camp::bench::pooled_range_factory()},
      {"camp-p5", camp::bench::camp_factory(5)},
  };
  for (const auto& s : series) {
    for (const double ratio : camp::bench::paper_cache_ratios()) {
      benchmark::RegisterBenchmark(
          ("fig8ab/" + s.name + "/ratio=" + std::to_string(ratio)).c_str(),
          [factory = s.factory, ratio](benchmark::State& st) {
            run_point(st, factory, ratio);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
