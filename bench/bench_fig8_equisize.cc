// Figures 8a/8b: equi-sized key-value pairs with many distinct cost values
// (Section 3.2) — cost-miss ratio and miss rate vs cache size ratio for
// LRU, range-partitioned Pooled LRU, and CAMP.
//
// Expected shape: CAMP's cost-miss ratio is superior everywhere; its miss
// rate is slightly worse than LRU at small caches (it shields expensive
// pairs); range-based Pooled LRU wins on cost-miss at small ratios but
// falls behind both at large ratios.
//
// The computation lives in the fig8ab FigureSpec (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig8ab"}, argc, argv);
}
