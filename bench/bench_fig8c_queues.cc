// Figure 8c: number of LRU queues as a function of precision, comparing the
// three-tier {1,100,10K} trace with the equi-sized/continuous-cost trace.
//
// Expected shape: the continuous-cost trace needs far more queues at high
// precision (many distinct cost-to-size ratios); at low precision both
// traces converge to a handful of queues with no performance loss.
#include "bench_common.h"

namespace {

using namespace camp;

void run_point(benchmark::State& state, const bench::TraceBundle& bundle,
               int precision) {
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.25, bundle.unique_bytes);
  for (auto _ : state) {
    core::CampConfig config;
    config.capacity_bytes = cap;
    config.precision = precision;
    core::CampCache cache(config);
    sim::Simulator simulator(cache);
    simulator.run(bundle.records);
    state.counters["queues"] =
        static_cast<double>(cache.introspect().nonempty_queues);
    bench::report_point(state, simulator.metrics());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<int> precisions{1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                    camp::util::kPrecisionInfinity};
  for (const int p : precisions) {
    const std::string pname =
        p >= camp::util::kPrecisionInfinity ? "inf" : std::to_string(p);
    benchmark::RegisterBenchmark(
        ("fig8c/three-tier/precision=" + pname).c_str(),
        [p](benchmark::State& st) {
          run_point(st, camp::bench::default_trace(), p);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("fig8c/equisize-continuous/precision=" + pname).c_str(),
        [p](benchmark::State& st) {
          run_point(st, camp::bench::equisize_trace(), p);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
