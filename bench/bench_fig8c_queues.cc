// Figure 8c: number of LRU queues as a function of precision, comparing the
// three-tier {1,100,10K} trace with the equi-sized/continuous-cost trace.
//
// Expected shape: the continuous-cost trace needs far more queues at high
// precision (many distinct cost-to-size ratios); at low precision both
// traces converge to a handful of queues with no performance loss.
//
// The computation lives in the fig8c FigureSpec (src/figures/registry.cc).
#include "bench_figure_adapter.h"

int main(int argc, char** argv) {
  return camp::bench::run_figure_bench({"fig8c"}, argc, argv);
}
