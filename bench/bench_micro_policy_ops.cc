// Microbenchmark backing the paper's headline engineering claim: "CAMP is
// as fast as LRU" while GDS pays log(n) heap work on every hit.
//
// Measures steady-state request throughput (get + put-on-miss) for every
// policy on the skewed three-tier trace at a fixed cache ratio.
#include "bench_common.h"

#include "policy/arc.h"
#include "policy/gd_wheel.h"
#include "policy/greedy_dual.h"
#include "policy/lru_k.h"
#include "policy/policy_factory.h"
#include "policy/two_q.h"

namespace {

using namespace camp;

void run_policy(benchmark::State& state, const std::string& spec) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  std::uint64_t processed = 0;
  for (auto _ : state) {
    auto cache = policy::make_policy(spec, cap);
    sim::Simulator simulator(*cache);
    simulator.run(bundle.records);
    processed += simulator.metrics().requests;
    state.counters["cost_miss_ratio"] =
        simulator.metrics().cost_miss_ratio();
    state.counters["miss_rate"] = simulator.metrics().miss_rate();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string spec :
       {"lru", "camp", "camp:p=1", "camp:p=64", "camp-f", "gds", "gdsf",
        "greedy-dual", "arc", "2q", "lru-2", "gd-wheel", "clock",
        "sampled-lru", "sampled-gds", "admit+camp"}) {
    benchmark::RegisterBenchmark(
        ("micro/" + spec).c_str(),
        [spec](benchmark::State& st) { run_policy(st, spec); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
