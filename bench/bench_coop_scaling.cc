// Cooperative caching exploration (paper Section 6: decentralized CAMP in a
// KOSAR-style framework). Three series on the three-tier trace:
//
//   coop/nodes=N        fixed total memory split over N nodes; cooperative
//                       peer fetches vs the monolithic single node
//   coop/guard=on|off   phase-shift workload: the last-replica guard must
//                       preserve live last replicas yet drain cold ones
//   coop/churn          elastic topology: add a node at 1/3 of the trace,
//                       remove one at 2/3; remote hits absorb the remap
#include "bench_common.h"

#include "coop/group.h"

namespace {

using namespace camp;

void run_nodes(benchmark::State& state, std::uint32_t nodes) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t total_cap =
      sim::capacity_for_ratio(0.25, bundle.unique_bytes);
  for (auto _ : state) {
    coop::CoopConfig config;
    config.nodes = nodes;
    config.node_capacity_bytes = std::max<std::uint64_t>(1, total_cap / nodes);
    coop::CoopGroup group(config);
    for (const trace::TraceRecord& r : bundle.records) {
      group.request(r.key, r.size, r.cost);
    }
    const coop::CoopMetrics& m = group.metrics();
    state.counters["cost_miss_ratio"] = m.cost_miss_ratio();
    state.counters["miss_rate"] = m.miss_rate();
    state.counters["remote_hits"] = static_cast<double>(m.remote_hits);
    state.counters["guard_hits"] = static_cast<double>(m.guard_hits);
  }
}

void run_guard(benchmark::State& state, bool guard_on) {
  const auto& bundle = bench::phased_trace();
  const std::uint64_t total_cap =
      sim::capacity_for_ratio(0.5, bundle.unique_bytes);
  for (auto _ : state) {
    coop::CoopConfig config;
    config.nodes = 4;
    config.node_capacity_bytes = std::max<std::uint64_t>(1, total_cap / 4);
    config.preserve_last_replica = guard_on;
    config.guard_lease_requests = bundle.records.size() / 20;
    coop::CoopGroup group(config);
    for (const trace::TraceRecord& r : bundle.records) {
      group.request(r.key, r.size, r.cost);
    }
    const coop::CoopMetrics& m = group.metrics();
    state.counters["cost_miss_ratio"] = m.cost_miss_ratio();
    state.counters["guard_parked"] = static_cast<double>(m.guard_parked);
    state.counters["guard_hits"] = static_cast<double>(m.guard_hits);
    state.counters["guard_expired"] = static_cast<double>(m.guard_expired);
    state.counters["guard_squeezed"] = static_cast<double>(m.guard_squeezed);
    state.counters["guard_left_resident"] =
        static_cast<double>(group.guard_item_count());
  }
}

void run_replication(benchmark::State& state, std::uint32_t replication) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t total_cap =
      sim::capacity_for_ratio(0.25, bundle.unique_bytes);
  for (auto _ : state) {
    coop::CoopConfig config;
    config.nodes = 4;
    config.node_capacity_bytes = std::max<std::uint64_t>(1, total_cap / 4);
    config.replication = replication;
    coop::CoopGroup group(config);
    const std::size_t half = bundle.records.size() / 2;
    std::size_t i = 0;
    for (const trace::TraceRecord& r : bundle.records) {
      if (i == half) group.remove_node(0);  // availability event mid-trace
      group.request(r.key, r.size, r.cost);
      ++i;
    }
    const coop::CoopMetrics& m = group.metrics();
    state.counters["cost_miss_ratio"] = m.cost_miss_ratio();
    state.counters["miss_rate"] = m.miss_rate();
    state.counters["remote_hits"] = static_cast<double>(m.remote_hits);
    state.counters["guard_parked"] = static_cast<double>(m.guard_parked);
  }
}

void run_churn(benchmark::State& state) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t total_cap =
      sim::capacity_for_ratio(0.25, bundle.unique_bytes);
  for (auto _ : state) {
    coop::CoopConfig config;
    config.nodes = 4;
    config.node_capacity_bytes = std::max<std::uint64_t>(1, total_cap / 4);
    coop::CoopGroup group(config);
    const std::size_t third = bundle.records.size() / 3;
    std::size_t i = 0;
    coop::CoopGroup::NodeId added = 0;
    for (const trace::TraceRecord& r : bundle.records) {
      if (i == third) added = group.add_node();
      if (i == 2 * third) group.remove_node(added);
      group.request(r.key, r.size, r.cost);
      ++i;
    }
    const coop::CoopMetrics& m = group.metrics();
    state.counters["cost_miss_ratio"] = m.cost_miss_ratio();
    state.counters["miss_rate"] = m.miss_rate();
    state.counters["remote_hits"] = static_cast<double>(m.remote_hits);
    state.counters["transfer_cost"] = static_cast<double>(m.transfer_cost);
    state.counters["guard_hits"] = static_cast<double>(m.guard_hits);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::uint32_t nodes : {1u, 2u, 4u, 8u}) {
    benchmark::RegisterBenchmark(
        ("coop/nodes=" + std::to_string(nodes)).c_str(),
        [nodes](benchmark::State& st) { run_nodes(st, nodes); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "coop/guard=off",
      [](benchmark::State& st) { run_guard(st, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "coop/guard=on", [](benchmark::State& st) { run_guard(st, true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  for (const std::uint32_t r : {1u, 2u, 3u}) {
    benchmark::RegisterBenchmark(
        ("coop/replication=" + std::to_string(r)).c_str(),
        [r](benchmark::State& st) { run_replication(st, r); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("coop/churn", run_churn)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
