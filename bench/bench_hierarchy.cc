// Two-level hierarchical cache exploration (paper Section 6 future work:
// "extending CAMP for use with a hierarchical cache (using SSD, hard disk,
// or both) which may persist costly data items").
//
// Series, all on the three-tier trace:
//   hierarchy/<l1-policy>/l2=off     RAM only (the paper's main setting)
//   hierarchy/<l1-policy>/l2=4x      L1 + a 4x-larger SSD victim tier
//   hierarchy/demotion=on|off        the design choice DESIGN.md calls out:
//                                    demote L1 victims vs discard them
//
// Total service cost uses the latency model: L1 hit = 1, L2 hit = 30 cost
// units, full miss = the pair's recompute cost — SSD reads are cheap
// relative to the {1, 100, 10K} recompute costs, so a victim tier should
// slash the cost-miss ratio for CAMP (which parks expensive pairs there).
#include "bench_common.h"

#include "policy/policy_factory.h"
#include "sim/hierarchy.h"

namespace {

using namespace camp;

void run_hierarchy(benchmark::State& state, const std::string& l1_spec,
                   bool l2_enabled, bool demote) {
  const auto& bundle = bench::default_trace();
  const std::uint64_t l1_cap =
      sim::capacity_for_ratio(0.1, bundle.unique_bytes);
  for (auto _ : state) {
    sim::HierarchyConfig config;
    config.l1_latency = 1;
    config.l2_latency = 30;
    config.demote_l1_victims = demote;
    // The L2 tier always runs CAMP (it exists to persist costly pairs).
    auto l2 = bench::camp_factory(5)(l2_enabled ? 4 * l1_cap : 1);
    sim::HierarchicalCache cache(policy::make_policy(l1_spec, l1_cap),
                                 std::move(l2), config);
    cache.run(bundle.records);
    const sim::HierarchyMetrics& m = cache.metrics();
    state.counters["cost_miss_ratio"] = m.cost_miss_ratio();
    state.counters["miss_rate"] = m.miss_rate();
    state.counters["l1_hits"] = static_cast<double>(m.l1_hits);
    state.counters["l2_hits"] = static_cast<double>(m.l2_hits);
    state.counters["service_cost"] =
        static_cast<double>(m.total_service_cost);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string l1 : {"lru", "camp"}) {
    benchmark::RegisterBenchmark(
        ("hierarchy/" + l1 + "/l2=off").c_str(),
        [l1](benchmark::State& st) { run_hierarchy(st, l1, false, true); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("hierarchy/" + l1 + "/l2=4x").c_str(),
        [l1](benchmark::State& st) { run_hierarchy(st, l1, true, true); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "hierarchy/camp/demotion=off",
      [](benchmark::State& st) { run_hierarchy(st, "camp", true, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
