// Instrumentation counters shared by the priority-queue implementations.
//
// Figure 4 of the paper plots "number of visited heap nodes" for GDS vs
// CAMP; these counters are maintained by the heaps themselves so the figure
// falls out of the data structures rather than ad-hoc bookkeeping.
#pragma once

#include <cstdint>

namespace camp::heap {

struct HeapStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t updates = 0;
  std::uint64_t erases = 0;
  /// Nodes examined during sift-up/sift-down/merge passes. Every node whose
  /// key is read while restoring the heap property counts once.
  std::uint64_t nodes_visited = 0;

  void reset() noexcept { *this = HeapStats{}; }

  [[nodiscard]] std::uint64_t total_operations() const noexcept {
    return pushes + pops + updates + erases;
  }
};

}  // namespace camp::heap
