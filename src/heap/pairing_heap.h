// Pointer-based pairing heap with handles.
//
// Used in the priority-queue ablation (DESIGN.md §3): the paper motivates
// CAMP by the cost of maintaining a per-item priority queue for GDS; the
// pairing heap is the strongest practical pointer-based contender per the
// Larkin/Sen/Tarjan study the paper cites, so the ablation pits GDS-on-
// pairing-heap against GDS-on-implicit-heap and CAMP.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>

#include "heap/heap_stats.h"

namespace camp::heap {

template <class T, class Less = std::less<T>>
class PairingHeap {
 public:
  struct Node {
    T value;
    Node* child = nullptr;
    Node* sibling = nullptr;
    Node* prev = nullptr;  // parent if first child, else left sibling
  };
  using Handle = Node*;

  PairingHeap() = default;
  explicit PairingHeap(Less less) : less_(std::move(less)) {}
  PairingHeap(const PairingHeap&) = delete;
  PairingHeap& operator=(const PairingHeap&) = delete;
  ~PairingHeap() { destroy(root_); }

  [[nodiscard]] bool empty() const noexcept { return root_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  Handle push(T value) {
    ++stats_.pushes;
    Node* n = new Node{std::move(value)};
    root_ = meld(root_, n);
    ++size_;
    return n;
  }

  [[nodiscard]] const T& top() const noexcept {
    assert(root_ != nullptr);
    return root_->value;
  }

  [[nodiscard]] Handle top_handle() const noexcept { return root_; }

  void pop() {
    assert(root_ != nullptr);
    ++stats_.pops;
    Node* old = root_;
    root_ = combine_siblings(root_->child);
    if (root_ != nullptr) root_->prev = nullptr;
    delete old;
    --size_;
  }

  void erase(Handle h) {
    assert(h != nullptr);
    ++stats_.erases;
    detach(h);
    Node* sub = combine_siblings(h->child);
    if (sub != nullptr) sub->prev = nullptr;
    root_ = meld(root_, sub);
    delete h;
    --size_;
  }

  /// Replace the value at h. Decrease = cut-and-meld; increase = structural
  /// erase + reinsert of the same node (handle stays valid).
  void update(Handle h, T value) {
    assert(h != nullptr);
    ++stats_.updates;
    if (less_(value, h->value)) {
      h->value = std::move(value);
      if (h != root_) {
        detach(h);
        root_ = meld(root_, h);
      }
    } else {
      h->value = std::move(value);
      if (h == root_ && h->child == nullptr) return;
      detach(h);
      Node* sub = combine_siblings(h->child);
      if (sub != nullptr) sub->prev = nullptr;
      h->child = nullptr;
      root_ = meld(meld(root_, sub), h);
    }
  }

  [[nodiscard]] const T& value(Handle h) const noexcept {
    assert(h != nullptr);
    return h->value;
  }

  [[nodiscard]] const HeapStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

 private:
  // Remove h from its parent/sibling chain. h may be the root (no-op then).
  void detach(Node* h) noexcept {
    if (h == root_) {
      root_ = combine_siblings(h->child);
      if (root_ != nullptr) root_->prev = nullptr;
      h->child = nullptr;
      // Caller will meld root_ with h (or delete h).
      return;
    }
    if (h->prev->child == h) {
      h->prev->child = h->sibling;
    } else {
      h->prev->sibling = h->sibling;
    }
    if (h->sibling != nullptr) h->sibling->prev = h->prev;
    h->prev = h->sibling = nullptr;
  }

  Node* meld(Node* a, Node* b) noexcept {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    stats_.nodes_visited += 2;
    if (less_(b->value, a->value)) std::swap(a, b);
    // b becomes the first child of a.
    b->prev = a;
    b->sibling = a->child;
    if (a->child != nullptr) a->child->prev = b;
    a->child = b;
    a->sibling = nullptr;
    a->prev = nullptr;
    return a;
  }

  // Two-pass pairing of a sibling chain.
  Node* combine_siblings(Node* first) noexcept {
    if (first == nullptr) return nullptr;
    // First pass: pair up left to right.
    Node* paired = nullptr;  // stack of pair winners linked via sibling
    Node* cur = first;
    while (cur != nullptr) {
      Node* a = cur;
      Node* b = a->sibling;
      Node* next = (b != nullptr) ? b->sibling : nullptr;
      a->sibling = nullptr;
      a->prev = nullptr;
      if (b != nullptr) {
        b->sibling = nullptr;
        b->prev = nullptr;
      }
      Node* merged = meld(a, b);
      merged->sibling = paired;
      paired = merged;
      cur = next;
    }
    // Second pass: meld right to left.
    Node* result = paired;
    paired = paired->sibling;
    result->sibling = nullptr;
    while (paired != nullptr) {
      Node* next = paired->sibling;
      paired->sibling = nullptr;
      result = meld(result, paired);
      paired = next;
    }
    return result;
  }

  // Iterative teardown: pairing-heap trees can degenerate into O(n)-deep
  // chains, so recursion is not safe at KVS scale.
  static void destroy(Node* n) noexcept {
    Node* pending = n;
    while (pending != nullptr) {
      Node* cur = pending;
      pending = cur->sibling;
      if (cur->child != nullptr) {
        Node* tail = cur->child;
        while (tail->sibling != nullptr) tail = tail->sibling;
        tail->sibling = pending;
        pending = cur->child;
      }
      delete cur;
    }
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Less less_;
  mutable HeapStats stats_;
};

}  // namespace camp::heap
