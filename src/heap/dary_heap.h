// D-ary implicit min-heap with stable handles and visit instrumentation.
//
// This is the priority queue the paper selects for CAMP: "we chose to use an
// 8-ary implicit heap as suggested by the recent study [Larkin, Sen, Tarjan,
// ALENEX 2014]". The heap is "implicit" (array-backed, no pointers); handles
// stay valid while elements move because the heap stores slot ids and a
// slot -> position table.
//
// The same template (Arity = 2) backs the straw-man heap-per-item GDS
// implementation that Figure 4 compares against.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "heap/heap_stats.h"

namespace camp::heap {

template <class T, class Less = std::less<T>, int Arity = 8>
class DaryHeap {
  static_assert(Arity >= 2, "heap arity must be at least 2");

 public:
  using Handle = std::uint32_t;
  static constexpr Handle kInvalidHandle = 0xffffffffu;

  DaryHeap() = default;
  explicit DaryHeap(Less less) : less_(std::move(less)) {}

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Insert a value; returns a handle valid until erase/pop of that element.
  Handle push(T value) {
    ++stats_.pushes;
    const Handle slot = alloc_slot();
    const auto idx = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(Node{std::move(value), slot});
    pos_[slot] = idx;
    sift_up(idx);
    return slot;
  }

  [[nodiscard]] const T& top() const noexcept {
    assert(!empty());
    return heap_.front().value;
  }

  [[nodiscard]] Handle top_handle() const noexcept {
    assert(!empty());
    return heap_.front().slot;
  }

  void pop() {
    assert(!empty());
    ++stats_.pops;
    remove_at(0);
  }

  void erase(Handle h) {
    assert(is_valid(h));
    ++stats_.erases;
    remove_at(pos_[h]);
  }

  /// Replace the value at handle h and restore the heap property.
  void update(Handle h, T value) {
    assert(is_valid(h));
    ++stats_.updates;
    const std::uint32_t idx = pos_[h];
    const bool smaller = less_(value, heap_[idx].value);
    heap_[idx].value = std::move(value);
    if (smaller) {
      sift_up(idx);
    } else {
      sift_down(idx);
    }
  }

  [[nodiscard]] const T& value(Handle h) const noexcept {
    assert(is_valid(h));
    return heap_[pos_[h]].value;
  }

  [[nodiscard]] bool is_valid(Handle h) const noexcept {
    return h < pos_.size() && pos_[h] != kInvalidHandle;
  }

  void clear() noexcept {
    heap_.clear();
    pos_.clear();
    free_slots_.clear();
  }

  [[nodiscard]] const HeapStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  /// Verify the heap property and the slot table; used by tests.
  [[nodiscard]] bool check_invariants() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      const std::size_t parent = (i - 1) / Arity;
      if (less_(heap_[i].value, heap_[parent].value)) return false;
    }
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pos_[heap_[i].slot] != i) return false;
    }
    return true;
  }

 private:
  struct Node {
    T value;
    Handle slot;
  };

  Handle alloc_slot() {
    if (!free_slots_.empty()) {
      const Handle h = free_slots_.back();
      free_slots_.pop_back();
      return h;
    }
    const auto h = static_cast<Handle>(pos_.size());
    pos_.push_back(kInvalidHandle);
    return h;
  }

  void remove_at(std::uint32_t idx) {
    const Handle slot = heap_[idx].slot;
    pos_[slot] = kInvalidHandle;
    free_slots_.push_back(slot);
    const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
    if (idx != last) {
      heap_[idx] = std::move(heap_[last]);
      pos_[heap_[idx].slot] = idx;
      heap_.pop_back();
      // The moved element may need to travel either direction.
      if (idx > 0 &&
          less_(heap_[idx].value, heap_[(idx - 1) / Arity].value)) {
        sift_up(idx);
      } else {
        sift_down(idx);
      }
    } else {
      heap_.pop_back();
    }
  }

  void sift_up(std::uint32_t idx) {
    ++stats_.nodes_visited;  // the node being placed
    while (idx > 0) {
      const std::uint32_t parent = (idx - 1) / Arity;
      ++stats_.nodes_visited;
      if (!less_(heap_[idx].value, heap_[parent].value)) break;
      swap_nodes(idx, parent);
      idx = parent;
    }
  }

  void sift_down(std::uint32_t idx) {
    ++stats_.nodes_visited;  // the node being placed
    const auto n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      const std::uint64_t first =
          static_cast<std::uint64_t>(idx) * Arity + 1;
      if (first >= n) break;
      const std::uint32_t last = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(first + Arity, n));
      std::uint32_t best = static_cast<std::uint32_t>(first);
      for (std::uint32_t c = static_cast<std::uint32_t>(first); c < last;
           ++c) {
        ++stats_.nodes_visited;
        if (less_(heap_[c].value, heap_[best].value)) best = c;
      }
      if (!less_(heap_[best].value, heap_[idx].value)) break;
      swap_nodes(idx, best);
      idx = best;
    }
  }

  void swap_nodes(std::uint32_t a, std::uint32_t b) noexcept {
    using std::swap;
    swap(heap_[a], heap_[b]);
    pos_[heap_[a].slot] = a;
    pos_[heap_[b].slot] = b;
  }

  std::vector<Node> heap_;
  std::vector<std::uint32_t> pos_;  // slot -> heap index
  std::vector<Handle> free_slots_;
  Less less_;
  mutable HeapStats stats_;
};

}  // namespace camp::heap
