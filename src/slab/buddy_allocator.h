// Binary buddy allocator over a contiguous arena — the alternative space
// manager the paper's Section 5 suggests ("one may use a buddy algorithm
// [8] to manage space in combination with CAMP (or LRU)"). Used by the
// allocator ablation bench and available to the KVS engine.
//
// Classic power-of-two scheme: blocks of order k have size
// min_block << k; splitting produces two buddies whose offsets differ in
// exactly bit k; freeing coalesces with a free buddy recursively.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace camp::slab {

struct BuddyConfig {
  std::uint64_t arena_bytes = 64ull << 20;  // rounded down to a power of two
  std::uint32_t min_block_bytes = 64;       // order-0 block size (pow2)
};

struct BuddyBlock {
  std::byte* data = nullptr;
  std::uint64_t offset = 0;
  std::uint32_t order = 0;
  std::uint64_t size = 0;  // min_block << order
};

struct BuddyStats {
  std::uint64_t arena_bytes = 0;
  std::uint64_t allocated_bytes = 0;  // sum of live block sizes
  std::uint64_t live_blocks = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
};

class BuddyAllocator {
 public:
  explicit BuddyAllocator(BuddyConfig config);
  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  /// Allocate the smallest block holding `size` bytes; nullopt when no
  /// block is available (fragmentation or exhaustion).
  [[nodiscard]] std::optional<BuddyBlock> allocate(std::uint64_t size);

  /// Return a block; coalesces with free buddies.
  void free(const BuddyBlock& block);

  [[nodiscard]] const BuddyStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t max_order() const { return max_order_; }
  /// Largest size a single allocation can serve.
  [[nodiscard]] std::uint64_t max_allocation() const {
    return static_cast<std::uint64_t>(config_.min_block_bytes) << max_order_;
  }

 private:
  [[nodiscard]] std::uint32_t order_for(std::uint64_t size) const;
  [[nodiscard]] std::uint64_t buddy_of(std::uint64_t offset,
                                       std::uint32_t order) const;

  BuddyConfig config_;
  std::unique_ptr<std::byte[]> arena_;
  std::uint32_t max_order_ = 0;
  // free_[k] = offsets of free blocks of order k (kept sorted not required;
  // membership checked via the set for O(log) buddy lookup).
  std::vector<std::vector<std::uint64_t>> free_lists_;
  // Bit tracking of free blocks per order for buddy coalescing.
  std::vector<std::vector<bool>> free_map_;
  BuddyStats stats_;
};

}  // namespace camp::slab
