// Twemcache-style slab allocator (paper Section 5).
//
// Memory is carved into fixed-size slabs (default 1 MiB). Each slab is
// assigned to a *slab class* and subdivided into equal chunks; class 0's
// chunk size is min_chunk_size (twemcache: 120 bytes) and each subsequent
// class grows by the growth factor (1.25). An item is stored in the
// smallest class whose chunk fits it.
//
// Allocation follows the paper's step list:
//   1. (expired-item replacement happens at the KVS layer)
//   2. take a free chunk of the class, else
//   3. carve a new slab for the class if the memory budget allows, else
//   4. fail — the caller evicts via its policy (or forces a slab
//      reassignment) and retries.
//
// Once a slab is assigned to a class it keeps that class forever — the
// "slab calcification" failure mode the paper describes. reassign_slab()
// implements twemcache's remedy: evict a random slab of another class and
// re-carve it for the needy class (the callback lets the KVS invalidate the
// victims).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace camp::slab {

struct SlabConfig {
  std::uint64_t memory_limit_bytes = 64ull << 20;  // total slab budget
  std::uint32_t slab_size_bytes = 1u << 20;        // 1 MiB, twemcache default
  std::uint32_t min_chunk_size = 120;              // slab class 0
  double growth_factor = 1.25;
};

/// A chunk reservation: raw storage plus enough identity to free it.
struct Chunk {
  std::byte* data = nullptr;
  std::uint32_t size = 0;        // usable bytes (the class chunk size)
  std::uint32_t slab_class = 0;
  std::uint32_t slab_index = 0;  // global slab id
  std::uint32_t chunk_index = 0;
};

struct SlabClassStats {
  std::uint32_t chunk_size = 0;
  std::uint32_t slabs = 0;
  std::uint64_t free_chunks = 0;
  std::uint64_t used_chunks = 0;
};

class SlabAllocator {
 public:
  explicit SlabAllocator(SlabConfig config);
  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  /// Smallest class whose chunks hold `item_size` bytes, or nullopt when
  /// the item exceeds the largest chunk (one whole slab).
  [[nodiscard]] std::optional<std::uint32_t> class_for(
      std::uint64_t item_size) const;

  /// Reserve a chunk for an item of `item_size` bytes. Returns nullopt when
  /// the item is too large for any class OR the class is out of chunks and
  /// the memory budget is exhausted (caller should evict / reassign).
  [[nodiscard]] std::optional<Chunk> allocate(std::uint64_t item_size);

  /// Return a chunk to its class's free list.
  void free(const Chunk& chunk);

  /// Twemcache's calcification remedy: pick a random slab belonging to a
  /// class other than `needy_class`, invoke `on_evict` for every occupied
  /// chunk on it (the owner must drop those items WITHOUT calling free()),
  /// then re-carve the slab for `needy_class`. Returns false when no other
  /// class owns a slab.
  bool reassign_slab(std::uint32_t needy_class, util::Xoshiro256& rng,
                     const std::function<void(const Chunk&)>& on_evict);

  [[nodiscard]] std::size_t class_count() const { return classes_.size(); }
  [[nodiscard]] SlabClassStats class_stats(std::uint32_t cls) const;
  [[nodiscard]] std::uint64_t allocated_bytes() const {
    return static_cast<std::uint64_t>(slabs_.size()) *
           config_.slab_size_bytes;
  }
  [[nodiscard]] std::uint64_t memory_limit() const {
    return config_.memory_limit_bytes;
  }
  [[nodiscard]] std::uint32_t chunk_size_of_class(std::uint32_t cls) const {
    return classes_.at(cls).chunk_size;
  }
  /// Number of chunks a slab of this class holds.
  [[nodiscard]] std::uint32_t chunks_per_slab(std::uint32_t cls) const;
  [[nodiscard]] std::uint64_t reassignments() const { return reassignments_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> memory;
    std::uint32_t slab_class = 0;
    std::vector<bool> occupied;  // per chunk
    std::uint32_t used = 0;
  };
  struct SlabClass {
    std::uint32_t chunk_size = 0;
    std::vector<std::uint32_t> slab_ids;
    std::vector<Chunk> free_chunks;
    std::uint64_t used_chunks = 0;
  };

  bool grow_class(std::uint32_t cls);  // carve a fresh slab
  void carve_slab(std::uint32_t slab_id, std::uint32_t cls);

  SlabConfig config_;
  std::vector<SlabClass> classes_;
  std::vector<Slab> slabs_;
  std::uint64_t reassignments_ = 0;
};

}  // namespace camp::slab
