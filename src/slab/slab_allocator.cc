#include "slab/slab_allocator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace camp::slab {

SlabAllocator::SlabAllocator(SlabConfig config) : config_(config) {
  if (config.slab_size_bytes == 0 || config.min_chunk_size == 0) {
    throw std::invalid_argument("SlabConfig: zero sizes");
  }
  if (config.min_chunk_size > config.slab_size_bytes) {
    throw std::invalid_argument("SlabConfig: min chunk exceeds slab size");
  }
  if (config.growth_factor <= 1.0) {
    throw std::invalid_argument("SlabConfig: growth factor must be > 1");
  }
  if (config.memory_limit_bytes < config.slab_size_bytes) {
    throw std::invalid_argument("SlabConfig: budget below one slab");
  }
  // Build the class table: chunk sizes grow by the factor, 8-byte aligned,
  // last class spans the whole slab (twemcache's layout).
  double size = config.min_chunk_size;
  while (true) {
    auto chunk = static_cast<std::uint32_t>(size);
    chunk = (chunk + 7u) & ~7u;  // align
    if (chunk >= config.slab_size_bytes) break;
    classes_.push_back(SlabClass{chunk, {}, {}, 0});
    size *= config.growth_factor;
  }
  classes_.push_back(SlabClass{config.slab_size_bytes, {}, {}, 0});
}

std::optional<std::uint32_t> SlabAllocator::class_for(
    std::uint64_t item_size) const {
  if (item_size == 0) return std::nullopt;
  const auto it = std::lower_bound(
      classes_.begin(), classes_.end(), item_size,
      [](const SlabClass& c, std::uint64_t sz) { return c.chunk_size < sz; });
  if (it == classes_.end()) return std::nullopt;
  return static_cast<std::uint32_t>(it - classes_.begin());
}

std::uint32_t SlabAllocator::chunks_per_slab(std::uint32_t cls) const {
  return config_.slab_size_bytes / classes_.at(cls).chunk_size;
}

std::optional<Chunk> SlabAllocator::allocate(std::uint64_t item_size) {
  const auto cls_opt = class_for(item_size);
  if (!cls_opt) return std::nullopt;
  const std::uint32_t cls = *cls_opt;
  SlabClass& sc = classes_[cls];
  if (sc.free_chunks.empty() && !grow_class(cls)) {
    return std::nullopt;  // budget exhausted: caller evicts and retries
  }
  Chunk chunk = sc.free_chunks.back();
  sc.free_chunks.pop_back();
  Slab& slab = slabs_[chunk.slab_index];
  slab.occupied[chunk.chunk_index] = true;
  ++slab.used;
  ++sc.used_chunks;
  return chunk;
}

void SlabAllocator::free(const Chunk& chunk) {
  Slab& slab = slabs_.at(chunk.slab_index);
  if (slab.slab_class != chunk.slab_class) {
    // The slab was reassigned under this chunk; the item is already gone.
    return;
  }
  if (!slab.occupied.at(chunk.chunk_index)) {
    throw std::logic_error("SlabAllocator: double free");
  }
  slab.occupied[chunk.chunk_index] = false;
  --slab.used;
  SlabClass& sc = classes_[chunk.slab_class];
  --sc.used_chunks;
  sc.free_chunks.push_back(chunk);
}

bool SlabAllocator::grow_class(std::uint32_t cls) {
  if (allocated_bytes() + config_.slab_size_bytes >
      config_.memory_limit_bytes) {
    return false;
  }
  const auto slab_id = static_cast<std::uint32_t>(slabs_.size());
  Slab slab;
  slab.memory = std::make_unique<std::byte[]>(config_.slab_size_bytes);
  slabs_.push_back(std::move(slab));
  carve_slab(slab_id, cls);
  return true;
}

void SlabAllocator::carve_slab(std::uint32_t slab_id, std::uint32_t cls) {
  Slab& slab = slabs_[slab_id];
  SlabClass& sc = classes_[cls];
  slab.slab_class = cls;
  const std::uint32_t count = chunks_per_slab(cls);
  slab.occupied.assign(count, false);
  slab.used = 0;
  sc.slab_ids.push_back(slab_id);
  for (std::uint32_t i = 0; i < count; ++i) {
    Chunk chunk;
    chunk.data = slab.memory.get() +
                 static_cast<std::size_t>(i) * sc.chunk_size;
    chunk.size = sc.chunk_size;
    chunk.slab_class = cls;
    chunk.slab_index = slab_id;
    chunk.chunk_index = i;
    sc.free_chunks.push_back(chunk);
  }
}

bool SlabAllocator::reassign_slab(
    std::uint32_t needy_class, util::Xoshiro256& rng,
    const std::function<void(const Chunk&)>& on_evict) {
  // Collect candidate slabs owned by other classes.
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t id = 0; id < slabs_.size(); ++id) {
    if (slabs_[id].slab_class != needy_class) candidates.push_back(id);
  }
  if (candidates.empty()) return false;
  const std::uint32_t victim_id = candidates[static_cast<std::size_t>(
      rng.below(candidates.size()))];
  Slab& victim = slabs_[victim_id];
  const std::uint32_t old_cls = victim.slab_class;
  SlabClass& old_sc = classes_[old_cls];

  // Invalidate resident items.
  for (std::uint32_t i = 0; i < victim.occupied.size(); ++i) {
    if (!victim.occupied[i]) continue;
    Chunk chunk;
    chunk.data = victim.memory.get() +
                 static_cast<std::size_t>(i) * old_sc.chunk_size;
    chunk.size = old_sc.chunk_size;
    chunk.slab_class = old_cls;
    chunk.slab_index = victim_id;
    chunk.chunk_index = i;
    if (on_evict) on_evict(chunk);
    --old_sc.used_chunks;
  }
  // Drop the victim's free chunks from the old class's free list and the
  // slab from its id list.
  std::erase_if(old_sc.free_chunks, [victim_id](const Chunk& c) {
    return c.slab_index == victim_id;
  });
  std::erase(old_sc.slab_ids, victim_id);

  carve_slab(victim_id, needy_class);
  ++reassignments_;
  return true;
}

SlabClassStats SlabAllocator::class_stats(std::uint32_t cls) const {
  const SlabClass& sc = classes_.at(cls);
  return SlabClassStats{sc.chunk_size,
                        static_cast<std::uint32_t>(sc.slab_ids.size()),
                        sc.free_chunks.size(), sc.used_chunks};
}

}  // namespace camp::slab
