#include "slab/buddy_allocator.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/bitops.h"

namespace camp::slab {

BuddyAllocator::BuddyAllocator(BuddyConfig config) : config_(config) {
  if (!util::is_pow2(config.min_block_bytes)) {
    throw std::invalid_argument("BuddyConfig: min block must be pow2");
  }
  if (config.arena_bytes < config.min_block_bytes) {
    throw std::invalid_argument("BuddyConfig: arena below one block");
  }
  // Round arena down to a power of two multiple of the min block.
  std::uint64_t usable = std::bit_floor(config.arena_bytes);
  max_order_ = static_cast<std::uint32_t>(
      util::floor_log2(usable / config.min_block_bytes));
  usable = static_cast<std::uint64_t>(config.min_block_bytes) << max_order_;
  arena_ = std::make_unique<std::byte[]>(usable);
  stats_.arena_bytes = usable;

  free_lists_.resize(max_order_ + 1);
  free_map_.resize(max_order_ + 1);
  for (std::uint32_t k = 0; k <= max_order_; ++k) {
    const std::uint64_t blocks = usable / (static_cast<std::uint64_t>(
                                              config.min_block_bytes)
                                           << k);
    free_map_[k].assign(static_cast<std::size_t>(blocks), false);
  }
  // One free block of the top order.
  free_lists_[max_order_].push_back(0);
  free_map_[max_order_][0] = true;
}

std::uint32_t BuddyAllocator::order_for(std::uint64_t size) const {
  std::uint64_t block = config_.min_block_bytes;
  std::uint32_t order = 0;
  while (block < size) {
    block <<= 1;
    ++order;
  }
  return order;
}

std::uint64_t BuddyAllocator::buddy_of(std::uint64_t offset,
                                       std::uint32_t order) const {
  const std::uint64_t size = static_cast<std::uint64_t>(
                                 config_.min_block_bytes)
                             << order;
  return offset ^ size;
}

std::optional<BuddyBlock> BuddyAllocator::allocate(std::uint64_t size) {
  if (size == 0 || size > max_allocation()) return std::nullopt;
  const std::uint32_t want = order_for(size);
  // Find the smallest order >= want with a free block.
  std::uint32_t k = want;
  while (k <= max_order_ && free_lists_[k].empty()) ++k;
  if (k > max_order_) return std::nullopt;
  std::uint64_t offset = free_lists_[k].back();
  free_lists_[k].pop_back();
  free_map_[k][static_cast<std::size_t>(
      offset / (static_cast<std::uint64_t>(config_.min_block_bytes) << k))] =
      false;
  // Split down to the wanted order.
  while (k > want) {
    --k;
    ++stats_.splits;
    const std::uint64_t half =
        static_cast<std::uint64_t>(config_.min_block_bytes) << k;
    const std::uint64_t right = offset + half;
    free_lists_[k].push_back(right);
    free_map_[k][static_cast<std::size_t>(right / half)] = true;
  }
  const std::uint64_t block_size =
      static_cast<std::uint64_t>(config_.min_block_bytes) << want;
  ++stats_.live_blocks;
  stats_.allocated_bytes += block_size;
  return BuddyBlock{arena_.get() + offset, offset, want, block_size};
}

void BuddyAllocator::free(const BuddyBlock& block) {
  std::uint64_t offset = block.offset;
  std::uint32_t order = block.order;
  --stats_.live_blocks;
  stats_.allocated_bytes -= block.size;
  // Coalesce upward while the buddy is free.
  while (order < max_order_) {
    const std::uint64_t buddy = buddy_of(offset, order);
    const std::uint64_t block_size =
        static_cast<std::uint64_t>(config_.min_block_bytes) << order;
    const auto buddy_idx = static_cast<std::size_t>(buddy / block_size);
    if (!free_map_[order][buddy_idx]) break;
    // Remove buddy from its free list.
    auto& list = free_lists_[order];
    list.erase(std::find(list.begin(), list.end(), buddy));
    free_map_[order][buddy_idx] = false;
    offset = std::min(offset, buddy);
    ++order;
    ++stats_.merges;
  }
  const std::uint64_t merged_size =
      static_cast<std::uint64_t>(config_.min_block_bytes) << order;
  free_lists_[order].push_back(offset);
  free_map_[order][static_cast<std::size_t>(offset / merged_size)] = true;
}

}  // namespace camp::slab
