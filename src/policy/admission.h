// Admission control (the paper's Section 6 future-work direction):
// "admission control policies in conjunction with CAMP ... by not inserting
// unpopular key-value pairs that are evicted before their next request."
//
// AdmissionFilter is a decorator around any ICache. It combines:
//   * a doorkeeper: a pair is admitted only on its second put attempt
//     within a sliding window (one-hit wonders never enter the cache), and
//   * a cost-to-size bypass: pairs whose cost/size ratio is at or above a
//     threshold are admitted immediately (an expensive miss is exactly what
//     the cache exists to prevent).
//
// The doorkeeper uses a pair of alternating hash-bit windows (a standard
// aging Bloom-filter scheme): inserts go to the active window, lookups
// check both, and the stale window is cleared every `window_ops`
// operations. False positives mildly over-admit; never under-admit
// persistently.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "policy/cache_iface.h"
#include "util/sketch.h"

namespace camp::policy {

struct AdmissionConfig {
  /// Doorkeeper bit-array size per window (bits, rounded up to 64).
  std::size_t doorkeeper_bits = 1u << 20;
  /// Swap/clear windows every this many put attempts.
  std::uint64_t window_ops = 1u << 18;
  /// Pairs with cost * bypass_ratio_denominator >= size * numerator are
  /// admitted without the doorkeeper test. Set numerator to 0 to disable
  /// the bypass; defaults admit anything whose cost >= its size.
  std::uint64_t bypass_ratio_numerator = 1;
  std::uint64_t bypass_ratio_denominator = 1;
  /// Admit on the Nth put attempt within the sliding history. 2 uses the
  /// doorkeeper alone; >= 3 switches to a count-min frequency sketch so
  /// keys must prove themselves N-1 times (TinyLFU-style aging applies).
  std::uint32_t min_attempts = 2;
  /// Count-min geometry, used when min_attempts >= 3.
  std::size_t sketch_width = 1u << 16;
  int sketch_depth = 4;
};

class AdmissionFilter final : public ICache {
 public:
  AdmissionFilter(std::unique_ptr<ICache> inner, AdmissionConfig config);

  bool get(Key key) override { return inner_->get(key); }
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override {
    return inner_->contains(key);
  }
  void erase(Key key) override { inner_->erase(key); }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return inner_->used_bytes();
  }
  [[nodiscard]] std::size_t item_count() const override {
    return inner_->item_count();
  }
  [[nodiscard]] const CacheStats& stats() const override {
    return inner_->stats();
  }
  [[nodiscard]] std::string name() const override {
    return "admit+" + inner_->name();
  }
  void set_eviction_listener(EvictionListener listener) override {
    inner_->set_eviction_listener(std::move(listener));
  }

  [[nodiscard]] std::uint64_t denied_puts() const noexcept { return denied_; }
  [[nodiscard]] ICache& inner() noexcept { return *inner_; }

 private:
  [[nodiscard]] bool seen_recently(Key key) const;
  void remember(Key key);
  void maybe_rotate();
  [[nodiscard]] bool bypass(std::uint64_t size, std::uint64_t cost) const;

  std::unique_ptr<ICache> inner_;
  AdmissionConfig config_;
  std::vector<std::uint64_t> window_[2];
  int active_ = 0;
  std::uint64_t ops_in_window_ = 0;
  std::uint64_t denied_ = 0;
  // Frequency sketch, allocated only for min_attempts >= 3.
  std::optional<util::CountMinSketch> sketch_;
};

}  // namespace camp::policy
