#include "policy/two_q.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace camp::policy {

TwoQCache::TwoQCache(TwoQConfig config)
    : CacheBase(config.capacity_bytes), config_(config) {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("TwoQConfig: capacity must be > 0");
  }
  if (config.kin_fraction <= 0.0 || config.kin_fraction >= 1.0) {
    throw std::invalid_argument("TwoQConfig: kin_fraction must be in (0,1)");
  }
  kin_bytes_ = static_cast<std::uint64_t>(
      static_cast<double>(config.capacity_bytes) * config.kin_fraction);
  kin_bytes_ = std::max<std::uint64_t>(kin_bytes_, 1);
  kout_bytes_ = static_cast<std::uint64_t>(
      static_cast<double>(config.capacity_bytes) * config.kout_fraction);
}

bool TwoQCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  // 2Q: a hit in Am refreshes recency; a hit in A1in deliberately does not
  // (the pair proves itself by being re-referenced after leaving A1in).
  if (e.where == Where::kAm) am_.move_to_back(e);
  return true;
}

bool TwoQCache::put(Key key, std::uint64_t size, std::uint64_t /*cost*/) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  const auto ghost_it = ghost_index_.find(key);
  const bool hot = ghost_it != ghost_index_.end();
  if (hot) {
    ghost_bytes_ -= ghost_it->second.size;
    ghosts_.remove(ghost_it->second);
    ghost_index_.erase(ghost_it);
  }
  make_room(size);
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  if (hot) {
    e.where = Where::kAm;
    am_.push_back(e);
    am_bytes_ += size;
  } else {
    e.where = Where::kA1in;
    a1in_.push_back(e);
    in_bytes_ += size;
  }
  used_ += size;
  return true;
}

bool TwoQCache::contains(Key key) const { return index_.contains(key); }

void TwoQCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  Entry& e = it->second;
  if (e.where == Where::kA1in) {
    a1in_.remove(e);
    in_bytes_ -= e.size;
  } else {
    am_.remove(e);
    am_bytes_ -= e.size;
  }
  used_ -= e.size;
  index_.erase(it);
}

std::size_t TwoQCache::item_count() const { return index_.size(); }

void TwoQCache::make_room(std::uint64_t size) {
  while (used_ + size > capacity_) {
    if (in_bytes_ > kin_bytes_ && !a1in_.empty()) {
      demote_a1in_head();
    } else if (!am_.empty()) {
      evict_am_lru();
    } else if (!a1in_.empty()) {
      demote_a1in_head();
    } else {
      break;  // cache empty; caller's size <= capacity so this ends the loop
    }
  }
}

void TwoQCache::demote_a1in_head() {
  Entry* victim = a1in_.front();
  assert(victim != nullptr);
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  a1in_.remove(*victim);
  in_bytes_ -= vsize;
  index_.erase(vkey);
  push_ghost(vkey, vsize);
  note_eviction(vkey, vsize);
}

void TwoQCache::evict_am_lru() {
  Entry* victim = am_.front();
  assert(victim != nullptr);
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  am_.remove(*victim);
  am_bytes_ -= vsize;
  index_.erase(vkey);
  note_eviction(vkey, vsize);  // Am victims are NOT remembered in A1out
}

void TwoQCache::push_ghost(Key key, std::uint64_t size) {
  if (kout_bytes_ == 0) return;
  auto [it, inserted] = ghost_index_.try_emplace(key);
  if (!inserted) {
    ghost_bytes_ -= it->second.size;
    ghosts_.remove(it->second);
  }
  Ghost& g = it->second;
  g.key = key;
  g.size = size;
  ghosts_.push_back(g);
  ghost_bytes_ += size;
  trim_ghosts();
}

void TwoQCache::trim_ghosts() {
  while (ghost_bytes_ > kout_bytes_ && !ghosts_.empty()) {
    Ghost* g = ghosts_.front();
    ghost_bytes_ -= g->size;
    ghosts_.remove(*g);
    ghost_index_.erase(g->key);
  }
}

}  // namespace camp::policy
