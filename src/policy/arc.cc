#include "policy/arc.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace camp::policy {

ArcCache::ArcCache(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("ArcCache: capacity must be > 0");
  }
}

bool ArcCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  // Case I: hit in T1 or T2 promotes to MRU of T2.
  if (e.where == Where::kT1) {
    t1_.remove(e);
    t1_bytes_ -= e.size;
    e.where = Where::kT2;
    t2_.push_back(e);
    t2_bytes_ += e.size;
  } else {
    t2_.move_to_back(e);
  }
  return true;
}

bool ArcCache::put(Key key, std::uint64_t size, std::uint64_t /*cost*/) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);

  const auto git = ghost_index_.find(key);
  bool to_t2 = false;
  bool was_b2 = false;
  if (git != ghost_index_.end()) {
    Ghost& g = git->second;
    // Cases II/III: ghost hit steers the adaptation target p.
    if (g.from_t1) {
      const std::uint64_t ratio =
          b1_bytes_ == 0 ? 1 : std::max<std::uint64_t>(1, b2_bytes_ / b1_bytes_);
      p_ = std::min(capacity_, p_ + ratio * g.size);
    } else {
      const std::uint64_t ratio =
          b2_bytes_ == 0 ? 1 : std::max<std::uint64_t>(1, b1_bytes_ / b2_bytes_);
      const std::uint64_t delta = ratio * g.size;
      p_ = delta > p_ ? 0 : p_ - delta;
      was_b2 = true;
    }
    remove_ghost(g);
    to_t2 = true;
  }

  while (used_ + size > capacity_) replace(was_b2, size);

  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  if (to_t2) {
    e.where = Where::kT2;
    t2_.push_back(e);
    t2_bytes_ += size;
  } else {
    e.where = Where::kT1;
    t1_.push_back(e);
    t1_bytes_ += size;
  }
  used_ += size;
  trim_ghosts();
  return true;
}

bool ArcCache::contains(Key key) const { return index_.contains(key); }

void ArcCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  Entry& e = it->second;
  if (e.where == Where::kT1) {
    t1_.remove(e);
    t1_bytes_ -= e.size;
  } else {
    t2_.remove(e);
    t2_bytes_ -= e.size;
  }
  used_ -= e.size;
  index_.erase(it);
}

std::size_t ArcCache::item_count() const { return index_.size(); }

// REPLACE from the ARC paper: evict from T1 when it exceeds its target p
// (or meets it exactly on a B2 ghost hit), otherwise from T2.
void ArcCache::replace(bool requested_in_b2, std::uint64_t /*incoming*/) {
  const bool t1_over =
      !t1_.empty() &&
      (t1_bytes_ > p_ || (requested_in_b2 && t1_bytes_ == p_ && p_ > 0));
  if ((t1_over || t2_.empty()) && !t1_.empty()) {
    evict_to_ghost(Where::kT1);
  } else if (!t2_.empty()) {
    evict_to_ghost(Where::kT2);
  } else {
    assert(!t1_.empty() && "replace() called on an empty cache");
    evict_to_ghost(Where::kT1);
  }
}

void ArcCache::evict_to_ghost(Where from) {
  auto& list = from == Where::kT1 ? t1_ : t2_;
  auto& bytes = from == Where::kT1 ? t1_bytes_ : t2_bytes_;
  Entry* victim = list.front();
  assert(victim != nullptr);
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  list.remove(*victim);
  bytes -= vsize;
  index_.erase(vkey);

  auto [git, inserted] = ghost_index_.try_emplace(vkey);
  if (!inserted) {
    // Key somehow already ghosted (e.g. erase + reinsert churn): refresh it.
    Ghost& old = git->second;
    (old.from_t1 ? b1_ : b2_).remove(old);
    (old.from_t1 ? b1_bytes_ : b2_bytes_) -= old.size;
  }
  Ghost& g = git->second;
  g.key = vkey;
  g.size = vsize;
  g.from_t1 = (from == Where::kT1);
  (g.from_t1 ? b1_ : b2_).push_back(g);
  (g.from_t1 ? b1_bytes_ : b2_bytes_) += vsize;

  note_eviction(vkey, vsize);
}

void ArcCache::remove_ghost(Ghost& g) {
  (g.from_t1 ? b1_ : b2_).remove(g);
  (g.from_t1 ? b1_bytes_ : b2_bytes_) -= g.size;
  ghost_index_.erase(g.key);
}

void ArcCache::trim_ghosts() {
  // Directory bound: resident + ghosts <= 2c. Prefer trimming the side
  // whose resident list is already over target, mirroring Case IV.
  while (b1_bytes_ + b2_bytes_ > capacity_) {
    if (b1_bytes_ >= b2_bytes_ && !b1_.empty()) {
      remove_ghost(*b1_.front());
    } else if (!b2_.empty()) {
      remove_ghost(*b2_.front());
    } else if (!b1_.empty()) {
      remove_ghost(*b1_.front());
    } else {
      break;
    }
  }
}

}  // namespace camp::policy
