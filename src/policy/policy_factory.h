// String-spec factory for eviction policies, used by the sweep driver, the
// examples and the KVS server's command line.
//
// Recognised specs (case-sensitive):
//   "lru"              plain LRU
//   "camp"             CAMP with the paper's defaults (precision 5)
//   "camp:p=<n>"       CAMP with precision n (n >= 64 means no rounding)
//   "camp:p=auto"      self-tuning CAMP: precision picked at runtime by
//                      sampled shadow caches + set dueling (core/auto_tuner.h)
//                      over the default candidate set {1,2,5,64}, starting
//                      at 5
//   "camp:p=auto:candidates=<n>,<n>,..."
//                      self-tuning CAMP over an explicit candidate set,
//                      starting at the first listed candidate
//   "camp-f"           frequency-aware CAMP (GDSF scoring, CAMP machinery)
//   "camp-f:p=<n>"     frequency-aware CAMP with precision n
//   "camp-mt"          thread-safe CAMP (Section 4.1 design), precision 5
//   "camp-mt:p=<n>"    thread-safe CAMP with precision n
//   "camp-mt:q=<n>"    thread-safe CAMP with n physical sub-queues per ratio
//                      (p and q parameters combine in any order)
//   "gds"              Greedy Dual Size, arbitrary tie-break
//   "gds:lru"          Greedy Dual Size with LRU tie-break
//   "gdsf"             Greedy-Dual-Size-Frequency (Squid's GDS variant)
//   "greedy-dual"      Young's Greedy Dual (cost-only priorities)
//   "arc"              ARC
//   "2q"               2Q with default fractions
//   "lru-<k>"          LRU-K, e.g. "lru-2"
//   "gd-wheel"         GD-Wheel with default wheel geometry
//   "clock"            CLOCK / second-chance
//   "sampled-lru"      Redis-style sampled LRU (5 samples)
//   "sampled-gds"      sampled cost-aware eviction (idle * size / cost)
//   "admit+<spec>"     admission filter wrapped around any of the above
//
// Malformed camp-family parameters (p=0, non-numeric, trailing garbage,
// unknown key= tokens, duplicates) throw std::invalid_argument with a
// message naming the offending token — never a silent fallback.
//
// Pooled LRU is intentionally absent: its pool plan requires offline trace
// knowledge (see trace::TraceProfiler), so benches construct it directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy/cache_iface.h"

namespace camp::policy {

/// Build a cache from a spec string. Throws std::invalid_argument on an
/// unknown spec.
[[nodiscard]] std::unique_ptr<ICache> make_policy(const std::string& spec,
                                                  std::uint64_t capacity_bytes);

/// A reusable capacity -> cache factory for `spec`. For most specs this is
/// just a make_policy binding, but for the self-tuning "camp:p=auto..."
/// spec every cache the SAME returned factory builds shares ONE duel state
/// (core::SharedAutoTuner): a sharded wrapper calling it once per shard
/// gets shards that register their capacities with, feed, and are migrated
/// by a single tuner, so the psel trace is independent of the shard count.
/// (Calling make_policy per shard instead would duel each shard's
/// partitioned sample stream separately.)
[[nodiscard]] std::function<std::unique_ptr<ICache>(std::uint64_t)>
make_policy_factory(const std::string& spec);

/// All specs make_policy accepts with default parameters; used by help
/// output and the comparison example.
[[nodiscard]] std::vector<std::string> known_policy_specs();

}  // namespace camp::policy
