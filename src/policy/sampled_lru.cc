#include "policy/sampled_lru.h"

#include <cassert>
#include <stdexcept>

namespace camp::policy {

SampledLruCache::SampledLruCache(SampledLruConfig config)
    : CacheBase(config.capacity_bytes),
      config_(config),
      rng_(config.seed) {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("SampledLruConfig: capacity must be > 0");
  }
  if (config.sample_size < 1) {
    throw std::invalid_argument("SampledLruConfig: sample_size must be >= 1");
  }
}

bool SampledLruCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  it->second.last_tick = ++tick_;  // the whole cost of a hit
  return true;
}

bool SampledLruCache::put(Key key, std::uint64_t size, std::uint64_t cost) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  while (used_ + size > capacity_) evict_one();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.cost = cost == 0 ? 1 : cost;
  e.last_tick = ++tick_;
  e.slot = keys_.size();
  keys_.push_back(key);
  used_ += size;
  return true;
}

bool SampledLruCache::contains(Key key) const { return index_.contains(key); }

// Drops the entry from the index and the dense sampling array. Byte
// accounting is the caller's job: erase() subtracts directly while
// evict_one() goes through note_eviction (which also fires the listener).
void SampledLruCache::remove_entry(Key key) {
  const auto it = index_.find(key);
  assert(it != index_.end());
  const std::size_t slot = it->second.slot;
  // Swap-remove from the dense key array; fix the moved key's slot.
  keys_[slot] = keys_.back();
  index_.at(keys_[slot]).slot = slot;
  keys_.pop_back();
  index_.erase(it);
}

void SampledLruCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  used_ -= it->second.size;
  remove_entry(key);
}

std::size_t SampledLruCache::item_count() const { return index_.size(); }

bool SampledLruCache::evict_one() {
  if (keys_.empty()) return false;
  const Entry* victim = nullptr;
  double victim_score = -1.0;
  const int samples =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(config_.sample_size), keys_.size()));
  for (int i = 0; i < samples; ++i) {
    const Key key = keys_[static_cast<std::size_t>(rng_.below(keys_.size()))];
    const Entry& e = index_.at(key);
    const double idle = static_cast<double>(tick_ - e.last_tick) + 1.0;
    const double score =
        config_.cost_aware
            ? idle * static_cast<double>(e.size) / static_cast<double>(e.cost)
            : idle;
    if (score > victim_score) {
      victim_score = score;
      victim = &e;
    }
  }
  assert(victim != nullptr);
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  remove_entry(vkey);
  note_eviction(vkey, vsize);
  return true;
}

}  // namespace camp::policy
