// Belady's MIN — the clairvoyant offline policy. Given the full future
// request sequence, it evicts the resident pair whose next reference is
// farthest away (never-referenced-again first).
//
// MIN is optimal for uniform sizes and costs only; with variable sizes it
// is a greedy heuristic (true offline optimality is NP-hard there), and it
// ignores costs entirely. It is included as the miss-rate lower-bound
// reference series in the extended benches, not as a paper figure.
//
// Usage contract: construct with the exact sequence of keys that will be
// passed to get(); each get() consumes one position. put() must follow a
// miss before the next get(), mirroring the simulator's loop.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/dary_heap.h"
#include "policy/cache_iface.h"

namespace camp::policy {

class BeladyCache final : public CacheBase {
 public:
  BeladyCache(std::uint64_t capacity_bytes, std::vector<Key> future_gets);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override { return "belady-min"; }

  /// Position of the next get() in the supplied future sequence.
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }

 private:
  static constexpr std::uint64_t kNever = ~0ull;

  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint32_t handle = 0;
  };
  struct VictimKey {
    std::uint64_t next_use = 0;  // larger = farther = evict first
    Key key = 0;
  };
  struct VictimGreater {  // max-heap on next_use
    bool operator()(const VictimKey& a, const VictimKey& b) const noexcept {
      return a.next_use > b.next_use;
    }
  };

  /// First position > from at which `key` is requested, or kNever.
  [[nodiscard]] std::uint64_t next_use_after(Key key,
                                             std::size_t from) const;
  void evict_victim();

  std::vector<Key> future_;
  // key -> sorted positions in future_ (for next-use binary search)
  std::unordered_map<Key, std::vector<std::uint32_t>> positions_;
  std::unordered_map<Key, Entry> index_;
  heap::DaryHeap<VictimKey, VictimGreater, 2> heap_;
  std::size_t cursor_ = 0;
};

}  // namespace camp::policy
