#include "policy/gds.h"

#include <cassert>

namespace camp::policy {

GdsCache::GdsCache(GdsConfig config)
    : CacheBase(config.capacity_bytes),
      config_(config),
      heap_(ItemKeyLess{config.lru_tie_break}) {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("GdsConfig: capacity_bytes must be > 0");
  }
  if (config.precision < 1) {
    throw std::invalid_argument("GdsConfig: precision must be >= 1");
  }
}

std::uint64_t GdsCache::rounded_ratio(std::uint64_t cost,
                                      std::uint64_t size) const {
  return scaler_.scale_and_round(cost, size, config_.precision);
}

bool GdsCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  // Algorithm 1 line 2: L <- min H over the pairs other than p. Remove p's
  // node, read the minimum, then reinsert with the refreshed priority —
  // exactly the per-hit heap traffic Figure 4 charges GDS for.
  heap_.erase(e.handle);
  if (!heap_.empty() && heap_.top().h > inflation_) {
    inflation_ = heap_.top().h;
  }
  e.h = inflation_ + rounded_ratio(e.cost, e.size);
  e.handle = heap_.push(ItemKey{e.h, ++seq_, key});
  return true;
}

bool GdsCache::put(Key key, std::uint64_t size, std::uint64_t cost) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  scaler_.observe_size(size);
  const std::uint64_t ratio = rounded_ratio(cost, size);
  while (used_ + size > capacity_) evict_one();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.cost = cost;
  e.h = inflation_ + ratio;
  e.handle = heap_.push(ItemKey{e.h, ++seq_, key});
  used_ += size;
  return true;
}

bool GdsCache::contains(Key key) const { return index_.contains(key); }

void GdsCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  heap_.erase(it->second.handle);
  used_ -= it->second.size;
  index_.erase(it);
}

std::size_t GdsCache::item_count() const { return index_.size(); }

std::string GdsCache::name() const {
  if (config_.precision >= util::kPrecisionInfinity) return "gds";
  return "gds(p=" + std::to_string(config_.precision) + ")";
}

std::optional<Key> GdsCache::peek_victim() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.top().key;
}

std::uint64_t GdsCache::priority_of(Key key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.h;
}

bool GdsCache::evict_one() {
  if (heap_.empty()) return false;
  const ItemKey top = heap_.top();
  if (top.h > inflation_) inflation_ = top.h;  // L <- H of the evicted min
  const auto it = index_.find(top.key);
  assert(it != index_.end());
  const std::uint64_t vsize = it->second.size;
  heap_.pop();
  index_.erase(it);
  note_eviction(top.key, vsize);
  return true;
}

std::unique_ptr<ICache> make_gds(GdsConfig config) {
  return std::make_unique<GdsCache>(config);
}

}  // namespace camp::policy
