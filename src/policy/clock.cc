#include "policy/clock.h"

#include <cassert>
#include <stdexcept>

namespace camp::policy {

ClockCache::ClockCache(std::uint64_t capacity_bytes)
    : CacheBase(capacity_bytes) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("ClockCache: capacity must be > 0");
  }
}

bool ClockCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  it->second.referenced = true;  // the whole cost of a CLOCK hit
  return true;
}

bool ClockCache::put(Key key, std::uint64_t size, std::uint64_t /*cost*/) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  while (used_ + size > capacity_) evict_one();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.referenced = false;  // fresh pages start unreferenced (classic CLOCK)
  ring_.push_back(e);
  used_ += size;
  return true;
}

bool ClockCache::contains(Key key) const { return index_.contains(key); }

void ClockCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  ring_.remove(it->second);
  used_ -= it->second.size;
  index_.erase(it);
}

std::size_t ClockCache::item_count() const { return index_.size(); }

bool ClockCache::evict_one() {
  // Sweep: give referenced entries a second chance (clear + rotate), evict
  // the first unreferenced one. Terminates within two laps.
  while (Entry* candidate = ring_.front()) {
    ++hand_steps_;
    if (candidate->referenced) {
      candidate->referenced = false;
      ring_.move_to_back(*candidate);
      continue;
    }
    const Key vkey = candidate->key;
    const std::uint64_t vsize = candidate->size;
    ring_.remove(*candidate);
    index_.erase(vkey);
    note_eviction(vkey, vsize);
    return true;
  }
  return false;
}

}  // namespace camp::policy
