#include "policy/pooled_lru.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace camp::policy {

std::uint64_t PooledLruCache::total_capacity(
    const std::vector<PoolConfig>& pools) {
  return std::accumulate(pools.begin(), pools.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const PoolConfig& p) {
                           return acc + p.capacity_bytes;
                         });
}

PooledLruCache::PooledLruCache(std::vector<PoolConfig> pools,
                               PoolAssigner assigner)
    : CacheBase(total_capacity(pools)), assigner_(std::move(assigner)) {
  if (pools.empty()) {
    throw std::invalid_argument("PooledLruCache: need at least one pool");
  }
  if (!assigner_) {
    throw std::invalid_argument("PooledLruCache: assigner must be callable");
  }
  pools_.resize(pools.size());
  for (std::size_t i = 0; i < pools.size(); ++i) {
    pools_[i].config = std::move(pools[i]);
  }
}

bool PooledLruCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  Pool& pool = pools_[e.pool];
  ++pool.gets;
  ++pool.hits;
  pool.lru.move_to_back(e);
  return true;
}

bool PooledLruCache::put(Key key, std::uint64_t size, std::uint64_t cost) {
  ++stats_.puts;
  const std::size_t pool_idx = assigner_(key, size, cost);
  if (pool_idx >= pools_.size()) {
    throw std::out_of_range("PooledLruCache: assigner returned bad pool");
  }
  Pool& pool = pools_[pool_idx];
  if (size == 0 || size > pool.config.capacity_bytes) {
    // Pair does not fit in its pool — with static partitions that is a
    // permanent rejection (this is exactly the calcification-style failure
    // mode CAMP avoids).
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  while (pool.used + size > pool.config.capacity_bytes) evict_one(pool);
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.pool = pool_idx;
  pool.lru.push_back(e);
  pool.used += size;
  ++pool.items;
  used_ += size;
  return true;
}

bool PooledLruCache::contains(Key key) const { return index_.contains(key); }

void PooledLruCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  Entry& e = it->second;
  Pool& pool = pools_[e.pool];
  pool.lru.remove(e);
  pool.used -= e.size;
  --pool.items;
  used_ -= e.size;
  index_.erase(it);
}

std::size_t PooledLruCache::item_count() const { return index_.size(); }

std::string PooledLruCache::name() const {
  return "pooled-lru(" + std::to_string(pools_.size()) + ")";
}

PoolStats PooledLruCache::pool_stats(std::size_t pool) const {
  const Pool& p = pools_.at(pool);
  return PoolStats{p.gets, p.hits, p.evictions, p.used, p.items};
}

void PooledLruCache::evict_one(Pool& pool) {
  Entry* victim = pool.lru.front();
  assert(victim != nullptr && "eviction requested from an empty pool");
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  pool.lru.remove(*victim);
  pool.used -= vsize;
  --pool.items;
  ++pool.evictions;
  index_.erase(vkey);
  note_eviction(vkey, vsize);
}

std::vector<PoolConfig> uniform_pools(std::uint64_t total_bytes,
                                      std::size_t n) {
  if (n == 0) throw std::invalid_argument("uniform_pools: n must be > 0");
  std::vector<PoolConfig> out(n);
  const std::uint64_t share = total_bytes / n;
  for (std::size_t i = 0; i < n; ++i) {
    out[i].label = "pool" + std::to_string(i);
    out[i].capacity_bytes = share;
  }
  out.back().capacity_bytes += total_bytes - share * n;  // remainder
  return out;
}

std::vector<PoolConfig> weighted_pools(std::uint64_t total_bytes,
                                       const std::vector<double>& weights,
                                       const std::vector<std::string>& labels) {
  if (weights.empty()) {
    throw std::invalid_argument("weighted_pools: weights must be non-empty");
  }
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (sum <= 0.0) {
    throw std::invalid_argument("weighted_pools: weights must sum > 0");
  }
  std::vector<PoolConfig> out(weights.size());
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out[i].label = i < labels.size() ? labels[i] : "pool" + std::to_string(i);
    auto share = static_cast<std::uint64_t>(
        static_cast<double>(total_bytes) * (weights[i] / sum));
    share = std::max<std::uint64_t>(share, 1);
    out[i].capacity_bytes = share;
    assigned += share;
  }
  // Put any rounding slack in the heaviest pool.
  if (assigned < total_bytes) {
    const std::size_t heaviest = static_cast<std::size_t>(
        std::max_element(weights.begin(), weights.end()) - weights.begin());
    out[heaviest].capacity_bytes += total_bytes - assigned;
  }
  return out;
}

PoolAssigner assign_by_cost_value(
    std::map<std::uint64_t, std::size_t> cost_to_pool) {
  if (cost_to_pool.empty()) {
    throw std::invalid_argument("assign_by_cost_value: empty mapping");
  }
  const std::size_t fallback = cost_to_pool.rbegin()->second;
  return [cost_to_pool = std::move(cost_to_pool), fallback](
             Key, std::uint64_t, std::uint64_t cost) -> std::size_t {
    const auto it = cost_to_pool.find(cost);
    return it == cost_to_pool.end() ? fallback : it->second;
  };
}

PoolAssigner assign_by_cost_range(std::vector<std::uint64_t> boundaries) {
  return [boundaries = std::move(boundaries)](
             Key, std::uint64_t, std::uint64_t cost) -> std::size_t {
    const auto it =
        std::upper_bound(boundaries.begin(), boundaries.end(), cost);
    return static_cast<std::size_t>(it - boundaries.begin());
  };
}

}  // namespace camp::policy
