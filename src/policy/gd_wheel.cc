#include "policy/gd_wheel.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace camp::policy {

GdWheelCache::GdWheelCache(GdWheelConfig config)
    : CacheBase(config.capacity_bytes), config_(config) {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("GdWheelConfig: capacity must be > 0");
  }
  if (config.slots_per_wheel < 2) {
    throw std::invalid_argument("GdWheelConfig: need at least 2 slots");
  }
  if (config.num_levels < 1 || config.num_levels > 2) {
    throw std::invalid_argument("GdWheelConfig: num_levels must be 1 or 2");
  }
  if (config.ratio_multiplier == 0) {
    throw std::invalid_argument("GdWheelConfig: ratio_multiplier must be > 0");
  }
  level0_.resize(config.slots_per_wheel);
  if (config.num_levels == 2) level1_.resize(config.slots_per_wheel);
}

std::uint64_t GdWheelCache::ratio(std::uint64_t cost,
                                  std::uint64_t size) const {
  const std::uint64_t num = cost * config_.ratio_multiplier;
  const std::uint64_t r = (num + size / 2) / size;
  return r == 0 ? 1 : r;
}

void GdWheelCache::place(Entry& e) {
  const std::uint64_t n = config_.slots_per_wheel;
  const std::uint64_t span1 = n;
  const std::uint64_t span2 = config_.num_levels == 2 ? n * n : n;
  // The hand may have overtaken this priority during an earlier migration
  // (wheel schemes round total priorities; this is the inversion the paper
  // calls out) — clamp to the hand.
  const std::uint64_t d = e.h > hand_ ? e.h - hand_ : 0;
  if (d < span1) {
    e.level = 0;
    e.slot = static_cast<std::uint32_t>((hand_ + d) % n);
    level0_[e.slot].push_back(e);
  } else if (d < span2) {
    e.level = 1;
    e.slot = static_cast<std::uint32_t>(((hand_ + d) / n) % n);
    level1_[e.slot].push_back(e);
  } else {
    ++intro_.overflow_clamps;
    e.level = 2;
    e.slot = 0;
    overflow_.push_back(e);
  }
}

void GdWheelCache::unlink(Entry& e) {
  switch (e.level) {
    case 0:
      level0_[e.slot].remove(e);
      break;
    case 1:
      level1_[e.slot].remove(e);
      break;
    default:
      overflow_.remove(e);
      break;
  }
}

bool GdWheelCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  // GDS hit rule: H <- L + ratio; in wheel terms the pair moves `ratio`
  // slots ahead of the hand (and to the MRU end of that slot's list).
  unlink(e);
  e.h = hand_ + ratio(e.cost, e.size);
  place(e);
  return true;
}

bool GdWheelCache::put(Key key, std::uint64_t size, std::uint64_t cost) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  while (used_ + size > capacity_) evict_victim();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.cost = cost;
  e.h = hand_ + ratio(cost, size);
  place(e);
  used_ += size;
  return true;
}

bool GdWheelCache::contains(Key key) const { return index_.contains(key); }

void GdWheelCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  unlink(it->second);
  used_ -= it->second.size;
  index_.erase(it);
}

std::size_t GdWheelCache::item_count() const { return index_.size(); }

GdWheelCache::Entry* GdWheelCache::find_victim() {
  const std::uint64_t n = config_.slots_per_wheel;
  for (;;) {
    // Level 0: nearest occupied slot at or ahead of the hand. Residents of
    // level 0 always satisfy 0 <= h - hand < n, so each physical slot holds
    // a single priority value and the scan is exact.
    for (std::uint64_t i = 0; i < n; ++i) {
      SlotList& slot = level0_[(hand_ + i) % n];
      if (!slot.empty()) {
        hand_ += i;  // L advances to the victim's priority
        intro_.hand_position = hand_;
        return slot.front();
      }
    }
    if (config_.num_levels == 2 && migrate_level1()) continue;
    if (migrate_overflow()) continue;
    return nullptr;
  }
}

// Pull the globally lowest level-1 block down into level 0. The hand jumps
// to that block's base (this is GD-Wheel's migration procedure — the
// recurring re-bucketing cost the CAMP paper contrasts with its own
// ratio-keyed queues). Returns false when level 1 is empty.
bool GdWheelCache::migrate_level1() {
  const std::uint64_t n = config_.slots_per_wheel;
  // Find the slot holding the entry with the smallest priority. A physical
  // slot can transiently hold two blocks (the hand may have jumped past a
  // block boundary), so the minimum is taken over entries, not slots.
  SlotList* best_slot = nullptr;
  std::uint64_t min_h = ~0ull;
  for (SlotList& slot : level1_) {
    for (Entry& e : slot) {
      if (e.h < min_h) {
        min_h = e.h;
        best_slot = &slot;
      }
    }
  }
  if (best_slot == nullptr) return false;
  const std::uint64_t block_base = (min_h / n) * n;
  if (block_base > hand_) {
    hand_ = block_base;
    intro_.hand_position = hand_;
  }
  ++intro_.migrations;
  // Detach everything first: place() may legitimately re-bucket an entry
  // into this same physical slot (a different block), which would otherwise
  // make the drain loop chase its own tail.
  std::vector<Entry*> moved;
  while (Entry* e = best_slot->pop_front()) moved.push_back(e);
  for (Entry* e : moved) {
    ++intro_.migrated_items;
    place(*e);  // the min_h block lands in level 0 -> guaranteed progress
  }
  return true;
}

// Re-bucket every overflow entry after jumping the hand to the smallest
// overflow priority; at least that entry lands in a wheel, so the eviction
// loop always makes progress.
bool GdWheelCache::migrate_overflow() {
  if (overflow_.empty()) return false;
  std::uint64_t min_h = ~0ull;
  for (Entry& e : overflow_) min_h = std::min(min_h, e.h);
  if (min_h > hand_) {
    hand_ = min_h;
    intro_.hand_position = hand_;
  }
  ++intro_.migrations;
  // Drain to a temporary first: far-future entries re-enter overflow_ and
  // would otherwise be popped and re-placed forever.
  std::vector<Entry*> moved;
  while (Entry* e = overflow_.pop_front()) moved.push_back(e);
  for (Entry* e : moved) {
    ++intro_.migrated_items;
    place(*e);
  }
  return true;
}

void GdWheelCache::evict_victim() {
  Entry* victim = find_victim();
  assert(victim != nullptr && "eviction requested from an empty cache");
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  unlink(*victim);
  index_.erase(vkey);
  note_eviction(vkey, vsize);
}

std::optional<Key> GdWheelCache::peek_victim() {
  Entry* victim = find_victim();
  return victim == nullptr ? std::nullopt : std::optional<Key>(victim->key);
}

}  // namespace camp::policy
