// Sampled LRU — Redis-style approximated eviction. No global recency list:
// each entry records its last-access tick, and eviction draws K random
// resident entries and removes the one with the oldest tick. An optional
// cost-aware mode scores candidates by (idle_time * size / cost), i.e. a
// sampled approximation of the GDS victim choice — a natural "cheap CAMP"
// strawman for the ablation discussion.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "policy/cache_iface.h"
#include "util/rng.h"

namespace camp::policy {

struct SampledLruConfig {
  std::uint64_t capacity_bytes = 0;
  int sample_size = 5;  // Redis's default maxmemory-samples
  /// false: victim = oldest last-access among the sample (Redis LRU).
  /// true: victim = max idle * size / cost (sampled cost-aware GDS-ish).
  bool cost_aware = false;
  std::uint64_t seed = 0x5a3d1ed;
};

class SampledLruCache final : public CacheBase {
 public:
  explicit SampledLruCache(SampledLruConfig config);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override {
    return config_.cost_aware ? "sampled-gds" : "sampled-lru";
  }
  bool evict_one() override;

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 1;
    std::uint64_t last_tick = 0;
    std::size_t slot = 0;  // position in keys_ (swap-remove bookkeeping)
  };

  void remove_entry(Key key);

  SampledLruConfig config_;
  util::Xoshiro256 rng_;
  std::unordered_map<Key, Entry> index_;
  std::vector<Key> keys_;  // dense key array for O(1) uniform sampling
  std::uint64_t tick_ = 0;
};

}  // namespace camp::policy
