#include "policy/belady.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace camp::policy {

BeladyCache::BeladyCache(std::uint64_t capacity_bytes,
                         std::vector<Key> future_gets)
    : CacheBase(capacity_bytes), future_(std::move(future_gets)) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("BeladyCache: capacity must be > 0");
  }
  for (std::size_t i = 0; i < future_.size(); ++i) {
    positions_[future_[i]].push_back(static_cast<std::uint32_t>(i));
  }
}

std::uint64_t BeladyCache::next_use_after(Key key, std::size_t from) const {
  const auto it = positions_.find(key);
  if (it == positions_.end()) return kNever;
  const auto& pos = it->second;
  const auto next = std::upper_bound(pos.begin(), pos.end(),
                                     static_cast<std::uint32_t>(from));
  return next == pos.end() ? kNever : *next;
}

bool BeladyCache::get(Key key) {
  ++stats_.gets;
  assert(cursor_ < future_.size() && future_[cursor_] == key &&
         "BeladyCache::get must follow the supplied future sequence");
  const std::size_t here = cursor_++;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  heap_.update(it->second.handle, VictimKey{next_use_after(key, here), key});
  return true;
}

bool BeladyCache::put(Key key, std::uint64_t size, std::uint64_t /*cost*/) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  // The put happens right after the miss at cursor_-1; next use is relative
  // to that position.
  const std::size_t here = cursor_ == 0 ? 0 : cursor_ - 1;
  const std::uint64_t next = next_use_after(key, here);
  if (next == kNever) {
    // Clairvoyant shortcut: a pair never requested again need not be cached
    // at all. Count it as admitted-then-instantly-dead to keep byte
    // accounting simple for callers: we simply decline to store it.
    ++stats_.rejected_puts;
    return false;
  }
  while (used_ + size > capacity_) evict_victim();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.handle = heap_.push(VictimKey{next, key});
  used_ += size;
  return true;
}

bool BeladyCache::contains(Key key) const { return index_.contains(key); }

void BeladyCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  heap_.erase(it->second.handle);
  used_ -= it->second.size;
  index_.erase(it);
}

std::size_t BeladyCache::item_count() const { return index_.size(); }

void BeladyCache::evict_victim() {
  assert(!heap_.empty() && "eviction requested from an empty cache");
  const VictimKey top = heap_.top();
  const auto it = index_.find(top.key);
  assert(it != index_.end());
  const std::uint64_t vsize = it->second.size;
  heap_.pop();
  index_.erase(it);
  note_eviction(top.key, vsize);
}

}  // namespace camp::policy
