// Greedy-Dual-Size-Frequency (Cherkasova, HP Labs TR-98-69; shipped in the
// Squid proxy as one of its heap replacement policies). GDSF extends GDS
// with a per-item access-frequency factor:
//
//   H(p) = L + freq(p) * cost(p) / size(p)
//
// so a pair that is both expensive and popular outranks a pair that is
// merely expensive. The paper's related-work discussion groups CAMP with
// the GDS family; GDSF is the most widely deployed member of that family,
// which makes it the natural extra baseline for the comparison benches.
//
// Like our GdsCache, priorities use the shared adaptive integer scaling so
// results are directly comparable with CAMP, and the frequency factor is
// applied before MSY rounding. Frequencies are capped to keep H inside
// uint64 headroom; the cap is far above any count a 4M-request trace
// produces.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "heap/dary_heap.h"
#include "policy/cache_iface.h"
#include "util/rounding.h"

namespace camp::policy {

struct GdsfConfig {
  std::uint64_t capacity_bytes = 0;
  /// MSY rounding precision applied to the scaled freq*cost/size product;
  /// util::kPrecisionInfinity (default) = exact GDSF.
  int precision = util::kPrecisionInfinity;
  /// Frequency ceiling. Squid clamps at 2^16 to bound priority growth of
  /// pathologically hot objects; same default here.
  std::uint32_t max_frequency = 1u << 16;
  /// Break priority ties by recency (LRU) instead of arbitrarily, mirroring
  /// GdsConfig so differential tests can pin decisions down.
  bool lru_tie_break = false;
};

class GdsfCache final : public CacheBase {
 public:
  explicit GdsfCache(GdsfConfig config);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::optional<Key> peek_victim() const;
  bool evict_one() override;
  [[nodiscard]] std::uint64_t priority_of(Key key) const;
  [[nodiscard]] std::uint32_t frequency_of(Key key) const;
  [[nodiscard]] std::uint64_t inflation() const noexcept { return inflation_; }
  [[nodiscard]] const heap::HeapStats& heap_stats() const {
    return heap_.stats();
  }
  [[nodiscard]] const GdsfConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t h = 0;
    std::uint32_t freq = 1;
    std::uint32_t handle = 0;  // heap handle
  };

  struct ItemKey {
    std::uint64_t h = 0;
    std::uint64_t seq = 0;
    Key key = 0;
  };
  struct ItemKeyLess {
    bool lru_tie_break;
    bool operator()(const ItemKey& a, const ItemKey& b) const noexcept {
      if (a.h != b.h) return a.h < b.h;
      return lru_tie_break && a.seq < b.seq;
    }
  };
  using ItemHeap = heap::DaryHeap<ItemKey, ItemKeyLess, 2>;

  [[nodiscard]] std::uint64_t rounded_ratio(std::uint64_t cost,
                                            std::uint64_t size,
                                            std::uint32_t freq) const;

  GdsfConfig config_;
  util::AdaptiveRatioScaler scaler_;
  std::unordered_map<Key, Entry> index_;
  ItemHeap heap_;
  std::uint64_t inflation_ = 0;
  std::uint64_t seq_ = 0;
};

[[nodiscard]] std::unique_ptr<ICache> make_gdsf(GdsfConfig config);

}  // namespace camp::policy
