// 2Q (Johnson & Shasha, VLDB 1994) — "full version", adapted from page
// counts to byte budgets. Related-work baseline: adaptive between recency
// and frequency, but cost- and size-oblivious in its decisions.
//
//   A1in : FIFO of freshly-inserted resident pairs (target kin bytes)
//   A1out: FIFO ghost queue of keys recently pushed out of A1in
//          (target kout bytes, metadata only)
//   Am   : LRU of proven-hot resident pairs
//
// A pair re-requested while its key sits in A1out is promoted into Am on
// insert; one-hit wonders wash out of A1in without polluting Am.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "intrusive/list.h"
#include "policy/cache_iface.h"

namespace camp::policy {

struct TwoQConfig {
  std::uint64_t capacity_bytes = 0;
  double kin_fraction = 0.25;   // A1in target share of capacity
  double kout_fraction = 0.50;  // A1out ghost budget as share of capacity
};

class TwoQCache final : public CacheBase {
 public:
  explicit TwoQCache(TwoQConfig config);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override { return "2q"; }

  [[nodiscard]] std::uint64_t a1in_bytes() const noexcept { return in_bytes_; }
  [[nodiscard]] std::uint64_t am_bytes() const noexcept { return am_bytes_; }
  [[nodiscard]] std::size_t ghost_count() const { return ghosts_.size(); }

 private:
  enum class Where : std::uint8_t { kA1in, kAm };

  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    Where where = Where::kA1in;
    intrusive::ListHook hook;
  };
  struct Ghost {
    Key key = 0;
    std::uint64_t size = 0;
    intrusive::ListHook hook;
  };

  void make_room(std::uint64_t size);
  void demote_a1in_head();
  void evict_am_lru();
  void push_ghost(Key key, std::uint64_t size);
  void trim_ghosts();

  TwoQConfig config_;
  std::uint64_t kin_bytes_;
  std::uint64_t kout_bytes_;
  std::unordered_map<Key, Entry> index_;
  std::unordered_map<Key, Ghost> ghost_index_;
  intrusive::List<Entry, &Entry::hook> a1in_;  // front = oldest
  intrusive::List<Entry, &Entry::hook> am_;    // front = LRU
  intrusive::List<Ghost, &Ghost::hook> ghosts_;
  std::uint64_t in_bytes_ = 0;
  std::uint64_t am_bytes_ = 0;
  std::uint64_t ghost_bytes_ = 0;
};

}  // namespace camp::policy
