// LRU-K (O'Neil, O'Neil, Weikum, SIGMOD 1993) — recency/frequency-balancing
// baseline from the paper's related-work section. Evicts the resident pair
// whose K-th most recent reference is oldest (infinite backward K-distance,
// i.e. fewer than K references, evicts first; ties by oldest last access).
//
// Cost- and size-oblivious by design: it is here to show what
// recency/frequency tuning alone buys on the paper's cost-skewed workloads.
// Reference history is kept only for resident keys (a simplification of the
// paper's Retained Information Period, documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/dary_heap.h"
#include "policy/cache_iface.h"

namespace camp::policy {

class LruKCache final : public CacheBase {
 public:
  LruKCache(std::uint64_t capacity_bytes, int k);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override {
    return "lru-" + std::to_string(k_);
  }

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::vector<std::uint64_t> history;  // ring of the last K access times
    std::size_t next_slot = 0;           // ring cursor
    std::uint64_t refs = 0;              // total references while resident
    std::uint32_t handle = 0;

    [[nodiscard]] std::uint64_t kth_last(int k) const {
      if (refs < static_cast<std::uint64_t>(k)) return 0;  // -infinity
      return history[next_slot % history.size()];  // oldest retained
    }
    [[nodiscard]] std::uint64_t last() const {
      const std::size_t idx =
          (next_slot + history.size() - 1) % history.size();
      return history[idx];
    }
  };

  struct VictimKey {
    std::uint64_t kth_last = 0;  // 0 = infinite backward distance
    std::uint64_t last = 0;
    Key key = 0;
  };
  struct VictimLess {
    bool operator()(const VictimKey& a, const VictimKey& b) const noexcept {
      if (a.kth_last != b.kth_last) return a.kth_last < b.kth_last;
      return a.last < b.last;
    }
  };

  void record_access(Entry& e);
  void evict_victim();
  [[nodiscard]] VictimKey victim_key(const Entry& e) const {
    return VictimKey{e.kth_last(k_), e.last(), e.key};
  }

  int k_;
  std::uint64_t now_ = 0;
  std::unordered_map<Key, Entry> index_;
  heap::DaryHeap<VictimKey, VictimLess, 2> heap_;
};

}  // namespace camp::policy
