#include "policy/admission.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace camp::policy {

namespace {
constexpr int kHashes = 3;
}

AdmissionFilter::AdmissionFilter(std::unique_ptr<ICache> inner,
                                 AdmissionConfig config)
    : inner_(std::move(inner)), config_(config) {
  if (!inner_) {
    throw std::invalid_argument("AdmissionFilter: inner cache is null");
  }
  if (config_.doorkeeper_bits == 0 || config_.window_ops == 0) {
    throw std::invalid_argument("AdmissionFilter: zero-sized doorkeeper");
  }
  if (config_.min_attempts < 2) {
    throw std::invalid_argument("AdmissionFilter: min_attempts must be >= 2");
  }
  const std::size_t words = (config_.doorkeeper_bits + 63) / 64;
  window_[0].assign(words, 0);
  window_[1].assign(words, 0);
  if (config_.min_attempts >= 3) {
    sketch_.emplace(config_.sketch_width, config_.sketch_depth,
                    /*aging_period=*/config_.window_ops);
  }
}

bool AdmissionFilter::put(Key key, std::uint64_t size, std::uint64_t cost) {
  maybe_rotate();
  ++ops_in_window_;
  if (bypass(size, cost)) return inner_->put(key, size, cost);
  if (sketch_.has_value()) {
    // Frequency mode: the key needs min_attempts-1 prior attempts on
    // record before it may enter.
    const bool frequent =
        sketch_->estimate(key) + 1 >= config_.min_attempts;
    sketch_->add(key);
    if (frequent) return inner_->put(key, size, cost);
    ++denied_;
    return false;
  }
  if (seen_recently(key)) return inner_->put(key, size, cost);
  remember(key);
  ++denied_;
  return false;
}

bool AdmissionFilter::bypass(std::uint64_t size, std::uint64_t cost) const {
  if (config_.bypass_ratio_numerator == 0) return false;
  // cost/size >= num/den without division.
  return cost * config_.bypass_ratio_denominator >=
         size * config_.bypass_ratio_numerator;
}

bool AdmissionFilter::seen_recently(Key key) const {
  const std::size_t bits = window_[0].size() * 64;
  for (int w = 0; w < 2; ++w) {
    bool all = true;
    std::uint64_t h = util::mix64(key ^ 0x5bd1e995u);
    for (int i = 0; i < kHashes; ++i) {
      const std::size_t bit = static_cast<std::size_t>(h) % bits;
      if ((window_[w][bit / 64] & (1ull << (bit % 64))) == 0) {
        all = false;
        break;
      }
      h = util::mix64(h);
    }
    if (all) return true;
  }
  return false;
}

void AdmissionFilter::remember(Key key) {
  const std::size_t bits = window_[active_].size() * 64;
  std::uint64_t h = util::mix64(key ^ 0x5bd1e995u);
  for (int i = 0; i < kHashes; ++i) {
    const std::size_t bit = static_cast<std::size_t>(h) % bits;
    window_[active_][bit / 64] |= 1ull << (bit % 64);
    h = util::mix64(h);
  }
}

void AdmissionFilter::maybe_rotate() {
  if (ops_in_window_ < config_.window_ops) return;
  ops_in_window_ = 0;
  active_ ^= 1;
  std::fill(window_[active_].begin(), window_[active_].end(), 0);
}

}  // namespace camp::policy
