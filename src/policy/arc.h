// ARC (Megiddo & Modha, FAST 2003), generalized from page counts to byte
// budgets. Related-work baseline: self-tuning between recency (T1) and
// frequency (T2) using ghost lists (B1/B2), but cost- and size-oblivious in
// its victim choice — exactly the contrast the paper draws with CAMP.
//
// Byte generalization (documented deviation from the page-based original):
// the adaptation target `p` and all list budgets are in bytes; the learning
// step on a ghost hit is the ghost's size scaled by the usual |B2|/|B1|
// (resp. |B1|/|B2|) ratio; ghost directories are trimmed to keep
// B1+B2 <= capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "intrusive/list.h"
#include "policy/cache_iface.h"

namespace camp::policy {

class ArcCache final : public CacheBase {
 public:
  explicit ArcCache(std::uint64_t capacity_bytes);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override { return "arc"; }

  [[nodiscard]] std::uint64_t target_t1_bytes() const noexcept { return p_; }
  [[nodiscard]] std::uint64_t t1_bytes() const noexcept { return t1_bytes_; }
  [[nodiscard]] std::uint64_t t2_bytes() const noexcept { return t2_bytes_; }

 private:
  enum class Where : std::uint8_t { kT1, kT2 };

  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    Where where = Where::kT1;
    intrusive::ListHook hook;
  };
  struct Ghost {
    Key key = 0;
    std::uint64_t size = 0;
    bool from_t1 = true;  // i.e. lives in B1
    intrusive::ListHook hook;
  };

  void replace(bool requested_in_b2, std::uint64_t incoming_size);
  void evict_to_ghost(Where from);
  void remove_ghost(Ghost& g);
  void trim_ghosts();

  std::unordered_map<Key, Entry> index_;
  std::unordered_map<Key, Ghost> ghost_index_;
  intrusive::List<Entry, &Entry::hook> t1_;  // front = LRU
  intrusive::List<Entry, &Entry::hook> t2_;
  intrusive::List<Ghost, &Ghost::hook> b1_;
  intrusive::List<Ghost, &Ghost::hook> b2_;
  std::uint64_t t1_bytes_ = 0;
  std::uint64_t t2_bytes_ = 0;
  std::uint64_t b1_bytes_ = 0;
  std::uint64_t b2_bytes_ = 0;
  std::uint64_t p_ = 0;  // adaptive target for T1, in bytes
};

}  // namespace camp::policy
