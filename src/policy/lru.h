// Plain LRU: the first baseline in every figure of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "intrusive/list.h"
#include "policy/cache_iface.h"

namespace camp::policy {

class LruCache final : public CacheBase {
 public:
  explicit LruCache(std::uint64_t capacity_bytes);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override { return "lru"; }

  /// Key at the LRU end (the next victim), if any; for tests.
  [[nodiscard]] std::optional<Key> peek_victim() const;

  /// Evict the LRU victim on demand (used by the KVS engine).
  bool evict_one() override;

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    intrusive::ListHook hook;
  };

  std::unordered_map<Key, Entry> index_;
  intrusive::List<Entry, &Entry::hook> lru_;  // front = LRU, back = MRU
};

}  // namespace camp::policy
