// Greedy Dual Size (Cao & Irani, USITS 1997) — the algorithm CAMP
// approximates, implemented the straightforward way the paper's Figure 4
// measures against: one priority-queue node per resident key-value pair,
// updated on every hit.
//
// Priorities use the same adaptive integer scaling as CAMP so that the two
// are directly comparable (the paper's "infinity precision" simulation runs
// GDS on integer-scaled ratios). An optional MSY rounding precision turns
// this into "GDS with rounded ratios but an exact per-item heap", used by
// the rounding ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "heap/dary_heap.h"
#include "policy/cache_iface.h"
#include "util/rounding.h"

namespace camp::policy {

struct GdsConfig {
  std::uint64_t capacity_bytes = 0;
  /// MSY rounding precision applied to the scaled ratio;
  /// util::kPrecisionInfinity (default) = standard GDS.
  int precision = util::kPrecisionInfinity;
  /// Break priority ties by recency (LRU) instead of arbitrarily. The
  /// CAMP-equivalence property requires this; benches keep the paper's
  /// arbitrary tie-break by default.
  bool lru_tie_break = false;
};

class GdsCache final : public CacheBase {
 public:
  explicit GdsCache(GdsConfig config);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::optional<Key> peek_victim() const;
  bool evict_one() override;
  [[nodiscard]] std::uint64_t priority_of(Key key) const;
  [[nodiscard]] std::uint64_t inflation() const noexcept { return inflation_; }
  [[nodiscard]] const heap::HeapStats& heap_stats() const {
    return heap_.stats();
  }
  [[nodiscard]] const GdsConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t h = 0;
    std::uint32_t handle = 0;  // heap handle
  };

  struct ItemKey {
    std::uint64_t h = 0;
    std::uint64_t seq = 0;  // tie-break: access order if lru_tie_break
    Key key = 0;
  };
  struct ItemKeyLess {
    bool lru_tie_break;
    bool operator()(const ItemKey& a, const ItemKey& b) const noexcept {
      if (a.h != b.h) return a.h < b.h;
      return lru_tie_break && a.seq < b.seq;
    }
  };
  // Binary heap: the conventional choice Figure 4's GDS curve represents.
  using ItemHeap = heap::DaryHeap<ItemKey, ItemKeyLess, 2>;

  [[nodiscard]] std::uint64_t rounded_ratio(std::uint64_t cost,
                                            std::uint64_t size) const;

  GdsConfig config_;
  util::AdaptiveRatioScaler scaler_;
  std::unordered_map<Key, Entry> index_;
  ItemHeap heap_;
  std::uint64_t inflation_ = 0;
  std::uint64_t seq_ = 0;
};

[[nodiscard]] std::unique_ptr<ICache> make_gds(GdsConfig config);

}  // namespace camp::policy
