#include "policy/policy_factory.h"

#include <charconv>
#include <stdexcept>

#include "core/camp.h"
#include "core/concurrent_camp.h"
#include "policy/admission.h"
#include "policy/arc.h"
#include "policy/clock.h"
#include "policy/gd_wheel.h"
#include "policy/gds.h"
#include "policy/gdsf.h"
#include "policy/greedy_dual.h"
#include "policy/lru.h"
#include "policy/lru_k.h"
#include "policy/sampled_lru.h"
#include "policy/two_q.h"

namespace camp::policy {

namespace {

int parse_int(std::string_view text, const char* what) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument(std::string("make_policy: bad ") + what +
                                " in spec");
  }
  return value;
}

}  // namespace

std::unique_ptr<ICache> make_policy(const std::string& spec,
                                    std::uint64_t capacity_bytes) {
  if (spec.rfind("admit+", 0) == 0) {
    return std::make_unique<AdmissionFilter>(
        make_policy(spec.substr(6), capacity_bytes), AdmissionConfig{});
  }
  if (spec == "lru") return std::make_unique<LruCache>(capacity_bytes);
  if (spec == "camp") {
    return core::make_camp(core::CampConfig{capacity_bytes, 5, true});
  }
  if (spec.rfind("camp:p=", 0) == 0) {
    const int p = parse_int(std::string_view(spec).substr(7), "precision");
    return core::make_camp(core::CampConfig{capacity_bytes, p, true});
  }
  if (spec == "camp-f" || spec.rfind("camp-f:p=", 0) == 0) {
    core::CampConfig config;
    config.capacity_bytes = capacity_bytes;
    config.frequency_aware = true;
    if (spec != "camp-f") {
      config.precision =
          parse_int(std::string_view(spec).substr(9), "precision");
    }
    return core::make_camp(config);
  }
  if (spec == "camp-mt") {
    core::ConcurrentCampConfig config;
    config.capacity_bytes = capacity_bytes;
    return core::make_concurrent_camp(config);
  }
  if (spec.rfind("camp-mt:q=", 0) == 0) {
    core::ConcurrentCampConfig config;
    config.capacity_bytes = capacity_bytes;
    config.physical_queues = static_cast<std::uint32_t>(
        parse_int(std::string_view(spec).substr(10), "physical queues"));
    return core::make_concurrent_camp(config);
  }
  if (spec == "gds") {
    return make_gds(GdsConfig{capacity_bytes, util::kPrecisionInfinity, false});
  }
  if (spec == "gds:lru") {
    return make_gds(GdsConfig{capacity_bytes, util::kPrecisionInfinity, true});
  }
  if (spec == "gdsf") {
    GdsfConfig config;
    config.capacity_bytes = capacity_bytes;
    return make_gdsf(config);
  }
  if (spec == "greedy-dual") {
    return std::make_unique<GreedyDualCache>(capacity_bytes);
  }
  if (spec == "arc") return std::make_unique<ArcCache>(capacity_bytes);
  if (spec == "2q") {
    return std::make_unique<TwoQCache>(TwoQConfig{capacity_bytes, 0.25, 0.5});
  }
  if (spec.rfind("lru-", 0) == 0) {
    const int k = parse_int(std::string_view(spec).substr(4), "K");
    return std::make_unique<LruKCache>(capacity_bytes, k);
  }
  if (spec == "clock") return std::make_unique<ClockCache>(capacity_bytes);
  if (spec == "sampled-lru" || spec == "sampled-gds") {
    SampledLruConfig config;
    config.capacity_bytes = capacity_bytes;
    config.cost_aware = (spec == "sampled-gds");
    return std::make_unique<SampledLruCache>(config);
  }
  if (spec == "gd-wheel") {
    GdWheelConfig config;
    config.capacity_bytes = capacity_bytes;
    return std::make_unique<GdWheelCache>(config);
  }
  throw std::invalid_argument("make_policy: unknown spec '" + spec + "'");
}

std::vector<std::string> known_policy_specs() {
  return {"lru",         "camp",        "camp:p=1",    "camp-f",
          "camp-mt",     "gds",         "gds:lru",     "gdsf",
          "greedy-dual", "arc",         "2q",          "lru-2",
          "gd-wheel",    "clock",       "sampled-lru", "sampled-gds",
          "admit+camp"};
}

}  // namespace camp::policy
