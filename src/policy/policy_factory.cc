#include "policy/policy_factory.h"

#include <charconv>
#include <optional>
#include <stdexcept>

#include "core/auto_tuner.h"
#include "core/camp.h"
#include "core/concurrent_camp.h"
#include "policy/admission.h"
#include "policy/arc.h"
#include "policy/clock.h"
#include "policy/gd_wheel.h"
#include "policy/gds.h"
#include "policy/gdsf.h"
#include "policy/greedy_dual.h"
#include "policy/lru.h"
#include "policy/lru_k.h"
#include "policy/sampled_lru.h"
#include "policy/two_q.h"

namespace camp::policy {

namespace {

[[nodiscard]] std::invalid_argument spec_error(const std::string& spec,
                                               const std::string& why) {
  return std::invalid_argument("make_policy: " + why + " in spec '" + spec +
                               "'");
}

/// Strict integer parse: empty input, non-numeric characters and trailing
/// garbage all throw (naming the offending token), never fall back.
int parse_int(std::string_view text, const std::string& spec,
              const char* what) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw spec_error(spec, std::string("bad ") + what + " '" +
                               std::string(text) + "'");
  }
  return value;
}

int parse_precision(std::string_view text, const std::string& spec) {
  const int p = parse_int(text, spec, "precision");
  if (p < 1) {
    throw spec_error(spec, "precision must be >= 1 (got '" +
                               std::string(text) + "')");
  }
  return p;
}

/// Parsed ':'-separated key=value parameters of the camp family specs.
struct CampSpecParams {
  std::optional<int> precision;  // numeric p=
  bool auto_precision = false;   // p=auto
  std::optional<std::vector<int>> candidates;
  std::optional<std::uint32_t> physical_queues;  // q=
};

CampSpecParams parse_camp_params(const std::string& spec,
                                 std::string_view family,
                                 std::string_view rest) {
  CampSpecParams out;
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    const std::string_view token = rest.substr(0, colon);
    rest = colon == std::string_view::npos ? std::string_view{}
                                           : rest.substr(colon + 1);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw spec_error(spec, "malformed parameter '" + std::string(token) +
                                 "' (want key=value)");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "p") {
      if (out.precision.has_value() || out.auto_precision) {
        throw spec_error(spec, "duplicate parameter 'p'");
      }
      if (value == "auto") {
        if (family != "camp") {
          throw spec_error(spec, "p=auto is only supported by 'camp'");
        }
        out.auto_precision = true;
      } else {
        out.precision = parse_precision(value, spec);
      }
    } else if (key == "q" && family == "camp-mt") {
      if (out.physical_queues.has_value()) {
        throw spec_error(spec, "duplicate parameter 'q'");
      }
      const int q = parse_int(value, spec, "physical queue count");
      if (q < 1) throw spec_error(spec, "physical queue count must be >= 1");
      out.physical_queues = static_cast<std::uint32_t>(q);
    } else if (key == "candidates" && family == "camp") {
      if (out.candidates.has_value()) {
        throw spec_error(spec, "duplicate parameter 'candidates'");
      }
      std::vector<int> list;
      std::string_view items = value;
      while (true) {
        const std::size_t comma = items.find(',');
        list.push_back(parse_precision(items.substr(0, comma), spec));
        if (comma == std::string_view::npos) break;
        items = items.substr(comma + 1);
      }
      out.candidates = std::move(list);
    } else {
      throw spec_error(spec, "unknown parameter '" + std::string(key) +
                                 "' for '" + std::string(family) + "'");
    }
  }
  if (out.candidates.has_value() && !out.auto_precision) {
    throw spec_error(spec, "'candidates' requires p=auto");
  }
  return out;
}

/// The parameter tail after "<family>:", or empty for a bare family name.
[[nodiscard]] std::string_view camp_param_tail(const std::string& spec,
                                               std::string_view family) {
  return spec.size() == family.size()
             ? std::string_view{}
             : std::string_view(spec).substr(family.size() + 1);
}

[[nodiscard]] core::AutoTunerConfig auto_tuner_config(
    const CampSpecParams& params) {
  core::AutoTunerConfig config;
  if (params.candidates.has_value()) {
    config.candidates = *params.candidates;
    config.initial_precision = config.candidates.front();
  }
  return config;
}

}  // namespace

std::unique_ptr<ICache> make_policy(const std::string& spec,
                                    std::uint64_t capacity_bytes) {
  if (spec.rfind("admit+", 0) == 0) {
    return std::make_unique<AdmissionFilter>(
        make_policy(spec.substr(6), capacity_bytes), AdmissionConfig{});
  }
  if (spec == "lru") return std::make_unique<LruCache>(capacity_bytes);
  if (spec == "camp-f" || spec.rfind("camp-f:", 0) == 0) {
    const CampSpecParams params =
        parse_camp_params(spec, "camp-f", camp_param_tail(spec, "camp-f"));
    core::CampConfig config;
    config.capacity_bytes = capacity_bytes;
    config.frequency_aware = true;
    if (params.precision.has_value()) config.precision = *params.precision;
    return core::make_camp(config);
  }
  if (spec == "camp-mt" || spec.rfind("camp-mt:", 0) == 0) {
    const CampSpecParams params =
        parse_camp_params(spec, "camp-mt", camp_param_tail(spec, "camp-mt"));
    core::ConcurrentCampConfig config;
    config.capacity_bytes = capacity_bytes;
    if (params.precision.has_value()) config.precision = *params.precision;
    if (params.physical_queues.has_value()) {
      config.physical_queues = *params.physical_queues;
    }
    return core::make_concurrent_camp(config);
  }
  if (spec == "camp" || spec.rfind("camp:", 0) == 0) {
    const CampSpecParams params =
        parse_camp_params(spec, "camp", camp_param_tail(spec, "camp"));
    if (params.auto_precision) {
      core::CampConfig config;
      config.capacity_bytes = capacity_bytes;
      return core::make_self_tuning_camp(config, auto_tuner_config(params));
    }
    core::CampConfig config;
    config.capacity_bytes = capacity_bytes;
    if (params.precision.has_value()) config.precision = *params.precision;
    return core::make_camp(config);
  }
  if (spec == "gds") {
    return make_gds(GdsConfig{capacity_bytes, util::kPrecisionInfinity, false});
  }
  if (spec == "gds:lru") {
    return make_gds(GdsConfig{capacity_bytes, util::kPrecisionInfinity, true});
  }
  if (spec == "gdsf") {
    GdsfConfig config;
    config.capacity_bytes = capacity_bytes;
    return make_gdsf(config);
  }
  if (spec == "greedy-dual") {
    return std::make_unique<GreedyDualCache>(capacity_bytes);
  }
  if (spec == "arc") return std::make_unique<ArcCache>(capacity_bytes);
  if (spec == "2q") {
    return std::make_unique<TwoQCache>(TwoQConfig{capacity_bytes, 0.25, 0.5});
  }
  if (spec.rfind("lru-", 0) == 0) {
    const int k = parse_int(std::string_view(spec).substr(4), spec, "K");
    return std::make_unique<LruKCache>(capacity_bytes, k);
  }
  if (spec == "clock") return std::make_unique<ClockCache>(capacity_bytes);
  if (spec == "sampled-lru" || spec == "sampled-gds") {
    SampledLruConfig config;
    config.capacity_bytes = capacity_bytes;
    config.cost_aware = (spec == "sampled-gds");
    return std::make_unique<SampledLruCache>(config);
  }
  if (spec == "gd-wheel") {
    GdWheelConfig config;
    config.capacity_bytes = capacity_bytes;
    return std::make_unique<GdWheelCache>(config);
  }
  throw std::invalid_argument("make_policy: unknown spec '" + spec + "'");
}

std::function<std::unique_ptr<ICache>(std::uint64_t)> make_policy_factory(
    const std::string& spec) {
  if (spec == "camp" || spec.rfind("camp:", 0) == 0) {
    const CampSpecParams params =
        parse_camp_params(spec, "camp", camp_param_tail(spec, "camp"));
    if (params.auto_precision) {
      core::AutoTunerConfig tuner_config = auto_tuner_config(params);
      const int initial = tuner_config.initial_precision;
      auto tuner =
          std::make_shared<core::SharedAutoTuner>(std::move(tuner_config));
      return [tuner, initial](
                 std::uint64_t capacity) -> std::unique_ptr<ICache> {
        core::CampConfig config;
        config.capacity_bytes = capacity;
        config.precision = initial;
        return std::make_unique<core::SelfTuningCampCache>(config, tuner);
      };
    }
  }
  return [spec](std::uint64_t capacity) { return make_policy(spec, capacity); };
}

std::vector<std::string> known_policy_specs() {
  return {"lru",         "camp",        "camp:p=1",    "camp:p=auto",
          "camp-f",      "camp-mt",     "gds",         "gds:lru",
          "gdsf",        "greedy-dual", "arc",         "2q",
          "lru-2",       "gd-wheel",    "clock",       "sampled-lru",
          "sampled-gds", "admit+camp"};
}

}  // namespace camp::policy
