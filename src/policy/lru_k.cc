#include "policy/lru_k.h"

#include <cassert>
#include <stdexcept>

namespace camp::policy {

LruKCache::LruKCache(std::uint64_t capacity_bytes, int k)
    : CacheBase(capacity_bytes), k_(k) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("LruKCache: capacity must be > 0");
  }
  if (k < 1) throw std::invalid_argument("LruKCache: k must be >= 1");
}

void LruKCache::record_access(Entry& e) {
  e.history[e.next_slot % e.history.size()] = ++now_;
  ++e.next_slot;
  ++e.refs;
  heap_.update(e.handle, victim_key(e));
}

bool LruKCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  record_access(it->second);
  return true;
}

bool LruKCache::put(Key key, std::uint64_t size, std::uint64_t /*cost*/) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  while (used_ + size > capacity_) evict_victim();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.history.assign(static_cast<std::size_t>(k_), 0);
  e.history[0] = ++now_;
  e.next_slot = 1;
  e.refs = 1;
  e.handle = heap_.push(victim_key(e));
  used_ += size;
  return true;
}

bool LruKCache::contains(Key key) const { return index_.contains(key); }

void LruKCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  heap_.erase(it->second.handle);
  used_ -= it->second.size;
  index_.erase(it);
}

std::size_t LruKCache::item_count() const { return index_.size(); }

void LruKCache::evict_victim() {
  assert(!heap_.empty() && "eviction requested from an empty cache");
  const VictimKey top = heap_.top();
  const auto it = index_.find(top.key);
  assert(it != index_.end());
  const std::uint64_t vsize = it->second.size;
  heap_.pop();
  index_.erase(it);
  note_eviction(top.key, vsize);
}

}  // namespace camp::policy
