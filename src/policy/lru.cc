#include "policy/lru.h"

#include <cassert>
#include <optional>

namespace camp::policy {

LruCache::LruCache(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

bool LruCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.move_to_back(it->second);
  return true;
}

bool LruCache::put(Key key, std::uint64_t size, std::uint64_t /*cost*/) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  while (used_ + size > capacity_) evict_one();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  lru_.push_back(e);
  used_ += size;
  return true;
}

bool LruCache::contains(Key key) const { return index_.contains(key); }

void LruCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.remove(it->second);
  used_ -= it->second.size;
  index_.erase(it);
}

std::size_t LruCache::item_count() const { return index_.size(); }

std::optional<Key> LruCache::peek_victim() const {
  const Entry* victim = lru_.front();
  return victim == nullptr ? std::nullopt : std::optional<Key>(victim->key);
}

bool LruCache::evict_one() {
  Entry* victim = lru_.front();
  if (victim == nullptr) return false;
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  lru_.remove(*victim);
  index_.erase(vkey);
  note_eviction(vkey, vsize);
  return true;
}

}  // namespace camp::policy
