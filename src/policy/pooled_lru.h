// Pooled LRU: the human-partitioned alternative the paper compares against
// (Facebook-style memcached pools, Nishtala et al., NSDI 2013).
//
// Memory is statically divided into pools; an assigner maps each key-value
// pair to a pool (by exact cost value or by cost range); each pool runs its
// own LRU. Unlike CAMP, pool boundaries never move — the paper's point is
// that this needs a human and goes stale when workloads shift.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "intrusive/list.h"
#include "policy/cache_iface.h"

namespace camp::policy {

/// Chooses the pool index for an incoming pair.
using PoolAssigner =
    std::function<std::size_t(Key key, std::uint64_t size, std::uint64_t cost)>;

struct PoolConfig {
  std::string label;
  std::uint64_t capacity_bytes = 0;
};

struct PoolStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t used_bytes = 0;
  std::size_t items = 0;
};

class PooledLruCache final : public CacheBase {
 public:
  PooledLruCache(std::vector<PoolConfig> pools, PoolAssigner assigner);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t pool_count() const { return pools_.size(); }
  [[nodiscard]] PoolStats pool_stats(std::size_t pool) const;

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::size_t pool = 0;
    intrusive::ListHook hook;
  };
  struct Pool {
    PoolConfig config;
    intrusive::List<Entry, &Entry::hook> lru;
    std::uint64_t used = 0;
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t evictions = 0;
    std::size_t items = 0;
  };

  void evict_one(Pool& pool);
  static std::uint64_t total_capacity(const std::vector<PoolConfig>& pools);

  // deque: Pool holds an intrusive list and is neither copyable nor movable.
  std::deque<Pool> pools_;
  PoolAssigner assigner_;
  std::unordered_map<Key, Entry> index_;
};

// ---- partition plans --------------------------------------------------------

/// Split `total_bytes` into `n` equal pools (the paper's "uniform" plan).
[[nodiscard]] std::vector<PoolConfig> uniform_pools(std::uint64_t total_bytes,
                                                    std::size_t n);

/// Split `total_bytes` proportionally to `weights` (the paper's
/// cost-proportional plan, with weights = total request cost per pool, and
/// the Section 3.2 plan, with weights = lowest cost value of each range).
/// Every pool receives at least 1 byte so no pool is unusable.
[[nodiscard]] std::vector<PoolConfig> weighted_pools(
    std::uint64_t total_bytes, const std::vector<double>& weights,
    const std::vector<std::string>& labels = {});

// ---- assigners ---------------------------------------------------------------

/// Pool per exact cost value (the {1, 100, 10K} traces). Unknown costs go to
/// the last pool.
[[nodiscard]] PoolAssigner assign_by_cost_value(
    std::map<std::uint64_t, std::size_t> cost_to_pool);

/// Pool by cost range: pair with cost c goes to the first i such that
/// c < boundaries[i], and to boundaries.size() otherwise. For the paper's
/// Section 3.2 ranges {1..100, 100..10K, >=10K} pass boundaries {100, 10000}.
[[nodiscard]] PoolAssigner assign_by_cost_range(
    std::vector<std::uint64_t> boundaries);

}  // namespace camp::policy
