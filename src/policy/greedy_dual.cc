#include "policy/greedy_dual.h"

#include <cassert>
#include <stdexcept>

namespace camp::policy {

GreedyDualCache::GreedyDualCache(std::uint64_t capacity_bytes)
    : CacheBase(capacity_bytes) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("GreedyDualCache: capacity must be > 0");
  }
}

bool GreedyDualCache::get(Key key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  heap_.erase(e.handle);
  if (!heap_.empty() && heap_.top().h > inflation_) {
    inflation_ = heap_.top().h;
  }
  e.h = inflation_ + (e.cost == 0 ? 1 : e.cost);
  e.handle = heap_.push(ItemKey{e.h, ++seq_, key});
  return true;
}

bool GreedyDualCache::put(Key key, std::uint64_t size, std::uint64_t cost) {
  ++stats_.puts;
  if (size == 0 || size > capacity_) {
    ++stats_.rejected_puts;
    return false;
  }
  erase(key);
  while (used_ + size > capacity_) evict_victim();
  auto [it, inserted] = index_.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.cost = cost;
  e.h = inflation_ + (cost == 0 ? 1 : cost);
  e.handle = heap_.push(ItemKey{e.h, ++seq_, key});
  used_ += size;
  return true;
}

bool GreedyDualCache::contains(Key key) const { return index_.contains(key); }

void GreedyDualCache::erase(Key key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  heap_.erase(it->second.handle);
  used_ -= it->second.size;
  index_.erase(it);
}

std::size_t GreedyDualCache::item_count() const { return index_.size(); }

std::optional<Key> GreedyDualCache::peek_victim() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.top().key;
}

void GreedyDualCache::evict_victim() {
  assert(!heap_.empty() && "eviction requested from an empty cache");
  const ItemKey top = heap_.top();
  if (top.h > inflation_) inflation_ = top.h;
  const auto it = index_.find(top.key);
  assert(it != index_.end());
  const std::uint64_t vsize = it->second.size;
  heap_.pop();
  index_.erase(it);
  note_eviction(top.key, vsize);
}

}  // namespace camp::policy
