// The narrow virtual interface every eviction policy implements.
//
// The simulator, the sweep driver, the KVS engine and the examples all talk
// to caches through ICache; concrete engines (CampCache, GdsCache, ...) are
// also usable directly where static dispatch matters (microbenches).
//
// Terminology follows the paper: a cache stores key-value *metadata*
// (size in bytes, integer cost >= 1); the value payload itself lives in the
// KVS layer (src/kvs), not here. `get` applies the policy's hit side
// effects; on a miss the caller is expected to compute the value and `put`
// it, which evicts resident pairs until the new one fits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace camp::policy {

using Key = std::uint64_t;

/// Raw operation counters. Cold-miss exclusion (the paper's metric rule) is
/// the simulator's job since only it knows whether a key was ever requested
/// before; see sim::Metrics.
struct CacheStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_puts = 0;  // admission denied or larger than capacity

  [[nodiscard]] double hit_rate() const noexcept {
    return gets == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(gets);
  }
  [[nodiscard]] double miss_rate() const noexcept {
    return gets == 0 ? 0.0 : 1.0 - hit_rate();
  }
};

/// Invoked for every eviction with the victim's key and size. Used by the
/// simulator's occupancy tracker (Figures 6c/6d) and by the KVS engine to
/// free slab chunks.
using EvictionListener = std::function<void(Key, std::uint64_t size)>;

class ICache {
 public:
  virtual ~ICache() = default;

  /// Access a key. Returns true on a hit (and applies recency/priority side
  /// effects); false on a miss (no state change beyond counters).
  virtual bool get(Key key) = 0;

  /// Insert (or overwrite) a key with the given size and cost, evicting
  /// resident pairs as needed. Returns false when the pair is not admitted
  /// (e.g. larger than total capacity); the cache is unchanged then.
  virtual bool put(Key key, std::uint64_t size, std::uint64_t cost) = 0;

  /// True if the key is resident. No policy side effects.
  [[nodiscard]] virtual bool contains(Key key) const = 0;

  /// Remove a key if resident (explicit delete, not an eviction).
  virtual void erase(Key key) = 0;

  /// Evict the policy's current victim, firing the eviction listener.
  /// Returns false when the cache is empty or the policy does not support
  /// externally-driven eviction. The KVS engine uses this to free slab
  /// chunks under class pressure before resorting to slab reassignment.
  virtual bool evict_one() { return false; }

  [[nodiscard]] virtual std::uint64_t capacity_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t used_bytes() const = 0;
  [[nodiscard]] virtual std::size_t item_count() const = 0;
  [[nodiscard]] virtual const CacheStats& stats() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  virtual void set_eviction_listener(EvictionListener listener) = 0;
};

/// Implemented by policies whose rounding precision can be changed while
/// resident pairs stay cached (CAMP's retune path, core/camp.h). Wrappers
/// (ShardedCache, the self-tuning wrapper) forward opportunistically: their
/// retune() returns false and precision() returns 0 when the underlying
/// policy is not precision-tunable, so callers must treat precision() == 0
/// as "not tunable", never as a real setting (real precisions are >= 1).
class IRetunable {
 public:
  virtual ~IRetunable() = default;

  /// Switch the live precision and rebuild the queue topology in place.
  /// Returns true when the precision actually changed (retuning to the
  /// current value is a no-op and does not count as a retune). Throws
  /// std::invalid_argument for precision < 1.
  virtual bool retune(int precision) = 0;

  /// The precision the policy is CURRENTLY running at (post-retune), not
  /// the constructed one. 0 = not tunable (forwarding wrapper over a
  /// non-CAMP policy).
  [[nodiscard]] virtual int precision() const = 0;

  /// Lifetime count of retune() calls that changed the precision.
  [[nodiscard]] virtual std::uint64_t retune_count() const = 0;
};

/// The retune capability of `cache`, or nullptr when the policy's precision
/// is not runtime-tunable.
[[nodiscard]] inline IRetunable* as_retunable(ICache* cache) noexcept {
  return dynamic_cast<IRetunable*>(cache);
}

/// Shared bookkeeping for concrete caches.
class CacheBase : public ICache {
 public:
  explicit CacheBase(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return capacity_;
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_; }
  [[nodiscard]] const CacheStats& stats() const override { return stats_; }
  void set_eviction_listener(EvictionListener listener) override {
    listener_ = std::move(listener);
  }

 protected:
  void note_eviction(Key key, std::uint64_t size) {
    ++stats_.evictions;
    used_ -= size;
    if (listener_) listener_(key, size);
  }

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  CacheStats stats_;
  EvictionListener listener_;
};

}  // namespace camp::policy
