// Greedy Dual (Young, SODA 1991): the ancestor of GDS. Handles varying
// *costs* but assumes uniform page sizes, so the priority of a pair is
// H = L + cost (no size division). Included as a substrate/baseline: on
// uniform-size workloads it coincides with GDS; on variable-size workloads
// it shows why GDS's cost-to-size ratio matters.
//
// Space accounting still uses real sizes (the cache is byte-budgeted like
// every other policy here); only the *priority* ignores size.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "heap/dary_heap.h"
#include "policy/cache_iface.h"

namespace camp::policy {

class GreedyDualCache final : public CacheBase {
 public:
  explicit GreedyDualCache(std::uint64_t capacity_bytes);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override { return "greedy-dual"; }

  [[nodiscard]] std::optional<Key> peek_victim() const;
  [[nodiscard]] std::uint64_t inflation() const noexcept { return inflation_; }

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t h = 0;
    std::uint32_t handle = 0;
  };
  struct ItemKey {
    std::uint64_t h = 0;
    std::uint64_t seq = 0;
    Key key = 0;
  };
  struct ItemKeyLess {
    bool operator()(const ItemKey& a, const ItemKey& b) const noexcept {
      if (a.h != b.h) return a.h < b.h;
      return a.seq < b.seq;
    }
  };

  void evict_victim();

  std::unordered_map<Key, Entry> index_;
  heap::DaryHeap<ItemKey, ItemKeyLess, 2> heap_;
  std::uint64_t inflation_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace camp::policy
