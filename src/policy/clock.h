// CLOCK (second-chance) — the classic low-overhead LRU approximation used
// by OS page caches. A circular list with a reference bit per entry: the
// hand sweeps, clearing bits, and evicts the first entry whose bit is
// already clear. Hits only set a bit (no list surgery at all), which makes
// CLOCK the cheapest recency policy here — and a useful lower bound on
// bookkeeping cost when comparing against CAMP's O(1)-splice hits.
//
// Cost- and size-oblivious, like LRU.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "intrusive/list.h"
#include "policy/cache_iface.h"

namespace camp::policy {

class ClockCache final : public CacheBase {
 public:
  explicit ClockCache(std::uint64_t capacity_bytes);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override { return "clock"; }
  bool evict_one() override;

  /// Total hand advances (instrumentation: CLOCK's analogue of heap visits).
  [[nodiscard]] std::uint64_t hand_steps() const noexcept {
    return hand_steps_;
  }

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    bool referenced = false;
    intrusive::ListHook hook;
  };

  std::unordered_map<Key, Entry> index_;
  // The clock ring: front = next entry under the hand. Sweeping rotates
  // entries to the back; eviction pops the front.
  intrusive::List<Entry, &Entry::hook> ring_;
  std::uint64_t hand_steps_ = 0;
};

}  // namespace camp::policy
