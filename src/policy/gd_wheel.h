// GD-Wheel (Li & Cox, LADIS 2013) — the other cost-aware GDS descendant the
// paper's related-work section contrasts with CAMP.
//
// Instead of a priority queue, GD-Wheel spreads pairs over hierarchical
// "cost wheels" (timing-wheel-style circular arrays of LRU lists). The
// wheel hand tracks the GDS inflation value L; a pair with (scaled,
// integer) cost-to-size ratio r lands r slots ahead of the hand. Evicting
// advances the hand to the next occupied slot. When the level-0 wheel
// wraps, the next occupied level-1 slot is *migrated*: all its pairs are
// re-bucketed into level 0 — the recurring migration cost CAMP's design
// specifically avoids (we count migrations so the ablation bench can show
// it).
//
// GD-Wheel rounds the *total priority* (slot granularity) rather than the
// cost-to-size ratio, which is the approximation-quality difference the
// paper calls out. Pairs whose ratio exceeds the wheel span are clamped to
// the farthest slot (counted, documented).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "intrusive/list.h"
#include "policy/cache_iface.h"
#include "util/rounding.h"

namespace camp::policy {

struct GdWheelConfig {
  std::uint64_t capacity_bytes = 0;
  std::uint32_t slots_per_wheel = 256;  // N; level-1 granularity is N
  int num_levels = 2;                   // wheel hierarchy depth (1 or 2)
  /// Fixed fraction-to-integer multiplier: ratio = round(cost * multiplier
  /// / size), clamped to >= 1. GD-Wheel has no adaptive scaler — choosing
  /// this a priori is precisely the configuration burden the CAMP paper
  /// criticizes; ratios beyond the wheel span are clamped (and counted).
  std::uint64_t ratio_multiplier = 1024;
};

struct GdWheelIntrospection {
  std::uint64_t migrations = 0;        // level-1 -> level-0 slot migrations
  std::uint64_t migrated_items = 0;    // pairs re-bucketed by migrations
  std::uint64_t overflow_clamps = 0;   // ratios clamped to the wheel span
  std::uint64_t hand_position = 0;     // current L
};

class GdWheelCache final : public CacheBase {
 public:
  explicit GdWheelCache(GdWheelConfig config);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  [[nodiscard]] std::size_t item_count() const override;
  [[nodiscard]] std::string name() const override { return "gd-wheel"; }

  [[nodiscard]] GdWheelIntrospection introspect() const { return intro_; }
  [[nodiscard]] std::optional<Key> peek_victim();

 private:
  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t h = 0;  // absolute priority = L at insert + ratio
    int level = 0;
    std::uint32_t slot = 0;
    intrusive::ListHook hook;
  };
  using SlotList = intrusive::List<Entry, &Entry::hook>;

  [[nodiscard]] std::uint64_t ratio(std::uint64_t cost,
                                    std::uint64_t size) const;
  void place(Entry& e);   // bucket by e.h relative to hand (L)
  void unlink(Entry& e);  // remove from its slot list
  Entry* find_victim();   // advance the hand; may migrate level-1 slots
  bool migrate_level1();  // re-bucket the lowest level-1 block; false if empty
  bool migrate_overflow();  // re-bucket overflow items; false if empty
  void evict_victim();

  GdWheelConfig config_;
  util::AdaptiveRatioScaler scaler_;
  std::unordered_map<Key, Entry> index_;
  // deque: SlotList is an intrusive list, neither copyable nor movable.
  std::deque<SlotList> level0_;
  std::deque<SlotList> level1_;
  SlotList overflow_;  // priorities beyond the hierarchy span
  std::uint64_t hand_ = 0;  // absolute L; level-0 slot = h - hand_ offsets
  GdWheelIntrospection intro_;
};

}  // namespace camp::policy
