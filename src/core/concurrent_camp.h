// Thread-safe CAMP, implementing the vertical-scaling design the paper
// sketches in Section 4.1:
//
//   1. "It only updates its heap data structure (which requires synchronized
//      access) when the head of a LRU queue changes value instead of per
//      eviction." — the head heap sits behind one mutex that the hit path
//      takes only when a queue head actually changes; the global minimum is
//      mirrored into lock-free atomics for the L-raise read.
//   2. "Different threads may update different LRU queues simultaneously
//      without waiting for one another." — every LRU queue carries its own
//      mutex; a hit locks only its queue (plus the heap when the head moves).
//   3. "CAMP may represent each LRU queue as multiple physical queues and
//      hash partition keys across these physical queues to further enhance
//      concurrent access." — `physical_queues` splits each rounded-ratio
//      queue into that many sub-queues by key hash. Decisions are unchanged
//      (the head heap still surfaces the true global minimum; (H, seq) keys
//      are globally unique) at the price of more heap nodes.
//
// Locking protocol. A readers-writer `structure_` lock separates the two
// planes: hits run under the shared side (index stripe -> queue mutex ->
// heap mutex, strictly in that order, never holding two queue locks);
// misses, inserts, erases and evictions take the unique side and then run
// the exact serial algorithm. Hits that would change the queue topology
// (ratio migration after a multiplier growth, or a sole-entry queue that is
// also the global minimum) retry on the unique side. Run single-threaded,
// the cache makes decision-for-decision the same choices as BasicCampCache
// (tests/camp_concurrent_test.cc asserts this).
//
// The discipline is machine-checked two ways (util/mutex.h): Clang Thread
// Safety Annotations prove at compile time that the index stripes, the
// head heap and the listener are only touched under their mutexes (the
// exclusive side takes those inner locks too — uncontended there, since
// the unique structure lock excludes every shared holder — precisely so
// the GUARDED_BY claims hold on every path), and debug builds rank-check
// the acquisition order structure -> stripe -> queue -> heap -> listener
// at runtime. Queue lists and the h/seq entry fields stay unannotated:
// their guard alternates between the owning queue's mutex (shared plane)
// and the unique structure lock (exclusive plane), which the static
// analysis cannot express.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/dary_heap.h"
#include "intrusive/list.h"
#include "policy/cache_iface.h"
#include "util/mutex.h"
#include "util/rounding.h"

namespace camp::core {

struct ConcurrentCampConfig {
  std::uint64_t capacity_bytes = 0;
  /// INITIAL MSY rounding precision, as in CampConfig. The live value can
  /// move at runtime through IRetunable::retune; read it through
  /// ConcurrentCampCache::precision(), never from a config copy.
  int precision = 5;
  /// Physical sub-queues per rounded ratio (Section 4.1, feature 3). 1 keeps
  /// the serial layout; higher values trade extra heap nodes for less
  /// per-queue lock contention on hot ratios. Must be a power of two.
  std::uint32_t physical_queues = 1;
  /// Hash-map stripes for the key index. Must be a power of two.
  std::uint32_t index_stripes = 16;

  void validate() const;  // throws std::invalid_argument on nonsense
};

/// Point-in-time introspection mirror of CampIntrospection for the
/// concurrent engine; taken under the structure lock.
struct ConcurrentCampIntrospection {
  std::size_t nonempty_queues = 0;
  std::uint64_t queues_created = 0;
  std::uint64_t queues_destroyed = 0;
  std::uint64_t retunes = 0;  // precision changes (IRetunable)
  int precision = 0;          // current live precision
  std::uint64_t inflation = 0;
  std::uint64_t scaling_multiplier = 0;
  std::uint64_t shared_fast_hits = 0;   // hits served under the shared lock
  std::uint64_t exclusive_retries = 0;  // hits that fell to the unique side
  heap::HeapStats heap;
};

class ConcurrentCampCache final : public policy::ICache,
                                  public policy::IRetunable {
 public:
  using Key = policy::Key;

  explicit ConcurrentCampCache(ConcurrentCampConfig config);
  ~ConcurrentCampCache() override;

  ConcurrentCampCache(const ConcurrentCampCache&) = delete;
  ConcurrentCampCache& operator=(const ConcurrentCampCache&) = delete;

  // -- ICache (all entry points are thread-safe) ------------------------------
  // The eviction listener runs while the cache holds its exclusive lock;
  // it must not call back into this cache (same contract as the serial
  // engine, where the listener runs inside put()).
  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override;
  void erase(Key key) override;
  bool evict_one() override;

  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return config_.capacity_bytes;
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t item_count() const override;
  /// Folds the atomic counters into a snapshot. The returned reference
  /// points at a thread-local per-instance buffer (same contract as
  /// ShardedCache::stats()): concurrent callers never race on shared
  /// aggregation state, and it stays valid until the SAME thread calls
  /// stats() on the SAME instance again.
  [[nodiscard]] const policy::CacheStats& stats() const override;
  /// By-value variant of stats() for callers that want an owned snapshot.
  [[nodiscard]] policy::CacheStats stats_snapshot() const;
  [[nodiscard]] std::string name() const override;
  void set_eviction_listener(policy::EvictionListener listener) override;

  // -- IRetunable (thread-safe) ----------------------------------------------
  /// Switch the rounding precision on the exclusive plane: takes the unique
  /// structure lock, then rebuilds the queue topology exactly like the
  /// serial engine (resident pairs re-rounded and re-appended in access
  /// order; see BasicCampCache::retune for the decision-equivalence
  /// contract). Concurrent gets/puts simply order before or after the
  /// rebuild.
  bool retune(int new_precision) override;
  /// THE precision accessor: the live value every rounding decision and
  /// name() reads (relaxed atomic; config().precision is only the initial).
  [[nodiscard]] int precision() const noexcept override {
    return precision_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retune_count() const noexcept override {
    return retunes_.load(std::memory_order_relaxed);
  }

  // -- introspection ----------------------------------------------------------
  [[nodiscard]] ConcurrentCampIntrospection introspect() const;
  [[nodiscard]] std::uint64_t inflation() const noexcept {
    return inflation_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ConcurrentCampConfig& config() const noexcept {
    return config_;
  }

  /// Structural invariants (queue ordering, heap/head agreement, byte and
  /// item accounting). Not thread-safe: call quiesced, e.g. after joining
  /// worker threads in a stress test.
  [[nodiscard]] bool check_invariants();

 private:
  struct Queue;

  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t ratio = 0;  // rounded scaled ratio (logical queue id)
    std::uint64_t h = 0;
    std::uint64_t seq = 0;
    Queue* queue = nullptr;
    intrusive::ListHook hook;
  };

  struct Queue {
    std::uint64_t qid = 0;  // ratio * physical_queues + part
    std::uint64_t ratio = 0;
    // Guards `list` and the h/seq fields of its entries on the SHARED
    // plane; the exclusive side touches them lock-free under the unique
    // structure lock. That either-or guard is not expressible to the
    // static analysis, so these fields carry no GUARDED_BY.
    util::Mutex mutex{util::LockRank::kCampQueue};
    intrusive::List<Entry, &Entry::hook> list;
    std::uint32_t handle = 0;  // head-heap handle
  };

  struct HeadKey {
    std::uint64_t h = 0;
    std::uint64_t seq = 0;
    Queue* queue = nullptr;
  };
  struct HeadKeyLess {
    bool operator()(const HeadKey& a, const HeadKey& b) const noexcept {
      if (a.h != b.h) return a.h < b.h;
      return a.seq < b.seq;
    }
  };
  using HeadHeap = heap::DaryHeap<HeadKey, HeadKeyLess, 8>;

  struct alignas(64) IndexStripe {
    mutable util::Mutex mutex{util::LockRank::kCampIndexStripe};
    std::unordered_map<Key, Entry> map CAMP_GUARDED_BY(mutex);
  };

  [[nodiscard]] IndexStripe& stripe_for(Key key) const noexcept;
  [[nodiscard]] std::uint64_t queue_id(std::uint64_t ratio,
                                       Key key) const noexcept;
  [[nodiscard]] std::uint64_t rounded_ratio(std::uint64_t cost,
                                            std::uint64_t size) const noexcept;

  /// Fast-path hit under the shared structure lock. Returns false when the
  /// operation needs the exclusive side (topology change).
  bool try_touch_shared(Entry& e) CAMP_REQUIRES_SHARED(structure_);

  /// Serial-equivalent hit path; caller holds the unique structure lock.
  void touch_exclusive(Entry& e) CAMP_REQUIRES(structure_);

  // The following helpers require the unique structure lock (and take the
  // stripe/heap locks themselves where they touch guarded state).
  void detach_exclusive(Entry& e) CAMP_REQUIRES(structure_);
  void append_exclusive(Entry& e, std::uint64_t ratio)
      CAMP_REQUIRES(structure_);
  void evict_victim_exclusive() CAMP_REQUIRES(structure_);
  /// Retune rebuild (see BasicCampCache::rebuild_queues): drops every queue
  /// and the head heap, then re-appends all resident pairs in access order
  /// under the current precision.
  void rebuild_queues_exclusive() CAMP_REQUIRES(structure_);

  /// Re-reads the heap minimum into the atomic mirror; caller holds
  /// heap_mutex_.
  void refresh_min_head_locked() CAMP_REQUIRES(heap_mutex_);

  void raise_inflation(std::uint64_t candidate) noexcept;
  [[nodiscard]] static HeadKey head_key(Queue& q);

  ConcurrentCampConfig config_;
  util::AtomicRatioScaler scaler_;
  /// Live rounding precision (config_.precision is only the initial value).
  std::atomic<int> precision_;
  std::atomic<std::uint64_t> retunes_{0};

  mutable util::SharedMutex structure_{util::LockRank::kCampStructure};
  std::vector<std::unique_ptr<IndexStripe>> stripes_;

  // Queue topology: mutated only under the unique structure lock; shared
  // holders read it under their shared hold.
  std::unordered_map<std::uint64_t, Queue> queues_ CAMP_GUARDED_BY(structure_);

  mutable util::Mutex heap_mutex_{util::LockRank::kCampHeap};
  HeadHeap head_heap_ CAMP_GUARDED_BY(heap_mutex_);
  // Lock-free mirror of the heap minimum for the L-raise on the hit path.
  // Updated under heap_mutex_; readers tolerate a stale pair (the raise is a
  // monotone max and L <= every resident H, so a stale minimum only delays
  // inflation by one operation).
  std::atomic<std::uint64_t> min_head_h_{0};
  std::atomic<std::uint32_t> min_head_handle_{0};
  std::atomic<bool> heap_nonempty_{false};

  std::atomic<std::uint64_t> inflation_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> used_{0};

  // Statistics (atomics; folded into a CacheStats snapshot on demand).
  std::atomic<std::uint64_t> gets_{0}, hits_{0}, misses_{0}, puts_{0},
      evictions_{0}, rejected_puts_{0};
  std::atomic<std::uint64_t> shared_fast_hits_{0}, exclusive_retries_{0};
  std::uint64_t queues_created_ CAMP_GUARDED_BY(structure_) = 0;
  std::uint64_t queues_destroyed_ CAMP_GUARDED_BY(structure_) = 0;

  util::Mutex listener_mutex_{util::LockRank::kCampListener};
  policy::EvictionListener listener_ CAMP_GUARDED_BY(listener_mutex_);
};

/// Factory mirroring make_camp.
[[nodiscard]] std::unique_ptr<policy::ICache> make_concurrent_camp(
    ConcurrentCampConfig config);

}  // namespace camp::core
