// Self-tuning precision for CAMP: sampled shadow caches + set dueling.
//
// CAMP's precision parameter trades rounding error (decision quality)
// against queue count (work per operation); the paper sweeps it offline
// (fig5a) and freezes the winner in config. This module picks it at
// runtime instead, in the style of Safecracker's CAMPReplPolicy (sampled
// sets + psel counters dueling between competing behaviors):
//
//   * A deterministic hash over the key space samples ~1/2^sample_shift of
//     the request stream (~1/64 at the default). Sampling is a pure
//     function of (key, salt) — independent of sharding, threading and
//     wall-clock — so the same trace always produces the same duel.
//   * Every candidate precision runs a tiny scaled-capacity BasicCampCache
//     ("shadow") fed only the sampled stream: the same keys-to-bytes ratio
//     as the live cache, at 1/2^sample_shift of its footprint.
//   * Every `window_samples` sampled accesses (op-count-driven, NEVER
//     wall-clock) the shadows duel: the candidate with the lowest missed
//     cost in the window wins and its saturating psel counter rises while
//     the others decay. When the winner's psel reaches `psel_threshold`
//     and it is not the live setting, the live setting migrates and every
//     psel resets.
//   * Every decision input is ledgered in AutoTunerCounters (plus an
//     explicit migration list), so the adaptation itself is deterministic,
//     replayable and baselineable (fig_autotune pins it in CI).
//
// AutoTuner is a single-threaded decision core; SharedAutoTuner is the
// thread-safe facade one *logical* cache shares across all of its shards
// (ShardedCache shards, KvsStore shards). Shards never retune each other:
// the tuner only bumps an atomic epoch, and each shard compares it against
// its last-seen value and retunes itself lazily under its own locks — no
// cross-shard lock edges, and the psel trace is identical for any shard
// count (tests/camp_autotune_test.cc pins policy_shards ∈ {1,4}).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/camp.h"
#include "policy/cache_iface.h"
#include "util/mutex.h"

namespace camp::core {

struct AutoTunerConfig {
  /// Candidate precisions, one shadow cache each. Non-empty, unique, every
  /// value >= 1 (util::kPrecisionInfinity = GDS-exact decisions).
  std::vector<int> candidates{1, 2, 5, util::kPrecisionInfinity};
  /// The live setting assumed at start (what the live cache was built
  /// with). Does not have to be a candidate, but then the duel can only
  /// ever migrate away from it.
  int initial_precision = 5;
  /// A key joins the shadow stream iff the low `sample_shift` bits of its
  /// salted hash are zero: ~1/2^sample_shift of keys (~1/64 by default).
  std::uint32_t sample_shift = 6;
  /// Shadow capacity in bytes. 0 = live capacity >> sample_shift, the same
  /// keys-to-bytes ratio as the live cache over the sampled key subspace.
  std::uint64_t shadow_capacity_bytes = 0;
  /// Sampled accesses per duel window.
  std::uint32_t window_samples = 256;
  /// psel value (saturated at this bound) a challenger must reach to
  /// migrate the live setting; higher = slower but steadier adaptation.
  std::int32_t psel_threshold = 4;
  /// Salt folded into the sampling hash (decorrelates the sample from any
  /// other hash-of-key use, e.g. shard selection).
  std::uint64_t salt = 0xCA3DA7A5EEDULL;

  void validate() const;  // throws std::invalid_argument on nonsense
};

/// One migration of the live setting, in sampled-op time.
struct AutoTunerDecision {
  std::uint64_t sampled_ops = 0;  // counters.sampled when the duel fired
  int from = 0;
  int to = 0;
};

/// The replayable decision-trace ledger. Everything here is derived purely
/// from the observed (key, size, cost) stream, so equal traces give equal
/// ledgers — byte-stable in the fig_autotune baseline.
struct AutoTunerCounters {
  std::uint64_t ops = 0;      // every observed access
  std::uint64_t sampled = 0;  // accesses that joined the shadow stream
  std::uint64_t windows = 0;  // duel windows completed
  std::uint64_t retunes = 0;  // migrations of the live setting
  std::vector<std::int64_t> psel;           // per candidate, current value
  std::vector<std::uint64_t> window_wins;   // per candidate, lifetime
  std::vector<std::uint64_t> shadow_hits;   // per candidate, lifetime
  std::vector<std::uint64_t> shadow_misses;  // per candidate, lifetime
};

/// Single-threaded decision core. Not an ICache: callers feed it one
/// (key, size, cost) per live-cache access — a hit's resident metadata, or
/// the put() that follows a miss — and apply the returned migration.
class AutoTuner {
 public:
  AutoTuner(AutoTunerConfig config, std::uint64_t live_capacity_bytes);

  /// Observe one access. Returns the new precision when this access
  /// completes a window whose duel migrates the live setting.
  std::optional<int> observe(policy::Key key, std::uint64_t size,
                             std::uint64_t cost);

  /// True iff `key` belongs to the sampled shadow stream (pure function).
  [[nodiscard]] bool is_sampled(policy::Key key) const noexcept;

  [[nodiscard]] int current_precision() const noexcept { return current_; }
  [[nodiscard]] const AutoTunerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const AutoTunerCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::vector<AutoTunerDecision>& decisions()
      const noexcept {
    return decisions_;
  }

  /// Compact textual psel/migration trace, e.g. "w1:p5;w2:p5;w2>p64;...":
  /// one "w<window>:p<winner>" per completed window and one
  /// "w<window>>p<to>" per migration. Two runs over the same trace must
  /// produce byte-identical strings (the determinism tests compare these).
  [[nodiscard]] std::string trace() const;

 private:
  /// Close the current duel window; returns the migration, if any.
  std::optional<int> end_window();

  AutoTunerConfig config_;
  std::vector<std::unique_ptr<CampCache>> shadows_;  // one per candidate
  std::vector<std::uint64_t> window_miss_cost_;      // per candidate
  int current_;
  std::uint32_t window_fill_ = 0;
  AutoTunerCounters counters_;
  std::vector<AutoTunerDecision> decisions_;
  std::string trace_;
};

/// Thread-safe facade shared by every shard of one logical cache.
///
/// Shards register their capacity at construction time; the AutoTuner (and
/// its shadow caches) materializes on the first observed access, so the
/// shadow scale reflects the FULL logical capacity no matter how many
/// shards the bytes were split across — another ingredient of the
/// shard-count-independent psel trace.
///
/// Migration protocol: observe() only bumps the atomic `epoch`. Each shard
/// keeps the epoch it last saw and, when it differs, retunes its own
/// policy (under its own lock) to current_precision(). The tuner mutex
/// ranks at util::LockRank::kAutoTuner, between the shard planes that feed
/// it and the camp plane it must never reach into.
class SharedAutoTuner {
 public:
  explicit SharedAutoTuner(AutoTunerConfig config);

  /// Add a shard's capacity to the logical total. Must happen before the
  /// first observe() (shards register from their constructors); throws
  /// std::logic_error afterwards.
  void register_capacity(std::uint64_t bytes);

  /// Thread-safe AutoTuner::observe.
  void observe(policy::Key key, std::uint64_t size, std::uint64_t cost);

  /// The precision the duel currently favors (= what every shard should be
  /// retuned to).
  [[nodiscard]] int current_precision() const;

  /// Bumped once per migration; lock-free read for the per-op epoch check.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  [[nodiscard]] AutoTunerConfig tuner_config() const;
  [[nodiscard]] AutoTunerCounters counters() const;
  [[nodiscard]] std::vector<AutoTunerDecision> decisions() const;
  [[nodiscard]] std::string trace() const;

 private:
  /// The lazily-built decision core; materializes it on first use (const
  /// accessors may be the first caller, hence the mutable members).
  AutoTuner& tuner_locked() const CAMP_REQUIRES(mutex_);

  AutoTunerConfig config_;
  mutable util::Mutex mutex_{util::LockRank::kAutoTuner};
  mutable std::uint64_t registered_capacity_ CAMP_GUARDED_BY(mutex_) = 0;
  mutable std::unique_ptr<AutoTuner> tuner_ CAMP_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> epoch_{0};
};

/// ICache wrapper pairing a live CampCache with a (possibly shared)
/// SharedAutoTuner: the simulator/figures-facing form of self-tuning CAMP
/// ("camp:p=auto" in policy_factory). Mirrors every access into the tuner
/// — a hit's resident metadata on get(), the incoming pair on put() (the
/// simulator protocol puts after every non-cold miss, so each request is
/// observed at most once) — and applies pending migrations lazily before
/// each operation. name() reports the live (post-retune) precision.
class SelfTuningCampCache final : public policy::ICache,
                                  public policy::IRetunable {
 public:
  using Key = policy::Key;

  /// `config.precision` should equal the tuner's initial_precision; the
  /// shared-tuner factory (make_policy_factory) guarantees this.
  SelfTuningCampCache(CampConfig config,
                      std::shared_ptr<SharedAutoTuner> tuner);

  bool get(Key key) override;
  bool put(Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(Key key) const override {
    return live_.contains(key);
  }
  void erase(Key key) override { live_.erase(key); }
  bool evict_one() override { return live_.evict_one(); }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return live_.capacity_bytes();
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return live_.used_bytes();
  }
  [[nodiscard]] std::size_t item_count() const override {
    return live_.item_count();
  }
  [[nodiscard]] const policy::CacheStats& stats() const override {
    return live_.stats();
  }
  [[nodiscard]] std::string name() const override;
  void set_eviction_listener(policy::EvictionListener listener) override {
    live_.set_eviction_listener(std::move(listener));
  }

  // -- IRetunable ------------------------------------------------------------
  // A manual retune overrides the live cache until the duel's next
  // migration (the tuner keeps dueling regardless).
  bool retune(int new_precision) override {
    return live_.retune(new_precision);
  }
  [[nodiscard]] int precision() const override { return live_.precision(); }
  [[nodiscard]] std::uint64_t retune_count() const override {
    return live_.retune_count();
  }

  [[nodiscard]] const SharedAutoTuner& tuner() const noexcept {
    return *shared_tuner_;
  }
  [[nodiscard]] const CampCache& live() const noexcept { return live_; }

 private:
  /// Catch up with migrations other shards (or this one) triggered.
  void apply_pending_retune();

  CampCache live_;
  // Not `tuner_`: that name is SharedAutoTuner's guarded field, and the
  // check_lock_order field grep scans this whole translation unit.
  std::shared_ptr<SharedAutoTuner> shared_tuner_;
  std::uint64_t seen_epoch_ = 0;
};

/// Standalone self-tuning CAMP: one live cache, its own tuner.
[[nodiscard]] std::unique_ptr<policy::ICache> make_self_tuning_camp(
    CampConfig config, AutoTunerConfig tuner_config);

}  // namespace camp::core
