#include "core/auto_tuner.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"
#include "util/rounding.h"

namespace camp::core {

void AutoTunerConfig::validate() const {
  if (candidates.empty()) {
    throw std::invalid_argument("AutoTunerConfig: candidates must be non-empty");
  }
  std::unordered_set<int> seen;
  for (const int p : candidates) {
    if (p < 1) {
      throw std::invalid_argument(
          "AutoTunerConfig: candidate precisions must be >= 1");
    }
    if (!seen.insert(p).second) {
      throw std::invalid_argument(
          "AutoTunerConfig: duplicate candidate precision");
    }
  }
  if (initial_precision < 1) {
    throw std::invalid_argument(
        "AutoTunerConfig: initial_precision must be >= 1");
  }
  if (sample_shift > 32) {
    throw std::invalid_argument("AutoTunerConfig: sample_shift must be <= 32");
  }
  if (window_samples == 0) {
    throw std::invalid_argument("AutoTunerConfig: window_samples must be > 0");
  }
  if (psel_threshold < 1) {
    throw std::invalid_argument("AutoTunerConfig: psel_threshold must be >= 1");
  }
}

AutoTuner::AutoTuner(AutoTunerConfig config, std::uint64_t live_capacity_bytes)
    : config_(std::move(config)), current_(config_.initial_precision) {
  config_.validate();
  std::uint64_t shadow_capacity = config_.shadow_capacity_bytes;
  if (shadow_capacity == 0) {
    shadow_capacity =
        std::max<std::uint64_t>(1, live_capacity_bytes >> config_.sample_shift);
  }
  const std::size_t n = config_.candidates.size();
  shadows_.reserve(n);
  for (const int p : config_.candidates) {
    shadows_.push_back(
        std::make_unique<CampCache>(CampConfig{shadow_capacity, p}));
  }
  window_miss_cost_.assign(n, 0);
  counters_.psel.assign(n, 0);
  counters_.window_wins.assign(n, 0);
  counters_.shadow_hits.assign(n, 0);
  counters_.shadow_misses.assign(n, 0);
}

bool AutoTuner::is_sampled(policy::Key key) const noexcept {
  const std::uint64_t mask = (std::uint64_t{1} << config_.sample_shift) - 1;
  return (util::mix64(key ^ config_.salt) & mask) == 0;
}

std::optional<int> AutoTuner::observe(policy::Key key, std::uint64_t size,
                                      std::uint64_t cost) {
  ++counters_.ops;
  if (!is_sampled(key)) return std::nullopt;
  ++counters_.sampled;
  const std::uint64_t charged_cost = std::max<std::uint64_t>(1, cost);
  for (std::size_t i = 0; i < shadows_.size(); ++i) {
    if (shadows_[i]->get(key)) {
      ++counters_.shadow_hits[i];
    } else {
      // The simulator's miss rule: the window is charged the pair's cost
      // and the shadow admits it (oversized pairs are rejected but still
      // charged — they would miss in any cache).
      ++counters_.shadow_misses[i];
      window_miss_cost_[i] += charged_cost;
      if (size > 0) shadows_[i]->put(key, size, cost);
    }
  }
  if (++window_fill_ < config_.window_samples) return std::nullopt;
  return end_window();
}

std::optional<int> AutoTuner::end_window() {
  ++counters_.windows;
  window_fill_ = 0;
  // Winner = lowest missed cost; ties prefer the incumbent (no migration
  // without a strict improvement), then the lowest candidate index, so the
  // duel is deterministic.
  const std::uint64_t best =
      *std::min_element(window_miss_cost_.begin(), window_miss_cost_.end());
  std::size_t winner = window_miss_cost_.size();
  for (std::size_t i = 0; i < window_miss_cost_.size(); ++i) {
    if (window_miss_cost_[i] != best) continue;
    if (config_.candidates[i] == current_) {
      winner = i;
      break;
    }
    if (winner == window_miss_cost_.size()) winner = i;
  }
  std::fill(window_miss_cost_.begin(), window_miss_cost_.end(), 0);
  ++counters_.window_wins[winner];
  for (std::size_t i = 0; i < counters_.psel.size(); ++i) {
    std::int64_t& p = counters_.psel[i];
    if (i == winner) {
      p = std::min<std::int64_t>(p + 1, config_.psel_threshold);
    } else {
      p = std::max<std::int64_t>(p - 1, 0);
    }
  }
  trace_ += "w" + std::to_string(counters_.windows) + ":p" +
            std::to_string(config_.candidates[winner]) + ";";
  const int winning_precision = config_.candidates[winner];
  if (winning_precision == current_ ||
      counters_.psel[winner] < config_.psel_threshold) {
    return std::nullopt;
  }
  decisions_.push_back(
      AutoTunerDecision{counters_.sampled, current_, winning_precision});
  trace_ += "w" + std::to_string(counters_.windows) + ">p" +
            std::to_string(winning_precision) + ";";
  current_ = winning_precision;
  ++counters_.retunes;
  std::fill(counters_.psel.begin(), counters_.psel.end(), 0);
  return winning_precision;
}

std::string AutoTuner::trace() const { return trace_; }

// ---------------------------------------------------------------------------
// SharedAutoTuner
// ---------------------------------------------------------------------------

SharedAutoTuner::SharedAutoTuner(AutoTunerConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void SharedAutoTuner::register_capacity(std::uint64_t bytes) {
  util::MutexLock g(mutex_);
  if (tuner_ != nullptr) {
    throw std::logic_error(
        "SharedAutoTuner: register_capacity after traffic started");
  }
  registered_capacity_ += bytes;
}

AutoTuner& SharedAutoTuner::tuner_locked() const {
  if (tuner_ == nullptr) {
    tuner_ = std::make_unique<AutoTuner>(config_, registered_capacity_);
  }
  return *tuner_;
}

void SharedAutoTuner::observe(policy::Key key, std::uint64_t size,
                              std::uint64_t cost) {
  util::MutexLock g(mutex_);
  if (tuner_locked().observe(key, size, cost).has_value()) {
    epoch_.fetch_add(1, std::memory_order_release);
  }
}

int SharedAutoTuner::current_precision() const {
  util::MutexLock g(mutex_);
  return tuner_locked().current_precision();
}

AutoTunerConfig SharedAutoTuner::tuner_config() const { return config_; }

AutoTunerCounters SharedAutoTuner::counters() const {
  util::MutexLock g(mutex_);
  return tuner_locked().counters();
}

std::vector<AutoTunerDecision> SharedAutoTuner::decisions() const {
  util::MutexLock g(mutex_);
  return tuner_locked().decisions();
}

std::string SharedAutoTuner::trace() const {
  util::MutexLock g(mutex_);
  return tuner_locked().trace();
}

// ---------------------------------------------------------------------------
// SelfTuningCampCache
// ---------------------------------------------------------------------------

SelfTuningCampCache::SelfTuningCampCache(CampConfig config,
                                         std::shared_ptr<SharedAutoTuner> tuner)
    : live_(config), shared_tuner_(std::move(tuner)) {
  if (shared_tuner_ == nullptr) {
    throw std::invalid_argument("SelfTuningCampCache: tuner must not be null");
  }
  shared_tuner_->register_capacity(config.capacity_bytes);
}

void SelfTuningCampCache::apply_pending_retune() {
  const std::uint64_t e = shared_tuner_->epoch();
  if (e == seen_epoch_) return;
  seen_epoch_ = e;
  live_.retune(shared_tuner_->current_precision());
}

bool SelfTuningCampCache::get(Key key) {
  apply_pending_retune();
  const bool hit = live_.get(key);
  // Misses are observed by the put() the caller issues next (simulator
  // protocol); a hit's metadata comes from the resident pair.
  if (hit) shared_tuner_->observe(key, live_.size_of(key), live_.cost_of(key));
  return hit;
}

bool SelfTuningCampCache::put(Key key, std::uint64_t size, std::uint64_t cost) {
  apply_pending_retune();
  shared_tuner_->observe(key, size, cost);
  const bool admitted = live_.put(key, size, cost);
  // The tuner may have migrated on this very access; the next operation
  // applies it (apply_pending_retune), keeping observe/mutate phases
  // strictly ordered.
  return admitted;
}

std::string SelfTuningCampCache::name() const {
  const int p = live_.precision();
  if (p >= util::kPrecisionInfinity) return "camp-auto(p=inf)";
  return "camp-auto(p=" + std::to_string(p) + ")";
}

std::unique_ptr<policy::ICache> make_self_tuning_camp(
    CampConfig config, AutoTunerConfig shared_tuner_config) {
  config.precision = shared_tuner_config.initial_precision;
  return std::make_unique<SelfTuningCampCache>(
      config, std::make_shared<SharedAutoTuner>(std::move(shared_tuner_config)));
}

}  // namespace camp::core
