// CAMP: Cost Adaptive Multi-queue eviction Policy (the paper's contribution).
//
// CAMP approximates Greedy Dual Size with LRU-grade constant-factor work:
//
//   * Every resident pair has priority H = L + r, where L is the global
//     non-decreasing GDS inflation value and r is the pair's cost-to-size
//     ratio, scaled to an integer adaptively (by the largest size seen so
//     far, a lower-bound estimate of 1/min-ratio) and rounded to its
//     `precision` most significant bits (util::msy_round).
//   * Pairs with equal rounded ratio share one LRU queue. Because L never
//     decreases, LRU order within a queue IS priority order, so each queue
//     is a plain intrusive list.
//   * An 8-ary implicit heap indexes only the queue *heads*. The eviction
//     victim is the head with the lexicographically smallest (H, access
//     sequence number) — i.e. minimum priority with LRU tie-breaking, as
//     the paper specifies.
//   * A hit that does not change a queue head costs O(1); the heap is
//     touched only when a head changes or a queue appears/disappears.
//
// With precision = util::kPrecisionInfinity the rounded ratio equals the
// scaled ratio and CAMP's decisions are exactly those of GDS with LRU
// tie-breaking (tests/camp_gds_equivalence_test.cc asserts this).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/dary_heap.h"
#include "intrusive/list.h"
#include "policy/cache_iface.h"
#include "util/rounding.h"

namespace camp::core {

struct CampConfig {
  std::uint64_t capacity_bytes = 0;
  /// Number of significant bits kept by the rounding scheme. The paper's
  /// simulation sweeps 1..10 and uses 5 for the headline figures;
  /// util::kPrecisionInfinity disables rounding (GDS-equivalent decisions).
  int precision = 5;
  /// Recompute the rounded ratio with the current scaling multiplier on
  /// every hit (paper: the adaptively-grown multiplier "is used for all
  /// future rounding"). Disabling freezes a pair's queue assignment at
  /// insert time; kept as an ablation knob.
  bool recompute_ratio_on_hit = true;
  /// CAMP-F extension (not in the paper): fold a per-pair hit counter into
  /// the ratio, GDSF-style — H = L + round(freq * cost / size). A hit then
  /// usually migrates the pair to a higher queue, but the multi-queue/
  /// head-heap machinery is unchanged and the rounding still bounds the
  /// queue count. At precision infinity, decisions are exactly those of
  /// GDSF with LRU tie-breaks (tests/camp_frequency_test.cc). Implies
  /// ratio recomputation on hits. Frequency is capped at 2^16, as in Squid.
  bool frequency_aware = false;

  void validate() const;  // throws std::invalid_argument on nonsense
};

/// Aggregate introspection counters, exposed for tests and the Figure 4/5b
/// benches.
struct CampIntrospection {
  std::size_t nonempty_queues = 0;       // current LRU queue count
  std::uint64_t queues_created = 0;      // lifetime
  std::uint64_t queues_destroyed = 0;    // lifetime
  std::uint64_t retunes = 0;             // precision changes (IRetunable)
  std::uint64_t inflation = 0;           // current L
  std::uint64_t max_scaled_ratio = 0;    // largest pre-rounding ratio seen (U)
  std::uint64_t scaling_multiplier = 0;  // current adaptive max-size
  heap::HeapStats heap;                  // head-heap instrumentation
};

template <int HeapArity = 8>
class BasicCampCache final : public policy::CacheBase,
                             public policy::IRetunable {
 public:
  using Key = policy::Key;

  explicit BasicCampCache(CampConfig config)
      : policy::CacheBase(config.capacity_bytes), config_(config) {
    config_.validate();
  }

  // -- ICache ---------------------------------------------------------------
  bool get(Key key) override {
    ++stats_.gets;
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    touch(it->second);
    return true;
  }

  bool put(Key key, std::uint64_t size, std::uint64_t cost) override {
    ++stats_.puts;
    if (size == 0 || size > capacity_) {
      ++stats_.rejected_puts;
      return false;
    }
    erase(key);  // overwrite semantics: drop any stale pair first
    scaler_.observe_size(size);
    const std::uint64_t ratio = rounded_ratio(cost, size);
    while (used_ + size > capacity_) evict_victim();
    auto [it, inserted] = index_.try_emplace(key);
    assert(inserted);
    Entry& e = it->second;
    e.key = key;
    e.size = size;
    e.cost = cost;
    e.freq = 1;
    e.ratio = ratio;
    e.h = inflation_ + ratio;
    e.seq = ++seq_;
    append(e, ratio);
    used_ += size;
    return true;
  }

  [[nodiscard]] bool contains(Key key) const override {
    return index_.contains(key);
  }

  void erase(Key key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    Entry& e = it->second;
    detach(e);
    used_ -= e.size;
    index_.erase(it);
  }

  [[nodiscard]] std::size_t item_count() const override {
    return index_.size();
  }

  [[nodiscard]] std::string name() const override {
    const std::string base = config_.frequency_aware ? "camp-f" : "camp";
    if (precision() >= util::kPrecisionInfinity) {
      return base + "(p=inf)";
    }
    return base + "(p=" + std::to_string(precision()) + ")";
  }

  /// Evict the current victim on demand (KVS engine slab pressure).
  bool evict_one() override {
    if (head_heap_.empty()) return false;
    evict_victim();
    return true;
  }

  // -- IRetunable -------------------------------------------------------------
  /// Switch the rounding precision and rebuild the queue topology in place.
  ///
  /// Every resident pair is re-rounded at the new precision and re-appended
  /// in global access order (seq), with its priority refreshed to L + r'.
  /// The rebuilt cache is decision-equivalent to a fresh cache at the new
  /// precision that admitted the same resident set in recency order at a
  /// constant L; the only permitted divergence is the order of (H, seq)
  /// ties, which the rebuild resolves by access recency (documented
  /// queue-order ties — tests/camp_retune_test.cc pins both directions).
  bool retune(int new_precision) override {
    if (new_precision < 1) {
      throw std::invalid_argument(
          "BasicCampCache::retune: precision must be >= 1");
    }
    if (new_precision == config_.precision) return false;
    config_.precision = new_precision;
    rebuild_queues();
    ++intro_.retunes;
    return true;
  }

  /// THE precision accessor: every rounding decision and name() reads the
  /// live value through here (no scattered config copies).
  [[nodiscard]] int precision() const noexcept override {
    return config_.precision;
  }

  [[nodiscard]] std::uint64_t retune_count() const noexcept override {
    return intro_.retunes;
  }

  // -- introspection ----------------------------------------------------------
  /// Key of the pair CAMP would evict next, if any. (Used by the
  /// CAMP-vs-GDS equivalence property tests.)
  [[nodiscard]] std::optional<Key> peek_victim() const {
    if (head_heap_.empty()) return std::nullopt;
    return head_heap_.top().queue->list.front()->key;
  }

  /// Current H value of a resident key (0 if absent).
  [[nodiscard]] std::uint64_t priority_of(Key key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : it->second.h;
  }

  /// Current rounded ratio (queue id) of a resident key (0 if absent).
  [[nodiscard]] std::uint64_t ratio_of(Key key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : it->second.ratio;
  }

  /// Hit count of a resident key (0 if absent; meaningful for CAMP-F).
  [[nodiscard]] std::uint32_t frequency_of(Key key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : it->second.freq;
  }

  /// Size / cost of a resident key (0 if absent). The auto-tuner's wrapper
  /// (core/auto_tuner.h) mirrors live hits into the shadow stream with
  /// these, since ICache::get carries no metadata.
  [[nodiscard]] std::uint64_t size_of(Key key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : it->second.size;
  }
  [[nodiscard]] std::uint64_t cost_of(Key key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : it->second.cost;
  }

  [[nodiscard]] CampIntrospection introspect() const {
    CampIntrospection out = intro_;
    out.nonempty_queues = queues_.size();
    out.inflation = inflation_;
    out.scaling_multiplier = scaler_.max_size();
    out.heap = head_heap_.stats();
    return out;
  }

  [[nodiscard]] const CampConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t inflation() const noexcept { return inflation_; }
  [[nodiscard]] std::size_t queue_count() const noexcept {
    return queues_.size();
  }

  /// Structural invariants; exercised by property tests after every
  /// operation sequence. Returns false (rather than asserting) so tests can
  /// report the failing sequence.
  [[nodiscard]] bool check_invariants() {
    if (!head_heap_.check_invariants()) return false;
    std::uint64_t bytes = 0;
    std::size_t items = 0;
    for (auto& [ratio, q] : queues_) {
      if (q.list.empty()) return false;
      // Within a queue: strictly increasing (h, seq) from head to tail (seq
      // is globally unique), so the head is the queue's minimum; every entry
      // belongs to this queue and carries its ratio. Prop. 1 bounds H.
      bool first = true;
      std::uint64_t prev_h = 0, prev_seq = 0;
      for (Entry& e : q.list) {
        if (e.ratio != ratio || e.queue != &q) return false;
        if (!first &&
            (e.h < prev_h || (e.h == prev_h && e.seq <= prev_seq))) {
          return false;
        }
        if (e.h < inflation_ || e.h > inflation_ + e.ratio) return false;
        first = false;
        prev_h = e.h;
        prev_seq = e.seq;
        bytes += e.size;
        ++items;
      }
      // The heap key for this queue must match its head.
      const HeadKey hk = head_heap_.value(q.handle);
      const Entry* head = q.list.front();
      if (hk.h != head->h || hk.seq != head->seq || hk.queue != &q) {
        return false;
      }
    }
    if (bytes != used_ || items != index_.size()) return false;
    if (used_ > capacity_) return false;
    return head_heap_.size() == queues_.size();
  }

 private:
  struct Queue;

  struct Entry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t ratio = 0;  // rounded scaled cost-to-size ratio (queue id)
    std::uint64_t h = 0;      // priority = L at last touch + ratio
    std::uint64_t seq = 0;    // global access sequence, for LRU tie-breaks
    std::uint32_t freq = 1;   // hit count; only used when frequency_aware
    Queue* queue = nullptr;
    intrusive::ListHook hook;
  };

  struct Queue {
    std::uint64_t ratio = 0;
    intrusive::List<Entry, &Entry::hook> list;
    std::uint32_t handle = 0;  // head-heap handle
  };

  struct HeadKey {
    std::uint64_t h = 0;
    std::uint64_t seq = 0;
    Queue* queue = nullptr;
  };
  struct HeadKeyLess {
    bool operator()(const HeadKey& a, const HeadKey& b) const noexcept {
      if (a.h != b.h) return a.h < b.h;
      return a.seq < b.seq;  // LRU tie-break across queues
    }
  };
  using HeadHeap = heap::DaryHeap<HeadKey, HeadKeyLess, HeapArity>;

  static constexpr std::uint32_t kMaxFrequency = 1u << 16;

  /// The cost fed into the ratio: plain cost, or freq-weighted for CAMP-F.
  [[nodiscard]] std::uint64_t effective_cost(const Entry& e) const noexcept {
    return config_.frequency_aware ? e.cost * e.freq : e.cost;
  }

  [[nodiscard]] std::uint64_t rounded_ratio(std::uint64_t cost,
                                            std::uint64_t size) {
    const std::uint64_t scaled = scaler_.scale(cost, size);
    if (scaled > intro_.max_scaled_ratio) intro_.max_scaled_ratio = scaled;
    return util::msy_round(scaled, precision());
  }

  /// Retune rebuild: drop every queue and the head heap, then re-append all
  /// resident pairs in access order under the current precision. Priorities
  /// are refreshed to L + r' (L itself never moves here), so Proposition 1
  /// and the within-queue strictly-increasing (h, seq) invariant hold
  /// immediately: within a rebuilt queue all pairs share h = L + r' and seq
  /// is strictly increasing by construction.
  void rebuild_queues() {
    std::vector<Entry*> entries;
    entries.reserve(index_.size());
    for (auto& [key, e] : index_) entries.push_back(&e);
    std::sort(entries.begin(), entries.end(),
              [](const Entry* a, const Entry* b) { return a->seq < b->seq; });
    for (auto& [ratio, q] : queues_) q.list.clear();
    intro_.queues_destroyed += queues_.size();
    queues_.clear();
    head_heap_.clear();
    for (Entry* e : entries) {
      e->queue = nullptr;
      e->ratio = rounded_ratio(effective_cost(*e), e->size);
      e->h = inflation_ + e->ratio;
      append(*e, e->ratio);
    }
  }

  [[nodiscard]] static HeadKey head_key(Queue& q) {
    const Entry* head = q.list.front();
    return HeadKey{head->h, head->seq, &q};
  }

  /// Unlink an entry from its queue; maintains the head heap and destroys
  /// the queue if it empties. `e.queue` is nulled.
  void detach(Entry& e) {
    Queue& q = *e.queue;
    const bool was_head = (q.list.front() == &e);
    q.list.remove(e);
    e.queue = nullptr;
    if (q.list.empty()) {
      head_heap_.erase(q.handle);
      ++intro_.queues_destroyed;
      queues_.erase(q.ratio);  // q is dead after this line
    } else if (was_head) {
      head_heap_.update(q.handle, head_key(q));
    }
  }

  /// Append an entry (h/seq/ratio already set) to the queue for `ratio`,
  /// creating the queue (and its heap node) on demand.
  void append(Entry& e, std::uint64_t ratio) {
    auto [it, created] = queues_.try_emplace(ratio);
    Queue& q = it->second;
    q.list.push_back(e);
    e.queue = &q;
    if (created) {
      q.ratio = ratio;
      q.handle = head_heap_.push(head_key(q));
      ++intro_.queues_created;
    }
    // Tail insertion into an existing queue never changes the head: the new
    // (h, seq) is >= every resident pair's because L and seq never decrease.
  }

  /// Apply hit side effects: H(p) <- L + ratio with L = min H over the
  /// *other* resident pairs (Algorithm 1 line 2), then move to MRU position.
  void touch(Entry& e) {
    Queue& q = *e.queue;
    const bool sole = (q.list.size() == 1);
    if (config_.frequency_aware && e.freq < kMaxFrequency) ++e.freq;
    const std::uint64_t new_ratio =
        (config_.recompute_ratio_on_hit || config_.frequency_aware)
            ? rounded_ratio(effective_cost(e), e.size)
            : e.ratio;
    if (sole && new_ratio == e.ratio &&
        head_heap_.top_handle() != q.handle) {
      // Fast path: p is alone in a queue that is not the global minimum.
      // The minimum over the other pairs is the heap top as-is.
      raise_inflation(head_heap_.top().h);
      e.h = inflation_ + e.ratio;
      e.seq = ++seq_;
      head_heap_.update(q.handle, head_key(q));
      return;
    }
    detach(e);
    if (!head_heap_.empty()) raise_inflation(head_heap_.top().h);
    e.ratio = new_ratio;
    e.h = inflation_ + new_ratio;
    e.seq = ++seq_;
    append(e, new_ratio);
  }

  void evict_victim() {
    assert(!head_heap_.empty() && "eviction requested from an empty cache");
    Queue& q = *head_heap_.top().queue;
    Entry* victim = q.list.front();
    raise_inflation(victim->h);  // L <- H of the evicted minimum
    const Key vkey = victim->key;
    const std::uint64_t vsize = victim->size;
    detach(*victim);
    index_.erase(vkey);
    note_eviction(vkey, vsize);
  }

  void raise_inflation(std::uint64_t candidate) noexcept {
    // Proposition 1 guarantees candidate >= L already; max() keeps the
    // invariant explicit and cheap.
    if (candidate > inflation_) inflation_ = candidate;
  }

  CampConfig config_;
  util::AdaptiveRatioScaler scaler_;
  std::unordered_map<Key, Entry> index_;
  std::unordered_map<std::uint64_t, Queue> queues_;  // rounded ratio -> queue
  HeadHeap head_heap_;
  std::uint64_t inflation_ = 0;  // the GDS global value L
  std::uint64_t seq_ = 0;        // global access counter (LRU tie-breaks)
  CampIntrospection intro_;      // lifetime counters (queues, max ratio)
};

/// The paper's configuration: 8-ary implicit head heap.
using CampCache = BasicCampCache<8>;

/// Factory used by the sweep driver and the policy registry.
[[nodiscard]] std::unique_ptr<policy::ICache> make_camp(CampConfig config);

extern template class BasicCampCache<2>;
extern template class BasicCampCache<4>;
extern template class BasicCampCache<8>;
extern template class BasicCampCache<16>;

}  // namespace camp::core
