#include "core/camp.h"

#include <stdexcept>

namespace camp::core {

void CampConfig::validate() const {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("CampConfig: capacity_bytes must be > 0");
  }
  if (precision < 1) {
    throw std::invalid_argument("CampConfig: precision must be >= 1");
  }
}

std::unique_ptr<policy::ICache> make_camp(CampConfig config) {
  return std::make_unique<CampCache>(config);
}

template class BasicCampCache<2>;
template class BasicCampCache<4>;
template class BasicCampCache<8>;
template class BasicCampCache<16>;

}  // namespace camp::core
