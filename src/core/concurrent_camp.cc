#include "core/concurrent_camp.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <stdexcept>
#include <vector>

namespace camp::core {

namespace {

/// Fibonacci mix for the key -> physical sub-queue / index stripe hashes.
[[nodiscard]] std::uint64_t mix(std::uint64_t key) noexcept {
  return key * 0x9E3779B97F4A7C15ULL;
}

}  // namespace

void ConcurrentCampConfig::validate() const {
  if (capacity_bytes == 0) {
    throw std::invalid_argument(
        "ConcurrentCampConfig: capacity_bytes must be > 0");
  }
  if (precision < 1) {
    throw std::invalid_argument("ConcurrentCampConfig: precision must be >= 1");
  }
  if (physical_queues == 0 || physical_queues > 256 ||
      !std::has_single_bit(physical_queues)) {
    throw std::invalid_argument(
        "ConcurrentCampConfig: physical_queues must be a power of two in "
        "[1, 256]");
  }
  if (index_stripes == 0 || !std::has_single_bit(index_stripes)) {
    throw std::invalid_argument(
        "ConcurrentCampConfig: index_stripes must be a power of two");
  }
}

ConcurrentCampCache::ConcurrentCampCache(ConcurrentCampConfig config)
    : config_(config), precision_(config.precision) {
  config_.validate();
  stripes_.reserve(config_.index_stripes);
  for (std::uint32_t i = 0; i < config_.index_stripes; ++i) {
    stripes_.push_back(std::make_unique<IndexStripe>());
  }
}

ConcurrentCampCache::~ConcurrentCampCache() = default;

ConcurrentCampCache::IndexStripe& ConcurrentCampCache::stripe_for(
    Key key) const noexcept {
  const std::uint64_t h = mix(key) >> 32;
  return *stripes_[h & (config_.index_stripes - 1)];
}

std::uint64_t ConcurrentCampCache::queue_id(std::uint64_t ratio,
                                            Key key) const noexcept {
  if (config_.physical_queues == 1) return ratio;
  const auto shift =
      static_cast<unsigned>(std::countr_zero(config_.physical_queues));
  const std::uint64_t part = mix(key) >> (64 - shift);
  // Ratios large enough to collide after the shift would need > 2^(64-shift)
  // distinct scaled values; the adaptive scaler keeps ratios far below that.
  return (ratio << shift) | part;
}

std::uint64_t ConcurrentCampCache::rounded_ratio(
    std::uint64_t cost, std::uint64_t size) const noexcept {
  return scaler_.scale_and_round(cost, size, precision());
}

ConcurrentCampCache::HeadKey ConcurrentCampCache::head_key(Queue& q) {
  const Entry* head = q.list.front();
  return HeadKey{head->h, head->seq, &q};
}

void ConcurrentCampCache::raise_inflation(std::uint64_t candidate) noexcept {
  std::uint64_t current = inflation_.load(std::memory_order_relaxed);
  while (candidate > current) {
    if (inflation_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

void ConcurrentCampCache::refresh_min_head_locked() {
  if (head_heap_.empty()) {
    heap_nonempty_.store(false, std::memory_order_relaxed);
    return;
  }
  min_head_h_.store(head_heap_.top().h, std::memory_order_relaxed);
  min_head_handle_.store(head_heap_.top_handle(), std::memory_order_relaxed);
  heap_nonempty_.store(true, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Shared-side hit path
// ---------------------------------------------------------------------------

bool ConcurrentCampCache::try_touch_shared(Entry& e) {
  // e.queue is stable here: only the exclusive side migrates entries between
  // queues, and we hold the shared structure lock.
  Queue& q = *e.queue;
  util::MutexLock queue_lock(q.mutex);
  const std::uint64_t new_ratio = rounded_ratio(e.cost, e.size);
  if (new_ratio != e.ratio) return false;  // queue migration: exclusive side

  if (q.list.size() == 1) {
    // Serial fast path: p alone in a queue that is not the global minimum.
    // L <- current heap top (the minimum over the *other* pairs), then the
    // refreshed head goes straight back into the heap node.
    util::MutexLock heap_lock(heap_mutex_);
    if (head_heap_.top_handle() == q.handle) return false;
    raise_inflation(head_heap_.top().h);
    e.h = inflation_.load(std::memory_order_relaxed) + e.ratio;
    e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    head_heap_.update(q.handle, HeadKey{e.h, e.seq, &q});
    refresh_min_head_locked();
    return true;
  }

  const bool was_head = (q.list.front() == &e);
  q.list.remove(e);
  if (was_head) {
    // The queue head changed: this is the only case where the hit path
    // synchronizes on the heap (Section 4.1, feature 1).
    util::MutexLock heap_lock(heap_mutex_);
    head_heap_.update(q.handle, head_key(q));
    raise_inflation(head_heap_.top().h);
    refresh_min_head_locked();
  } else {
    // Lock-free L raise from the mirrored heap minimum. A stale value only
    // under-raises L, which Proposition 1 tolerates (L stays <= every H).
    raise_inflation(min_head_h_.load(std::memory_order_relaxed));
  }
  e.h = inflation_.load(std::memory_order_relaxed) + e.ratio;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  q.list.push_back(e);  // tail insert never changes the head
  return true;
}

bool ConcurrentCampCache::get(Key key) {
  gets_.fetch_add(1, std::memory_order_relaxed);
  {
    util::ReaderLock shared(structure_);
    Entry* e = nullptr;
    {
      IndexStripe& s = stripe_for(key);
      util::MutexLock g(s.mutex);
      const auto it = s.map.find(key);
      if (it == s.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      e = &it->second;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (try_touch_shared(*e)) {
      shared_fast_hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Topology change needed (ratio migration or sole-head-of-heap). Re-find
  // under the exclusive lock: the entry may have been evicted in the window,
  // in which case the hit stands but the side effects are moot.
  exclusive_retries_.fetch_add(1, std::memory_order_relaxed);
  util::WriterLock exclusive(structure_);
  IndexStripe& s = stripe_for(key);
  util::MutexLock g(s.mutex);
  const auto it = s.map.find(key);
  if (it != s.map.end()) touch_exclusive(it->second);
  return true;
}

// ---------------------------------------------------------------------------
// Exclusive side: the serial algorithm verbatim. The unique structure lock
// excludes every shared holder, so the inner stripe/heap locks taken below
// are uncontended; they exist so the GUARDED_BY claims hold on every path.
// ---------------------------------------------------------------------------

void ConcurrentCampCache::detach_exclusive(Entry& e) {
  Queue& q = *e.queue;
  const bool was_head = (q.list.front() == &e);
  q.list.remove(e);
  e.queue = nullptr;
  if (q.list.empty()) {
    {
      util::MutexLock heap_lock(heap_mutex_);
      head_heap_.erase(q.handle);
      refresh_min_head_locked();
    }
    ++queues_destroyed_;
    queues_.erase(q.qid);  // q is dead after this line
  } else if (was_head) {
    util::MutexLock heap_lock(heap_mutex_);
    head_heap_.update(q.handle, head_key(q));
    refresh_min_head_locked();
  } else {
    util::MutexLock heap_lock(heap_mutex_);
    refresh_min_head_locked();
  }
}

void ConcurrentCampCache::append_exclusive(Entry& e, std::uint64_t ratio) {
  const std::uint64_t qid = queue_id(ratio, e.key);
  auto [it, created] = queues_.try_emplace(qid);
  Queue& q = it->second;
  q.list.push_back(e);
  e.queue = &q;
  if (created) {
    q.qid = qid;
    q.ratio = ratio;
    util::MutexLock heap_lock(heap_mutex_);
    q.handle = head_heap_.push(head_key(q));
    ++queues_created_;
    refresh_min_head_locked();
  }
}

void ConcurrentCampCache::touch_exclusive(Entry& e) {
  const std::uint64_t new_ratio = rounded_ratio(e.cost, e.size);
  detach_exclusive(e);
  {
    util::MutexLock heap_lock(heap_mutex_);
    if (!head_heap_.empty()) raise_inflation(head_heap_.top().h);
  }
  e.ratio = new_ratio;
  e.h = inflation_.load(std::memory_order_relaxed) + new_ratio;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  append_exclusive(e, new_ratio);
}

void ConcurrentCampCache::evict_victim_exclusive() {
  Queue* q = nullptr;
  {
    util::MutexLock heap_lock(heap_mutex_);
    assert(!head_heap_.empty() && "eviction requested from an empty cache");
    q = head_heap_.top().queue;
  }
  Entry* victim = q->list.front();
  raise_inflation(victim->h);  // L <- H of the evicted minimum
  const Key vkey = victim->key;
  const std::uint64_t vsize = victim->size;
  detach_exclusive(*victim);
  {
    IndexStripe& s = stripe_for(vkey);
    util::MutexLock g(s.mutex);
    s.map.erase(vkey);
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
  used_.fetch_sub(vsize, std::memory_order_relaxed);
  policy::EvictionListener listener;
  {
    util::MutexLock g(listener_mutex_);
    listener = listener_;
  }
  if (listener) listener(vkey, vsize);
}

bool ConcurrentCampCache::retune(int new_precision) {
  if (new_precision < 1) {
    throw std::invalid_argument(
        "ConcurrentCampCache::retune: precision must be >= 1");
  }
  util::WriterLock exclusive(structure_);
  if (new_precision == precision()) return false;
  precision_.store(new_precision, std::memory_order_relaxed);
  rebuild_queues_exclusive();
  retunes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ConcurrentCampCache::rebuild_queues_exclusive() {
  // Gather every resident entry in global access order; seq is globally
  // unique, so the sort is a total (deterministic) order.
  std::vector<Entry*> entries;
  for (const auto& stripe : stripes_) {
    util::MutexLock g(stripe->mutex);
    entries.reserve(entries.size() + stripe->map.size());
    for (auto& [key, e] : stripe->map) entries.push_back(&e);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->seq < b->seq; });
  for (auto& [qid, q] : queues_) q.list.clear();
  queues_destroyed_ += queues_.size();
  queues_.clear();
  {
    util::MutexLock heap_lock(heap_mutex_);
    head_heap_.clear();
    refresh_min_head_locked();
  }
  // Priorities refresh to L + r' with L unchanged: Proposition 1 and the
  // within-queue strictly-increasing (h, seq) invariant hold immediately
  // (all pairs of a rebuilt queue share h; seq increases by construction).
  const std::uint64_t inflation = inflation_.load(std::memory_order_relaxed);
  for (Entry* e : entries) {
    e->queue = nullptr;
    e->ratio = rounded_ratio(e->cost, e->size);
    e->h = inflation + e->ratio;
    append_exclusive(*e, e->ratio);
  }
}

bool ConcurrentCampCache::put(Key key, std::uint64_t size,
                              std::uint64_t cost) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  if (size == 0 || size > config_.capacity_bytes) {
    rejected_puts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  util::WriterLock exclusive(structure_);
  // Overwrite semantics: drop any stale pair first.
  {
    IndexStripe& s = stripe_for(key);
    util::MutexLock g(s.mutex);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      detach_exclusive(it->second);
      used_.fetch_sub(it->second.size, std::memory_order_relaxed);
      s.map.erase(it);
    }
  }
  scaler_.observe_size(size);
  const std::uint64_t ratio = rounded_ratio(cost, size);
  while (used_.load(std::memory_order_relaxed) + size >
         config_.capacity_bytes) {
    evict_victim_exclusive();
  }
  IndexStripe& s = stripe_for(key);
  util::MutexLock g(s.mutex);
  auto [it, inserted] = s.map.try_emplace(key);
  assert(inserted);
  Entry& e = it->second;
  e.key = key;
  e.size = size;
  e.cost = cost;
  e.ratio = ratio;
  e.h = inflation_.load(std::memory_order_relaxed) + ratio;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  append_exclusive(e, ratio);
  used_.fetch_add(size, std::memory_order_relaxed);
  return true;
}

bool ConcurrentCampCache::contains(Key key) const {
  util::ReaderLock shared(structure_);
  IndexStripe& s = stripe_for(key);
  util::MutexLock g(s.mutex);
  return s.map.contains(key);
}

void ConcurrentCampCache::erase(Key key) {
  util::WriterLock exclusive(structure_);
  IndexStripe& s = stripe_for(key);
  util::MutexLock g(s.mutex);
  const auto it = s.map.find(key);
  if (it == s.map.end()) return;
  detach_exclusive(it->second);
  used_.fetch_sub(it->second.size, std::memory_order_relaxed);
  s.map.erase(it);
}

bool ConcurrentCampCache::evict_one() {
  util::WriterLock exclusive(structure_);
  {
    util::MutexLock heap_lock(heap_mutex_);
    if (head_heap_.empty()) return false;
  }
  evict_victim_exclusive();
  return true;
}

std::size_t ConcurrentCampCache::item_count() const {
  util::ReaderLock shared(structure_);
  std::size_t count = 0;
  for (const auto& stripe : stripes_) {
    util::MutexLock g(stripe->mutex);
    count += stripe->map.size();
  }
  return count;
}

policy::CacheStats ConcurrentCampCache::stats_snapshot() const {
  policy::CacheStats s;
  s.gets = gets_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.rejected_puts = rejected_puts_.load(std::memory_order_relaxed);
  return s;
}

const policy::CacheStats& ConcurrentCampCache::stats() const {
  // Per-thread, per-instance snapshot buffer: concurrent stats() calls never
  // share aggregation state, so there is no torn read and nothing to lock
  // (the old shared snapshot field was a data race under concurrent stats()).
  static thread_local std::map<const ConcurrentCampCache*, policy::CacheStats>
      snapshots;
  policy::CacheStats& snapshot = snapshots[this];
  snapshot = stats_snapshot();
  return snapshot;
}

std::string ConcurrentCampCache::name() const {
  // Reports the CURRENT (post-retune) precision, not the constructed one.
  const int p = precision();
  std::string name = "camp-mt(p=";
  name += p >= util::kPrecisionInfinity ? "inf" : std::to_string(p);
  if (config_.physical_queues > 1) {
    name += ",q=" + std::to_string(config_.physical_queues);
  }
  name += ")";
  return name;
}

void ConcurrentCampCache::set_eviction_listener(
    policy::EvictionListener listener) {
  util::MutexLock g(listener_mutex_);
  listener_ = std::move(listener);
}

ConcurrentCampIntrospection ConcurrentCampCache::introspect() const {
  util::ReaderLock shared(structure_);
  ConcurrentCampIntrospection out;
  out.nonempty_queues = queues_.size();
  out.queues_created = queues_created_;
  out.queues_destroyed = queues_destroyed_;
  out.retunes = retunes_.load(std::memory_order_relaxed);
  out.precision = precision();
  out.inflation = inflation_.load(std::memory_order_relaxed);
  out.scaling_multiplier = scaler_.max_size();
  out.shared_fast_hits = shared_fast_hits_.load(std::memory_order_relaxed);
  out.exclusive_retries = exclusive_retries_.load(std::memory_order_relaxed);
  {
    util::MutexLock heap_lock(heap_mutex_);
    out.heap = head_heap_.stats();
  }
  return out;
}

bool ConcurrentCampCache::check_invariants() {
  util::WriterLock exclusive(structure_);
  {
    util::MutexLock heap_lock(heap_mutex_);
    if (!head_heap_.check_invariants()) return false;
  }
  std::uint64_t bytes = 0;
  std::size_t items = 0;
  const std::uint64_t inflation = inflation_.load(std::memory_order_relaxed);
  for (auto& [qid, q] : queues_) {
    if (q.list.empty()) return false;
    bool first = true;
    std::uint64_t prev_h = 0, prev_seq = 0;
    for (Entry& e : q.list) {
      if (e.queue != &q) return false;
      if (queue_id(e.ratio, e.key) != qid || q.ratio != e.ratio) return false;
      if (!first && (e.h < prev_h || (e.h == prev_h && e.seq <= prev_seq))) {
        return false;
      }
      // Proposition 1's upper bound H <= L + ratio can be transiently
      // exceeded by exactly the lag of one stale L-raise on another thread,
      // but at quiescence it must hold; the lower bound always holds.
      if (e.h < inflation || e.h > inflation + e.ratio) return false;
      first = false;
      prev_h = e.h;
      prev_seq = e.seq;
      bytes += e.size;
      ++items;
    }
    HeadKey hk;
    {
      util::MutexLock heap_lock(heap_mutex_);
      hk = head_heap_.value(q.handle);
    }
    const Entry* head = q.list.front();
    if (hk.h != head->h || hk.seq != head->seq || hk.queue != &q) {
      return false;
    }
  }
  std::size_t indexed = 0;
  for (const auto& stripe : stripes_) {
    util::MutexLock g(stripe->mutex);
    indexed += stripe->map.size();
  }
  if (bytes != used_.load(std::memory_order_relaxed)) return false;
  if (items != indexed) return false;
  if (bytes > config_.capacity_bytes) return false;
  util::MutexLock heap_lock(heap_mutex_);
  return head_heap_.size() == queues_.size();
}

std::unique_ptr<policy::ICache> make_concurrent_camp(
    ConcurrentCampConfig config) {
  return std::make_unique<ConcurrentCampCache>(config);
}

}  // namespace camp::core
