// Cooperative caching group: the decentralized-CAMP deployment the paper
// lists as future work in Section 6 ("we are also investigating a
// decentralized CAMP in the context of a cooperative caching framework such
// as KOSAR").
//
// N nodes each run their own eviction policy (CAMP by default) over a
// private memory budget. A consistent-hash ring routes each key to its
// *home* node; a replica directory tracks which nodes hold which pairs. A
// request flows:
//
//   1. home-node lookup            -> local hit
//   2. directory -> peer fetch     -> remote hit (charged a transfer cost,
//                                     optionally promoted to the home node)
//   3. last-replica guard lookup   -> guard hit (reinstated at the home)
//   4. otherwise                   -> miss: "compute" (charged the pair's
//                                     full cost) and insert at the home node
//
// The last-replica guard answers the challenge the paper poses: "how to
// maintain a last replica of a cached key-value pair without allowing those
// that are never accessed again to occupy the KVS indefinitely." When a node
// evicts the group's final copy of a pair, the guard parks its metadata in a
// byte-bounded FIFO with a request-count lease. A pair re-requested within
// the lease is reinstated (the last replica was preserved); a pair that
// outlives its lease, or is squeezed out by newer last replicas, is dropped
// for good — bounded occupation, no immortal cold data.
//
// The group is a single-threaded simulation substrate (like sim::Simulator),
// not a networked service; the KVS server in src/kvs provides the networked
// single-node path.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coop/directory.h"
#include "coop/hash_ring.h"
// Shared anti-entropy primitives (hint queue, sloppy-write and key-repair
// planners, RepairConfig/RepairCounters). The header is std-only, so this
// does not couple the simulation substrate to the networked KVS — it is
// exactly how the two substrates are guaranteed to plan repairs identically.
#include "kvs/repair.h"
#include "policy/cache_iface.h"

namespace camp::coop {

struct CoopConfig {
  /// Initial number of nodes (ids 0..nodes-1).
  std::uint32_t nodes = 4;
  /// Per-node memory budget.
  std::uint64_t node_capacity_bytes = 0;
  /// Per-node eviction policy spec (policy::make_policy grammar).
  std::string policy_spec = "camp";
  /// Virtual points per node on the consistent-hash ring.
  std::uint32_t virtual_nodes = 64;
  /// Replication factor: a computed pair is installed on the first
  /// `replication` distinct nodes clockwise from the key (clamped to the
  /// group size). 1 = home-only placement.
  std::uint32_t replication = 1;

  /// Enable the last-replica guard.
  bool preserve_last_replica = true;
  /// Guard byte budget as a fraction of one node's capacity.
  double guard_fraction = 0.10;
  /// Guard lease: a parked last replica not re-requested within this many
  /// group requests is dropped.
  std::uint64_t guard_lease_requests = 50'000;

  /// Cost charged for fetching a pair from a peer instead of recomputing it
  /// (the win cooperative caching exists for: transfer_cost << cost(p)).
  std::uint64_t remote_transfer_cost = 1;
  /// Copy a remotely-hit pair to the home node (read-through replication).
  bool promote_on_remote_hit = true;

  /// Anti-entropy knobs, mirroring kvs::ClusterConfig::repair: read repair
  /// at the serving node, hinted handoff for writes planned around down
  /// nodes, and the hint byte budget (charged kHintOverheadBytes +
  /// sizeof(Key) per hint in this substrate).
  kvs::RepairConfig repair;

  void validate() const;  // throws std::invalid_argument on nonsense
};

/// Group-level metrics. Cold misses (first request of a key) are excluded
/// from miss/cost ratios, matching the paper's simulator metrics.
struct CoopMetrics {
  std::uint64_t requests = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t guard_hits = 0;  // reinstated last replicas
  std::uint64_t misses = 0;      // non-cold misses
  std::uint64_t cold_misses = 0;
  std::uint64_t noncold_cost = 0;  // sum of costs over non-cold requests
  std::uint64_t missed_cost = 0;   // recompute cost paid on non-cold misses
  std::uint64_t transfer_cost = 0;
  std::uint64_t guard_parked = 0;   // last replicas parked in the guard
  std::uint64_t guard_expired = 0;  // parked pairs whose lease lapsed
  std::uint64_t guard_squeezed = 0;  // parked pairs evicted by guard pressure

  /// Anti-entropy ledger; the cluster equivalence test pins this
  /// field-by-field against kvs::ClusterCounters::repair.
  kvs::RepairCounters repair;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t noncold = requests - cold_misses;
    return noncold == 0
               ? 0.0
               : static_cast<double>(local_hits + remote_hits + guard_hits) /
                     static_cast<double>(noncold);
  }
  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t noncold = requests - cold_misses;
    return noncold == 0 ? 0.0
                        : static_cast<double>(misses) /
                              static_cast<double>(noncold);
  }
  /// Paper-style cost-miss ratio with peer transfers charged at their
  /// (cheap) transfer cost.
  [[nodiscard]] double cost_miss_ratio() const noexcept {
    return noncold_cost == 0
               ? 0.0
               : static_cast<double>(missed_cost + transfer_cost) /
                     static_cast<double>(noncold_cost);
  }
};

class CoopGroup {
 public:
  using Key = policy::Key;
  using NodeId = std::uint32_t;

  explicit CoopGroup(CoopConfig config);

  /// Process one request: lookup, peer fetch, or compute + insert. Returns
  /// true when served without recomputation (local, remote or guard hit).
  bool request(Key key, std::uint64_t size, std::uint64_t cost);

  /// Add a new node with the next unused id; future requests rebalance onto
  /// it via the ring. Returns its id.
  NodeId add_node();

  /// Decommission a node: every replica it holds is dropped (last replicas
  /// route through the guard as usual), then it leaves the ring.
  /// Throws std::invalid_argument for an unknown id or the final node.
  void remove_node(NodeId id);

  // -- churn & anti-entropy (mirrors kvs::CoopCluster) ----------------------

  /// Crash the node: its replicas vanish (NO guard parks — a crash loses
  /// data) and it stops taking reads, installs, fetches and repair copies.
  /// It stays on the ring, so key homes do not move. No-op if already down.
  void kill_node(NodeId id);
  /// Rejoin a killed node and drain its hint backlog (oldest first): each
  /// hint re-installs the key from a surviving live holder
  /// (hints_replayed) or is retired as obsolete. No-op if already live.
  void heal_node(NodeId id);
  /// One anti-entropy sweep pass over the directory in sorted-key order;
  /// see kvs::CoopCluster::repair_tick for the exact schedule (this is its
  /// deterministic twin, built on the same planning helpers). Returns the
  /// number of re-copies made this tick.
  std::size_t repair_tick(std::size_t max_keys = 0);

  /// The CLIENT's view of reachability, mirroring a dead/revived transport
  /// in kvs::ClusterClient: an unroutable node is skipped by request
  /// routing (reads fail over to the next ring replica) independently of
  /// whether the node itself is up. kill/heal and route_down/route_up are
  /// deliberately separate switches — healing a server before the client
  /// notices is exactly the stale window where read repair fires.
  void route_down(NodeId id) { unroutable_.insert(id); }
  void route_up(NodeId id) { unroutable_.erase(id); }

  [[nodiscard]] bool node_live(NodeId id) const;
  /// Keys whose LIVE holder count is below min(replication, live nodes),
  /// sorted. Empty exactly when the sweep has converged.
  [[nodiscard]] std::vector<Key> under_replicated_keys() const;
  [[nodiscard]] std::size_t hint_count() const noexcept {
    return hints_.size();
  }
  [[nodiscard]] std::uint64_t hint_used_bytes() const noexcept {
    return hints_.used_bytes();
  }

  [[nodiscard]] NodeId home_node(Key key) const;
  [[nodiscard]] std::size_t node_count() const noexcept;
  [[nodiscard]] const CoopMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const ReplicaDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] const policy::CacheStats& node_stats(NodeId id) const;
  [[nodiscard]] std::uint64_t node_used_bytes(NodeId id) const;
  [[nodiscard]] std::size_t guard_item_count() const noexcept {
    return guard_index_.size();
  }
  /// True when `key` is currently parked in the last-replica guard
  /// (regardless of lease freshness). Observability for decommission tests.
  [[nodiscard]] bool guard_contains(Key key) const {
    return guard_index_.contains(key);
  }
  [[nodiscard]] std::uint64_t guard_used_bytes() const noexcept {
    return guard_used_;
  }
  [[nodiscard]] const CoopConfig& config() const noexcept { return config_; }

  /// Directory/cache agreement: every directory entry's holder really holds
  /// the key, replica totals match node item counts, guard stays in budget.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Node {
    NodeId id = 0;
    std::unique_ptr<policy::ICache> cache;
  };

  struct GuardEntry {
    Key key = 0;
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
    std::uint64_t deadline = 0;  // request count at which the lease lapses
  };

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;

  /// The node a request is served at: the home, or — when the home is
  /// unroutable and replication > 1 — the first routable ring replica
  /// (ClusterClient's read-failover rule). Throws when no replica is
  /// routable, like the client does.
  [[nodiscard]] NodeId route_node(Key key) const;

  /// Returns true when the pair actually landed in the node's cache (the
  /// directory registers only then) — the simulator's replica_write.
  bool install(NodeId id, Key key, std::uint64_t size, std::uint64_t cost);
  /// Install at the key's live replica set (used on computes): a sloppy
  /// plan around down nodes, hinting each displaced preferred target.
  void install_replicas(Key key, std::uint64_t size, std::uint64_t cost);
  void on_evicted(NodeId id, Key key, std::uint64_t size);

  // -- last-replica guard -------------------------------------------------
  void guard_park(Key key, std::uint64_t size, std::uint64_t cost);
  /// Remove and return the parked entry for `key` if its lease is alive.
  std::optional<GuardEntry> guard_take(Key key);
  void guard_expire_front();
  void guard_drop(std::list<GuardEntry>::iterator it);

  CoopConfig config_;
  HashRing ring_;
  std::vector<Node> nodes_;
  ReplicaDirectory directory_;
  CoopMetrics metrics_;
  std::unordered_set<Key> seen_;  // cold-miss exclusion
  // Last-known (size, cost) per key: eviction listeners only see (key,
  // size), but parking a last replica needs its cost too.
  std::unordered_map<Key, std::pair<std::uint64_t, std::uint64_t>> meta_;
  NodeId next_node_id_ = 0;

  // Churn state: down_ is SERVER liveness (kill/heal), unroutable_ is the
  // CLIENT's transport view (route_down/route_up); hints_ and the sweep
  // cursor mirror the cluster's (single-threaded here, so unsynchronized).
  std::unordered_set<NodeId> down_;
  std::unordered_set<NodeId> unroutable_;
  kvs::HintQueue<Key> hints_;
  std::optional<Key> sweep_cursor_;

  // Guard storage: FIFO list (deadlines are monotone, so front expires
  // first) + index. Byte budget derived from config.
  std::list<GuardEntry> guard_fifo_;
  std::unordered_map<Key, std::list<GuardEntry>::iterator> guard_index_;
  std::uint64_t guard_used_ = 0;
  std::uint64_t guard_capacity_ = 0;
};

}  // namespace camp::coop
