// Consistent-hash ring used by the cooperative caching group (coop/group.h)
// to route keys to nodes. Classic Karger-style ring with virtual nodes:
// adding or removing a node remaps only the keys adjacent to its virtual
// points, which is what lets a cooperative KVS group grow and shrink
// without mass invalidation (the KOSAR-style deployment the paper names as
// future work in Section 6).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace camp::coop {

class HashRing {
 public:
  /// `virtual_nodes` points are placed per node; more points = smoother
  /// balance at the cost of a larger ring map. Throws std::invalid_argument
  /// for 0.
  explicit HashRing(std::uint32_t virtual_nodes = 64);

  /// Add a node. Adding an existing node is a no-op.
  void add_node(std::uint32_t node_id);

  /// Remove a node and its virtual points. Removing an absent node is a
  /// no-op.
  void remove_node(std::uint32_t node_id);

  /// The node owning `key` (first virtual point clockwise from the key's
  /// hash). Throws std::logic_error when the ring is empty.
  [[nodiscard]] std::uint32_t node_for(std::uint64_t key) const;

  /// The first `replicas` *distinct* nodes clockwise from the key's hash
  /// (for replication factors > 1). Returns fewer when the ring has fewer
  /// nodes.
  [[nodiscard]] std::vector<std::uint32_t> nodes_for(
      std::uint64_t key, std::size_t replicas) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] bool contains_node(std::uint32_t node_id) const noexcept {
    return nodes_.contains(node_id);
  }
  [[nodiscard]] const std::set<std::uint32_t>& nodes() const noexcept {
    return nodes_;
  }

 private:
  [[nodiscard]] static std::uint64_t point_hash(std::uint32_t node_id,
                                                std::uint32_t replica) noexcept;
  [[nodiscard]] static std::uint64_t key_hash(std::uint64_t key) noexcept;

  std::uint32_t virtual_nodes_;
  std::map<std::uint64_t, std::uint32_t> ring_;  // point -> node id
  std::set<std::uint32_t> nodes_;
};

}  // namespace camp::coop
