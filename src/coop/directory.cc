#include "coop/directory.h"

#include <algorithm>

namespace camp::coop {

void ReplicaDirectory::add(Key key, NodeId node) {
  auto& nodes = holders_[key];
  if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) return;
  nodes.push_back(node);
  ++total_replicas_;
}

bool ReplicaDirectory::remove(Key key, NodeId node) {
  const auto it = holders_.find(key);
  if (it == holders_.end()) return false;
  auto& nodes = it->second;
  const auto pos = std::find(nodes.begin(), nodes.end(), node);
  if (pos == nodes.end()) return false;
  nodes.erase(pos);
  --total_replicas_;
  if (nodes.empty()) {
    holders_.erase(it);
    return true;
  }
  return false;
}

std::vector<ReplicaDirectory::Key> ReplicaDirectory::remove_node(NodeId node) {
  std::vector<Key> orphaned;
  for (auto it = holders_.begin(); it != holders_.end();) {
    auto& nodes = it->second;
    const auto pos = std::find(nodes.begin(), nodes.end(), node);
    if (pos == nodes.end()) {
      ++it;
      continue;
    }
    nodes.erase(pos);
    --total_replicas_;
    if (nodes.empty()) {
      orphaned.push_back(it->first);
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
  return orphaned;
}

bool ReplicaDirectory::holds(Key key, NodeId node) const {
  const auto it = holders_.find(key);
  if (it == holders_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), node) !=
         it->second.end();
}

bool ReplicaDirectory::is_last_replica(Key key, NodeId node) const {
  const auto it = holders_.find(key);
  return it != holders_.end() && it->second.size() == 1 &&
         it->second.front() == node;
}

std::optional<ReplicaDirectory::NodeId> ReplicaDirectory::any_holder(
    Key key, std::optional<NodeId> exclude) const {
  const auto it = holders_.find(key);
  if (it == holders_.end()) return std::nullopt;
  for (const NodeId node : it->second) {
    if (!exclude || node != *exclude) return node;
  }
  return std::nullopt;
}

std::size_t ReplicaDirectory::replica_count(Key key) const {
  const auto it = holders_.find(key);
  return it == holders_.end() ? 0 : it->second.size();
}

std::vector<std::pair<ReplicaDirectory::Key,
                      std::vector<ReplicaDirectory::NodeId>>>
ReplicaDirectory::snapshot() const {
  std::vector<std::pair<Key, std::vector<NodeId>>> out;
  out.reserve(holders_.size());
  for (const auto& [key, nodes] : holders_) out.emplace_back(key, nodes);
  return out;
}

}  // namespace camp::coop
