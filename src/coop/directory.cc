#include "coop/directory.h"

#include <algorithm>

namespace camp::coop {

template <class K>
void BasicReplicaDirectory<K>::add(const Key& key, NodeId node) {
  auto& nodes = holders_[key];
  if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) return;
  nodes.push_back(node);
  ++total_replicas_;
}

template <class K>
bool BasicReplicaDirectory<K>::remove(const Key& key, NodeId node) {
  const auto it = holders_.find(key);
  if (it == holders_.end()) return false;
  auto& nodes = it->second;
  const auto pos = std::find(nodes.begin(), nodes.end(), node);
  if (pos == nodes.end()) return false;
  nodes.erase(pos);
  --total_replicas_;
  if (nodes.empty()) {
    holders_.erase(it);
    return true;
  }
  return false;
}

template <class K>
std::vector<K> BasicReplicaDirectory<K>::remove_node(NodeId node) {
  std::vector<Key> orphaned;
  for (auto it = holders_.begin(); it != holders_.end();) {
    auto& nodes = it->second;
    const auto pos = std::find(nodes.begin(), nodes.end(), node);
    if (pos == nodes.end()) {
      ++it;
      continue;
    }
    nodes.erase(pos);
    --total_replicas_;
    if (nodes.empty()) {
      orphaned.push_back(it->first);
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
  // Orphans surface in hash-map order; sort so every consumer (the sim
  // group's guard intake, the cluster's decommission drain) processes them
  // in a run-to-run and build-to-build deterministic order.
  std::sort(orphaned.begin(), orphaned.end());
  return orphaned;
}

template <class K>
bool BasicReplicaDirectory<K>::holds(const Key& key, NodeId node) const {
  const auto it = holders_.find(key);
  if (it == holders_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), node) !=
         it->second.end();
}

template <class K>
bool BasicReplicaDirectory<K>::is_last_replica(const Key& key,
                                               NodeId node) const {
  const auto it = holders_.find(key);
  return it != holders_.end() && it->second.size() == 1 &&
         it->second.front() == node;
}

template <class K>
std::optional<typename BasicReplicaDirectory<K>::NodeId>
BasicReplicaDirectory<K>::any_holder(const Key& key,
                                     std::optional<NodeId> exclude) const {
  const auto it = holders_.find(key);
  if (it == holders_.end()) return std::nullopt;
  for (const NodeId node : it->second) {
    if (!exclude || node != *exclude) return node;
  }
  return std::nullopt;
}

template <class K>
std::vector<typename BasicReplicaDirectory<K>::NodeId>
BasicReplicaDirectory<K>::holders_of(const Key& key) const {
  const auto it = holders_.find(key);
  return it == holders_.end() ? std::vector<NodeId>{} : it->second;
}

template <class K>
std::size_t BasicReplicaDirectory<K>::replica_count(const Key& key) const {
  const auto it = holders_.find(key);
  return it == holders_.end() ? 0 : it->second.size();
}

template <class K>
std::vector<std::pair<K, std::vector<typename BasicReplicaDirectory<K>::NodeId>>>
BasicReplicaDirectory<K>::snapshot() const {
  std::vector<std::pair<Key, std::vector<NodeId>>> out;
  out.reserve(holders_.size());
  for (const auto& [key, nodes] : holders_) out.emplace_back(key, nodes);
  return out;
}

template class BasicReplicaDirectory<policy::Key>;
template class BasicReplicaDirectory<std::string>;

}  // namespace camp::coop
