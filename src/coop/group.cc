#include "coop/group.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "policy/policy_factory.h"

namespace camp::coop {

void CoopConfig::validate() const {
  if (nodes == 0) {
    throw std::invalid_argument("CoopConfig: nodes must be >= 1");
  }
  if (node_capacity_bytes == 0) {
    throw std::invalid_argument(
        "CoopConfig: node_capacity_bytes must be > 0");
  }
  if (virtual_nodes == 0) {
    throw std::invalid_argument("CoopConfig: virtual_nodes must be >= 1");
  }
  if (guard_fraction < 0.0 || guard_fraction > 1.0) {
    throw std::invalid_argument(
        "CoopConfig: guard_fraction must lie in [0, 1]");
  }
  if (preserve_last_replica && guard_lease_requests == 0) {
    throw std::invalid_argument(
        "CoopConfig: guard_lease_requests must be >= 1 when the guard is on");
  }
  if (replication == 0) {
    throw std::invalid_argument("CoopConfig: replication must be >= 1");
  }
}

CoopGroup::CoopGroup(CoopConfig config)
    : config_(std::move(config)), ring_(config_.virtual_nodes) {
  config_.validate();
  guard_capacity_ =
      config_.preserve_last_replica
          ? static_cast<std::uint64_t>(
                std::llround(config_.guard_fraction *
                             static_cast<double>(config_.node_capacity_bytes)))
          : 0;
  nodes_.reserve(config_.nodes);
  for (std::uint32_t i = 0; i < config_.nodes; ++i) add_node();
}

CoopGroup::Node& CoopGroup::node(NodeId id) {
  for (Node& n : nodes_) {
    if (n.id == id) return n;
  }
  throw std::invalid_argument("CoopGroup: unknown node id " +
                              std::to_string(id));
}

const CoopGroup::Node& CoopGroup::node(NodeId id) const {
  for (const Node& n : nodes_) {
    if (n.id == id) return n;
  }
  throw std::invalid_argument("CoopGroup: unknown node id " +
                              std::to_string(id));
}

CoopGroup::NodeId CoopGroup::add_node() {
  const NodeId id = next_node_id_++;
  Node n;
  n.id = id;
  n.cache = policy::make_policy(config_.policy_spec,
                                config_.node_capacity_bytes);
  n.cache->set_eviction_listener([this, id](Key key, std::uint64_t size) {
    on_evicted(id, key, size);
  });
  nodes_.push_back(std::move(n));
  ring_.add_node(id);
  return id;
}

void CoopGroup::remove_node(NodeId id) {
  if (nodes_.size() <= 1) {
    throw std::invalid_argument("CoopGroup: cannot remove the final node");
  }
  Node& victim = node(id);  // throws on unknown id
  // Drain: every replica leaves through the normal eviction path, so last
  // replicas park in the guard exactly as under memory pressure.
  while (victim.cache->evict_one()) {
  }
  // Policies without external eviction support leave residents behind; sweep
  // them through the directory so the group stays consistent. Every orphan
  // (a key whose LAST replica lived on the victim) must flow into the guard
  // exactly like a pressure-evicted last replica would — a decommission must
  // never make a pair silently vanish while the directory forgets it.
  for (const Key key : directory_.remove_node(id)) {
    const auto it = meta_.find(key);
    // Keys only enter the directory through request()/install(), which
    // records their (size, cost) in meta_ first — an orphan without
    // metadata means the directory and the caches disagreed.
    assert(it != meta_.end() &&
           "decommission orphan with no recorded metadata");
    if (it != meta_.end()) guard_park(key, it->second.first, it->second.second);
  }
  ring_.remove_node(id);
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (it->id == id) {
      nodes_.erase(it);
      break;
    }
  }
}

CoopGroup::NodeId CoopGroup::home_node(Key key) const {
  return ring_.node_for(key);
}

std::size_t CoopGroup::node_count() const noexcept { return nodes_.size(); }

const policy::CacheStats& CoopGroup::node_stats(NodeId id) const {
  return node(id).cache->stats();
}

std::uint64_t CoopGroup::node_used_bytes(NodeId id) const {
  return node(id).cache->used_bytes();
}

void CoopGroup::install(NodeId id, Key key, std::uint64_t size,
                        std::uint64_t cost) {
  Node& n = node(id);
  if (n.cache->put(key, size, cost) && !directory_.holds(key, id)) {
    directory_.add(key, id);
  }
}

void CoopGroup::install_replicas(Key key, std::uint64_t size,
                                 std::uint64_t cost) {
  if (config_.replication == 1) {
    install(ring_.node_for(key), key, size, cost);
    return;
  }
  for (const NodeId id : ring_.nodes_for(key, config_.replication)) {
    install(id, key, size, cost);
  }
}

void CoopGroup::on_evicted(NodeId id, Key key, std::uint64_t size) {
  const bool last = directory_.is_last_replica(key, id);
  directory_.remove(key, id);
  if (last && config_.preserve_last_replica) {
    const auto it = meta_.find(key);
    const std::uint64_t cost = it != meta_.end() ? it->second.second : 1;
    guard_park(key, size, cost);
  }
}

bool CoopGroup::request(Key key, std::uint64_t size, std::uint64_t cost) {
  ++metrics_.requests;
  meta_[key] = {size, cost};
  const bool cold = seen_.insert(key).second;
  if (!cold) metrics_.noncold_cost += cost;
  guard_expire_front();

  const NodeId home = ring_.node_for(key);
  if (node(home).cache->get(key)) {
    ++metrics_.local_hits;
    return true;
  }

  if (const auto holder = directory_.any_holder(key, home)) {
    // Peer fetch: touch the replica at its holder (policy side effects
    // apply there) and pay the transfer cost instead of a recompute.
    node(*holder).cache->get(key);
    ++metrics_.remote_hits;
    metrics_.transfer_cost += config_.remote_transfer_cost;
    if (config_.promote_on_remote_hit) install(home, key, size, cost);
    return true;
  }

  if (auto parked = guard_take(key)) {
    // The last replica was preserved: reinstate it at the home node. No
    // recompute and no network transfer is charged — the bytes never left
    // the group.
    ++metrics_.guard_hits;
    install(home, key, parked->size, parked->cost);
    return true;
  }

  if (cold) {
    ++metrics_.cold_misses;
  } else {
    ++metrics_.misses;
    metrics_.missed_cost += cost;
  }
  install_replicas(key, size, cost);
  return false;
}

// ---------------------------------------------------------------------------
// Last-replica guard
// ---------------------------------------------------------------------------

void CoopGroup::guard_park(Key key, std::uint64_t size, std::uint64_t cost) {
  if (guard_capacity_ == 0 || size > guard_capacity_) return;
  // A parked key has zero replicas, so a duplicate park can only follow a
  // stale entry; replace it.
  if (const auto it = guard_index_.find(key); it != guard_index_.end()) {
    guard_drop(it->second);
  }
  while (guard_used_ + size > guard_capacity_) {
    assert(!guard_fifo_.empty());
    ++metrics_.guard_squeezed;
    guard_drop(guard_fifo_.begin());
  }
  guard_fifo_.push_back(GuardEntry{
      key, size, cost, metrics_.requests + config_.guard_lease_requests});
  guard_index_[key] = std::prev(guard_fifo_.end());
  guard_used_ += size;
  ++metrics_.guard_parked;
}

std::optional<CoopGroup::GuardEntry> CoopGroup::guard_take(Key key) {
  const auto it = guard_index_.find(key);
  if (it == guard_index_.end()) return std::nullopt;
  const GuardEntry entry = *it->second;
  if (entry.deadline <= metrics_.requests) {
    ++metrics_.guard_expired;
    guard_drop(it->second);
    return std::nullopt;
  }
  guard_drop(it->second);
  return entry;
}

void CoopGroup::guard_expire_front() {
  // Leases are granted in request order with a constant term, so the FIFO
  // front always carries the earliest deadline.
  while (!guard_fifo_.empty() &&
         guard_fifo_.front().deadline <= metrics_.requests) {
    ++metrics_.guard_expired;
    guard_drop(guard_fifo_.begin());
  }
}

void CoopGroup::guard_drop(std::list<GuardEntry>::iterator it) {
  guard_used_ -= it->size;
  guard_index_.erase(it->key);
  guard_fifo_.erase(it);
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

bool CoopGroup::check_invariants() const {
  // Every directory entry is backed by a resident pair.
  std::size_t directory_replicas = 0;
  for (const auto& [key, holders] : directory_.snapshot()) {
    if (holders.empty()) return false;
    for (const NodeId id : holders) {
      if (!node(id).cache->contains(key)) return false;
    }
    directory_replicas += holders.size();
  }
  // ... and every resident pair is in the directory (counting argument:
  // ICache does not enumerate keys, but totals must agree).
  std::size_t resident = 0;
  for (const Node& n : nodes_) resident += n.cache->item_count();
  if (resident != directory_replicas) return false;
  if (directory_replicas != directory_.total_replicas()) return false;

  // Guard bookkeeping.
  if (guard_index_.size() != guard_fifo_.size()) return false;
  if (guard_used_ > guard_capacity_ && !guard_fifo_.empty()) return false;
  std::uint64_t guard_bytes = 0;
  for (const GuardEntry& e : guard_fifo_) {
    guard_bytes += e.size;
    // A parked pair must have zero replicas anywhere.
    if (directory_.replica_count(e.key) != 0) return false;
  }
  return guard_bytes == guard_used_;
}

}  // namespace camp::coop
