#include "coop/group.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "policy/policy_factory.h"

namespace camp::coop {

void CoopConfig::validate() const {
  if (nodes == 0) {
    throw std::invalid_argument("CoopConfig: nodes must be >= 1");
  }
  if (node_capacity_bytes == 0) {
    throw std::invalid_argument(
        "CoopConfig: node_capacity_bytes must be > 0");
  }
  if (virtual_nodes == 0) {
    throw std::invalid_argument("CoopConfig: virtual_nodes must be >= 1");
  }
  if (guard_fraction < 0.0 || guard_fraction > 1.0) {
    throw std::invalid_argument(
        "CoopConfig: guard_fraction must lie in [0, 1]");
  }
  if (preserve_last_replica && guard_lease_requests == 0) {
    throw std::invalid_argument(
        "CoopConfig: guard_lease_requests must be >= 1 when the guard is on");
  }
  if (replication == 0) {
    throw std::invalid_argument("CoopConfig: replication must be >= 1");
  }
}

CoopGroup::CoopGroup(CoopConfig config)
    : config_(std::move(config)), ring_(config_.virtual_nodes) {
  config_.validate();
  guard_capacity_ =
      config_.preserve_last_replica
          ? static_cast<std::uint64_t>(
                std::llround(config_.guard_fraction *
                             static_cast<double>(config_.node_capacity_bytes)))
          : 0;
  hints_.set_budget(config_.repair.hinted_handoff
                        ? config_.repair.hint_budget_bytes
                        : 0);
  nodes_.reserve(config_.nodes);
  for (std::uint32_t i = 0; i < config_.nodes; ++i) add_node();
}

CoopGroup::Node& CoopGroup::node(NodeId id) {
  for (Node& n : nodes_) {
    if (n.id == id) return n;
  }
  throw std::invalid_argument("CoopGroup: unknown node id " +
                              std::to_string(id));
}

const CoopGroup::Node& CoopGroup::node(NodeId id) const {
  for (const Node& n : nodes_) {
    if (n.id == id) return n;
  }
  throw std::invalid_argument("CoopGroup: unknown node id " +
                              std::to_string(id));
}

CoopGroup::NodeId CoopGroup::add_node() {
  const NodeId id = next_node_id_++;
  Node n;
  n.id = id;
  n.cache = policy::make_policy(config_.policy_spec,
                                config_.node_capacity_bytes);
  n.cache->set_eviction_listener([this, id](Key key, std::uint64_t size) {
    on_evicted(id, key, size);
  });
  nodes_.push_back(std::move(n));
  ring_.add_node(id);
  return id;
}

void CoopGroup::remove_node(NodeId id) {
  if (nodes_.size() <= 1) {
    throw std::invalid_argument("CoopGroup: cannot remove the final node");
  }
  Node& victim = node(id);  // throws on unknown id
  // Drain: every replica leaves through the normal eviction path, so last
  // replicas park in the guard exactly as under memory pressure.
  while (victim.cache->evict_one()) {
  }
  // Policies without external eviction support leave residents behind; sweep
  // them through the directory so the group stays consistent. Every orphan
  // (a key whose LAST replica lived on the victim) must flow into the guard
  // exactly like a pressure-evicted last replica would — a decommission must
  // never make a pair silently vanish while the directory forgets it.
  for (const Key key : directory_.remove_node(id)) {
    const auto it = meta_.find(key);
    // Keys only enter the directory through request()/install(), which
    // records their (size, cost) in meta_ first — an orphan without
    // metadata means the directory and the caches disagreed.
    assert(it != meta_.end() &&
           "decommission orphan with no recorded metadata");
    if (it != meta_.end()) guard_park(key, it->second.first, it->second.second);
  }
  ring_.remove_node(id);
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (it->id == id) {
      nodes_.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Churn & anti-entropy (mirrors kvs::CoopCluster — same planners, same
// schedule, so the equivalence test can pin the repair counters exactly)
// ---------------------------------------------------------------------------

void CoopGroup::kill_node(NodeId id) {
  Node& victim = node(id);  // throws on unknown id
  if (down_.contains(id)) return;
  down_.insert(id);
  // Crash semantics: detach the listener FIRST so the wipe parks nothing
  // in the guard (a crash loses data), then forget the node's directory
  // entries. It stays on the ring — key homes do not move.
  victim.cache->set_eviction_listener(nullptr);
  while (victim.cache->evict_one()) {
  }
  directory_.remove_node(id);
}

void CoopGroup::heal_node(NodeId id) {
  Node& patient = node(id);  // throws on unknown id
  if (!down_.contains(id)) return;
  down_.erase(id);
  patient.cache->set_eviction_listener([this, id](Key key,
                                                  std::uint64_t size) {
    on_evicted(id, key, size);
  });
  // Drain the hint backlog oldest-first. A hint is only a (target, key)
  // pointer: the value is re-fetched from a surviving live holder (a real
  // cache touch, mirroring the cluster's peer fetch), so stale bytes can
  // never be resurrected.
  for (const Key key : hints_.drain(id)) {
    if (directory_.holds(key, id)) {
      ++metrics_.repair.hints_obsolete;  // e.g. a sweep got there first
      continue;
    }
    std::optional<NodeId> source;
    for (const NodeId holder : directory_.holders_of(key)) {
      if (!down_.contains(holder)) {
        source = holder;
        break;
      }
    }
    if (!source) {
      ++metrics_.repair.hints_obsolete;  // key left the group meanwhile
      continue;
    }
    if (!node(*source).cache->get(key)) {
      ++metrics_.repair.hints_obsolete;  // holder lost it before the fetch
      continue;
    }
    const auto it = meta_.find(key);
    assert(it != meta_.end() && "hinted key with no recorded metadata");
    if (it != meta_.end() &&
        install(id, key, it->second.first, it->second.second)) {
      ++metrics_.repair.hints_replayed;
    } else {
      ++metrics_.repair.hints_obsolete;  // the rejoined cache rejected it
    }
  }
}

std::size_t CoopGroup::repair_tick(std::size_t max_keys) {
  ++metrics_.repair.sweep_ticks;
  const std::size_t live_count = nodes_.size() - down_.size();
  const std::size_t want =
      std::min<std::size_t>(config_.replication, live_count);

  // Phase 1 — plan from a directory snapshot in sorted-key order (the
  // cluster sorts by (route, key); its route of a sim-driven key IS the
  // key, so the orders agree). All jobs are planned before any transfer
  // runs, exactly like the cluster's single planning pass under its lock:
  // an install's evictions during phase 2 must not re-plan later keys.
  struct Candidate {
    Key key = 0;
    std::vector<NodeId> holders;
  };
  std::vector<Candidate> candidates;
  if (want > 1) {
    for (auto& [key, holders] : directory_.snapshot()) {
      std::size_t live_copies = 0;
      for (const NodeId h : holders) {
        if (!down_.contains(h)) ++live_copies;
      }
      if (live_copies >= want) continue;
      candidates.push_back({key, std::move(holders)});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.key < b.key;
              });
  }

  std::size_t begin = 0;
  std::size_t end = candidates.size();
  if (max_keys > 0) {
    if (sweep_cursor_) {
      while (begin < candidates.size() &&
             !(*sweep_cursor_ < candidates[begin].key)) {
        ++begin;
      }
      if (begin >= candidates.size()) begin = 0;  // wrap to the front
    }
    end = std::min(candidates.size(), begin + max_keys);
    if (end == candidates.size()) {
      sweep_cursor_.reset();
    } else {
      sweep_cursor_ = candidates[end - 1].key;
    }
  } else {
    sweep_cursor_.reset();
  }

  struct Job {
    Key key = 0;
    NodeId source = 0;
    std::vector<NodeId> targets;
  };
  std::vector<Job> jobs;
  for (std::size_t i = begin; i < end; ++i) {
    Candidate& c = candidates[i];
    ++metrics_.repair.sweep_keys_scanned;
    std::optional<NodeId> source;
    std::size_t live_copies = 0;
    for (const NodeId h : c.holders) {
      if (down_.contains(h)) continue;
      ++live_copies;
      if (!source) source = h;  // first live holder, insertion order
    }
    if (!source) {
      ++metrics_.repair.sweep_failures;  // nobody live holds it
      continue;
    }
    const auto ring_order = ring_.nodes_for(c.key, nodes_.size());
    std::vector<NodeId> targets = kvs::plan_key_repair_targets(
        ring_order, want, live_copies,
        [this](NodeId id) { return !down_.contains(id); },
        [&c](NodeId id) {
          return std::find(c.holders.begin(), c.holders.end(), id) !=
                 c.holders.end();
        });
    if (targets.empty()) continue;
    jobs.push_back(Job{c.key, *source, std::move(targets)});
  }

  // Phase 2 — transfers: one touch at the source per key (the cluster's
  // peer fetch), one install per missing copy.
  std::size_t recopies = 0;
  for (const Job& job : jobs) {
    if (!node(job.source).cache->get(job.key)) {
      ++metrics_.repair.sweep_failures;  // source lost it since the plan
      continue;
    }
    const auto it = meta_.find(job.key);
    assert(it != meta_.end() && "swept key with no recorded metadata");
    if (it == meta_.end()) {
      ++metrics_.repair.sweep_failures;
      continue;
    }
    for (const NodeId target : job.targets) {
      if (install(target, job.key, it->second.first, it->second.second)) {
        ++metrics_.repair.sweep_recopies;
        ++recopies;
      } else {
        ++metrics_.repair.sweep_failures;
      }
    }
  }
  return recopies;
}

CoopGroup::NodeId CoopGroup::route_node(Key key) const {
  const NodeId home = ring_.node_for(key);
  if (unroutable_.empty() || !unroutable_.contains(home)) return home;
  if (config_.replication > 1) {
    for (const NodeId id : ring_.nodes_for(key, config_.replication)) {
      if (!unroutable_.contains(id)) return id;
    }
  }
  throw std::runtime_error("CoopGroup: no routable replica for key " +
                           std::to_string(key));
}

bool CoopGroup::node_live(NodeId id) const {
  (void)node(id);  // throws on unknown id
  return !down_.contains(id);
}

std::vector<CoopGroup::Key> CoopGroup::under_replicated_keys() const {
  const std::size_t live_count = nodes_.size() - down_.size();
  const std::size_t want =
      std::min<std::size_t>(config_.replication, live_count);
  std::vector<Key> keys;
  for (const auto& [key, holders] : directory_.snapshot()) {
    std::size_t live_copies = 0;
    for (const NodeId h : holders) {
      if (!down_.contains(h)) ++live_copies;
    }
    if (live_copies < want) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

CoopGroup::NodeId CoopGroup::home_node(Key key) const {
  return ring_.node_for(key);
}

std::size_t CoopGroup::node_count() const noexcept { return nodes_.size(); }

const policy::CacheStats& CoopGroup::node_stats(NodeId id) const {
  return node(id).cache->stats();
}

std::uint64_t CoopGroup::node_used_bytes(NodeId id) const {
  return node(id).cache->used_bytes();
}

bool CoopGroup::install(NodeId id, Key key, std::uint64_t size,
                        std::uint64_t cost) {
  Node& n = node(id);
  const bool stored = n.cache->put(key, size, cost);
  if (stored && !directory_.holds(key, id)) {
    directory_.add(key, id);
  }
  return stored;
}

void CoopGroup::install_replicas(Key key, std::uint64_t size,
                                 std::uint64_t cost) {
  if (config_.replication == 1) {
    install(ring_.node_for(key), key, size, cost);
    return;
  }
  // Sloppy quorum, shared planner with CoopCluster::plan_write_targets:
  // the first min(R, live) LIVE nodes in full ring order (identical to the
  // strict preference list while everything is live), hinting each down
  // node displaced from the preference prefix.
  const auto ring_order = ring_.nodes_for(key, nodes_.size());
  const kvs::SloppyWritePlan plan = kvs::plan_sloppy_write(
      ring_order, config_.replication,
      [this](NodeId id) { return !down_.contains(id); });
  if (config_.repair.hinted_handoff) {
    for (const NodeId dead : plan.hinted) {
      hints_.push(dead, key, kvs::kHintOverheadBytes + sizeof(Key),
                  metrics_.repair);
    }
  }
  for (const NodeId id : plan.targets) {
    install(id, key, size, cost);
  }
}

void CoopGroup::on_evicted(NodeId id, Key key, std::uint64_t size) {
  const bool last = directory_.is_last_replica(key, id);
  directory_.remove(key, id);
  if (last && config_.preserve_last_replica) {
    const auto it = meta_.find(key);
    const std::uint64_t cost = it != meta_.end() ? it->second.second : 1;
    guard_park(key, size, cost);
  }
}

bool CoopGroup::request(Key key, std::uint64_t size, std::uint64_t cost) {
  // The serving node is the home unless the client cannot reach it (see
  // route_node): with every node routable this is exactly the legacy
  // home-node flow. Routing failures throw BEFORE any metric moves, the
  // way the cluster client fails before any node sees the request.
  const NodeId serving = route_node(key);
  if (down_.contains(serving)) {
    throw std::runtime_error("CoopGroup: node " + std::to_string(serving) +
                             " is down");
  }

  ++metrics_.requests;
  meta_[key] = {size, cost};
  const bool cold = seen_.insert(key).second;
  if (!cold) metrics_.noncold_cost += cost;
  guard_expire_front();

  if (node(serving).cache->get(key)) {
    ++metrics_.local_hits;
    // Read repair: a hit served away from a live home the directory says
    // is missing the pair re-registers it there — the cluster's
    // CoopCluster::get does the same with a replica write.
    if (config_.repair.read_repair && config_.replication > 1) {
      const NodeId home = ring_.node_for(key);
      if (home != serving && !down_.contains(home) &&
          !directory_.holds(key, home) && install(home, key, size, cost)) {
        ++metrics_.repair.read_repairs;
      }
    }
    return true;
  }

  if (const auto holder = directory_.any_holder(key, serving)) {
    // Peer fetch: touch the replica at its holder (policy side effects
    // apply there) and pay the transfer cost instead of a recompute.
    node(*holder).cache->get(key);
    ++metrics_.remote_hits;
    metrics_.transfer_cost += config_.remote_transfer_cost;
    if (config_.promote_on_remote_hit) install(serving, key, size, cost);
    return true;
  }

  if (auto parked = guard_take(key)) {
    // The last replica was preserved: reinstate it at the serving node. No
    // recompute and no network transfer is charged — the bytes never left
    // the group.
    ++metrics_.guard_hits;
    install(serving, key, parked->size, parked->cost);
    return true;
  }

  if (cold) {
    ++metrics_.cold_misses;
  } else {
    ++metrics_.misses;
    metrics_.missed_cost += cost;
  }
  install_replicas(key, size, cost);
  return false;
}

// ---------------------------------------------------------------------------
// Last-replica guard
// ---------------------------------------------------------------------------

void CoopGroup::guard_park(Key key, std::uint64_t size, std::uint64_t cost) {
  if (guard_capacity_ == 0 || size > guard_capacity_) return;
  // A parked key has zero replicas, so a duplicate park can only follow a
  // stale entry; replace it.
  if (const auto it = guard_index_.find(key); it != guard_index_.end()) {
    guard_drop(it->second);
  }
  while (guard_used_ + size > guard_capacity_) {
    assert(!guard_fifo_.empty());
    ++metrics_.guard_squeezed;
    guard_drop(guard_fifo_.begin());
  }
  guard_fifo_.push_back(GuardEntry{
      key, size, cost, metrics_.requests + config_.guard_lease_requests});
  guard_index_[key] = std::prev(guard_fifo_.end());
  guard_used_ += size;
  ++metrics_.guard_parked;
}

std::optional<CoopGroup::GuardEntry> CoopGroup::guard_take(Key key) {
  const auto it = guard_index_.find(key);
  if (it == guard_index_.end()) return std::nullopt;
  const GuardEntry entry = *it->second;
  if (entry.deadline <= metrics_.requests) {
    ++metrics_.guard_expired;
    guard_drop(it->second);
    return std::nullopt;
  }
  guard_drop(it->second);
  return entry;
}

void CoopGroup::guard_expire_front() {
  // Leases are granted in request order with a constant term, so the FIFO
  // front always carries the earliest deadline.
  while (!guard_fifo_.empty() &&
         guard_fifo_.front().deadline <= metrics_.requests) {
    ++metrics_.guard_expired;
    guard_drop(guard_fifo_.begin());
  }
}

void CoopGroup::guard_drop(std::list<GuardEntry>::iterator it) {
  guard_used_ -= it->size;
  guard_index_.erase(it->key);
  guard_fifo_.erase(it);
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

bool CoopGroup::check_invariants() const {
  // Every directory entry is backed by a resident pair.
  std::size_t directory_replicas = 0;
  for (const auto& [key, holders] : directory_.snapshot()) {
    if (holders.empty()) return false;
    for (const NodeId id : holders) {
      if (!node(id).cache->contains(key)) return false;
    }
    directory_replicas += holders.size();
  }
  // ... and every resident pair is in the directory (counting argument:
  // ICache does not enumerate keys, but totals must agree).
  std::size_t resident = 0;
  for (const Node& n : nodes_) resident += n.cache->item_count();
  if (resident != directory_replicas) return false;
  if (directory_replicas != directory_.total_replicas()) return false;

  // Guard bookkeeping.
  if (guard_index_.size() != guard_fifo_.size()) return false;
  if (guard_used_ > guard_capacity_ && !guard_fifo_.empty()) return false;
  std::uint64_t guard_bytes = 0;
  for (const GuardEntry& e : guard_fifo_) {
    guard_bytes += e.size;
    // A parked pair must have zero replicas anywhere.
    if (directory_.replica_count(e.key) != 0) return false;
  }
  return guard_bytes == guard_used_;
}

}  // namespace camp::coop
