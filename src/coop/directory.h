// Replica directory for the cooperative caching group: which nodes hold a
// copy of which key. This is the metadata service a KOSAR-style cooperative
// cache coordinates through (paper Section 6); here it is an in-process
// structure the group keeps transactionally consistent with the node caches
// via their eviction listeners.
//
// The directory is generic over the key type: the single-threaded simulation
// substrate (coop/group.h) tracks policy::Key ids, while the networked KVS
// cluster (kvs/cluster.h) tracks the wire's string keys. Both share this one
// implementation via explicit instantiation (directory.cc).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "policy/cache_iface.h"

namespace camp::coop {

template <class K>
class BasicReplicaDirectory {
 public:
  using Key = K;
  using NodeId = std::uint32_t;

  /// Record that `node` holds a replica of `key`. Duplicate adds are no-ops.
  void add(const Key& key, NodeId node);

  /// Record that `node` no longer holds `key`. Removing an untracked pair is
  /// a no-op. Returns true when this removal dropped the *last* replica.
  bool remove(const Key& key, NodeId node);

  /// Drop every entry for `node` (node decommission). Returns the keys whose
  /// last replica lived there.
  std::vector<Key> remove_node(NodeId node);

  [[nodiscard]] bool holds(const Key& key, NodeId node) const;

  /// True when `node` is the only holder of `key`.
  [[nodiscard]] bool is_last_replica(const Key& key, NodeId node) const;

  /// Any holder of `key` other than `exclude` (used for peer fetches).
  [[nodiscard]] std::optional<NodeId> any_holder(
      const Key& key, std::optional<NodeId> exclude = std::nullopt) const;

  /// Every holder of `key`, in insertion order (empty when untracked).
  [[nodiscard]] std::vector<NodeId> holders_of(const Key& key) const;

  [[nodiscard]] std::size_t replica_count(const Key& key) const;
  [[nodiscard]] std::size_t tracked_keys() const noexcept {
    return holders_.size();
  }
  [[nodiscard]] std::size_t total_replicas() const noexcept {
    return total_replicas_;
  }

  /// All keys with at least one replica; for invariant checks and node
  /// decommissioning, not the request path.
  [[nodiscard]] std::vector<std::pair<Key, std::vector<NodeId>>> snapshot()
      const;

 private:
  // Replica sets are tiny (a handful of nodes), so a flat vector beats a
  // set; linear scans are cache-friendly at this scale.
  std::unordered_map<Key, std::vector<NodeId>> holders_;
  std::size_t total_replicas_ = 0;
};

extern template class BasicReplicaDirectory<policy::Key>;
extern template class BasicReplicaDirectory<std::string>;

/// The simulation group's directory (policy key ids).
using ReplicaDirectory = BasicReplicaDirectory<policy::Key>;

/// The networked cluster's directory (wire string keys).
using StringReplicaDirectory = BasicReplicaDirectory<std::string>;

}  // namespace camp::coop
