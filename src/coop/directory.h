// Replica directory for the cooperative caching group: which nodes hold a
// copy of which key. This is the metadata service a KOSAR-style cooperative
// cache coordinates through (paper Section 6); here it is an in-process
// structure the group keeps transactionally consistent with the node caches
// via their eviction listeners.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "policy/cache_iface.h"

namespace camp::coop {

class ReplicaDirectory {
 public:
  using Key = policy::Key;
  using NodeId = std::uint32_t;

  /// Record that `node` holds a replica of `key`. Duplicate adds are no-ops.
  void add(Key key, NodeId node);

  /// Record that `node` no longer holds `key`. Removing an untracked pair is
  /// a no-op. Returns true when this removal dropped the *last* replica.
  bool remove(Key key, NodeId node);

  /// Drop every entry for `node` (node decommission). Returns the keys whose
  /// last replica lived there.
  std::vector<Key> remove_node(NodeId node);

  [[nodiscard]] bool holds(Key key, NodeId node) const;

  /// True when `node` is the only holder of `key`.
  [[nodiscard]] bool is_last_replica(Key key, NodeId node) const;

  /// Any holder of `key` other than `exclude` (used for peer fetches).
  [[nodiscard]] std::optional<NodeId> any_holder(
      Key key, std::optional<NodeId> exclude = std::nullopt) const;

  [[nodiscard]] std::size_t replica_count(Key key) const;
  [[nodiscard]] std::size_t tracked_keys() const noexcept {
    return holders_.size();
  }
  [[nodiscard]] std::size_t total_replicas() const noexcept {
    return total_replicas_;
  }

  /// All keys with at least one replica; for invariant checks and node
  /// decommissioning, not the request path.
  [[nodiscard]] std::vector<std::pair<Key, std::vector<NodeId>>> snapshot()
      const;

 private:
  // Replica sets are tiny (a handful of nodes), so a flat vector beats a
  // set; linear scans are cache-friendly at this scale.
  std::unordered_map<Key, std::vector<NodeId>> holders_;
  std::size_t total_replicas_ = 0;
};

}  // namespace camp::coop
