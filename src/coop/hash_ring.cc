#include "coop/hash_ring.h"

#include <stdexcept>
#include <unordered_set>

namespace camp::coop {

namespace {

/// SplitMix64 finalizer: a strong 64-bit mix for ring points and keys.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(std::uint32_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  if (virtual_nodes == 0) {
    throw std::invalid_argument("HashRing: virtual_nodes must be >= 1");
  }
}

std::uint64_t HashRing::point_hash(std::uint32_t node_id,
                                   std::uint32_t replica) noexcept {
  return mix64((static_cast<std::uint64_t>(node_id) << 32) | replica);
}

std::uint64_t HashRing::key_hash(std::uint64_t key) noexcept {
  return mix64(key);
}

void HashRing::add_node(std::uint32_t node_id) {
  if (!nodes_.insert(node_id).second) return;
  for (std::uint32_t r = 0; r < virtual_nodes_; ++r) {
    // try_emplace: on the (astronomically unlikely) point collision, first
    // writer wins; the ring stays consistent either way.
    ring_.try_emplace(point_hash(node_id, r), node_id);
  }
}

void HashRing::remove_node(std::uint32_t node_id) {
  if (nodes_.erase(node_id) == 0) return;
  for (std::uint32_t r = 0; r < virtual_nodes_; ++r) {
    const auto it = ring_.find(point_hash(node_id, r));
    if (it != ring_.end() && it->second == node_id) ring_.erase(it);
  }
}

std::uint32_t HashRing::node_for(std::uint64_t key) const {
  if (ring_.empty()) {
    throw std::logic_error("HashRing::node_for called on an empty ring");
  }
  auto it = ring_.lower_bound(key_hash(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::uint32_t> HashRing::nodes_for(std::uint64_t key,
                                               std::size_t replicas) const {
  std::vector<std::uint32_t> out;
  if (ring_.empty() || replicas == 0) return out;
  const std::size_t want = std::min(replicas, nodes_.size());
  out.reserve(want);
  auto it = ring_.lower_bound(key_hash(key));
  // Walk clockwise, collecting distinct nodes, wrapping at most once per
  // full lap (distinctness is bounded by nodes_.size()). The seen-set keeps
  // the walk O(ring steps): with v virtual points per node a full lap is
  // nodes*v steps, and the old per-step linear rescan of `out` made a
  // replicas=nodes query quadratic in the node count.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(want);
  for (std::size_t steps = 0; out.size() < want && steps < ring_.size();
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();  // wrap around
    if (seen.insert(it->second).second) out.push_back(it->second);
    ++it;
  }
  return out;
}

}  // namespace camp::coop
