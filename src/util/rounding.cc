#include "util/rounding.h"

#include <cmath>

#include "util/bitops.h"

namespace camp::util {

std::uint64_t msy_round(std::uint64_t x, int precision) noexcept {
  if (x == 0 || precision <= 0) return 0;
  const int b = highest_bit_position(x);  // 1-based index of top bit
  if (b <= precision) return x;           // already fits in `precision` bits
  const int drop = b - precision;         // zero out the low (b - p) bits
  return (x >> drop) << drop;
}

std::uint64_t truncate_low_bits(std::uint64_t x, int drop_bits) noexcept {
  if (drop_bits <= 0) return x;
  if (drop_bits >= 64) return 0;
  return (x >> drop_bits) << drop_bits;
}

std::uint64_t distinct_rounded_values_bound(std::uint64_t max_value,
                                            int precision) noexcept {
  if (max_value == 0) return 0;
  if (precision >= highest_bit_position(max_value)) return max_value;
  // ceil(log2(U+1)) without overflow when U == 2^64 - 1.
  const std::uint64_t bits =
      (max_value == std::numeric_limits<std::uint64_t>::max())
          ? 64
          : static_cast<std::uint64_t>(ceil_log2(max_value + 1));
  const std::uint64_t levels = bits - static_cast<std::uint64_t>(precision) + 1;
  return levels << precision;
}

double msy_relative_error_bound(int precision) noexcept {
  if (precision >= kPrecisionInfinity) return 0.0;
  return std::numeric_limits<double>::radix == 2
             ? std::ldexp(1.0, 1 - precision)
             : 2.0 / static_cast<double>(1ull << precision);
}

}  // namespace camp::util
