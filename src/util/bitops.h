// Bit-level helpers shared by the rounding scheme and the heaps.
#pragma once

#include <bit>
#include <cstdint>

namespace camp::util {

/// Position of the highest set bit, 1-based (the paper's `b`).
/// bit_position(1) == 1, bit_position(0b101101011) == 9. Requires x > 0.
[[nodiscard]] constexpr int highest_bit_position(std::uint64_t x) noexcept {
  return static_cast<int>(std::bit_width(x));
}

/// True iff x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return std::has_single_bit(x);
}

/// Smallest power of two >= x (x >= 1).
[[nodiscard]] constexpr std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
  return std::bit_ceil(x);
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int floor_log2(std::uint64_t x) noexcept {
  return static_cast<int>(std::bit_width(x)) - 1;
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : static_cast<int>(std::bit_width(x - 1));
}

}  // namespace camp::util
