// Lightweight running statistics used by the simulator and the KVS server.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace camp::util {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-capacity reservoir sampler for percentile estimates (latencies).
class ReservoirSampler {
 public:
  explicit ReservoirSampler(std::size_t capacity) : capacity_(capacity) {
    samples_.reserve(capacity);
  }

  template <class Rng>
  void add(double x, Rng& rng) {
    ++seen_;
    if (samples_.size() < capacity_) {
      samples_.push_back(x);
    } else {
      const std::uint64_t j = rng.below(seen_);
      if (j < capacity_) samples_[static_cast<std::size_t>(j)] = x;
    }
  }

  /// q in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  mutable std::vector<double> samples_;
};

/// HDR-style log-linear latency histogram: each power-of-two range is split
/// into 2^kSubBits linear sub-buckets, giving a bounded relative error of
/// 1/2^kSubBits (~3%) at every magnitude with a few KB of counters — the
/// standard shape for recording microsecond latencies across six decades
/// without per-sample storage. add() is O(1) and allocation-free past the
/// high-water bucket; merge() lets per-thread recorders combine after a run
/// so the hot path needs no synchronization.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave (32): relative quantization error 1/32.
  static constexpr std::uint32_t kSubBits = 5;

  void add(std::uint64_t value);
  void merge(const LatencyHistogram& other);

  /// q in [0, 1]: smallest recorded-bucket upper bound covering at least
  /// a q-fraction of samples; returns the bucket's representative value.
  /// 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_; }

 private:
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive upper bound of bucket i — what percentile() reports.
  [[nodiscard]] static std::uint64_t bucket_ceil(std::size_t i) noexcept;

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

/// Geometric-bucket histogram (powers of two) for size/cost distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  /// Inclusive lower bound of bucket i (2^i, bucket 0 holds value 0..1).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t i) noexcept {
    return i == 0 ? 0 : (1ull << i);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace camp::util
