// Clang Thread Safety Analysis macros (no-ops on other compilers), in the
// style every production cache/KV codebase uses (abseil, folly, leveldb):
// annotate which mutex guards which field and which lock a helper requires,
// and `-Werror=thread-safety` turns an unguarded access into a BUILD error
// instead of a TSan flake that needs the right interleaving to fire.
//
// Conventions in this repository (see README "Static analysis & sanitizers"):
//   * every mutex member is a util::Mutex / util::SharedMutex (util/mutex.h),
//     which carry the CAPABILITY attribute and a LockRank (util/lock_rank.h)
//     so the static annotations and the debug runtime rank checker share one
//     source of truth;
//   * fields with a single guarding mutex carry CAMP_GUARDED_BY;
//   * helpers named `*_locked` / `*_exclusive` carry CAMP_REQUIRES (tools/
//     check_lock_order greps that this stays true);
//   * dual-plane fields (guarded by one mutex on the fast path and by an
//     exclusive super-lock on the slow path) that the analysis cannot
//     express are documented at the declaration instead of annotated.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define CAMP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CAMP_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

/// Marks a type as a lockable capability ("mutex").
#define CAMP_CAPABILITY(x) CAMP_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define CAMP_SCOPED_CAPABILITY CAMP_THREAD_ANNOTATION_(scoped_lockable)

/// Field is protected by the given capability; reads need at least shared
/// access, writes need exclusive access.
#define CAMP_GUARDED_BY(x) CAMP_THREAD_ANNOTATION_(guarded_by(x))

/// The data POINTED TO by this pointer is protected by the capability.
#define CAMP_PT_GUARDED_BY(x) CAMP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability exclusively (held on return).
#define CAMP_ACQUIRE(...) \
  CAMP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define CAMP_ACQUIRE_SHARED(...) \
  CAMP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or shared).
#define CAMP_RELEASE(...) \
  CAMP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define CAMP_RELEASE_SHARED(...) \
  CAMP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function acquires exclusively iff it returns the given value.
#define CAMP_TRY_ACQUIRE(...) \
  CAMP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability exclusively (the `*_locked` contract).
#define CAMP_REQUIRES(...) \
  CAMP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define CAMP_REQUIRES_SHARED(...) \
  CAMP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it itself).
#define CAMP_EXCLUDES(...) CAMP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define CAMP_RETURN_CAPABILITY(x) CAMP_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the calling thread holds the capability.
#define CAMP_ASSERT_CAPABILITY(x) \
  CAMP_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch for code whose locking the analysis cannot model (document
/// WHY at every use).
#define CAMP_NO_THREAD_SAFETY_ANALYSIS \
  CAMP_THREAD_ANNOTATION_(no_thread_safety_analysis)
