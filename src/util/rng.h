// Small deterministic PRNGs. All randomness in the repository flows from
// these, seeded explicitly, so every trace and experiment is reproducible.
#pragma once

#include <cstdint>

namespace camp::util {

/// SplitMix64: fast, high-quality 64-bit generator; also used to expand a
/// user seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repository's workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  /// reduction with rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply; rejection loop terminates quickly in practice.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ull - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Stateless 64-bit mix (Stafford variant 13); used to scramble Zipf ranks
/// into key ids so that rank order and key order are uncorrelated.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace camp::util
