#include "util/stats.h"

#include <bit>
#include <limits>

namespace camp::util {

double ReservoirSampler::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  std::sort(samples_.begin(), samples_.end());
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) noexcept {
  // Values below 2^kSubBits are recorded exactly (one bucket per value);
  // above that each octave [2^t, 2^{t+1}) is split into 2^kSubBits linear
  // sub-buckets selected by the kSubBits bits after the leading one.
  if (value < (1ull << kSubBits)) return static_cast<std::size_t>(value);
  const auto top = static_cast<std::uint32_t>(std::bit_width(value) - 1);
  const std::uint32_t shift = top - kSubBits;
  const std::uint64_t sub = (value >> shift) & ((1ull << kSubBits) - 1);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(shift + 1) << kSubBits) + sub);
}

std::uint64_t LatencyHistogram::bucket_ceil(std::size_t i) noexcept {
  const std::uint64_t sub_count = 1ull << kSubBits;
  if (i < sub_count) return static_cast<std::uint64_t>(i);
  const std::uint32_t shift = static_cast<std::uint32_t>(i >> kSubBits) - 1;
  const std::uint64_t sub = i & (sub_count - 1);
  // Bucket covers [ (sub_count + sub) << shift, +2^shift ): report its
  // inclusive upper bound.
  return ((sub_count + sub) << shift) + (1ull << shift) - 1;
}

void LatencyHistogram::add(std::uint64_t value) {
  const std::size_t bucket = bucket_index(value);
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
  ++total_;
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::percentile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return std::min(bucket_ceil(i), max_);
  }
  return max_;  // unreachable when counts_ is consistent with total_
}

void Log2Histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
  ++total_;
}

}  // namespace camp::util
