#include "util/stats.h"

#include <bit>
#include <limits>

namespace camp::util {

double ReservoirSampler::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  std::sort(samples_.begin(), samples_.end());
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Log2Histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
  ++total_;
}

}  // namespace camp::util
