// Count-min sketch with periodic aging — the frequency-estimation substrate
// for admission control (paper §6 future work: "not inserting unpopular
// key-value pairs that are evicted before their next request").
//
// 4-bit counters packed two-per-byte would be the TinyLFU classic; here we
// use 8-bit saturating counters for simplicity, and halve every counter
// once `aging_period` increments have been observed (the standard "reset"
// operation that keeps estimates fresh under drifting workloads).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace camp::util {

class CountMinSketch {
 public:
  /// `width` counters per row (rounded up to a power of two), `depth` rows.
  CountMinSketch(std::size_t width, int depth, std::uint64_t aging_period)
      : depth_(depth), aging_period_(aging_period) {
    std::size_t w = 16;
    while (w < width) w <<= 1;
    mask_ = w - 1;
    rows_.assign(static_cast<std::size_t>(depth) * w, 0);
  }

  /// Record one occurrence; counters saturate at 255. Triggers aging every
  /// aging_period increments.
  void add(std::uint64_t key) {
    std::uint64_t h = mix64(key ^ 0x9ae16a3b2f90404full);
    for (int d = 0; d < depth_; ++d) {
      std::uint8_t& counter = cell(d, h);
      if (counter < 0xff) ++counter;
      h = mix64(h);
    }
    if (++since_aging_ >= aging_period_ && aging_period_ > 0) age();
  }

  /// Point estimate (min over rows); an over-approximation.
  [[nodiscard]] std::uint32_t estimate(std::uint64_t key) const {
    std::uint64_t h = mix64(key ^ 0x9ae16a3b2f90404full);
    std::uint32_t best = 0xff;
    for (int d = 0; d < depth_; ++d) {
      best = std::min<std::uint32_t>(best, cell(d, h));
      h = mix64(h);
    }
    return best;
  }

  /// Halve every counter (the aging "reset").
  void age() {
    for (std::uint8_t& c : rows_) c = static_cast<std::uint8_t>(c >> 1);
    since_aging_ = 0;
    ++agings_;
  }

  [[nodiscard]] std::uint64_t agings() const noexcept { return agings_; }
  [[nodiscard]] std::size_t width() const noexcept { return mask_ + 1; }
  [[nodiscard]] int depth() const noexcept { return depth_; }

 private:
  [[nodiscard]] std::uint8_t& cell(int row, std::uint64_t h) {
    return rows_[static_cast<std::size_t>(row) * (mask_ + 1) +
                 static_cast<std::size_t>(h & mask_)];
  }
  [[nodiscard]] const std::uint8_t& cell(int row, std::uint64_t h) const {
    return rows_[static_cast<std::size_t>(row) * (mask_ + 1) +
                 static_cast<std::size_t>(h & mask_)];
  }

  int depth_;
  std::uint64_t aging_period_;
  std::size_t mask_ = 0;
  std::vector<std::uint8_t> rows_;
  std::uint64_t since_aging_ = 0;
  std::uint64_t agings_ = 0;
};

}  // namespace camp::util
