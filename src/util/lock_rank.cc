#include "util/lock_rank.h"

#if !defined(NDEBUG)

#include <cstdio>
#include <cstdlib>

namespace camp::util::lock_rank {

namespace {

// A fixed-capacity per-thread stack: no heap traffic on the lock path and
// no destructor-order hazards at thread exit. Deeper nesting than this is
// itself a discipline bug.
constexpr std::size_t kMaxHeld = 32;

struct HeldStack {
  LockRank ranks[kMaxHeld];
  std::size_t size = 0;
};

thread_local HeldStack held;

[[noreturn]] void die(const char* what, LockRank a, LockRank b) noexcept {
  std::fprintf(stderr,
               "lock_rank: %s (rank %d while holding rank %d); "
               "lock hierarchy violated, aborting\n",
               what, static_cast<int>(a), static_cast<int>(b));
  std::abort();
}

}  // namespace

void acquired(LockRank rank) noexcept {
  if (held.size > 0) {
    const LockRank top = held.ranks[held.size - 1];
    if (rank < top || (rank == top && !rank_allows_self_nesting(rank))) {
      die("rank inversion", rank, top);
    }
  }
  if (held.size == kMaxHeld) {
    std::fprintf(stderr, "lock_rank: more than %zu locks held\n", kMaxHeld);
    std::abort();
  }
  held.ranks[held.size++] = rank;
}

void released(LockRank rank) noexcept {
  // Scoped wrappers release LIFO, but search downward anyway so an early
  // unlock of an outer lock cannot misreport an inversion.
  for (std::size_t i = held.size; i-- > 0;) {
    if (held.ranks[i] == rank) {
      for (std::size_t j = i + 1; j < held.size; ++j) {
        held.ranks[j - 1] = held.ranks[j];
      }
      --held.size;
      return;
    }
  }
  std::fprintf(stderr, "lock_rank: released rank %d that is not held\n",
               static_cast<int>(rank));
  std::abort();
}

std::size_t held_count() noexcept { return held.size; }

}  // namespace camp::util::lock_rank

#endif  // !defined(NDEBUG)
