// Debug-build runtime lock-rank checker: the dynamic twin of the Clang
// Thread Safety Annotations (util/thread_annotations.h). Every util::Mutex /
// util::SharedMutex carries a LockRank; a thread may only acquire a lock
// whose rank is STRICTLY greater than every rank it already holds, so a
// rank inversion — the seed of every lock-order deadlock — aborts the
// process at the first wrong acquisition on ANY schedule, instead of
// deadlocking only when two threads interleave just so.
//
// The rank values encode the repository's documented hierarchy (see README
// "Static analysis & sanitizers"); the canonical deep chain is
//
//   store shard -> policy shard -> camp structure -> camp index stripe
//     -> camp queue -> camp heap -> camp listener/stats -> cluster leaf
//
// i.e. an engine eviction fires under its store shard lock, walks down
// through the policy's internal locks, and may finish in the cluster's
// strict-leaf metadata mutex. Peer-link locks sit between the camp plane
// and the cluster leaf but are in practice taken with nothing held.
//
// Release builds (NDEBUG) compile the checker out completely: the
// push/pop helpers become empty inlines and util::Mutex does not even
// store its rank (tests/util_lock_rank_test.cc pins both properties).
#pragma once

#include <cstddef>

namespace camp::util {

/// Total order over every mutex in the tree. Values are spaced so future
/// subsystems can slot in without renumbering.
enum class LockRank : int {
  /// KvsServer::Worker::mutex — pending/live fd handoff between the
  /// acceptor, the worker and stop(). Never held while taking any other
  /// lock; ranked lowest so holding it forbids nothing by accident.
  kServerWorker = 100,

  /// KvsStore::Shard::mutex — the engine shard critical section. The whole
  /// policy plane and the cluster hooks run under it.
  kStoreShard = 200,

  /// ShardedCache::Shard::mutex — physical policy queues. Self-nesting is
  /// allowed (rank_allows_self_nesting): policy_shards may wrap an inner
  /// factory that is itself a ShardedCache, and composition fixes the
  /// outer->inner acquisition order, so equal-rank nesting cannot invert.
  kPolicyShard = 300,

  /// core::SharedAutoTuner::mutex_ — the shadow-cache duel state of the
  /// precision auto-tuner. Fed under a store shard (200) or policy shard
  /// (300) lock; never held while taking any camp-internal lock (shards
  /// apply migrations lazily, under their own locks, after the tuner call
  /// returned), so it slots strictly between the shard planes and the camp
  /// plane.
  kAutoTuner = 350,

  /// ConcurrentCampCache::structure_ — the readers-writer lock separating
  /// the shared hit plane from the exclusive mutation plane.
  kCampStructure = 400,
  /// ConcurrentCampCache::IndexStripe::mutex.
  kCampIndexStripe = 410,
  /// ConcurrentCampCache::Queue::mutex (never two at once; strictly below
  /// the heap lock, which the hit path takes after it).
  kCampQueue = 420,
  /// ConcurrentCampCache::heap_mutex_.
  kCampHeap = 430,
  /// ConcurrentCampCache::listener_mutex_ (taken under the exclusive
  /// structure lock by the eviction path).
  kCampListener = 440,

  /// CoopCluster::links_mutex_ — guards the peer-link map, not the links.
  kClusterLinks = 600,
  /// CoopCluster::PeerLink::mutex — serializes one peer connection's users.
  kClusterPeerLink = 610,

  /// CoopCluster::mutex_ — the STRICT LEAF: ring, directory, guard and
  /// counters. Engine eviction/stored hooks take it while holding a store
  /// shard lock (and everything in between); nothing may be acquired
  /// under it.
  kClusterLeaf = 900,
};

/// Equal-rank nesting whitelist (see kPolicyShard).
[[nodiscard]] constexpr bool rank_allows_self_nesting(LockRank rank) noexcept {
  return rank == LockRank::kPolicyShard;
}

namespace lock_rank {

#if !defined(NDEBUG)

/// Record an acquisition. Aborts (after printing both ranks) when `rank` is
/// not above the top of this thread's held-rank stack.
void acquired(LockRank rank) noexcept;

/// Record a release. Removes the most recent occurrence of `rank`; aborts
/// if this thread does not hold it.
void released(LockRank rank) noexcept;

/// Number of ranked locks the calling thread currently holds (tests).
[[nodiscard]] std::size_t held_count() noexcept;

#else

inline void acquired(LockRank) noexcept {}
inline void released(LockRank) noexcept {}
[[nodiscard]] inline std::size_t held_count() noexcept { return 0; }

#endif  // !defined(NDEBUG)

}  // namespace lock_rank

}  // namespace camp::util
