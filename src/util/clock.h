// Time sources. Production code uses the steady clock; tests and the
// simulator inject a manual clock so cost measurement (iqget/iqset deltas)
// is deterministic.
#pragma once

#include <chrono>
#include <cstdint>

namespace camp::util {

/// Abstract nanosecond time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

/// Wall-free monotonic clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic clock advanced by hand (tests, simulation).
class ManualClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override { return now_; }
  void advance_ns(std::uint64_t delta) noexcept { now_ += delta; }
  void set_ns(std::uint64_t t) noexcept { now_ = t; }

 private:
  std::uint64_t now_ = 0;
};

}  // namespace camp::util
