#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace camp::util {

namespace {

// Harmonic-style partial sums for Zipf(s): sum over i in [1, k] of i^-s.
// Returns the CDF table normalised to 1 in `out`.
void build_cdf(std::uint64_t n, double s, std::vector<double>& out) {
  out.resize(n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -s);
    out[i] = acc;
  }
  const double total = acc;
  for (auto& v : out) v /= total;
}

// Mass of top ceil(f*n) ranks for Zipf(s) over n keys, computed directly.
double top_mass(std::uint64_t n, double s, double f) {
  const auto k = static_cast<std::uint64_t>(
      std::ceil(f * static_cast<double>(n)));
  double head = 0.0, total = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    const double w = std::pow(static_cast<double>(i), -s);
    total += w;
    if (i <= k) head += w;
  }
  return head / total;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t num_keys, double exponent)
    : num_keys_(num_keys), exponent_(exponent) {
  if (num_keys == 0) throw std::invalid_argument("ZipfianGenerator: 0 keys");
  build_cdf(num_keys_, exponent_, cdf_);
}

std::uint64_t ZipfianGenerator::sample(Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return num_keys_ - 1;
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfianGenerator::mass_of_top(double top_fraction) const {
  const auto k = static_cast<std::uint64_t>(
      std::ceil(top_fraction * static_cast<double>(num_keys_)));
  if (k == 0) return 0.0;
  if (k >= num_keys_) return 1.0;
  return cdf_[k - 1];
}

double ZipfianGenerator::solve_exponent(std::uint64_t num_keys,
                                        double top_fraction,
                                        double target_mass) {
  assert(top_fraction > 0.0 && top_fraction < 1.0);
  assert(target_mass > top_fraction && target_mass < 1.0);
  double lo = 0.0, hi = 4.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (top_mass(num_keys, mid, top_fraction) < target_mass) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace camp::util
