// The integer rounding scheme CAMP uses to bound the number of LRU queues
// (Matias, Sahinalp, Young: "Performance Evaluation of Approximate Priority
// Queues", DIMACS 1996), plus the adaptive fraction-to-integer scaler that
// converts cost-to-size ratios into integers before rounding (paper Sec. 2).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace camp::util {

/// Precision value meaning "keep every bit": no rounding beyond the initial
/// integer conversion. Corresponds to the curve labelled "infinity" in
/// Figure 5a, i.e. the standard GDS algorithm.
inline constexpr int kPrecisionInfinity = 64;

/// CAMP's rounding: keep only the `precision` most significant bits of x,
/// starting at its highest non-zero bit; zero the rest. Values whose bit
/// width is <= precision are unchanged. msy_round(0, p) == 0.
///
/// Unlike fixed-point truncation, the absolute rounding error is
/// proportional to the value itself: (x - round(x)) / round(x) <= 2^(1-p).
[[nodiscard]] std::uint64_t msy_round(std::uint64_t x, int precision) noexcept;

/// "Regular" rounding from Table 1: zero the low `drop_bits` bits regardless
/// of magnitude (fixed truncation). Kept for the Table 1 reproduction and
/// the rounding-scheme ablation; it keeps too much information for large
/// values and too little for small ones.
[[nodiscard]] std::uint64_t truncate_low_bits(std::uint64_t x,
                                              int drop_bits) noexcept;

/// Upper bound from Proposition 2 on the number of distinct rounded values
/// when inputs lie in 1..max_value: (ceil(log2(U+1)) - p + 1) * 2^p.
/// For precision >= bit width of U the bound collapses to U itself.
[[nodiscard]] std::uint64_t distinct_rounded_values_bound(
    std::uint64_t max_value, int precision) noexcept;

/// Relative-error bound from Proposition 3: eps = 2^(1-p); for any x > 0,
/// x <= (1 + eps) * msy_round(x, p).
[[nodiscard]] double msy_relative_error_bound(int precision) noexcept;

/// Converts fractional cost-to-size ratios into integers suitable for
/// msy_round. The paper divides each ratio by a lower-bound estimate of the
/// smallest possible ratio; with integer costs >= 1 that lower bound is
/// 1 / max_size, so the conversion multiplies by the largest size observed
/// so far. The multiplier only grows; resident entries are NOT rescaled when
/// it grows (only future roundings use the new value).
class AdaptiveRatioScaler {
 public:
  AdaptiveRatioScaler() = default;

  /// Observe an item size. Returns true when the scaling multiplier grew
  /// (callers may want to know, e.g. for stats; resident entries stay put).
  bool observe_size(std::uint64_t size) noexcept {
    if (size > max_size_) {
      max_size_ = size;
      return true;
    }
    return false;
  }

  /// Scaled integer ratio: round(cost * max_size / size), clamped to >= 1 so
  /// every cached item has a positive priority increment. `size` must be > 0.
  [[nodiscard]] std::uint64_t scale(std::uint64_t cost,
                                    std::uint64_t size) const noexcept {
    // Round-to-nearest of (cost * max_size) / size using integer arithmetic.
    const std::uint64_t num = cost * max_size_;
    const std::uint64_t scaled = (num + size / 2) / size;
    return scaled == 0 ? 1 : scaled;
  }

  /// Scale then apply MSY rounding at `precision` bits.
  [[nodiscard]] std::uint64_t scale_and_round(std::uint64_t cost,
                                              std::uint64_t size,
                                              int precision) const noexcept {
    return msy_round(scale(cost, size), precision);
  }

  [[nodiscard]] std::uint64_t max_size() const noexcept { return max_size_; }

 private:
  std::uint64_t max_size_ = 1;
};

/// Thread-safe AdaptiveRatioScaler for the concurrent CAMP variant
/// (core/concurrent_camp.h). The multiplier is a monotone atomic max;
/// concurrent readers may briefly see the previous multiplier, which is the
/// same "only future roundings use the new value" semantics the paper
/// specifies for the serial algorithm.
class AtomicRatioScaler {
 public:
  AtomicRatioScaler() = default;

  bool observe_size(std::uint64_t size) noexcept {
    std::uint64_t current = max_size_.load(std::memory_order_relaxed);
    while (size > current) {
      if (max_size_.compare_exchange_weak(current, size,
                                          std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::uint64_t scale(std::uint64_t cost,
                                    std::uint64_t size) const noexcept {
    const std::uint64_t num =
        cost * max_size_.load(std::memory_order_relaxed);
    const std::uint64_t scaled = (num + size / 2) / size;
    return scaled == 0 ? 1 : scaled;
  }

  [[nodiscard]] std::uint64_t scale_and_round(std::uint64_t cost,
                                              std::uint64_t size,
                                              int precision) const noexcept {
    return msy_round(scale(cost, size), precision);
  }

  [[nodiscard]] std::uint64_t max_size() const noexcept {
    return max_size_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> max_size_{1};
};

}  // namespace camp::util
