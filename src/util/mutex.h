// Annotated, rank-carrying mutex wrappers: the repository's ONLY mutex
// types on the locking surface (tools/check_lock_order enforces this for
// src/core, src/kvs and src/coop).
//
// Each wrapper fuses the two lock-discipline checkers so they cannot drift
// apart:
//   * static  — the types carry Clang Thread Safety CAPABILITY attributes
//     and the scoped lockers carry SCOPED_CAPABILITY, so `-Werror=
//     thread-safety` proves at compile time that every CAMP_GUARDED_BY
//     field is touched under its mutex and every CAMP_REQUIRES helper is
//     called with the lock held;
//   * dynamic — every mutex is constructed with a util::LockRank, and
//     debug builds push/pop that rank on a per-thread stack, aborting on
//     the first out-of-hierarchy acquisition (util/lock_rank.h). Release
//     builds compile the rank bookkeeping out entirely; the wrappers are
//     then layout-identical to the std types they wrap.
//
// Locking idiom: prefer the scoped lockers (MutexLock / ReaderLock /
// WriterLock) over calling lock()/unlock() directly — the analysis models
// scopes precisely, and an early return can never leak a hold.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace camp::util {

/// Exclusive mutex with a fixed rank in the lock hierarchy.
class CAMP_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) noexcept
#if !defined(NDEBUG)
      : rank_(rank)
#endif
  {
    (void)rank;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CAMP_ACQUIRE() {
    lock_rank::acquired(rank());
    m_.lock();
  }
  void unlock() CAMP_RELEASE() {
    m_.unlock();
    lock_rank::released(rank());
  }

 private:
  [[nodiscard]] LockRank rank() const noexcept {
#if !defined(NDEBUG)
    return rank_;
#else
    return LockRank::kServerWorker;  // unused: the checker is compiled out
#endif
  }

  std::mutex m_;
#if !defined(NDEBUG)
  LockRank rank_;
#endif
};

/// Readers-writer mutex with a fixed rank. Shared and exclusive holds push
/// the same rank: the hierarchy constrains WHICH locks nest, not the mode.
class CAMP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) noexcept
#if !defined(NDEBUG)
      : rank_(rank)
#endif
  {
    (void)rank;
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CAMP_ACQUIRE() {
    lock_rank::acquired(rank());
    m_.lock();
  }
  void unlock() CAMP_RELEASE() {
    m_.unlock();
    lock_rank::released(rank());
  }
  void lock_shared() CAMP_ACQUIRE_SHARED() {
    lock_rank::acquired(rank());
    m_.lock_shared();
  }
  void unlock_shared() CAMP_RELEASE_SHARED() {
    m_.unlock_shared();
    lock_rank::released(rank());
  }

 private:
  [[nodiscard]] LockRank rank() const noexcept {
#if !defined(NDEBUG)
    return rank_;
#else
    return LockRank::kServerWorker;  // unused: the checker is compiled out
#endif
  }

  std::shared_mutex m_;
#if !defined(NDEBUG)
  LockRank rank_;
#endif
};

/// Scoped exclusive lock on a Mutex (lock_guard replacement).
class CAMP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) CAMP_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() CAMP_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Scoped exclusive lock on a SharedMutex (unique_lock replacement).
class CAMP_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& m) CAMP_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~WriterLock() CAMP_RELEASE() { m_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& m_;
};

/// Scoped shared lock on a SharedMutex (shared_lock replacement).
class CAMP_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& m) CAMP_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  // Generic RELEASE: a scoped capability's destructor releases whatever
  // mode its constructor acquired (the canonical Clang pattern).
  ~ReaderLock() CAMP_RELEASE() { m_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& m_;
};

}  // namespace camp::util
