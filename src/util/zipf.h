// Zipfian key-popularity generator with a calibration solver.
//
// The paper's BG benchmark traces "reference keys using a skewed pattern of
// access with approximately 70% of requests referencing 20% of keys". We
// reproduce that by sampling ranks from a Zipf(s) distribution over n keys
// where the exponent s is solved numerically so the top 20% of ranks carry
// the requested probability mass.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace camp::util {

/// Samples ranks 0..n-1 with P(rank i) proportional to 1/(i+1)^s via an
/// inverse-CDF table (O(log n) per sample, deterministic given the RNG).
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t num_keys, double exponent);

  /// Draw a rank in [0, num_keys). Rank 0 is the most popular.
  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t num_keys() const noexcept { return num_keys_; }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

  /// Fraction of probability mass held by the `top_fraction` most popular
  /// ranks (e.g. 0.2 -> mass of the hottest 20%).
  [[nodiscard]] double mass_of_top(double top_fraction) const;

  /// Solve for the exponent s such that the hottest `top_fraction` of
  /// `num_keys` ranks receive `target_mass` of the requests (e.g. 0.2/0.7
  /// for the paper's 70/20 skew). Binary search on s in [0, 4].
  [[nodiscard]] static double solve_exponent(std::uint64_t num_keys,
                                             double top_fraction,
                                             double target_mass);

 private:
  std::uint64_t num_keys_;
  double exponent_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace camp::util
