// Multi-threaded trace replay against one thread-safe cache (the Section
// 4.1 deployment shape: many server threads performing caching decisions
// concurrently).
//
// The trace is dealt round-robin to T worker threads which replay their
// shares concurrently against a single shared ICache. Per-thread metrics
// are kept lock-free-locally and merged at the end.
//
// Caveats inherent to concurrent replay:
//   * Request interleaving across threads is nondeterministic, so exact
//     hit counts vary run to run (aggregate rates are stable).
//   * Cold-request detection uses a pre-pass over the whole trace (the
//     first occurrence index of each key), so the cold/non-cold split stays
//     deterministic even though interleaving is not: the request with a
//     key's smallest trace index is the cold one regardless of which thread
//     executes it.
//
// Use sim::Simulator for the paper's single-threaded figures; this harness
// exists for the lock-granularity ablation and camp-mt soak testing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "policy/cache_iface.h"
#include "sim/metrics.h"
#include "trace/record.h"

namespace camp::sim {

struct ParallelReplayResult {
  Metrics metrics;                 // merged over all threads
  std::vector<Metrics> per_thread;
  double wall_seconds = 0.0;
  /// Aggregate replay throughput (requests / wall_seconds).
  [[nodiscard]] double requests_per_second() const noexcept {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(metrics.requests) / wall_seconds;
  }
};

/// Replay `records` against `cache` with `threads` workers. The cache must
/// be thread-safe (ConcurrentCampCache, a sharded/locked wrapper, ...).
/// `threads` == 1 degenerates to sequential replay (same totals as
/// sim::Simulator up to cold-accounting described above).
[[nodiscard]] ParallelReplayResult replay_parallel(
    policy::ICache& cache, std::span<const trace::TraceRecord> records,
    unsigned threads);

}  // namespace camp::sim
