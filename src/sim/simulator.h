// Trace-driven simulator: the paper's "KVS and a request generator" loop.
// Every reference is a get; on a miss the generator computes the value and
// inserts it (put), which may trigger evictions.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "policy/cache_iface.h"
#include "sim/metrics.h"
#include "sim/occupancy.h"
#include "trace/record.h"

namespace camp::sim {

class Simulator {
 public:
  /// The cache must outlive the simulator. If `occupancy` is non-null the
  /// simulator wires itself to the cache's eviction listener and feeds the
  /// tracker; callers must not install their own listener in that case.
  explicit Simulator(policy::ICache& cache,
                     OccupancyTracker* occupancy = nullptr);

  /// Process one request: get, and on a miss put (compute-and-insert).
  void process(const trace::TraceRecord& r);

  /// Process a whole trace in order.
  void run(std::span<const trace::TraceRecord> records);

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] policy::ICache& cache() noexcept { return cache_; }

 private:
  policy::ICache& cache_;
  OccupancyTracker* occupancy_;
  Metrics metrics_;
  std::unordered_set<policy::Key> seen_;  // for cold-request detection
  std::uint64_t request_index_ = 0;
};

}  // namespace camp::sim
