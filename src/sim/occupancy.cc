#include "sim/occupancy.h"

namespace camp::sim {

OccupancyTracker::OccupancyTracker(std::uint32_t tracked_trace_id,
                                   std::uint64_t capacity_bytes,
                                   std::uint64_t sample_interval)
    : tracked_(tracked_trace_id),
      capacity_(capacity_bytes),
      interval_(sample_interval == 0 ? 1 : sample_interval) {}

void OccupancyTracker::on_insert(policy::Key key, std::uint64_t size,
                                 std::uint32_t trace_id) {
  if (trace_id != tracked_) return;
  auto [it, inserted] = resident_.try_emplace(key, size);
  if (!inserted) {
    tracked_bytes_ -= it->second;  // overwrite of a resident pair
    it->second = size;
  }
  tracked_bytes_ += size;
  ever_populated_ = true;
}

void OccupancyTracker::on_evict(policy::Key key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return;
  tracked_bytes_ -= it->second;
  resident_.erase(it);
  if (tracked_bytes_ == 0 && ever_populated_ && drained_at_ == 0) {
    drained_at_ = last_request_;
  }
}

void OccupancyTracker::on_request_done(std::uint64_t request_index) {
  last_request_ = request_index;
  if (request_index % interval_ == 0) {
    samples_.push_back(OccupancySample{request_index, current_fraction()});
  }
}

}  // namespace camp::sim
