// Parameter-sweep driver shared by the figure benches: runs one policy per
// (cache-size-ratio, policy-factory) combination over a fixed trace and
// collects the paper's metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy/cache_iface.h"
#include "sim/metrics.h"
#include "trace/record.h"

namespace camp::sim {

/// Builds a fresh cache of `capacity_bytes` for one sweep point.
using CacheFactory =
    std::function<std::unique_ptr<policy::ICache>(std::uint64_t capacity)>;

struct SweepPoint {
  std::string policy;
  double cache_ratio = 0.0;
  std::uint64_t capacity_bytes = 0;
  Metrics metrics;
  policy::CacheStats cache_stats;
};

struct SweepConfig {
  /// Cache size ratios (capacity / unique trace bytes), e.g. the paper's
  /// x-axes. Capacity is max(1, ratio * unique_bytes).
  std::vector<double> cache_ratios;
  std::uint64_t unique_bytes = 0;
};

/// Run `factory`-built caches named `policy_name` over `records` at every
/// ratio in `config`.
[[nodiscard]] std::vector<SweepPoint> run_ratio_sweep(
    const std::vector<trace::TraceRecord>& records, const SweepConfig& config,
    const std::string& policy_name, const CacheFactory& factory);

/// Convenience: capacity for a ratio (shared rounding rule).
[[nodiscard]] std::uint64_t capacity_for_ratio(double ratio,
                                               std::uint64_t unique_bytes);

}  // namespace camp::sim
