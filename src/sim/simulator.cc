#include "sim/simulator.h"

namespace camp::sim {

Simulator::Simulator(policy::ICache& cache, OccupancyTracker* occupancy)
    : cache_(cache), occupancy_(occupancy) {
  if (occupancy_ != nullptr) {
    cache_.set_eviction_listener(
        [this](policy::Key key, std::uint64_t) { occupancy_->on_evict(key); });
  }
}

void Simulator::process(const trace::TraceRecord& r) {
  ++request_index_;
  ++metrics_.requests;
  const bool cold = seen_.insert(r.key).second;
  if (cold) {
    ++metrics_.cold_requests;
  } else {
    metrics_.noncold_cost_total += r.cost;
  }
  if (cache_.get(r.key)) {
    ++metrics_.hits;
  } else {
    if (!cold) {
      ++metrics_.noncold_misses;
      metrics_.noncold_cost_missed += r.cost;
    }
    // The request generator computes the missing value and stores it.
    const bool admitted = cache_.put(r.key, r.size, r.cost);
    if (admitted && occupancy_ != nullptr) {
      occupancy_->on_insert(r.key, r.size, r.trace_id);
    }
  }
  if (occupancy_ != nullptr) occupancy_->on_request_done(request_index_);
}

void Simulator::run(std::span<const trace::TraceRecord> records) {
  for (const trace::TraceRecord& r : records) process(r);
}

}  // namespace camp::sim
