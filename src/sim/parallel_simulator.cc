#include "sim/parallel_simulator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

namespace camp::sim {

ParallelReplayResult replay_parallel(
    policy::ICache& cache, std::span<const trace::TraceRecord> records,
    unsigned threads) {
  threads = std::max(1u, threads);

  // Deterministic cold detection: the request carrying a key's first trace
  // index is the cold one, whichever thread replays it. The map is written
  // single-threaded here and only read by the workers.
  std::unordered_map<policy::Key, std::size_t> first_index;
  first_index.reserve(records.size() / 4 + 1);
  for (std::size_t i = 0; i < records.size(); ++i) {
    first_index.try_emplace(records[i].key, i);
  }

  ParallelReplayResult result;
  result.per_thread.assign(threads, Metrics{});

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Metrics& m = result.per_thread[w];
      for (std::size_t i = w; i < records.size(); i += threads) {
        const trace::TraceRecord& r = records[i];
        ++m.requests;
        const bool cold = first_index.find(r.key)->second == i;
        const bool hit = cache.get(r.key);
        if (hit) ++m.hits;
        if (cold) {
          ++m.cold_requests;
        } else {
          m.noncold_cost_total += r.cost;
          if (!hit) {
            ++m.noncold_misses;
            m.noncold_cost_missed += r.cost;
          }
        }
        if (!hit) cache.put(r.key, r.size, r.cost);
      }
    });
  }
  for (auto& t : workers) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const Metrics& m : result.per_thread) {
    result.metrics.requests += m.requests;
    result.metrics.cold_requests += m.cold_requests;
    result.metrics.hits += m.hits;
    result.metrics.noncold_misses += m.noncold_misses;
    result.metrics.noncold_cost_total += m.noncold_cost_total;
    result.metrics.noncold_cost_missed += m.noncold_cost_missed;
  }
  return result;
}

}  // namespace camp::sim
