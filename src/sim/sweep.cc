#include "sim/sweep.h"

#include <algorithm>

#include "sim/simulator.h"

namespace camp::sim {

std::uint64_t capacity_for_ratio(double ratio, std::uint64_t unique_bytes) {
  const double bytes = ratio * static_cast<double>(unique_bytes);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(bytes));
}

std::vector<SweepPoint> run_ratio_sweep(
    const std::vector<trace::TraceRecord>& records, const SweepConfig& config,
    const std::string& policy_name, const CacheFactory& factory) {
  std::vector<SweepPoint> out;
  out.reserve(config.cache_ratios.size());
  for (const double ratio : config.cache_ratios) {
    const std::uint64_t capacity =
        capacity_for_ratio(ratio, config.unique_bytes);
    auto cache = factory(capacity);
    Simulator simulator(*cache);
    simulator.run(records);
    out.push_back(SweepPoint{policy_name, ratio, capacity,
                             simulator.metrics(), cache->stats()});
  }
  return out;
}

}  // namespace camp::sim
