#include "sim/hierarchy.h"

#include <stdexcept>

namespace camp::sim {

HierarchicalCache::HierarchicalCache(std::unique_ptr<policy::ICache> l1,
                                     std::unique_ptr<policy::ICache> l2,
                                     HierarchyConfig config)
    : l1_(std::move(l1)), l2_(std::move(l2)), config_(config) {
  if (!l1_ || !l2_) {
    throw std::invalid_argument("HierarchicalCache: both levels required");
  }
  // Demote L1 victims into L2 (victim caching). L2's own evictions are
  // final. The listener fires inside l1_->put(), after which the victim's
  // metadata is dropped.
  l1_->set_eviction_listener([this](policy::Key key, std::uint64_t) {
    const auto it = l1_meta_.find(key);
    if (it == l1_meta_.end()) return;
    const PairMeta meta = it->second;
    l1_meta_.erase(it);
    if (config_.demote_l1_victims) {
      l2_->put(key, meta.size, meta.cost);
    }
  });
}

void HierarchicalCache::l1_insert(policy::Key key, std::uint64_t size,
                                  std::uint64_t cost) {
  l1_meta_[key] = PairMeta{size, cost};
  if (!l1_->put(key, size, cost)) l1_meta_.erase(key);
}

void HierarchicalCache::process(const trace::TraceRecord& r) {
  ++metrics_.requests;
  const bool cold = seen_.insert(r.key).second;
  if (cold) {
    ++metrics_.cold_requests;
  } else {
    metrics_.noncold_cost_total += r.cost;
  }

  if (l1_->get(r.key)) {
    ++metrics_.l1_hits;
    metrics_.total_service_cost += config_.l1_latency;
    return;
  }
  if (l2_->get(r.key)) {
    ++metrics_.l2_hits;
    metrics_.total_service_cost += config_.l2_latency;
    // Promote into L1; drop the L2 copy first so a demotion of the same key
    // during the promotion re-inserts cleanly.
    l2_->erase(r.key);
    l1_insert(r.key, r.size, r.cost);
    return;
  }

  if (!cold) {
    ++metrics_.noncold_misses;
    metrics_.noncold_cost_missed += r.cost;
  }
  // Full miss: recompute the value (pay its cost) and install in L1.
  metrics_.total_service_cost += r.cost + config_.l1_latency;
  l1_insert(r.key, r.size, r.cost);
}

void HierarchicalCache::run(std::span<const trace::TraceRecord> records) {
  for (const trace::TraceRecord& r : records) process(r);
}

}  // namespace camp::sim
