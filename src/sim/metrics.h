// The paper's two key metrics (Section 3):
//   miss rate       = non-cold misses / non-cold requests
//   cost-miss ratio = cost of non-cold misses / cost of non-cold requests
// "the first request to a particular key-value pair in the trace (called a
// cold request) is not counted because any algorithm will fault on such
// requests."
#pragma once

#include <cstdint>

namespace camp::sim {

struct Metrics {
  std::uint64_t requests = 0;
  std::uint64_t cold_requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t noncold_misses = 0;
  std::uint64_t noncold_cost_total = 0;
  std::uint64_t noncold_cost_missed = 0;

  [[nodiscard]] std::uint64_t noncold_requests() const noexcept {
    return requests - cold_requests;
  }
  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t n = noncold_requests();
    return n == 0 ? 0.0
                  : static_cast<double>(noncold_misses) /
                        static_cast<double>(n);
  }
  [[nodiscard]] double cost_miss_ratio() const noexcept {
    return noncold_cost_total == 0
               ? 0.0
               : static_cast<double>(noncold_cost_missed) /
                     static_cast<double>(noncold_cost_total);
  }
};

}  // namespace camp::sim
