// Occupancy-by-trace tracking for the adaptation experiment (Figures 6c/6d):
// "the fraction of KVS memory occupied by the key-values of TF1" sampled as
// requests are issued.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "policy/cache_iface.h"

namespace camp::sim {

struct OccupancySample {
  std::uint64_t request_index = 0;  // absolute position in the run
  double fraction = 0.0;            // tracked-trace bytes / cache capacity
};

class OccupancyTracker {
 public:
  /// Track the bytes of pairs that belong to `tracked_trace_id`, sampling
  /// every `sample_interval` requests against `capacity_bytes`.
  OccupancyTracker(std::uint32_t tracked_trace_id,
                   std::uint64_t capacity_bytes,
                   std::uint64_t sample_interval);

  /// The simulator reports every successful insert.
  void on_insert(policy::Key key, std::uint64_t size, std::uint32_t trace_id);
  /// Wire this to the cache's eviction listener (also call for erases).
  void on_evict(policy::Key key);
  /// Called once per request processed (after any insert/evict activity).
  void on_request_done(std::uint64_t request_index);

  [[nodiscard]] const std::vector<OccupancySample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t tracked_bytes() const noexcept {
    return tracked_bytes_;
  }
  [[nodiscard]] double current_fraction() const noexcept {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(tracked_bytes_) /
                                static_cast<double>(capacity_);
  }
  /// Request index at which the tracked trace's bytes first reached zero
  /// after having been non-zero (0 if never).
  [[nodiscard]] std::uint64_t drained_at() const noexcept {
    return drained_at_;
  }

 private:
  std::uint32_t tracked_;
  std::uint64_t capacity_;
  std::uint64_t interval_;
  std::uint64_t tracked_bytes_ = 0;
  bool ever_populated_ = false;
  std::uint64_t drained_at_ = 0;
  std::uint64_t last_request_ = 0;
  // resident tracked keys -> size (only pairs of the tracked trace)
  std::unordered_map<policy::Key, std::uint64_t> resident_;
  std::vector<OccupancySample> samples_;
};

}  // namespace camp::sim
