// Two-level hierarchical cache (the paper's Section 6 future-work
// direction: "extending CAMP for use with a hierarchical cache (using SSD,
// hard disk, or both) which may persist costly data items").
//
// L1 models RAM, L2 models an SSD tier. A get probes L1 then L2; an L2 hit
// promotes the pair into L1. L1 victims are *demoted* into L2 rather than
// discarded (victim caching), so expensive pairs survive memory pressure.
// The latency model charges per-level service times plus the pair's cost on
// a full miss, giving an end-to-end "total service cost" metric.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "policy/cache_iface.h"
#include "sim/metrics.h"
#include "trace/record.h"

namespace camp::sim {

struct HierarchyConfig {
  std::uint64_t l1_latency = 1;    // cost units charged on an L1 hit
  std::uint64_t l2_latency = 30;   // cost units charged on an L2 hit
  bool demote_l1_victims = true;   // victim-cache demotion into L2
};

struct HierarchyMetrics {
  std::uint64_t requests = 0;
  std::uint64_t cold_requests = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t noncold_misses = 0;
  std::uint64_t noncold_cost_total = 0;
  std::uint64_t noncold_cost_missed = 0;
  std::uint64_t total_service_cost = 0;  // latency model over all requests

  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t n = requests - cold_requests;
    return n == 0 ? 0.0
                  : static_cast<double>(noncold_misses) /
                        static_cast<double>(n);
  }
  [[nodiscard]] double cost_miss_ratio() const noexcept {
    return noncold_cost_total == 0
               ? 0.0
               : static_cast<double>(noncold_cost_missed) /
                     static_cast<double>(noncold_cost_total);
  }
};

class HierarchicalCache {
 public:
  /// Takes ownership of both levels. Both caches must start empty and must
  /// not have eviction listeners installed (the hierarchy wires L1's).
  HierarchicalCache(std::unique_ptr<policy::ICache> l1,
                    std::unique_ptr<policy::ICache> l2,
                    HierarchyConfig config);

  /// Process one request end-to-end (probe, promote, insert on miss).
  void process(const trace::TraceRecord& r);
  void run(std::span<const trace::TraceRecord> records);

  [[nodiscard]] const HierarchyMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] policy::ICache& l1() noexcept { return *l1_; }
  [[nodiscard]] policy::ICache& l2() noexcept { return *l2_; }

 private:
  struct PairMeta {
    std::uint64_t size = 0;
    std::uint64_t cost = 0;
  };

  void l1_insert(policy::Key key, std::uint64_t size, std::uint64_t cost);

  std::unique_ptr<policy::ICache> l1_;
  std::unique_ptr<policy::ICache> l2_;
  HierarchyConfig config_;
  HierarchyMetrics metrics_;
  std::unordered_set<policy::Key> seen_;
  // Sizes/costs of resident L1 pairs so demotion can re-insert into L2.
  std::unordered_map<policy::Key, PairMeta> l1_meta_;
};

}  // namespace camp::sim
