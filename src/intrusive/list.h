// Intrusive doubly-linked list used for every LRU queue in the repository.
//
// Entries embed a ListHook; splice/remove are O(1) and allocation-free, which
// is what makes CAMP's common case (a hit that does not change a queue head)
// a constant-time pointer update, mirroring the production implementations
// the paper targets (memcached/twemcache item links).
#pragma once

#include <cassert>
#include <cstddef>

namespace camp::intrusive {

struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  [[nodiscard]] bool is_linked() const noexcept { return prev != nullptr; }
};

/// Circular intrusive list. T must derive from ListHook or embed one
/// reachable via the HookOf functor. Does not own its elements.
template <class T, ListHook T::* Hook>
class List {
 public:
  List() noexcept { reset(); }
  List(const List&) = delete;
  List& operator=(const List&) = delete;
  ~List() = default;  // elements are not owned

  [[nodiscard]] bool empty() const noexcept { return head_.next == &head_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Most-recently linked end ("tail" = MRU for LRU queues).
  void push_back(T& item) noexcept {
    ListHook& h = item.*Hook;
    assert(!h.is_linked());
    insert_before(&head_, &h);
    ++size_;
  }

  /// Least-recently linked end ("front" = LRU victim end).
  void push_front(T& item) noexcept {
    ListHook& h = item.*Hook;
    assert(!h.is_linked());
    insert_before(head_.next, &h);
    ++size_;
  }

  void remove(T& item) noexcept {
    ListHook& h = item.*Hook;
    assert(h.is_linked());
    h.prev->next = h.next;
    h.next->prev = h.prev;
    h.prev = h.next = nullptr;
    --size_;
  }

  /// O(1) "touch": move to the MRU end.
  void move_to_back(T& item) noexcept {
    remove(item);
    push_back(item);
  }

  [[nodiscard]] T* front() noexcept {
    return empty() ? nullptr : owner(head_.next);
  }
  [[nodiscard]] const T* front() const noexcept {
    return empty() ? nullptr : owner(head_.next);
  }
  [[nodiscard]] T* back() noexcept {
    return empty() ? nullptr : owner(head_.prev);
  }
  [[nodiscard]] const T* back() const noexcept {
    return empty() ? nullptr : owner(head_.prev);
  }

  T* pop_front() noexcept {
    T* f = front();
    if (f != nullptr) remove(*f);
    return f;
  }

  /// Drop all links without touching elements (they become unlinked).
  void clear() noexcept {
    ListHook* cur = head_.next;
    while (cur != &head_) {
      ListHook* next = cur->next;
      cur->prev = cur->next = nullptr;
      cur = next;
    }
    reset();
  }

  /// Forward iteration, front (LRU) to back (MRU).
  class iterator {
   public:
    explicit iterator(ListHook* node) noexcept : node_(node) {}
    T& operator*() const noexcept { return *owner(node_); }
    T* operator->() const noexcept { return owner(node_); }
    iterator& operator++() noexcept {
      node_ = node_->next;
      return *this;
    }
    bool operator==(const iterator& o) const noexcept = default;

   private:
    ListHook* node_;
  };

  [[nodiscard]] iterator begin() noexcept { return iterator(head_.next); }
  [[nodiscard]] iterator end() noexcept { return iterator(&head_); }

 private:
  static void insert_before(ListHook* pos, ListHook* h) noexcept {
    h->prev = pos->prev;
    h->next = pos;
    pos->prev->next = h;
    pos->prev = h;
  }

  // Recover T* from the embedded hook (container_of). The offset of a member
  // designated by a member pointer is computed once from a dummy object.
  static std::ptrdiff_t hook_offset() noexcept {
    union Probe {
      char raw[sizeof(T)];
      Probe() {}
      ~Probe() {}
    };
    static const Probe probe;
    const T* t = reinterpret_cast<const T*>(&probe.raw);
    return reinterpret_cast<const char*>(&(t->*Hook)) -
           reinterpret_cast<const char*>(t);
  }
  static T* owner(ListHook* h) noexcept {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - hook_offset());
  }
  static const T* owner(const ListHook* h) noexcept {
    return owner(const_cast<ListHook*>(h));
  }

  void reset() noexcept {
    head_.prev = head_.next = &head_;
    size_ = 0;
  }

  ListHook head_;
  std::size_t size_ = 0;
};

}  // namespace camp::intrusive
