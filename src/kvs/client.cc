#include "kvs/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace camp::kvs {

KvsClient::KvsClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("KvsClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("KvsClient: bad host address");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    throw std::runtime_error(std::string("KvsClient: connect failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

KvsClient::~KvsClient() {
  if (fd_ >= 0) {
    send_all("quit\r\n");
    ::close(fd_);
  }
}

void KvsClient::send_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) throw std::runtime_error("KvsClient: send failed");
    sent += static_cast<std::size_t>(n);
  }
}

std::string KvsClient::read_line() {
  for (;;) {
    const std::size_t pos = inbuf_.find("\r\n");
    if (pos != std::string::npos) {
      std::string line = inbuf_.substr(0, pos);
      inbuf_.erase(0, pos + 2);
      return line;
    }
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) throw std::runtime_error("KvsClient: connection closed");
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string KvsClient::read_bytes(std::size_t n) {
  while (inbuf_.size() < n + 2) {  // payload + CRLF
    char chunk[16 * 1024];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) throw std::runtime_error("KvsClient: connection closed");
    inbuf_.append(chunk, static_cast<std::size_t>(got));
  }
  std::string payload = inbuf_.substr(0, n);
  inbuf_.erase(0, n + 2);
  return payload;
}

GetResult KvsClient::retrieve(std::string_view verb, std::string_view key) {
  std::string request(verb);
  request.append(" ").append(key).append("\r\n");
  send_all(request);
  GetResult result;
  for (;;) {
    const std::string line = read_line();
    if (line == "END") return result;
    if (line.rfind("VALUE ", 0) == 0) {
      // VALUE <key> <flags> <bytes>
      const std::size_t flags_pos = line.find(' ', 6);
      const std::size_t bytes_pos = line.find(' ', flags_pos + 1);
      result.flags = static_cast<std::uint32_t>(
          std::stoul(line.substr(flags_pos + 1, bytes_pos - flags_pos - 1)));
      const auto nbytes =
          static_cast<std::size_t>(std::stoul(line.substr(bytes_pos + 1)));
      result.value = read_bytes(nbytes);
      result.hit = true;
      continue;
    }
    throw std::runtime_error("KvsClient: unexpected reply: " + line);
  }
}

GetResult KvsClient::get(std::string_view key) { return retrieve("get", key); }

GetResult KvsClient::iqget(std::string_view key) {
  return retrieve("iqget", key);
}

bool KvsClient::store(std::string_view verb, std::string_view key,
                      std::string_view value, std::uint32_t flags,
                      std::uint32_t cost, std::uint32_t exptime_s,
                      bool include_cost) {
  std::string request(verb);
  request.append(" ").append(key);
  request.append(" ").append(std::to_string(flags));
  request.append(" ").append(std::to_string(exptime_s)).append(" ");
  request.append(std::to_string(value.size()));
  if (include_cost) request.append(" ").append(std::to_string(cost));
  request.append("\r\n");
  request.append(value);
  request.append("\r\n");
  send_all(request);
  const std::string line = read_line();
  if (line == "STORED") return true;
  if (line == "NOT_STORED") return false;
  throw std::runtime_error("KvsClient: unexpected reply: " + line);
}

bool KvsClient::set(std::string_view key, std::string_view value,
                    std::uint32_t flags, std::uint32_t cost,
                    std::uint32_t exptime_s) {
  return store("set", key, value, flags, cost, exptime_s, cost != 0);
}

bool KvsClient::iqset(std::string_view key, std::string_view value,
                      std::uint32_t flags, std::uint32_t exptime_s) {
  return store("iqset", key, value, flags, 0, exptime_s, false);
}

std::map<std::string, GetResult> KvsClient::multi_get(
    const std::vector<std::string>& keys) {
  std::string request("get");
  for (const std::string& key : keys) request.append(" ").append(key);
  request.append("\r\n");
  send_all(request);
  std::map<std::string, GetResult> out;
  for (;;) {
    const std::string line = read_line();
    if (line == "END") return out;
    if (line.rfind("VALUE ", 0) == 0) {
      const std::size_t key_end = line.find(' ', 6);
      const std::string key = line.substr(6, key_end - 6);
      const std::size_t bytes_pos = line.find(' ', key_end + 1);
      GetResult r;
      r.flags = static_cast<std::uint32_t>(
          std::stoul(line.substr(key_end + 1, bytes_pos - key_end - 1)));
      const auto nbytes =
          static_cast<std::size_t>(std::stoul(line.substr(bytes_pos + 1)));
      r.value = read_bytes(nbytes);
      r.hit = true;
      out.emplace(key, std::move(r));
      continue;
    }
    throw std::runtime_error("KvsClient: unexpected reply: " + line);
  }
}

bool KvsClient::del(std::string_view key) {
  std::string request("delete ");
  request.append(key).append("\r\n");
  send_all(request);
  const std::string line = read_line();
  if (line == "DELETED") return true;
  if (line == "NOT_FOUND") return false;
  throw std::runtime_error("KvsClient: unexpected reply: " + line);
}

std::map<std::string, std::string> KvsClient::stats() {
  send_all("stats\r\n");
  std::map<std::string, std::string> out;
  for (;;) {
    const std::string line = read_line();
    if (line == "END") return out;
    if (line.rfind("STAT ", 0) == 0) {
      const std::size_t value_pos = line.find(' ', 5);
      out.emplace(line.substr(5, value_pos - 5), line.substr(value_pos + 1));
      continue;
    }
    throw std::runtime_error("KvsClient: unexpected stats reply: " + line);
  }
}

void KvsClient::flush_all() {
  send_all("flush_all\r\n");
  const std::string line = read_line();
  if (line != "OK") {
    throw std::runtime_error("KvsClient: flush_all failed: " + line);
  }
}

std::string KvsClient::version() {
  send_all("version\r\n");
  return read_line();
}

}  // namespace camp::kvs
