#include "kvs/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "kvs/net_io.h"
#include "kvs/protocol.h"

namespace camp::kvs {

namespace {

/// Strict u32 reply-token parse (see parse_reply_token): rejects the
/// oversized/negative/garbage tokens a mixed-version or byzantine peer
/// could send, which bare std::stoul + static_cast silently truncated.
std::uint32_t parse_reply_u32(std::string_view token, const char* what) {
  return static_cast<std::uint32_t>(
      parse_reply_token(token, 0xffff'ffffull, what));
}

/// Payload sizes are additionally bounded by the protocol's value cap, so
/// a lying peer cannot make the client allocate gigabytes.
std::size_t parse_reply_bytes(std::string_view token, const char* what) {
  return static_cast<std::size_t>(
      parse_reply_token(token, kMaxValueBytes, what));
}

/// The peer ops interpolate the key straight into the request line, so a
/// key with a space or CRLF would inject commands into the peer stream —
/// reject it before any bytes go out (encode_batch already does this for
/// the batch path).
void require_wire_key(std::string_view key) {
  if (!is_valid_wire_key(key)) {
    throw std::invalid_argument("KvsClient: invalid wire key '" +
                                std::string(key) + "'");
  }
}

}  // namespace

KvsClient::KvsClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("KvsClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("KvsClient: bad host address");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    throw std::runtime_error(std::string("KvsClient: connect failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

KvsClient::~KvsClient() {
  if (fd_ >= 0) {
    // Best-effort courtesy quit; the server may already be gone and a
    // destructor must not throw.
    static constexpr char kQuit[] = "quit\r\n";
    (void)::send(fd_, kQuit, sizeof(kQuit) - 1, MSG_NOSIGNAL);
    ::close(fd_);
  }
}

void KvsClient::send_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = net::retry_eintr([&] {
      return ::send(fd_, data.data() + sent, data.size() - sent,
                    MSG_NOSIGNAL | MSG_DONTWAIT);
    });
    switch (net::classify_send(n)) {
      case net::IoStatus::kProgress:
        ++write_count_;
        sent += static_cast<std::size_t>(n);
        continue;
      case net::IoStatus::kWouldBlock:
        break;
      default:
        throw std::runtime_error(std::string("KvsClient: send failed: ") +
                                 std::strerror(errno));
    }
    // Kernel send buffer full. The server may be unable to accept more
    // request bytes until we read the replies it already queued (a huge
    // replied batch can exceed both sockets' buffers), so drain replies
    // into inbuf_ before waiting — otherwise the two writers deadlock.
    char chunk[16 * 1024];
    ssize_t got;
    while ((got = net::retry_eintr([&] {
              return ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
            })) > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(got));
    }
    if (got == 0) throw std::runtime_error("KvsClient: connection closed");
    if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      throw std::runtime_error(std::string("KvsClient: recv failed: ") +
                               std::strerror(errno));
    }
    wait_ready(/*want_write=*/true);  // unsent request bytes remain here
  }
}

void KvsClient::wait_ready(bool want_write) {
  pollfd pfd{fd_, static_cast<short>(POLLIN | (want_write ? POLLOUT : 0)), 0};
  const ssize_t r = net::retry_eintr(
      [&] { return static_cast<ssize_t>(::poll(&pfd, 1, -1)); });
  if (r < 0) {
    throw std::runtime_error(std::string("KvsClient: poll failed: ") +
                             std::strerror(errno));
  }
}

void KvsClient::fill_inbuf() {
  char chunk[16 * 1024];
  const ssize_t n =
      net::retry_eintr([&] { return ::recv(fd_, chunk, sizeof(chunk), 0); });
  if (n > 0) {
    inbuf_.append(chunk, static_cast<std::size_t>(n));
    return;
  }
  if (n == 0) throw std::runtime_error("KvsClient: connection closed");
  throw std::runtime_error(std::string("KvsClient: recv failed: ") +
                           std::strerror(errno));
}

std::string KvsClient::read_line() {
  for (;;) {
    const std::size_t pos = inbuf_.find("\r\n");
    if (pos != std::string::npos) {
      std::string line = inbuf_.substr(0, pos);
      inbuf_.erase(0, pos + 2);
      return line;
    }
    fill_inbuf();
  }
}

std::string KvsClient::read_bytes(std::size_t n) {
  while (inbuf_.size() < n + 2) {  // payload + CRLF
    fill_inbuf();
  }
  std::string payload = inbuf_.substr(0, n);
  inbuf_.erase(0, n + 2);
  return payload;
}

KvsBatchResult KvsClient::execute(const KvsBatch& batch) {
  KvsBatchResult out;
  out.results.resize(batch.size());
  if (batch.empty()) return out;

  // noreply mutations get no wire confirmation: assumed stored/deleted.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].noreply) {
      out.results[i].ok = true;
      out.results[i].acked = false;
    }
  }

  const BatchWire wire = encode_batch(batch);
  send_all(wire.request);  // the whole batch: exactly one write()

  for (const BatchWire::Expect& expect : wire.expects) {
    switch (expect.kind) {
      case BatchWire::Expect::Kind::kValues: {
        // The server answers a (multi-)get with the hits in request order,
        // duplicates included; match VALUE lines against the covered ops by
        // walking both sequences forward. Ops skipped over are misses.
        std::size_t cursor = 0;
        for (;;) {
          const std::string line = read_line();
          if (line == "END") break;
          if (line.rfind("VALUE ", 0) != 0) {
            throw std::runtime_error("KvsClient: unexpected reply: " + line);
          }
          const std::size_t key_end = line.find(' ', 6);
          const std::size_t bytes_pos = key_end == std::string::npos
                                            ? std::string::npos
                                            : line.find(' ', key_end + 1);
          if (bytes_pos == std::string::npos) {
            throw std::runtime_error("KvsClient: malformed VALUE reply: " +
                                     line);
          }
          const std::string key = line.substr(6, key_end - 6);
          const std::uint32_t flags = parse_reply_u32(
              std::string_view(line).substr(key_end + 1,
                                            bytes_pos - key_end - 1),
              "flags");
          const std::size_t nbytes = parse_reply_bytes(
              std::string_view(line).substr(bytes_pos + 1), "bytes");
          std::string payload = read_bytes(nbytes);
          while (cursor < expect.op_indices.size() &&
                 batch[expect.op_indices[cursor]].key != key) {
            ++cursor;
          }
          if (cursor == expect.op_indices.size()) {
            throw std::runtime_error("KvsClient: unrequested key in reply: " +
                                     key);
          }
          KvsOpResult& r = out.results[expect.op_indices[cursor]];
          r.ok = true;
          r.flags = flags;
          r.value = std::move(payload);
          ++cursor;
        }
        break;
      }
      case BatchWire::Expect::Kind::kStored: {
        const std::string line = read_line();
        KvsOpResult& r = out.results[expect.op_indices.front()];
        if (line == "STORED") {
          r.ok = true;
        } else if (line == "NOT_STORED") {
          r.ok = false;
        } else {
          throw std::runtime_error("KvsClient: unexpected reply: " + line);
        }
        break;
      }
      case BatchWire::Expect::Kind::kDeleted: {
        const std::string line = read_line();
        KvsOpResult& r = out.results[expect.op_indices.front()];
        if (line == "DELETED") {
          r.ok = true;
        } else if (line == "NOT_FOUND") {
          r.ok = false;
        } else {
          throw std::runtime_error("KvsClient: unexpected reply: " + line);
        }
        break;
      }
    }
  }
  return out;
}

std::map<std::string, GetResult> KvsClient::multi_get(
    const std::vector<std::string>& keys) {
  KvsBatch batch;
  batch.reserve(keys.size());
  for (const std::string& key : keys) batch.add_get(key);
  const KvsBatchResult r = execute(batch);
  std::map<std::string, GetResult> out;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (r.results[i].ok) out[keys[i]] = r.results[i].to_get_result();
  }
  return out;
}

StoredGetResult KvsClient::peer_get(std::string_view key) {
  require_wire_key(key);
  std::string request("pget ");
  request.append(key);
  request.append("\r\n");
  send_all(request);
  StoredGetResult result;
  for (;;) {
    const std::string line = read_line();
    if (line == "END") return result;
    if (line.rfind("VALUE ", 0) != 0) {
      throw std::runtime_error("KvsClient: unexpected pget reply: " + line);
    }
    // VALUE <key> <flags> <bytes> <cost> <ttl> [<codec> <raw_len>]
    // (the trailing pair appears only for compressed pairs).
    std::vector<std::string_view> tokens;
    const std::string_view view(line);
    std::size_t pos = 6;  // past "VALUE "
    while (pos < view.size()) {
      while (pos < view.size() && view[pos] == ' ') ++pos;
      const std::size_t start = pos;
      while (pos < view.size() && view[pos] != ' ') ++pos;
      if (pos > start) tokens.push_back(view.substr(start, pos - start));
    }
    if (tokens.size() != 5 && tokens.size() != 7) {
      throw std::runtime_error("KvsClient: malformed pget reply: " + line);
    }
    result.hit = true;
    result.flags = parse_reply_u32(tokens[1], "flags");
    const std::size_t nbytes = parse_reply_bytes(tokens[2], "bytes");
    result.cost = parse_reply_u32(tokens[3], "cost");
    result.remaining_ttl_s = parse_reply_u32(tokens[4], "ttl");
    if (tokens.size() == 7) {
      const auto codec_tag = parse_reply_u32(tokens[5], "codec");
      if (!codec_tag_valid(codec_tag) || codec_tag == 0) {
        throw std::runtime_error("KvsClient: malformed pget reply: " + line);
      }
      result.codec = static_cast<Codec>(codec_tag);
      result.raw_len = static_cast<std::uint32_t>(
          parse_reply_token(tokens[6], kMaxValueBytes, "raw_len"));
    }
    result.stored = read_bytes(nbytes);
    if (result.codec == Codec::kIdentity) {
      result.raw_len = static_cast<std::uint32_t>(result.stored.size());
    }
  }
}

bool KvsClient::peer_set(std::string_view key, std::string_view value,
                         std::uint32_t flags, std::uint32_t cost,
                         std::uint32_t exptime_s, std::uint32_t codec,
                         std::uint32_t raw_len) {
  require_wire_key(key);
  if (value.size() > kMaxValueBytes) {
    throw std::length_error("KvsClient: peer_set value exceeds "
                            "kMaxValueBytes");
  }
  std::string request("pset ");
  request.append(key);
  request.push_back(' ');
  request.append(std::to_string(flags));
  request.push_back(' ');
  request.append(std::to_string(exptime_s));
  request.push_back(' ');
  request.append(std::to_string(value.size()));
  request.push_back(' ');
  request.append(std::to_string(cost));
  if (codec != 0) {
    // Already-compressed payload: ship the codec tag + decoded length so
    // the peer stores it verbatim (after validating by decoding).
    request.push_back(' ');
    request.append(std::to_string(codec));
    request.push_back(' ');
    request.append(std::to_string(raw_len));
  }
  request.append("\r\n");
  request.append(value);
  request.append("\r\n");
  send_all(request);
  const std::string line = read_line();
  if (line == "STORED") return true;
  if (line == "NOT_STORED") return false;
  throw std::runtime_error("KvsClient: unexpected pset reply: " + line);
}

bool KvsClient::peer_del(std::string_view key) {
  require_wire_key(key);
  std::string request("pdel ");
  request.append(key);
  request.append("\r\n");
  send_all(request);
  const std::string line = read_line();
  if (line == "DELETED") return true;
  if (line == "NOT_FOUND") return false;
  throw std::runtime_error("KvsClient: unexpected pdel reply: " + line);
}

std::map<std::string, std::string> KvsClient::stats() {
  send_all("stats\r\n");
  std::map<std::string, std::string> out;
  for (;;) {
    const std::string line = read_line();
    if (line == "END") return out;
    if (line.rfind("STAT ", 0) == 0) {
      const std::size_t value_pos = line.find(' ', 5);
      out.emplace(line.substr(5, value_pos - 5), line.substr(value_pos + 1));
      continue;
    }
    throw std::runtime_error("KvsClient: unexpected stats reply: " + line);
  }
}

void KvsClient::flush_all() {
  send_all("flush_all\r\n");
  const std::string line = read_line();
  if (line != "OK") {
    throw std::runtime_error("KvsClient: flush_all failed: " + line);
  }
}

std::string KvsClient::version() {
  send_all("version\r\n");
  return read_line();
}

}  // namespace camp::kvs
