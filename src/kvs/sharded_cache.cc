#include "kvs/sharded_cache.h"

#include <map>
#include <stdexcept>

#include "util/rng.h"

namespace camp::kvs {

ShardedCache::ShardedCache(std::uint64_t capacity_bytes, std::size_t shards,
                           const ShardFactory& factory) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedCache: need at least one shard");
  }
  if (capacity_bytes < shards) {
    throw std::invalid_argument("ShardedCache: capacity below shard count");
  }
  const std::uint64_t share = capacity_bytes / shards;
  const std::uint64_t remainder = capacity_bytes % shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Spread the remainder one byte per shard so the split sums to exactly
    // capacity_bytes and no two shards differ by more than one byte.
    const std::uint64_t cap = share + (i < remainder ? 1 : 0);
    auto cache = factory(cap);
    if (!cache) {
      throw std::invalid_argument("ShardedCache: factory returned null");
    }
    // Handing the cache to Shard's constructor (rather than assigning the
    // guarded field after construction) keeps the write inside Shard's own
    // ctor, which the thread-safety analysis correctly treats as exclusive.
    shards_.push_back(std::make_unique<Shard>(std::move(cache)));
  }
}

ShardedCache::Shard& ShardedCache::shard_for(policy::Key key) const {
  const std::uint64_t h = util::mix64(key);
  return *shards_[static_cast<std::size_t>(h % shards_.size())];
}

bool ShardedCache::get(policy::Key key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  return shard.cache->get(key);
}

bool ShardedCache::put(policy::Key key, std::uint64_t size,
                       std::uint64_t cost) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  return shard.cache->put(key, size, cost);
}

bool ShardedCache::contains(policy::Key key) const {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  return shard.cache->contains(key);
}

void ShardedCache::erase(policy::Key key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  shard.cache->erase(key);
}

std::uint64_t ShardedCache::capacity_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    total += shard->cache->capacity_bytes();
  }
  return total;
}

std::uint64_t ShardedCache::used_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    total += shard->cache->used_bytes();
  }
  return total;
}

std::size_t ShardedCache::item_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    total += shard->cache->item_count();
  }
  return total;
}

policy::CacheStats ShardedCache::stats_snapshot() const {
  policy::CacheStats agg;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    const policy::CacheStats& s = shard->cache->stats();
    agg.gets += s.gets;
    agg.hits += s.hits;
    agg.misses += s.misses;
    agg.puts += s.puts;
    agg.evictions += s.evictions;
    agg.rejected_puts += s.rejected_puts;
  }
  return agg;
}

const policy::CacheStats& ShardedCache::stats() const {
  // The ICache interface returns by reference; a thread-local buffer keeps
  // concurrent stats() callers from racing on shared aggregation state
  // (each thread copies into — and reads from — its own snapshot). Keyed
  // by instance so references from two caches on one thread never alias
  // (nested ShardedCaches happen: policy_shards wrapping a sharded inner
  // policy). Entries are few and tiny; they die with the thread.
  static thread_local std::map<const ShardedCache*, policy::CacheStats>
      snapshots;
  policy::CacheStats& snapshot = snapshots[this];
  snapshot = stats_snapshot();
  return snapshot;
}

std::uint64_t ShardedCache::shard_capacity_bytes(std::size_t index) const {
  Shard& shard = *shards_.at(index);
  util::MutexLock lock(shard.mutex);
  return shard.cache->capacity_bytes();
}

std::string ShardedCache::name() const {
  Shard& shard = *shards_.front();
  util::MutexLock lock(shard.mutex);
  return "sharded(" + std::to_string(shards_.size()) + "x" +
         shard.cache->name() + ")";
}

bool ShardedCache::retune(int new_precision) {
  bool changed = false;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    if (auto* tunable = policy::as_retunable(shard->cache.get())) {
      changed = tunable->retune(new_precision) || changed;
    }
  }
  return changed;
}

int ShardedCache::precision() const {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    if (auto* tunable = policy::as_retunable(shard->cache.get())) {
      return tunable->precision();
    }
  }
  return 0;
}

std::uint64_t ShardedCache::retune_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    if (auto* tunable = policy::as_retunable(shard->cache.get())) {
      total += tunable->retune_count();
    }
  }
  return total;
}

void ShardedCache::set_eviction_listener(policy::EvictionListener listener) {
  // Each shard forwards to the shared listener. The listener runs under the
  // shard's mutex; it must not call back into the same shard.
  //
  // The shard lock here is not just annotation hygiene: installing a
  // listener while workers are mid-operation used to race on the policy's
  // unguarded listener field (caught by the thread-safety analysis; see
  // tests/kvs_sharded_cache_test.cc ListenerInstallDuringTraffic).
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    shard->cache->set_eviction_listener(listener);
  }
}

}  // namespace camp::kvs
