// Anti-entropy repair primitives for the replicated cooperative cluster:
// the pieces that make replication-factor-R CONVERGE back to R after churn
// instead of being best-effort at write time.
//
// Three cooperating mechanisms (paper framing: the IQ-protected multi-node
// deployment of Section 6 only pays off while every key keeps R live
// copies):
//
//   * anti-entropy sweep  — a background pass over the replica directory in
//     sorted-key order, re-copying under-replicated keys from a surviving
//     holder onto the next live ring replicas (CoopCluster::repair_tick);
//   * read repair         — a read served by a non-home replica re-registers
//     the value at the recovered home (CoopCluster::get);
//   * hinted handoff      — a write whose preferred replica is down (or
//     fails) queues a bounded, byte-budgeted hint; the rejoining node drains
//     its hints before serving traffic (CoopCluster::heal_node).
//
// Everything here is deterministic and counter-metered so the repair
// schedule itself can be baselined and pinned counter-for-counter against
// the simulator twin (coop::CoopGroup mirrors all three mechanisms with the
// same planning helpers below).
//
// Layering: this header is dependency-free (std only) so BOTH substrates —
// kvs/cluster.h (string keys) and coop/group.h (u64 policy keys) — share
// one implementation of the hint queue and the repair planners. Shared
// planners are the equivalence argument: the cluster and the simulator
// cannot disagree about a repair schedule they compute with the same code.
//
// Locking: HintQueue is externally synchronized — the cluster keeps it
// behind its leaf mutex (CAMP_GUARDED_BY), the simulator is single-
// threaded. RepairDriver deliberately owns NO mutex (an atomic flag and a
// sliced sleep), so it adds nothing to the lock-rank hierarchy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <thread>
#include <utility>
#include <vector>

namespace camp::kvs {

/// Tunables for the three repair mechanisms. All on by default; each can be
/// disabled independently (tests isolate mechanisms that way).
struct RepairConfig {
  /// Re-register a value at its live home when a read was served by a
  /// non-home replica that the directory says the home is missing.
  bool read_repair = true;
  /// Queue hints for down/failed preferred replicas of a fanned-out write
  /// (kAckHome only — under kAckAll a failed replica fails the write, so
  /// there is nothing to hand off).
  bool hinted_handoff = true;
  /// Byte budget for the hint queue (accounted as kHintOverheadBytes +
  /// key bytes per hint). 0 disables hinted handoff outright.
  std::uint64_t hint_budget_bytes = 64u << 10;
};

/// Deterministic repair ledger, embedded in both ClusterCounters and
/// coop::CoopMetrics so the equivalence test compares it field by field.
struct RepairCounters {
  /// Reads served at a non-home replica whose value was re-registered at
  /// the (live, missing) home node.
  std::uint64_t read_repairs = 0;
  std::uint64_t hints_queued = 0;
  /// Hints whose key reached the rejoined target on drain.
  std::uint64_t hints_replayed = 0;
  /// Hints dropped by the byte budget (oversize key or FIFO squeeze).
  std::uint64_t hints_dropped = 0;
  /// Hints that had nothing left to do on drain: the target already held
  /// the key, the key vanished from the cluster, or the replay write was
  /// rejected by the target.
  std::uint64_t hints_obsolete = 0;
  std::uint64_t sweep_ticks = 0;
  std::uint64_t sweep_keys_scanned = 0;
  /// Successful re-copies onto a live ring replica during sweeps.
  std::uint64_t sweep_recopies = 0;
  /// Sweep re-copies that could not happen: no live source holder, the
  /// source lost the pair before the fetch, or the target rejected it.
  std::uint64_t sweep_failures = 0;
};

/// Fixed accounting overhead per queued hint (list node + index entry,
/// order-of-magnitude); the variable part is the key's byte size.
inline constexpr std::uint64_t kHintOverheadBytes = 32;

/// Bounded FIFO of (target node, key) hints with a byte budget and a
/// (target, key) dedup index. Externally synchronized (see file comment).
/// Instantiated for std::string (cluster) and std::uint64_t (simulator).
template <class K>
class HintQueue {
 public:
  struct Hint {
    std::uint32_t target = 0;
    K key{};
    std::uint64_t charge = 0;
  };

  /// 0 disables the queue (every push drops).
  void set_budget(std::uint64_t bytes) noexcept { budget_ = bytes; }

  /// Queue a hint. A duplicate (target, key) is a silent no-op; an
  /// over-budget push squeezes the OLDEST hints out first (each squeeze
  /// counts as a drop), and a hint that cannot fit at all is dropped.
  void push(std::uint32_t target, const K& key, std::uint64_t charge,
            RepairCounters& counters) {
    if (budget_ == 0 || charge > budget_) {
      ++counters.hints_dropped;
      return;
    }
    if (index_.find(std::make_pair(target, key)) != index_.end()) return;
    while (used_ + charge > budget_) {
      ++counters.hints_dropped;
      drop(fifo_.begin());
    }
    fifo_.push_back(Hint{target, key, charge});
    index_[std::make_pair(target, key)] = std::prev(fifo_.end());
    used_ += charge;
    ++counters.hints_queued;
  }

  /// Remove and return every key hinted at `target`, oldest first (the
  /// order the writes were missed in).
  [[nodiscard]] std::vector<K> drain(std::uint32_t target) {
    std::vector<K> keys;
    for (auto it = fifo_.begin(); it != fifo_.end();) {
      const auto next = std::next(it);
      if (it->target == target) {
        keys.push_back(it->key);
        drop(it);
      }
      it = next;
    }
    return keys;
  }

  /// Cancel every hint for `key` (cluster-wide delete). Returns how many
  /// were removed.
  std::size_t erase_key(const K& key) {
    std::size_t removed = 0;
    for (auto it = fifo_.begin(); it != fifo_.end();) {
      const auto next = std::next(it);
      if (it->key == key) {
        drop(it);
        ++removed;
      }
      it = next;
    }
    return removed;
  }

  /// Cancel every hint aimed at `target` (node decommission). Returns how
  /// many were removed.
  std::size_t erase_target(std::uint32_t target) {
    std::size_t removed = 0;
    for (auto it = fifo_.begin(); it != fifo_.end();) {
      const auto next = std::next(it);
      if (it->target == target) {
        drop(it);
        ++removed;
      }
      it = next;
    }
    return removed;
  }

  [[nodiscard]] bool contains(std::uint32_t target, const K& key) const {
    return index_.find(std::make_pair(target, key)) != index_.end();
  }
  [[nodiscard]] std::size_t size() const noexcept { return fifo_.size(); }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }

 private:
  void drop(typename std::list<Hint>::iterator it) {
    used_ -= it->charge;
    index_.erase(std::make_pair(it->target, it->key));
    fifo_.erase(it);
  }

  std::list<Hint> fifo_;
  // std::map (not unordered) so iteration order never matters and the pair
  // key needs only operator<.
  std::map<std::pair<std::uint32_t, K>,
           typename std::list<Hint>::iterator>
      index_;
  std::uint64_t budget_ = 0;
  std::uint64_t used_ = 0;
};

extern template class HintQueue<std::string>;
extern template class HintQueue<std::uint64_t>;

/// A sloppy-quorum write plan: where an R-replica write actually goes when
/// some preferred nodes are down.
struct SloppyWritePlan {
  /// The first `replication` LIVE nodes in ring preference order (home
  /// first). Identical to the strict preference list while everything is
  /// live — the all-live fast path is bit-for-bit the legacy behavior.
  std::vector<std::uint32_t> targets;
  /// Down nodes displaced from the strict preference list; each one gets a
  /// hint so it can be caught up when it rejoins.
  std::vector<std::uint32_t> hinted;
};

/// Shared by CoopCluster::set/iqset and CoopGroup::install_replicas —
/// the two substrates plan a fanned-out write with the same code, so the
/// equivalence test can pin their hint ledgers exactly.
/// `ring_order` is the FULL ring preference order for the key
/// (HashRing::nodes_for(key, node_count)); `is_live(node)` says whether a
/// node can take writes right now.
template <class IsLive>
[[nodiscard]] SloppyWritePlan plan_sloppy_write(
    const std::vector<std::uint32_t>& ring_order, std::size_t replication,
    IsLive&& is_live) {
  SloppyWritePlan plan;
  plan.targets.reserve(replication);
  for (std::size_t i = 0; i < ring_order.size(); ++i) {
    const std::uint32_t node = ring_order[i];
    if (is_live(node)) {
      if (plan.targets.size() < replication) plan.targets.push_back(node);
    } else if (i < replication) {
      plan.hinted.push_back(node);
    }
    // Done once the quorum is full AND the strict preference prefix has
    // been scanned for down nodes to hint.
    if (plan.targets.size() >= replication && i + 1 >= replication) break;
  }
  return plan;
}

/// Anti-entropy target selection for one under-replicated key: the live
/// ring-preferred nodes that do not yet hold it, in preference order, just
/// enough to bring the live copy count up to `want`. Shared by
/// CoopCluster::repair_tick and CoopGroup::repair_tick.
template <class IsLive, class Holds>
[[nodiscard]] std::vector<std::uint32_t> plan_key_repair_targets(
    const std::vector<std::uint32_t>& ring_order, std::size_t want,
    std::size_t live_copies, IsLive&& is_live, Holds&& holds) {
  std::vector<std::uint32_t> targets;
  for (const std::uint32_t node : ring_order) {
    if (live_copies + targets.size() >= want) break;
    if (!is_live(node) || holds(node)) continue;
    targets.push_back(node);
  }
  return targets;
}

/// Optional background thread driving a repair tick on a fixed interval
/// (live deployments; tests and figures step repair_tick() manually for
/// determinism). No mutex on purpose: an atomic stop flag plus a sliced
/// sleep keep it entirely outside the lock-rank hierarchy.
class RepairDriver {
 public:
  /// Starts the thread immediately; `tick` must stay callable until stop().
  RepairDriver(std::function<void()> tick, std::chrono::milliseconds interval);
  ~RepairDriver();
  RepairDriver(const RepairDriver&) = delete;
  RepairDriver& operator=(const RepairDriver&) = delete;

  /// Idempotent; joins the thread. No tick runs after stop() returns.
  void stop();

  [[nodiscard]] std::uint64_t ticks_fired() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  std::function<void()> tick_;
  std::chrono::milliseconds interval_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::thread thread_;
};

}  // namespace camp::kvs
