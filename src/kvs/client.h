// Blocking TCP client for the KVS server — the repository's counterpart of
// the Whalin memcached client used in the paper's Section 4 experiments.
//
// The transport is batch-first: execute() encodes the whole KvsBatch into
// one contiguous buffer (runs of plain gets become a single memcached
// multi-get command, mutations may carry noreply), issues exactly ONE
// write() for it, then parses the server's pipelined replies back onto op
// indices. The one-shot get/set/... methods inherited from KvsApi are
// single-op batches and therefore keep the historical one round trip per
// operation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kvs/api.h"
#include "kvs/engine.h"

namespace camp::kvs {

class KvsClient final : public KvsApi {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  KvsClient(const std::string& host, std::uint16_t port);
  ~KvsClient() override;
  KvsClient(const KvsClient&) = delete;
  KvsClient& operator=(const KvsClient&) = delete;

  /// One write() per batch; replies are read until every non-noreply op is
  /// resolved. noreply mutations come back ok=true, acked=false.
  [[nodiscard]] KvsBatchResult execute(const KvsBatch& batch) override;

  /// Pipelined multi-key get ("get k1 k2 ..."): returns hits only.
  [[nodiscard]] std::map<std::string, GetResult> multi_get(
      const std::vector<std::string>& keys);

  /// Cluster peer fetch ("pget <key>"): a raw local get at the peer that
  /// bypasses its cooperative routing. The result carries the stored cost
  /// (VALUE's optional 4th token) so a promotion preserves it, and the
  /// pair's STORED form — compressed pairs travel compressed, with their
  /// codec tag and raw length in the reply's trailing tokens.
  [[nodiscard]] StoredGetResult peer_get(std::string_view key);

  /// Cluster peer delete ("pdel <key>"): raw local delete at the peer.
  bool peer_del(std::string_view key);

  /// Cluster peer store ("pset <key> ..."): a raw local set at the peer
  /// that bypasses its cooperative routing — the replication-factor-R
  /// write fan-out lands replica copies through this. `codec` != 0 marks
  /// `value` as an already-compressed payload decoding to `raw_len` bytes
  /// (the peer validates by decoding); codec 0 sends the legacy raw form.
  bool peer_set(std::string_view key, std::string_view value,
                std::uint32_t flags, std::uint32_t cost,
                std::uint32_t exptime_s = 0, std::uint32_t codec = 0,
                std::uint32_t raw_len = 0);

  [[nodiscard]] std::map<std::string, std::string> stats();
  void flush_all();
  [[nodiscard]] std::string version();

  /// Number of send() syscalls that transmitted bytes so far — the batch
  /// tests assert one write per executed batch. (A batch larger than the
  /// kernel send buffer needs more, with replies drained in between to
  /// avoid deadlocking against the server's own blocking reply writes.)
  [[nodiscard]] std::uint64_t write_count() const { return write_count_; }

 private:
  void send_all(std::string_view data);
  /// Block until the socket is readable — or, when `want_write` is set
  /// (unsent request bytes remain), readable OR writable. POLLOUT is never
  /// requested without pending output: a writable-but-idle socket would
  /// make poll() return instantly forever, turning the wait into a busy
  /// loop.
  void wait_ready(bool want_write);
  /// One blocking recv appended to inbuf_ (EINTR retried — a signal is not
  /// a peer disconnect). Throws on EOF or socket error.
  void fill_inbuf();
  [[nodiscard]] std::string read_line();
  [[nodiscard]] std::string read_bytes(std::size_t n);

  int fd_ = -1;
  std::string inbuf_;
  std::uint64_t write_count_ = 0;
};

}  // namespace camp::kvs
