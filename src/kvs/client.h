// Blocking TCP client for the KVS server — the repository's counterpart of
// the Whalin memcached client used in the paper's Section 4 experiments.
#pragma once

#include <cstdint>
#include <map>
#include <vector>
#include <string>
#include <string_view>

#include "kvs/api.h"

namespace camp::kvs {

class KvsClient final : public KvsApi {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  KvsClient(const std::string& host, std::uint16_t port);
  ~KvsClient() override;
  KvsClient(const KvsClient&) = delete;
  KvsClient& operator=(const KvsClient&) = delete;

  [[nodiscard]] GetResult get(std::string_view key) override;
  [[nodiscard]] GetResult iqget(std::string_view key) override;
  using KvsApi::set;
  using KvsApi::iqset;
  bool set(std::string_view key, std::string_view value, std::uint32_t flags,
           std::uint32_t cost, std::uint32_t exptime_s) override;
  bool iqset(std::string_view key, std::string_view value,
             std::uint32_t flags, std::uint32_t exptime_s) override;
  bool del(std::string_view key) override;

  /// Pipelined multi-key get ("get k1 k2 ..."): returns hits only.
  [[nodiscard]] std::map<std::string, GetResult> multi_get(
      const std::vector<std::string>& keys);

  [[nodiscard]] std::map<std::string, std::string> stats();
  void flush_all();
  [[nodiscard]] std::string version();

 private:
  [[nodiscard]] GetResult retrieve(std::string_view verb,
                                   std::string_view key);
  bool store(std::string_view verb, std::string_view key,
             std::string_view value, std::uint32_t flags, std::uint32_t cost,
             std::uint32_t exptime_s, bool include_cost);
  void send_all(std::string_view data);
  [[nodiscard]] std::string read_line();
  [[nodiscard]] std::string read_bytes(std::size_t n);

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace camp::kvs
