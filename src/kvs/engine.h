// The KVS storage engine: slab-allocated values + a pluggable eviction
// policy, mirroring the paper's IQ Twemcache implementation (Section 4).
//
// The engine wires three pieces together:
//   * a SlabAllocator holding the actual bytes,
//   * an eviction policy (LRU or CAMP via policy::ICache) deciding *which*
//     pair to drop when memory runs out, and
//   * the IQ cost capture: an iqget that misses records a timestamp; the
//     subsequent iqset uses (set_time - miss_time) as the pair's cost
//     ("the difference between these two timestamps is used as the cost").
//
// Not thread-safe by itself: ShardedKvs (sharded_cache.h) provides the
// hash-partitioned, per-shard-locked wrapper from the paper's Section 4.1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "kvs/item.h"
#include "policy/cache_iface.h"
#include "slab/slab_allocator.h"
#include "util/clock.h"
#include "util/rng.h"

namespace camp::kvs {

/// Builds the eviction policy for a given byte budget ("lru", "camp", any
/// policy_factory spec).
using PolicyFactory =
    std::function<std::unique_ptr<policy::ICache>(std::uint64_t capacity)>;

struct EngineConfig {
  slab::SlabConfig slab;
  /// Fraction of slab memory the policy may account for; the headroom
  /// absorbs per-class fragmentation so policy evictions usually free a
  /// usable chunk before the allocator runs dry.
  double policy_fill_fraction = 0.85;
  /// Scale ns timestamps to cost units for iqset (1000 = microseconds).
  std::uint64_t cost_time_divisor_ns = 1000;
  std::uint64_t rng_seed = 0x5eedc0de;
  /// Transparent value compression (kvs/compress.h). Off by default: the
  /// identity layout keeps every pre-compression baseline byte-identical.
  CompressionConfig compression;
};

struct EngineStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t rejected_sets = 0;
  std::uint64_t expired = 0;  // pairs lazily dropped on an expired get
  std::uint64_t slab_reassignments = 0;
  std::uint64_t items = 0;
  std::uint64_t value_bytes = 0;   // RAW payload bytes currently resident
  std::uint64_t stored_bytes = 0;  // post-codec payload bytes resident
  /// Values that attempted compression but stayed identity (no codec beat
  /// the raw size).
  std::uint64_t compress_bails = 0;
  /// Stored bytes that failed to decode on read (corrupt peer transfer);
  /// the pair is dropped and the read misses.
  std::uint64_t decompress_failures = 0;
};

struct GetResult {
  bool hit = false;
  std::string value;
  std::uint32_t flags = 0;
  /// The stored pair's integer cost. Plain client replies do not carry it;
  /// the cluster's peer-fetch path does (promotions must preserve the cost
  /// the pair was originally stored with).
  std::uint32_t cost = 0;
  /// Seconds until the pair expires, rounded up; 0 = never expires. Carried
  /// by the peer-fetch path so promotions preserve the remaining lease.
  std::uint32_t remaining_ttl_s = 0;
};

/// A stored pair in its resident (post-codec) form, as surfaced by
/// get_stored, for_each_item and the eviction hook. `stored` is the bytes
/// actually kept in the chunk; `raw_len` is the client-visible length the
/// stored bytes decode to (equal to stored.size() for identity items).
struct StoredGetResult {
  bool hit = false;
  std::string stored;
  std::uint32_t raw_len = 0;
  Codec codec = Codec::kIdentity;
  std::uint32_t flags = 0;
  std::uint32_t cost = 0;
  std::uint32_t remaining_ttl_s = 0;
};

/// A resident pair the engine is dropping under memory pressure (policy
/// eviction or slab reassignment). The views point into the pair's chunk
/// and are valid only for the duration of the hook call. Reports BOTH the
/// raw size (`raw_len`) and the charged size (`charged_bytes`) — listeners
/// must not re-derive either from the stored bytes they receive.
struct EvictedItem {
  std::string_view key;
  /// The resident bytes (post-codec); decode with `codec` + `raw_len` to
  /// recover the client-visible value.
  std::string_view stored;
  std::uint32_t raw_len = 0;
  Codec codec = Codec::kIdentity;
  std::uint32_t flags = 0;
  std::uint32_t cost = 0;
  /// Bytes the eviction policy accounted for the pair (its chunk size).
  std::uint64_t charged_bytes = 0;
  /// Seconds left on the pair's lease (rounded up); 0 = never expires.
  /// Already-expired pairs never reach the hook.
  std::uint32_t remaining_ttl_s = 0;
};

/// One resident pair as seen by for_each_item: the stored form plus every
/// size the byte-accounting layers care about.
struct ItemView {
  std::string_view key;
  std::string_view stored;
  std::uint32_t raw_len = 0;
  Codec codec = Codec::kIdentity;
  std::uint32_t flags = 0;
  std::uint32_t cost = 0;
  /// 0 for pairs that never expire, else the seconds left (>= 1).
  std::uint32_t remaining_ttl_s = 0;
  /// The chunk size the policy accounts for the pair.
  std::uint64_t charged_bytes = 0;
};

/// Invoked for every pressure-driven drop BEFORE the pair's memory is
/// reclaimed. NOT invoked for explicit overwrites, deletes, flush_all or
/// lazy expiry — those are caller-visible removals — nor for pairs whose
/// TTL already lapsed (nothing of value is lost). The cooperative cluster
/// (kvs/cluster.h) uses this to keep its replica directory consistent and
/// to park last replicas in the guard. Runs while the engine (and its store
/// shard lock) is held: the hook must not call back into the engine/store.
using EvictionHook = std::function<void(const EvictedItem&)>;

/// Invoked at the end of every SUCCESSFUL set/iqset with the stored key,
/// still under the engine (and store shard) lock — so for any one key,
/// stored and evicted notifications are totally ordered by the shard's
/// critical sections. The cluster's replica directory relies on that
/// ordering: registering the replica from a hook cannot race the pair's
/// own eviction the way an add after the store call returned could.
using StoredHook = std::function<void(std::string_view key)>;

class KvsEngine {
 public:
  /// `clock` must outlive the engine. The policy factory receives the
  /// policy byte budget (fill fraction * slab memory limit).
  KvsEngine(EngineConfig config, const PolicyFactory& policy_factory,
            const util::Clock& clock);
  KvsEngine(const KvsEngine&) = delete;
  KvsEngine& operator=(const KvsEngine&) = delete;

  /// Plain get. Copies the value out (the caller may outlive the chunk).
  /// An expired pair counts as a miss and is lazily removed (twemcache's
  /// "replace an expired key-value" allocation step happens through here).
  [[nodiscard]] GetResult get(std::string_view key);

  /// IQ get: a miss records the miss timestamp for cost capture.
  [[nodiscard]] GetResult iqget(std::string_view key);

  /// Get the pair in its resident (post-codec) form without decompressing.
  /// Same hit/miss accounting and policy touch as get(); the peer-transfer
  /// path uses this so already-compressed payloads move between nodes
  /// without a decompress/recompress round-trip.
  [[nodiscard]] StoredGetResult get_stored(std::string_view key);

  /// Store with an explicit cost (0 means "unknown": clamps to 1).
  /// `exptime_s` = seconds until expiry, 0 = never (memcached semantics).
  /// Compresses the value first when EngineConfig::compression allows.
  bool set(std::string_view key, std::string_view value, std::uint32_t flags,
           std::uint32_t cost, std::uint32_t exptime_s = 0);

  /// Store an already-encoded value verbatim under `codec` (peer transfer,
  /// snapshot restore). `raw_len` must be the decoded length; the engine
  /// trusts it (the wire/snapshot entry points validate by decoding).
  /// kIdentity delegates to set(), so a raw payload round-trips through
  /// this node's own compression config exactly like a client set.
  bool set_stored(std::string_view key, std::string_view stored,
                  std::uint32_t raw_len, Codec codec, std::uint32_t flags,
                  std::uint32_t cost, std::uint32_t exptime_s = 0);

  /// IQ set: cost = elapsed time since the iqget miss (scaled), or 1 when
  /// no miss was recorded.
  bool iqset(std::string_view key, std::string_view value,
             std::uint32_t flags, std::uint32_t exptime_s = 0);

  bool del(std::string_view key);
  void flush_all();

  [[nodiscard]] bool contains(std::string_view key) const;

  /// Stored cost of a resident pair (0 if absent; no policy side effects).
  /// The store's auto-tune feed reads this after iqset, where the engine
  /// derived the cost internally from the iqget miss timestamp.
  [[nodiscard]] std::uint32_t cost_of(std::string_view key) const;

  /// Visit every resident pair in its stored form (see ItemView). Expired
  /// pairs are skipped (this is a const walk; lazy removal still happens on
  /// the next get). Used by the snapshot module (kvs/snapshot.h) and the
  /// cluster's decommission drain; order unspecified.
  void for_each_item(const std::function<void(const ItemView&)>& fn) const;

  /// See EvictionHook. Replaces any previous hook; pass nullptr to clear.
  void set_eviction_hook(EvictionHook hook) {
    eviction_hook_ = std::move(hook);
  }

  /// See StoredHook. Replaces any previous hook; pass nullptr to clear.
  void set_stored_hook(StoredHook hook) { stored_hook_ = std::move(hook); }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const policy::CacheStats& policy_stats() const {
    return policy_->stats();
  }
  [[nodiscard]] std::string policy_name() const { return policy_->name(); }
  /// Bytes the policy currently accounts for — CHARGED (post-codec chunk)
  /// bytes, not raw payload bytes.
  [[nodiscard]] std::uint64_t policy_used_bytes() const {
    return policy_->used_bytes();
  }
  /// The policy's byte budget (fill fraction * shard slab memory); the
  /// store registers this with the precision auto-tuner.
  [[nodiscard]] std::uint64_t policy_capacity_bytes() const {
    return policy_->capacity_bytes();
  }
  /// The policy's retune capability, or nullptr for non-CAMP policies.
  /// STATS uses it to report the live (post-retune) precision; the store's
  /// auto-tune feed uses it to apply duel migrations.
  [[nodiscard]] policy::IRetunable* retunable_policy() noexcept {
    return policy::as_retunable(policy_.get());
  }
  [[nodiscard]] const slab::SlabAllocator& allocator() const { return slab_; }

 private:
  struct Item {
    policy::Key id = 0;
    slab::Chunk chunk;
    std::uint32_t raw_len = 0;     // client-visible value length
    std::uint32_t stored_len = 0;  // post-codec bytes in the chunk
    Codec codec = Codec::kIdentity;
    std::uint32_t flags = 0;
    std::uint32_t cost = 0;
    std::uint64_t expiry_ns = 0;  // 0 = never expires
  };

  /// Shared tail of set()/set_stored(): charge, allocate, write the chunk.
  /// `stored` is the exact bytes to keep under `codec`; stats (sets,
  /// rejected_sets) for the public entry points are handled by callers.
  bool store_internal(std::string_view key, std::string_view stored,
                      std::uint32_t raw_len, Codec codec, std::uint32_t flags,
                      std::uint32_t cost, std::uint32_t exptime_s);
  void remove_item(const std::string& key, bool free_chunk);
  void on_policy_eviction(policy::Key id);
  /// Fire eviction_hook_ for a still-resident pair about to be dropped
  /// under pressure.
  void notify_eviction(const std::string& key);
  [[nodiscard]] std::optional<slab::Chunk> allocate_with_pressure(
      std::uint64_t footprint);

  EngineConfig config_;
  slab::SlabAllocator slab_;
  std::unique_ptr<policy::ICache> policy_;
  const util::Clock& clock_;
  util::Xoshiro256 rng_;
  std::unordered_map<std::string, Item> index_;
  std::unordered_map<policy::Key, std::string> id_to_key_;
  std::unordered_map<std::string, std::uint64_t> miss_timestamps_;
  policy::Key next_id_ = 1;
  // Set in flight: the policy already accounts for this id but its chunk is
  // not allocated yet. If pressure eviction picks it as the victim, the set
  // aborts instead of dereferencing a not-yet-existing item.
  policy::Key pending_id_ = 0;
  bool pending_evicted_ = false;
  EvictionHook eviction_hook_;
  StoredHook stored_hook_;
  EngineStats stats_;
};

}  // namespace camp::kvs
