// Hash-partitioned, per-shard-locked cache — the paper's Section 4.1
// vertical-scaling recipe: "CAMP may represent each LRU queue as multiple
// physical queues and hash partition keys across these physical queues to
// further enhance concurrent access."
//
// ShardedCache implements ICache and is safe for concurrent use: each key
// maps to one shard (an independent policy instance guarded by its own
// mutex), so threads touching different shards never contend. Aggregate
// stats are assembled on demand.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy/cache_iface.h"
#include "util/mutex.h"

namespace camp::kvs {

class ShardedCache final : public policy::ICache, public policy::IRetunable {
 public:
  using ShardFactory =
      std::function<std::unique_ptr<policy::ICache>(std::uint64_t capacity)>;

  /// Splits `capacity_bytes` evenly across `shards` instances built by the
  /// factory. The integer-division remainder is spread one byte at a time
  /// over the first shards, so the shard capacities always sum to exactly
  /// `capacity_bytes` and differ by at most one byte.
  ShardedCache(std::uint64_t capacity_bytes, std::size_t shards,
               const ShardFactory& factory);

  bool get(policy::Key key) override;
  /// `size` is the CHARGED size — with value compression on, the engine
  /// passes the compressed chunk size here, so every shard's byte budget
  /// (and CAMP's size-normalized priorities) sees what the pair actually
  /// occupies, not what the client wrote.
  bool put(policy::Key key, std::uint64_t size, std::uint64_t cost) override;
  [[nodiscard]] bool contains(policy::Key key) const override;
  void erase(policy::Key key) override;
  [[nodiscard]] std::uint64_t capacity_bytes() const override;
  [[nodiscard]] std::uint64_t used_bytes() const override;
  [[nodiscard]] std::size_t item_count() const override;
  /// Aggregated snapshot, assembled under the shard locks. The returned
  /// reference points at a thread-local per-instance buffer, so concurrent
  /// callers never race on shared aggregation state and two instances on
  /// one thread never alias; it stays valid until the SAME thread calls
  /// stats() on the SAME instance again.
  [[nodiscard]] const policy::CacheStats& stats() const override;
  /// By-value variant of stats() for callers that want an owned snapshot.
  [[nodiscard]] policy::CacheStats stats_snapshot() const;
  [[nodiscard]] std::string name() const override;
  void set_eviction_listener(policy::EvictionListener listener) override;

  // -- IRetunable forwarding --------------------------------------------------
  // Opportunistic (see policy::IRetunable): each shard is retuned under its
  // own lock iff its inner policy is itself retunable; non-tunable inners
  // make retune() a false-returning no-op and precision() report 0.
  bool retune(int new_precision) override;
  /// The first tunable shard's CURRENT precision (0 when none is tunable).
  /// Shards tuned through retune() or a shared auto-tuner always agree.
  [[nodiscard]] int precision() const override;
  /// Sum of the shards' retune counts.
  [[nodiscard]] std::uint64_t retune_count() const override;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Capacity assigned to one shard (remainder-distributed split).
  [[nodiscard]] std::uint64_t shard_capacity_bytes(std::size_t index) const;

 private:
  struct Shard {
    explicit Shard(std::unique_ptr<policy::ICache> c) : cache(std::move(c)) {}

    // kPolicyShard allows equal-rank self-nesting (util/lock_rank.h):
    // nested ShardedCaches are real — policy_shards wraps a sharded inner
    // factory — and the outer shard lock is held across inner-shard calls.
    mutable util::Mutex mutex{util::LockRank::kPolicyShard};
    // The pointer itself is set once in the constructor and never reseated,
    // but the pointee (a serial policy instance) is only thread-safe under
    // the shard lock, so both levels are annotated.
    std::unique_ptr<policy::ICache> cache CAMP_GUARDED_BY(mutex)
        CAMP_PT_GUARDED_BY(mutex);
  };

  [[nodiscard]] Shard& shard_for(policy::Key key) const;

  // deque-like stable storage via unique_ptr (mutexes are immovable).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace camp::kvs
