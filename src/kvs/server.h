// TCP server speaking the memcached text protocol subset (kvs/protocol.h),
// fronting a KvsStore — the repository's stand-in for IQ Twemcache in the
// Section 4 implementation experiments.
//
// Threading model: one acceptor thread plus a FIXED pool of worker threads
// (shard-per-core: `workers == 0` sizes the pool to hardware_concurrency).
// The acceptor hands each accepted connection to a worker round-robin; the
// worker owns it exclusively for its whole lifetime and multiplexes all of
// its connections with an epoll EventLoop (kvs/event_loop.h). Sockets are
// non-blocking end to end: per readable connection the worker drains EVERY
// complete pipelined command out of the read buffer (incremental
// CommandDecoder), accumulates replies into a per-connection write queue,
// and flushes with writev — so one stalled (never-reading) peer can no
// longer park the worker in send() and starve its other connections. Past
// `write_high_watermark` pending reply bytes the worker stops decoding
// that connection's commands until the peer drains (backpressure), which
// bounds per-connection server memory at the watermark plus one reply.
//
// Keys are hash-partitioned across the store's engine shards; with
// `policy_shards > 1` each engine's eviction policy is additionally a
// ShardedCache over that many physical queues (the paper's Section 4.1
// "multiple physical queues per LRU queue" recipe).
//
// stop() wakes every worker through its event loop and joins all threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kvs/event_loop.h"
#include "kvs/protocol.h"
#include "kvs/repair.h"
#include "kvs/store.h"
#include "util/mutex.h"

namespace camp::kvs {

class CoopCluster;

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
  /// Worker pool size; 0 = one worker per hardware thread.
  std::size_t workers = 0;
  /// Physical policy queues per engine shard (ShardedCache); 1 = the
  /// policy factory's cache is used directly.
  std::size_t policy_shards = 1;
  /// Per-connection pending-reply ceiling. Once a connection's unsent
  /// reply bytes exceed this, the worker stops decoding further commands
  /// from it until the peer drains below half the watermark — backpressure
  /// instead of unbounded buffering for a slow or never-reading client.
  std::size_t write_high_watermark = 256u << 10;
  /// With a cluster attached and this > 0, start() spawns a RepairDriver
  /// thread running cluster->repair_tick() on this interval (anti-entropy
  /// in live deployments). 0 (default) = manual repair_tick() only — the
  /// deterministic mode every test and figure uses.
  std::uint32_t cluster_repair_interval_ms = 0;
  /// Transparent value compression (kvs/compress.h): mirrored into
  /// store.engine.compression.enabled at construction. Off by default so
  /// the identity chunk layout — and every pre-compression baseline —
  /// stays byte-identical.
  bool compression = false;
  StoreConfig store;
};

class KvsServer {
 public:
  KvsServer(ServerConfig config, const PolicyFactory& policy_factory,
            const util::Clock& clock);
  ~KvsServer();
  KvsServer(const KvsServer&) = delete;
  KvsServer& operator=(const KvsServer&) = delete;

  /// Bind, listen, spawn the worker pool and the acceptor. Throws
  /// std::runtime_error on socket errors.
  void start();
  void stop();

  /// Serve as node `self_node` of a cooperative cluster (kvs/cluster.h):
  /// client get/iqget/set/iqset/delete traffic routes through the cluster's
  /// four-step coop path; pget/pdel (peer ops) and everything else stay on
  /// the local store. Call before start(), with `cluster` outliving the
  /// server; pass nullptr to detach. The caller is responsible for having
  /// joined this server's store() to the cluster under the same node id.
  void attach_cluster(CoopCluster* cluster, std::uint32_t self_node);

  /// Actual listening port (resolves ephemeral 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] KvsStore& store() { return store_; }
  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// accept() failures that were NOT transient (fd exhaustion such as
  /// EMFILE/ENFILE, ENOBUFS/ENOMEM, ...). Each one also triggers a short
  /// acceptor backoff so a persistent failure cannot spin the thread hot.
  /// Surfaced in STATS as `accept_failures`.
  [[nodiscard]] std::uint64_t accept_failures() const {
    return accept_failures_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker thread's shared state. The worker exclusively owns its
  /// connections and its event loop; the acceptor only touches
  /// `pending_fds` (under `mutex`) and the loop's wake() channel (which is
  /// thread-safe by design). The worker never blocks in socket I/O — only
  /// in EventLoop::wait — so stop() needs nothing beyond a wake().
  struct Worker {
    std::thread thread;
    std::unique_ptr<EventLoop> loop;
    // kServerWorker is the lowest rank in the hierarchy: the worker takes
    // this lock briefly around fd handoff and never holds it across store
    // or cluster calls.
    util::Mutex mutex{util::LockRank::kServerWorker};
    std::vector<int> pending_fds CAMP_GUARDED_BY(mutex);
  };

  void accept_loop();
  void worker_loop(Worker& worker);
  /// Execute one decoded command against the store, appending the reply to
  /// `out`. Returns false when the connection must close (quit).
  bool apply_command(const DecodedCommand& dc, std::string& out);

  ServerConfig config_;
  KvsStore store_;
  CoopCluster* cluster_ = nullptr;  // optional cooperative-cluster binding
  std::uint32_t self_node_ = 0;
  /// Background anti-entropy (cluster_repair_interval_ms > 0 only); owns
  /// no lock, so it sits outside the rank hierarchy entirely.
  std::unique_ptr<RepairDriver> repair_driver_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> accept_failures_{0};
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t next_worker_ = 0;  // acceptor-only round-robin cursor
};

}  // namespace camp::kvs
