// TCP server speaking the memcached text protocol subset (kvs/protocol.h),
// fronting a KvsStore — the repository's stand-in for IQ Twemcache in the
// Section 4 implementation experiments.
//
// Threading model: one acceptor thread plus one thread per connection
// (bounded in practice by the benches' client counts). stop() shuts the
// listener and every live connection down and joins all threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kvs/store.h"

namespace camp::kvs {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
  StoreConfig store;
};

class KvsServer {
 public:
  KvsServer(ServerConfig config, const PolicyFactory& policy_factory,
            const util::Clock& clock);
  ~KvsServer();
  KvsServer(const KvsServer&) = delete;
  KvsServer& operator=(const KvsServer&) = delete;

  /// Bind, listen and spawn the acceptor. Throws std::runtime_error on
  /// socket errors.
  void start();
  void stop();

  /// Actual listening port (resolves ephemeral 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] KvsStore& store() { return store_; }
  [[nodiscard]] bool running() const { return running_.load(); }

 private:
  void accept_loop();
  void handle_connection(int fd);
  void serve_command(int fd, std::string& inbuf);

  ServerConfig config_;
  KvsStore store_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace camp::kvs
