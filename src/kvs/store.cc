#include "kvs/store.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace camp::kvs {

namespace {

std::uint64_t hash_key(std::string_view key) {
  // FNV-1a finished with a strong mix.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return util::mix64(h);
}

}  // namespace

KvsStore::KvsStore(StoreConfig config, const PolicyFactory& policy_factory,
                   const util::Clock& clock) {
  if (config.shards == 0) {
    throw std::invalid_argument("StoreConfig: need at least one shard");
  }
  EngineConfig per_shard = config.engine;
  per_shard.slab.memory_limit_bytes =
      std::max<std::uint64_t>(config.engine.slab.memory_limit_bytes /
                                  config.shards,
                              per_shard.slab.slab_size_bytes);
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    EngineConfig cfg = per_shard;
    cfg.rng_seed = per_shard.rng_seed + i;
    // Construct the engine first and hand it to Shard's constructor so the
    // write to the guarded `engine` field happens inside Shard's own ctor,
    // which the thread-safety analysis treats as exclusive.
    shards_.push_back(std::make_unique<Shard>(
        std::make_unique<KvsEngine>(cfg, policy_factory, clock)));
  }
  if (config.autotune.has_value()) {
    tuner_ = std::make_shared<core::SharedAutoTuner>(*config.autotune);
    // Register every shard's policy budget (the tuner scales its shadows to
    // the logical total) and align the live policies with the tuner's
    // initial precision, so "current precision" is well-defined before the
    // first migration.
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      tuner_->register_capacity(shard->engine->policy_capacity_bytes());
      if (auto* tunable = shard->engine->retunable_policy()) {
        tunable->retune(config.autotune->initial_precision);
      }
    }
  }
}

KvsStore::Shard& KvsStore::shard_for(std::string_view key) const {
  return *shards_[static_cast<std::size_t>(hash_key(key) % shards_.size())];
}

void KvsStore::autotune_observe_locked(Shard& shard, std::string_view key,
                                       std::uint64_t size,
                                       std::uint64_t cost) {
  tuner_->observe(hash_key(key), size, cost);
  const std::uint64_t epoch = tuner_->epoch();
  if (epoch == shard.tuner_epoch_seen) return;
  shard.tuner_epoch_seen = epoch;
  if (auto* tunable = shard.engine->retunable_policy()) {
    tunable->retune(tuner_->current_precision());
  }
}

GetResult KvsStore::get(std::string_view key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  GetResult result = shard.engine->get(key);
  // Hits feed the tuner here; a miss is observed by the set() that follows
  // it (same once-per-request rule as the policy-level wrapper).
  if (tuner_ != nullptr && result.hit) {
    autotune_observe_locked(shard, key, result.value.size(), result.cost);
  }
  return result;
}

GetResult KvsStore::iqget(std::string_view key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  GetResult result = shard.engine->iqget(key);
  if (tuner_ != nullptr && result.hit) {
    autotune_observe_locked(shard, key, result.value.size(), result.cost);
  }
  return result;
}

StoredGetResult KvsStore::get_stored(std::string_view key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  return shard.engine->get_stored(key);
}

bool KvsStore::set(std::string_view key, std::string_view value,
                   std::uint32_t flags, std::uint32_t cost,
                   std::uint32_t exptime_s) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  const bool stored = shard.engine->set(key, value, flags, cost, exptime_s);
  if (tuner_ != nullptr && stored) {
    autotune_observe_locked(shard, key, value.size(), cost);
  }
  return stored;
}

bool KvsStore::set_stored(std::string_view key, std::string_view stored,
                          std::uint32_t raw_len, Codec codec,
                          std::uint32_t flags, std::uint32_t cost,
                          std::uint32_t exptime_s) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  const bool ok = shard.engine->set_stored(key, stored, raw_len, codec, flags,
                                           cost, exptime_s);
  if (tuner_ != nullptr && ok) {
    autotune_observe_locked(shard, key, raw_len, cost);
  }
  return ok;
}

bool KvsStore::iqset(std::string_view key, std::string_view value,
                     std::uint32_t flags, std::uint32_t exptime_s) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  const bool ok = shard.engine->iqset(key, value, flags, exptime_s);
  if (tuner_ != nullptr && ok) {
    // The engine derived the cost internally (iqget miss timestamp delta);
    // read it back for the shadow stream.
    autotune_observe_locked(shard, key, value.size(),
                            shard.engine->cost_of(key));
  }
  return ok;
}

bool KvsStore::del(std::string_view key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  return shard.engine->del(key);
}

bool KvsStore::contains(std::string_view key) const {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  return shard.engine->contains(key);
}

void KvsStore::flush_all() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    shard->engine->flush_all();
  }
}

void KvsStore::for_each_item(
    const std::function<void(const ItemView&)>& fn) const {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    shard->engine->for_each_item(fn);
  }
}

void KvsStore::set_eviction_hook(const EvictionHook& hook) {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    shard->engine->set_eviction_hook(hook);
  }
}

void KvsStore::set_stored_hook(const StoredHook& hook) {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    shard->engine->set_stored_hook(hook);
  }
}

EngineStats KvsStore::aggregated_stats() const {
  EngineStats agg;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    const EngineStats& s = shard->engine->stats();
    agg.gets += s.gets;
    agg.hits += s.hits;
    agg.sets += s.sets;
    agg.deletes += s.deletes;
    agg.rejected_sets += s.rejected_sets;
    agg.expired += s.expired;
    agg.slab_reassignments += s.slab_reassignments;
    agg.items += s.items;
    agg.value_bytes += s.value_bytes;
    agg.stored_bytes += s.stored_bytes;
    agg.compress_bails += s.compress_bails;
    agg.decompress_failures += s.decompress_failures;
  }
  return agg;
}

policy::CacheStats KvsStore::aggregated_policy_stats() const {
  policy::CacheStats agg;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    const policy::CacheStats& s = shard->engine->policy_stats();
    agg.gets += s.gets;
    agg.hits += s.hits;
    agg.misses += s.misses;
    agg.puts += s.puts;
    agg.evictions += s.evictions;
    agg.rejected_puts += s.rejected_puts;
  }
  return agg;
}

std::string KvsStore::policy_name() const {
  Shard& shard = *shards_.front();
  util::MutexLock lock(shard.mutex);
  return shard.engine->policy_name();
}

core::AutoTunerCounters KvsStore::autotune_counters() const {
  if (tuner_ == nullptr) {
    throw std::logic_error("KvsStore::autotune_counters: autotune disabled");
  }
  return tuner_->counters();
}

int KvsStore::autotune_precision() const {
  if (tuner_ == nullptr) {
    throw std::logic_error("KvsStore::autotune_precision: autotune disabled");
  }
  return tuner_->current_precision();
}

std::vector<int> KvsStore::autotune_candidates() const {
  if (tuner_ == nullptr) {
    throw std::logic_error("KvsStore::autotune_candidates: autotune disabled");
  }
  return tuner_->tuner_config().candidates;
}

std::optional<int> KvsStore::policy_precision() const {
  Shard& shard = *shards_.front();
  util::MutexLock lock(shard.mutex);
  auto* tunable = shard.engine->retunable_policy();
  if (tunable == nullptr) return std::nullopt;
  const int precision = tunable->precision();
  if (precision == 0) return std::nullopt;  // wrapper with no tunable inner
  return precision;
}

}  // namespace camp::kvs
