#include "kvs/snapshot.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace camp::kvs {

namespace {

template <class T>
void put_le(std::ostream& out, T value) {
  std::array<unsigned char, sizeof(T)> buf;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf.data()), sizeof(T));
}

template <class T>
T get_le(std::istream& in) {
  std::array<unsigned char, sizeof(T)> buf;
  in.read(reinterpret_cast<char*>(buf.data()), sizeof(T));
  if (!in) throw std::runtime_error("snapshot: truncated input");
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(buf[i]) << (8 * i);
  }
  return value;
}

}  // namespace

std::uint64_t save_snapshot(std::ostream& out, const KvsStore& store) {
  // Two-pass: the count precedes the items in the format, and the store
  // only exposes iteration.
  std::uint64_t count = 0;
  store.for_each_item([&](std::string_view, std::string_view, std::uint32_t,
                          std::uint32_t, std::uint32_t,
                          std::uint64_t) { ++count; });
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_le<std::uint64_t>(out, count);
  std::uint64_t written = 0;
  store.for_each_item([&](std::string_view key, std::string_view value,
                          std::uint32_t flags, std::uint32_t cost,
                          std::uint32_t ttl_s, std::uint64_t) {
    // The resident set may shrink between the passes (expiry); pad-proof
    // by never writing more than `count` items. A growth between passes
    // cannot happen (for_each_item is const and the caller holds the
    // store single-threaded during snapshots by contract).
    if (written == count) return;
    put_le<std::uint32_t>(out, static_cast<std::uint32_t>(key.size()));
    put_le<std::uint32_t>(out, static_cast<std::uint32_t>(value.size()));
    put_le<std::uint32_t>(out, flags);
    put_le<std::uint32_t>(out, cost);
    put_le<std::uint32_t>(out, ttl_s);
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(value.data(), static_cast<std::streamsize>(value.size()));
    ++written;
  });
  // If expiry shrank the second pass, backfill is impossible in a stream;
  // declare the file invalid rather than quietly truncating.
  if (written != count) {
    throw std::runtime_error("snapshot: resident set changed during save");
  }
  if (!out) throw std::runtime_error("snapshot: write failed");
  return written;
}

std::uint64_t save_snapshot_file(const std::string& path,
                                 const KvsStore& store) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("snapshot: cannot open " + path);
  return save_snapshot(out, store);
}

SnapshotStats load_snapshot(std::istream& in, KvsStore& store) {
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("snapshot: bad magic");
  }
  const auto count = get_le<std::uint64_t>(in);
  SnapshotStats stats;
  std::string key, value;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto key_len = get_le<std::uint32_t>(in);
    const auto value_len = get_le<std::uint32_t>(in);
    const auto flags = get_le<std::uint32_t>(in);
    const auto cost = get_le<std::uint32_t>(in);
    const auto ttl_s = get_le<std::uint32_t>(in);
    key.resize(key_len);
    value.resize(value_len);
    in.read(key.data(), key_len);
    in.read(value.data(), value_len);
    if (!in) throw std::runtime_error("snapshot: truncated item");
    if (store.set(key, value, flags, cost, ttl_s)) {
      ++stats.items_loaded;
    } else {
      ++stats.items_rejected;
    }
  }
  stats.items_written = count;
  return stats;
}

SnapshotStats load_snapshot_file(const std::string& path, KvsStore& store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot: cannot open " + path);
  return load_snapshot(in, store);
}

}  // namespace camp::kvs
