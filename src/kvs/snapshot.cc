#include "kvs/snapshot.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace camp::kvs {

namespace {

template <class T>
void put_le(std::ostream& out, T value) {
  std::array<unsigned char, sizeof(T)> buf;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf.data()), sizeof(T));
}

template <class T>
T get_le(std::istream& in) {
  std::array<unsigned char, sizeof(T)> buf;
  in.read(reinterpret_cast<char*>(buf.data()), sizeof(T));
  if (!in) throw std::runtime_error("snapshot: truncated input");
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(buf[i]) << (8 * i);
  }
  return value;
}

}  // namespace

std::uint64_t save_snapshot(std::ostream& out, const KvsStore& store) {
  // Two-pass: the count precedes the items in the format, and the store
  // only exposes iteration.
  std::uint64_t count = 0;
  store.for_each_item([&](const ItemView&) { ++count; });
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_le<std::uint64_t>(out, count);
  std::uint64_t written = 0;
  store.for_each_item([&](const ItemView& item) {
    // The resident set may shrink between the passes (expiry); pad-proof
    // by never writing more than `count` items. A growth between passes
    // cannot happen (for_each_item is const and the caller holds the
    // store single-threaded during snapshots by contract).
    if (written == count) return;
    put_le<std::uint32_t>(out, static_cast<std::uint32_t>(item.key.size()));
    put_le<std::uint32_t>(out, item.raw_len);
    put_le<std::uint32_t>(out, static_cast<std::uint32_t>(item.stored.size()));
    put_le<std::uint8_t>(out, static_cast<std::uint8_t>(item.codec));
    put_le<std::uint32_t>(out, item.flags);
    put_le<std::uint32_t>(out, item.cost);
    put_le<std::uint32_t>(out, item.remaining_ttl_s);
    out.write(item.key.data(),
              static_cast<std::streamsize>(item.key.size()));
    out.write(item.stored.data(),
              static_cast<std::streamsize>(item.stored.size()));
    ++written;
  });
  // If expiry shrank the second pass, backfill is impossible in a stream;
  // declare the file invalid rather than quietly truncating.
  if (written != count) {
    throw std::runtime_error("snapshot: resident set changed during save");
  }
  if (!out) throw std::runtime_error("snapshot: write failed");
  return written;
}

std::uint64_t save_snapshot_file(const std::string& path,
                                 const KvsStore& store) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("snapshot: cannot open " + path);
  return save_snapshot(out, store);
}

SnapshotStats load_snapshot(std::istream& in, KvsStore& store) {
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (!in) throw std::runtime_error("snapshot: bad magic");
  const bool v1 = std::memcmp(magic, kSnapshotMagicV1, sizeof(magic)) == 0;
  if (!v1 && std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("snapshot: bad magic");
  }
  const auto count = get_le<std::uint64_t>(in);
  SnapshotStats stats;
  std::string key, stored;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto key_len = get_le<std::uint32_t>(in);
    const auto raw_len = get_le<std::uint32_t>(in);
    const auto stored_len = v1 ? raw_len : get_le<std::uint32_t>(in);
    const auto codec_tag = v1 ? std::uint8_t{0} : get_le<std::uint8_t>(in);
    const auto flags = get_le<std::uint32_t>(in);
    const auto cost = get_le<std::uint32_t>(in);
    const auto ttl_s = get_le<std::uint32_t>(in);
    key.resize(key_len);
    stored.resize(stored_len);
    in.read(key.data(), key_len);
    in.read(stored.data(), stored_len);
    if (!in) throw std::runtime_error("snapshot: truncated item");
    if (!codec_tag_valid(codec_tag)) {
      throw std::runtime_error("snapshot: unknown codec tag");
    }
    // Compressed payloads must decode to exactly raw_len before they are
    // stored — the same validate-by-decoding rule the pset wire entry
    // applies, so a corrupt file cannot plant a pair that poisons reads.
    if (codec_tag != 0) {
      std::string decoded;
      if (!decompress_value(static_cast<Codec>(codec_tag), stored, raw_len,
                            decoded)) {
        throw std::runtime_error("snapshot: corrupt compressed item");
      }
    }
    // v2 restores the stored form verbatim (no recompress); identity and
    // every v1 item replay through set() and the target's own config.
    if (store.set_stored(key, stored, raw_len,
                         static_cast<Codec>(codec_tag), flags, cost, ttl_s)) {
      ++stats.items_loaded;
    } else {
      ++stats.items_rejected;
    }
  }
  stats.items_written = count;
  return stats;
}

SnapshotStats load_snapshot_file(const std::string& path, KvsStore& store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot: cannot open " + path);
  return load_snapshot(in, store);
}

}  // namespace camp::kvs
